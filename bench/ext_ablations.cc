// Ablation studies over the design choices DESIGN.md calls out:
//   A. Pruning mode (footnote 2): the parent-distance optimizations the
//      cost model deliberately ignores — how many distance computations do
//      they save, and do they change I/O?
//   B. Split policies (dynamic inserts): build cost vs query cost vs node
//      count across promotion/partition policies.
//   C. Bulk loading vs repeated insertion: tree quality and model accuracy
//      on both construction paths.
//   D. Tree-shape estimator (the paper's future-work #1): L-MCM fed with
//      *predicted* (M_l, r̄_l) — no tree statistics at all — vs actual
//      statistics vs measurement.
//
// Scale knobs: MCM_N (default 10000), MCM_QUERIES (default 500).

#include <cmath>
#include <iostream>

#include "mcm/bench_util/experiment.h"
#include "mcm/common/env.h"
#include "mcm/common/stopwatch.h"
#include "mcm/common/table_printer.h"
#include "mcm/cost/lmcm.h"
#include "mcm/cost/nmcm.h"
#include "mcm/cost/shape_estimator.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/distribution/estimator.h"
#include "mcm/metric/counted_metric.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"
#include "mcm/obs/bench_observer.h"

namespace {

constexpr uint64_t kSeed = 42;
constexpr size_t kDim = 10;

}  // namespace

int main() {
  using namespace mcm;
  using Counted = CountedMetric<LInfDistance>;
  using Traits = VectorTraits<Counted>;
  const size_t n = static_cast<size_t>(GetEnvInt("MCM_N", 10000));
  const size_t num_queries = static_cast<size_t>(GetEnvInt("MCM_QUERIES", 500));
  const double rq = std::pow(0.01, 1.0 / static_cast<double>(kDim)) / 2.0;

  const auto data = GenerateClustered(n, kDim, kSeed);
  const auto queries = GenerateVectorQueries(VectorDatasetKind::kClustered,
                                             num_queries, kDim, kSeed);
  EstimatorOptions eo;
  eo.num_bins = 100;
  eo.d_plus = 1.0;
  eo.seed = kSeed;
  const auto hist = EstimateDistanceDistribution(data, LInfDistance{}, eo);

  std::cout << "== Ablations (clustered D=" << kDim << ", n=" << n
            << ", r_Q=" << TablePrinter::Num(rq, 3) << ", " << num_queries
            << " queries) ==\n\n";
  BenchObserver observer("ext_ablations");
  Stopwatch watch;

  // ---- A. Pruning modes -------------------------------------------------
  {
    TablePrinter table({"mode", "query", "I/O", "CPU", "CPU vs basic"});
    for (const bool optimized : {false, true}) {
      MTreeOptions options;
      options.seed = kSeed;
      options.pruning =
          optimized ? PruningMode::kOptimized : PruningMode::kBasic;
      auto tree = MTree<Traits>::BulkLoad(data, Counted{}, options);
      const std::string mode_str = optimized ? "optimized" : "basic";
      const auto range = MeasureRange(tree, queries, rq, &observer,
                                      "pruning-" + mode_str + "-range", {},
                                      {{"radius", rq}});
      const auto knn = MeasureKnn(tree, queries, 1, &observer,
                                  "pruning-" + mode_str + "-nn1", {},
                                  {{"k", 1.0}});
      static double basic_range_cpu = 0.0, basic_knn_cpu = 0.0;
      if (!optimized) {
        basic_range_cpu = range.avg_dists;
        basic_knn_cpu = knn.avg_dists;
      }
      const char* mode = optimized ? "optimized" : "basic";
      table.AddRow({mode, "range", TablePrinter::Num(range.avg_nodes, 1),
                    TablePrinter::Num(range.avg_dists, 1),
                    TablePrinter::Num(100.0 * range.avg_dists /
                                          basic_range_cpu,
                                      1) +
                        "%"});
      table.AddRow({mode, "NN(1)", TablePrinter::Num(knn.avg_nodes, 1),
                    TablePrinter::Num(knn.avg_dists, 1),
                    TablePrinter::Num(100.0 * knn.avg_dists / basic_knn_cpu,
                                      1) +
                        "%"});
    }
    std::cout << "-- A. Parent-distance pruning (footnote 2): same I/O, "
                 "fewer distances --\n";
    table.Print(std::cout);
    std::cout << "\n";
  }

  // ---- B. Split policies under dynamic insertion ------------------------
  {
    struct Case {
      const char* name;
      PromotePolicy promote;
      PartitionPolicy partition;
    };
    const Case cases[] = {
        {"random+balanced", PromotePolicy::kRandom,
         PartitionPolicy::kBalanced},
        {"random+hyperplane", PromotePolicy::kRandom,
         PartitionPolicy::kHyperplane},
        {"sampling+balanced", PromotePolicy::kSampling,
         PartitionPolicy::kBalanced},
        {"mMRad+balanced", PromotePolicy::kMMRad, PartitionPolicy::kBalanced},
        {"maxLb+hyperplane", PromotePolicy::kMaxLbDist,
         PartitionPolicy::kHyperplane},
    };
    TablePrinter table({"policy", "build dists", "nodes", "range I/O",
                        "range CPU"});
    const size_t insert_n = std::min<size_t>(n, 5000);
    for (const auto& c : cases) {
      MTreeOptions options;
      options.seed = kSeed;
      options.promote_policy = c.promote;
      options.partition_policy = c.partition;
      Counted metric;
      MTree<Traits> tree(metric, options);
      metric.Reset();
      for (size_t i = 0; i < insert_n; ++i) tree.Insert(data[i], i);
      const uint64_t build_dists = metric.count();
      const auto range = MeasureRange(tree, queries, rq, &observer,
                                      std::string("split-") + c.name, {},
                                      {{"radius", rq}});
      table.AddRow({c.name, std::to_string(build_dists),
                    std::to_string(tree.store().NumNodes()),
                    TablePrinter::Num(range.avg_nodes, 1),
                    TablePrinter::Num(range.avg_dists, 1)});
    }
    std::cout << "-- B. Split policies (dynamic insertion of "
              << insert_n << " objects) --\n";
    table.Print(std::cout);
    std::cout << "\n";
  }

  // ---- C. Bulk load vs insertion ----------------------------------------
  {
    TablePrinter table({"construction", "build dists", "nodes", "height",
                        "I/O real", "N-MCM", "err"});
    for (const bool bulk : {true, false}) {
      MTreeOptions options;
      options.seed = kSeed;
      Counted metric;
      metric.Reset();
      MTree<Traits> tree =
          bulk ? MTree<Traits>::BulkLoad(data, metric, options)
               : MTree<Traits>(metric, options);
      if (!bulk) {
        for (size_t i = 0; i < data.size(); ++i) tree.Insert(data[i], i);
      }
      const uint64_t build_dists = metric.count();
      const NodeBasedCostModel model(hist, tree.CollectStats(1.0));
      const auto range = MeasureRange(
          tree, queries, rq, &observer,
          bulk ? "construction-bulk" : "construction-insert",
          {{"N-MCM", model.RangeNodes(rq), model.RangeDistances(rq),
            model.RangeNodesPerLevel(rq)}},
          {{"radius", rq}});
      table.AddRow({bulk ? "BulkLoading" : "repeated insert",
                    std::to_string(build_dists),
                    std::to_string(tree.store().NumNodes()),
                    std::to_string(tree.height()),
                    TablePrinter::Num(range.avg_nodes, 1),
                    TablePrinter::Num(model.RangeNodes(rq), 1),
                    FormatErrorPercent(model.RangeNodes(rq),
                                       range.avg_nodes)});
    }
    std::cout << "-- C. BulkLoading [9] vs repeated insertion: the model "
                 "predicts both --\n";
    table.Print(std::cout);
    std::cout << "\n";
  }

  // ---- D. Tree-shape estimator (future work #1) --------------------------
  {
    MTreeOptions options;
    options.seed = kSeed;
    auto tree = MTree<Traits>::BulkLoad(data, Counted{}, options);
    const auto actual_stats = tree.CollectStats(1.0);

    ShapeEstimatorOptions so;
    so.node_size_bytes = options.node_size_bytes;
    so.node_header_bytes = MTreeNode<Traits>::HeaderSize();
    const FloatVector probe(kDim, 0.0f);
    so.leaf_entry_bytes = MTreeNode<Traits>::LeafEntrySize(probe);
    so.routing_entry_bytes = MTreeNode<Traits>::RoutingEntrySize(probe);
    const auto predicted_levels = EstimateTreeShape(hist, n, so);

    TablePrinter shape({"level", "M_l actual", "M_l pred", "rbar actual",
                        "rbar pred"});
    for (size_t l = 0; l < std::max(predicted_levels.size(),
                                    actual_stats.levels.size());
         ++l) {
      const bool has_a = l < actual_stats.levels.size();
      const bool has_p = l < predicted_levels.size();
      shape.AddRow(
          {std::to_string(l + 1),
           has_a ? std::to_string(actual_stats.levels[l].num_nodes) : "-",
           has_p ? std::to_string(predicted_levels[l].num_nodes) : "-",
           has_a ? TablePrinter::Num(
                       actual_stats.levels[l].avg_covering_radius, 3)
                 : "-",
           has_p ? TablePrinter::Num(
                       predicted_levels[l].avg_covering_radius, 3)
                 : "-"});
    }
    std::cout << "-- D. Tree-shape estimator: (M_l, rbar_l) from F alone --\n";
    shape.Print(std::cout);

    const LevelBasedCostModel with_actual(hist, actual_stats);
    const LevelBasedCostModel with_predicted(hist, predicted_levels, n);
    const auto range = MeasureRange(
        tree, queries, rq, &observer, "shape-estimator",
        {{"L-MCM", with_actual.RangeNodes(rq), with_actual.RangeDistances(rq),
          with_actual.RangeNodesPerLevel(rq)},
         {"L-MCM-pred-shape", with_predicted.RangeNodes(rq),
          with_predicted.RangeDistances(rq),
          with_predicted.RangeNodesPerLevel(rq)}},
        {{"radius", rq}});
    TablePrinter costs({"estimator", "I/O est", "err", "CPU est", "err"});
    costs.AddRow({"L-MCM actual stats",
                  TablePrinter::Num(with_actual.RangeNodes(rq), 1),
                  FormatErrorPercent(with_actual.RangeNodes(rq),
                                     range.avg_nodes),
                  TablePrinter::Num(with_actual.RangeDistances(rq), 1),
                  FormatErrorPercent(with_actual.RangeDistances(rq),
                                     range.avg_dists)});
    costs.AddRow({"L-MCM predicted stats",
                  TablePrinter::Num(with_predicted.RangeNodes(rq), 1),
                  FormatErrorPercent(with_predicted.RangeNodes(rq),
                                     range.avg_nodes),
                  TablePrinter::Num(with_predicted.RangeDistances(rq), 1),
                  FormatErrorPercent(with_predicted.RangeDistances(rq),
                                     range.avg_dists)});
    std::cout << "\n   measured: I/O=" << TablePrinter::Num(range.avg_nodes, 1)
              << " CPU=" << TablePrinter::Num(range.avg_dists, 1) << "\n";
    costs.Print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Elapsed: " << TablePrinter::Num(watch.ElapsedSeconds(), 1)
            << " s\n";
  return 0;
}
