// Extension: out-of-core parallel bulk loading at scale. For each dataset
// size the harness builds the same clustered-vector index four ways —
// naive one-by-one inserts, the streaming bulk loader at 1 and at 4 build
// threads (both sequential page layout), and the bulk loader with the
// sequential layout disabled — and reports build wall time, build distance
// computations, physical write ops, index size, and the process peak RSS,
// then runs a cold-cache range workload (readahead on) against every index
// and reports logical costs plus physical read ops/pages per query, beside
// the N-MCM node/distance prediction computed from a strided-sample F̂.
//
// The emitted BENCH_bulk_scale.json carries one `facts_<case>` summary
// record per build (the build-side numbers as params) and one `q_<case>`
// case of per-query records. The `bench_compare_bulk` CTests gate on it:
// the 4-thread build must not cost more than 1.25x the 1-thread build
// (wall-clock speedup itself scales with host_cores, which the artifact
// records — on a multi-core host expect >= 2x at 4 threads), and the
// sequential layout + readahead must cut physical read ops per query
// versus the layout-off build.
//
// The object stream is generated chunk-by-chunk, so ingest memory is
// bounded by the budget, not the dataset: peak_rss_mb in the facts records
// is the out-of-core claim, measurable because the harness never holds a
// full dataset vector.
//
// Scale knobs: MCM_BULK_SIZES (default "100000,1000000,5000000"),
//              MCM_QUERIES (default 50), MCM_INGEST_BUDGET (default 64 MiB
//              here; the library default is 256 MiB).

#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "mcm/bench_util/experiment.h"
#include "mcm/common/env.h"
#include "mcm/common/stopwatch.h"
#include "mcm/common/table_printer.h"
#include "mcm/cost/nmcm.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/distribution/estimator.h"
#include "mcm/metric/counted_metric.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_stream.h"
#include "mcm/obs/bench_observer.h"
#include "mcm/storage/io_stats.h"

namespace {

using mcm::FloatVector;
// Counted so the naive insert loop (which has no BulkLoadStats ledger)
// reports its build distances through the same mechanism.
using CountedL2 = mcm::CountedMetric<mcm::L2Distance>;
using Traits = mcm::VectorTraits<CountedL2>;

constexpr size_t kDim = 8;
constexpr double kRadius = 0.15;
constexpr uint64_t kSeed = 47;
constexpr int64_t kReadahead = 16;

/// Resets the kernel's peak-RSS watermark so each build reports its own
/// high-water mark instead of the process maximum so far. Linux-only
/// (`echo 5 > /proc/self/clear_refs`); silently a no-op elsewhere, where
/// the peak_rss_mb column degrades to a cumulative watermark.
void ResetPeakRss() {
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f != nullptr) {
    std::fputs("5", f);
    std::fclose(f);
  }
}

/// Process peak RSS in bytes: VmHWM (the resettable watermark) where
/// /proc exists, else ru_maxrss (KiB on Linux).
double PeakRssBytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f != nullptr) {
    char line[256];
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      long kib = 0;
      if (std::sscanf(line, "VmHWM: %ld", &kib) == 1) {
        std::fclose(f);
        return static_cast<double>(kib) * 1024.0;
      }
    }
    std::fclose(f);
  }
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0.0;
  }
  return static_cast<double>(usage.ru_maxrss) * 1024.0;
}

/// Streams `n` clustered vectors without ever materializing the dataset:
/// chunks are regenerated on demand from (seed, chunk index), so Reset
/// replays the identical sequence with only one chunk resident.
class ChunkedClusteredSource final : public mcm::ObjectSource<Traits> {
 public:
  ChunkedClusteredSource(size_t n, size_t dim, uint64_t seed)
      : n_(n), dim_(dim), seed_(seed) {}

  bool Next(FloatVector* object, uint64_t* oid) override {
    if (pos_ >= n_) {
      return false;
    }
    const size_t chunk_index = pos_ / kChunk;
    if (chunk_index != loaded_chunk_) {
      const size_t first = chunk_index * kChunk;
      chunk_ = mcm::GenerateVectorDataset(
          mcm::VectorDatasetKind::kClustered, std::min(kChunk, n_ - first),
          dim_, seed_ + chunk_index);
      loaded_chunk_ = chunk_index;
    }
    *object = chunk_[pos_ % kChunk];
    *oid = pos_;
    ++pos_;
    return true;
  }

  void Reset() override { pos_ = 0; }

 private:
  static constexpr size_t kChunk = 65536;

  size_t n_;
  size_t dim_;
  uint64_t seed_;
  size_t pos_ = 0;
  size_t loaded_chunk_ = static_cast<size_t>(-1);
  std::vector<FloatVector> chunk_;
};

struct BuildResult {
  std::unique_ptr<mcm::MTree<Traits>> tree;
  mcm::PagedNodeStore<Traits>* store = nullptr;  // Owned by the tree.
  std::string path;
  double wall_s = 0.0;
  double dists = 0.0;
  double write_ops = 0.0;
  double index_mb = 0.0;
  double peak_rss_mb = 0.0;
};

double FileMb(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return 0.0;
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return static_cast<double>(size) / (1024.0 * 1024.0);
}

std::unique_ptr<mcm::PagedNodeStore<Traits>> MakeStore(
    const std::string& path, const mcm::MTreeOptions& options,
    int64_t readahead) {
  return std::make_unique<mcm::PagedNodeStore<Traits>>(
      std::make_unique<mcm::StdioPageFile>(path, options.node_size_bytes),
      options.buffer_pool_frames, /*cache_entries=*/-1, readahead);
}

BuildResult BuildStreamed(size_t n, size_t threads, bool sequential_layout,
                          int64_t budget, int64_t readahead,
                          const std::string& path) {
  mcm::MTreeOptions options;
  options.build_threads = threads;
  options.bulk_sequential_layout = sequential_layout;
  auto store = MakeStore(path, options, readahead);
  auto* paged = store.get();

  ChunkedClusteredSource source(n, kDim, kSeed);
  mcm::BulkLoadStats stats;
  ResetPeakRss();
  mcm::Stopwatch watch;
  auto tree = std::make_unique<mcm::MTree<Traits>>(
      mcm::StreamBulkLoader<Traits>::Load(source, CountedL2{}, options,
                                          std::move(store), ".", budget,
                                          &stats));
  BuildResult result;
  result.wall_s = watch.ElapsedSeconds();
  paged->Flush();
  result.tree = std::move(tree);
  result.store = paged;
  result.path = path;
  result.dists = static_cast<double>(stats.distance_computations);
  result.write_ops = static_cast<double>(paged->pool().file()->stats().writes);
  result.index_mb = FileMb(path);
  result.peak_rss_mb = PeakRssBytes() / (1024.0 * 1024.0);
  return result;
}

BuildResult BuildNaive(size_t n, const std::string& path) {
  mcm::MTreeOptions options;
  auto store = MakeStore(path, options, kReadahead);
  auto* paged = store.get();
  CountedL2 metric;  // Copies share the counter: count() sees the inserts.
  auto tree = std::make_unique<mcm::MTree<Traits>>(metric, options,
                                                   std::move(store));

  ChunkedClusteredSource source(n, kDim, kSeed);
  FloatVector object;
  uint64_t oid = 0;
  const uint64_t dists_before = metric.count();
  ResetPeakRss();
  mcm::Stopwatch watch;
  while (source.Next(&object, &oid)) {
    tree->Insert(object, oid);
  }
  BuildResult result;
  result.wall_s = watch.ElapsedSeconds();
  paged->Flush();
  result.tree = std::move(tree);
  result.store = paged;
  result.path = path;
  result.dists = static_cast<double>(metric.count() - dists_before);
  result.write_ops = static_cast<double>(paged->pool().file()->stats().writes);
  result.index_mb = FileMb(path);
  result.peak_rss_mb = PeakRssBytes() / (1024.0 * 1024.0);
  return result;
}

/// Cold-cache range workload: evicts the pool before every query so the
/// physical read pattern (batched by readahead where the layout allows)
/// is exercised per query, then reports per-query logical and physical
/// costs through the observer.
struct QueryCosts {
  mcm::MeasuredCosts logical;
  double read_ops_per_query = 0.0;
  double read_pages_per_query = 0.0;
};

QueryCosts RunQueries(BuildResult& built,
                      const std::vector<FloatVector>& queries,
                      mcm::BenchObserver* observer, const std::string& label,
                      const std::vector<std::pair<std::string, double>>&
                          params,
                      std::vector<mcm::CostPrediction> predictions) {
  QueryCosts costs;
  costs.logical.num_queries = queries.size();
  const auto before = mcm::CaptureIoStats(built.store->pool());
  if (observer != nullptr && observer->enabled()) {
    observer->BeginCase(label, params, std::move(predictions));
  }
  for (const auto& q : queries) {
    built.store->pool().EvictAll();
    mcm::QueryStats stats;
    mcm::Stopwatch watch;
    const auto results = built.tree->RangeSearch(q, kRadius, &stats);
    const double latency_us =
        static_cast<double>(watch.ElapsedNanos()) / 1e3;
    mcm::internal::Accumulate(stats, results.size(), &costs.logical);
    if (observer != nullptr && observer->enabled()) {
      mcm::QueryObservation obs;
      obs.kind = "range";
      obs.radius = kRadius;
      obs.stats = stats;
      obs.stats.trace = nullptr;
      obs.stats.spans = nullptr;
      obs.results = results.size();
      obs.latency_us = latency_us;
      observer->RecordQuery(obs);
    }
  }
  if (observer != nullptr && observer->enabled()) {
    observer->EndCase();
  }
  mcm::internal::FinishAverages(queries.size(), &costs.logical);
  const auto delta = mcm::CaptureIoStats(built.store->pool()) - before;
  if (!queries.empty()) {
    const double q = static_cast<double>(queries.size());
    costs.read_ops_per_query = static_cast<double>(delta.file.reads) / q;
    costs.read_pages_per_query =
        static_cast<double>(delta.file.read_pages) / q;
  }
  return costs;
}

/// Strided sample of the object stream for the F̂ estimate: the dataset
/// never fits in memory at the big sizes, so the histogram (and thus the
/// N-MCM prediction) is computed from up to `max_sample` objects taken
/// evenly across the stream.
std::vector<FloatVector> SampleForHistogram(size_t n, size_t max_sample) {
  const size_t stride = std::max<size_t>(1, n / max_sample);
  ChunkedClusteredSource source(n, kDim, kSeed);
  std::vector<FloatVector> sample;
  sample.reserve(std::min(n, max_sample) + 1);
  FloatVector object;
  uint64_t oid = 0;
  for (size_t i = 0; source.Next(&object, &oid); ++i) {
    if (i % stride == 0) {
      sample.push_back(std::move(object));
    }
  }
  return sample;
}

std::vector<size_t> ParseSizes(const std::string& spec) {
  std::vector<size_t> sizes;
  size_t start = 0;
  while (start < spec.size()) {
    size_t end = spec.find(',', start);
    if (end == std::string::npos) {
      end = spec.size();
    }
    const std::string token = spec.substr(start, end - start);
    if (!token.empty()) {
      sizes.push_back(static_cast<size_t>(std::stoull(token)));
    }
    start = end + 1;
  }
  return sizes;
}

long HostCores() {
  const long cores = sysconf(_SC_NPROCESSORS_ONLN);
  return cores > 0 ? cores : 1;
}

}  // namespace

int main() {
  using namespace mcm;
  const auto sizes = ParseSizes(
      GetEnvString("MCM_BULK_SIZES", "100000,1000000,5000000"));
  const size_t num_queries =
      static_cast<size_t>(GetEnvInt("MCM_QUERIES", 50));
  const int64_t budget = GetEnvInt("MCM_INGEST_BUDGET", 64 << 20);
  const double host_cores = static_cast<double>(HostCores());

  std::cout << "== Out-of-core bulk loading at scale: naive inserts vs "
               "streamed builds (budget "
            << static_cast<double>(budget) / (1024.0 * 1024.0) << " MiB, "
            << host_cores << " core(s), "
            << num_queries << " cold-cache range(Q, " << kRadius
            << ") queries per index) ==\n\n";

  BenchObserver observer("bulk_scale");
  const auto queries = GenerateVectorQueries(VectorDatasetKind::kClustered,
                                             num_queries, kDim, kSeed + 999);
  Stopwatch total;
  TablePrinter table({"case", "build s", "build dists", "index MB",
                      "peak RSS MB", "phys reads/q", "read pages/q",
                      "nodes/q", "N-MCM nodes", "dists/q"});

  for (const size_t n : sizes) {
    // F̂ for the N-MCM prediction, from a bounded strided sample of the
    // same stream every build consumes.
    EstimatorOptions eo;
    eo.d_plus = std::sqrt(static_cast<double>(kDim));
    eo.seed = kSeed;
    const auto hist = EstimateDistanceDistribution(
        SampleForHistogram(n, 20000), L2Distance{}, eo);
    struct Config {
      std::string name;
      size_t threads;
      bool sequential_layout;
      bool naive;
      int64_t readahead;
    };
    const std::vector<Config> configs = {
        {"naive", 0, false, true, kReadahead},
        {"bulk_t1", 1, true, false, kReadahead},
        {"bulk_t4", 4, true, false, kReadahead},
        {"layout_off", 4, false, false, kReadahead},
        {"readahead_off", 4, true, false, 0},
    };
    for (const Config& config : configs) {
      const std::string label = config.name + "_" + std::to_string(n);
      const std::string path = "./mcm_bulk_scale_" + label + ".bin";
      BuildResult built =
          config.naive
              ? BuildNaive(n, path)
              : BuildStreamed(n, config.threads, config.sequential_layout,
                              budget, config.readahead, path);

      std::vector<std::pair<std::string, double>> params = {
          {"n", static_cast<double>(n)},
          {"threads", static_cast<double>(config.threads)},
          {"sequential_layout", config.sequential_layout ? 1.0 : 0.0},
          {"readahead", static_cast<double>(config.readahead)},
          {"host_cores", host_cores},
          {"budget_mb", static_cast<double>(budget) / (1024.0 * 1024.0)},
          {"build_wall_s", built.wall_s},
          {"build_dists", built.dists},
          {"phys_write_ops", built.write_ops},
          {"index_mb", built.index_mb},
          {"peak_rss_mb", built.peak_rss_mb},
      };
      // Aggregate prediction only: the glue phase's single-entry routing
      // chains make per-level attribution meaningless on spilled builds.
      const NodeBasedCostModel nmcm(hist, built.tree->CollectStats(1.0));
      std::vector<CostPrediction> predictions;
      predictions.push_back({"N-MCM", nmcm.RangeNodes(kRadius),
                             nmcm.RangeDistances(kRadius),
                             /*per_level=*/{}});
      params.push_back({"nmcm_nodes_per_query", nmcm.RangeNodes(kRadius)});
      params.push_back({"nmcm_dists_per_query", nmcm.RangeDistances(kRadius)});
      const QueryCosts costs = RunQueries(built, queries, &observer,
                                          "q_" + label, params,
                                          std::move(predictions));

      // The facts record: build-side numbers plus the measured physical
      // read pattern, for the bench_compare_bulk gates.
      params.push_back({"phys_read_ops_per_query", costs.read_ops_per_query});
      params.push_back(
          {"phys_read_pages_per_query", costs.read_pages_per_query});
      if (observer.enabled()) {
        observer.BeginCase("facts_" + label, params);
        observer.EndCase();
      }

      table.AddRow({label, TablePrinter::Num(built.wall_s, 2),
                    TablePrinter::Num(built.dists, 0),
                    TablePrinter::Num(built.index_mb, 1),
                    TablePrinter::Num(built.peak_rss_mb, 1),
                    TablePrinter::Num(costs.read_ops_per_query, 1),
                    TablePrinter::Num(costs.read_pages_per_query, 1),
                    TablePrinter::Num(costs.logical.avg_nodes, 1),
                    TablePrinter::Num(nmcm.RangeNodes(kRadius), 1),
                    TablePrinter::Num(costs.logical.avg_dists, 1)});

      built.tree.reset();  // Close the page file before removing it.
      std::remove(path.c_str());
    }
  }
  table.Print(std::cout);

  std::cout << "\nExpected shape: bulk builds cut wall time, distance "
               "computations, and physical\nread ops per query versus naive "
               "inserts (the insert-built tree scatters children\nacross "
               "pages); with >= 4 cores, bulk_t4 lands at <= 0.5x bulk_t1; "
               "readahead_off\nshows the prefetch win on the same pages; "
               "peak RSS of the streamed builds\ntracks the ingest budget "
               "(times the wave concurrency at t4, plus partition\nskew) "
               "rather than the dataset or index size.\n"
            << "Elapsed: " << TablePrinter::Num(total.ElapsedSeconds(), 1)
            << " s\n";
  return 0;
}
