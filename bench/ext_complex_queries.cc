// Extension: complex similarity queries (future work #3; EDBT'98 [11]) —
// multi-predicate range queries evaluated in one M-tree traversal, with
// the independence-based cost-model extension. Sweeps the number of
// predicates and the combination semantics, comparing predicted vs
// measured I/O, CPU and result cardinality, and reports the single-
// traversal saving against executing the predicates separately.
//
// Scale knobs: MCM_N (default 10000), MCM_QUERIES (default 400).

#include <iostream>

#include "mcm/bench_util/experiment.h"
#include "mcm/common/env.h"
#include "mcm/common/stopwatch.h"
#include "mcm/common/table_printer.h"
#include "mcm/cost/nmcm.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/distribution/estimator.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"
#include "mcm/obs/bench_observer.h"

int main() {
  using namespace mcm;
  using Traits = VectorTraits<LInfDistance>;
  using Tree = MTree<Traits>;
  const size_t n = static_cast<size_t>(GetEnvInt("MCM_N", 10000));
  const size_t num_queries = static_cast<size_t>(GetEnvInt("MCM_QUERIES", 400));
  constexpr size_t kDim = 8;
  constexpr uint64_t kSeed = 42;
  constexpr double kRadius = 0.3;

  std::cout << "== Extension: complex similarity queries, clustered D="
            << kDim << ", n=" << n << ", per-predicate radius " << kRadius
            << " ==\n\n";
  BenchObserver observer("ext_complex_queries");
  Stopwatch watch;

  const auto data = GenerateClustered(n, kDim, kSeed);
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, num_queries, kDim,
                            kSeed);
  MTreeOptions options;
  options.seed = kSeed;
  auto tree = Tree::BulkLoad(data, LInfDistance{}, options);
  EstimatorOptions eo;
  eo.num_bins = 100;
  eo.seed = kSeed;
  const auto hist = EstimateDistanceDistribution(data, LInfDistance{}, eo);
  const NodeBasedCostModel model(hist, tree.CollectStats(1.0));

  TablePrinter table({"preds", "semantics", "I/O real", "est", "err",
                      "CPU real", "est", "err", "objs real", "est", "err",
                      "vs separate I/O"});
  for (size_t m : {1u, 2u, 3u}) {
    for (const bool conjunctive : {true, false}) {
      if (m == 1 && !conjunctive) continue;  // AND == OR for one predicate.
      const std::vector<double> est_radii(m, kRadius);
      const std::string case_label = std::string(conjunctive ? "AND" : "OR") +
                                     "-m" + std::to_string(m);
      const bool observing = observer.enabled();
      QueryTrace trace(observer.trace_capacity());
      if (observing) {
        observer.BeginCase(
            case_label,
            {{"predicates", static_cast<double>(m)}, {"radius", kRadius}},
            {{"N-MCM", model.ComplexRangeNodes(est_radii, conjunctive),
              model.ComplexRangeDistances(est_radii, conjunctive),
              {}}});
      }
      double nodes = 0, dists = 0, objs = 0, separate_nodes = 0;
      size_t groups = 0;
      for (size_t q = 0; q + m <= queries.size(); q += m) {
        std::vector<Tree::Predicate> preds;
        for (size_t j = 0; j < m; ++j) {
          preds.push_back({queries[q + j], kRadius});
        }
        QueryStats stats;
        if (observing) {
          trace.Clear();
          stats.trace = &trace;
        }
        Stopwatch query_watch;
        const auto result = tree.ComplexRangeSearch(
            preds, conjunctive ? Tree::Combine::kAnd : Tree::Combine::kOr,
            &stats);
        if (observing) {
          QueryObservation obs;
          obs.kind = "complex";
          obs.radius = kRadius;
          obs.stats = stats;
          obs.stats.trace = nullptr;
          obs.results = result.size();
          obs.latency_us = query_watch.ElapsedSeconds() * 1e6;
          obs.level_nodes = trace.LevelNodeVisits();
          obs.prunes_by_reason = trace.prunes_by_reason();
          obs.trace_dropped = trace.dropped();
          if (observer.dump_events()) obs.events = trace.Events();
          observer.RecordQuery(obs);
        }
        nodes += static_cast<double>(stats.nodes_accessed);
        dists += static_cast<double>(stats.distance_computations);
        objs += static_cast<double>(result.size());
        for (const auto& p : preds) {
          QueryStats sep;
          tree.RangeSearch(p.query, p.radius, &sep);
          separate_nodes += static_cast<double>(sep.nodes_accessed);
        }
        ++groups;
      }
      if (observing) observer.EndCase();
      const double g = static_cast<double>(groups);
      nodes /= g;
      dists /= g;
      objs /= g;
      separate_nodes /= g;
      const std::vector<double> radii(m, kRadius);
      const double est_nodes = model.ComplexRangeNodes(radii, conjunctive);
      const double est_dists = model.ComplexRangeDistances(radii, conjunctive);
      const double est_objs = model.ComplexRangeObjects(radii, conjunctive);
      table.AddRow(
          {std::to_string(m), conjunctive ? "AND" : "OR",
           TablePrinter::Num(nodes, 1), TablePrinter::Num(est_nodes, 1),
           FormatErrorPercent(est_nodes, nodes), TablePrinter::Num(dists, 1),
           TablePrinter::Num(est_dists, 1),
           FormatErrorPercent(est_dists, dists), TablePrinter::Num(objs, 1),
           TablePrinter::Num(est_objs, 1), FormatErrorPercent(est_objs, objs),
           TablePrinter::Num(100.0 * nodes / separate_nodes, 1) + "%"});
    }
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: AND accesses fewer nodes than any single "
               "predicate, OR fewer than separate executions; the "
               "independence-based estimates track measurements (residual "
               "error = predicate correlation).\n"
            << "Elapsed: " << TablePrinter::Num(watch.ElapsedSeconds(), 1)
            << " s\n";
  return 0;
}
