// Extension: fractal (correlation) dimension — the paper's future-work
// item 5 — applied to the cost model's weakest spot: Fig. 2(c) shows the
// r(1) nearest-neighbor radius estimator degrading at high D because a
// 100-bin histogram cannot resolve the tiny quantile n*F(r) = 1. Here we
//   1. report the correlation dimension D2 of the Table-1 datasets, and
//   2. re-estimate r(1) through the power-law-smoothed CDF and compare
//      both estimators against the measured NN distance across D.
//
// Scale knobs: MCM_N (default 10000), MCM_QUERIES (default 500).

#include <cmath>
#include <iostream>

#include "mcm/bench_util/experiment.h"
#include "mcm/common/env.h"
#include "mcm/common/stopwatch.h"
#include "mcm/common/table_printer.h"
#include "mcm/dataset/text_datasets.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/distribution/estimator.h"
#include "mcm/distribution/fractal.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"
#include "mcm/obs/bench_observer.h"

int main() {
  using namespace mcm;
  using Traits = VectorTraits<LInfDistance>;
  const size_t n = static_cast<size_t>(GetEnvInt("MCM_N", 10000));
  const size_t num_queries = static_cast<size_t>(GetEnvInt("MCM_QUERIES", 500));
  constexpr uint64_t kSeed = 42;

  BenchObserver observer("ext_fractal");
  Stopwatch watch;
  std::cout << "== Extension: correlation (fractal) dimension D2 (future "
               "work #5) ==\n\n";

  // Part 1: D2 across datasets.
  {
    TablePrinter table({"dataset", "D", "D2 (corr. dim)", "fit range"});
    for (size_t dim : {5u, 10u, 20u, 50u}) {
      for (const bool clustered : {false, true}) {
        const auto data = GenerateVectorDataset(
            clustered ? VectorDatasetKind::kClustered
                      : VectorDatasetKind::kUniform,
            n, dim, kSeed);
        EstimatorOptions eo;
        eo.num_bins = 200;
        eo.max_pairs = 2000000;
        eo.seed = kSeed;
        const auto hist =
            EstimateDistanceDistribution(data, LInfDistance{}, eo);
        const auto fit = EstimateCorrelationDimension(hist, 0.001, 0.2);
        // std::string("[") dodges the operator+(const char*, string&&)
        // overload that GCC 12 flags with a bogus -Wrestrict.
        table.AddRow({clustered ? "clustered" : "uniform",
                      std::to_string(dim), TablePrinter::Num(fit.dimension, 2),
                      std::string("[") + TablePrinter::Num(fit.r_lo, 3) +
                          ", " + TablePrinter::Num(fit.r_hi, 3) + "]"});
      }
    }
    const auto words = GenerateKeywords(n, kSeed);
    EstimatorOptions eo;
    eo.num_bins = 25;
    eo.d_plus = 25.0;
    const auto hist =
        EstimateDistanceDistribution(words, EditDistanceMetric{}, eo);
    const auto fit = EstimateCorrelationDimension(hist, 0.001, 0.3);
    table.AddRow({"keywords (edit)", "-", TablePrinter::Num(fit.dimension, 2),
                  std::string("[") + TablePrinter::Num(fit.r_lo, 1) + ", " +
                      TablePrinter::Num(fit.r_hi, 1) + "]"});
    std::cout << "-- D2 of the Table-1 datasets (uniform data: D2 ~= D; "
                 "clustering lowers D2) --\n";
    table.Print(std::cout);
    std::cout << "\n";
  }

  // Part 2: r(1) with and without power-law smoothing vs measured NN
  // distance (the Fig. 2(c) artifact).
  {
    TablePrinter table({"D", "nn real", "r(1) histogram", "err",
                        "r(1) fractal", "err"});
    for (size_t dim = 10; dim <= 50; dim += 10) {
      const auto data = GenerateClustered(n, dim, kSeed);
      const auto queries = GenerateVectorQueries(
          VectorDatasetKind::kClustered, num_queries, dim, kSeed);
      MTreeOptions topt;
      topt.seed = kSeed;
      auto tree = MTree<Traits>::BulkLoad(data, LInfDistance{}, topt);
      const auto measured =
          MeasureKnn(tree, queries, 1, &observer,
                     "D=" + std::to_string(dim),
                     {}, {{"dim", static_cast<double>(dim)}});

      EstimatorOptions eo;
      eo.num_bins = 100;
      eo.seed = kSeed;
      const auto hist = EstimateDistanceDistribution(data, LInfDistance{}, eo);
      const double p1 = 1.0 / static_cast<double>(n);
      const double r1_hist = hist.Quantile(p1);
      double r1_fractal = r1_hist;
      try {
        // NOTE: the fit window must be tail-local. On clustered data the
        // power-law exponent is scale-dependent (the within-cluster regime
        // has a much larger local exponent than the global D2); fitting the
        // global window [5e-4, 0.2] and extrapolating to p = 1/n badly
        // undershoots r(1). See EXPERIMENTS.md.
        const auto fit = EstimateCorrelationDimension(hist, 0.0005, 0.05);
        r1_fractal = FractalSmoothedCdf(hist, fit).Quantile(p1);
      } catch (const std::exception&) {
        // Fit window empty: keep the histogram estimate.
      }
      table.AddRow({std::to_string(dim),
                    TablePrinter::Num(measured.avg_kth_distance, 4),
                    TablePrinter::Num(r1_hist, 4),
                    FormatErrorPercent(r1_hist, measured.avg_kth_distance),
                    TablePrinter::Num(r1_fractal, 4),
                    FormatErrorPercent(r1_fractal,
                                       measured.avg_kth_distance)});
    }
    std::cout << "-- r(1) estimator: histogram quantile vs power-law "
                 "smoothed quantile --\n";
    table.Print(std::cout);
  }

  std::cout << "\nExpected shape: D2 tracks the embedding dimension on "
               "uniform data and drops under clustering. Finding: on "
               "clustered data the power-law exponent is scale-dependent, "
               "so tail extrapolation must fit a tail-local window; with "
               "one, the smoothed r(1) tracks the histogram quantile.\n"
            << "Elapsed: " << TablePrinter::Num(watch.ElapsedSeconds(), 1)
            << " s\n";
  return 0;
}
