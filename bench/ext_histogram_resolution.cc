// Ablation: how many histogram bins does the cost model need? The paper
// uses 100 bins for vector data and 25 for text, and attributes the r(1)
// estimator's high-D errors to "the approximation introduced by the
// histogram representation". This bench sweeps the bin count and the
// pair-sampling budget and reports N-MCM range-cost and E[nn] accuracy,
// quantifying the model's two approximation sources.
//
// Scale knobs: MCM_N (default 10000), MCM_QUERIES (default 500).

#include <cmath>
#include <iostream>

#include "mcm/bench_util/experiment.h"
#include "mcm/common/env.h"
#include "mcm/common/stopwatch.h"
#include "mcm/common/table_printer.h"
#include "mcm/cost/nmcm.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/distribution/estimator.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"
#include "mcm/obs/bench_observer.h"

int main() {
  using namespace mcm;
  using Traits = VectorTraits<LInfDistance>;
  const size_t n = static_cast<size_t>(GetEnvInt("MCM_N", 10000));
  const size_t num_queries = static_cast<size_t>(GetEnvInt("MCM_QUERIES", 500));
  constexpr size_t kDim = 20;
  constexpr uint64_t kSeed = 42;
  const double rq = std::pow(0.01, 1.0 / static_cast<double>(kDim)) / 2.0;

  std::cout << "== Ablation: histogram resolution and sampling budget "
               "(clustered D=" << kDim << ", n=" << n << ") ==\n\n";
  Stopwatch watch;

  const auto data = GenerateClustered(n, kDim, kSeed);
  const auto queries = GenerateVectorQueries(VectorDatasetKind::kClustered,
                                             num_queries, kDim, kSeed);
  MTreeOptions topt;
  topt.seed = kSeed;
  auto tree = MTree<Traits>::BulkLoad(data, LInfDistance{}, topt);
  const auto stats = tree.CollectStats(1.0);
  BenchObserver observer("ext_histogram_resolution");
  const auto range_measured = MeasureRange(tree, queries, rq, &observer,
                                           "range", {}, {{"radius", rq}});
  const auto nn_measured =
      MeasureKnn(tree, queries, 1, &observer, "nn1", {}, {{"k", 1.0}});

  // Part 1: bin count at a fixed generous sampling budget.
  {
    TablePrinter table({"bins", "CPU est", "err", "I/O est", "err",
                        "E[nn] est", "err"});
    for (size_t bins : {5u, 10u, 25u, 50u, 100u, 400u, 1000u}) {
      EstimatorOptions eo;
      eo.num_bins = bins;
      eo.max_pairs = 500000;
      eo.seed = kSeed;
      const auto hist = EstimateDistanceDistribution(data, LInfDistance{}, eo);
      const NodeBasedCostModel model(hist, stats);
      const double cpu = model.RangeDistances(rq);
      const double io = model.RangeNodes(rq);
      const double enn = model.nn_model().ExpectedNnDistance(1);
      table.AddRow({std::to_string(bins), TablePrinter::Num(cpu, 1),
                    FormatErrorPercent(cpu, range_measured.avg_dists),
                    TablePrinter::Num(io, 1),
                    FormatErrorPercent(io, range_measured.avg_nodes),
                    TablePrinter::Num(enn, 4),
                    FormatErrorPercent(enn, nn_measured.avg_kth_distance)});
    }
    std::cout << "-- bins sweep (500k sampled pairs) — measured: CPU="
              << TablePrinter::Num(range_measured.avg_dists, 1)
              << " I/O=" << TablePrinter::Num(range_measured.avg_nodes, 1)
              << " nn=" << TablePrinter::Num(nn_measured.avg_kth_distance, 4)
              << " --\n";
    table.Print(std::cout);
    std::cout << "\n";
  }

  // Part 2: sampling budget at the paper's 100 bins.
  {
    TablePrinter table({"pairs", "CPU est", "err", "I/O est", "err"});
    for (size_t pairs : {1000u, 10000u, 100000u, 1000000u}) {
      EstimatorOptions eo;
      eo.num_bins = 100;
      eo.max_pairs = pairs;
      eo.seed = kSeed;
      const auto hist = EstimateDistanceDistribution(data, LInfDistance{}, eo);
      const NodeBasedCostModel model(hist, stats);
      const double cpu = model.RangeDistances(rq);
      const double io = model.RangeNodes(rq);
      table.AddRow({std::to_string(pairs), TablePrinter::Num(cpu, 1),
                    FormatErrorPercent(cpu, range_measured.avg_dists),
                    TablePrinter::Num(io, 1),
                    FormatErrorPercent(io, range_measured.avg_nodes)});
    }
    std::cout << "-- pair-sampling sweep (100 bins) --\n";
    table.Print(std::cout);
  }

  std::cout << "\nExpected shape: accuracy saturates around the paper's "
               "100-bin / 10^5-pair operating point; very coarse histograms "
               "(<25 bins) visibly degrade the NN-distance estimate.\n"
            << "Elapsed: " << TablePrinter::Num(watch.ElapsedSeconds(), 1)
            << " s\n";
  return 0;
}
