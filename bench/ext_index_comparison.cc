// Extension: CPU-cost comparison of the metric indexes the paper discusses
// (Section 1): the M-tree (in both pruning modes), the vp-tree [8], the
// GNAT [6], and a sequential scan, on the same workloads. The paper's
// framing — static main-memory trees optimize only distance computations,
// while the M-tree also pages to disk — shows up directly: the table lists
// avg distance computations (all indexes) and node reads (M-tree = real
// 4 KB pages; for the others "nodes" are memory-resident and shown in
// parentheses for information only).
//
// Scale knobs: MCM_N (default 10000), MCM_QUERIES (default 300).
//
// Throughput (QPS) mode: the same range workload is also pushed through the
// engine's concurrent batch executor at 1/2/4/8 worker threads; each thread
// count is one BenchObserver case (params: radius, threads, qps) in the
// BENCH_ext_index_comparison artifacts. Results and merged counters are
// identical to the sequential loop by construction — only wall time moves.

#include <iostream>

#include "mcm/baseline/linear_scan.h"
#include "mcm/bench_util/experiment.h"
#include "mcm/common/env.h"
#include "mcm/common/stopwatch.h"
#include "mcm/common/table_printer.h"
#include "mcm/dataset/text_datasets.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/gnat/gnat.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"
#include "mcm/obs/bench_observer.h"
#include "mcm/vptree/vptree.h"

namespace {

constexpr uint64_t kSeed = 42;

template <typename Traits, typename Metric>
void RunCase(const std::string& label,
             const std::vector<typename Traits::Object>& data,
             const std::vector<typename Traits::Object>& queries,
             const Metric& metric, const std::vector<double>& radii,
             mcm::BenchObserver* observer) {
  using namespace mcm;
  MTreeOptions basic_options;
  basic_options.seed = kSeed;
  basic_options.pruning = PruningMode::kBasic;
  MTreeOptions opt_options = basic_options;
  opt_options.pruning = PruningMode::kOptimized;
  auto mtree_basic = MTree<Traits>::BulkLoad(data, metric, basic_options);
  auto mtree_opt = MTree<Traits>::BulkLoad(data, metric, opt_options);

  VpTreeOptions vp_options;
  vp_options.seed = kSeed;
  const VpTree<Traits> vptree(data, metric, vp_options);

  GnatOptions gnat_options;
  gnat_options.seed = kSeed;
  const Gnat<Traits> gnat(data, metric, gnat_options);

  const LinearScan<Traits> scan(data, metric);

  TablePrinter table({"r_Q", "M-tree basic", "M-tree opt", "vp-tree", "GNAT",
                      "scan", "M-tree 4KB reads"});
  for (double rq : radii) {
    const std::string r_str = TablePrinter::Num(rq, 2);
    const std::vector<std::pair<std::string, double>> params = {
        {"radius", rq}};
    const auto mb = MeasureRange(mtree_basic, queries, rq, observer,
                                 label + " mtree-basic r=" + r_str, {},
                                 params);
    const auto mo = MeasureRange(mtree_opt, queries, rq, observer,
                                 label + " mtree-opt r=" + r_str, {}, params);
    const auto vp = MeasureRange(vptree, queries, rq, observer,
                                 label + " vptree r=" + r_str, {}, params);
    const auto gn = MeasureRange(gnat, queries, rq, observer,
                                 label + " gnat r=" + r_str, {}, params);
    const auto ls = MeasureRange(scan, queries, rq, observer,
                                 label + " scan r=" + r_str, {}, params);
    table.AddRow({TablePrinter::Num(rq, 2), TablePrinter::Num(mb.avg_dists, 0),
                  TablePrinter::Num(mo.avg_dists, 0),
                  TablePrinter::Num(vp.avg_dists, 0),
                  TablePrinter::Num(gn.avg_dists, 0),
                  TablePrinter::Num(ls.avg_dists, 0),
                  TablePrinter::Num(mb.avg_nodes, 0)});
  }
  std::cout << "-- " << label << " (avg distance computations / query) --\n";
  table.Print(std::cout);
  std::cout << "\n";
}

/// Batch-executor throughput over one index: the same workload at growing
/// worker counts, one observer case per thread count.
template <typename Index, typename Object>
void RunThroughput(const std::string& label, const Index& index,
                   const std::vector<Object>& queries, double radius,
                   mcm::BenchObserver* observer) {
  using namespace mcm;
  TablePrinter table({"threads", "QPS", "speedup", "avg dists"});
  double base_qps = 0.0;
  for (const size_t threads : {1, 2, 4, 8}) {
    const auto r = MeasureRangeThroughput(
        index, queries, radius, threads, observer,
        label + " threads=" + std::to_string(threads), {{"radius", radius}});
    if (threads == 1) base_qps = r.qps;
    table.AddRow({std::to_string(threads), TablePrinter::Num(r.qps, 0),
                  TablePrinter::Num(base_qps > 0.0 ? r.qps / base_qps : 0.0, 2),
                  TablePrinter::Num(r.costs.avg_dists, 0)});
  }
  std::cout << "-- " << label << " (batch executor, range r="
            << TablePrinter::Num(radius, 2) << ") --\n";
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace mcm;
  const size_t n = static_cast<size_t>(GetEnvInt("MCM_N", 10000));
  const size_t num_queries = static_cast<size_t>(GetEnvInt("MCM_QUERIES", 300));

  std::cout << "== Extension: index comparison (M-tree vs vp-tree [8] vs "
               "GNAT [6] vs scan), n=" << n << " ==\n\n";
  BenchObserver observer("ext_index_comparison");
  Stopwatch watch;
  {
    const auto data = GenerateClustered(n, 10, kSeed);
    const auto queries = GenerateVectorQueries(VectorDatasetKind::kClustered,
                                               num_queries, 10, kSeed);
    RunCase<VectorTraits<LInfDistance>>("clustered D=10, L_inf", data,
                                        queries, LInfDistance{},
                                        {0.05, 0.1, 0.2}, &observer);

    // Throughput mode: the concurrent batch executor over the M-tree and
    // the vp-tree on the same workload, 1/2/4/8 worker threads.
    MTreeOptions qps_options;
    qps_options.seed = kSeed;
    qps_options.pruning = PruningMode::kOptimized;
    const auto mtree =
        MTree<VectorTraits<LInfDistance>>::BulkLoad(data, LInfDistance{},
                                                    qps_options);
    RunThroughput("clustered D=10 mtree-opt qps", mtree, queries, 0.1,
                  &observer);
    VpTreeOptions vp_qps_options;
    vp_qps_options.seed = kSeed;
    const VpTree<VectorTraits<LInfDistance>> vptree(data, LInfDistance{},
                                                    vp_qps_options);
    RunThroughput("clustered D=10 vptree qps", vptree, queries, 0.1,
                  &observer);
  }
  {
    const auto words = GenerateKeywords(n, kSeed);
    const auto queries = GenerateKeywordQueries(num_queries, kSeed);
    RunCase<StringTraits<EditDistanceMetric>>("keywords, edit distance",
                                              words, queries,
                                              EditDistanceMetric{},
                                              {1.0, 2.0, 3.0}, &observer);
  }
  std::cout << "Expected shape: every index beats the scan at selective "
               "radii; the static trees (vp-tree, GNAT) are competitive on "
               "distance computations, while only the M-tree is paged "
               "(node reads = real 4 KB disk pages).\n"
            << "Elapsed: " << TablePrinter::Num(watch.ElapsedSeconds(), 1)
            << " s\n";
  return 0;
}
