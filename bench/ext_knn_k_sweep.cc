// Extension: k-NN cost model for k > 1. The paper derives P_{Q,k} and
// E[nn_{Q,k}] for general k (Eqs. 9-11) but only evaluates k = 1 (Fig. 2).
// This harness sweeps k and compares measured NN(Q,k) costs and the k-th NN
// distance against the N-MCM and L-MCM integrals — e.g. the paper's
// motivating "20 nearest keywords" query.
//
// Scale knobs: MCM_N (default 10000), MCM_QUERIES (default 500).

#include <iostream>

#include "mcm/bench_util/experiment.h"
#include "mcm/common/env.h"
#include "mcm/common/stopwatch.h"
#include "mcm/common/table_printer.h"
#include "mcm/cost/lmcm.h"
#include "mcm/cost/nmcm.h"
#include "mcm/dataset/text_datasets.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/distribution/estimator.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"
#include "mcm/obs/bench_observer.h"

namespace {

constexpr uint64_t kSeed = 42;
const size_t kKs[] = {1, 2, 5, 10, 20, 50, 100};

template <typename Traits, typename Metric>
void RunCase(const std::string& label,
             const std::vector<typename Traits::Object>& data,
             const std::vector<typename Traits::Object>& queries,
             const Metric& metric, double d_plus, size_t bins,
             mcm::BenchObserver* observer) {
  using namespace mcm;
  MTreeOptions options;
  options.seed = kSeed;
  auto tree = MTree<Traits>::BulkLoad(data, metric, options);
  EstimatorOptions eo;
  eo.num_bins = bins;
  eo.d_plus = d_plus;
  eo.seed = kSeed;
  const auto hist = EstimateDistanceDistribution(data, metric, eo);
  const auto stats = tree.CollectStats(d_plus);
  const NodeBasedCostModel nmcm(hist, stats);
  const LevelBasedCostModel lmcm(hist, stats);

  TablePrinter table({"k", "I/O real", "N-MCM", "err", "L-MCM", "err",
                      "nn_k real", "E[nn_k]", "err"});
  for (size_t k : kKs) {
    const double est_n = nmcm.NnNodes(k);
    const double est_l = lmcm.NnNodes(k);
    const auto measured = MeasureKnn(
        tree, queries, k, observer, label + " k=" + std::to_string(k),
        {{"N-MCM", est_n, nmcm.NnDistances(k), {}},
         {"L-MCM", est_l, lmcm.NnDistances(k), {}}},
        {{"k", static_cast<double>(k)}});
    const double enn = nmcm.nn_model().ExpectedNnDistance(k);
    table.AddRow({std::to_string(k), TablePrinter::Num(measured.avg_nodes, 1),
                  TablePrinter::Num(est_n, 1),
                  FormatErrorPercent(est_n, measured.avg_nodes),
                  TablePrinter::Num(est_l, 1),
                  FormatErrorPercent(est_l, measured.avg_nodes),
                  TablePrinter::Num(measured.avg_kth_distance, 3),
                  TablePrinter::Num(enn, 3),
                  FormatErrorPercent(enn, measured.avg_kth_distance)});
  }
  std::cout << "-- " << label << " --\n";
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace mcm;
  const size_t n = static_cast<size_t>(GetEnvInt("MCM_N", 10000));
  const size_t num_queries = static_cast<size_t>(GetEnvInt("MCM_QUERIES", 500));

  std::cout << "== Extension: NN(Q,k) costs for k in {1..100}, n=" << n
            << ", " << num_queries << " queries ==\n\n";
  BenchObserver observer("ext_knn_k_sweep");
  Stopwatch watch;
  {
    const auto data = GenerateClustered(n, 15, kSeed);
    const auto queries = GenerateVectorQueries(VectorDatasetKind::kClustered,
                                               num_queries, 15, kSeed);
    RunCase<VectorTraits<LInfDistance>>("clustered D=15, L_inf", data,
                                        queries, LInfDistance{}, 1.0, 100,
                                        &observer);
  }
  {
    const auto words = GenerateKeywords(n, kSeed);
    const auto queries = GenerateKeywordQueries(num_queries, kSeed);
    RunCase<StringTraits<EditDistanceMetric>>(
        "keywords, edit distance (the paper's '20 nearest keywords' "
        "motivating query)",
        words, queries, EditDistanceMetric{}, 25.0, 25, &observer);
  }
  std::cout << "Expected shape: costs grow with k; model tracks measurement "
               "across the sweep.\n"
            << "Elapsed: " << TablePrinter::Num(watch.ElapsedSeconds(), 1)
            << " s\n";
  return 0;
}
