// Extension: the multi-viewpoint, query-sensitive cost model — the paper's
// future-work item 2. On a deliberately non-homogeneous dataset (tight
// core + uniform halo, HV well below the >0.98 of Table 1's datasets) we
// compare three per-query CPU/I/O estimators against measurement:
//   global   — L-MCM with the single global F̂ⁿ (the paper's model);
//   nearest  — L-MCM with the RDD of the viewpoint closest to the query;
//   blended  — L-MCM with the inverse-distance blend of the 3 nearest
//              viewpoints' RDDs.
// Reported: mean per-query relative error. The paper's conjecture is that
// keeping several viewpoints fixes the global model's failure on
// non-homogeneous spaces; this bench quantifies exactly that.
//
// Scale knobs: MCM_N (default 8000), MCM_QUERIES (default 200).

#include <iostream>

#include "mcm/common/env.h"
#include "mcm/common/numeric.h"
#include "mcm/common/stopwatch.h"
#include "mcm/common/table_printer.h"
#include "mcm/cost/lmcm.h"
#include "mcm/cost/nmcm.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/distribution/estimator.h"
#include "mcm/distribution/homogeneity.h"
#include "mcm/distribution/viewpoints.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"
#include "mcm/obs/bench_observer.h"

int main() {
  using namespace mcm;
  using Traits = VectorTraits<LInfDistance>;
  const size_t n = static_cast<size_t>(GetEnvInt("MCM_N", 8000));
  const size_t num_queries = static_cast<size_t>(GetEnvInt("MCM_QUERIES", 200));
  constexpr size_t kDim = 8;
  constexpr uint64_t kSeed = 42;

  BenchObserver observer("ext_multi_viewpoint");
  QueryTrace trace(observer.trace_capacity());
  Stopwatch watch;
  std::cout << "== Extension: multi-viewpoint cost model on a "
               "non-homogeneous space (future work #2) ==\n\n";

  struct Case {
    const char* name;
    std::vector<FloatVector> data;
    std::vector<FloatVector> queries;
  };
  std::vector<Case> cases;
  cases.push_back({"non-homogeneous (core+halo)",
                   GenerateNonHomogeneous(n, kDim, kSeed),
                   GenerateNonHomogeneousQueries(num_queries, kDim, kSeed)});
  cases.push_back({"clustered (homogeneous control)",
                   GenerateClustered(n, kDim, kSeed),
                   GenerateVectorQueries(VectorDatasetKind::kClustered,
                                         num_queries, kDim, kSeed)});

  for (auto& c : cases) {
    HvOptions ho;
    ho.num_viewpoints = 80;
    ho.num_targets = 800;
    ho.seed = kSeed;
    const auto hv = EstimateHomogeneity(c.data, LInfDistance{}, ho);

    MTreeOptions topt;
    topt.seed = kSeed;
    auto tree = MTree<Traits>::BulkLoad(c.data, LInfDistance{}, topt);
    const auto stats = tree.CollectStats(1.0);

    EstimatorOptions eo;
    eo.num_bins = 100;
    eo.seed = kSeed;
    const auto global = EstimateDistanceDistribution(c.data, LInfDistance{},
                                                     eo);
    const NodeBasedCostModel global_nmcm(global, stats);
    const LevelBasedCostModel global_lmcm(global, stats);

    ViewpointOptions vo;
    vo.num_viewpoints = 16;
    vo.seed = kSeed;
    const auto set = ViewpointSet<FloatVector, LInfDistance>::Build(
        c.data, LInfDistance{}, vo);

    TablePrinter table({"r_Q", "estimator", "mean |err| CPU",
                        "mean |err| I/O"});
    for (double rq : {0.05, 0.1, 0.2}) {
      constexpr int kEstimators = 6;
      double cpu_err[kEstimators] = {0, 0, 0, 0, 0, 0};
      double io_err[kEstimators] = {0, 0, 0, 0, 0, 0};
      const bool observing = observer.enabled();
      if (observing) {
        observer.BeginCase(
            std::string(c.name) + " r=" + TablePrinter::Num(rq, 2),
            {{"radius", rq}},
            {{"N-MCM", global_nmcm.RangeNodes(rq),
              global_nmcm.RangeDistances(rq),
              global_nmcm.RangeNodesPerLevel(rq)},
             {"L-MCM", global_lmcm.RangeNodes(rq),
              global_lmcm.RangeDistances(rq),
              global_lmcm.RangeNodesPerLevel(rq)}});
      }
      for (const auto& q : c.queries) {
        QueryStats qs;
        if (observing) {
          trace.Clear();
          qs.trace = &trace;
        }
        Stopwatch query_watch;
        const auto results = tree.RangeSearch(q, rq, &qs);
        if (observing) {
          QueryObservation obs;
          obs.kind = "range";
          obs.radius = rq;
          obs.stats = qs;
          obs.stats.trace = nullptr;
          obs.results = results.size();
          obs.latency_us = query_watch.ElapsedSeconds() * 1e6;
          obs.level_nodes = trace.LevelNodeVisits();
          obs.prunes_by_reason = trace.prunes_by_reason();
          obs.trace_dropped = trace.dropped();
          if (observer.dump_events()) obs.events = trace.Events();
          observer.RecordQuery(obs);
        }
        const double cpu = static_cast<double>(qs.distance_computations);
        const double io = static_cast<double>(qs.nodes_accessed);

        const NodeBasedCostModel bracket1(
            set.QueryDistribution(q, 1, BlendMode::kTriangleMidpoint), stats);
        const NodeBasedCostModel bracket3(
            set.QueryDistribution(q, 3, BlendMode::kTriangleMidpoint), stats);
        const NodeBasedCostModel plain1(
            set.QueryDistribution(q, 1, BlendMode::kPlain), stats);
        const NodeBasedCostModel plain3(
            set.QueryDistribution(q, 3, BlendMode::kPlain), stats);
        const double cpu_est[kEstimators] = {
            global_lmcm.RangeDistances(rq), global_nmcm.RangeDistances(rq),
            bracket1.RangeDistances(rq),    bracket3.RangeDistances(rq),
            plain1.RangeDistances(rq),      plain3.RangeDistances(rq)};
        const double io_est[kEstimators] = {
            global_lmcm.RangeNodes(rq), global_nmcm.RangeNodes(rq),
            bracket1.RangeNodes(rq),    bracket3.RangeNodes(rq),
            plain1.RangeNodes(rq),      plain3.RangeNodes(rq)};
        for (int m = 0; m < kEstimators; ++m) {
          cpu_err[m] += RelativeError(cpu_est[m], cpu);
          io_err[m] += RelativeError(io_est[m], io);
        }
      }
      if (observing) observer.EndCase();
      const char* names[kEstimators] = {
          "global F, L-MCM",        "global F, N-MCM",
          "bracket nearest (N-MCM)", "bracket blend3 (N-MCM)",
          "plain nearest (N-MCM)",   "plain blend3 (N-MCM)"};
      for (int m = 0; m < kEstimators; ++m) {
        table.AddRow(
            {TablePrinter::Num(rq, 2), names[m],
             TablePrinter::Num(
                 100.0 * cpu_err[m] / static_cast<double>(c.queries.size()),
                 1) +
                 "%",
             TablePrinter::Num(
                 100.0 * io_err[m] / static_cast<double>(c.queries.size()),
                 1) +
                 "%"});
      }
    }
    std::cout << "-- " << c.name << " (n=" << n
              << ", HV=" << TablePrinter::Num(hv.hv, 3) << ") --\n";
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Findings (see EXPERIMENTS.md): (1) on the non-homogeneous "
               "dataset the triangle-bracket viewpoint estimators cut the "
               "global model's per-query error substantially; (2) the "
               "query-sensitive distribution must pair with N-MCM's "
               "per-node radii — L-MCM's per-level averages erase the "
               "radius/position correlation that dominates the error; "
               "(3) neither blend mode dominates: the bracket wins where no "
               "viewpoint represents the query region, the plain RDD wins "
               "when the nearest viewpoint shares the query's cluster.\n"
            << "Elapsed: " << TablePrinter::Num(watch.ElapsedSeconds(), 1)
            << " s\n";
  return 0;
}
