// Extension: sharded scatter-gather search with cost-model routing.
// Clustered vector workload (L2, the paper's biased query model), split
// into 1 / 4 / 16 shards. For each shard count the same range and k-NN
// workloads run twice — naive scatter (every shard dispatched, shard
// order) and cost routing (provable annulus skips + cheapest-first
// dispatch with k-NN bound propagation) — and the QPS grid answers the
// range workload through a BatchExecutor at 1/2/4/8 threads with
// per-query latency percentiles in the summary records. One admission
// case runs the 8-thread grid point under a deliberately small
// predicted-node budget to show queueing instead of buffer-pool thrash.
//
// The emitted BENCH_shard_scale.json backs two CTest gates:
//   bench_json_schema_shard   — schema (incl. latency_us percentiles);
//   bench_compare_shard       — routed_s<max> must read <= 0.85x the
//                               nodes of naive_s<max>.
//
// Scale knobs: MCM_N (default 20000), MCM_QUERIES (default 100),
//              MCM_SHARDS (default "1,4,16"), MCM_SHARD_ASSIGN,
//              MCM_SHARD_INFLIGHT (admission budget for the qps cases).

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "mcm/bench_util/experiment.h"
#include "mcm/common/env.h"
#include "mcm/common/stopwatch.h"
#include "mcm/common/table_printer.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/distribution/estimator.h"
#include "mcm/metric/traits.h"
#include "mcm/obs/bench_observer.h"
#include "mcm/shard/router.h"
#include "mcm/shard/sharded_index.h"

namespace {

std::vector<size_t> ParseShardCounts(const std::string& spec) {
  std::vector<size_t> counts;
  size_t value = 0;
  bool in_number = false;
  for (const char c : spec) {
    if (c >= '0' && c <= '9') {
      value = value * 10 + static_cast<size_t>(c - '0');
      in_number = true;
    } else if (in_number) {
      if (value > 0) counts.push_back(value);
      value = 0;
      in_number = false;
    }
  }
  if (in_number && value > 0) counts.push_back(value);
  if (counts.empty()) counts = {1, 4, 16};
  return counts;
}

}  // namespace

int main() {
  using namespace mcm;
  using Traits = VectorTraits<L2Distance>;
  using Sharded = shard::ShardedMTree<Traits>;
  using Router = shard::ShardRouter<Traits>;

  const size_t n = static_cast<size_t>(GetEnvInt("MCM_N", 20000));
  const size_t num_queries =
      static_cast<size_t>(GetEnvInt("MCM_QUERIES", 100));
  const size_t dim = 8;
  const size_t k = 10;
  constexpr uint64_t kSeed = 42;
  const std::vector<size_t> shard_counts =
      ParseShardCounts(GetEnvString("MCM_SHARDS", "1,4,16"));
  const std::vector<size_t> thread_counts = {1, 2, 4, 8};

  const auto objects =
      GenerateVectorDataset(VectorDatasetKind::kClustered, n, dim, kSeed);
  const auto queries = GenerateVectorQueries(VectorDatasetKind::kClustered,
                                             num_queries, dim, kSeed + 1);

  // Radius targeting ~10 results per query on average: F̂⁻¹(10/n) over
  // the global distance distribution.
  const double d_plus = shard::DeriveDPlusSample(objects, L2Distance{});
  EstimatorOptions estimate;
  estimate.d_plus = d_plus;
  estimate.max_pairs = 200000;
  const DistanceHistogram global_f =
      EstimateDistanceDistribution(objects, L2Distance{}, estimate);
  const double radius =
      global_f.Quantile(10.0 / static_cast<double>(n));

  std::cout << "== Sharded scatter-gather: clustered L2, n=" << n << ", "
            << num_queries << " queries, radius "
            << TablePrinter::Num(radius, 3) << " (≈10 results), k=" << k
            << " ==\n\n";

  BenchObserver observer("shard_scale");
  Stopwatch watch;

  TablePrinter cost_table({"shards", "assign", "naive nodes",
                           "routed nodes", "saved", "skip/query",
                           "knn naive", "knn routed"});
  TablePrinter qps_table({"shards", "threads", "qps", "p50 us", "p95 us",
                          "p99 us"});

  for (const size_t num_shards : shard_counts) {
    shard::ShardedOptions build;
    build.num_shards = num_shards;
    build.d_plus = d_plus;
    build.seed = kSeed;
    const Sharded sharded = Sharded::Create(objects, L2Distance{}, build);

    shard::RouterOptions naive_options;
    naive_options.cost_routing = false;
    naive_options.inflight_budget = 0.0;  // Pure scatter baseline.
    const Router naive(sharded, naive_options);
    const Router routed(sharded);  // Cost routing + MCM_SHARD_INFLIGHT.

    const std::vector<std::pair<std::string, double>> params = {
        {"n", static_cast<double>(n)},
        {"shards", static_cast<double>(num_shards)},
        {"radius", radius}};
    const std::string suffix = "_s" + std::to_string(num_shards);

    const auto naive_range =
        MeasureRange(naive, queries, radius, &observer, "naive" + suffix,
                     {}, params);
    const auto routed_range =
        MeasureRange(routed, queries, radius, &observer, "routed" + suffix,
                     {}, params);
    const auto naive_knn = MeasureKnn(naive, queries, k, &observer,
                                      "knn_naive" + suffix, {}, params);
    const auto routed_knn = MeasureKnn(routed, queries, k, &observer,
                                       "knn_routed" + suffix, {}, params);

    // Skips per query, measured through one plan per query.
    double skips = 0.0;
    for (const auto& q : queries) {
      skips += static_cast<double>(routed.PlanRange(q, radius).skipped);
    }
    skips /= static_cast<double>(queries.size());

    const double saved =
        naive_range.avg_nodes > 0.0
            ? 100.0 * (1.0 - routed_range.avg_nodes / naive_range.avg_nodes)
            : 0.0;
    cost_table.AddRow(
        {std::to_string(num_shards), ToString(sharded.assignment()),
         TablePrinter::Num(naive_range.avg_nodes, 1),
         TablePrinter::Num(routed_range.avg_nodes, 1),
         TablePrinter::Num(saved, 1) + "%", TablePrinter::Num(skips, 2),
         TablePrinter::Num(naive_knn.avg_nodes, 1),
         TablePrinter::Num(routed_knn.avg_nodes, 1)});

    for (const size_t threads : thread_counts) {
      const auto result = MeasureRangeThroughput(
          routed, queries, radius, threads, &observer,
          "qps" + suffix + "_t" + std::to_string(threads), params);
      qps_table.AddRow({std::to_string(num_shards),
                        std::to_string(result.num_threads),
                        TablePrinter::Num(result.qps, 0),
                        TablePrinter::Num(result.latency_p50_us, 1),
                        TablePrinter::Num(result.latency_p95_us, 1),
                        TablePrinter::Num(result.latency_p99_us, 1)});
    }
  }

  // Admission showcase at the largest shard count: a small predicted-node
  // budget plus a per-shard concurrency cap, 8 threads. Same answers,
  // bounded in-flight work; the queued count shows the throttle engaged.
  {
    const size_t num_shards = shard_counts.back();
    shard::ShardedOptions build;
    build.num_shards = num_shards;
    build.d_plus = d_plus;
    build.seed = kSeed;
    const Sharded sharded = Sharded::Create(objects, L2Distance{}, build);
    shard::RouterOptions throttle;
    throttle.inflight_budget = 4.0;
    throttle.per_shard_inflight = 2;
    const Router admitted(sharded, throttle);
    const std::string label =
        "admission_s" + std::to_string(num_shards) + "_t8";
    const auto result = MeasureRangeThroughput(
        admitted, queries, radius, 8, &observer, label,
        {{"n", static_cast<double>(n)},
         {"shards", static_cast<double>(num_shards)},
         {"radius", radius},
         {"budget", throttle.inflight_budget}});
    std::cout << "admission (s=" << num_shards << ", t=8, budget "
              << throttle.inflight_budget << " nodes): "
              << TablePrinter::Num(result.qps, 0) << " qps, "
              << admitted.queued_queries() << "/" << num_queries
              << " queries queued\n\n";
  }

  cost_table.Print(std::cout);
  std::cout << "\n";
  qps_table.Print(std::cout);
  std::cout << "\nExpected shape: identical result counts for naive vs "
               "routed; routed node reads drop\nsteeply as shards grow "
               "(annulus skips on the clustered workload); QPS scales "
               "with\nthreads. Latency percentiles land in the summary "
               "records (p50/p95/p99).\nElapsed: "
            << TablePrinter::Num(watch.ElapsedSeconds(), 1) << " s\n";
  return 0;
}
