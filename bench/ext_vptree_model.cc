// Extension: experimental validation of the Section-5 vp-tree cost model —
// the paper derives the model (Eqs. 19-23) but defers its validation to
// future work. We build m-way vp-trees over uniform and clustered vector
// data and over keywords, and compare the model's predicted number of
// distance computations (computed from the distance distribution alone,
// with quantile-estimated cutoffs and renormalized subtree distributions)
// against measured averages, across a radius sweep.
//
// Scale knobs: MCM_N (default 10000), MCM_QUERIES (default 500).

#include <iostream>

#include "mcm/bench_util/experiment.h"
#include "mcm/common/env.h"
#include "mcm/common/stopwatch.h"
#include "mcm/common/table_printer.h"
#include "mcm/cost/vp_model.h"
#include "mcm/dataset/text_datasets.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/distribution/estimator.h"
#include "mcm/metric/traits.h"
#include "mcm/obs/bench_observer.h"
#include "mcm/vptree/vptree.h"

namespace {

constexpr uint64_t kSeed = 42;

template <typename Traits, typename Metric>
void RunCase(const std::string& label,
             const std::vector<typename Traits::Object>& data,
             const std::vector<typename Traits::Object>& queries,
             const Metric& metric, double d_plus, size_t bins,
             const std::vector<double>& radii, mcm::BenchObserver* observer) {
  using namespace mcm;
  EstimatorOptions eo;
  eo.num_bins = bins;
  eo.d_plus = d_plus;
  eo.seed = kSeed;
  const auto hist = EstimateDistanceDistribution(data, metric, eo);

  TablePrinter table({"m", "r_Q", "sel%", "CPU real", "model", "err"});
  for (size_t arity : {2u, 3u, 5u}) {
    VpTreeOptions topt;
    topt.arity = arity;
    topt.seed = kSeed;
    const VpTree<Traits> tree(data, metric, topt);
    VpCostModelOptions mopt;
    mopt.arity = arity;
    const VpTreeCostModel model(hist, data.size(), mopt);
    for (double rq : radii) {
      const double predicted = model.RangeDistances(rq);
      const auto measured = MeasureRange(
          tree, queries, rq, observer,
          label + " m=" + std::to_string(arity) + " r=" +
              TablePrinter::Num(rq, 2),
          {{"vp-model", -1.0, predicted, {}}},
          {{"arity", static_cast<double>(arity)}, {"radius", rq}});
      table.AddRow({std::to_string(arity), TablePrinter::Num(rq, 2),
                    TablePrinter::Num(100.0 * hist.Cdf(rq), 2),
                    TablePrinter::Num(measured.avg_dists, 1),
                    TablePrinter::Num(predicted, 1),
                    FormatErrorPercent(predicted, measured.avg_dists)});
    }
  }
  std::cout << "-- " << label << " --\n";
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace mcm;
  const size_t n = static_cast<size_t>(GetEnvInt("MCM_N", 10000));
  const size_t num_queries = static_cast<size_t>(GetEnvInt("MCM_QUERIES", 500));

  std::cout << "== Extension: vp-tree cost model validation (Section 5) ==\n"
            << "n=" << n << ", " << num_queries
            << " queries; model uses only the distance distribution.\n\n";

  BenchObserver observer("ext_vptree_model");
  Stopwatch watch;
  {
    const auto data = GenerateUniform(n, 10, kSeed);
    const auto queries = GenerateVectorQueries(VectorDatasetKind::kUniform,
                                               num_queries, 10, kSeed);
    RunCase<VectorTraits<LInfDistance>>("uniform D=10, L_inf", data, queries,
                                        LInfDistance{}, 1.0, 100,
                                        {0.05, 0.1, 0.2, 0.3}, &observer);
  }
  {
    const auto data = GenerateClustered(n, 10, kSeed);
    const auto queries = GenerateVectorQueries(VectorDatasetKind::kClustered,
                                               num_queries, 10, kSeed);
    RunCase<VectorTraits<LInfDistance>>("clustered D=10, L_inf", data,
                                        queries, LInfDistance{}, 1.0, 100,
                                        {0.05, 0.1, 0.2, 0.3}, &observer);
  }
  {
    const auto words = GenerateKeywords(n, kSeed);
    const auto queries = GenerateKeywordQueries(num_queries, kSeed);
    RunCase<StringTraits<EditDistanceMetric>>("keywords, edit distance",
                                              words, queries,
                                              EditDistanceMetric{}, 25.0, 25,
                                              {1.0, 2.0, 3.0, 5.0},
                                              &observer);
  }
  std::cout << "Expected shape: predictions track measurements (tighter on "
               "uniform data; clustered data stresses the homogeneity "
               "assumption of the renormalization step).\n"
            << "Elapsed: " << TablePrinter::Num(watch.ElapsedSeconds(), 1)
            << " s\n";
  return 0;
}
