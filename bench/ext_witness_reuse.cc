// Extension: distance reuse through the witness cascade on a string
// workload (edit distance, synthetic keywords). Each index family runs
// the same range(Q, 3) workload twice — witness capacity 0 (the
// pre-cascade behavior) and the default capacity — and the table reports
// the measured drop in metric evaluations plus the avoided-evaluation
// counter. The linear scan rides along as the witness-free floor.
//
// The emitted BENCH_witness_reuse.json is the artifact behind the
// `bench_compare_witness` CTest, which requires the default-capacity
// M-tree run to spend at most 85% of the capacity-0 run's distances
// (generic metric mode of scripts/bench_compare.py).
//
// Scale knobs: MCM_N (default 4000 keywords), MCM_QUERIES (default 100),
//              MCM_WITNESS_CAP (default 8).

#include <iostream>
#include <string>

#include "mcm/baseline/linear_scan.h"
#include "mcm/bench_util/experiment.h"
#include "mcm/common/env.h"
#include "mcm/common/stopwatch.h"
#include "mcm/common/table_printer.h"
#include "mcm/dataset/text_datasets.h"
#include "mcm/gnat/gnat.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"
#include "mcm/obs/bench_observer.h"
#include "mcm/vptree/vptree.h"

namespace {

struct CasePair {
  std::string index;
  mcm::MeasuredCosts off;  // witness capacity 0
  mcm::MeasuredCosts on;   // default capacity
};

}  // namespace

int main() {
  using namespace mcm;
  using Traits = StringTraits<EditDistanceMetric>;
  const size_t n = static_cast<size_t>(GetEnvInt("MCM_N", 4000));
  const size_t num_queries =
      static_cast<size_t>(GetEnvInt("MCM_QUERIES", 100));
  const int cap = static_cast<int>(GetEnvInt("MCM_WITNESS_CAP", 8));
  constexpr double kRadius = 3.0;
  constexpr uint64_t kSeed = 42;

  std::cout << "== Witness cascade: distance reuse on range(Q, 3), edit "
               "distance, n=" << n << ", " << num_queries << " queries, "
               "capacity 0 vs " << cap << " ==\n\n";

  const auto words = GenerateKeywords(n, kSeed);
  const auto queries = GenerateKeywordQueries(num_queries, kSeed + 1);

  BenchObserver observer("witness_reuse");
  Stopwatch watch;
  std::vector<CasePair> rows;

  const auto run = [&](const auto& tree, const std::string& label,
                       int capacity) {
    return MeasureRange(tree, queries, kRadius, &observer, label, {},
                        {{"n", static_cast<double>(n)},
                         {"radius", kRadius},
                         {"witness_capacity",
                          static_cast<double>(capacity)}});
  };

  {
    CasePair row;
    row.index = "mtree";
    for (const int capacity : {0, cap}) {
      MTreeOptions options;  // 4 KB nodes, paper defaults.
      options.witness_capacity = capacity;
      auto tree =
          MTree<Traits>::BulkLoad(words, EditDistanceMetric{}, options);
      tree.InstallWitnessCascade();
      const auto costs = run(tree, "mtree_edit_w" + std::to_string(capacity),
                             capacity);
      (capacity == 0 ? row.off : row.on) = costs;
    }
    rows.push_back(row);
  }
  {
    CasePair row;
    row.index = "vptree";
    for (const int capacity : {0, cap}) {
      VpTreeOptions options;
      options.witness_capacity = capacity;
      VpTree<Traits> tree(words, EditDistanceMetric{}, options);
      const auto costs = run(
          tree, "vptree_edit_w" + std::to_string(capacity), capacity);
      (capacity == 0 ? row.off : row.on) = costs;
    }
    rows.push_back(row);
  }
  {
    CasePair row;
    row.index = "gnat";
    for (const int capacity : {0, cap}) {
      GnatOptions options;
      options.witness_capacity = capacity;
      Gnat<Traits> tree(words, EditDistanceMetric{}, options);
      const auto costs =
          run(tree, "gnat_edit_w" + std::to_string(capacity), capacity);
      (capacity == 0 ? row.off : row.on) = costs;
    }
    rows.push_back(row);
  }

  // Witness-free floor: every object evaluated exactly once.
  const LinearScan<Traits> scan(words, EditDistanceMetric{});
  const auto scan_costs = run(scan, "linear_edit", 0);

  TablePrinter table({"index", "dists w0", "dists w" + std::to_string(cap),
                      "saved", "results w0", "results w" +
                      std::to_string(cap)});
  for (const auto& row : rows) {
    const double saved =
        row.off.avg_dists > 0.0
            ? 100.0 * (1.0 - row.on.avg_dists / row.off.avg_dists)
            : 0.0;
    table.AddRow({row.index, TablePrinter::Num(row.off.avg_dists, 1),
                  TablePrinter::Num(row.on.avg_dists, 1),
                  TablePrinter::Num(saved, 1) + "%",
                  TablePrinter::Num(row.off.avg_results, 2),
                  TablePrinter::Num(row.on.avg_results, 2)});
  }
  table.AddRow({"linear", TablePrinter::Num(scan_costs.avg_dists, 1),
                TablePrinter::Num(scan_costs.avg_dists, 1), "0.0%",
                TablePrinter::Num(scan_costs.avg_results, 2),
                TablePrinter::Num(scan_costs.avg_results, 2)});
  table.Print(std::cout);

  std::cout << "\nExpected shape: identical result counts per index; the "
               "witness runs cut distance\ncomputations (>= 15% on the "
               "M-tree at default capacity).\n"
            << "Elapsed: " << TablePrinter::Num(watch.ElapsedSeconds(), 1)
            << " s\n";
  return 0;
}
