// Figure 1: estimated vs measured costs of range queries
// range(Q, (0.01)^(1/D)/2) over the clustered datasets, as a function of
// the space dimensionality D.
//   (a) CPU cost  — distance computations (Eq. 7 for N-MCM, Eq. 16 L-MCM)
//   (b) I/O cost  — node reads            (Eq. 6 for N-MCM, Eq. 15 L-MCM)
//   (c) result cardinality                (Eq. 8)
// Paper-reported shapes: N-MCM errors <= 4%, L-MCM <= 10%, cardinality <= 3%.
//
// Scale knobs: MCM_N (default 10000), MCM_QUERIES (default 1000),
//              MCM_BINS (default 100).

#include <cmath>
#include <iostream>

#include "mcm/bench_util/experiment.h"
#include "mcm/common/env.h"
#include "mcm/common/stopwatch.h"
#include "mcm/common/table_printer.h"
#include "mcm/cost/lmcm.h"
#include "mcm/cost/nmcm.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/distribution/estimator.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"
#include "mcm/obs/bench_observer.h"

int main() {
  using namespace mcm;
  using Traits = VectorTraits<LInfDistance>;
  const size_t n = static_cast<size_t>(GetEnvInt("MCM_N", 10000));
  const size_t num_queries =
      static_cast<size_t>(GetEnvInt("MCM_QUERIES", 1000));
  const size_t bins = static_cast<size_t>(GetEnvInt("MCM_BINS", 100));
  constexpr uint64_t kSeed = 42;

  std::cout << "== Figure 1: range(Q, (0.01)^(1/D)/2) on clustered data, "
            << "n=" << n << ", " << num_queries << " queries ==\n\n";

  TablePrinter cpu({"D", "r_Q", "CPU real", "N-MCM", "err", "L-MCM", "err"});
  TablePrinter io({"D", "r_Q", "I/O real", "N-MCM", "err", "L-MCM", "err"});
  TablePrinter objs({"D", "r_Q", "objs real", "est n*F(r)", "err"});

  BenchObserver observer("fig1_range_vs_dim");
  Stopwatch watch;
  for (size_t dim = 5; dim <= 50; dim += 5) {
    const double rq = std::pow(0.01, 1.0 / static_cast<double>(dim)) / 2.0;
    const auto data = GenerateClustered(n, dim, kSeed);
    const auto queries = GenerateVectorQueries(VectorDatasetKind::kClustered,
                                               num_queries, dim, kSeed);

    MTreeOptions options;  // 4 KB nodes, 30% min utilization (paper setup).
    auto tree = MTree<Traits>::BulkLoad(data, LInfDistance{}, options);

    EstimatorOptions eo;
    eo.num_bins = bins;
    eo.d_plus = 1.0;
    eo.seed = kSeed;
    const auto hist = EstimateDistanceDistribution(data, LInfDistance{}, eo);
    const auto stats = tree.CollectStats(1.0);
    const NodeBasedCostModel nmcm(hist, stats);
    const LevelBasedCostModel lmcm(hist, stats);

    std::vector<CostPrediction> predictions;
    predictions.push_back({"N-MCM", nmcm.RangeNodes(rq),
                           nmcm.RangeDistances(rq),
                           nmcm.RangeNodesPerLevel(rq)});
    predictions.push_back({"L-MCM", lmcm.RangeNodes(rq),
                           lmcm.RangeDistances(rq),
                           lmcm.RangeNodesPerLevel(rq)});
    const auto measured = MeasureRange(
        tree, queries, rq, &observer, "D=" + std::to_string(dim),
        std::move(predictions),
        {{"dim", static_cast<double>(dim)}, {"radius", rq}});
    const std::string d_str = std::to_string(dim);
    const std::string r_str = TablePrinter::Num(rq, 3);

    cpu.AddRow({d_str, r_str, TablePrinter::Num(measured.avg_dists, 1),
                TablePrinter::Num(nmcm.RangeDistances(rq), 1),
                FormatErrorPercent(nmcm.RangeDistances(rq),
                                   measured.avg_dists),
                TablePrinter::Num(lmcm.RangeDistances(rq), 1),
                FormatErrorPercent(lmcm.RangeDistances(rq),
                                   measured.avg_dists)});
    io.AddRow({d_str, r_str, TablePrinter::Num(measured.avg_nodes, 1),
               TablePrinter::Num(nmcm.RangeNodes(rq), 1),
               FormatErrorPercent(nmcm.RangeNodes(rq), measured.avg_nodes),
               TablePrinter::Num(lmcm.RangeNodes(rq), 1),
               FormatErrorPercent(lmcm.RangeNodes(rq), measured.avg_nodes)});
    objs.AddRow({d_str, r_str, TablePrinter::Num(measured.avg_results, 1),
                 TablePrinter::Num(nmcm.RangeObjects(rq), 1),
                 FormatErrorPercent(nmcm.RangeObjects(rq),
                                    measured.avg_results)});
  }

  std::cout << "-- Fig. 1(a): CPU cost (distance computations) --\n";
  cpu.Print(std::cout);
  std::cout << "\n-- Fig. 1(b): I/O cost (node reads) --\n";
  io.Print(std::cout);
  std::cout << "\n-- Fig. 1(c): result cardinality --\n";
  objs.Print(std::cout);
  std::cout << "\nExpected shapes: N-MCM err <~ 4%, L-MCM err <~ 10%, "
               "cardinality err <~ 3% (paper).\n"
            << "Elapsed: " << TablePrinter::Num(watch.ElapsedSeconds(), 1)
            << " s\n";
  return 0;
}
