// Figure 2: estimated vs measured costs of nearest-neighbor queries
// NN(Q, 1) on the clustered datasets as a function of dimensionality D,
// contrasting the three estimators of Section 4:
//   1. L-MCM           — the NN integrals (Eqs. 17-18);
//   2. range(E[nn])    — a range query with the expected NN distance
//                        (Eq. 14) as radius;
//   3. range(r(1))     — a range query with the smallest radius whose
//                        expected result size reaches 1 (Eq. 8).
// Panel (c) compares the actual NN distance with E[nn] and r(1); the paper
// notes that r(1) degrades at high D due to histogram discretization.
//
// Scale knobs: MCM_N (default 10000), MCM_QUERIES (default 1000),
//              MCM_BINS (default 100).

#include <cmath>
#include <iostream>

#include "mcm/bench_util/experiment.h"
#include "mcm/common/env.h"
#include "mcm/common/stopwatch.h"
#include "mcm/common/table_printer.h"
#include "mcm/cost/lmcm.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/distribution/estimator.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"
#include "mcm/obs/bench_observer.h"

int main() {
  using namespace mcm;
  using Traits = VectorTraits<LInfDistance>;
  const size_t n = static_cast<size_t>(GetEnvInt("MCM_N", 10000));
  const size_t num_queries =
      static_cast<size_t>(GetEnvInt("MCM_QUERIES", 1000));
  const size_t bins = static_cast<size_t>(GetEnvInt("MCM_BINS", 100));
  constexpr uint64_t kSeed = 42;

  std::cout << "== Figure 2: NN(Q,1) on clustered data, n=" << n << ", "
            << num_queries << " queries ==\n\n";

  TablePrinter cpu({"D", "CPU real", "L-MCM", "err", "rng(E[nn])", "err",
                    "rng(r(1))", "err"});
  TablePrinter io({"D", "I/O real", "L-MCM", "err", "rng(E[nn])", "err",
                   "rng(r(1))", "err"});
  TablePrinter dist({"D", "nn real", "E[nn]", "err", "r(1)", "err"});

  BenchObserver observer("fig2_nn_vs_dim");
  Stopwatch watch;
  for (size_t dim = 5; dim <= 50; dim += 5) {
    const auto data = GenerateClustered(n, dim, kSeed);
    const auto queries = GenerateVectorQueries(VectorDatasetKind::kClustered,
                                               num_queries, dim, kSeed);
    MTreeOptions options;
    auto tree = MTree<Traits>::BulkLoad(data, LInfDistance{}, options);
    EstimatorOptions eo;
    eo.num_bins = bins;
    eo.d_plus = 1.0;
    eo.seed = kSeed;
    const auto hist = EstimateDistanceDistribution(data, LInfDistance{}, eo);
    const LevelBasedCostModel lmcm(hist, tree.CollectStats(1.0));

    const auto measured = MeasureKnn(
        tree, queries, 1, &observer, "D=" + std::to_string(dim),
        {{"L-MCM", lmcm.NnNodes(1), lmcm.NnDistances(1), {}}},
        {{"dim", static_cast<double>(dim)}});
    const double enn = lmcm.nn_model().ExpectedNnDistance(1);
    const double r1 = lmcm.nn_model().RadiusForExpectedObjects(1.0);

    struct Estimate {
      double cpu, io;
    };
    const Estimate integral{lmcm.NnDistances(1), lmcm.NnNodes(1)};
    const Estimate via_enn{lmcm.RangeDistances(enn), lmcm.RangeNodes(enn)};
    const Estimate via_r1{lmcm.RangeDistances(r1), lmcm.RangeNodes(r1)};

    const std::string d_str = std::to_string(dim);
    cpu.AddRow({d_str, TablePrinter::Num(measured.avg_dists, 1),
                TablePrinter::Num(integral.cpu, 1),
                FormatErrorPercent(integral.cpu, measured.avg_dists),
                TablePrinter::Num(via_enn.cpu, 1),
                FormatErrorPercent(via_enn.cpu, measured.avg_dists),
                TablePrinter::Num(via_r1.cpu, 1),
                FormatErrorPercent(via_r1.cpu, measured.avg_dists)});
    io.AddRow({d_str, TablePrinter::Num(measured.avg_nodes, 1),
               TablePrinter::Num(integral.io, 1),
               FormatErrorPercent(integral.io, measured.avg_nodes),
               TablePrinter::Num(via_enn.io, 1),
               FormatErrorPercent(via_enn.io, measured.avg_nodes),
               TablePrinter::Num(via_r1.io, 1),
               FormatErrorPercent(via_r1.io, measured.avg_nodes)});
    dist.AddRow({d_str, TablePrinter::Num(measured.avg_kth_distance, 4),
                 TablePrinter::Num(enn, 4),
                 FormatErrorPercent(enn, measured.avg_kth_distance),
                 TablePrinter::Num(r1, 4),
                 FormatErrorPercent(r1, measured.avg_kth_distance)});
  }

  std::cout << "-- Fig. 2(a): CPU cost (distance computations) --\n";
  cpu.Print(std::cout);
  std::cout << "\n-- Fig. 2(b): I/O cost (node reads) --\n";
  io.Print(std::cout);
  std::cout << "\n-- Fig. 2(c): nearest-neighbor distance --\n";
  dist.Print(std::cout);
  std::cout << "\nExpected shapes: estimates reliable but with larger errors "
               "than Fig. 1; the r(1) estimator degrades at high D "
               "(histogram discretization).\n"
            << "Elapsed: " << TablePrinter::Num(watch.ElapsedSeconds(), 1)
            << " s\n";
  return 0;
}
