// Figure 3: estimated vs measured costs of range(Q, 3) queries under the
// edit distance on the five text-keyword datasets of Table 1 (synthetic
// Italian-like stand-ins at the paper's exact vocabulary sizes), with
// 25-bin histograms (25 was the paper's maximum observed edit distance).
// Paper-reported shape: relative errors usually below 10%, rarely 15%.
//
// Scale knobs: MCM_QUERIES (default 1000),
//              MCM_TEXT_SCALE_PCT (default 100 = full Table-1 sizes).

#include <iostream>

#include "mcm/bench_util/experiment.h"
#include "mcm/common/env.h"
#include "mcm/common/stopwatch.h"
#include "mcm/common/table_printer.h"
#include "mcm/cost/lmcm.h"
#include "mcm/cost/nmcm.h"
#include "mcm/dataset/text_datasets.h"
#include "mcm/distribution/estimator.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"
#include "mcm/obs/bench_observer.h"

int main() {
  using namespace mcm;
  using Traits = StringTraits<EditDistanceMetric>;
  const size_t num_queries =
      static_cast<size_t>(GetEnvInt("MCM_QUERIES", 1000));
  const size_t scale_pct =
      static_cast<size_t>(GetEnvInt("MCM_TEXT_SCALE_PCT", 100));
  constexpr double kRadius = 3.0;
  constexpr double kDPlus = 25.0;
  constexpr uint64_t kSeed = 42;

  std::cout << "== Figure 3: range(Q, 3) with edit distance on the text "
               "datasets (25-bin histograms), "
            << num_queries << " queries ==\n\n";

  TablePrinter cpu({"dataset", "n", "CPU real", "N-MCM", "err", "L-MCM",
                    "err"});
  TablePrinter io({"dataset", "n", "I/O real", "N-MCM", "err", "L-MCM",
                   "err"});

  BenchObserver observer("fig3_text_range");
  Stopwatch watch;
  for (const auto& spec : TextDatasets()) {
    const size_t n = spec.vocabulary_size * scale_pct / 100;
    const auto words = GenerateKeywords(n, kSeed + spec.code.size());
    const auto queries =
        GenerateKeywordQueries(num_queries, kSeed + spec.code.size());

    MTreeOptions options;  // 4 KB nodes, paper defaults.
    auto tree =
        MTree<Traits>::BulkLoad(words, EditDistanceMetric{}, options);

    EstimatorOptions eo;
    eo.num_bins = 25;
    eo.d_plus = kDPlus;
    eo.seed = kSeed;
    const auto hist =
        EstimateDistanceDistribution(words, EditDistanceMetric{}, eo);
    const auto stats = tree.CollectStats(kDPlus);
    const NodeBasedCostModel nmcm(hist, stats);
    const LevelBasedCostModel lmcm(hist, stats);

    const auto measured = MeasureRange(
        tree, queries, kRadius, &observer, spec.code,
        {{"N-MCM", nmcm.RangeNodes(kRadius), nmcm.RangeDistances(kRadius),
          nmcm.RangeNodesPerLevel(kRadius)},
         {"L-MCM", lmcm.RangeNodes(kRadius), lmcm.RangeDistances(kRadius),
          lmcm.RangeNodesPerLevel(kRadius)}},
        {{"n", static_cast<double>(n)}, {"radius", kRadius}});
    const std::string n_str = std::to_string(n);

    cpu.AddRow({spec.code, n_str, TablePrinter::Num(measured.avg_dists, 1),
                TablePrinter::Num(nmcm.RangeDistances(kRadius), 1),
                FormatErrorPercent(nmcm.RangeDistances(kRadius),
                                   measured.avg_dists),
                TablePrinter::Num(lmcm.RangeDistances(kRadius), 1),
                FormatErrorPercent(lmcm.RangeDistances(kRadius),
                                   measured.avg_dists)});
    io.AddRow({spec.code, n_str, TablePrinter::Num(measured.avg_nodes, 1),
               TablePrinter::Num(nmcm.RangeNodes(kRadius), 1),
               FormatErrorPercent(nmcm.RangeNodes(kRadius),
                                  measured.avg_nodes),
               TablePrinter::Num(lmcm.RangeNodes(kRadius), 1),
               FormatErrorPercent(lmcm.RangeNodes(kRadius),
                                  measured.avg_nodes)});
  }

  std::cout << "-- Fig. 3(a): CPU cost (distance computations) --\n";
  cpu.Print(std::cout);
  std::cout << "\n-- Fig. 3(b): I/O cost (node reads) --\n";
  io.Print(std::cout);
  std::cout << "\nExpected shape: errors usually below 10%, rarely 15% "
               "(paper).\n"
            << "Elapsed: " << TablePrinter::Num(watch.ElapsedSeconds(), 1)
            << " s\n";
  return 0;
}
