// Figure 4: estimated vs measured costs of range queries on the clustered
// dataset with D = 20 as a function of the query radius (the paper's
// x-axis is "query volume" (2*r_Q)^D, printed alongside).
//
// Scale knobs: MCM_N (default 10000), MCM_QUERIES (default 1000).

#include <cmath>
#include <cstdio>
#include <iostream>

#include "mcm/bench_util/experiment.h"
#include "mcm/common/env.h"
#include "mcm/common/stopwatch.h"
#include "mcm/common/table_printer.h"
#include "mcm/cost/lmcm.h"
#include "mcm/cost/nmcm.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/distribution/estimator.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"
#include "mcm/obs/bench_observer.h"

int main() {
  using namespace mcm;
  using Traits = VectorTraits<LInfDistance>;
  const size_t n = static_cast<size_t>(GetEnvInt("MCM_N", 10000));
  const size_t num_queries =
      static_cast<size_t>(GetEnvInt("MCM_QUERIES", 1000));
  constexpr size_t kDim = 20;
  constexpr uint64_t kSeed = 42;

  std::cout << "== Figure 4: range queries on clustered D=" << kDim
            << ", n=" << n << ", variable radius ==\n\n";

  const auto data = GenerateClustered(n, kDim, kSeed);
  const auto queries = GenerateVectorQueries(VectorDatasetKind::kClustered,
                                             num_queries, kDim, kSeed);
  MTreeOptions options;
  auto tree = MTree<Traits>::BulkLoad(data, LInfDistance{}, options);
  EstimatorOptions eo;
  eo.num_bins = 100;
  eo.d_plus = 1.0;
  eo.seed = kSeed;
  const auto hist = EstimateDistanceDistribution(data, LInfDistance{}, eo);
  const auto stats = tree.CollectStats(1.0);
  const NodeBasedCostModel nmcm(hist, stats);
  const LevelBasedCostModel lmcm(hist, stats);

  TablePrinter cpu({"r_Q", "volume", "CPU real", "N-MCM", "err", "L-MCM",
                    "err"});
  TablePrinter io({"r_Q", "volume", "I/O real", "N-MCM", "err", "L-MCM",
                   "err"});
  BenchObserver observer("fig4_radius_sweep");
  Stopwatch watch;
  for (double rq = 0.05; rq <= 0.501; rq += 0.05) {
    const auto measured = MeasureRange(
        tree, queries, rq, &observer, "r=" + TablePrinter::Num(rq, 2),
        {{"N-MCM", nmcm.RangeNodes(rq), nmcm.RangeDistances(rq),
          nmcm.RangeNodesPerLevel(rq)},
         {"L-MCM", lmcm.RangeNodes(rq), lmcm.RangeDistances(rq),
          lmcm.RangeNodesPerLevel(rq)}},
        {{"radius", rq}});
    char volume[32];
    std::snprintf(volume, sizeof(volume), "%.2e",
                  std::pow(2.0 * rq, static_cast<double>(kDim)));
    const std::string r_str = TablePrinter::Num(rq, 2);
    cpu.AddRow({r_str, volume, TablePrinter::Num(measured.avg_dists, 1),
                TablePrinter::Num(nmcm.RangeDistances(rq), 1),
                FormatErrorPercent(nmcm.RangeDistances(rq),
                                   measured.avg_dists),
                TablePrinter::Num(lmcm.RangeDistances(rq), 1),
                FormatErrorPercent(lmcm.RangeDistances(rq),
                                   measured.avg_dists)});
    io.AddRow({r_str, volume, TablePrinter::Num(measured.avg_nodes, 1),
               TablePrinter::Num(nmcm.RangeNodes(rq), 1),
               FormatErrorPercent(nmcm.RangeNodes(rq), measured.avg_nodes),
               TablePrinter::Num(lmcm.RangeNodes(rq), 1),
               FormatErrorPercent(lmcm.RangeNodes(rq), measured.avg_nodes)});
  }

  std::cout << "-- Fig. 4(a): CPU cost vs radius --\n";
  cpu.Print(std::cout);
  std::cout << "\n-- Fig. 4(b): I/O cost vs radius --\n";
  io.Print(std::cout);
  std::cout << "\nExpected shape: costs grow with radius; model tracks "
               "measurement across the whole sweep.\n"
            << "Elapsed: " << TablePrinter::Num(watch.ElapsedSeconds(), 1)
            << " s\n";
  return 0;
}
