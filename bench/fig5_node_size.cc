// Figure 5 / Section 4.1: tuning the M-tree node size.
//   (a) N-MCM-predicted I/O (node reads) and CPU (distance computations)
//       costs of range(Q, (0.01)^(1/5)/2) on 5-d clustered data for node
//       sizes in [0.5, 64] KB: I/O decreases monotonically while CPU has a
//       marked interior minimum.
//   (b) total per-query time under the paper's coefficients
//       (c_CPU = 5 ms, c_IO = 10 + NS*1 ms), estimated and measured; the
//       paper finds an optimal node size of 8 KB at n = 10^6.
//
// Scale knobs: MCM_FIG5_N (default 100000; set 1000000 for the paper's
//              exact size), MCM_FIG5_QUERIES (default 200).

#include <cmath>
#include <iostream>

#include "mcm/bench_util/experiment.h"
#include "mcm/common/env.h"
#include "mcm/common/stopwatch.h"
#include "mcm/common/table_printer.h"
#include "mcm/cost/nmcm.h"
#include "mcm/cost/tuner.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/distribution/estimator.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"
#include "mcm/obs/bench_observer.h"

int main() {
  using namespace mcm;
  using Traits = VectorTraits<LInfDistance>;
  const size_t n = static_cast<size_t>(GetEnvInt("MCM_FIG5_N", 100000));
  const size_t num_queries =
      static_cast<size_t>(GetEnvInt("MCM_FIG5_QUERIES", 200));
  constexpr size_t kDim = 5;
  constexpr uint64_t kSeed = 42;
  const double rq = std::pow(0.01, 1.0 / static_cast<double>(kDim)) / 2.0;

  std::cout << "== Figure 5 / Sec. 4.1: node-size tuning, clustered D=5, n="
            << n << ", r_Q=" << TablePrinter::Num(rq, 3) << " ==\n"
            << "(paper runs n=10^6; set MCM_FIG5_N=1000000 to match)\n\n";

  const auto data = GenerateClustered(n, kDim, kSeed);
  const auto queries = GenerateVectorQueries(VectorDatasetKind::kClustered,
                                             num_queries, kDim, kSeed);
  EstimatorOptions eo;
  eo.num_bins = 100;
  eo.d_plus = 1.0;
  eo.seed = kSeed;
  const auto hist = EstimateDistanceDistribution(data, LInfDistance{}, eo);

  const DiskCostParameters params;  // c_CPU=5ms, c_IO=(10+NS)ms — Sec. 4.1.
  TablePrinter table({"NS (KB)", "pred I/O", "pred CPU", "real I/O",
                      "real CPU", "est total ms", "real total ms"});
  std::vector<NodeSizeSample> predicted_samples;
  std::vector<NodeSizeSample> measured_samples;

  BenchObserver observer("fig5_node_size");
  Stopwatch watch;
  for (size_t ns = 512; ns <= 65536; ns *= 2) {
    MTreeOptions options;
    options.node_size_bytes = ns;
    options.seed = kSeed;
    auto tree = MTree<Traits>::BulkLoad(data, LInfDistance{}, options);
    const NodeBasedCostModel model(hist, tree.CollectStats(1.0));
    const double pred_nodes = model.RangeNodes(rq);
    const double pred_dists = model.RangeDistances(rq);
    const auto measured = MeasureRange(
        tree, queries, rq, &observer,
        "NS=" + std::to_string(ns / 1024) + "KB",
        {{"N-MCM", pred_nodes, pred_dists, model.RangeNodesPerLevel(rq)}},
        {{"node_size_bytes", static_cast<double>(ns)}, {"radius", rq}});

    predicted_samples.push_back({ns, pred_dists, pred_nodes});
    measured_samples.push_back({ns, measured.avg_dists, measured.avg_nodes});

    table.AddRow({TablePrinter::Num(static_cast<double>(ns) / 1024.0, 1),
                  TablePrinter::Num(pred_nodes, 1),
                  TablePrinter::Num(pred_dists, 1),
                  TablePrinter::Num(measured.avg_nodes, 1),
                  TablePrinter::Num(measured.avg_dists, 1),
                  TablePrinter::Num(TotalCostMs(params, pred_dists,
                                                pred_nodes, ns),
                                    0),
                  TablePrinter::Num(TotalCostMs(params, measured.avg_dists,
                                                measured.avg_nodes, ns),
                                    0)});
  }

  std::cout << "-- Fig. 5(a)+(b): predicted and measured costs vs node size "
               "--\n";
  table.Print(std::cout);

  const TuningResult est = ChooseNodeSize(params, predicted_samples);
  const TuningResult real = ChooseNodeSize(params, measured_samples);
  std::cout << "\nOptimal node size (estimated): "
            << est.best_node_size_bytes / 1024 << " KB, "
            << TablePrinter::Num(est.best_total_ms, 0) << " ms/query\n"
            << "Optimal node size (measured):  "
            << real.best_node_size_bytes / 1024 << " KB, "
            << TablePrinter::Num(real.best_total_ms, 0) << " ms/query\n"
            << "\nExpected shapes: I/O monotone decreasing in NS; CPU with a "
               "marked interior minimum;\noptimal NS at an intermediate "
               "size (paper: 8 KB at n=10^6).\n"
            << "Elapsed: " << TablePrinter::Num(watch.ElapsedSeconds(), 1)
            << " s\n";
  return 0;
}
