// Micro-benchmarks (google-benchmark): throughput of the primitive
// operations behind the paper's cost units — distance computations, the
// histogram CDF/quantile kernels used by the models, and index queries.
// These ground the Section-4.1 cost coefficients (c_CPU, c_IO) in real
// per-operation timings on the host machine.

#include <benchmark/benchmark.h>

#include "mcm/cost/lmcm.h"
#include "mcm/cost/nmcm.h"
#include "mcm/dataset/text_datasets.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/distribution/estimator.h"
#include "mcm/common/query_stats.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"
#include "mcm/obs/trace.h"
#include "mcm/vptree/vptree.h"

namespace {

using namespace mcm;

constexpr uint64_t kSeed = 42;

void BM_LInfDistance(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const auto points = GenerateUniform(2, dim, kSeed);
  const LInfDistance metric;
  for (auto _ : state) {
    benchmark::DoNotOptimize(metric(points[0], points[1]));
  }
}
BENCHMARK(BM_LInfDistance)->Arg(5)->Arg(20)->Arg(50);

void BM_L2Distance(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const auto points = GenerateUniform(2, dim, kSeed);
  const L2Distance metric;
  for (auto _ : state) {
    benchmark::DoNotOptimize(metric(points[0], points[1]));
  }
}
BENCHMARK(BM_L2Distance)->Arg(5)->Arg(50);

void BM_EditDistance(benchmark::State& state) {
  const auto words = GenerateKeywords(64, kSeed);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EditDistance(words[i % 64], words[(i * 7 + 13) % 64]));
    ++i;
  }
}
BENCHMARK(BM_EditDistance);

void BM_BoundedEditDistance(benchmark::State& state) {
  const auto words = GenerateKeywords(64, kSeed);
  const size_t bound = static_cast<size_t>(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BoundedEditDistance(words[i % 64], words[(i * 7 + 13) % 64], bound));
    ++i;
  }
}
BENCHMARK(BM_BoundedEditDistance)->Arg(2)->Arg(5);

void BM_HistogramCdf(benchmark::State& state) {
  const auto data = GenerateUniform(1000, 10, kSeed);
  EstimatorOptions eo;
  eo.num_bins = 100;
  const auto hist = EstimateDistanceDistribution(data, LInfDistance{}, eo);
  double x = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hist.Cdf(x));
    x += 1e-4;
    if (x > 1.0) x = 0.0;
  }
}
BENCHMARK(BM_HistogramCdf);

void BM_MTreeRangeQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto data = GenerateClustered(n, 10, kSeed);
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 64, 10, kSeed);
  MTreeOptions options;
  options.seed = kSeed;
  auto tree = MTree<VectorTraits<LInfDistance>>::BulkLoad(
      data, LInfDistance{}, options);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.RangeSearch(queries[i % 64], 0.15));
    ++i;
  }
}
BENCHMARK(BM_MTreeRangeQuery)->Arg(1000)->Arg(10000);

void BM_MTreeKnnQuery(benchmark::State& state) {
  const auto data = GenerateClustered(10000, 10, kSeed);
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 64, 10, kSeed);
  MTreeOptions options;
  options.seed = kSeed;
  auto tree = MTree<VectorTraits<LInfDistance>>::BulkLoad(
      data, LInfDistance{}, options);
  const size_t k = static_cast<size_t>(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.KnnSearch(queries[i % 64], k));
    ++i;
  }
}
BENCHMARK(BM_MTreeKnnQuery)->Arg(1)->Arg(10);

void BM_MTreeBulkLoad(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto data = GenerateClustered(n, 10, kSeed);
  MTreeOptions options;
  options.seed = kSeed;
  for (auto _ : state) {
    auto tree = MTree<VectorTraits<LInfDistance>>::BulkLoad(
        data, LInfDistance{}, options);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_MTreeBulkLoad)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_MTreeInsert(benchmark::State& state) {
  const auto data = GenerateClustered(20000, 10, kSeed);
  MTreeOptions options;
  options.seed = kSeed;
  MTree<VectorTraits<LInfDistance>> tree(LInfDistance{}, options);
  size_t i = 0;
  for (auto _ : state) {
    tree.Insert(data[i % data.size()], i);
    ++i;
  }
}
BENCHMARK(BM_MTreeInsert);

void BM_VpTreeRangeQuery(benchmark::State& state) {
  const auto data = GenerateClustered(10000, 10, kSeed);
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 64, 10, kSeed);
  VpTreeOptions options;
  options.arity = static_cast<size_t>(state.range(0));
  options.seed = kSeed;
  const VpTree<VectorTraits<LInfDistance>> tree(data, LInfDistance{},
                                                options);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.RangeSearch(queries[i % 64], 0.15));
    ++i;
  }
}
BENCHMARK(BM_VpTreeRangeQuery)->Arg(2)->Arg(5);

// Observability overhead check (acceptance criterion): the same range
// query with no stats, with plain counters, and with a full trace
// attached. The "no trace" path must not regress when the obs layer is
// compiled in — the trace hook is one null-pointer branch per event site.
void BM_MTreeRangeQueryTraced(benchmark::State& state) {
  const auto data = GenerateClustered(10000, 10, kSeed);
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 64, 10, kSeed);
  MTreeOptions options;
  options.seed = kSeed;
  auto tree = MTree<VectorTraits<LInfDistance>>::BulkLoad(
      data, LInfDistance{}, options);
  const int mode = static_cast<int>(state.range(0));
  QueryTrace trace;
  QueryStats stats;
  if (mode == 2) stats.trace = &trace;
  size_t i = 0;
  for (auto _ : state) {
    if (mode == 2) trace.Clear();
    benchmark::DoNotOptimize(tree.RangeSearch(
        queries[i % 64], 0.15, mode == 0 ? nullptr : &stats));
    ++i;
  }
  state.SetLabel(mode == 0   ? "no stats"
                 : mode == 1 ? "counters only"
                             : "full trace");
}
BENCHMARK(BM_MTreeRangeQueryTraced)->Arg(0)->Arg(1)->Arg(2);

void BM_NmcmRangePrediction(benchmark::State& state) {
  const auto data = GenerateClustered(10000, 10, kSeed);
  MTreeOptions options;
  options.seed = kSeed;
  auto tree = MTree<VectorTraits<LInfDistance>>::BulkLoad(
      data, LInfDistance{}, options);
  EstimatorOptions eo;
  eo.num_bins = 100;
  const auto hist = EstimateDistanceDistribution(data, LInfDistance{}, eo);
  const NodeBasedCostModel model(hist, tree.CollectStats(1.0));
  double r = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.RangeNodes(r));
    r += 0.01;
    if (r > 1.0) r = 0.0;
  }
}
BENCHMARK(BM_NmcmRangePrediction);

void BM_NmcmNnPrediction(benchmark::State& state) {
  const auto data = GenerateClustered(10000, 10, kSeed);
  MTreeOptions options;
  options.seed = kSeed;
  auto tree = MTree<VectorTraits<LInfDistance>>::BulkLoad(
      data, LInfDistance{}, options);
  EstimatorOptions eo;
  eo.num_bins = 100;
  const auto hist = EstimateDistanceDistribution(data, LInfDistance{}, eo);
  const NodeBasedCostModel model(hist, tree.CollectStats(1.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.NnNodes(1));
  }
}
BENCHMARK(BM_NmcmNnPrediction)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
