// Micro-benchmarks (google-benchmark): throughput of the primitive
// operations behind the paper's cost units — distance computations, the
// histogram CDF/quantile kernels used by the models, and index queries.
// These ground the Section-4.1 cost coefficients (c_CPU, c_IO) in real
// per-operation timings on the host machine.
//
// The "fast lane" suite (BM_Scalar*/BM_Kernel*/BM_Bounded*/BM_*NodeCache*)
// measures the query-path optimizations of DESIGN.md §9: dispatched SIMD
// kernels vs the naive scalar loop, bounded early-exit evaluation, and the
// decoded-node cache. MCM_BENCH_FILTER narrows the run (it becomes
// --benchmark_filter), and with MCM_OBS=1 the main below writes the
// measured ns/op plus kernel-vs-scalar speedups to
// MCM_OBS_DIR/BENCH_micro_kernels.json.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "mcm/common/env.h"
#include "mcm/common/query_stats.h"
#include "mcm/cost/lmcm.h"
#include "mcm/cost/nmcm.h"
#include "mcm/dataset/text_datasets.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/distribution/estimator.h"
#include "mcm/metric/kernels.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"
#include "mcm/obs/export.h"
#include "mcm/obs/metrics.h"
#include "mcm/obs/trace.h"
#include "mcm/storage/page_file.h"
#include "mcm/vptree/vptree.h"

namespace {

using namespace mcm;

constexpr uint64_t kSeed = 42;

void BM_LInfDistance(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const auto points = GenerateUniform(2, dim, kSeed);
  const LInfDistance metric;
  for (auto _ : state) {
    benchmark::DoNotOptimize(metric(points[0], points[1]));
  }
}
BENCHMARK(BM_LInfDistance)->Arg(5)->Arg(20)->Arg(50);

void BM_L2Distance(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const auto points = GenerateUniform(2, dim, kSeed);
  const L2Distance metric;
  for (auto _ : state) {
    benchmark::DoNotOptimize(metric(points[0], points[1]));
  }
}
BENCHMARK(BM_L2Distance)->Arg(5)->Arg(50);

void BM_EditDistance(benchmark::State& state) {
  const auto words = GenerateKeywords(64, kSeed);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EditDistance(words[i % 64], words[(i * 7 + 13) % 64]));
    ++i;
  }
}
BENCHMARK(BM_EditDistance);

void BM_BoundedEditDistance(benchmark::State& state) {
  const auto words = GenerateKeywords(64, kSeed);
  const size_t bound = static_cast<size_t>(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BoundedEditDistance(words[i % 64], words[(i * 7 + 13) % 64], bound));
    ++i;
  }
}
BENCHMARK(BM_BoundedEditDistance)->Arg(2)->Arg(5);

void BM_HistogramCdf(benchmark::State& state) {
  const auto data = GenerateUniform(1000, 10, kSeed);
  EstimatorOptions eo;
  eo.num_bins = 100;
  const auto hist = EstimateDistanceDistribution(data, LInfDistance{}, eo);
  double x = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hist.Cdf(x));
    x += 1e-4;
    if (x > 1.0) x = 0.0;
  }
}
BENCHMARK(BM_HistogramCdf);

void BM_MTreeRangeQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto data = GenerateClustered(n, 10, kSeed);
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 64, 10, kSeed);
  MTreeOptions options;
  options.seed = kSeed;
  auto tree = MTree<VectorTraits<LInfDistance>>::BulkLoad(
      data, LInfDistance{}, options);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.RangeSearch(queries[i % 64], 0.15));
    ++i;
  }
}
BENCHMARK(BM_MTreeRangeQuery)->Arg(1000)->Arg(10000);

void BM_MTreeKnnQuery(benchmark::State& state) {
  const auto data = GenerateClustered(10000, 10, kSeed);
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 64, 10, kSeed);
  MTreeOptions options;
  options.seed = kSeed;
  auto tree = MTree<VectorTraits<LInfDistance>>::BulkLoad(
      data, LInfDistance{}, options);
  const size_t k = static_cast<size_t>(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.KnnSearch(queries[i % 64], k));
    ++i;
  }
}
BENCHMARK(BM_MTreeKnnQuery)->Arg(1)->Arg(10);

void BM_MTreeBulkLoad(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto data = GenerateClustered(n, 10, kSeed);
  MTreeOptions options;
  options.seed = kSeed;
  for (auto _ : state) {
    auto tree = MTree<VectorTraits<LInfDistance>>::BulkLoad(
        data, LInfDistance{}, options);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_MTreeBulkLoad)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_MTreeInsert(benchmark::State& state) {
  const auto data = GenerateClustered(20000, 10, kSeed);
  MTreeOptions options;
  options.seed = kSeed;
  MTree<VectorTraits<LInfDistance>> tree(LInfDistance{}, options);
  size_t i = 0;
  for (auto _ : state) {
    tree.Insert(data[i % data.size()], i);
    ++i;
  }
}
BENCHMARK(BM_MTreeInsert);

void BM_VpTreeRangeQuery(benchmark::State& state) {
  const auto data = GenerateClustered(10000, 10, kSeed);
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 64, 10, kSeed);
  VpTreeOptions options;
  options.arity = static_cast<size_t>(state.range(0));
  options.seed = kSeed;
  const VpTree<VectorTraits<LInfDistance>> tree(data, LInfDistance{},
                                                options);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.RangeSearch(queries[i % 64], 0.15));
    ++i;
  }
}
BENCHMARK(BM_VpTreeRangeQuery)->Arg(2)->Arg(5);

// Observability overhead check (acceptance criterion): the same range
// query with no stats, with plain counters, and with a full trace
// attached. The "no trace" path must not regress when the obs layer is
// compiled in — the trace hook is one null-pointer branch per event site.
void BM_MTreeRangeQueryTraced(benchmark::State& state) {
  const auto data = GenerateClustered(10000, 10, kSeed);
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 64, 10, kSeed);
  MTreeOptions options;
  options.seed = kSeed;
  auto tree = MTree<VectorTraits<LInfDistance>>::BulkLoad(
      data, LInfDistance{}, options);
  const int mode = static_cast<int>(state.range(0));
  QueryTrace trace;
  QueryStats stats;
  if (mode == 2) stats.trace = &trace;
  size_t i = 0;
  for (auto _ : state) {
    if (mode == 2) trace.Clear();
    benchmark::DoNotOptimize(tree.RangeSearch(
        queries[i % 64], 0.15, mode == 0 ? nullptr : &stats));
    ++i;
  }
  state.SetLabel(mode == 0   ? "no stats"
                 : mode == 1 ? "counters only"
                             : "full trace");
}
BENCHMARK(BM_MTreeRangeQueryTraced)->Arg(0)->Arg(1)->Arg(2);

void BM_NmcmRangePrediction(benchmark::State& state) {
  const auto data = GenerateClustered(10000, 10, kSeed);
  MTreeOptions options;
  options.seed = kSeed;
  auto tree = MTree<VectorTraits<LInfDistance>>::BulkLoad(
      data, LInfDistance{}, options);
  EstimatorOptions eo;
  eo.num_bins = 100;
  const auto hist = EstimateDistanceDistribution(data, LInfDistance{}, eo);
  const NodeBasedCostModel model(hist, tree.CollectStats(1.0));
  double r = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.RangeNodes(r));
    r += 0.01;
    if (r > 1.0) r = 0.0;
  }
}
BENCHMARK(BM_NmcmRangePrediction);

// ---------------------------------------------------------------------------
// Query-path fast lane: scalar baselines vs the dispatched kernels. The
// scalar loops reproduce the pre-kernel metric implementation exactly (one
// sequential pass, per-element float→double casts); they are the "before"
// side of the speedup recorded in BENCH_micro_kernels.json. This file is
// allowlisted by the `no-adhoc-vector-math` lint rule for that purpose.
// ---------------------------------------------------------------------------

double ScalarL2(const FloatVector& a, const FloatVector& b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    sum += d * d;
  }
  return std::sqrt(sum);
}

double ScalarLInf(const FloatVector& a, const FloatVector& b) {
  double best = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d =
        std::fabs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
    if (d > best) best = d;
  }
  return best;
}

double ScalarL1(const FloatVector& a, const FloatVector& b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum += std::fabs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
  }
  return sum;
}

// Rotating through many pairs keeps the benchmark honest: a single pair
// would sit in L1 cache with fully predicted branches.
std::pair<std::vector<FloatVector>, std::vector<FloatVector>> KernelPairs(
    size_t dim) {
  constexpr size_t kPairs = 64;
  auto xs = GenerateUniform(kPairs, dim, kSeed);
  auto ys = GenerateUniform(kPairs, dim, kSeed + 1);
  return {std::move(xs), std::move(ys)};
}

void BM_ScalarL2(benchmark::State& state) {
  const auto [xs, ys] = KernelPairs(static_cast<size_t>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScalarL2(xs[i % 64], ys[i % 64]));
    ++i;
  }
}
BENCHMARK(BM_ScalarL2)->Arg(16)->Arg(64)->Arg(256);

void BM_KernelL2(benchmark::State& state) {
  const auto [xs, ys] = KernelPairs(static_cast<size_t>(state.range(0)));
  const size_t dim = xs[0].size();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernels::L2(xs[i % 64].data(), ys[i % 64].data(), dim));
    ++i;
  }
  state.SetLabel(kernels::BackendName(kernels::ActiveBackend()));
}
BENCHMARK(BM_KernelL2)->Arg(16)->Arg(64)->Arg(256);

void BM_ScalarLInf(benchmark::State& state) {
  const auto [xs, ys] = KernelPairs(static_cast<size_t>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScalarLInf(xs[i % 64], ys[i % 64]));
    ++i;
  }
}
BENCHMARK(BM_ScalarLInf)->Arg(16)->Arg(64)->Arg(256);

void BM_KernelLInf(benchmark::State& state) {
  const auto [xs, ys] = KernelPairs(static_cast<size_t>(state.range(0)));
  const size_t dim = xs[0].size();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernels::LInf(xs[i % 64].data(), ys[i % 64].data(), dim));
    ++i;
  }
  state.SetLabel(kernels::BackendName(kernels::ActiveBackend()));
}
BENCHMARK(BM_KernelLInf)->Arg(16)->Arg(64)->Arg(256);

void BM_ScalarL1(benchmark::State& state) {
  const auto [xs, ys] = KernelPairs(static_cast<size_t>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScalarL1(xs[i % 64], ys[i % 64]));
    ++i;
  }
}
BENCHMARK(BM_ScalarL1)->Arg(16)->Arg(64)->Arg(256);

void BM_KernelL1(benchmark::State& state) {
  const auto [xs, ys] = KernelPairs(static_cast<size_t>(state.range(0)));
  const size_t dim = xs[0].size();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernels::L1(xs[i % 64].data(), ys[i % 64].data(), dim));
    ++i;
  }
  state.SetLabel(kernels::BackendName(kernels::ActiveBackend()));
}
BENCHMARK(BM_KernelL1)->Arg(16)->Arg(64)->Arg(256);

// Bounded evaluation with a bound the distance usually exceeds: the win is
// how early the partial sum crosses it (range(0) is the bound in 1/100ths
// of the expected distance, so Arg(50) aborts about halfway).
void BM_BoundedL2(benchmark::State& state) {
  const auto [xs, ys] = KernelPairs(256);
  const double full = kernels::L2(xs[0].data(), ys[0].data(), 256);
  const double bound = full * static_cast<double>(state.range(0)) / 100.0;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernels::L2Within(xs[i % 64].data(), ys[i % 64].data(), 256, bound));
    ++i;
  }
}
BENCHMARK(BM_BoundedL2)->Arg(10)->Arg(50)->Arg(200);

// Decoded-node cache: the same paged M-tree range workload with the cache
// off (every visit re-deserializes the page) and on (hot nodes decode
// once). Pool is large enough that page bytes always hit — the delta
// isolates Node::Deserialize.
void BM_PagedRangeQueryNodeCache(benchmark::State& state) {
  const auto data = GenerateClustered(10000, 10, kSeed);
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 64, 10, kSeed);
  MTreeOptions options;
  options.seed = kSeed;
  const auto cache_entries = static_cast<int64_t>(state.range(0));
  auto store = std::make_unique<PagedNodeStore<VectorTraits<LInfDistance>>>(
      std::make_unique<InMemoryPageFile>(options.node_size_bytes),
      /*pool_frames=*/4096, cache_entries);
  auto tree = MTree<VectorTraits<LInfDistance>>::BulkLoad(
      data, LInfDistance{}, options, std::move(store));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.RangeSearch(queries[i % 64], 0.15));
    ++i;
  }
  state.SetLabel(cache_entries == 0 ? "cache off" : "cache on");
}
BENCHMARK(BM_PagedRangeQueryNodeCache)->Arg(0)->Arg(4096);

// Phase-timer overhead contract (DESIGN.md §10): the same paged range
// workload with observability off (timers compile down to one cached
// branch per span) and on (every node visit pays two clock reads). The
// ns/op delta between Arg(0) and Arg(1) is the telemetry tax; the
// acceptance bar is < 2%.
void BM_PagedRangeQueryObsToggle(benchmark::State& state) {
  const bool obs_on = state.range(0) != 0;
  const bool obs_was_on = ObsEnabled();
  const auto data = GenerateClustered(10000, 10, kSeed);
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 64, 10, kSeed);
  MTreeOptions options;
  options.seed = kSeed;
  auto store = std::make_unique<PagedNodeStore<VectorTraits<LInfDistance>>>(
      std::make_unique<InMemoryPageFile>(options.node_size_bytes),
      /*pool_frames=*/4096);
  auto tree = MTree<VectorTraits<LInfDistance>>::BulkLoad(
      data, LInfDistance{}, options, std::move(store));
  SetObsEnabledForTesting(obs_on);
  size_t i = 0;
  for (auto _ : state) {
    QueryStats stats;
    benchmark::DoNotOptimize(
        tree.RangeSearch(queries[i % 64], 0.15, &stats));
    ++i;
  }
  SetObsEnabledForTesting(obs_was_on);
  state.SetLabel(obs_on ? "obs on" : "obs off");
}
BENCHMARK(BM_PagedRangeQueryObsToggle)->Arg(0)->Arg(1);

void BM_NmcmNnPrediction(benchmark::State& state) {
  const auto data = GenerateClustered(10000, 10, kSeed);
  MTreeOptions options;
  options.seed = kSeed;
  auto tree = MTree<VectorTraits<LInfDistance>>::BulkLoad(
      data, LInfDistance{}, options);
  EstimatorOptions eo;
  eo.num_bins = 100;
  const auto hist = EstimateDistanceDistribution(data, LInfDistance{}, eo);
  const NodeBasedCostModel model(hist, tree.CollectStats(1.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.NnNodes(1));
  }
}
BENCHMARK(BM_NmcmNnPrediction)->Unit(benchmark::kMillisecond);

/// Captures per-benchmark timings while still printing the console table.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      ns_per_op_[run.benchmark_name()] = run.GetAdjustedRealTime();
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  const std::map<std::string, double>& ns_per_op() const {
    return ns_per_op_;
  }

 private:
  std::map<std::string, double> ns_per_op_;
};

/// Emits MCM_OBS_DIR/BENCH_micro_kernels.json: one meta record, one metric
/// record with the raw ns/op per benchmark, and one with the
/// kernel-vs-scalar speedups (same name suffix: "BM_KernelL2/64" pairs
/// with "BM_ScalarL2/64").
void EmitBenchJson(const std::map<std::string, double>& ns_per_op) {
  const std::string dir = GetEnvString("MCM_OBS_DIR", ".");
  JsonlWriter writer(dir + "/BENCH_micro_kernels.json");
  if (!writer.ok()) return;

  JsonObjectBuilder meta;
  meta.Add("record", "meta");
  meta.Add("bench", "micro_kernels");
  meta.Add("schema_version", 1);
  meta.Add("trace_capacity", 0);
  writer.WriteLine(meta.Build());

  JsonObjectBuilder timings;
  for (const auto& [name, ns] : ns_per_op) {
    timings.Add(name, ns);
  }
  JsonObjectBuilder timing_record;
  timing_record.Add("record", "metric");
  timing_record.Add("bench", "micro_kernels");
  timing_record.AddRaw("data", timings.Build());
  writer.WriteLine(timing_record.Build());

  JsonObjectBuilder speedups;
  speedups.Add("backend",
               kernels::BackendName(kernels::ActiveBackend()));
  for (const auto& [name, ns] : ns_per_op) {
    const std::string prefix = "BM_Kernel";
    if (name.compare(0, prefix.size(), prefix) != 0 || ns <= 0.0) continue;
    const std::string scalar_name = "BM_Scalar" + name.substr(prefix.size());
    const auto scalar = ns_per_op.find(scalar_name);
    if (scalar == ns_per_op.end()) continue;
    speedups.Add("speedup_" + name.substr(prefix.size()),
                 scalar->second / ns);
  }
  JsonObjectBuilder speedup_record;
  speedup_record.Add("record", "metric");
  speedup_record.Add("bench", "micro_kernels");
  speedup_record.AddRaw("data", speedups.Build());
  writer.WriteLine(speedup_record.Build());
}

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): injects MCM_BENCH_FILTER as
// --benchmark_filter (google-benchmark reads no environment variables of
// its own, and the ctest harness cannot pass argv through
// check_bench_json.py --run), and emits the fast-lane BENCH JSON when
// observability is on.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  const std::string filter = GetEnvString("MCM_BENCH_FILTER", "");
  std::string filter_arg;
  if (!filter.empty()) {
    filter_arg = "--benchmark_filter=" + filter;
    args.push_back(filter_arg.data());
  }
  const std::string min_time = GetEnvString("MCM_BENCH_MIN_TIME", "");
  std::string min_time_arg;
  if (!min_time.empty()) {
    min_time_arg = "--benchmark_min_time=" + min_time;
    args.push_back(min_time_arg.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (ObsEnabled()) {
    EmitBenchJson(reporter.ns_per_op());
  }
  return 0;
}
