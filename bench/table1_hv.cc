// Table 1 + Section 2.1: the dataset inventory and the claim that real and
// realistic synthetic metric datasets have a high index of Homogeneity of
// Viewpoints. Prints, for every dataset of Table 1, its parameters and the
// estimated HV (paper: "always above 0.98"; our synthetic stand-ins land
// around 0.93-0.97 — see DESIGN.md on the text substitution), plus the
// closed-form HV of Example 1.
//
// Scale knobs: MCM_TABLE1_N (vector dataset size, default 10000),
//              MCM_TABLE1_VIEWPOINTS (default 100),
//              MCM_TABLE1_TARGETS (default 1000).

#include <cstdio>
#include <iostream>

#include "mcm/common/env.h"
#include "mcm/common/table_printer.h"
#include "mcm/dataset/text_datasets.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/distribution/homogeneity.h"
#include "mcm/metric/string_metrics.h"
#include "mcm/metric/vector_metrics.h"
#include "mcm/obs/bench_observer.h"
#include "mcm/obs/metrics.h"

namespace {

constexpr uint64_t kSeed = 42;

}  // namespace

int main() {
  using namespace mcm;
  const size_t n = static_cast<size_t>(GetEnvInt("MCM_TABLE1_N", 10000));
  HvOptions hv_options;
  hv_options.num_viewpoints =
      static_cast<size_t>(GetEnvInt("MCM_TABLE1_VIEWPOINTS", 100));
  hv_options.num_targets =
      static_cast<size_t>(GetEnvInt("MCM_TABLE1_TARGETS", 1000));
  hv_options.grid_points = 251;
  hv_options.seed = kSeed;

  std::cout << "== Table 1 / Section 2.1: datasets and homogeneity of "
               "viewpoints ==\n"
            << "(HV = 1 - E[discrepancy]; paper reports HV > 0.98 on its "
               "datasets)\n\n";

  // table1_hv runs no queries; the observer still emits the registry
  // gauges below as "metric" records into BENCH_table1_hv.json.
  BenchObserver observer("table1_hv");
  TablePrinter table({"dataset", "description", "size", "dim", "metric",
                      "HV", "G(0.1)"});

  for (size_t dim : {5u, 20u, 50u}) {
    for (const bool clustered : {true, false}) {
      const auto kind = clustered ? VectorDatasetKind::kClustered
                                  : VectorDatasetKind::kUniform;
      const auto data = GenerateVectorDataset(kind, n, dim, kSeed);
      hv_options.d_plus = 1.0;
      const HvResult hv = EstimateHomogeneity(data, LInfDistance{}, hv_options);
      if (ObsEnabled()) {
        MetricsRegistry::Global()
            .GetGauge(std::string("mcm.hv.") +
                      (clustered ? "clustered" : "uniform") + ".d" +
                      std::to_string(dim))
            .Set(hv.hv);
      }
      table.AddRow({clustered ? "clustered" : "uniform",
                    clustered ? "10 Gaussian clusters, sigma=0.1"
                              : "uniform on [0,1]^D",
                    std::to_string(n), std::to_string(dim), "L_inf",
                    TablePrinter::Num(hv.hv, 4),
                    TablePrinter::Num(EmpiricalGDelta(hv, 0.1), 3)});
    }
  }

  for (const auto& spec : TextDatasets()) {
    const auto words = GenerateKeywords(spec.vocabulary_size, kSeed);
    hv_options.d_plus = 25.0;
    const HvResult hv =
        EstimateHomogeneity(words, EditDistanceMetric{}, hv_options);
    if (ObsEnabled()) {
      MetricsRegistry::Global()
          .GetGauge("mcm.hv.text." + spec.code)
          .Set(hv.hv);
    }
    table.AddRow({spec.code, spec.title + " (synthetic stand-in)",
                  std::to_string(spec.vocabulary_size), "-", "edit",
                  TablePrinter::Num(hv.hv, 4),
                  TablePrinter::Num(EmpiricalGDelta(hv, 0.1), 3)});
  }
  table.Print(std::cout);

  std::cout << "\n== Example 1: closed-form HV of ({0,1}^D + midpoint, "
               "L_inf, U) ==\n\n";
  TablePrinter example({"D", "HV (closed form)", "1 - HV"});
  for (unsigned d : {2u, 5u, 10u, 20u}) {
    const double hv = HvBinaryHypercubeWithMidpoint(d);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3e", 1.0 - hv);
    example.AddRow({std::to_string(d), TablePrinter::Num(hv, 6), buf});
  }
  example.Print(std::cout);
  std::cout << "\nPaper checkpoint: D=10 gives 1-HV ~= 0.97e-3.\n";
  return 0;
}
