file(REMOVE_RECURSE
  "CMakeFiles/ext_complex_queries.dir/ext_complex_queries.cc.o"
  "CMakeFiles/ext_complex_queries.dir/ext_complex_queries.cc.o.d"
  "ext_complex_queries"
  "ext_complex_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_complex_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
