# Empty dependencies file for ext_complex_queries.
# This may be replaced when dependencies are built.
