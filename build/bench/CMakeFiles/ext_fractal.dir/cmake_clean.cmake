file(REMOVE_RECURSE
  "CMakeFiles/ext_fractal.dir/ext_fractal.cc.o"
  "CMakeFiles/ext_fractal.dir/ext_fractal.cc.o.d"
  "ext_fractal"
  "ext_fractal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_fractal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
