# Empty compiler generated dependencies file for ext_fractal.
# This may be replaced when dependencies are built.
