file(REMOVE_RECURSE
  "CMakeFiles/ext_histogram_resolution.dir/ext_histogram_resolution.cc.o"
  "CMakeFiles/ext_histogram_resolution.dir/ext_histogram_resolution.cc.o.d"
  "ext_histogram_resolution"
  "ext_histogram_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_histogram_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
