# Empty dependencies file for ext_histogram_resolution.
# This may be replaced when dependencies are built.
