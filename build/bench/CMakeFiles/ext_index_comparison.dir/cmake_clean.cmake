file(REMOVE_RECURSE
  "CMakeFiles/ext_index_comparison.dir/ext_index_comparison.cc.o"
  "CMakeFiles/ext_index_comparison.dir/ext_index_comparison.cc.o.d"
  "ext_index_comparison"
  "ext_index_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_index_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
