# Empty dependencies file for ext_index_comparison.
# This may be replaced when dependencies are built.
