file(REMOVE_RECURSE
  "CMakeFiles/ext_knn_k_sweep.dir/ext_knn_k_sweep.cc.o"
  "CMakeFiles/ext_knn_k_sweep.dir/ext_knn_k_sweep.cc.o.d"
  "ext_knn_k_sweep"
  "ext_knn_k_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_knn_k_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
