# Empty dependencies file for ext_knn_k_sweep.
# This may be replaced when dependencies are built.
