file(REMOVE_RECURSE
  "CMakeFiles/ext_multi_viewpoint.dir/ext_multi_viewpoint.cc.o"
  "CMakeFiles/ext_multi_viewpoint.dir/ext_multi_viewpoint.cc.o.d"
  "ext_multi_viewpoint"
  "ext_multi_viewpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multi_viewpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
