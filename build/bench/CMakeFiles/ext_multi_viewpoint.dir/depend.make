# Empty dependencies file for ext_multi_viewpoint.
# This may be replaced when dependencies are built.
