file(REMOVE_RECURSE
  "CMakeFiles/ext_vptree_model.dir/ext_vptree_model.cc.o"
  "CMakeFiles/ext_vptree_model.dir/ext_vptree_model.cc.o.d"
  "ext_vptree_model"
  "ext_vptree_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_vptree_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
