# Empty compiler generated dependencies file for ext_vptree_model.
# This may be replaced when dependencies are built.
