file(REMOVE_RECURSE
  "CMakeFiles/fig1_range_vs_dim.dir/fig1_range_vs_dim.cc.o"
  "CMakeFiles/fig1_range_vs_dim.dir/fig1_range_vs_dim.cc.o.d"
  "fig1_range_vs_dim"
  "fig1_range_vs_dim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_range_vs_dim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
