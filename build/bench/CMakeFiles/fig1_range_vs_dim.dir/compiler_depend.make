# Empty compiler generated dependencies file for fig1_range_vs_dim.
# This may be replaced when dependencies are built.
