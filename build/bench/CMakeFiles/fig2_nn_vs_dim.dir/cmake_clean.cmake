file(REMOVE_RECURSE
  "CMakeFiles/fig2_nn_vs_dim.dir/fig2_nn_vs_dim.cc.o"
  "CMakeFiles/fig2_nn_vs_dim.dir/fig2_nn_vs_dim.cc.o.d"
  "fig2_nn_vs_dim"
  "fig2_nn_vs_dim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_nn_vs_dim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
