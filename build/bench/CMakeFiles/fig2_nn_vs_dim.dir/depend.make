# Empty dependencies file for fig2_nn_vs_dim.
# This may be replaced when dependencies are built.
