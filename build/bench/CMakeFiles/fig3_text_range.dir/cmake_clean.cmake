file(REMOVE_RECURSE
  "CMakeFiles/fig3_text_range.dir/fig3_text_range.cc.o"
  "CMakeFiles/fig3_text_range.dir/fig3_text_range.cc.o.d"
  "fig3_text_range"
  "fig3_text_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_text_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
