# Empty compiler generated dependencies file for fig3_text_range.
# This may be replaced when dependencies are built.
