file(REMOVE_RECURSE
  "CMakeFiles/table1_hv.dir/table1_hv.cc.o"
  "CMakeFiles/table1_hv.dir/table1_hv.cc.o.d"
  "table1_hv"
  "table1_hv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
