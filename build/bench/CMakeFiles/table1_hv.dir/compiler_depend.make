# Empty compiler generated dependencies file for table1_hv.
# This may be replaced when dependencies are built.
