file(REMOVE_RECURSE
  "CMakeFiles/disk_index.dir/disk_index.cpp.o"
  "CMakeFiles/disk_index.dir/disk_index.cpp.o.d"
  "disk_index"
  "disk_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
