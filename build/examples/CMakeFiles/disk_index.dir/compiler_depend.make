# Empty compiler generated dependencies file for disk_index.
# This may be replaced when dependencies are built.
