file(REMOVE_RECURSE
  "CMakeFiles/node_size_advisor.dir/node_size_advisor.cpp.o"
  "CMakeFiles/node_size_advisor.dir/node_size_advisor.cpp.o.d"
  "node_size_advisor"
  "node_size_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_size_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
