# Empty dependencies file for node_size_advisor.
# This may be replaced when dependencies are built.
