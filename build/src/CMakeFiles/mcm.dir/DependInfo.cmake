
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mcm/bench_util/experiment.cc" "src/CMakeFiles/mcm.dir/mcm/bench_util/experiment.cc.o" "gcc" "src/CMakeFiles/mcm.dir/mcm/bench_util/experiment.cc.o.d"
  "/root/repo/src/mcm/common/env.cc" "src/CMakeFiles/mcm.dir/mcm/common/env.cc.o" "gcc" "src/CMakeFiles/mcm.dir/mcm/common/env.cc.o.d"
  "/root/repo/src/mcm/common/numeric.cc" "src/CMakeFiles/mcm.dir/mcm/common/numeric.cc.o" "gcc" "src/CMakeFiles/mcm.dir/mcm/common/numeric.cc.o.d"
  "/root/repo/src/mcm/common/table_printer.cc" "src/CMakeFiles/mcm.dir/mcm/common/table_printer.cc.o" "gcc" "src/CMakeFiles/mcm.dir/mcm/common/table_printer.cc.o.d"
  "/root/repo/src/mcm/cost/access_path.cc" "src/CMakeFiles/mcm.dir/mcm/cost/access_path.cc.o" "gcc" "src/CMakeFiles/mcm.dir/mcm/cost/access_path.cc.o.d"
  "/root/repo/src/mcm/cost/lmcm.cc" "src/CMakeFiles/mcm.dir/mcm/cost/lmcm.cc.o" "gcc" "src/CMakeFiles/mcm.dir/mcm/cost/lmcm.cc.o.d"
  "/root/repo/src/mcm/cost/nmcm.cc" "src/CMakeFiles/mcm.dir/mcm/cost/nmcm.cc.o" "gcc" "src/CMakeFiles/mcm.dir/mcm/cost/nmcm.cc.o.d"
  "/root/repo/src/mcm/cost/nn_distance.cc" "src/CMakeFiles/mcm.dir/mcm/cost/nn_distance.cc.o" "gcc" "src/CMakeFiles/mcm.dir/mcm/cost/nn_distance.cc.o.d"
  "/root/repo/src/mcm/cost/shape_estimator.cc" "src/CMakeFiles/mcm.dir/mcm/cost/shape_estimator.cc.o" "gcc" "src/CMakeFiles/mcm.dir/mcm/cost/shape_estimator.cc.o.d"
  "/root/repo/src/mcm/cost/tree_stats.cc" "src/CMakeFiles/mcm.dir/mcm/cost/tree_stats.cc.o" "gcc" "src/CMakeFiles/mcm.dir/mcm/cost/tree_stats.cc.o.d"
  "/root/repo/src/mcm/cost/tuner.cc" "src/CMakeFiles/mcm.dir/mcm/cost/tuner.cc.o" "gcc" "src/CMakeFiles/mcm.dir/mcm/cost/tuner.cc.o.d"
  "/root/repo/src/mcm/cost/vp_model.cc" "src/CMakeFiles/mcm.dir/mcm/cost/vp_model.cc.o" "gcc" "src/CMakeFiles/mcm.dir/mcm/cost/vp_model.cc.o.d"
  "/root/repo/src/mcm/dataset/shape_datasets.cc" "src/CMakeFiles/mcm.dir/mcm/dataset/shape_datasets.cc.o" "gcc" "src/CMakeFiles/mcm.dir/mcm/dataset/shape_datasets.cc.o.d"
  "/root/repo/src/mcm/dataset/text_datasets.cc" "src/CMakeFiles/mcm.dir/mcm/dataset/text_datasets.cc.o" "gcc" "src/CMakeFiles/mcm.dir/mcm/dataset/text_datasets.cc.o.d"
  "/root/repo/src/mcm/dataset/vector_datasets.cc" "src/CMakeFiles/mcm.dir/mcm/dataset/vector_datasets.cc.o" "gcc" "src/CMakeFiles/mcm.dir/mcm/dataset/vector_datasets.cc.o.d"
  "/root/repo/src/mcm/distribution/fractal.cc" "src/CMakeFiles/mcm.dir/mcm/distribution/fractal.cc.o" "gcc" "src/CMakeFiles/mcm.dir/mcm/distribution/fractal.cc.o.d"
  "/root/repo/src/mcm/distribution/histogram.cc" "src/CMakeFiles/mcm.dir/mcm/distribution/histogram.cc.o" "gcc" "src/CMakeFiles/mcm.dir/mcm/distribution/histogram.cc.o.d"
  "/root/repo/src/mcm/distribution/homogeneity.cc" "src/CMakeFiles/mcm.dir/mcm/distribution/homogeneity.cc.o" "gcc" "src/CMakeFiles/mcm.dir/mcm/distribution/homogeneity.cc.o.d"
  "/root/repo/src/mcm/metric/set_metrics.cc" "src/CMakeFiles/mcm.dir/mcm/metric/set_metrics.cc.o" "gcc" "src/CMakeFiles/mcm.dir/mcm/metric/set_metrics.cc.o.d"
  "/root/repo/src/mcm/metric/string_metrics.cc" "src/CMakeFiles/mcm.dir/mcm/metric/string_metrics.cc.o" "gcc" "src/CMakeFiles/mcm.dir/mcm/metric/string_metrics.cc.o.d"
  "/root/repo/src/mcm/storage/buffer_pool.cc" "src/CMakeFiles/mcm.dir/mcm/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/mcm.dir/mcm/storage/buffer_pool.cc.o.d"
  "/root/repo/src/mcm/storage/page_file.cc" "src/CMakeFiles/mcm.dir/mcm/storage/page_file.cc.o" "gcc" "src/CMakeFiles/mcm.dir/mcm/storage/page_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
