file(REMOVE_RECURSE
  "libmcm.a"
)
