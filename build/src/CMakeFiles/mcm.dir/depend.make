# Empty dependencies file for mcm.
# This may be replaced when dependencies are built.
