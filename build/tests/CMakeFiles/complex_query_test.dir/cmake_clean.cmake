file(REMOVE_RECURSE
  "CMakeFiles/complex_query_test.dir/complex_query_test.cc.o"
  "CMakeFiles/complex_query_test.dir/complex_query_test.cc.o.d"
  "complex_query_test"
  "complex_query_test.pdb"
  "complex_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complex_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
