# Empty dependencies file for complex_query_test.
# This may be replaced when dependencies are built.
