file(REMOVE_RECURSE
  "CMakeFiles/fractal_test.dir/fractal_test.cc.o"
  "CMakeFiles/fractal_test.dir/fractal_test.cc.o.d"
  "fractal_test"
  "fractal_test.pdb"
  "fractal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fractal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
