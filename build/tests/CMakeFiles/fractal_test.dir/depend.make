# Empty dependencies file for fractal_test.
# This may be replaced when dependencies are built.
