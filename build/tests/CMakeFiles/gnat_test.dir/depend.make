# Empty dependencies file for gnat_test.
# This may be replaced when dependencies are built.
