file(REMOVE_RECURSE
  "CMakeFiles/homogeneity_test.dir/homogeneity_test.cc.o"
  "CMakeFiles/homogeneity_test.dir/homogeneity_test.cc.o.d"
  "homogeneity_test"
  "homogeneity_test.pdb"
  "homogeneity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homogeneity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
