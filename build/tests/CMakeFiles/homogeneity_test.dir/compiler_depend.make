# Empty compiler generated dependencies file for homogeneity_test.
# This may be replaced when dependencies are built.
