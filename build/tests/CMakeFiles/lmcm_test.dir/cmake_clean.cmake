file(REMOVE_RECURSE
  "CMakeFiles/lmcm_test.dir/lmcm_test.cc.o"
  "CMakeFiles/lmcm_test.dir/lmcm_test.cc.o.d"
  "lmcm_test"
  "lmcm_test.pdb"
  "lmcm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmcm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
