# Empty dependencies file for lmcm_test.
# This may be replaced when dependencies are built.
