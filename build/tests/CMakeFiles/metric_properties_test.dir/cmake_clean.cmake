file(REMOVE_RECURSE
  "CMakeFiles/metric_properties_test.dir/metric_properties_test.cc.o"
  "CMakeFiles/metric_properties_test.dir/metric_properties_test.cc.o.d"
  "metric_properties_test"
  "metric_properties_test.pdb"
  "metric_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metric_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
