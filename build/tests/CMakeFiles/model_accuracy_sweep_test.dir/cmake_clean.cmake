file(REMOVE_RECURSE
  "CMakeFiles/model_accuracy_sweep_test.dir/model_accuracy_sweep_test.cc.o"
  "CMakeFiles/model_accuracy_sweep_test.dir/model_accuracy_sweep_test.cc.o.d"
  "model_accuracy_sweep_test"
  "model_accuracy_sweep_test.pdb"
  "model_accuracy_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_accuracy_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
