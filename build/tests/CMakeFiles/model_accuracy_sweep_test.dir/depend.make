# Empty dependencies file for model_accuracy_sweep_test.
# This may be replaced when dependencies are built.
