file(REMOVE_RECURSE
  "CMakeFiles/mtree_bulkload_test.dir/mtree_bulkload_test.cc.o"
  "CMakeFiles/mtree_bulkload_test.dir/mtree_bulkload_test.cc.o.d"
  "mtree_bulkload_test"
  "mtree_bulkload_test.pdb"
  "mtree_bulkload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtree_bulkload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
