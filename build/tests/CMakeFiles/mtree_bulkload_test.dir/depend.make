# Empty dependencies file for mtree_bulkload_test.
# This may be replaced when dependencies are built.
