file(REMOVE_RECURSE
  "CMakeFiles/mtree_delete_test.dir/mtree_delete_test.cc.o"
  "CMakeFiles/mtree_delete_test.dir/mtree_delete_test.cc.o.d"
  "mtree_delete_test"
  "mtree_delete_test.pdb"
  "mtree_delete_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtree_delete_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
