# Empty dependencies file for mtree_delete_test.
# This may be replaced when dependencies are built.
