file(REMOVE_RECURSE
  "CMakeFiles/mtree_insert_test.dir/mtree_insert_test.cc.o"
  "CMakeFiles/mtree_insert_test.dir/mtree_insert_test.cc.o.d"
  "mtree_insert_test"
  "mtree_insert_test.pdb"
  "mtree_insert_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtree_insert_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
