# Empty compiler generated dependencies file for mtree_insert_test.
# This may be replaced when dependencies are built.
