file(REMOVE_RECURSE
  "CMakeFiles/mtree_query_test.dir/mtree_query_test.cc.o"
  "CMakeFiles/mtree_query_test.dir/mtree_query_test.cc.o.d"
  "mtree_query_test"
  "mtree_query_test.pdb"
  "mtree_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtree_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
