# Empty compiler generated dependencies file for mtree_query_test.
# This may be replaced when dependencies are built.
