file(REMOVE_RECURSE
  "CMakeFiles/nmcm_test.dir/nmcm_test.cc.o"
  "CMakeFiles/nmcm_test.dir/nmcm_test.cc.o.d"
  "nmcm_test"
  "nmcm_test.pdb"
  "nmcm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmcm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
