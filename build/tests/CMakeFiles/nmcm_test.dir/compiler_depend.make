# Empty compiler generated dependencies file for nmcm_test.
# This may be replaced when dependencies are built.
