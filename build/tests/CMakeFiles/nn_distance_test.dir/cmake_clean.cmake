file(REMOVE_RECURSE
  "CMakeFiles/nn_distance_test.dir/nn_distance_test.cc.o"
  "CMakeFiles/nn_distance_test.dir/nn_distance_test.cc.o.d"
  "nn_distance_test"
  "nn_distance_test.pdb"
  "nn_distance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_distance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
