# Empty dependencies file for node_store_test.
# This may be replaced when dependencies are built.
