file(REMOVE_RECURSE
  "CMakeFiles/paged_query_test.dir/paged_query_test.cc.o"
  "CMakeFiles/paged_query_test.dir/paged_query_test.cc.o.d"
  "paged_query_test"
  "paged_query_test.pdb"
  "paged_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paged_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
