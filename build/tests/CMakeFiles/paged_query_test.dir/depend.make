# Empty dependencies file for paged_query_test.
# This may be replaced when dependencies are built.
