file(REMOVE_RECURSE
  "CMakeFiles/set_metrics_test.dir/set_metrics_test.cc.o"
  "CMakeFiles/set_metrics_test.dir/set_metrics_test.cc.o.d"
  "set_metrics_test"
  "set_metrics_test.pdb"
  "set_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/set_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
