# Empty compiler generated dependencies file for set_metrics_test.
# This may be replaced when dependencies are built.
