file(REMOVE_RECURSE
  "CMakeFiles/shape_estimator_test.dir/shape_estimator_test.cc.o"
  "CMakeFiles/shape_estimator_test.dir/shape_estimator_test.cc.o.d"
  "shape_estimator_test"
  "shape_estimator_test.pdb"
  "shape_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shape_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
