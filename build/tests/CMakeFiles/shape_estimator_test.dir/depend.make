# Empty dependencies file for shape_estimator_test.
# This may be replaced when dependencies are built.
