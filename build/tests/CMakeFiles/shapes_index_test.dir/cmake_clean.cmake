file(REMOVE_RECURSE
  "CMakeFiles/shapes_index_test.dir/shapes_index_test.cc.o"
  "CMakeFiles/shapes_index_test.dir/shapes_index_test.cc.o.d"
  "shapes_index_test"
  "shapes_index_test.pdb"
  "shapes_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shapes_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
