# Empty compiler generated dependencies file for string_metrics_test.
# This may be replaced when dependencies are built.
