file(REMOVE_RECURSE
  "CMakeFiles/text_datasets_test.dir/text_datasets_test.cc.o"
  "CMakeFiles/text_datasets_test.dir/text_datasets_test.cc.o.d"
  "text_datasets_test"
  "text_datasets_test.pdb"
  "text_datasets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_datasets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
