# Empty compiler generated dependencies file for text_datasets_test.
# This may be replaced when dependencies are built.
