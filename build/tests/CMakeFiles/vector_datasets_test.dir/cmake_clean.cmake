file(REMOVE_RECURSE
  "CMakeFiles/vector_datasets_test.dir/vector_datasets_test.cc.o"
  "CMakeFiles/vector_datasets_test.dir/vector_datasets_test.cc.o.d"
  "vector_datasets_test"
  "vector_datasets_test.pdb"
  "vector_datasets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vector_datasets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
