# Empty dependencies file for vector_datasets_test.
# This may be replaced when dependencies are built.
