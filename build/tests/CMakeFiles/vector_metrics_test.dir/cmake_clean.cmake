file(REMOVE_RECURSE
  "CMakeFiles/vector_metrics_test.dir/vector_metrics_test.cc.o"
  "CMakeFiles/vector_metrics_test.dir/vector_metrics_test.cc.o.d"
  "vector_metrics_test"
  "vector_metrics_test.pdb"
  "vector_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vector_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
