file(REMOVE_RECURSE
  "CMakeFiles/viewpoints_test.dir/viewpoints_test.cc.o"
  "CMakeFiles/viewpoints_test.dir/viewpoints_test.cc.o.d"
  "viewpoints_test"
  "viewpoints_test.pdb"
  "viewpoints_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viewpoints_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
