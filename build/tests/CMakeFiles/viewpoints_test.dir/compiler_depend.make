# Empty compiler generated dependencies file for viewpoints_test.
# This may be replaced when dependencies are built.
