# Empty compiler generated dependencies file for vp_model_test.
# This may be replaced when dependencies are built.
