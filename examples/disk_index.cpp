// Disk-resident index: the M-tree is a *paged* access method (unlike the
// static main-memory metric trees it improves on). This example stores the
// index in a real file through the page/buffer-pool substrate, queries it
// through a deliberately tiny buffer pool, and reports physical vs logical
// I/O — the distinction behind the paper's I/O cost unit.

#include <cstdio>
#include <memory>

#include "mcm/dataset/vector_datasets.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"
#include "mcm/storage/page_file.h"

int main() {
  using namespace mcm;
  using Traits = VectorTraits<LInfDistance>;

  const size_t n = 20000, dim = 8;
  const auto objects = GenerateClustered(n, dim, /*seed=*/42);

  MTreeOptions options;             // 4 KB pages.
  options.buffer_pool_frames = 16;  // Tiny pool: most reads hit the disk.

  const std::string path = "/tmp/mcm_disk_index.mtree";
  auto store = std::make_unique<PagedNodeStore<Traits>>(
      std::make_unique<StdioPageFile>(path, options.node_size_bytes),
      options.buffer_pool_frames);
  auto* store_ptr = store.get();

  auto tree = MTree<Traits>::BulkLoad(objects, LInfDistance{}, options,
                                      std::move(store));
  store_ptr->pool().FlushAll();
  std::printf("index file: %s (%zu pages of %zu bytes = %.1f MB)\n",
              path.c_str(), store_ptr->file().num_pages(),
              options.node_size_bytes,
              static_cast<double>(store_ptr->file().num_pages() *
                                  options.node_size_bytes) /
                  (1024.0 * 1024.0));

  // Cold query workload through the 16-frame pool.
  store_ptr->pool().EvictAll();
  store_ptr->pool().ResetStats();
  store_ptr->file().ResetStats();
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 100, dim, 42);
  size_t total_results = 0;
  QueryStats stats;
  QueryStats accumulated;
  for (const auto& q : queries) {
    total_results += tree.RangeSearch(q, 0.15, &stats).size();
    accumulated += stats;
  }

  const auto& pool = store_ptr->pool().stats();
  std::printf("\n100 range queries, radius 0.15: %zu results total\n",
              total_results);
  std::printf("logical node reads (the paper's I/O cost): %llu\n",
              static_cast<unsigned long long>(accumulated.nodes_accessed));
  std::printf("buffer pool: %llu fetches, %llu hits, %llu misses "
              "(%.1f%% hit rate), %llu evictions\n",
              static_cast<unsigned long long>(pool.fetches),
              static_cast<unsigned long long>(pool.hits),
              static_cast<unsigned long long>(pool.misses),
              100.0 * static_cast<double>(pool.hits) /
                  static_cast<double>(pool.fetches),
              static_cast<unsigned long long>(pool.evictions));
  std::printf("physical page reads from %s: %llu\n", path.c_str(),
              static_cast<unsigned long long>(
                  store_ptr->file().stats().reads));
  std::remove(path.c_str());
  return 0;
}
