// Fuzzy dictionary: the paper's motivating application (Section 1) —
// given a large set of keywords under the edit distance, find the words
// closest to a (possibly misspelled) query, and *predict the cost before
// running the query*, the way a query optimizer would.

#include <cstdio>
#include <string>

#include "mcm/cost/nmcm.h"
#include "mcm/dataset/text_datasets.h"
#include "mcm/distribution/estimator.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"

int main(int argc, char** argv) {
  using namespace mcm;
  using Traits = StringTraits<EditDistanceMetric>;

  // A 15k-word Italian-like vocabulary (stands in for the paper's keyword
  // sets extracted from Italian literature).
  const auto words = GenerateKeywords(15000, /*seed=*/42);
  MTreeOptions options;
  auto tree = MTree<Traits>::BulkLoad(words, EditDistanceMetric{}, options);

  EstimatorOptions eo;
  eo.num_bins = 25;  // Edit distances here never exceed 25.
  eo.d_plus = 25.0;
  const auto histogram =
      EstimateDistanceDistribution(words, EditDistanceMetric{}, eo);
  const NodeBasedCostModel model(histogram, tree.CollectStats(25.0));

  const std::string query = argc > 1 ? argv[1] : "parolla";  // A misspelling.
  std::printf("dictionary: %zu words in %zu nodes (4 KB each)\n",
              tree.size(), tree.store().NumNodes());

  // The optimizer's view: what will this query cost?
  std::printf("\npredicted cost of range('%s', 2): %.0f node reads, %.0f "
              "edit-distance computations, ~%.1f matches\n",
              query.c_str(), model.RangeNodes(2.0), model.RangeDistances(2.0),
              model.RangeObjects(2.0));
  std::printf("predicted cost of NN('%s', 20): %.0f node reads, %.0f "
              "edit-distance computations (the paper's '20 nearest "
              "keywords' question)\n",
              query.c_str(), model.NnNodes(20), model.NnDistances(20));

  // Now actually run them.
  QueryStats stats;
  const auto near = tree.RangeSearch(query, 2.0, &stats);
  std::printf("\nwords within edit distance 2 of '%s' (measured: %llu "
              "reads, %llu distances):\n",
              query.c_str(),
              static_cast<unsigned long long>(stats.nodes_accessed),
              static_cast<unsigned long long>(stats.distance_computations));
  for (size_t i = 0; i < near.size() && i < 8; ++i) {
    std::printf("  %-20s (distance %.0f)\n", near[i].object.c_str(),
                near[i].distance);
  }
  if (near.empty()) {
    std::printf("  (none)\n");
  }

  const auto knn = tree.KnnSearch(query, 5, &stats);
  std::printf("\n5 nearest words to '%s' (measured: %llu reads, %llu "
              "distances):\n",
              query.c_str(),
              static_cast<unsigned long long>(stats.nodes_accessed),
              static_cast<unsigned long long>(stats.distance_computations));
  for (const auto& r : knn) {
    std::printf("  %-20s (distance %.0f)\n", r.object.c_str(), r.distance);
  }
  return 0;
}
