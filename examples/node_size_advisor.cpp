// Node-size advisor (Section 4.1): given a dataset, a query profile, and
// device cost coefficients, sweep candidate node sizes, predict per-query
// time with the cost model, and recommend the node size that minimizes
// c_CPU * dists + (t_pos + NS * t_trans) * nodes.
//
// Usage: node_size_advisor [cpu_ms_per_distance] [t_pos_ms] [t_trans_ms_per_kb]
// Defaults are the paper's: 5, 10, 1 (which yield an 8 KB optimum on the
// paper's 10^6-object dataset).

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "mcm/cost/nmcm.h"
#include "mcm/cost/tuner.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/distribution/estimator.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"

int main(int argc, char** argv) {
  using namespace mcm;
  using Traits = VectorTraits<LInfDistance>;

  DiskCostParameters params;  // Paper defaults.
  if (argc > 1) params.cpu_ms_per_distance = std::atof(argv[1]);
  if (argc > 2) params.position_ms = std::atof(argv[2]);
  if (argc > 3) params.transfer_ms_per_kb = std::atof(argv[3]);

  const size_t n = 50000, dim = 5;
  const auto objects = GenerateClustered(n, dim, /*seed=*/42);
  const double radius = std::pow(0.01, 1.0 / dim) / 2.0;

  EstimatorOptions eo;
  eo.num_bins = 100;
  const auto histogram =
      EstimateDistanceDistribution(objects, LInfDistance{}, eo);

  std::printf("advising node size for %zu objects, range radius %.3f\n"
              "device: c_CPU=%.1f ms/distance, c_IO = %.1f + NS*%.1f ms\n\n",
              n, radius, params.cpu_ms_per_distance, params.position_ms,
              params.transfer_ms_per_kb);
  std::printf("%10s %12s %12s %14s\n", "NS (KB)", "pred reads",
              "pred dists", "pred ms/query");

  std::vector<NodeSizeSample> samples;
  for (size_t ns = 512; ns <= 65536; ns *= 2) {
    MTreeOptions options;
    options.node_size_bytes = ns;
    auto tree = MTree<Traits>::BulkLoad(objects, LInfDistance{}, options);
    const NodeBasedCostModel model(histogram, tree.CollectStats(1.0));
    const NodeSizeSample sample{ns, model.RangeDistances(radius),
                                model.RangeNodes(radius)};
    samples.push_back(sample);
    std::printf("%10.1f %12.1f %12.1f %14.1f\n",
                static_cast<double>(ns) / 1024.0, sample.nodes, sample.dists,
                TotalCostMs(params, sample.dists, sample.nodes, ns));
  }

  const TuningResult best = ChooseNodeSize(params, samples);
  std::printf("\nrecommended node size: %zu KB (predicted %.1f ms/query)\n",
              best.best_node_size_bytes / 1024, best.best_total_ms);
  return 0;
}
