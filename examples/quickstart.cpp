// Quickstart: index a vector dataset with the M-tree, run similarity
// queries, and predict their costs with the paper's cost models — all in
// ~60 lines of user code.
//
//   1. generate (or load) objects from a metric space;
//   2. bulk-load an M-tree;
//   3. estimate the distance distribution F̂ⁿ (the only statistic the cost
//      models need about the data);
//   4. predict range/k-NN costs with N-MCM, then run the queries and
//      compare.

#include <cstdio>

#include "mcm/bench_util/experiment.h"
#include "mcm/cost/nmcm.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/distribution/estimator.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"

int main() {
  using namespace mcm;
  using Traits = VectorTraits<LInfDistance>;

  // 1. A metric dataset: 20000 clustered points in [0,1]^10 under L-inf.
  const size_t n = 20000, dim = 10;
  const auto objects = GenerateClustered(n, dim, /*seed=*/7);

  // 2. Bulk-load a paged M-tree (4 KB nodes by default).
  MTreeOptions options;
  auto tree = MTree<Traits>::BulkLoad(objects, LInfDistance{}, options);
  std::printf("indexed %zu objects in %zu nodes, height %u\n", tree.size(),
              tree.store().NumNodes(), tree.height());

  // 3. Estimate the distance distribution (100-bin histogram, d+ = 1).
  EstimatorOptions eo;
  eo.num_bins = 100;
  eo.d_plus = 1.0;
  const auto histogram =
      EstimateDistanceDistribution(objects, LInfDistance{}, eo);

  // 4. The node-based cost model, fed with the tree's statistics.
  const NodeBasedCostModel model(histogram, tree.CollectStats(/*d+=*/1.0));

  const double radius = 0.15;
  std::printf("\nrange(Q, %.2f) predictions: %.1f node reads, %.1f distance "
              "computations, %.1f results\n",
              radius, model.RangeNodes(radius), model.RangeDistances(radius),
              model.RangeObjects(radius));

  const FloatVector query = objects[123];  // Any object of the space works.
  QueryStats stats;
  const auto results = tree.RangeSearch(query, radius, &stats);
  std::printf("one measured query:       %llu node reads, %llu distance "
              "computations, %zu results\n",
              static_cast<unsigned long long>(stats.nodes_accessed),
              static_cast<unsigned long long>(stats.distance_computations),
              results.size());

  std::printf("\nNN(Q, 10) predictions: %.1f node reads, %.1f distance "
              "computations, E[nn_10] = %.3f\n",
              model.NnNodes(10), model.NnDistances(10),
              model.nn_model().ExpectedNnDistance(10));
  const auto knn = tree.KnnSearch(query, 10, &stats);
  std::printf("one measured query:    %llu node reads, %llu distance "
              "computations, 10th NN at %.3f\n",
              static_cast<unsigned long long>(stats.nodes_accessed),
              static_cast<unsigned long long>(stats.distance_computations),
              knn.back().distance);
  return 0;
}
