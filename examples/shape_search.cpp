// Shape matching: similarity search in a genuinely non-vector metric space.
// 2-d contours are compared with the Hausdorff distance (the paper's
// shape-matching motivation, Huttenlocher et al.) — there are no
// coordinates the index could use, only distances, which is exactly the
// regime the M-tree and its cost model were designed for.

#include <cstdio>

#include "mcm/cost/nmcm.h"
#include "mcm/dataset/shape_datasets.h"
#include "mcm/distribution/estimator.h"
#include "mcm/metric/set_metrics.h"
#include "mcm/mtree/bulk_load.h"

int main() {
  using namespace mcm;

  // A library of 5000 contour shapes from 20 families.
  const auto shapes = GenerateShapes(5000, /*seed=*/42);
  MTreeOptions options;
  auto tree =
      MTree<PointSetTraits>::BulkLoad(shapes, HausdorffMetric{}, options);
  std::printf("indexed %zu shapes (%zu contour points each) in %zu nodes\n",
              tree.size(), shapes[0].size(), tree.store().NumNodes());

  // Cost model over the Hausdorff distance distribution.
  const double d_plus = std::sqrt(2.0);  // Max Hausdorff distance in [0,1]^2.
  EstimatorOptions eo;
  eo.num_bins = 100;
  eo.d_plus = d_plus;
  eo.max_pairs = 200000;
  const auto histogram =
      EstimateDistanceDistribution(shapes, HausdorffMetric{}, eo);
  const NodeBasedCostModel model(histogram, tree.CollectStats(d_plus));

  // A query contour: same family mixture, fresh noise (a "sketch" of one
  // of the library's shape families).
  const PointSet query = GenerateShapeQueries(1, 42)[0];

  std::printf("\npredicted NN(Q, 5): %.0f node reads, %.0f Hausdorff "
              "evaluations, E[nn_5] = %.4f\n",
              model.NnNodes(5), model.NnDistances(5),
              model.nn_model().ExpectedNnDistance(5));

  QueryStats stats;
  const auto matches = tree.KnnSearch(query, 5, &stats);
  std::printf("measured:           %llu node reads, %llu Hausdorff "
              "evaluations\n",
              static_cast<unsigned long long>(stats.nodes_accessed),
              static_cast<unsigned long long>(stats.distance_computations));
  std::printf("\n5 most similar shapes:\n");
  for (const auto& m : matches) {
    std::printf("  shape #%llu at Hausdorff distance %.4f\n",
                static_cast<unsigned long long>(m.oid), m.distance);
  }

  // Versus the brute force alternative.
  std::printf("\n(a linear scan would compute %zu Hausdorff distances: "
              "%.1fx more)\n",
              shapes.size(),
              static_cast<double>(shapes.size()) /
                  static_cast<double>(stats.distance_computations));
  return 0;
}
