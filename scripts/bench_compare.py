#!/usr/bin/env python3
"""Compare two BENCH_*.json artifacts and flag regressions.

Kernel-timing mode (the original): the micro-benchmark harness emits one
`record=metric` line whose `data` object maps benchmark names (BM_*) to
ns/op. This tool diffs those maps:

  bench_compare.py BASELINE CURRENT [--tolerance X]
      Compare two already-emitted artifacts. A benchmark regresses when
      current > baseline * tolerance; exits 1 when any regression (or an
      empty comparison) is found. Improvements and new benchmarks are
      reported but never fail the comparison.

  bench_compare.py --run BINARY --outdir DIR --baseline FILE \
                   [--env K=V ...] [--tolerance X]
      Run BINARY with MCM_OBS=1 / MCM_OBS_DIR=DIR (plus --env overrides),
      then compare the artifact it wrote (same basename as FILE) against
      the committed baseline. This is what the `bench_compare_kernels`
      CTest runs against bench/results/BENCH_micro_kernels.json.

The default tolerance is deliberately loose (5x): the committed baseline
was produced on one machine and CI runs on another, so the check guards
against order-of-magnitude regressions (an accidentally disabled SIMD
backend, quadratic blowup), not few-percent noise.

Generic metric mode: any pair of schema-valid BENCH_*.json files can be
compared on an explicit metric path with a hard ratio bound:

  bench_compare.py BASELINE CURRENT --metric SPEC \
                   [--current-metric SPEC] --max-ratio X \
                   [--run BINARY --outdir DIR [--env K=V ...]]
      SPEC is RECORD:CASE:FIELD — record type (`summary` or `query`),
      the record's `case` label, and a dotted numeric field path
      (`avg_dists`, `latency_us.p50`). When several records match (query
      records do), their values are averaged. The comparison fails when
      current > baseline * max-ratio. --current-metric defaults to
      --metric; passing the SAME file as both BASELINE and CURRENT with
      two different specs compares two cases of one artifact — the
      `bench_compare_witness` CTest uses this to require the witness
      cascade to cut avg_dists to <= 0.85x of the capacity-0 run.
"""

import argparse
import json
import os
import subprocess
import sys


def load_timings(path):
    """Returns the merged BM_* -> ns/op map of every metric record."""
    timings = {}
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                print(f"{path}:{lineno}: invalid JSON: {exc}",
                      file=sys.stderr)
                return None
            if not isinstance(rec, dict) or rec.get("record") != "metric":
                continue
            data = rec.get("data")
            if not isinstance(data, dict):
                continue
            for name, value in data.items():
                if name.startswith("BM_") and isinstance(value, (int, float)):
                    timings[name] = float(value)
    return timings


def compare(baseline_path, current_path, tolerance):
    baseline = load_timings(baseline_path)
    current = load_timings(current_path)
    if baseline is None or current is None:
        return 1
    if not baseline:
        print(f"{baseline_path}: no BM_* timings found", file=sys.stderr)
        return 1
    if not current:
        print(f"{current_path}: no BM_* timings found", file=sys.stderr)
        return 1

    shared = sorted(set(baseline) & set(current))
    if not shared:
        print("no benchmarks in common between "
              f"{baseline_path} and {current_path}", file=sys.stderr)
        return 1

    regressions = []
    print(f"{'benchmark':<44} {'baseline':>12} {'current':>12} {'ratio':>8}")
    for name in shared:
        base = baseline[name]
        cur = current[name]
        ratio = cur / base if base > 0 else float("inf")
        marker = ""
        if ratio > tolerance:
            marker = "  REGRESSION"
            regressions.append(name)
        elif ratio < 1.0 / tolerance:
            marker = "  (improved)"
        print(f"{name:<44} {base:>12.2f} {cur:>12.2f} {ratio:>8.2f}{marker}")

    for name in sorted(set(current) - set(baseline)):
        print(f"{name:<44} {'-':>12} {current[name]:>12.2f}    (new)")
    missing = sorted(set(baseline) - set(current))
    if missing:
        print(f"note: {len(missing)} baseline benchmark(s) not in this run: "
              + ", ".join(missing))

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond {tolerance}x: "
              + ", ".join(regressions), file=sys.stderr)
        return 1
    print(f"\nok: {len(shared)} benchmark(s) within {tolerance}x "
          "of the baseline")
    return 0


def parse_spec(spec):
    """Splits RECORD:CASE:FIELD; returns (record, case, field path list)."""
    parts = spec.split(":")
    if len(parts) != 3 or not all(parts):
        print(f"bad metric spec {spec!r}: expected RECORD:CASE:FIELD",
              file=sys.stderr)
        return None
    record, case, field = parts
    if record not in ("summary", "query"):
        print(f"bad metric spec {spec!r}: record must be summary or query",
              file=sys.stderr)
        return None
    return record, case, field.split(".")


def extract_metric(path, spec):
    """Average numeric value of FIELD over matching records, or None."""
    parsed = parse_spec(spec)
    if parsed is None:
        return None
    record, case, field_path = parsed
    values = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                print(f"{path}:{lineno}: invalid JSON: {exc}",
                      file=sys.stderr)
                return None
            if (not isinstance(rec, dict) or rec.get("record") != record
                    or rec.get("case") != case):
                continue
            value = rec
            for key in field_path:
                value = value.get(key) if isinstance(value, dict) else None
            if not isinstance(value, (int, float)):
                print(f"{path}:{lineno}: {'.'.join(field_path)} is not "
                      f"numeric in matching {record} record",
                      file=sys.stderr)
                return None
            values.append(float(value))
    if not values:
        print(f"{path}: no {record} record with case {case!r}",
              file=sys.stderr)
        return None
    return sum(values) / len(values)


def compare_metric(baseline_path, current_path, baseline_spec, current_spec,
                   max_ratio):
    base = extract_metric(baseline_path, baseline_spec)
    cur = extract_metric(current_path, current_spec)
    if base is None or cur is None:
        return 1
    ratio = cur / base if base > 0 else float("inf")
    print(f"baseline  {baseline_spec:<40} {base:>12.3f}  ({baseline_path})")
    print(f"current   {current_spec:<40} {cur:>12.3f}  ({current_path})")
    print(f"ratio     {ratio:.3f}  (max allowed {max_ratio})")
    if ratio > max_ratio:
        print(f"FAIL: ratio {ratio:.3f} exceeds {max_ratio}",
              file=sys.stderr)
        return 1
    print("ok")
    return 0


def run_binary(binary, outdir, extra_env):
    os.makedirs(outdir, exist_ok=True)
    env = dict(os.environ)
    env["MCM_OBS"] = "1"
    env["MCM_OBS_DIR"] = outdir
    for item in extra_env:
        key, _, value = item.partition("=")
        env[key] = value
    proc = subprocess.run([binary], env=env, stdout=subprocess.DEVNULL)
    if proc.returncode != 0:
        print(f"{binary}: exit code {proc.returncode}", file=sys.stderr)
        return False
    return True


def run_and_compare(binary, outdir, baseline, extra_env, tolerance):
    artifact = os.path.join(outdir, os.path.basename(baseline))
    if os.path.exists(artifact):
        os.remove(artifact)
    if not run_binary(binary, outdir, extra_env):
        return 1
    if not os.path.exists(artifact):
        print(f"{binary} did not write {artifact}", file=sys.stderr)
        return 1
    return compare(baseline, artifact, tolerance)


def main():
    parser = argparse.ArgumentParser(
        description="diff BENCH_*.json timing artifacts")
    parser.add_argument("files", nargs="*",
                        help="BASELINE CURRENT (two-file mode)")
    parser.add_argument("--run", help="bench binary to execute first")
    parser.add_argument("--outdir", help="MCM_OBS_DIR for --run")
    parser.add_argument("--baseline", help="committed artifact for --run")
    parser.add_argument("--env", action="append", default=[],
                        metavar="K=V", help="extra environment for --run")
    parser.add_argument("--tolerance", type=float, default=5.0,
                        help="allowed current/baseline ratio (default 5)")
    parser.add_argument("--metric", metavar="RECORD:CASE:FIELD",
                        help="generic mode: metric path in BASELINE")
    parser.add_argument("--current-metric", metavar="RECORD:CASE:FIELD",
                        help="metric path in CURRENT (default: --metric)")
    parser.add_argument("--max-ratio", type=float,
                        help="generic mode: max current/baseline ratio")
    args = parser.parse_args()

    if args.metric or args.max_ratio is not None:
        if not args.metric or args.max_ratio is None:
            parser.error("generic mode needs both --metric and --max-ratio")
        if len(args.files) != 2:
            parser.error("generic mode expects BASELINE and CURRENT files")
        if args.run:
            if not args.outdir:
                parser.error("--run requires --outdir")
            if not run_binary(args.run, args.outdir, args.env):
                return 1
        return compare_metric(args.files[0], args.files[1], args.metric,
                              args.current_metric or args.metric,
                              args.max_ratio)
    if args.run:
        if not args.outdir or not args.baseline:
            parser.error("--run requires --outdir and --baseline")
        return run_and_compare(args.run, args.outdir, args.baseline,
                               args.env, args.tolerance)
    if len(args.files) != 2:
        parser.error("expected BASELINE and CURRENT (or --run mode)")
    return compare(args.files[0], args.files[1], args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
