#!/usr/bin/env python3
"""Compare two BENCH_*.json artifacts and flag timing regressions.

The micro-benchmark harness emits one `record=metric` line whose `data`
object maps benchmark names (BM_*) to ns/op. This tool diffs those maps:

  bench_compare.py BASELINE CURRENT [--tolerance X]
      Compare two already-emitted artifacts. A benchmark regresses when
      current > baseline * tolerance; exits 1 when any regression (or an
      empty comparison) is found. Improvements and new benchmarks are
      reported but never fail the comparison.

  bench_compare.py --run BINARY --outdir DIR --baseline FILE \
                   [--env K=V ...] [--tolerance X]
      Run BINARY with MCM_OBS=1 / MCM_OBS_DIR=DIR (plus --env overrides),
      then compare the artifact it wrote (same basename as FILE) against
      the committed baseline. This is what the `bench_compare_kernels`
      CTest runs against bench/results/BENCH_micro_kernels.json.

The default tolerance is deliberately loose (5x): the committed baseline
was produced on one machine and CI runs on another, so the check guards
against order-of-magnitude regressions (an accidentally disabled SIMD
backend, quadratic blowup), not few-percent noise.
"""

import argparse
import json
import os
import subprocess
import sys


def load_timings(path):
    """Returns the merged BM_* -> ns/op map of every metric record."""
    timings = {}
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                print(f"{path}:{lineno}: invalid JSON: {exc}",
                      file=sys.stderr)
                return None
            if not isinstance(rec, dict) or rec.get("record") != "metric":
                continue
            data = rec.get("data")
            if not isinstance(data, dict):
                continue
            for name, value in data.items():
                if name.startswith("BM_") and isinstance(value, (int, float)):
                    timings[name] = float(value)
    return timings


def compare(baseline_path, current_path, tolerance):
    baseline = load_timings(baseline_path)
    current = load_timings(current_path)
    if baseline is None or current is None:
        return 1
    if not baseline:
        print(f"{baseline_path}: no BM_* timings found", file=sys.stderr)
        return 1
    if not current:
        print(f"{current_path}: no BM_* timings found", file=sys.stderr)
        return 1

    shared = sorted(set(baseline) & set(current))
    if not shared:
        print("no benchmarks in common between "
              f"{baseline_path} and {current_path}", file=sys.stderr)
        return 1

    regressions = []
    print(f"{'benchmark':<44} {'baseline':>12} {'current':>12} {'ratio':>8}")
    for name in shared:
        base = baseline[name]
        cur = current[name]
        ratio = cur / base if base > 0 else float("inf")
        marker = ""
        if ratio > tolerance:
            marker = "  REGRESSION"
            regressions.append(name)
        elif ratio < 1.0 / tolerance:
            marker = "  (improved)"
        print(f"{name:<44} {base:>12.2f} {cur:>12.2f} {ratio:>8.2f}{marker}")

    for name in sorted(set(current) - set(baseline)):
        print(f"{name:<44} {'-':>12} {current[name]:>12.2f}    (new)")
    missing = sorted(set(baseline) - set(current))
    if missing:
        print(f"note: {len(missing)} baseline benchmark(s) not in this run: "
              + ", ".join(missing))

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond {tolerance}x: "
              + ", ".join(regressions), file=sys.stderr)
        return 1
    print(f"\nok: {len(shared)} benchmark(s) within {tolerance}x "
          "of the baseline")
    return 0


def run_and_compare(binary, outdir, baseline, extra_env, tolerance):
    os.makedirs(outdir, exist_ok=True)
    artifact = os.path.join(outdir, os.path.basename(baseline))
    if os.path.exists(artifact):
        os.remove(artifact)
    env = dict(os.environ)
    env["MCM_OBS"] = "1"
    env["MCM_OBS_DIR"] = outdir
    for item in extra_env:
        key, _, value = item.partition("=")
        env[key] = value
    proc = subprocess.run([binary], env=env, stdout=subprocess.DEVNULL)
    if proc.returncode != 0:
        print(f"{binary}: exit code {proc.returncode}", file=sys.stderr)
        return 1
    if not os.path.exists(artifact):
        print(f"{binary} did not write {artifact}", file=sys.stderr)
        return 1
    return compare(baseline, artifact, tolerance)


def main():
    parser = argparse.ArgumentParser(
        description="diff BENCH_*.json timing artifacts")
    parser.add_argument("files", nargs="*",
                        help="BASELINE CURRENT (two-file mode)")
    parser.add_argument("--run", help="bench binary to execute first")
    parser.add_argument("--outdir", help="MCM_OBS_DIR for --run")
    parser.add_argument("--baseline", help="committed artifact for --run")
    parser.add_argument("--env", action="append", default=[],
                        metavar="K=V", help="extra environment for --run")
    parser.add_argument("--tolerance", type=float, default=5.0,
                        help="allowed current/baseline ratio (default 5)")
    args = parser.parse_args()

    if args.run:
        if not args.outdir or not args.baseline:
            parser.error("--run requires --outdir and --baseline")
        return run_and_compare(args.run, args.outdir, args.baseline,
                               args.env, args.tolerance)
    if len(args.files) != 2:
        parser.error("expected BASELINE and CURRENT (or --run mode)")
    return compare(args.files[0], args.files[1], args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
