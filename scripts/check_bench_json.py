#!/usr/bin/env python3
"""Validate the BENCH_*.json artifacts emitted by the observability layer.

Two modes:

  check_bench_json.py FILE [FILE...]
      Validate already-emitted JSON Lines artifacts.

  check_bench_json.py --run BINARY --outdir DIR [--env K=V ...]
      Run a bench binary with MCM_OBS=1 and MCM_OBS_DIR=DIR (plus any extra
      --env overrides), then validate every BENCH_*.json it wrote. This is
      what the `bench_json_schema` CTest runs.

Schema (one JSON object per line; see DESIGN.md "Observability"):
  record=meta     bench, schema_version, trace_capacity
  record=query    case, seq, kind in {range,knn,complex}, nodes, dists,
                  pruned, witness_avoided, buffer_hits, buffer_misses,
                  results, latency_us, phase_us (object: plan/traverse/
                  distance_eval/page_read/decode/collect/prefetch),
                  level_nodes
                  (array), prunes (object),
                  pred (object of {nodes, dists, level_nodes?})
  record=summary  case, queries, avg_nodes, avg_dists, avg_results,
                  avg_witness_avoided, latency_us (object with mean/p50/
                  p95/p99), phase_us (object, averages), residuals
                  (object of stats)
  record=metric   bench, data (counters/gauges/histograms object)
"""

import argparse
import glob
import json
import os
import subprocess
import sys

REQUIRED_BY_RECORD = {
    "meta": {"bench": str, "schema_version": (int, float),
             "trace_capacity": (int, float)},
    "query": {"case": str, "seq": (int, float), "kind": str,
              "nodes": (int, float), "dists": (int, float),
              "pruned": (int, float), "witness_avoided": (int, float),
              "buffer_hits": (int, float), "buffer_misses": (int, float),
              "results": (int, float), "latency_us": (int, float),
              "phase_us": dict, "level_nodes": list, "prunes": dict,
              "pred": dict},
    "summary": {"case": str, "queries": (int, float),
                "avg_nodes": (int, float), "avg_dists": (int, float),
                "avg_results": (int, float),
                "avg_witness_avoided": (int, float), "latency_us": dict,
                "phase_us": dict, "residuals": dict},
    "metric": {"bench": str, "data": dict},
}

VALID_KINDS = {"range", "knn", "complex"}


def fail(path, lineno, message):
    print(f"{path}:{lineno}: {message}", file=sys.stderr)
    return 1


def check_record(path, lineno, rec):
    errors = 0
    record = rec.get("record")
    if record not in REQUIRED_BY_RECORD:
        return fail(path, lineno, f"unknown record type {record!r}")
    for key, expected in REQUIRED_BY_RECORD[record].items():
        if key not in rec:
            errors += fail(path, lineno, f"{record} record missing {key!r}")
        elif not isinstance(rec[key], expected):
            errors += fail(
                path, lineno,
                f"{record}.{key} has type {type(rec[key]).__name__}, "
                f"expected {expected}")
    if record == "query":
        if rec.get("kind") not in VALID_KINDS:
            errors += fail(path, lineno,
                           f"query.kind {rec.get('kind')!r} not in "
                           f"{sorted(VALID_KINDS)}")
        for model, pred in rec.get("pred", {}).items():
            if not isinstance(pred, dict):
                errors += fail(path, lineno,
                               f"pred[{model!r}] is not an object")
        if isinstance(rec.get("level_nodes"), list):
            if not all(isinstance(v, (int, float))
                       for v in rec["level_nodes"]):
                errors += fail(path, lineno,
                               "query.level_nodes has non-numeric entries")
    if record in ("query", "summary") and isinstance(rec.get("phase_us"),
                                                     dict):
        for phase in ("plan", "traverse", "distance_eval", "page_read",
                      "decode", "collect", "prefetch"):
            if not isinstance(rec["phase_us"].get(phase), (int, float)):
                errors += fail(path, lineno,
                               f"{record}.phase_us missing {phase!r}")
    if record == "summary" and isinstance(rec.get("latency_us"), dict):
        # Tail latency is part of the contract: QPS benches must expose
        # the percentiles, not just a throughput-derived mean.
        for quantile in ("mean", "p50", "p95", "p99"):
            if not isinstance(rec["latency_us"].get(quantile), (int, float)):
                errors += fail(path, lineno,
                               f"summary.latency_us missing {quantile!r}")
    if record == "summary":
        for stream, stats in rec.get("residuals", {}).items():
            if not isinstance(stats, dict):
                errors += fail(path, lineno,
                               f"residuals[{stream!r}] is not an object")
                continue
            for key in ("count", "mean_rel_err", "p50_rel_err",
                        "p95_rel_err"):
                if key not in stats:
                    errors += fail(path, lineno,
                                   f"residuals[{stream!r}] missing {key!r}")
    return errors


def check_file(path):
    errors = 0
    records = {"meta": 0, "query": 0, "summary": 0, "metric": 0}
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                errors += fail(path, lineno, f"invalid JSON: {exc}")
                continue
            if not isinstance(rec, dict):
                errors += fail(path, lineno, "line is not a JSON object")
                continue
            errors += check_record(path, lineno, rec)
            if rec.get("record") in records:
                records[rec["record"]] += 1
    if records["meta"] != 1:
        errors += fail(path, 0, f"expected exactly 1 meta record, "
                       f"found {records['meta']}")
    if records["query"] > 0 and records["summary"] == 0:
        errors += fail(path, 0, "query records present but no summary")
    total = sum(records.values())
    print(f"{path}: {total} records "
          f"(meta={records['meta']} query={records['query']} "
          f"summary={records['summary']} metric={records['metric']}), "
          f"{errors} error(s)")
    return errors


def run_and_collect(binary, outdir, extra_env):
    os.makedirs(outdir, exist_ok=True)
    for stale in glob.glob(os.path.join(outdir, "BENCH_*.json")):
        os.remove(stale)
    env = dict(os.environ)
    env["MCM_OBS"] = "1"
    env["MCM_OBS_DIR"] = outdir
    for item in extra_env:
        key, _, value = item.partition("=")
        env[key] = value
    proc = subprocess.run([binary], env=env, stdout=subprocess.DEVNULL)
    if proc.returncode != 0:
        print(f"{binary}: exited with {proc.returncode}", file=sys.stderr)
        return None
    artifacts = sorted(glob.glob(os.path.join(outdir, "BENCH_*.json")))
    if not artifacts:
        print(f"{binary}: wrote no BENCH_*.json into {outdir}",
              file=sys.stderr)
        return None
    return artifacts


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*", help="artifacts to validate")
    parser.add_argument("--run", help="bench binary to execute first")
    parser.add_argument("--outdir", default=".",
                        help="artifact directory for --run")
    parser.add_argument("--env", action="append", default=[],
                        metavar="K=V", help="extra env for --run")
    args = parser.parse_args()

    files = list(args.files)
    if args.run:
        artifacts = run_and_collect(args.run, args.outdir, args.env)
        if artifacts is None:
            return 1
        files.extend(artifacts)
    if not files:
        parser.error("nothing to validate: pass FILEs or --run")

    errors = 0
    for path in files:
        errors += check_file(path)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
