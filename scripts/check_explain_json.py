#!/usr/bin/env python3
"""Validate mcm_explain --json output against the EXPLAIN schema.

Modes:

  check_explain_json.py FILE [FILE...]
      Validate already-captured JSON documents.

  check_explain_json.py --run BINARY --workdir DIR
      Build the demo index with `BINARY --make-demo`, run one range and one
      k-NN EXPLAIN with --json, and validate both documents. This is what
      the `bench_json_schema_explain` CTest runs.

Schema (one JSON object; see src/mcm/obs/explain.cc RenderExplainJson):
  kind             "range" (with radius) or "knn" (with k)
  index            num_objects, height, num_nodes, node_size_bytes, d_plus
  plan             access_path in {index-scan, sequential-scan},
                   index_ms, sequential_ms
  predictions      array of 2 or 3 models (nmcm, lmcm, then optionally
                   nmcm.witness when the index reports an installed
                   witness cascade), each with nodes, distances,
                   level_nodes[], level_distances[]
  actual           nodes, distances, pruned, witness_avoided, buffer_hits,
                   buffer_misses, results, latency_us, levels[] (per-level
                   tallies incl. witness_avoided), prunes (object),
                   trace_dropped
  phase_us         plan, traverse, distance_eval, page_read, decode,
                   collect (all numbers)
"""

import argparse
import json
import os
import subprocess
import sys

NUM = (int, float)

PHASES = ("plan", "traverse", "distance_eval", "page_read", "decode",
          "collect")

INDEX_KEYS = {"num_objects": NUM, "height": NUM, "num_nodes": NUM,
              "node_size_bytes": NUM, "d_plus": NUM}
PLAN_KEYS = {"access_path": str, "index_ms": NUM, "sequential_ms": NUM}
PREDICTION_KEYS = {"model": str, "nodes": NUM, "distances": NUM,
                   "level_nodes": list, "level_distances": list}
ACTUAL_KEYS = {"nodes": NUM, "distances": NUM, "pruned": NUM,
               "witness_avoided": NUM, "buffer_hits": NUM,
               "buffer_misses": NUM, "results": NUM, "latency_us": NUM,
               "levels": list, "prunes": dict, "trace_dropped": NUM}
LEVEL_KEYS = {"level": NUM, "nodes": NUM, "distances": NUM,
              "entries_scanned": NUM, "entries_pruned": NUM,
              "subtree_prunes": NUM, "witness_avoided": NUM}


def fail(where, message):
    print(f"{where}: {message}", file=sys.stderr)
    return 1


def check_keys(where, obj, required):
    errors = 0
    if not isinstance(obj, dict):
        return fail(where, "not a JSON object")
    for key, expected in required.items():
        if key not in obj:
            errors += fail(where, f"missing {key!r}")
        elif not isinstance(obj[key], expected):
            errors += fail(where, f"{key} has type "
                           f"{type(obj[key]).__name__}, expected {expected}")
    return errors


def check_document(where, doc):
    errors = check_keys(where, doc, {"kind": str, "index": dict,
                                     "plan": dict, "predictions": list,
                                     "actual": dict, "phase_us": dict})
    if errors:
        return errors

    kind = doc["kind"]
    if kind == "range":
        if not isinstance(doc.get("radius"), NUM):
            errors += fail(where, "range document missing numeric radius")
    elif kind == "knn":
        if not isinstance(doc.get("k"), NUM):
            errors += fail(where, "knn document missing numeric k")
    else:
        errors += fail(where, f"kind {kind!r} not in {{range, knn}}")

    errors += check_keys(f"{where}.index", doc["index"], INDEX_KEYS)
    errors += check_keys(f"{where}.plan", doc["plan"], PLAN_KEYS)
    if doc["plan"].get("access_path") not in ("index-scan",
                                              "sequential-scan"):
        errors += fail(f"{where}.plan", "unknown access_path "
                       f"{doc['plan'].get('access_path')!r}")

    predictions = doc["predictions"]
    if len(predictions) not in (2, 3):
        errors += fail(f"{where}.predictions",
                       f"expected 2 or 3 models, found {len(predictions)}")
    for i, pred in enumerate(predictions):
        errors += check_keys(f"{where}.predictions[{i}]", pred,
                             PREDICTION_KEYS)
    models = [p.get("model") for p in predictions if isinstance(p, dict)]
    if models not in (["nmcm", "lmcm"], ["nmcm", "lmcm", "nmcm.witness"]):
        errors += fail(f"{where}.predictions",
                       f"expected [nmcm, lmcm(, nmcm.witness)], "
                       f"found {models}")
    if models == ["nmcm", "lmcm", "nmcm.witness"]:
        # Witnesses avoid metric evaluations, never node reads: the
        # corrected model must predict no more distances than N-MCM.
        nmcm_d = predictions[0].get("distances")
        witness_d = predictions[2].get("distances")
        if (isinstance(nmcm_d, NUM) and isinstance(witness_d, NUM)
                and witness_d > nmcm_d + 1e-9):
            errors += fail(f"{where}.predictions",
                           f"nmcm.witness distances ({witness_d}) exceed "
                           f"nmcm distances ({nmcm_d})")

    errors += check_keys(f"{where}.actual", doc["actual"], ACTUAL_KEYS)
    for i, level in enumerate(doc["actual"].get("levels", [])):
        errors += check_keys(f"{where}.actual.levels[{i}]", level,
                             LEVEL_KEYS)
    if isinstance(doc["actual"].get("levels"), list):
        level_nodes = sum(lv.get("nodes", 0)
                          for lv in doc["actual"]["levels"]
                          if isinstance(lv, dict))
        if level_nodes != doc["actual"].get("nodes"):
            errors += fail(f"{where}.actual", "per-level node visits "
                           f"({level_nodes}) do not sum to the total "
                           f"({doc['actual'].get('nodes')})")

    for phase in PHASES:
        if not isinstance(doc["phase_us"].get(phase), NUM):
            errors += fail(f"{where}.phase_us", f"missing phase {phase!r}")
    return errors


def check_text(where, text):
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        return fail(where, f"invalid JSON: {exc}")
    errors = check_document(where, doc)
    status = "ok" if errors == 0 else f"{errors} error(s)"
    print(f"{where}: {doc.get('kind')} explain, {status}")
    return errors


def run_and_check(binary, workdir):
    os.makedirs(workdir, exist_ok=True)
    demo = os.path.join(workdir, "explain_demo.mtree")
    proc = subprocess.run([binary, "--make-demo", demo])
    if proc.returncode != 0:
        return fail(binary, f"--make-demo exited {proc.returncode}")

    errors = 0
    for label, query_args in (("range", ["--range", "0.4"]),
                              ("knn", ["--knn", "5"])):
        cmd = [binary, *query_args, "--json", demo]
        proc = subprocess.run(cmd, stdout=subprocess.PIPE, text=True)
        if proc.returncode != 0:
            errors += fail(" ".join(cmd), f"exited {proc.returncode}")
            continue
        errors += check_text(f"{binary} ({label})", proc.stdout)
    return errors


def main():
    parser = argparse.ArgumentParser(
        description="validate mcm_explain --json output")
    parser.add_argument("files", nargs="*", help="captured JSON documents")
    parser.add_argument("--run", help="mcm_explain binary to drive")
    parser.add_argument("--workdir", help="scratch directory for --run")
    args = parser.parse_args()

    if args.run:
        if not args.workdir:
            parser.error("--run requires --workdir")
        return 1 if run_and_check(args.run, args.workdir) else 0
    if not args.files:
        parser.error("expected JSON files or --run mode")
    errors = 0
    for path in args.files:
        with open(path, encoding="utf-8") as handle:
            errors += check_text(path, handle.read())
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
