#!/usr/bin/env python3
"""Index-header isolation check.

Every index (mtree, vptree, gnat, baseline) must implement the engine's
common interface without reaching into another index's headers: shared
types live in src/mcm/engine/, and an index header including another
index's header is a layering regression (historically vptree.h and gnat.h
included mtree.h just for SearchResult). This check fails the build when
any file under one index directory includes a header from another.

Two neighboring layers are scanned too:

  * src/mcm/engine/ sits *below* the indexes (they include it), so it may
    not include any index header — that would be a dependency cycle;
  * src/mcm/check/ sits *above* the indexes (it validates their
    structures), so it may include any of them, but nothing may include
    check/ from inside an index or the engine.

Usage: check_index_headers.py [--root SRC_DIR]
"""

import argparse
import pathlib
import re
import sys

INDEX_DIRS = ["mtree", "vptree", "gnat", "baseline"]
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"mcm/([^/"]+)/')


def scan_includes(path):
    """Yields (lineno, line, included_top_dir) for mcm/ includes."""
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        match = INCLUDE_RE.match(line)
        if match:
            yield lineno, line, match.group(1)


def iter_sources(directory):
    for path in sorted(directory.rglob("*")):
        if path.suffix in {".h", ".cc"}:
            yield path


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        default=pathlib.Path(__file__).resolve().parent.parent / "src" / "mcm",
        type=pathlib.Path,
        help="Path to src/mcm (default: relative to this script)",
    )
    args = parser.parse_args()

    violations = []
    checked = 0

    # Rule 1: no index reaches into another index.
    for index_dir in INDEX_DIRS:
        directory = args.root / index_dir
        if not directory.is_dir():
            print(f"error: missing index directory {directory}",
                  file=sys.stderr)
            return 2
        for path in iter_sources(directory):
            checked += 1
            for lineno, line, target in scan_includes(path):
                if target in INDEX_DIRS and target != index_dir:
                    violations.append(
                        f"{path}:{lineno}: {index_dir}/ includes "
                        f"mcm/{target}/ ({line.strip()})")
                if target == "check":
                    violations.append(
                        f"{path}:{lineno}: {index_dir}/ includes mcm/check/ "
                        f"— checkers sit above the indexes ({line.strip()})")

    # Rule 2: the engine sits below every index — including one would be a
    # dependency cycle (the indexes include engine/ headers).
    engine_dir = args.root / "engine"
    if not engine_dir.is_dir():
        print(f"error: missing directory {engine_dir}", file=sys.stderr)
        return 2
    for path in iter_sources(engine_dir):
        checked += 1
        for lineno, line, target in scan_includes(path):
            if target in INDEX_DIRS or target == "check":
                violations.append(
                    f"{path}:{lineno}: engine/ includes mcm/{target}/ "
                    f"— the engine sits below the indexes ({line.strip()})")

    # Rule 3: check/ may include any index (it validates their internals),
    # so only confirm the directory exists and scan it for completeness.
    check_dir = args.root / "check"
    if not check_dir.is_dir():
        print(f"error: missing directory {check_dir}", file=sys.stderr)
        return 2
    checked += sum(1 for _ in iter_sources(check_dir))

    if violations:
        print("Index header isolation violated:", file=sys.stderr)
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        print("Shared query types belong in src/mcm/engine/.",
              file=sys.stderr)
        return 1
    print(f"OK: {checked} files across {len(INDEX_DIRS)} index dirs, "
          "engine/ and check/; no layering violations.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
