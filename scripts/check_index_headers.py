#!/usr/bin/env python3
"""Index-header isolation check.

Every index (mtree, vptree, gnat, baseline) must implement the engine's
common interface without reaching into another index's headers: shared
types live in src/mcm/engine/, and an index header including another
index's header is a layering regression (historically vptree.h and gnat.h
included mtree.h just for SearchResult). This check fails the build when
any file under one index directory includes a header from another.

Usage: check_index_headers.py [--root SRC_DIR]
"""

import argparse
import pathlib
import re
import sys

INDEX_DIRS = ["mtree", "vptree", "gnat", "baseline"]
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"mcm/([^/"]+)/')


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        default=pathlib.Path(__file__).resolve().parent.parent / "src" / "mcm",
        type=pathlib.Path,
        help="Path to src/mcm (default: relative to this script)",
    )
    args = parser.parse_args()

    violations = []
    checked = 0
    for index_dir in INDEX_DIRS:
        directory = args.root / index_dir
        if not directory.is_dir():
            print(f"error: missing index directory {directory}",
                  file=sys.stderr)
            return 2
        for path in sorted(directory.rglob("*")):
            if path.suffix not in {".h", ".cc"}:
                continue
            checked += 1
            for lineno, line in enumerate(
                    path.read_text(encoding="utf-8").splitlines(), start=1):
                match = INCLUDE_RE.match(line)
                if not match:
                    continue
                target = match.group(1)
                if target in INDEX_DIRS and target != index_dir:
                    violations.append(
                        f"{path}:{lineno}: {index_dir}/ includes "
                        f"mcm/{target}/ ({line.strip()})")

    if violations:
        print("Index header isolation violated:", file=sys.stderr)
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        print("Shared query types belong in src/mcm/engine/.",
              file=sys.stderr)
        return 1
    print(f"OK: {checked} files across {len(INDEX_DIRS)} index dirs; "
          "no cross-index includes.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
