#!/usr/bin/env python3
"""mcm_lint.py — project-specific structural C++ linter for the mcm library.

The cost model's validity rests on invariants the compiler cannot see:
every distance evaluation must flow through the injected metric (wrapped in
CountedMetric by measurement code), every node access through the
BufferPool, and the library must stay deterministic and silent. This linter
enforces those conventions with regex rules that are comment-, string- and
structure-aware (brace/namespace tracking, include-block parsing), each with
a per-rule path allowlist.

Rules (each registered as its own ctest, `lint_<rule>`):

  no-raw-metric-call        Index/engine/cost code may not name or invoke a
                            concrete metric functor (L2Distance,
                            EditDistanceMetric, ...); distances flow through
                            the injected Metric type, which measurement code
                            wraps in CountedMetric.
  no-pagefile-bypass        Only the BufferPool (and tests) may call
                            PageFile::ReadPage/WritePage; everything else
                            would corrupt the I/O cost accounting.
  no-unguarded-mutable-static
                            No mutable static state in library code unless
                            it is const, atomic, or a synchronization
                            primitive (thread safety + determinism).
  no-rand-or-time           No ambient entropy or wall-clock reads in
                            library code; RNG only via mcm/common/random.h,
                            clock reads only via common/clock.h (the single
                            seam Stopwatch and the phase timers share).
  no-iostream-in-library    Library code reports through obs/ or return
                            values, never by writing to std::cout/cerr.
  header-guard              Headers carry an include guard named after
                            their path (MCM_<PATH>_H_) or #pragma once.
  include-order             Include blocks are homogeneous (<...> and
                            "..." separated by blank lines) and
                            alphabetized within each block.
  no-using-namespace-in-header
                            No `using namespace` in headers.
  no-adhoc-vector-math      Coordinate-wise vector difference loops
                            (`a[i] - b[i]`) are only allowed inside
                            src/mcm/metric/ — everywhere else they bypass
                            the dispatched SIMD kernels and fork the
                            accumulation order.
  no-direct-prune-distance  Index traversal code (mtree/vptree/gnat/
                            baseline) may not call BoundedDistance or a
                            metric's DistanceWithin directly; prune-site
                            evaluations go through engine/witness.h
                            (GuardedDistanceWithin, GuardedExactDistance,
                            CountedDistanceWithin) so the witness cascade
                            sees every computed distance and the avoided-
                            evaluation accounting stays exact.

A line containing `mcm-lint: allow(<rule>)` in a comment suppresses that
rule for that line (use sparingly; prefer fixing the code).

Usage:
  mcm_lint.py [--root REPO] [--rule RULE ...] [--list-rules] [--self-test]

Exit status: 0 clean, 1 violations found, 2 usage or I/O error.
"""

import argparse
import fnmatch
import pathlib
import re
import sys
import tempfile

# --------------------------------------------------------------------------
# Source model: comment/string stripping so rules match only real code.
# --------------------------------------------------------------------------


def strip_comments_and_strings(text):
    """Blanks comment bodies and string/char literal contents.

    Newlines and all structural characters outside comments/literals are
    preserved, so line numbers and brace tracking stay exact.
    """
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(c)
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
            i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            elif c == "\n":  # Unterminated literal; recover.
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
    return "".join(out)


class SourceFile:
    """One scanned file: raw lines plus comment/string-blanked code lines."""

    def __init__(self, path, rel):
        self.path = path
        self.rel = rel  # POSIX-style path relative to the repo root.
        text = path.read_text(encoding="utf-8", errors="replace")
        self.raw_lines = text.splitlines()
        self.code_lines = strip_comments_and_strings(text).splitlines()
        # Include directives carry their target inside a string literal;
        # restore those lines (sans trailing comment) so include rules see
        # the real path. Commented-out includes stay blanked.
        include_re = re.compile(r"^\s*#\s*include\b")
        for i, code in enumerate(self.code_lines):
            if include_re.match(code):
                raw = self.raw_lines[i]
                raw = raw.split("//", 1)[0]
                self.code_lines[i] = raw

    def suppressed(self, lineno, rule):
        raw = self.raw_lines[lineno - 1]
        return f"mcm-lint: allow({rule})" in raw


class Violation:
    def __init__(self, rel, lineno, rule, message):
        self.rel = rel
        self.lineno = lineno
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.rel}:{self.lineno}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Rule framework.
# --------------------------------------------------------------------------


class Rule:
    """name/description plus scope globs, allowlist globs, and a checker."""

    def __init__(self, name, description, scope, allow, check):
        self.name = name
        self.description = description
        self.scope = scope  # fnmatch globs relative to the repo root.
        self.allow = allow  # fnmatch globs exempt from this rule.
        self.check = check  # fn(SourceFile) -> [(lineno, message)].

    def applies_to(self, rel):
        if not any(fnmatch.fnmatch(rel, g) for g in self.scope):
            return False
        return not any(fnmatch.fnmatch(rel, g) for g in self.allow)

    def run(self, sf):
        results = []
        for lineno, message in self.check(sf):
            if not sf.suppressed(lineno, self.name):
                results.append(Violation(sf.rel, lineno, self.name, message))
        return results


def _grep(sf, regex, message):
    """Matches `regex` against code (comment/string-stripped) lines."""
    out = []
    for lineno, line in enumerate(sf.code_lines, start=1):
        if regex.search(line):
            out.append((lineno, message(line) if callable(message)
                        else message))
    return out


# --------------------------------------------------------------------------
# Rule: no-raw-metric-call
# --------------------------------------------------------------------------

# Concrete metric functors and free distance functions defined in
# src/mcm/metric/. Index/engine/cost code must stay metric-generic.
METRIC_HEADER_RE = re.compile(
    r'#\s*include\s+"mcm/metric/(vector_metrics|string_metrics|'
    r'set_metrics)\.h"')
METRIC_FUNCTOR_CALL_RE = re.compile(
    r"\b(L1Distance|L2Distance|LInfDistance|LpDistance|EditDistanceMetric|"
    r"HausdorffMetric|JaccardMetric)\s*(\{\s*\}|\(\s*\))\s*\(")
METRIC_FREE_CALL_RE = re.compile(
    r"\b(EditDistance|BoundedEditDistance|HausdorffDistance|"
    r"JaccardDistance)\s*\(")


def check_raw_metric_call(sf):
    out = []
    if sf.rel.startswith("src/mcm/"):
        out += _grep(
            sf, METRIC_HEADER_RE,
            "concrete metric header included outside metric/dataset layers; "
            "take the metric as a template parameter instead")
    out += _grep(
        sf, METRIC_FUNCTOR_CALL_RE,
        "direct metric functor invocation; evaluate through the injected "
        "Metric (wrapped in CountedMetric by measurement code)")
    out += _grep(
        sf, METRIC_FREE_CALL_RE,
        "direct distance-function call; evaluate through the injected "
        "Metric (wrapped in CountedMetric by measurement code)")
    return out


# --------------------------------------------------------------------------
# Rule: no-pagefile-bypass
# --------------------------------------------------------------------------

PAGEFILE_RE = re.compile(r"\b(ReadPage|WritePage|ReadRun)\s*\(")


def check_pagefile_bypass(sf):
    return _grep(
        sf, PAGEFILE_RE,
        "PageFile::ReadPage/WritePage/ReadRun bypasses the BufferPool; fetch "
        "pages through a BufferPool (or a PagedNodeStore) so I/O costs stay "
        "exact")


# --------------------------------------------------------------------------
# Rule: no-unguarded-mutable-static
# --------------------------------------------------------------------------

STATIC_DECL_RE = re.compile(r"^\s*(inline\s+)?(thread_local\s+)?static\s")
# Tokens that make a static acceptable: immutability, atomicity, or being a
# synchronization primitive itself.
STATIC_OK_RE = re.compile(
    r"\bconst\b|\bconstexpr\b|std::atomic|std::mutex|std::shared_mutex|"
    r"std::once_flag|std::condition_variable|"
    r"\bmcm::Mutex\b|\bMutex\b|\bCondVar\b")  # common/mutex.h primitives


def check_mutable_static(sf):
    out = []
    for lineno, line in enumerate(sf.code_lines, start=1):
        if not STATIC_DECL_RE.match(line):
            continue
        decl = line.split("=", 1)[0]
        if STATIC_OK_RE.search(decl):
            continue
        # Function declarations/definitions: '(' in the declarator before
        # any initializer.
        if "(" in decl:
            continue
        # `static_assert`, `static_cast` in odd formatting.
        if re.match(r"^\s*static_(assert|cast)", line):
            continue
        out.append((lineno,
                    "mutable static state; make it const/atomic, guard it "
                    "with a named mutex, or move it into an object"))
    return out


# --------------------------------------------------------------------------
# Rule: no-rand-or-time
# --------------------------------------------------------------------------

RAND_TIME_RE = re.compile(
    r"\bstd::rand\b|\bsrand\s*\(|\brandom_device\b|\bstd::time\s*\(|"
    r"[^:\w]time\s*\(\s*(NULL|nullptr|0)\s*\)|::now\s*\(|"
    r"\bchrono::(steady_clock|system_clock|high_resolution_clock)\b|"
    r"\bgettimeofday\s*\(|\bclock_gettime\s*\(")


def check_rand_or_time(sf):
    return _grep(
        sf, RAND_TIME_RE,
        "ambient entropy/wall-clock read; seed RNGs via mcm/common/random.h "
        "and read the clock via common/clock.h's MonotonicNanos only")


# --------------------------------------------------------------------------
# Rule: no-iostream-in-library
# --------------------------------------------------------------------------

IOSTREAM_RE = re.compile(
    r'#\s*include\s*<iostream>|\bstd::(cout|cerr|clog)\b')


def check_iostream(sf):
    return _grep(
        sf, IOSTREAM_RE,
        "library code must not write to std::cout/std::cerr; report through "
        "obs/ observers or return values")


# --------------------------------------------------------------------------
# Rule: header-guard
# --------------------------------------------------------------------------


def expected_guard(rel):
    # src/mcm/mtree/node.h -> MCM_MTREE_NODE_H_
    assert rel.startswith("src/mcm/")
    stem = rel[len("src/mcm/"):]
    return "MCM_" + re.sub(r"[/.]", "_", stem).upper() + "_"


def check_header_guard(sf):
    guard = expected_guard(sf.rel)
    ifndef_re = re.compile(r"^\s*#\s*ifndef\s+(\w+)")
    define_re = re.compile(r"^\s*#\s*define\s+(\w+)")
    pragma_re = re.compile(r"^\s*#\s*pragma\s+once\b")
    ifndef_name = None
    define_name = None
    for line in sf.code_lines:
        if pragma_re.match(line):
            return []
        if ifndef_name is None:
            m = ifndef_re.match(line)
            if m:
                ifndef_name = m.group(1)
                continue
        elif define_name is None:
            m = define_re.match(line)
            if m:
                define_name = m.group(1)
            break
    if ifndef_name is None or define_name is None:
        return [(1, f"missing include guard (expected {guard} "
                 "or #pragma once)")]
    if ifndef_name != guard or define_name != guard:
        return [(1, f"include guard {ifndef_name} does not match path "
                 f"(expected {guard})")]
    return []


# --------------------------------------------------------------------------
# Rule: include-order
# --------------------------------------------------------------------------

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(<[^>]+>|"[^"]+")')


def check_include_order(sf):
    out = []
    # Collect contiguous include runs (consecutive include lines).
    runs = []
    current = []
    for lineno, line in enumerate(sf.code_lines, start=1):
        m = INCLUDE_RE.match(line)
        if m:
            target = m.group(1)
            kind = "sys" if target.startswith("<") else "proj"
            current.append((lineno, kind, target))
        elif current:
            runs.append(current)
            current = []
    if current:
        runs.append(current)

    first = True
    for run in runs:
        start = 0
        if first and sf.rel.endswith(".cc"):
            # The file's own header comes first, in its own block.
            own = "/" + pathlib.PurePosixPath(sf.rel).stem + ".h"
            if run[0][2].strip('"').endswith(own):
                start = 1
        first = False
        block = run[start:]
        if not block:
            continue
        kinds = {kind for _, kind, _ in block}
        if len(kinds) > 1:
            out.append((block[0][0],
                        "mixed <...> and \"...\" includes in one block; "
                        "separate them with a blank line"))
            continue
        for (ln_a, _, a), (ln_b, _, b) in zip(block, block[1:]):
            if a > b:
                out.append((ln_b, f"includes not alphabetized: {b} "
                            f"follows {a}"))
    return out


# --------------------------------------------------------------------------
# Rule: no-using-namespace-in-header
# --------------------------------------------------------------------------

USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\s")


def check_using_namespace(sf):
    return _grep(sf, USING_NAMESPACE_RE,
                 "`using namespace` in a header pollutes every includer; "
                 "qualify names instead")


# --------------------------------------------------------------------------
# Rule: no-adhoc-vector-math
# --------------------------------------------------------------------------

# Per-coordinate subtraction of two subscripted operands with the same
# index (`a[i] - b[i]`): the signature of a hand-rolled distance loop over
# FloatVector coordinates. Those loops belong in src/mcm/metric/ (where the
# SIMD kernels and their bounded variants live); anywhere else they silently
# fork the accumulation order and lose the kernel dispatch.
ADHOC_VECTOR_MATH_RE = re.compile(r"(\w+)\[(\w+)\]\s*-\s*(\w+)\[\2\]")


def check_adhoc_vector_math(sf):
    return _grep(
        sf, ADHOC_VECTOR_MATH_RE,
        "hand-rolled per-coordinate vector math; call the dispatched "
        "kernels in mcm/metric/kernels.h (or a metric functor) instead")


# --------------------------------------------------------------------------
# Rule: no-direct-prune-distance
# --------------------------------------------------------------------------

# A bounded evaluation at a prune site that does not flow through
# engine/witness.h never records a witness and never consults the cascade,
# silently forking the distance accounting. The lookbehind keeps the
# sanctioned wrappers (GuardedDistanceWithin, CountedDistanceWithin) from
# matching on their common suffix.
PRUNE_DISTANCE_RE = re.compile(r"(?<!\w)(DistanceWithin|BoundedDistance)\s*\(")


def check_direct_prune_distance(sf):
    return _grep(
        sf, PRUNE_DISTANCE_RE,
        "direct bounded-distance call at a prune site; route it through "
        "engine/witness.h (GuardedDistanceWithin, GuardedExactDistance or "
        "CountedDistanceWithin) so witnesses are recorded and consulted")


# --------------------------------------------------------------------------
# Rule registry.
# --------------------------------------------------------------------------

LIB = ["src/mcm/*"]
LIB_HEADERS = ["src/mcm/*.h"]
INDEX_ENGINE_COST = [
    "src/mcm/mtree/*", "src/mcm/vptree/*", "src/mcm/gnat/*",
    "src/mcm/baseline/*", "src/mcm/engine/*", "src/mcm/cost/*",
]

RULES = [
    Rule(
        "no-raw-metric-call",
        "index/engine/cost code may not invoke a concrete metric functor",
        scope=INDEX_ENGINE_COST + ["bench/*", "examples/*", "tools/*"],
        # micro_benchmarks measures the metric primitives themselves — that
        # is the one place a raw call is the point of the code.
        allow=["bench/micro_benchmarks.cc"],
        check=check_raw_metric_call,
    ),
    Rule(
        "no-pagefile-bypass",
        "only BufferPool (and tests) may call PageFile::ReadPage/WritePage",
        scope=LIB + ["bench/*", "examples/*", "tools/*", "tests/*"],
        allow=[
            "src/mcm/storage/page_file.h", "src/mcm/storage/page_file.cc",
            "src/mcm/storage/buffer_pool.h", "src/mcm/storage/buffer_pool.cc",
            "tests/*",
        ],
        check=check_pagefile_bypass,
    ),
    Rule(
        "no-unguarded-mutable-static",
        "no mutable static state in library code",
        scope=LIB,
        allow=[],
        check=check_mutable_static,
    ),
    Rule(
        "no-rand-or-time",
        "no ambient entropy or wall-clock reads in library code",
        scope=LIB,
        allow=["src/mcm/common/random.h", "src/mcm/common/clock.h"],
        check=check_rand_or_time,
    ),
    Rule(
        "no-iostream-in-library",
        "library code reports via obs/ or return values, not cout/cerr",
        scope=LIB,
        # obs/ is the designated reporting layer; bench_util drives
        # command-line harnesses.
        allow=["src/mcm/obs/*", "src/mcm/bench_util/*"],
        check=check_iostream,
    ),
    Rule(
        "header-guard",
        "headers carry a path-derived include guard or #pragma once",
        scope=LIB_HEADERS,
        allow=[],
        check=check_header_guard,
    ),
    Rule(
        "include-order",
        "include blocks are homogeneous and alphabetized",
        scope=["src/mcm/*.h", "src/mcm/*.cc"],
        allow=[],
        check=check_include_order,
    ),
    Rule(
        "no-using-namespace-in-header",
        "no `using namespace` in headers",
        scope=LIB_HEADERS,
        allow=[],
        check=check_using_namespace,
    ),
    Rule(
        "no-direct-prune-distance",
        "prune-site distance evaluations go through engine/witness.h",
        scope=[
            "src/mcm/mtree/*", "src/mcm/vptree/*", "src/mcm/gnat/*",
            "src/mcm/baseline/*",
        ],
        allow=[],
        check=check_direct_prune_distance,
    ),
    Rule(
        "no-adhoc-vector-math",
        "coordinate-wise vector loops only inside src/mcm/metric/",
        scope=LIB + ["bench/*", "examples/*", "tools/*"],
        allow=[
            # The kernels and the metric functors ARE the designated home.
            "src/mcm/metric/*",
            # RddGrid differences histogram bin coordinates, not objects.
            "src/mcm/distribution/homogeneity.cc",
            # Scalar reference loops the kernel speedup is measured against.
            "bench/micro_benchmarks.cc",
        ],
        check=check_adhoc_vector_math,
    ),
]

RULES_BY_NAME = {rule.name: rule for rule in RULES}

SCAN_DIRS = ["src", "bench", "examples", "tools", "tests"]
SCAN_EXTS = {".h", ".cc", ".cpp"}


def collect_files(root):
    files = []
    for top in SCAN_DIRS:
        directory = root / top
        if not directory.is_dir():
            continue
        for path in sorted(directory.rglob("*")):
            if path.suffix in SCAN_EXTS and path.is_file():
                files.append(path)
    return files


def run_rules(root, rules):
    violations = []
    scanned = 0
    for path in collect_files(root):
        rel = path.relative_to(root).as_posix()
        applicable = [r for r in rules if r.applies_to(rel)]
        if not applicable:
            continue
        scanned += 1
        sf = SourceFile(path, rel)
        for rule in applicable:
            violations.extend(rule.run(sf))
    return violations, scanned


# --------------------------------------------------------------------------
# Self test: every rule must flag a seeded violation and pass a clean file.
# --------------------------------------------------------------------------

GOOD_HEADER = """\
#ifndef MCM_MTREE_SAMPLE_H_
#define MCM_MTREE_SAMPLE_H_

#include <cstdint>
#include <vector>

#include "mcm/common/query_stats.h"
#include "mcm/common/random.h"

namespace mcm {
inline int Answer() { return 42; }
}  // namespace mcm

#endif  // MCM_MTREE_SAMPLE_H_
"""

SELFTEST_CASES = {
    "no-raw-metric-call": [
        ("src/mcm/mtree/sample.h",
         '#include "mcm/metric/vector_metrics.h"\n'),
        ("src/mcm/cost/sample.cc",
         "double d = L2Distance{}(a, b);\n"),
        ("bench/sample.cc",
         "double d = EditDistance(a, b);\n"),
    ],
    "no-pagefile-bypass": [
        ("src/mcm/mtree/sample.cc",
         "file->ReadPage(id, buf.data());\n"),
        ("examples/sample.cpp",
         "file.WritePage(id, buf.data());\n"),
        ("src/mcm/engine/sample.cc",
         "file->ReadRun(first, count, buf.data());\n"),
    ],
    "no-unguarded-mutable-static": [
        ("src/mcm/cost/sample.cc",
         "static int counter = 0;\n"),
        ("src/mcm/cost/sample2.cc",
         "static std::vector<double> cache;\n"),
    ],
    "no-rand-or-time": [
        ("src/mcm/mtree/sample.cc",
         "int x = std::rand();\n"),
        ("src/mcm/cost/sample.cc",
         "auto t = std::chrono::steady_clock::now();\n"),
        ("src/mcm/dataset/sample.cc",
         "std::random_device rd;\n"),
        # Naming a wall clock is enough — aliasing it would dodge ::now(.
        ("src/mcm/engine/sample.cc",
         "using wall = std::chrono::system_clock;\n"),
        ("src/mcm/storage/sample.cc",
         "auto t0 = std::chrono::high_resolution_clock::now();\n"),
    ],
    "no-iostream-in-library": [
        ("src/mcm/cost/sample.cc",
         "#include <iostream>\nvoid F() { std::cout << 1; }\n"),
    ],
    "header-guard": [
        ("src/mcm/mtree/sample.h",
         "#ifndef WRONG_GUARD_H\n#define WRONG_GUARD_H\n#endif\n"),
        ("src/mcm/cost/sample.h",
         "namespace mcm {}\n"),
    ],
    "include-order": [
        ("src/mcm/mtree/sample.h",
         '#include <vector>\n#include <cstdint>\n'),
        ("src/mcm/cost/sample.h",
         '#include <vector>\n#include "mcm/common/random.h"\n'),
    ],
    "no-using-namespace-in-header": [
        ("src/mcm/mtree/sample.h",
         "using namespace std;\n"),
    ],
    "no-direct-prune-distance": [
        ("src/mcm/mtree/sample.cc",
         "const double d = metric_.DistanceWithin(a, b, r);\n"),
        ("src/mcm/vptree/sample.cc",
         "double d = BoundedDistance(metric_, a, b, bound);\n"),
        ("src/mcm/gnat/sample.cc",
         "if (DistanceWithin(q, o, limit) <= limit) {}\n"),
    ],
    "no-adhoc-vector-math": [
        ("src/mcm/cost/sample.cc",
         "for (size_t i = 0; i < n; ++i) s += a[i] - b[i];\n"),
        ("bench/sample.cc",
         "double d = q[j] - p[j];\n"),
    ],
}


def self_test():
    failures = []
    for rule in RULES:
        cases = SELFTEST_CASES.get(rule.name, [])
        if not cases:
            failures.append(f"{rule.name}: no self-test cases")
            continue
        for rel, content in cases:
            with tempfile.TemporaryDirectory() as tmp:
                root = pathlib.Path(tmp)
                target = root / rel
                target.parent.mkdir(parents=True, exist_ok=True)
                target.write_text(content, encoding="utf-8")
                violations, _ = run_rules(root, [rule])
                if not violations:
                    failures.append(
                        f"{rule.name}: seeded violation in {rel} "
                        "was not detected")
                # Suppression comment must silence the finding.
                suppressed = "\n".join(
                    line + f"  // mcm-lint: allow({rule.name})"
                    for line in content.splitlines()) + "\n"
                target.write_text(suppressed, encoding="utf-8")
                violations, _ = run_rules(root, [rule])
                if rule.name not in ("header-guard",) and violations:
                    failures.append(
                        f"{rule.name}: allow() comment did not suppress "
                        f"the finding in {rel}")
        # A clean, convention-following header must pass every rule.
        with tempfile.TemporaryDirectory() as tmp:
            root = pathlib.Path(tmp)
            target = root / "src/mcm/mtree/sample.h"
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(GOOD_HEADER, encoding="utf-8")
            violations, _ = run_rules(root, [rule])
            if violations:
                failures.append(
                    f"{rule.name}: false positive on clean header: "
                    f"{violations[0]}")
    if failures:
        print("mcm_lint self-test FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"mcm_lint self-test OK: {len(RULES)} rules, "
          f"{sum(len(v) for v in SELFTEST_CASES.values())} seeded "
          "violations all detected and suppressible.")
    return 0


# --------------------------------------------------------------------------
# CLI.
# --------------------------------------------------------------------------


def main():
    parser = argparse.ArgumentParser(
        description="Project-specific structural C++ linter.")
    parser.add_argument(
        "--root",
        default=pathlib.Path(__file__).resolve().parent.parent,
        type=pathlib.Path, help="Repository root (default: script's repo)")
    parser.add_argument(
        "--rule", action="append", default=None, metavar="RULE",
        help="Run only this rule (repeatable; default: all rules)")
    parser.add_argument(
        "--list-rules", action="store_true", help="List rules and exit")
    parser.add_argument(
        "--self-test", action="store_true",
        help="Verify every rule detects a seeded violation, then exit")
    args = parser.parse_args()

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.name}: {rule.description}")
        return 0
    if args.self_test:
        return self_test()

    if args.rule:
        try:
            rules = [RULES_BY_NAME[name] for name in args.rule]
        except KeyError as e:
            print(f"error: unknown rule {e.args[0]} "
                  f"(see --list-rules)", file=sys.stderr)
            return 2
    else:
        rules = RULES

    if not (args.root / "src" / "mcm").is_dir():
        print(f"error: {args.root} does not look like the repo root",
              file=sys.stderr)
        return 2

    violations, scanned = run_rules(args.root, rules)
    if violations:
        for violation in violations:
            print(violation)
        names = ", ".join(sorted({v.rule for v in violations}))
        print(f"mcm_lint: {len(violations)} violation(s) across "
              f"{scanned} files (rules: {names})", file=sys.stderr)
        return 1
    print(f"mcm_lint OK: {scanned} files clean under "
          f"{len(rules)} rule(s).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
