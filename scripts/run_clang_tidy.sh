#!/bin/sh
# clang-tidy gate (config: .clang-tidy — bugprone-*, performance-*,
# concurrency-* as errors). Every translation unit in the concurrency-
# bearing subsystems — src/mcm/storage, src/mcm/engine, src/mcm/obs — is
# checked, plus a representative slice of the cost models and checkers;
# WarningsAsErrors in .clang-tidy (notably concurrency-* and
# bugprone-unhandled-*) makes any finding a hard failure.
# Usage: scripts/run_clang_tidy.sh [build-dir]. The build dir must hold a
# compile_commands.json (the root CMakeLists exports one). Exits 77 (ctest
# SKIP) when clang-tidy is not installed.
set -eu

SOURCE_DIR=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR=${1:-"${SOURCE_DIR}/build"}

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "clang-tidy not installed; skipping." >&2
  exit 77
fi
if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  echo "no compile_commands.json in ${BUILD_DIR}; skipping." >&2
  exit 77
fi

# Gated subsystems: every .cc. (Headers are pulled in transitively and
# filtered by HeaderFilterRegex.)
GATED=$(find "${SOURCE_DIR}/src/mcm/storage" \
             "${SOURCE_DIR}/src/mcm/engine" \
             "${SOURCE_DIR}/src/mcm/obs" \
             -name '*.cc' | sort)

# shellcheck disable=SC2086  # GATED is a deliberate word list.
clang-tidy -p "${BUILD_DIR}" --quiet \
  ${GATED} \
  "${SOURCE_DIR}/src/mcm/cost/nmcm.cc" \
  "${SOURCE_DIR}/src/mcm/check/check.cc" \
  "${SOURCE_DIR}/src/mcm/check/check_histogram.cc"
echo "clang-tidy gate clean."
