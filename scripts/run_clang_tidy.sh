#!/bin/sh
# Runs clang-tidy (config: .clang-tidy — bugprone-*, performance-*,
# concurrency-*) over a representative set of library translation units.
# Usage: scripts/run_clang_tidy.sh [build-dir]. The build dir must hold a
# compile_commands.json (the root CMakeLists exports one). Exits 77 (ctest
# SKIP) when clang-tidy is not installed.
set -eu

SOURCE_DIR=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR=${1:-"${SOURCE_DIR}/build"}

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "clang-tidy not installed; skipping." >&2
  exit 77
fi
if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  echo "no compile_commands.json in ${BUILD_DIR}; skipping." >&2
  exit 77
fi

# A slice per subsystem keeps the smoke run fast while touching every
# layer: storage, engine, cost models, observability, checkers.
clang-tidy -p "${BUILD_DIR}" --quiet \
  "${SOURCE_DIR}/src/mcm/storage/buffer_pool.cc" \
  "${SOURCE_DIR}/src/mcm/engine/executor.cc" \
  "${SOURCE_DIR}/src/mcm/cost/nmcm.cc" \
  "${SOURCE_DIR}/src/mcm/obs/metrics.cc" \
  "${SOURCE_DIR}/src/mcm/check/check.cc" \
  "${SOURCE_DIR}/src/mcm/check/check_histogram.cc"
echo "clang-tidy smoke clean."
