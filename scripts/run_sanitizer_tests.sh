#!/bin/sh
# Builds a sanitizer-specific slice of the test suite in a nested build
# tree and runs it with halt_on_error=1. Usage:
#
#   scripts/run_sanitizer_tests.sh thread|address|undefined
#
# Registered as the ctest jobs `tsan_concurrency`, `asan_memory` and
# `ubsan_arith`; exits 77 (ctest SKIP) when the toolchain cannot link a
# binary under the requested sanitizer. Per-sanitizer target sets stay
# small on purpose: nested builds run serially on CI boxes, and each
# sanitizer earns its keep on a different slice (TSan on the concurrent
# paths, ASan on allocation-heavy tree maintenance and paging, UBSan on
# the arithmetic-dense cost models).
#
# MCM_SANITIZER_BUILD_DIR overrides the nested build directory; for
# thread, the historical MCM_TSAN_BUILD_DIR is honored too.
set -eu

SANITIZER=${1:-}
case "${SANITIZER}" in
  thread)
    TARGETS="engine_executor_test executor_shutdown_test buffer_pool_test bounded_metric_test node_cache_test telemetry_export_test witness_test witness_reuse_test bulk_stream_test readahead_test shard_router_test"
    ;;
  address)
    TARGETS="buffer_pool_test mtree_insert_test mtree_delete_test persist_test check_invariants_test bounded_metric_test node_cache_test phase_timer_test explain_test witness_test witness_reuse_test"
    ;;
  undefined)
    TARGETS="histogram_test nmcm_test lmcm_test vp_model_test check_invariants_test kernels_test bounded_metric_test node_cache_test phase_timer_test explain_test witness_test witness_reuse_test"
    ;;
  *)
    echo "usage: $0 thread|address|undefined" >&2
    exit 2
    ;;
esac

SOURCE_DIR=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
DEFAULT_BUILD_DIR="${SOURCE_DIR}/build-${SANITIZER}"
if [ "${SANITIZER}" = "thread" ]; then
  DEFAULT_BUILD_DIR=${MCM_TSAN_BUILD_DIR:-"${SOURCE_DIR}/build-tsan"}
fi
BUILD_DIR=${MCM_SANITIZER_BUILD_DIR:-"${DEFAULT_BUILD_DIR}"}

# Probe: can this toolchain link a binary under this sanitizer at all?
probe_dir=$(mktemp -d)
trap 'rm -rf "${probe_dir}"' EXIT
printf 'int main(){return 0;}\n' > "${probe_dir}/probe.cc"
if ! c++ "-fsanitize=${SANITIZER}" "${probe_dir}/probe.cc" \
    -o "${probe_dir}/probe" 2>/dev/null; then
  echo "-fsanitize=${SANITIZER} unsupported by this toolchain; skipping." >&2
  exit 77
fi

cmake -S "${SOURCE_DIR}" -B "${BUILD_DIR}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  "-DMCM_SANITIZE=${SANITIZER}" \
  -DMCM_BUILD_BENCHMARKS=OFF \
  -DMCM_BUILD_EXAMPLES=OFF \
  -DMCM_BUILD_TOOLS=OFF
# shellcheck disable=SC2086  # TARGETS is a deliberate word list.
cmake --build "${BUILD_DIR}" --target ${TARGETS} -j "${MCM_SANITIZER_JOBS:-2}"

# Fail on the first report, even ones the sanitizer would tolerate by
# default. UBSan additionally needs print_stacktrace for usable output.
for target in ${TARGETS}; do
  TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
  ASAN_OPTIONS="halt_on_error=1 detect_leaks=1 ${ASAN_OPTIONS:-}" \
  UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}" \
    "${BUILD_DIR}/tests/${target}"
done
echo "${SANITIZER} sanitizer suite clean."
