#!/usr/bin/env bash
# Compile-time lock checking: runs clang's -Wthread-safety analysis (as an
# error) over every library translation unit and header, then requires the
# seeded violations TU (tests/static/thread_safety_violations.cc) to FAIL
# the same analysis — proving the check actually fires, not just that the
# tree is quiet.
#
# Registered as the `thread_safety_analysis` ctest. Exits 77 (ctest SKIP)
# when no clang++ is installed: GCC does not implement -Wthread-safety.
# The `clang-tsa` CMake preset runs the identical analysis as a full build
# via -DMCM_THREAD_SAFETY=ON.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

CLANG=""
for candidate in clang++ clang++-20 clang++-19 clang++-18 clang++-17 \
                 clang++-16 clang++-15 clang++-14; do
  if command -v "$candidate" >/dev/null 2>&1; then
    CLANG="$candidate"
    break
  fi
done
if [ -z "$CLANG" ]; then
  echo "SKIP: no clang++ found; -Wthread-safety is a clang analysis" >&2
  exit 77
fi

FLAGS=(-std=c++20 -fsyntax-only -I "$ROOT/src"
       -Wthread-safety -Werror=thread-safety)

# 1. The whole library — headers analyzed as standalone c++ inputs, so
# annotation mistakes in header-only code (the index templates) are caught
# even where no .cc includes them under analysis.
fail=0
checked=0
while IFS= read -r file; do
  case "$file" in
    *.h)  extra=(-x c++) ;;
    *)    extra=() ;;
  esac
  if ! "$CLANG" "${FLAGS[@]}" "${extra[@]}" "$file"; then
    echo "FAIL: thread-safety violation in $file" >&2
    fail=1
  fi
  checked=$((checked + 1))
done < <(find "$ROOT/src/mcm" -name '*.cc' -o -name '*.h' | sort)

if [ "$fail" -ne 0 ]; then
  echo "FAIL: the library does not pass -Wthread-safety" >&2
  exit 1
fi
echo "OK: $checked library files clean under -Werror=thread-safety"

# 2. The seeded TU must be ordinary valid C++ (else the 'failure' below
# would prove nothing) ...
SEEDED="$ROOT/tests/static/thread_safety_violations.cc"
if ! "$CLANG" -std=c++20 -fsyntax-only -I "$ROOT/src" "$SEEDED"; then
  echo "FAIL: seeded TU does not even compile without the analysis" >&2
  exit 1
fi

# ... and must FAIL once the analysis is an error.
if "$CLANG" "${FLAGS[@]}" "$SEEDED" 2>/dev/null; then
  echo "FAIL: seeded violations in $SEEDED were NOT caught" >&2
  exit 1
fi
echo "OK: seeded violations TU rejected by -Werror=thread-safety"
