#!/bin/sh
# Builds the concurrency-sensitive tests under ThreadSanitizer (the `tsan`
# preset / MCM_SANITIZE=thread) in a nested build tree and runs them.
# Registered as the ctest `tsan_concurrency` job; exits 77 (ctest SKIP)
# when the toolchain cannot produce TSan binaries.
set -eu

SOURCE_DIR=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR=${MCM_TSAN_BUILD_DIR:-"${SOURCE_DIR}/build-tsan"}

# Probe: can this toolchain link a TSan binary at all?
probe_dir=$(mktemp -d)
trap 'rm -rf "${probe_dir}"' EXIT
printf 'int main(){return 0;}\n' > "${probe_dir}/probe.cc"
if ! c++ -fsanitize=thread "${probe_dir}/probe.cc" -o "${probe_dir}/probe" \
    2>/dev/null; then
  echo "ThreadSanitizer unsupported by this toolchain; skipping." >&2
  exit 77
fi

cmake -S "${SOURCE_DIR}" -B "${BUILD_DIR}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DMCM_SANITIZE=thread \
  -DMCM_BUILD_BENCHMARKS=OFF \
  -DMCM_BUILD_EXAMPLES=OFF
cmake --build "${BUILD_DIR}" --target engine_executor_test buffer_pool_test \
  -j "${MCM_TSAN_JOBS:-2}"

# Fail on any race report, even ones TSan would tolerate by default.
TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
  "${BUILD_DIR}/tests/engine_executor_test"
TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
  "${BUILD_DIR}/tests/buffer_pool_test"
echo "TSan suite clean."
