#!/bin/sh
# Back-compat wrapper: the TSan job is now one leg of the generalized
# sanitizer matrix. See scripts/run_sanitizer_tests.sh.
exec "$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)/run_sanitizer_tests.sh" thread
