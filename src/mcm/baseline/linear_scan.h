// Sequential-scan baseline: answers the same similarity queries as the
// metric indexes by comparing the query against every object. This is the
// comparator every index must beat, the oracle the correctness tests check
// against, and the "sequential" arm of access-path selection
// (cost/access_path.h): it always costs exactly n distance computations.

#ifndef MCM_BASELINE_LINEAR_SCAN_H_
#define MCM_BASELINE_LINEAR_SCAN_H_

#include <algorithm>
#include <queue>
#include <vector>

#include "mcm/common/query_stats.h"
#include "mcm/mtree/mtree.h"  // SearchResult

namespace mcm {

template <typename Traits>
class LinearScan {
 public:
  using Object = typename Traits::Object;
  using Metric = typename Traits::Metric;
  using Result = SearchResult<Object>;

  /// Keeps a reference to `objects`; the caller owns their lifetime.
  LinearScan(const std::vector<Object>& objects, Metric metric)
      : objects_(objects), metric_(std::move(metric)) {}

  /// All objects within `radius`, sorted by distance. Always performs
  /// exactly size() distance computations.
  std::vector<Result> RangeSearch(const Object& query, double radius,
                                  QueryStats* stats = nullptr) const {
    QueryStats local;
    QueryStats* st = stats ? stats : &local;
    ResetCounters(st);
    std::vector<Result> out;
    for (size_t i = 0; i < objects_.size(); ++i) {
      ++st->distance_computations;
      const double d = metric_(query, objects_[i]);
      if (d <= radius) {
        out.push_back({static_cast<uint64_t>(i), objects_[i], d});
      }
    }
    std::sort(out.begin(), out.end(), [](const Result& a, const Result& b) {
      return a.distance < b.distance;
    });
    return out;
  }

  /// The k nearest objects, sorted by distance.
  std::vector<Result> KnnSearch(const Object& query, size_t k,
                                QueryStats* stats = nullptr) const {
    QueryStats local;
    QueryStats* st = stats ? stats : &local;
    ResetCounters(st);
    auto less = [](const Result& a, const Result& b) {
      return a.distance < b.distance;
    };
    std::priority_queue<Result, std::vector<Result>, decltype(less)> best(
        less);
    for (size_t i = 0; i < objects_.size(); ++i) {
      ++st->distance_computations;
      const double d = metric_(query, objects_[i]);
      if (best.size() < k || d < best.top().distance) {
        best.push({static_cast<uint64_t>(i), objects_[i], d});
        if (best.size() > k) best.pop();
      }
    }
    std::vector<Result> out;
    out.reserve(best.size());
    while (!best.empty()) {
      out.push_back(best.top());
      best.pop();
    }
    std::reverse(out.begin(), out.end());
    return out;
  }

  size_t size() const { return objects_.size(); }

 private:
  const std::vector<Object>& objects_;
  Metric metric_;
};

}  // namespace mcm

#endif  // MCM_BASELINE_LINEAR_SCAN_H_
