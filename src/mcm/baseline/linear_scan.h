// Sequential-scan baseline: answers the same similarity queries as the
// metric indexes by comparing the query against every object. This is the
// comparator every index must beat, the oracle the correctness tests check
// against, and the "sequential" arm of access-path selection
// (cost/access_path.h): it always costs exactly n distance computations.
//
// Answers flow through the engine's collectors, so result ordering
// (distance, then oid on ties) is identical to every tree index — the
// oracle comparisons in the tests can assert oid equality, not just
// distance equality.

#ifndef MCM_BASELINE_LINEAR_SCAN_H_
#define MCM_BASELINE_LINEAR_SCAN_H_

#include <vector>

#include "mcm/common/query_stats.h"
#include "mcm/engine/search_core.h"
#include "mcm/engine/witness.h"

namespace mcm {

template <typename Traits>
class LinearScan {
 public:
  using Object = typename Traits::Object;
  using Metric = typename Traits::Metric;
  using Result = SearchResult<Object>;

  /// Keeps a reference to `objects`; the caller owns their lifetime.
  LinearScan(const std::vector<Object>& objects, Metric metric)
      : objects_(objects), metric_(std::move(metric)) {}

  /// All objects within `radius`, sorted by distance. Always performs
  /// exactly size() distance computations.
  std::vector<Result> RangeSearch(const Object& query, double radius,
                                  QueryStats* stats = nullptr) const {
    QueryStats local;
    QueryStats* st = stats ? stats : &local;
    ResetCounters(st);
    if (radius < 0.0) {
      return {};
    }
    engine::RangeCollector<Object> collector(radius);
    Scan(query, collector, st);
    return collector.Take();
  }

  /// The k nearest objects, sorted by distance.
  std::vector<Result> KnnSearch(const Object& query, size_t k,
                                QueryStats* stats = nullptr) const {
    QueryStats local;
    QueryStats* st = stats ? stats : &local;
    ResetCounters(st);
    if (k == 0) {
      return {};
    }
    engine::KnnCollector<Object> collector(k);
    Scan(query, collector, st);
    return collector.Take();
  }

  size_t size() const { return objects_.size(); }

 private:
  template <typename Collector>
  void Scan(const Object& query, Collector& collector, QueryStats* st) const {
    for (size_t i = 0; i < objects_.size(); ++i) {
      // Early exit past the collector bound via the engine's counted entry
      // point (engine/witness.h); a scan stores no witness distances, so
      // the cost stays exactly the n computations the access-path model
      // assumes.
      collector.Offer(static_cast<uint64_t>(i), objects_[i],
                      engine::CountedDistanceWithin(metric_, query,
                                                    objects_[i],
                                                    collector.Bound(), st));
    }
  }

  const std::vector<Object>& objects_;
  Metric metric_;
};

}  // namespace mcm

#endif  // MCM_BASELINE_LINEAR_SCAN_H_
