#include "mcm/bench_util/experiment.h"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "mcm/common/numeric.h"

namespace mcm {

std::string FormatErrorPercent(double estimate, double measured) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1)
     << 100.0 * RelativeError(estimate, measured) << "%";
  return os.str();
}

}  // namespace mcm
