// Shared experiment harness: run a query workload against an index,
// average the paper's cost counters, and format model-vs-measured rows.

#ifndef MCM_BENCH_UTIL_EXPERIMENT_H_
#define MCM_BENCH_UTIL_EXPERIMENT_H_

#include <string>
#include <vector>

#include "mcm/common/query_stats.h"

namespace mcm {

/// Workload-averaged costs.
struct MeasuredCosts {
  double avg_nodes = 0.0;    ///< Mean node reads per query (I/O cost).
  double avg_dists = 0.0;    ///< Mean distance computations (CPU cost).
  double avg_results = 0.0;  ///< Mean result cardinality.
  double avg_kth_distance = 0.0;  ///< k-NN only: mean k-th NN distance.
  size_t num_queries = 0;
};

/// Runs range(Q, radius) for every query object and averages the counters.
template <typename Tree, typename Object>
MeasuredCosts MeasureRange(const Tree& tree,
                           const std::vector<Object>& queries,
                           double radius) {
  MeasuredCosts costs;
  costs.num_queries = queries.size();
  for (const Object& q : queries) {
    QueryStats stats;
    const auto results = tree.RangeSearch(q, radius, &stats);
    costs.avg_nodes += static_cast<double>(stats.nodes_accessed);
    costs.avg_dists += static_cast<double>(stats.distance_computations);
    costs.avg_results += static_cast<double>(results.size());
  }
  if (!queries.empty()) {
    const double n = static_cast<double>(queries.size());
    costs.avg_nodes /= n;
    costs.avg_dists /= n;
    costs.avg_results /= n;
  }
  return costs;
}

/// Runs NN(Q, k) for every query object and averages the counters; the k-th
/// NN distance of each query is averaged into avg_kth_distance.
template <typename Tree, typename Object>
MeasuredCosts MeasureKnn(const Tree& tree, const std::vector<Object>& queries,
                         size_t k) {
  MeasuredCosts costs;
  costs.num_queries = queries.size();
  for (const Object& q : queries) {
    QueryStats stats;
    const auto results = tree.KnnSearch(q, k, &stats);
    costs.avg_nodes += static_cast<double>(stats.nodes_accessed);
    costs.avg_dists += static_cast<double>(stats.distance_computations);
    costs.avg_results += static_cast<double>(results.size());
    if (!results.empty()) {
      costs.avg_kth_distance += results.back().distance;
    }
  }
  if (!queries.empty()) {
    const double n = static_cast<double>(queries.size());
    costs.avg_nodes /= n;
    costs.avg_dists /= n;
    costs.avg_results /= n;
    costs.avg_kth_distance /= n;
  }
  return costs;
}

/// Formats the relative error of `estimate` vs `measured` as "p.p%".
std::string FormatErrorPercent(double estimate, double measured);

}  // namespace mcm

#endif  // MCM_BENCH_UTIL_EXPERIMENT_H_
