// Shared experiment harness: run a query workload against an index,
// average the paper's cost counters, and format model-vs-measured rows.
//
// The observer-aware overloads additionally attach a QueryTrace to every
// query and forward one QueryObservation per executed query to a
// BenchObserver, which turns them into BENCH_<name>.json / .csv artifacts
// (see obs/bench_observer.h). With observability disabled the overloads
// fall back to the plain measurement loop.

#ifndef MCM_BENCH_UTIL_EXPERIMENT_H_
#define MCM_BENCH_UTIL_EXPERIMENT_H_

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "mcm/common/query_stats.h"
#include "mcm/common/stopwatch.h"
#include "mcm/engine/executor.h"
#include "mcm/obs/bench_observer.h"
#include "mcm/obs/phase.h"
#include "mcm/obs/telemetry.h"
#include "mcm/obs/trace.h"

namespace mcm {

/// Workload-averaged costs.
struct MeasuredCosts {
  double avg_nodes = 0.0;    ///< Mean node reads per query (I/O cost).
  double avg_dists = 0.0;    ///< Mean distance computations (CPU cost).
  double avg_results = 0.0;  ///< Mean result cardinality.
  double avg_kth_distance = 0.0;  ///< k-NN only: mean k-th NN distance.
  double avg_pruned = 0.0;   ///< Mean subtrees eliminated without a visit.
  uint64_t buffer_hits = 0;    ///< Total buffer-pool hits (paged trees).
  uint64_t buffer_misses = 0;  ///< Total buffer-pool misses (paged trees).
  size_t num_queries = 0;
};

namespace internal {

/// Folds one query's counters into the running workload totals.
inline void Accumulate(const QueryStats& stats, size_t results,
                       MeasuredCosts* costs) {
  costs->avg_nodes += static_cast<double>(stats.nodes_accessed);
  costs->avg_dists += static_cast<double>(stats.distance_computations);
  costs->avg_results += static_cast<double>(results);
  costs->avg_pruned += static_cast<double>(stats.nodes_pruned);
  costs->buffer_hits += stats.buffer_hits;
  costs->buffer_misses += stats.buffer_misses;
}

/// Divides the accumulated sums by the workload size.
inline void FinishAverages(size_t num_queries, MeasuredCosts* costs) {
  if (num_queries == 0) return;
  const double n = static_cast<double>(num_queries);
  costs->avg_nodes /= n;
  costs->avg_dists /= n;
  costs->avg_results /= n;
  costs->avg_kth_distance /= n;
  costs->avg_pruned /= n;
}

/// Builds the QueryObservation for one traced query.
inline QueryObservation MakeObservation(const char* kind, double radius,
                                        size_t k, const QueryStats& stats,
                                        size_t results, double latency_us,
                                        const QueryTrace& trace,
                                        bool dump_events) {
  QueryObservation obs;
  obs.kind = kind;
  obs.radius = radius;
  obs.k = k;
  obs.stats = stats;
  obs.stats.trace = nullptr;  // The trace does not outlive this call.
  obs.stats.spans = nullptr;  // Neither does the span log.
  obs.results = results;
  obs.latency_us = latency_us;
  obs.level_nodes = trace.LevelNodeVisits();
  obs.prunes_by_reason = trace.prunes_by_reason();
  obs.trace_dropped = trace.dropped();
  if (dump_events) obs.events = trace.Events();
  return obs;
}

}  // namespace internal

/// Runs range(Q, radius) for every query object and averages the counters.
template <typename Tree, typename Object>
MeasuredCosts MeasureRange(const Tree& tree,
                           const std::vector<Object>& queries,
                           double radius) {
  MeasuredCosts costs;
  costs.num_queries = queries.size();
  for (const Object& q : queries) {
    QueryStats stats;
    const auto results = tree.RangeSearch(q, radius, &stats);
    internal::Accumulate(stats, results.size(), &costs);
  }
  internal::FinishAverages(queries.size(), &costs);
  return costs;
}

/// Runs NN(Q, k) for every query object and averages the counters; the k-th
/// NN distance of each query is averaged into avg_kth_distance.
template <typename Tree, typename Object>
MeasuredCosts MeasureKnn(const Tree& tree, const std::vector<Object>& queries,
                         size_t k) {
  MeasuredCosts costs;
  costs.num_queries = queries.size();
  for (const Object& q : queries) {
    QueryStats stats;
    const auto results = tree.KnnSearch(q, k, &stats);
    internal::Accumulate(stats, results.size(), &costs);
    if (!results.empty()) {
      costs.avg_kth_distance += results.back().distance;
    }
  }
  internal::FinishAverages(queries.size(), &costs);
  return costs;
}

/// Observed variant: opens a case labelled `label` on `observer`, traces
/// every query, and reports per-query observations plus `predictions` for
/// residual tracking. Falls back to the plain loop when the observer is
/// disabled. `params` are echoed into every emitted record.
template <typename Tree, typename Object>
MeasuredCosts MeasureRange(
    const Tree& tree, const std::vector<Object>& queries, double radius,
    BenchObserver* observer, const std::string& label,
    std::vector<CostPrediction> predictions = {},
    const std::vector<std::pair<std::string, double>>& params = {}) {
  if (observer == nullptr || !observer->enabled()) {
    return MeasureRange(tree, queries, radius);
  }
  observer->BeginCase(label, params, std::move(predictions));
  MeasuredCosts costs;
  costs.num_queries = queries.size();
  QueryTrace trace(observer->trace_capacity());
  PhaseSpanLog spans;
  size_t query_id = 0;
  for (const Object& q : queries) {
    trace.Clear();
    spans.Clear();
    QueryStats stats;
    stats.trace = &trace;
    stats.spans = &spans;
    Stopwatch watch;
    const auto results = tree.RangeSearch(q, radius, &stats);
    const double latency_us = watch.ElapsedSeconds() * 1e6;
    internal::Accumulate(stats, results.size(), &costs);
    ObservePhaseTimes(stats, query_id);
    TelemetrySink::Global().Submit(spans, query_id);
    ++query_id;
    observer->RecordQuery(internal::MakeObservation(
        "range", radius, 0, stats, results.size(), latency_us, trace,
        observer->dump_events()));
  }
  observer->EndCase();
  internal::FinishAverages(queries.size(), &costs);
  return costs;
}

/// Observed variant of MeasureKnn; see the range overload.
template <typename Tree, typename Object>
MeasuredCosts MeasureKnn(
    const Tree& tree, const std::vector<Object>& queries, size_t k,
    BenchObserver* observer, const std::string& label,
    std::vector<CostPrediction> predictions = {},
    const std::vector<std::pair<std::string, double>>& params = {}) {
  if (observer == nullptr || !observer->enabled()) {
    return MeasureKnn(tree, queries, k);
  }
  observer->BeginCase(label, params, std::move(predictions));
  MeasuredCosts costs;
  costs.num_queries = queries.size();
  QueryTrace trace(observer->trace_capacity());
  PhaseSpanLog spans;
  size_t query_id = 0;
  for (const Object& q : queries) {
    trace.Clear();
    spans.Clear();
    QueryStats stats;
    stats.trace = &trace;
    stats.spans = &spans;
    Stopwatch watch;
    const auto results = tree.KnnSearch(q, k, &stats);
    const double latency_us = watch.ElapsedSeconds() * 1e6;
    internal::Accumulate(stats, results.size(), &costs);
    if (!results.empty()) {
      costs.avg_kth_distance += results.back().distance;
    }
    ObservePhaseTimes(stats, query_id);
    TelemetrySink::Global().Submit(spans, query_id);
    ++query_id;
    observer->RecordQuery(internal::MakeObservation(
        "knn", 0.0, k, stats, results.size(), latency_us, trace,
        observer->dump_events()));
  }
  observer->EndCase();
  internal::FinishAverages(queries.size(), &costs);
  return costs;
}

/// One throughput measurement: the batch executor's wall clock and QPS over
/// the whole workload, plus the usual workload-averaged cost counters
/// (merged deterministically in query order by the executor).
struct ThroughputResult {
  MeasuredCosts costs;
  double wall_seconds = 0.0;  ///< Wall time of the parallel section.
  double qps = 0.0;           ///< Queries per second.
  size_t num_threads = 0;     ///< Resolved worker count.
  /// Per-query latency percentiles over the batch (worker-measured wall
  /// time per query; overlapping under concurrency — the tail signal).
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;
};

namespace internal {

/// Nearest-rank quantile of an unsorted sample (copy is sorted locally).
inline double LatencyQuantile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  size_t index = static_cast<size_t>(rank);
  if (index >= values.size() - 1) return values.back();
  const double fraction = rank - static_cast<double>(index);
  return values[index] * (1.0 - fraction) + values[index + 1] * fraction;
}

}  // namespace internal

/// Answers the whole range workload through a BatchExecutor at
/// `num_threads` workers and reports throughput. With an enabled observer,
/// opens a case labelled `label` (params get "threads" and "qps" appended)
/// and emits one observation per query carrying that query's own measured
/// wall time (BatchResult::latencies_us), so the summary record's
/// latency_us percentiles (p50/p95/p99) expose the tail under concurrency
/// instead of an amortized average.
template <typename Index, typename Object>
ThroughputResult MeasureRangeThroughput(
    const Index& index, const std::vector<Object>& queries, double radius,
    size_t num_threads, BenchObserver* observer = nullptr,
    const std::string& label = std::string(),
    std::vector<std::pair<std::string, double>> params = {}) {
  engine::ExecutorOptions options;
  options.num_threads = num_threads;
  const bool observed = observer != nullptr && observer->enabled();
  if (observed) {
    options.trace_capacity = observer->trace_capacity();
  }
  const engine::BatchExecutor<Index> executor(index, options);
  const auto batch = executor.RangeSearchBatch(queries, radius);

  ThroughputResult out;
  out.num_threads = executor.num_threads();
  out.wall_seconds = batch.wall_seconds;
  out.qps = batch.Qps();
  out.latency_p50_us = internal::LatencyQuantile(batch.latencies_us, 0.50);
  out.latency_p95_us = internal::LatencyQuantile(batch.latencies_us, 0.95);
  out.latency_p99_us = internal::LatencyQuantile(batch.latencies_us, 0.99);
  out.costs.num_queries = queries.size();
  for (size_t i = 0; i < queries.size(); ++i) {
    internal::Accumulate(batch.per_query[i], batch.results[i].size(),
                         &out.costs);
  }
  internal::FinishAverages(queries.size(), &out.costs);

  if (observed) {
    params.emplace_back("threads", static_cast<double>(out.num_threads));
    params.emplace_back("qps", out.qps);
    observer->BeginCase(label, params, {});
    const QueryTrace no_trace(1);  // When the observer traces 0 events.
    for (size_t i = 0; i < queries.size(); ++i) {
      observer->RecordQuery(internal::MakeObservation(
          "range", radius, 0, batch.per_query[i], batch.results[i].size(),
          batch.latencies_us[i],
          batch.traces.empty() ? no_trace : batch.traces[i],
          observer->dump_events()));
    }
    observer->EndCase();
  }
  return out;
}

/// Formats the relative error of `estimate` vs `measured` as "p.p%".
std::string FormatErrorPercent(double estimate, double measured);

}  // namespace mcm

#endif  // MCM_BENCH_UTIL_EXPERIMENT_H_
