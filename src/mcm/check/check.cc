#include "mcm/check/check.h"

#include <sstream>
#include <stdexcept>

#include "mcm/common/env.h"

namespace mcm {
namespace check {

void CheckResult::Add(std::string rule, std::string where,
                      std::string detail) {
  violations_.push_back(
      {std::move(rule), std::move(where), std::move(detail)});
}

void CheckResult::Merge(const CheckResult& other) {
  violations_.insert(violations_.end(), other.violations_.begin(),
                     other.violations_.end());
}

bool CheckResult::Has(const std::string& rule) const {
  for (const auto& v : violations_) {
    if (v.rule == rule) return true;
  }
  return false;
}

std::string CheckResult::Summary(size_t max_items) const {
  if (ok()) {
    return "ok";
  }
  std::ostringstream os;
  os << violations_.size() << " violation(s)";
  const size_t shown = violations_.size() < max_items ? violations_.size()
                                                      : max_items;
  for (size_t i = 0; i < shown; ++i) {
    const Violation& v = violations_[i];
    os << "; [" << v.rule << "] " << v.where << ": " << v.detail;
  }
  if (shown < violations_.size()) {
    os << "; ... (" << violations_.size() - shown << " more)";
  }
  return os.str();
}

bool InvariantChecksEnabled() {
  return GetEnvInt("MCM_CHECK_INVARIANTS", 0) != 0;
}

void ThrowIfViolated(const CheckResult& result, const std::string& context) {
  if (!result.ok()) {
    throw std::runtime_error(context + ": " + result.Summary());
  }
}

}  // namespace check
}  // namespace mcm
