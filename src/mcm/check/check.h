// Structural invariant checking (src/mcm/check/): machine-checked
// enforcement of the geometric and accounting invariants the cost model
// rests on — M-tree covering-radius containment, vp-tree shell bounds,
// GNAT range tables, histogram CDF monotonicity.
//
// Checkers (check_mtree.h, check_vptree.h, check_gnat.h, check_histogram.h)
// return a CheckResult listing every violated invariant with a precise
// location. They are callable from tests, installable as post-mutation
// hooks gated by MCM_CHECK_INVARIANTS=1 (Install*InvariantHook), and drive
// the `tools/mcm_check` CLI that validates persisted indexes.

#ifndef MCM_CHECK_CHECK_H_
#define MCM_CHECK_CHECK_H_

#include <string>
#include <vector>

namespace mcm {
namespace check {

/// One violated invariant: the rule that failed, where in the structure,
/// and the measured numbers that prove the failure.
struct Violation {
  std::string rule;    ///< e.g. "covering-radius", "cdf-monotone".
  std::string where;   ///< e.g. "node 7, oid 123", "bin 4".
  std::string detail;  ///< Human-readable specifics with the numbers.
};

/// Outcome of a structural check: ok(), or a list of precise violations.
class CheckResult {
 public:
  bool ok() const { return violations_.empty(); }
  const std::vector<Violation>& violations() const { return violations_; }

  void Add(std::string rule, std::string where, std::string detail);
  void Merge(const CheckResult& other);

  /// True when at least one violation carries this rule tag.
  bool Has(const std::string& rule) const;

  /// "ok" or "<n> violation(s): [rule] where: detail; ..." (first
  /// `max_items` shown).
  std::string Summary(size_t max_items = 8) const;

 private:
  std::vector<Violation> violations_;
};

/// True when MCM_CHECK_INVARIANTS=1 (or any nonzero value) is set in the
/// environment. Install*InvariantHook helpers consult this before wiring
/// post-mutation re-validation into an index.
bool InvariantChecksEnabled();

/// Throws std::runtime_error("<context>: " + result.Summary()) when the
/// result is not ok(); returns silently otherwise.
void ThrowIfViolated(const CheckResult& result, const std::string& context);

}  // namespace check
}  // namespace mcm

#endif  // MCM_CHECK_CHECK_H_
