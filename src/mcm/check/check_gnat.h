// Structural invariant checker for GNAT. Brin's range-table pruning
// eliminates subtree j using d(Q, p_i) against range[i][j] = [lo, hi]; the
// elimination is sound only if that interval really bounds d(p_i, x) for
// every member x of subtree j (split point p_j included). Verified rules:
//
//   range-bound    every member of subtree j lies inside [lo, hi] of
//                  range[i][j] for every split point p_i;
//   range-empty    a non-empty subtree never sits under an empty
//                  (lo > hi) range interval;
//   range-shape    the range table is an m-by-m matrix aligned with the
//                  node's m split points and children;
//   size-mismatch  the tree accounts for exactly size() objects.
//
// Access to the private node structure goes through check::IndexInspector.

#ifndef MCM_CHECK_CHECK_GNAT_H_
#define MCM_CHECK_CHECK_GNAT_H_

#include <sstream>
#include <string>
#include <vector>

#include "mcm/check/check.h"
#include "mcm/check/inspect.h"
#include "mcm/gnat/gnat.h"

namespace mcm {
namespace check {

/// Validates all GNAT invariants; `epsilon` absorbs floating-point slack
/// in the range-boundary comparisons.
template <typename Traits>
CheckResult CheckGnat(const Gnat<Traits>& tree, double epsilon = 1e-9) {
  using Object = typename Traits::Object;

  CheckResult result;
  const auto* root = IndexInspector::GnatRoot(tree);
  if (root == nullptr) {
    if (tree.size() != 0) {
      std::ostringstream os;
      os << "empty tree reports size() = " << tree.size();
      result.Add("size-mismatch", "root", os.str());
    }
    return result;
  }
  const auto& metric = IndexInspector::GnatMetric(tree);
  size_t objects = 0;

  // Walks the subtree under `node`, appending every member object (splits
  // and bucket entries) to `members`, and checks each internal node's
  // range table against the actual member distances.
  auto walk = [&](auto&& self, const auto* node, int depth,
                  std::vector<const Object*>* members) -> void {
    if (node->is_leaf) {
      for (const auto& [object, oid] : node->bucket) {
        ++objects;
        members->push_back(&object);
      }
      return;
    }

    std::ostringstream label;
    label << "internal node at depth " << depth;
    const size_t m = node->splits.size();
    if (node->children.size() != m || node->ranges.size() != m * m) {
      std::ostringstream os;
      os << m << " splits but " << node->children.size()
         << " children and " << node->ranges.size()
         << " range cells (want " << m * m << ")";
      result.Add("range-shape", label.str(), os.str());
      return;  // The table layout is unreliable; stop here.
    }
    objects += m;

    for (size_t j = 0; j < m; ++j) {
      // Subtree j's members: its split point plus its child's subtree.
      std::vector<const Object*> subtree{&node->splits[j]};
      if (node->children[j] != nullptr) {
        self(self, node->children[j].get(), depth + 1, &subtree);
      }
      for (size_t i = 0; i < m; ++i) {
        const auto& range = node->ranges[i * m + j];
        std::ostringstream where;
        where << label.str() << ", range[" << i << "][" << j << "]";
        if (range.lo > range.hi) {
          std::ostringstream os;
          os << "empty interval [" << range.lo << ", " << range.hi
             << "] over a subtree of " << subtree.size() << " member(s)";
          result.Add("range-empty", where.str(), os.str());
          continue;
        }
        for (const Object* member : subtree) {
          const double d = metric(node->splits[i], *member);
          if (d < range.lo - epsilon || d > range.hi + epsilon) {
            std::ostringstream os;
            os << "member at distance " << d << " from split " << i
               << " outside [" << range.lo << ", " << range.hi << "]";
            result.Add("range-bound", where.str(), os.str());
          }
        }
      }
      members->insert(members->end(), subtree.begin(), subtree.end());
    }
  };
  std::vector<const Object*> all;
  walk(walk, root, 1, &all);

  if (objects != tree.size()) {
    std::ostringstream os;
    os << "tree.size() = " << tree.size() << " but traversal found "
       << objects << " objects";
    result.Add("size-mismatch", "root", os.str());
  }
  return result;
}

}  // namespace check
}  // namespace mcm

#endif  // MCM_CHECK_CHECK_GNAT_H_
