#include "mcm/check/check_histogram.h"

#include <cmath>
#include <sstream>

namespace mcm {
namespace check {

CheckResult CheckHistogramData(const std::vector<double>& masses,
                               const std::vector<double>& cum,
                               double d_plus, double epsilon) {
  CheckResult result;
  if (masses.empty()) {
    result.Add("domain", "histogram", "no bins");
    return result;
  }
  if (!(d_plus > 0.0)) {
    std::ostringstream os;
    os << "d_plus = " << d_plus << " (want > 0)";
    result.Add("domain", "histogram", os.str());
  }
  if (cum.size() != masses.size()) {
    std::ostringstream os;
    os << masses.size() << " masses but " << cum.size()
       << " cumulative values";
    result.Add("cdf-consistency", "histogram", os.str());
    return result;  // Index-aligned checks below would be meaningless.
  }

  double sum = 0.0;
  for (size_t i = 0; i < masses.size(); ++i) {
    std::ostringstream where;
    where << "bin " << i;
    if (masses[i] < 0.0 || std::isnan(masses[i])) {
      std::ostringstream os;
      os << "mass " << masses[i];
      result.Add("negative-mass", where.str(), os.str());
    }
    sum += masses[i];
    if (i > 0 && cum[i] + epsilon < cum[i - 1]) {
      std::ostringstream os;
      os << "cum " << cum[i] << " below previous " << cum[i - 1];
      result.Add("cdf-monotone", where.str(), os.str());
    }
    if (std::fabs(cum[i] - sum) > epsilon &&
        // The final value may be snapped to exactly 1 (drift guard).
        !(i + 1 == masses.size() && std::fabs(sum - 1.0) <= epsilon)) {
      std::ostringstream os;
      os << "cum " << cum[i] << " != prefix mass sum " << sum;
      result.Add("cdf-consistency", where.str(), os.str());
    }
  }
  if (std::fabs(sum - 1.0) > epsilon) {
    std::ostringstream os;
    os << "masses sum to " << sum << " (want 1)";
    result.Add("mass-normalization", "histogram", os.str());
  }
  if (std::fabs(cum.back() - 1.0) > epsilon) {
    std::ostringstream os;
    os << "F(d_plus) = " << cum.back() << " (want 1)";
    result.Add("cdf-terminal", "histogram", os.str());
  }
  return result;
}

CheckResult CheckHistogram(const DistanceHistogram& histogram,
                           double epsilon) {
  return CheckHistogramData(histogram.masses(), histogram.cum(),
                            histogram.d_plus(), epsilon);
}

}  // namespace check
}  // namespace mcm
