// Structural invariant checker for distance-distribution histograms. The
// cost models integrate over F (Eq. 1); every formula assumes F is a CDF:
//
//   negative-mass       no bin carries negative probability mass;
//   mass-normalization  the masses sum to 1;
//   cdf-monotone        the cumulative values never decrease;
//   cdf-consistency     cum()[i] equals the prefix sum of masses();
//   cdf-terminal        F(d_plus) = 1;
//   domain              d_plus > 0 and at least one bin.
//
// CheckHistogramData validates raw (masses, cum) arrays so tests can feed
// deliberately corrupted data; CheckHistogram wraps a DistanceHistogram.

#ifndef MCM_CHECK_CHECK_HISTOGRAM_H_
#define MCM_CHECK_CHECK_HISTOGRAM_H_

#include <vector>

#include "mcm/check/check.h"
#include "mcm/distribution/histogram.h"

namespace mcm {
namespace check {

/// Validates raw histogram arrays; `epsilon` absorbs floating-point drift
/// in the sums (1e-6 default: masses are sample frequencies).
CheckResult CheckHistogramData(const std::vector<double>& masses,
                               const std::vector<double>& cum,
                               double d_plus, double epsilon = 1e-6);

/// Validates a built DistanceHistogram.
CheckResult CheckHistogram(const DistanceHistogram& histogram,
                           double epsilon = 1e-6);

}  // namespace check
}  // namespace mcm

#endif  // MCM_CHECK_CHECK_HISTOGRAM_H_
