// Structural invariant checker for M-trees. Verifies, for the whole tree:
//
//   covering-radius   every object in the subtree of a routing entry lies
//                     within its covering radius (the defining M-tree
//                     property; the pruning lemmas are unsound without it);
//   parent-distance   stored parent distances equal d(parent routing
//                     object, entry object) — the optimized search prunes
//                     with these, so a stale value silently drops results;
//   node-overflow     every node's serialized form fits the configured
//                     node (page) size;
//   header-count      a node's serialized header entry count matches the
//                     entries it actually round-trips;
//   leaf-depth        all leaves at the same depth (the tree is balanced);
//   empty-node        no node is empty;
//   radius-sign       no negative covering radius;
//   size-mismatch     the number of leaf objects equals tree.size();
//   ancestor-distance persisted witness-cascade ancestor distances match
//                     the recomputed d(ancestor routing object, entry) and
//                     never cover more ancestors than lie above the parent.
//
// CheckMTree is pure observation (it reads nodes through the tree's store,
// so access counters do move — run it outside measured sections).
// InstallMTreeInvariantHook wires CheckMTree after every Insert/Delete when
// MCM_CHECK_INVARIANTS=1.

#ifndef MCM_CHECK_CHECK_MTREE_H_
#define MCM_CHECK_CHECK_MTREE_H_

#include <cmath>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "mcm/check/check.h"
#include "mcm/mtree/mtree.h"

namespace mcm {
namespace check {

namespace internal {

inline std::string NodeLabel(NodeId id) {
  std::ostringstream os;
  os << "node " << id;
  return os.str();
}

}  // namespace internal

/// Validates all M-tree invariants; `epsilon` absorbs floating-point slack
/// in the distance comparisons.
template <typename Traits>
CheckResult CheckMTree(const MTree<Traits>& tree, double epsilon = 1e-9) {
  using Object = typename Traits::Object;
  using Node = MTreeNode<Traits>;

  CheckResult result;
  if (tree.root() == kInvalidNodeId) {
    if (tree.size() != 0) {
      std::ostringstream os;
      os << "empty tree reports size() = " << tree.size();
      result.Add("size-mismatch", "root", os.str());
    }
    return result;
  }

  auto& store = tree.store();
  const auto& metric = tree.metric();
  size_t leaf_objects = 0;
  int leaf_depth = -1;

  // Witness-cascade entry layout (mtree/node.h): ancestor_distances[i]
  // must equal d(routing object at depth i, entry object) and the array
  // may only cover ancestors strictly above the parent (the parent's
  // distance is the entry's parent_distance). Lengths are structural and
  // checked always; values are only meaningful while the cascade is
  // installed (stale arrays are never consulted otherwise).
  auto check_ancestors =
      [&](const std::vector<double>& stored, const Object& object,
          const std::vector<std::pair<const Object*, double>>& balls,
          const std::string& where) {
        const size_t above_parent = balls.empty() ? 0 : balls.size() - 1;
        if (stored.size() > above_parent) {
          std::ostringstream os;
          os << "entry stores " << stored.size()
             << " ancestor distance(s) but only " << above_parent
             << " ancestor(s) lie above the parent";
          result.Add("ancestor-distance", where, os.str());
          return;
        }
        if (!tree.cascade_installed()) return;
        for (size_t i = 0; i < stored.size(); ++i) {
          const double d = metric(*balls[i].first, object);
          if (std::fabs(d - stored[i]) > epsilon) {
            std::ostringstream os;
            os << "stored ancestor distance [" << i << "] = " << stored[i]
               << " != actual " << d;
            result.Add("ancestor-distance", where, os.str());
          }
        }
      };

  // Pass 1: per-node structure plus parent-distance consistency. The
  // `balls` stack carries every (routing object, covering radius) on the
  // root-to-leaf path, so containment is verified against all ancestors.
  auto walk = [&](auto&& self, NodeId id, const Object* parent, int depth,
                  const std::vector<std::pair<const Object*, double>>& balls)
      -> void {
    const Node node = store.Read(id);
    const std::string label = internal::NodeLabel(id);

    if (node.SerializedSize() > tree.options().node_size_bytes) {
      std::ostringstream os;
      os << "serialized size " << node.SerializedSize()
         << " exceeds node size " << tree.options().node_size_bytes;
      result.Add("node-overflow", label, os.str());
    }
    if (node.NumEntries() == 0) {
      result.Add("empty-node", label, "node holds no entries");
    }

    // Round-trip the node and compare entry counts: catches serialized
    // headers that disagree with the entry list (and Traits asymmetries).
    {
      std::vector<uint8_t> bytes;
      node.Serialize(&bytes);
      const Node back = Node::Deserialize(bytes.data(), bytes.size());
      if (back.is_leaf != node.is_leaf ||
          back.NumEntries() != node.NumEntries()) {
        std::ostringstream os;
        os << "serialized header round-trips to "
           << (back.is_leaf ? "leaf" : "internal") << "/"
           << back.NumEntries() << " entries but node is "
           << (node.is_leaf ? "leaf" : "internal") << "/"
           << node.NumEntries();
        result.Add("header-count", label, os.str());
      }
    }

    if (node.is_leaf) {
      if (leaf_depth < 0) {
        leaf_depth = depth;
      } else if (leaf_depth != depth) {
        std::ostringstream os;
        os << "leaf at depth " << depth << " but earlier leaves at depth "
           << leaf_depth;
        result.Add("leaf-depth", label, os.str());
      }
      leaf_objects += node.leaf_entries.size();
      for (const auto& e : node.leaf_entries) {
        std::ostringstream where;
        where << label << ", oid " << e.oid;
        if (parent != nullptr) {
          const double d = metric(*parent, e.object);
          if (std::fabs(d - e.parent_distance) > epsilon) {
            std::ostringstream os;
            os << "stored parent distance " << e.parent_distance
               << " != actual " << d;
            result.Add("parent-distance", where.str(), os.str());
          }
        }
        for (const auto& [center, radius] : balls) {
          const double d = metric(*center, e.object);
          if (d > radius + epsilon) {
            std::ostringstream os;
            os << "object at distance " << d
               << " outside ancestor covering radius " << radius;
            result.Add("covering-radius", where.str(), os.str());
          }
        }
        check_ancestors(e.ancestor_distances, e.object, balls, where.str());
      }
      return;
    }

    for (const auto& e : node.routing_entries) {
      if (parent != nullptr) {
        const double d = metric(*parent, e.object);
        if (std::fabs(d - e.parent_distance) > epsilon) {
          std::ostringstream os;
          os << "stored parent distance " << e.parent_distance
             << " != actual " << d << " (routing entry, child " << e.child
             << ")";
          result.Add("parent-distance", label, os.str());
        }
      }
      if (e.covering_radius < 0.0) {
        std::ostringstream os;
        os << "negative covering radius " << e.covering_radius
           << " (child " << e.child << ")";
        result.Add("radius-sign", label, os.str());
      }
      check_ancestors(e.ancestor_distances, e.object, balls, label);
      auto next = balls;
      next.emplace_back(&e.object, e.covering_radius);
      // `next` points into the local `node` copy, which stays alive for
      // the duration of this recursive call.
      self(self, e.child, &e.object, depth + 1, next);
    }
  };
  walk(walk, tree.root(), nullptr, 0, {});

  if (leaf_objects != tree.size()) {
    std::ostringstream os;
    os << "tree.size() = " << tree.size() << " but leaves hold "
       << leaf_objects << " objects";
    result.Add("size-mismatch", "root", os.str());
  }
  return result;
}

/// When MCM_CHECK_INVARIANTS=1: validates `tree` immediately (covers
/// bulk-load and attach) and installs a post-mutation hook so every
/// Insert/Delete re-validates, throwing std::runtime_error on the first
/// violation. A no-op (and zero query-path cost) when the gate is unset.
template <typename Traits>
void InstallMTreeInvariantHook(MTree<Traits>& tree, double epsilon = 1e-9) {
  if (!InvariantChecksEnabled()) {
    return;
  }
  ThrowIfViolated(CheckMTree(tree, epsilon), "MTree invariants");
  tree.set_post_modify_hook([epsilon](const MTree<Traits>& t) {
    ThrowIfViolated(CheckMTree(t, epsilon), "MTree invariants");
  });
}

}  // namespace check
}  // namespace mcm

#endif  // MCM_CHECK_CHECK_MTREE_H_
