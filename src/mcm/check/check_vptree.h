// Structural invariant checker for vp-trees. The vp-tree partitions each
// subtree into spherical shells around a vantage point; range/k-NN pruning
// (Eq. 19 of the paper's Section 5) is sound only if
//
//   shell-order   the cutoff values mu_1..mu_{m-1} are non-decreasing;
//   shell-arity   an internal node has exactly cutoffs+1 children;
//   shell-bound   every object in child g's subtree lies inside its shell
//                 [mu_{g-1}, mu_g] around *every* ancestor vantage point on
//                 its path (mu_0 = 0, mu_m = infinity);
//   size-mismatch the tree accounts for exactly size() objects.
//
// Access to the private node structure goes through check::IndexInspector.

#ifndef MCM_CHECK_CHECK_VPTREE_H_
#define MCM_CHECK_CHECK_VPTREE_H_

#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "mcm/check/check.h"
#include "mcm/check/inspect.h"
#include "mcm/vptree/vptree.h"

namespace mcm {
namespace check {

/// Validates all vp-tree invariants; `epsilon` absorbs floating-point
/// slack in the shell-boundary comparisons.
template <typename Traits>
CheckResult CheckVpTree(const VpTree<Traits>& tree, double epsilon = 1e-9) {
  using Object = typename Traits::Object;

  CheckResult result;
  const auto* root = IndexInspector::VpRoot(tree);
  if (root == nullptr) {
    if (tree.size() != 0) {
      std::ostringstream os;
      os << "empty tree reports size() = " << tree.size();
      result.Add("size-mismatch", "root", os.str());
    }
    return result;
  }
  const auto& metric = IndexInspector::VpMetric(tree);

  struct Shell {
    const Object* vantage;
    double lo;
    double hi;
  };
  size_t objects = 0;

  auto check_object = [&](const Object& object, uint64_t oid,
                          const std::vector<Shell>& shells) {
    for (const Shell& shell : shells) {
      const double d = metric(*shell.vantage, object);
      if (d < shell.lo - epsilon || d > shell.hi + epsilon) {
        std::ostringstream where;
        where << "oid " << oid;
        std::ostringstream os;
        os << "distance " << d << " to ancestor vantage outside shell ["
           << shell.lo << ", " << shell.hi << "]";
        result.Add("shell-bound", where.str(), os.str());
      }
    }
  };

  auto walk = [&](auto&& self, const auto* node, int depth,
                  const std::vector<Shell>& shells) -> void {
    if (node->is_leaf) {
      for (const auto& [object, oid] : node->bucket) {
        ++objects;
        check_object(object, oid, shells);
      }
      return;
    }

    std::ostringstream label;
    label << "internal node at depth " << depth << " (vantage oid "
          << node->vantage_oid << ")";

    ++objects;
    check_object(node->vantage, node->vantage_oid, shells);

    for (size_t i = 1; i < node->cutoffs.size(); ++i) {
      if (node->cutoffs[i] + epsilon < node->cutoffs[i - 1]) {
        std::ostringstream os;
        os << "cutoff mu_" << i + 1 << " = " << node->cutoffs[i]
           << " below mu_" << i << " = " << node->cutoffs[i - 1];
        result.Add("shell-order", label.str(), os.str());
      }
    }
    if (node->children.size() != node->cutoffs.size() + 1) {
      std::ostringstream os;
      os << node->children.size() << " children but "
         << node->cutoffs.size() << " cutoffs";
      result.Add("shell-arity", label.str(), os.str());
    }

    for (size_t g = 0; g < node->children.size(); ++g) {
      if (node->children[g] == nullptr) {
        continue;
      }
      Shell shell;
      shell.vantage = &node->vantage;
      shell.lo = g == 0 ? 0.0 : node->cutoffs[g - 1];
      shell.hi = g + 1 == node->children.size()
                     ? std::numeric_limits<double>::infinity()
                     : node->cutoffs[g];
      auto next = shells;
      next.push_back(shell);
      self(self, node->children[g].get(), depth + 1, next);
    }
  };
  walk(walk, root, 1, {});

  if (objects != tree.size()) {
    std::ostringstream os;
    os << "tree.size() = " << tree.size() << " but traversal found "
       << objects << " objects";
    result.Add("size-mismatch", "root", os.str());
  }
  return result;
}

}  // namespace check
}  // namespace mcm

#endif  // MCM_CHECK_CHECK_VPTREE_H_
