// Friend-based introspection for the invariant checkers. The vp-tree and
// GNAT keep their node structures private (nothing in the query path needs
// them); rather than widening those APIs, both classes befriend
// check::IndexInspector, and the checkers (plus the checker *tests*, which
// deliberately corrupt nodes) reach the internals through it.
//
// Callers never name the private node types: every accessor returns `auto`,
// and the node members themselves are public within their class, so
// `auto* n = IndexInspector::MutableVpRoot(tree); n->cutoffs[0] = x;`
// compiles without exposing the type.

#ifndef MCM_CHECK_INSPECT_H_
#define MCM_CHECK_INSPECT_H_

namespace mcm {

template <typename Traits>
class VpTree;

template <typename Traits>
class Gnat;

namespace check {

/// Read (and, for corruption tests, write) access to index internals.
struct IndexInspector {
  template <typename Traits>
  static const auto* VpRoot(const VpTree<Traits>& tree) {
    return tree.root_.get();
  }

  template <typename Traits>
  static auto* MutableVpRoot(VpTree<Traits>& tree) {
    return tree.root_.get();
  }

  template <typename Traits>
  static const typename Traits::Metric& VpMetric(
      const VpTree<Traits>& tree) {
    return tree.metric_;
  }

  template <typename Traits>
  static const auto* GnatRoot(const Gnat<Traits>& tree) {
    return tree.root_.get();
  }

  template <typename Traits>
  static auto* MutableGnatRoot(Gnat<Traits>& tree) {
    return tree.root_.get();
  }

  template <typename Traits>
  static const typename Traits::Metric& GnatMetric(
      const Gnat<Traits>& tree) {
    return tree.metric_;
  }
};

}  // namespace check
}  // namespace mcm

#endif  // MCM_CHECK_INSPECT_H_
