// The library's only monotonic-clock seam. Every wall-clock measurement
// (Stopwatch, phase spans, page-read timing) funnels through MonotonicNanos()
// so the no-rand-or-time lint rule can forbid raw std::chrono clock reads
// everywhere else — one audited call site instead of scattered timing code.

#ifndef MCM_COMMON_CLOCK_H_
#define MCM_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace mcm {

/// Nanoseconds on a monotonic (steady) clock. The absolute value is
/// meaningless; only differences between two reads are.
inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now()  // mcm-lint: allow(no-rand-or-time)
              .time_since_epoch())
          .count());
}

}  // namespace mcm

#endif  // MCM_COMMON_CLOCK_H_
