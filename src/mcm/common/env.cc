#include "mcm/common/env.h"

#include <cstdlib>

namespace mcm {

int64_t GetEnvInt(const std::string& name, int64_t default_value) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) {
    return default_value;
  }
  char* end = nullptr;
  const long long v = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0') {
    return default_value;
  }
  return static_cast<int64_t>(v);
}

double GetEnvDouble(const std::string& name, double default_value) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) {
    return default_value;
  }
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  if (end == raw || *end != '\0') {
    return default_value;
  }
  return v;
}

std::string GetEnvString(const std::string& name,
                         const std::string& default_value) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || raw[0] == '\0') {
    return default_value;
  }
  return raw;
}

}  // namespace mcm
