// Environment-variable overrides for benchmark scale knobs.
//
// Every benchmark harness reads its dataset size / query count through these
// helpers so a user can scale an experiment up to the paper's exact
// parameters (e.g. MCM_FIG5_N=1000000) or down for a quick smoke run,
// without recompiling.

#ifndef MCM_COMMON_ENV_H_
#define MCM_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace mcm {

/// Returns the integer value of environment variable `name`, or
/// `default_value` when unset or unparsable.
int64_t GetEnvInt(const std::string& name, int64_t default_value);

/// Returns the double value of environment variable `name`, or
/// `default_value` when unset or unparsable.
double GetEnvDouble(const std::string& name, double default_value);

/// Returns the string value of environment variable `name`, or
/// `default_value` when unset or empty.
std::string GetEnvString(const std::string& name,
                         const std::string& default_value);

}  // namespace mcm

#endif  // MCM_COMMON_ENV_H_
