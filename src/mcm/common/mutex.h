// Annotated mutex primitives. mcm::Mutex wraps std::mutex with the clang
// capability attribute (std::mutex itself is not a capability type under
// libstdc++, so MCM_GUARDED_BY members could not name it); MutexLock is the
// RAII guard the analysis tracks; CondVar pairs a std::condition_variable
// with a Mutex while keeping the wait annotated MCM_REQUIRES(mu).
//
// The wrappers are zero-cost: every method is a forwarding inline call and
// off-clang the annotations compile away entirely, leaving plain std::mutex
// behaviour. Every mutex-protected class in the library (BufferPool shards,
// PageFile, DecodedNodeCache, ThreadPool, MetricsRegistry, TelemetrySink)
// holds an mcm::Mutex so `-Wthread-safety -Werror` proves its locking
// discipline at compile time (DESIGN.md §12).

#ifndef MCM_COMMON_MUTEX_H_
#define MCM_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "mcm/common/thread_annotations.h"

namespace mcm {

/// Exclusive mutex, annotated as a thread-safety capability.
class MCM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() MCM_ACQUIRE() { mu_.lock(); }
  void Unlock() MCM_RELEASE() { mu_.unlock(); }
  bool TryLock() MCM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped std::mutex, for interop with std machinery (CondVar).
  /// The analysis cannot see through this — use it only where the
  /// surrounding function carries the matching MCM_REQUIRES/MCM_ACQUIRE.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock on an mcm::Mutex, tracked by the analysis as a scoped
/// capability (the annotated equivalent of std::lock_guard).
class MCM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) MCM_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() MCM_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable used with mcm::Mutex. Wait() is annotated
/// MCM_REQUIRES(mu): callers hold the mutex, the wait releases it while
/// blocked and reacquires before returning, exactly like
/// std::condition_variable — predicates stay explicit `while` loops in the
/// caller so the analysis sees every guarded read under the lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. `mu` must be held; it is released while
  /// waiting and held again on return.
  void Wait(Mutex& mu) MCM_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // The caller's scope still owns the mutex.
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mcm

#endif  // MCM_COMMON_MUTEX_H_
