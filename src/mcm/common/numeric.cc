#include "mcm/common/numeric.h"

#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace mcm {

double LogBinomial(uint64_t n, uint64_t k) {
  if (k > n) {
    throw std::invalid_argument("LogBinomial: k > n");
  }
  if (k == 0 || k == n) {
    return 0.0;
  }
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double BinomialLowerTail(uint64_t n, uint64_t k, double p) {
  if (k == 0) {
    throw std::invalid_argument("BinomialLowerTail: k must be >= 1");
  }
  p = Clamp(p, 0.0, 1.0);
  if (p == 0.0) {
    return 1.0;  // All mass at i = 0, which is inside the tail.
  }
  if (p == 1.0) {
    // All mass at i = n; the tail covers i < k, so it is empty unless k > n.
    return k > n ? 1.0 : 0.0;
  }
  const double log_p = std::log(p);
  const double log_q = std::log1p(-p);
  double sum = 0.0;
  const uint64_t top = std::min<uint64_t>(k - 1, n);
  for (uint64_t i = 0; i <= top; ++i) {
    const double log_term = LogBinomial(n, i) +
                            static_cast<double>(i) * log_p +
                            static_cast<double>(n - i) * log_q;
    sum += std::exp(log_term);
  }
  return Clamp(sum, 0.0, 1.0);
}

double TrapezoidIntegrate(const std::function<double(double)>& f, double a,
                          double b, size_t steps) {
  if (steps == 0) {
    throw std::invalid_argument("TrapezoidIntegrate: steps must be >= 1");
  }
  if (b <= a) {
    return 0.0;
  }
  const double dx = (b - a) / static_cast<double>(steps);
  double sum = 0.5 * (f(a) + f(b));
  for (size_t i = 1; i < steps; ++i) {
    sum += f(a + dx * static_cast<double>(i));
  }
  return sum * dx;
}

double TrapezoidIntegrate(const std::vector<double>& values, double dx) {
  if (values.size() < 2) {
    return 0.0;
  }
  double sum = 0.5 * (values.front() + values.back());
  for (size_t i = 1; i + 1 < values.size(); ++i) {
    sum += values[i];
  }
  return sum * dx;
}

double RelativeError(double estimate, double reference) {
  const double diff = std::fabs(estimate - reference);
  if (reference == 0.0) {
    return diff;
  }
  return diff / std::fabs(reference);
}

}  // namespace mcm
