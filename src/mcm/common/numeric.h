// Numerical kernels used by the cost models: stable binomial tail
// probabilities (Eq. 9 of the paper with n up to 10^6), log-space binomial
// coefficients, and composite trapezoid integration on uniform grids.

#ifndef MCM_COMMON_NUMERIC_H_
#define MCM_COMMON_NUMERIC_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace mcm {

/// Natural log of the binomial coefficient C(n, k). Exact for k==0 / k==n,
/// computed via lgamma otherwise. Requires 0 <= k <= n.
double LogBinomial(uint64_t n, uint64_t k);

/// Lower binomial tail: sum_{i=0}^{k-1} C(n,i) p^i (1-p)^{n-i}.
///
/// This is `1 - P_{Q,k}(r)` in Eq. 9 with p = F(r). Evaluated in log space
/// term by term so it stays accurate for n = 10^6 and p close to 0 or 1.
/// Requires k >= 1; p is clamped to [0, 1].
double BinomialLowerTail(uint64_t n, uint64_t k, double p);

/// Composite trapezoid integral of `f` over [a, b] using `steps` uniform
/// intervals (so `steps + 1` evaluations). Requires steps >= 1 and a <= b.
double TrapezoidIntegrate(const std::function<double(double)>& f, double a,
                          double b, size_t steps);

/// Trapezoid integral of pre-sampled values on a uniform grid with spacing
/// `dx`. Returns 0 for fewer than two samples.
double TrapezoidIntegrate(const std::vector<double>& values, double dx);

/// Clamps x into [lo, hi].
inline double Clamp(double x, double lo, double hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

/// Relative error of an estimate against a reference value, |est-ref|/ref.
/// Falls back to the absolute error when the reference is zero.
double RelativeError(double estimate, double reference);

}  // namespace mcm

#endif  // MCM_COMMON_NUMERIC_H_
