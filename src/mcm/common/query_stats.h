// Per-query counters. `nodes_accessed` is the paper's I/O cost and
// `distance_computations` its CPU cost; the remaining fields feed the
// observability layer (src/mcm/obs/) and are filled by every index.

#ifndef MCM_COMMON_QUERY_STATS_H_
#define MCM_COMMON_QUERY_STATS_H_

#include <cstdint>

namespace mcm {

class QueryTrace;  // obs/trace.h; queries run without it by default.

/// Counters accumulated while executing one similarity query.
///
/// All indexes (M-tree, vp-tree, GNAT, linear scan) fill the first four
/// fields; `buffer_hits`/`buffer_misses` are nonzero only for page-backed
/// stores (PagedNodeStore), where they split `nodes_accessed` into pool
/// hits and physical PageFile reads.
struct QueryStats {
  uint64_t nodes_accessed = 0;         ///< I/O cost (node = one disk page).
  uint64_t distance_computations = 0;  ///< CPU cost.
  uint64_t nodes_pruned = 0;   ///< Subtrees eliminated without visiting them
                               ///< (covering-radius / parent-filter / k-NN
                               ///< bound / range-table / shell tests).
  uint64_t buffer_hits = 0;    ///< Node reads served from the buffer pool.
  uint64_t buffer_misses = 0;  ///< Node reads that hit the PageFile.

  /// When non-null, search paths record per-node events (visits, prune
  /// reasons, buffer fetches) into this trace. Owned by the caller; null
  /// (the default) keeps the query path free of observability work.
  QueryTrace* trace = nullptr;

  QueryStats& operator+=(const QueryStats& other) {
    nodes_accessed += other.nodes_accessed;
    distance_computations += other.distance_computations;
    nodes_pruned += other.nodes_pruned;
    buffer_hits += other.buffer_hits;
    buffer_misses += other.buffer_misses;
    return *this;
  }
};

/// Zeroes the counters of `st` while preserving an attached trace. Search
/// entry points use this instead of `*st = QueryStats{}` so callers can
/// attach a trace before issuing the query.
inline void ResetCounters(QueryStats* st) {
  QueryTrace* trace = st->trace;
  *st = QueryStats{};
  st->trace = trace;
}

}  // namespace mcm

#endif  // MCM_COMMON_QUERY_STATS_H_
