// Per-query counters. `nodes_accessed` is the paper's I/O cost and
// `distance_computations` its CPU cost.

#ifndef MCM_COMMON_QUERY_STATS_H_
#define MCM_COMMON_QUERY_STATS_H_

#include <cstdint>

namespace mcm {

/// Counters accumulated while executing one similarity query.
struct QueryStats {
  uint64_t nodes_accessed = 0;         ///< I/O cost (node = one disk page).
  uint64_t distance_computations = 0;  ///< CPU cost.

  QueryStats& operator+=(const QueryStats& other) {
    nodes_accessed += other.nodes_accessed;
    distance_computations += other.distance_computations;
    return *this;
  }
};

}  // namespace mcm

#endif  // MCM_COMMON_QUERY_STATS_H_
