// Per-query counters. `nodes_accessed` is the paper's I/O cost and
// `distance_computations` its CPU cost; the remaining fields feed the
// observability layer (src/mcm/obs/) and are filled by every index.

#ifndef MCM_COMMON_QUERY_STATS_H_
#define MCM_COMMON_QUERY_STATS_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace mcm {

class QueryTrace;    // obs/trace.h; queries run without it by default.
class PhaseSpanLog;  // obs/phase.h; spans recorded only when attached.

/// The named phases a query's wall-clock decomposes into. Used as indexes
/// into QueryStats::phase_ns and as span labels in the Chrome-trace export.
enum class QueryPhase : uint8_t {
  kPlan = 0,      ///< Access-path choice / cost-model evaluation.
  kTraverse,      ///< Index traversal driver (frontier push/pop, routing).
  kDistanceEval,  ///< Metric evaluations over a node's entries.
  kPageRead,      ///< Buffer-pool fetches (including physical reads).
  kDecode,        ///< Node deserialization from page bytes.
  kCollect,       ///< Result collection / final sort.
  kPrefetch,      ///< Readahead of contiguous child page runs.
};

/// Number of QueryPhase values (for per-phase tally arrays).
inline constexpr size_t kNumQueryPhases = 7;

const char* ToString(QueryPhase phase);

/// Counters accumulated while executing one similarity query.
///
/// All indexes (M-tree, vp-tree, GNAT, linear scan) fill the first four
/// fields; `buffer_hits`/`buffer_misses` are nonzero only for page-backed
/// stores (PagedNodeStore), where they split `nodes_accessed` into pool
/// hits and physical PageFile reads.
struct QueryStats {
  uint64_t nodes_accessed = 0;         ///< I/O cost (node = one disk page).
  uint64_t distance_computations = 0;  ///< CPU cost.
  uint64_t nodes_pruned = 0;   ///< Subtrees eliminated without visiting them
                               ///< (covering-radius / parent-filter / k-NN
                               ///< bound / range-table / shell tests).
  uint64_t buffer_hits = 0;    ///< Node reads served from the buffer pool.
  uint64_t buffer_misses = 0;  ///< Node reads that hit the PageFile.

  /// Metric evaluations skipped because a witness (an already-computed
  /// query distance paired with a stored object-to-witness distance) proved
  /// via the triangle inequality that the entry cannot qualify. Each such
  /// skip would have been one distance_computations increment.
  uint64_t distance_calcs_avoided_by_witness = 0;

  /// Per-phase wall-clock totals in nanoseconds, indexed by QueryPhase.
  /// Filled only when MCM_OBS is on; all-zero otherwise.
  std::array<uint64_t, kNumQueryPhases> phase_ns{};

  /// When non-null, search paths record per-node events (visits, prune
  /// reasons, buffer fetches) into this trace. Owned by the caller; null
  /// (the default) keeps the query path free of observability work.
  QueryTrace* trace = nullptr;

  /// When non-null (and MCM_OBS is on), phase timers append begin/end spans
  /// here for the Chrome-trace exporter. Owned by the caller.
  PhaseSpanLog* spans = nullptr;

  /// Nanoseconds spent in phase `p`.
  uint64_t PhaseNs(QueryPhase p) const {
    return phase_ns[static_cast<size_t>(p)];
  }

  /// Sum of all per-phase totals. Phases nest (kTraverse contains the
  /// distance-eval / page-read / decode spans it triggers), so this sum
  /// can exceed the query's wall time; compare individual phases instead.
  uint64_t TotalPhaseNs() const {
    uint64_t total = 0;
    for (uint64_t ns : phase_ns) total += ns;
    return total;
  }

  QueryStats& operator+=(const QueryStats& other) {
    nodes_accessed += other.nodes_accessed;
    distance_computations += other.distance_computations;
    nodes_pruned += other.nodes_pruned;
    buffer_hits += other.buffer_hits;
    buffer_misses += other.buffer_misses;
    distance_calcs_avoided_by_witness +=
        other.distance_calcs_avoided_by_witness;
    for (size_t i = 0; i < kNumQueryPhases; ++i) {
      phase_ns[i] += other.phase_ns[i];
    }
    return *this;
  }
};

/// Zeroes the counters of `st` while preserving an attached trace and span
/// log. Search entry points use this instead of `*st = QueryStats{}` so
/// callers can attach observers before issuing the query.
inline void ResetCounters(QueryStats* st) {
  QueryTrace* trace = st->trace;
  PhaseSpanLog* spans = st->spans;
  *st = QueryStats{};
  st->trace = trace;
  st->spans = spans;
}

}  // namespace mcm

#endif  // MCM_COMMON_QUERY_STATS_H_
