// Seedable random number utilities shared by dataset generators, index
// construction (promotion sampling), and the experiment harness.
//
// All randomized components in this library take an explicit 64-bit seed so
// that every experiment is exactly reproducible; nothing reads entropy from
// the environment.

#ifndef MCM_COMMON_RANDOM_H_
#define MCM_COMMON_RANDOM_H_

#include <cstdint>
#include <random>

namespace mcm {

/// Random engine used throughout the library. A Mersenne Twister is plenty
/// for simulation purposes and is available everywhere.
using RandomEngine = std::mt19937_64;

/// Derives an independent stream seed from a base seed and a stream index.
///
/// This is the SplitMix64 finalizer; it decorrelates seeds that differ in a
/// single bit, so callers can safely use `base + i` style stream derivation.
inline uint64_t DeriveSeed(uint64_t base, uint64_t stream) {
  uint64_t z = base + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Creates an engine for stream `stream` of experiment seed `base`.
inline RandomEngine MakeEngine(uint64_t base, uint64_t stream = 0) {
  return RandomEngine(DeriveSeed(base, stream));
}

/// Returns a uniform double in [0, 1).
inline double UniformUnit(RandomEngine& rng) {
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng);
}

/// Returns a uniform integer in [0, n).
inline size_t UniformIndex(RandomEngine& rng, size_t n) {
  return std::uniform_int_distribution<size_t>(0, n - 1)(rng);
}

}  // namespace mcm

#endif  // MCM_COMMON_RANDOM_H_
