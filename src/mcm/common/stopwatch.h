// Wall-clock stopwatch for the experiment harness. Delegates to the
// library's single clock seam (common/clock.h) so raw std::chrono timing
// stays lint-forbidden outside that header.

#ifndef MCM_COMMON_STOPWATCH_H_
#define MCM_COMMON_STOPWATCH_H_

#include <cstdint>

#include "mcm/common/clock.h"

namespace mcm {

/// Measures elapsed wall-clock time from construction (or the last Reset).
class Stopwatch {
 public:
  Stopwatch() : start_ns_(MonotonicNanos()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ns_ = MonotonicNanos(); }

  /// Elapsed nanoseconds since construction or the last Reset.
  uint64_t ElapsedNanos() const { return MonotonicNanos() - start_ns_; }

  /// Elapsed seconds since construction or the last Reset.
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

  /// Elapsed milliseconds since construction or the last Reset.
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }

 private:
  uint64_t start_ns_;
};

}  // namespace mcm

#endif  // MCM_COMMON_STOPWATCH_H_
