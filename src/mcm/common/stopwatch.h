// Wall-clock stopwatch for the experiment harness.

#ifndef MCM_COMMON_STOPWATCH_H_
#define MCM_COMMON_STOPWATCH_H_

#include <chrono>

namespace mcm {

/// Measures elapsed wall-clock time from construction (or the last Reset).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last Reset.
  double ElapsedMillis() const { return ElapsedSeconds() * 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mcm

#endif  // MCM_COMMON_STOPWATCH_H_
