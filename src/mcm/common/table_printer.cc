#include "mcm/common/table_printer.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace mcm {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& out) const {
  std::vector<size_t> width(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
    for (const auto& row : rows_) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << "  " << std::setw(static_cast<int>(width[c])) << row[c];
    }
    out << "\n";
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : width) total += w + 2;
  out << "  " << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string TablePrinter::Num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace mcm
