// Minimal aligned-table printer used by the benchmark harnesses to emit the
// rows/series of each paper table and figure in a readable, grep-able form.

#ifndef MCM_COMMON_TABLE_PRINTER_H_
#define MCM_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace mcm {

/// Collects rows of string cells and prints them with aligned columns.
///
/// Usage:
///   TablePrinter t({"D", "measured", "N-MCM", "err%"});
///   t.AddRow({"5", "12.3", "12.1", "1.6"});
///   t.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one data row; pads or truncates to the header width.
  void AddRow(std::vector<std::string> cells);

  /// Writes the table (header, separator, rows) to `out`.
  void Print(std::ostream& out) const;

  /// Formats a double with `precision` fractional digits.
  static std::string Num(double v, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mcm

#endif  // MCM_COMMON_TABLE_PRINTER_H_
