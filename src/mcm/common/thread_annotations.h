// Clang thread-safety-analysis capability annotations, compiled to nothing
// on every other toolchain. Annotating a class turns its locking discipline
// into compiler-checked documentation: `-Wthread-safety -Werror` (the
// MCM_THREAD_SAFETY CMake option / `clang-tsa` preset, verified by the
// `thread_safety_analysis` ctest) rejects any access to an MCM_GUARDED_BY
// member without the named capability held, any MCM_REQUIRES call without
// it, and any scope that acquires but never releases.
//
// The annotations only attach to capability types — std::mutex is not one
// under libstdc++ — so lock-bearing classes use mcm::Mutex / mcm::MutexLock
// (common/mutex.h), a zero-cost annotated wrapper over std::mutex.

#ifndef MCM_COMMON_THREAD_ANNOTATIONS_H_
#define MCM_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define MCM_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define MCM_THREAD_ANNOTATION_(x)  // no-op off clang
#endif

/// Marks a class as a capability (lockable) type; `name` appears in
/// diagnostics, e.g. MCM_CAPABILITY("mutex").
#define MCM_CAPABILITY(name) MCM_THREAD_ANNOTATION_(capability(name))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability (mcm::MutexLock).
#define MCM_SCOPED_CAPABILITY MCM_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define MCM_GUARDED_BY(x) MCM_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x` (the pointer itself
/// may be read freely).
#define MCM_PT_GUARDED_BY(x) MCM_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function that acquires the listed capabilities and holds them on return.
#define MCM_ACQUIRE(...) \
  MCM_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function that releases the listed capabilities.
#define MCM_RELEASE(...) \
  MCM_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function that acquires the capability when it returns `result`.
#define MCM_TRY_ACQUIRE(result, ...) \
  MCM_THREAD_ANNOTATION_(try_acquire_capability(result, __VA_ARGS__))

/// Callers must hold the listed capabilities; the function does not
/// acquire or release them.
#define MCM_REQUIRES(...) \
  MCM_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Callers must NOT hold the listed capabilities (deadlock prevention for
/// functions that acquire them internally).
#define MCM_EXCLUDES(...) MCM_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function returning a reference to the named capability.
#define MCM_RETURN_CAPABILITY(x) MCM_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function's locking cannot be expressed to the
/// analysis (document why at every use site).
#define MCM_NO_THREAD_SAFETY_ANALYSIS \
  MCM_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // MCM_COMMON_THREAD_ANNOTATIONS_H_
