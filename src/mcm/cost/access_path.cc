#include "mcm/cost/access_path.h"

namespace mcm {

double SequentialScanMs(const DiskCostParameters& params,
                        const SequentialScanProfile& profile) {
  return params.cpu_ms_per_distance *
             static_cast<double>(profile.num_objects) +
         params.position_ms +
         params.transfer_ms_per_kb *
             (static_cast<double>(profile.data_bytes) / 1024.0);
}

AccessPathDecision ChooseAccessPath(const DiskCostParameters& params,
                                    double index_dists, double index_nodes,
                                    size_t node_size_bytes,
                                    const SequentialScanProfile& profile) {
  AccessPathDecision decision;
  decision.index_ms =
      TotalCostMs(params, index_dists, index_nodes, node_size_bytes);
  decision.sequential_ms = SequentialScanMs(params, profile);
  decision.choice = decision.index_ms <= decision.sequential_ms
                        ? AccessPath::kIndexScan
                        : AccessPath::kSequentialScan;
  return decision;
}

}  // namespace mcm
