// Access-path selection: the optimizer decision the paper motivates in its
// introduction ("will make it possible to apply optimizers' technology to
// metric query processing too"). Given the cost model's prediction for an
// index execution and the device parameters of Section 4.1, decide whether
// the M-tree or a sequential scan of the data file answers a similarity
// query faster.
//
// A sequential scan computes the distance from the query to all n objects
// and reads the whole data file with one positioning plus a streaming
// transfer; the index pays one positioning per node it touches.

#ifndef MCM_COST_ACCESS_PATH_H_
#define MCM_COST_ACCESS_PATH_H_

#include <cstddef>
#include <vector>

#include "mcm/common/query_stats.h"
#include "mcm/cost/tuner.h"
#include "mcm/engine/metric_index.h"
#include "mcm/engine/search_core.h"

namespace mcm {

/// The two candidate execution strategies.
enum class AccessPath {
  kIndexScan,       ///< Descend the M-tree.
  kSequentialScan,  ///< Stream the data file, compare everything.
};

/// Cost breakdown of an access-path decision.
struct AccessPathDecision {
  AccessPath choice = AccessPath::kIndexScan;
  double index_ms = 0.0;
  double sequential_ms = 0.0;
};

/// Description of the base data file for the sequential alternative.
struct SequentialScanProfile {
  size_t num_objects = 0;  ///< n distance computations.
  size_t data_bytes = 0;   ///< Total bytes streamed from disk.
};

/// Predicted sequential-scan time: c_CPU * n + t_pos + bytes * t_trans.
double SequentialScanMs(const DiskCostParameters& params,
                        const SequentialScanProfile& profile);

/// Compares the model-predicted index execution (`index_dists` distance
/// computations, `index_nodes` node reads of `node_size_bytes` each — e.g.
/// from NodeBasedCostModel) against the sequential scan and returns the
/// cheaper plan.
AccessPathDecision ChooseAccessPath(const DiskCostParameters& params,
                                    double index_dists, double index_nodes,
                                    size_t node_size_bytes,
                                    const SequentialScanProfile& profile);

/// An executable access-path decision: the optimizer's choice bound to the
/// two physical operators it chose between. Instead of handing the caller
/// an enum to dispatch on, PlanQuery returns a plan whose RangeSearch /
/// KnnSearch route to the winning arm through the engine's common index
/// interface — both arms satisfy MetricIndex, so the plan is itself a
/// drop-in query interface (and can be handed to a BatchExecutor).
template <typename Index, typename Baseline>
  requires MetricIndex<Index> && MetricIndex<Baseline> &&
           std::same_as<typename Index::Object, typename Baseline::Object>
class ExecutablePlan {
 public:
  using Object = typename Index::Object;

  ExecutablePlan(AccessPathDecision decision, const Index* index,
                 const Baseline* baseline)
      : decision_(decision), index_(index), baseline_(baseline) {}

  std::vector<SearchResult<Object>> RangeSearch(
      const Object& query, double radius, QueryStats* stats = nullptr) const {
    return decision_.choice == AccessPath::kIndexScan
               ? index_->RangeSearch(query, radius, stats)
               : baseline_->RangeSearch(query, radius, stats);
  }

  std::vector<SearchResult<Object>> KnnSearch(const Object& query, size_t k,
                                              QueryStats* stats =
                                                  nullptr) const {
    return decision_.choice == AccessPath::kIndexScan
               ? index_->KnnSearch(query, k, stats)
               : baseline_->KnnSearch(query, k, stats);
  }

  size_t size() const {
    return decision_.choice == AccessPath::kIndexScan ? index_->size()
                                                      : baseline_->size();
  }

  const AccessPathDecision& decision() const { return decision_; }

 private:
  AccessPathDecision decision_;
  const Index* index_;
  const Baseline* baseline_;
};

/// Chooses the cheaper arm (ChooseAccessPath) and binds it to the physical
/// operators: the plan is ready to execute.
template <typename Index, typename Baseline>
ExecutablePlan<Index, Baseline> PlanQuery(
    const DiskCostParameters& params, double index_dists, double index_nodes,
    size_t node_size_bytes, const SequentialScanProfile& profile,
    const Index& index, const Baseline& baseline) {
  return ExecutablePlan<Index, Baseline>(
      ChooseAccessPath(params, index_dists, index_nodes, node_size_bytes,
                       profile),
      &index, &baseline);
}

}  // namespace mcm

#endif  // MCM_COST_ACCESS_PATH_H_
