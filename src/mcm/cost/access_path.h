// Access-path selection: the optimizer decision the paper motivates in its
// introduction ("will make it possible to apply optimizers' technology to
// metric query processing too"). Given the cost model's prediction for an
// index execution and the device parameters of Section 4.1, decide whether
// the M-tree or a sequential scan of the data file answers a similarity
// query faster.
//
// A sequential scan computes the distance from the query to all n objects
// and reads the whole data file with one positioning plus a streaming
// transfer; the index pays one positioning per node it touches.

#ifndef MCM_COST_ACCESS_PATH_H_
#define MCM_COST_ACCESS_PATH_H_

#include <cstddef>

#include "mcm/cost/tuner.h"

namespace mcm {

/// The two candidate execution strategies.
enum class AccessPath {
  kIndexScan,       ///< Descend the M-tree.
  kSequentialScan,  ///< Stream the data file, compare everything.
};

/// Cost breakdown of an access-path decision.
struct AccessPathDecision {
  AccessPath choice = AccessPath::kIndexScan;
  double index_ms = 0.0;
  double sequential_ms = 0.0;
};

/// Description of the base data file for the sequential alternative.
struct SequentialScanProfile {
  size_t num_objects = 0;  ///< n distance computations.
  size_t data_bytes = 0;   ///< Total bytes streamed from disk.
};

/// Predicted sequential-scan time: c_CPU * n + t_pos + bytes * t_trans.
double SequentialScanMs(const DiskCostParameters& params,
                        const SequentialScanProfile& profile);

/// Compares the model-predicted index execution (`index_dists` distance
/// computations, `index_nodes` node reads of `node_size_bytes` each — e.g.
/// from NodeBasedCostModel) against the sequential scan and returns the
/// cheaper plan.
AccessPathDecision ChooseAccessPath(const DiskCostParameters& params,
                                    double index_dists, double index_nodes,
                                    size_t node_size_bytes,
                                    const SequentialScanProfile& profile);

}  // namespace mcm

#endif  // MCM_COST_ACCESS_PATH_H_
