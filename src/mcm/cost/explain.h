// EXPLAIN driver: runs one range or k-NN query on an M-tree with full
// instrumentation (trace, phase spans, wall clock) and pairs the measured
// execution with the N-MCM / L-MCM predictions and the optimizer's
// access-path decision, producing an obs/explain.h report.
//
// The tree parameter is duck-typed (CollectStats / RangeSearch / KnnSearch
// / size / height / options / store) rather than constrained to MTree so
// this header introduces no cost/ -> mtree/ dependency; any index exposing
// the same statistics surface can be explained.
//
// The query always executes on the index, even when the optimizer picks
// the sequential scan — EXPLAIN's job is to show how the index execution
// compares to its prediction; the plan section reports what the optimizer
// would have chosen.

#ifndef MCM_COST_EXPLAIN_H_
#define MCM_COST_EXPLAIN_H_

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "mcm/common/stopwatch.h"
#include "mcm/cost/access_path.h"
#include "mcm/cost/lmcm.h"
#include "mcm/cost/nmcm.h"
#include "mcm/cost/witness_model.h"
#include "mcm/distribution/histogram.h"
#include "mcm/obs/explain.h"
#include "mcm/obs/phase.h"
#include "mcm/obs/telemetry.h"
#include "mcm/obs/trace.h"

namespace mcm {

/// Knobs of the explain driver.
struct ExplainOptions {
  /// Device parameters for the access-path decision (paper defaults).
  DiskCostParameters disk;
  /// Sequential-scan alternative. When num_objects == 0 it is derived from
  /// the tree: n objects, data_bytes = num_nodes * node_size (the paged
  /// file the index occupies — a fair streaming alternative).
  SequentialScanProfile seq_profile;
  size_t trace_capacity = QueryTrace::kDefaultCapacity;
  size_t span_capacity = PhaseSpanLog::kDefaultCapacity;
  size_t nn_grid_refinement = 8;
  /// Query id used for histogram exemplars and the Chrome-trace lane args.
  uint64_t query_id = 0;
};

namespace explain_internal {

inline void FillActuals(const QueryTrace& trace, ExplainReport* report) {
  const auto& levels = trace.levels();
  report->level_actuals.resize(
      std::max<size_t>(levels.size(), report->height));
  for (size_t l = 0; l < levels.size(); ++l) {
    auto& a = report->level_actuals[l];
    a.node_visits = levels[l].node_visits;
    a.distances = levels[l].distances;
    a.entries_scanned = levels[l].entries_scanned;
    a.entries_pruned = levels[l].entries_pruned;
    a.subtree_prunes = levels[l].subtree_prunes;
    a.witness_avoided = levels[l].witness_avoided;
  }
  report->prunes_by_reason = trace.prunes_by_reason();
  report->trace_dropped = trace.dropped();
}

template <typename Tree>
void FillShape(const Tree& tree, double d_plus, ExplainReport* report) {
  report->num_objects = tree.size();
  report->height = tree.height();
  report->num_nodes = tree.store().NumNodes();
  report->node_size_bytes = tree.options().node_size_bytes;
  report->d_plus = d_plus;
}

inline void FillPlan(const AccessPathDecision& decision,
                     ExplainReport* report) {
  report->access_path = decision.choice == AccessPath::kIndexScan
                            ? "index-scan"
                            : "sequential-scan";
  report->index_ms = decision.index_ms;
  report->sequential_ms = decision.sequential_ms;
}

template <typename Tree>
SequentialScanProfile ResolveProfile(const Tree& tree,
                                     const ExplainOptions& options) {
  SequentialScanProfile profile = options.seq_profile;
  if (profile.num_objects == 0) {
    profile.num_objects = tree.size();
    profile.data_bytes =
        tree.store().NumNodes() * tree.options().node_size_bytes;
  }
  return profile;
}

/// Runs `run` instrumented and merges the separately measured planning
/// time (ResetCounters inside the search entry point would wipe a kPlan
/// span recorded up front, so the driver times planning outside the query
/// and folds it in here).
template <typename RunFn>
void Execute(const RunFn& run, uint64_t plan_ns,
             const ExplainOptions& options, ExplainReport* report) {
  QueryTrace trace(options.trace_capacity);
  PhaseSpanLog spans(options.span_capacity);
  QueryStats stats;
  stats.trace = &trace;
  stats.spans = &spans;
  Stopwatch watch;
  report->num_results = run(&stats);
  report->latency_us = static_cast<double>(watch.ElapsedNanos()) / 1e3;
  stats.trace = nullptr;
  stats.spans = nullptr;
  stats.phase_ns[static_cast<size_t>(QueryPhase::kPlan)] += plan_ns;
  report->stats = stats;
  FillActuals(trace, report);
  ObservePhaseTimes(stats, options.query_id);
  TelemetrySink::Global().Submit(spans, options.query_id);
}

/// Trees that expose the engine's witness cascade state (MTree). The
/// witness-corrected prediction is only emitted for them, and only when
/// the cascade is installed and the capacity is positive.
template <typename Tree>
concept WitnessReportingTree = requires(const Tree& tree) {
  { tree.witness_capacity() } -> std::convertible_to<int>;
  { tree.cascade_installed() } -> std::convertible_to<bool>;
};

/// Appends the "nmcm.witness" prediction: N-MCM's per-level distance
/// expectations scaled by the witness-hit-rate correction at pruning bound
/// `bound` (the query radius, or the expected k-NN radius). Node reads are
/// unchanged — witnesses avoid metric evaluations, not node accesses.
template <typename Tree>
void AddWitnessPrediction(const Tree& tree, const DistanceHistogram& histogram,
                          const NodeBasedCostModel& nmcm, double bound,
                          const std::vector<double>& level_nodes,
                          const std::vector<double>& level_distances,
                          double nodes, ExplainReport* report) {
  if constexpr (WitnessReportingTree<Tree>) {
    if (!tree.cascade_installed() || tree.witness_capacity() <= 0) return;
    const WitnessCostModel witness_model(histogram, tree.witness_capacity());
    // Entries of a level-l internal node are pruned at bound + r(entry)
    // (their children live at level l+1); leaf entries at the bound
    // itself. The per-level aggregates carry the average child radius.
    const MTreeStatsView& stats = nmcm.stats();
    std::vector<double> level_bounds(level_distances.size(), bound);
    for (const LevelStatRecord& rec : stats.levels) {
      if (rec.level >= 2 && rec.level - 2 < level_bounds.size()) {
        level_bounds[rec.level - 2] = bound + rec.avg_covering_radius;
      }
    }
    std::vector<double> corrected =
        witness_model.CorrectLevelDistances(level_distances, level_bounds);
    double total = 0.0;
    for (double v : corrected) total += v;
    report->predictions.push_back(
        {"nmcm.witness", nodes, total, level_nodes, std::move(corrected)});
  } else {
    (void)tree;
    (void)histogram;
    (void)nmcm;
  }
}

}  // namespace explain_internal

/// Explains range(Q, radius) on `tree`. `histogram` is the sampled
/// distance distribution F̂ⁿ and `d_plus` the BRM bound (the root's
/// conventional covering radius, footnote 1).
template <typename Tree>
ExplainReport ExplainRange(const Tree& tree,
                           const DistanceHistogram& histogram, double d_plus,
                           const typename Tree::Object& query, double radius,
                           const ExplainOptions& options = {}) {
  ExplainReport report;
  report.kind = "range";
  report.radius = radius;
  explain_internal::FillShape(tree, d_plus, &report);

  Stopwatch plan_watch;
  NodeBasedCostModel nmcm(histogram, tree.CollectStats(d_plus),
                          options.nn_grid_refinement);
  LevelBasedCostModel lmcm(histogram, nmcm.stats(),
                           options.nn_grid_refinement);
  report.predictions.push_back(
      {"nmcm", nmcm.RangeNodes(radius), nmcm.RangeDistances(radius),
       nmcm.RangeNodesPerLevel(radius), nmcm.RangeDistancesPerLevel(radius)});
  report.predictions.push_back(
      {"lmcm", lmcm.RangeNodes(radius), lmcm.RangeDistances(radius),
       lmcm.RangeNodesPerLevel(radius), lmcm.RangeDistancesPerLevel(radius)});
  explain_internal::AddWitnessPrediction(
      tree, histogram, nmcm, radius, report.predictions[0].level_nodes,
      report.predictions[0].level_distances, report.predictions[0].nodes,
      &report);
  const AccessPathDecision decision = ChooseAccessPath(
      options.disk, report.predictions[0].distances,
      report.predictions[0].nodes, report.node_size_bytes,
      explain_internal::ResolveProfile(tree, options));
  const uint64_t plan_ns = plan_watch.ElapsedNanos();
  explain_internal::FillPlan(decision, &report);

  explain_internal::Execute(
      [&](QueryStats* st) {
        return tree.RangeSearch(query, radius, st).size();
      },
      plan_ns, options, &report);
  return report;
}

/// Explains NN(Q, k) on `tree`.
template <typename Tree>
ExplainReport ExplainKnn(const Tree& tree, const DistanceHistogram& histogram,
                         double d_plus, const typename Tree::Object& query,
                         size_t k, const ExplainOptions& options = {}) {
  ExplainReport report;
  report.kind = "knn";
  report.k = k;
  explain_internal::FillShape(tree, d_plus, &report);

  Stopwatch plan_watch;
  NodeBasedCostModel nmcm(histogram, tree.CollectStats(d_plus),
                          options.nn_grid_refinement);
  LevelBasedCostModel lmcm(histogram, nmcm.stats(),
                           options.nn_grid_refinement);
  report.predictions.push_back({"nmcm", nmcm.NnNodes(k), nmcm.NnDistances(k),
                                nmcm.NnNodesPerLevel(k),
                                nmcm.NnDistancesPerLevel(k)});
  report.predictions.push_back({"lmcm", lmcm.NnNodes(k), lmcm.NnDistances(k),
                                lmcm.NnNodesPerLevel(k),
                                lmcm.NnDistancesPerLevel(k)});
  explain_internal::AddWitnessPrediction(
      tree, histogram, nmcm, nmcm.nn_model().ExpectedNnDistance(k),
      report.predictions[0].level_nodes,
      report.predictions[0].level_distances, report.predictions[0].nodes,
      &report);
  const AccessPathDecision decision = ChooseAccessPath(
      options.disk, report.predictions[0].distances,
      report.predictions[0].nodes, report.node_size_bytes,
      explain_internal::ResolveProfile(tree, options));
  const uint64_t plan_ns = plan_watch.ElapsedNanos();
  explain_internal::FillPlan(decision, &report);

  explain_internal::Execute(
      [&](QueryStats* st) { return tree.KnnSearch(query, k, st).size(); },
      plan_ns, options, &report);
  return report;
}

}  // namespace mcm

#endif  // MCM_COST_EXPLAIN_H_
