#include "mcm/cost/lmcm.h"

#include <stdexcept>

namespace mcm {

LevelBasedCostModel::LevelBasedCostModel(const DistanceHistogram& histogram,
                                         std::vector<LevelStatRecord> levels,
                                         size_t num_objects,
                                         size_t nn_grid_refinement)
    : histogram_(histogram),
      levels_(std::move(levels)),
      num_objects_(num_objects),
      nn_model_(histogram_, num_objects, nn_grid_refinement) {
  if (levels_.empty()) {
    throw std::invalid_argument("LevelBasedCostModel: no level statistics");
  }
  for (size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i].level != i + 1) {
      throw std::invalid_argument(
          "LevelBasedCostModel: levels must be contiguous from 1");
    }
  }
}

LevelBasedCostModel::LevelBasedCostModel(const DistanceHistogram& histogram,
                                         const MTreeStatsView& stats,
                                         size_t nn_grid_refinement)
    : LevelBasedCostModel(histogram, stats.levels, stats.num_objects,
                          nn_grid_refinement) {}

double LevelBasedCostModel::RangeNodes(double query_radius) const {
  double total = 0.0;
  for (const auto& level : levels_) {
    total += static_cast<double>(level.num_nodes) *
             histogram_.Cdf(level.avg_covering_radius + query_radius);
  }
  return total;
}

std::vector<double> LevelBasedCostModel::RangeNodesPerLevel(
    double query_radius) const {
  std::vector<double> per_level(levels_.size(), 0.0);
  for (size_t l = 0; l < levels_.size(); ++l) {
    per_level[l] =
        static_cast<double>(levels_[l].num_nodes) *
        histogram_.Cdf(levels_[l].avg_covering_radius + query_radius);
  }
  return per_level;
}

double LevelBasedCostModel::RangeDistances(double query_radius) const {
  double total = 0.0;
  for (size_t l = 0; l < levels_.size(); ++l) {
    // M_{l+1}: nodes one level below, or n below the leaves (Eq. 16).
    const double entries_below =
        l + 1 < levels_.size()
            ? static_cast<double>(levels_[l + 1].num_nodes)
            : static_cast<double>(num_objects_);
    total += entries_below *
             histogram_.Cdf(levels_[l].avg_covering_radius + query_radius);
  }
  return total;
}

std::vector<double> LevelBasedCostModel::RangeDistancesPerLevel(
    double query_radius) const {
  std::vector<double> per_level(levels_.size(), 0.0);
  for (size_t l = 0; l < levels_.size(); ++l) {
    const double entries_below =
        l + 1 < levels_.size()
            ? static_cast<double>(levels_[l + 1].num_nodes)
            : static_cast<double>(num_objects_);
    per_level[l] =
        entries_below *
        histogram_.Cdf(levels_[l].avg_covering_radius + query_radius);
  }
  return per_level;
}

double LevelBasedCostModel::RangeObjects(double query_radius) const {
  return static_cast<double>(num_objects_) * histogram_.Cdf(query_radius);
}

double LevelBasedCostModel::NnNodes(size_t k) const {
  return nn_model_.IntegrateAgainstNnDensity(
      [this](double r) { return RangeNodes(r); }, k);
}

double LevelBasedCostModel::NnDistances(size_t k) const {
  return nn_model_.IntegrateAgainstNnDensity(
      [this](double r) { return RangeDistances(r); }, k);
}

std::vector<double> LevelBasedCostModel::NnNodesPerLevel(size_t k) const {
  std::vector<double> per_level(levels_.size(), 0.0);
  for (size_t idx = 0; idx < per_level.size(); ++idx) {
    per_level[idx] = nn_model_.IntegrateAgainstNnDensity(
        [this, idx](double r) {
          const auto levels = RangeNodesPerLevel(r);
          return idx < levels.size() ? levels[idx] : 0.0;
        },
        k);
  }
  return per_level;
}

std::vector<double> LevelBasedCostModel::NnDistancesPerLevel(
    size_t k) const {
  std::vector<double> per_level(levels_.size(), 0.0);
  for (size_t idx = 0; idx < per_level.size(); ++idx) {
    per_level[idx] = nn_model_.IntegrateAgainstNnDensity(
        [this, idx](double r) {
          const auto levels = RangeDistancesPerLevel(r);
          return idx < levels.size() ? levels[idx] : 0.0;
        },
        k);
  }
  return per_level;
}

}  // namespace mcm
