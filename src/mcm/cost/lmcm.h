// L-MCM — the Level-based Metric Cost Model (Section 3.2). A simplified
// N-MCM that keeps only O(height) statistics per tree: the node count M_l
// and the average covering radius r̄_l of each level (root = level 1,
// leaves = level L).

#ifndef MCM_COST_LMCM_H_
#define MCM_COST_LMCM_H_

#include <cstddef>
#include <vector>

#include "mcm/cost/nn_distance.h"
#include "mcm/cost/tree_stats.h"
#include "mcm/distribution/histogram.h"

namespace mcm {

class LevelBasedCostModel {
 public:
  /// `levels` must be sorted by level (1 = root) and carry the footnote-1
  /// convention (root level radius = d⁺); `num_objects` is n = M_{L+1}.
  LevelBasedCostModel(const DistanceHistogram& histogram,
                      std::vector<LevelStatRecord> levels, size_t num_objects,
                      size_t nn_grid_refinement = 8);

  /// Convenience: extracts the level records from a full stats view.
  LevelBasedCostModel(const DistanceHistogram& histogram,
                      const MTreeStatsView& stats,
                      size_t nn_grid_refinement = 8);

  /// Eq. 15: nodes(range) ≈ Σ_l M_l · F(r̄_l + r_Q).
  double RangeNodes(double query_radius) const;

  /// Eq. 15 split by level: element l-1 is M_l · F(r̄_l + r_Q). Sums to
  /// RangeNodes(). Feeds per-level residual tracking (obs/residual.h).
  std::vector<double> RangeNodesPerLevel(double query_radius) const;

  /// Eq. 16: dists(range) ≈ Σ_l M_{l+1} · F(r̄_l + r_Q), M_{L+1} = n.
  double RangeDistances(double query_radius) const;

  /// Eq. 16 split by level: element l-1 is M_{l+1} · F(r̄_l + r_Q) — the
  /// distances computed over entries of level-l nodes. Sums to
  /// RangeDistances(). Feeds the EXPLAIN per-level table.
  std::vector<double> RangeDistancesPerLevel(double query_radius) const;

  /// Eq. 8 (same as N-MCM): objs(range) = n · F(r_Q).
  double RangeObjects(double query_radius) const;

  /// Eq. 17 generalized to any k: expected node reads of NN(Q, k).
  double NnNodes(size_t k) const;

  /// Eq. 18 generalized to any k: expected distance computations.
  double NnDistances(size_t k) const;

  /// Per-level versions of NnNodes / NnDistances: the range-query
  /// per-level expectations integrated against the k-NN radius density.
  std::vector<double> NnNodesPerLevel(size_t k) const;
  std::vector<double> NnDistancesPerLevel(size_t k) const;

  const NnDistanceModel& nn_model() const { return nn_model_; }
  const std::vector<LevelStatRecord>& levels() const { return levels_; }

 private:
  DistanceHistogram histogram_;
  std::vector<LevelStatRecord> levels_;
  size_t num_objects_;
  NnDistanceModel nn_model_;
};

}  // namespace mcm

#endif  // MCM_COST_LMCM_H_
