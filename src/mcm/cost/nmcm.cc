#include "mcm/cost/nmcm.h"

namespace mcm {

NodeBasedCostModel::NodeBasedCostModel(const DistanceHistogram& histogram,
                                       MTreeStatsView stats,
                                       size_t nn_grid_refinement)
    : histogram_(histogram),
      stats_(std::move(stats)),
      nn_model_(histogram_, stats_.num_objects, nn_grid_refinement) {}

double NodeBasedCostModel::RangeNodes(double query_radius) const {
  double total = 0.0;
  for (const auto& node : stats_.nodes) {
    total += histogram_.Cdf(node.covering_radius + query_radius);
  }
  return total;
}

std::vector<double> NodeBasedCostModel::RangeNodesPerLevel(
    double query_radius) const {
  std::vector<double> per_level(stats_.height, 0.0);
  for (const auto& node : stats_.nodes) {
    const size_t idx = node.level == 0 ? 0 : node.level - 1;
    if (idx >= per_level.size()) {
      per_level.resize(idx + 1, 0.0);
    }
    per_level[idx] += histogram_.Cdf(node.covering_radius + query_radius);
  }
  return per_level;
}

double NodeBasedCostModel::RangeDistances(double query_radius) const {
  double total = 0.0;
  for (const auto& node : stats_.nodes) {
    total += static_cast<double>(node.num_entries) *
             histogram_.Cdf(node.covering_radius + query_radius);
  }
  return total;
}

std::vector<double> NodeBasedCostModel::RangeDistancesPerLevel(
    double query_radius) const {
  std::vector<double> per_level(stats_.height, 0.0);
  for (const auto& node : stats_.nodes) {
    const size_t idx = node.level == 0 ? 0 : node.level - 1;
    if (idx >= per_level.size()) {
      per_level.resize(idx + 1, 0.0);
    }
    per_level[idx] += static_cast<double>(node.num_entries) *
                      histogram_.Cdf(node.covering_radius + query_radius);
  }
  return per_level;
}

double NodeBasedCostModel::RangeObjects(double query_radius) const {
  return static_cast<double>(stats_.num_objects) *
         histogram_.Cdf(query_radius);
}

namespace {

/// Combined access/match probability from per-predicate probabilities.
double CombineProbability(const std::vector<double>& probabilities,
                          bool conjunctive) {
  double product = 1.0;
  if (conjunctive) {
    for (double p : probabilities) product *= p;
    return product;
  }
  for (double p : probabilities) product *= 1.0 - p;
  return 1.0 - product;
}

}  // namespace

double NodeBasedCostModel::ComplexRangeNodes(const std::vector<double>& radii,
                                             bool conjunctive) const {
  double total = 0.0;
  std::vector<double> probs(radii.size());
  for (const auto& node : stats_.nodes) {
    for (size_t j = 0; j < radii.size(); ++j) {
      probs[j] = histogram_.Cdf(node.covering_radius + radii[j]);
    }
    total += CombineProbability(probs, conjunctive);
  }
  return total;
}

double NodeBasedCostModel::ComplexRangeDistances(
    const std::vector<double>& radii, bool conjunctive) const {
  double total = 0.0;
  std::vector<double> probs(radii.size());
  for (const auto& node : stats_.nodes) {
    for (size_t j = 0; j < radii.size(); ++j) {
      probs[j] = histogram_.Cdf(node.covering_radius + radii[j]);
    }
    total += static_cast<double>(node.num_entries) *
             static_cast<double>(radii.size()) *
             CombineProbability(probs, conjunctive);
  }
  return total;
}

double NodeBasedCostModel::ComplexRangeObjects(
    const std::vector<double>& radii, bool conjunctive) const {
  std::vector<double> probs(radii.size());
  for (size_t j = 0; j < radii.size(); ++j) {
    probs[j] = histogram_.Cdf(radii[j]);
  }
  return static_cast<double>(stats_.num_objects) *
         CombineProbability(probs, conjunctive);
}

double NodeBasedCostModel::NnNodes(size_t k) const {
  return nn_model_.IntegrateAgainstNnDensity(
      [this](double r) { return RangeNodes(r); }, k);
}

double NodeBasedCostModel::NnDistances(size_t k) const {
  return nn_model_.IntegrateAgainstNnDensity(
      [this](double r) { return RangeDistances(r); }, k);
}

std::vector<double> NodeBasedCostModel::NnNodesPerLevel(size_t k) const {
  std::vector<double> per_level(stats_.height, 0.0);
  for (size_t idx = 0; idx < per_level.size(); ++idx) {
    per_level[idx] = nn_model_.IntegrateAgainstNnDensity(
        [this, idx](double r) {
          const auto levels = RangeNodesPerLevel(r);
          return idx < levels.size() ? levels[idx] : 0.0;
        },
        k);
  }
  return per_level;
}

std::vector<double> NodeBasedCostModel::NnDistancesPerLevel(size_t k) const {
  std::vector<double> per_level(stats_.height, 0.0);
  for (size_t idx = 0; idx < per_level.size(); ++idx) {
    per_level[idx] = nn_model_.IntegrateAgainstNnDensity(
        [this, idx](double r) {
          const auto levels = RangeDistancesPerLevel(r);
          return idx < levels.size() ? levels[idx] : 0.0;
        },
        k);
  }
  return per_level;
}

}  // namespace mcm
