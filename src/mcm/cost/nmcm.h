// N-MCM — the Node-based Metric Cost Model (Section 3.1), the paper's
// primary contribution. Predicts I/O (node reads) and CPU (distance
// computations) costs of range and k-NN queries on an M-tree from
//   * the sampled distance distribution F̂ⁿ, and
//   * per-node statistics (covering radius r(N_i), entry count e(N_i)).

#ifndef MCM_COST_NMCM_H_
#define MCM_COST_NMCM_H_

#include <cstddef>
#include <vector>

#include "mcm/cost/nn_distance.h"
#include "mcm/cost/tree_stats.h"
#include "mcm/distribution/histogram.h"

namespace mcm {

class NodeBasedCostModel {
 public:
  /// Both arguments are copied into the model. `stats` must carry the
  /// footnote-1 convention (root covering radius = d⁺), as produced by
  /// MTree::CollectStats(d_plus).
  NodeBasedCostModel(const DistanceHistogram& histogram, MTreeStatsView stats,
                     size_t nn_grid_refinement = 8);

  /// Eq. 6: nodes(range(Q, r_Q)) = Σ_i F(r(N_i) + r_Q).
  double RangeNodes(double query_radius) const;

  /// Eq. 6 split by tree level: element l-1 is the expected node reads at
  /// level l (root = 1). Sums to RangeNodes(). Feeds the observability
  /// layer's per-level residual tracking (obs/residual.h).
  std::vector<double> RangeNodesPerLevel(double query_radius) const;

  /// Eq. 7: dists(range(Q, r_Q)) = Σ_i e(N_i) · F(r(N_i) + r_Q).
  double RangeDistances(double query_radius) const;

  /// Eq. 7 split by tree level: element l-1 is the expected distance
  /// computations over entries of level-l nodes. Sums to RangeDistances().
  /// Feeds the EXPLAIN report's per-level predicted-vs-actual table.
  std::vector<double> RangeDistancesPerLevel(double query_radius) const;

  /// Eq. 8: objs(range(Q, r_Q)) = n · F(r_Q).
  double RangeObjects(double query_radius) const;

  /// Complex-query extension (paper future-work #3, EDBT'98 [11]):
  /// expected node reads of a multi-predicate range query with radii
  /// `radii`, combined conjunctively (AND) or disjunctively (OR). Assumes
  /// the per-predicate node distances are independent, so
  ///   Pr{access | AND} = Π_j F(r(N)+r_j),
  ///   Pr{access | OR}  = 1 − Π_j (1 − F(r(N)+r_j)).
  double ComplexRangeNodes(const std::vector<double>& radii,
                           bool conjunctive) const;

  /// Expected distance computations of a complex range query: every entry
  /// of an accessed node is compared against all |radii| predicates.
  double ComplexRangeDistances(const std::vector<double>& radii,
                               bool conjunctive) const;

  /// Expected result cardinality of a complex range query:
  /// n·Π F(r_j) (AND) or n·(1 − Π(1 − F(r_j))) (OR).
  double ComplexRangeObjects(const std::vector<double>& radii,
                             bool conjunctive) const;

  /// Expected node reads of NN(Q, k): ∫ nodes(range(Q,r)) p_{Q,k}(r) dr.
  double NnNodes(size_t k) const;

  /// Expected distance computations of NN(Q, k).
  double NnDistances(size_t k) const;

  /// Per-level versions of NnNodes / NnDistances: the range-query
  /// per-level expectations integrated against the k-NN radius density.
  std::vector<double> NnNodesPerLevel(size_t k) const;
  std::vector<double> NnDistancesPerLevel(size_t k) const;

  const NnDistanceModel& nn_model() const { return nn_model_; }
  const MTreeStatsView& stats() const { return stats_; }

 private:
  DistanceHistogram histogram_;
  MTreeStatsView stats_;
  NnDistanceModel nn_model_;
};

}  // namespace mcm

#endif  // MCM_COST_NMCM_H_
