#include "mcm/cost/nn_distance.h"

#include <stdexcept>

#include "mcm/common/numeric.h"

namespace mcm {

NnDistanceModel::NnDistanceModel(const DistanceHistogram& histogram, size_t n,
                                 size_t grid_refinement)
    : histogram_(histogram), n_(n) {
  if (n == 0) {
    throw std::invalid_argument("NnDistanceModel: n must be > 0");
  }
  if (grid_refinement == 0) {
    throw std::invalid_argument("NnDistanceModel: refinement must be > 0");
  }
  const size_t points = histogram_.num_bins() * grid_refinement + 1;
  grid_.resize(points);
  const double step =
      histogram_.d_plus() / static_cast<double>(points - 1);
  for (size_t i = 0; i < points; ++i) {
    grid_[i] = step * static_cast<double>(i);
  }
  grid_.back() = histogram_.d_plus();
}

double NnDistanceModel::ProbNnWithin(double r, size_t k) const {
  if (k == 0) {
    throw std::invalid_argument("NnDistanceModel: k must be >= 1");
  }
  if (k > n_) {
    return 0.0;  // Fewer than k objects exist.
  }
  return 1.0 - BinomialLowerTail(n_, k, histogram_.Cdf(r));
}

double NnDistanceModel::ExpectedNnDistance(size_t k) const {
  // E[nn] = d⁺ − ∫₀^{d⁺} P_{Q,k}(r) dr  (Eq. 11).
  std::vector<double> values(grid_.size());
  for (size_t i = 0; i < grid_.size(); ++i) {
    values[i] = ProbNnWithin(grid_[i], k);
  }
  const double dx = grid_[1] - grid_[0];
  return histogram_.d_plus() - TrapezoidIntegrate(values, dx);
}

double NnDistanceModel::RadiusForExpectedObjects(double count) const {
  if (count <= 0.0) {
    return 0.0;
  }
  const double p = count / static_cast<double>(n_);
  if (p >= 1.0) {
    return histogram_.d_plus();
  }
  return histogram_.Quantile(p);
}

double NnDistanceModel::IntegrateAgainstNnDensity(
    const std::function<double(double)>& g, size_t k) const {
  double total = 0.0;
  double p_lo = ProbNnWithin(grid_.front(), k);
  for (size_t i = 0; i + 1 < grid_.size(); ++i) {
    const double p_hi = ProbNnWithin(grid_[i + 1], k);
    const double mass = p_hi - p_lo;
    if (mass > 0.0) {
      total += g(0.5 * (grid_[i] + grid_[i + 1])) * mass;
    }
    p_lo = p_hi;
  }
  return total;
}

}  // namespace mcm
