// Nearest-neighbor distance model (Section 3.1, Eqs. 9-14): the
// distribution of the distance between a query object and its k-th nearest
// neighbor, derived solely from the overall distance distribution F and the
// dataset size n. Also provides the numeric machinery shared by both cost
// models: integration of an arbitrary cost function against the k-NN
// distance density.

#ifndef MCM_COST_NN_DISTANCE_H_
#define MCM_COST_NN_DISTANCE_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "mcm/distribution/histogram.h"

namespace mcm {

/// Model of nn_{Q,k}, the k-th NN distance of a random query object, under
/// Assumption 1 (F_Q ≈ F̂ⁿ).
class NnDistanceModel {
 public:
  /// `histogram` is copied; `n` is the number of indexed objects;
  /// `grid_refinement` subdivides each histogram bin for the integrals.
  NnDistanceModel(const DistanceHistogram& histogram, size_t n,
                  size_t grid_refinement = 8);

  /// P_{Q,k}(r) (Eq. 9): probability that at least k objects lie within
  /// distance r of the query.
  double ProbNnWithin(double r, size_t k) const;

  /// E[nn_{Q,k}] (Eq. 11): expected k-th NN distance,
  /// d⁺ − ∫ P_{Q,k}(r) dr.
  double ExpectedNnDistance(size_t k) const;

  /// r(c): the smallest radius whose expected result size n·F(r) reaches
  /// `count` (the paper's r(1) estimator uses count = 1).
  double RadiusForExpectedObjects(double count) const;

  /// ∫ g(r) p_{Q,k}(r) dr, evaluated as Σ g(mid) · ΔP over a fine grid —
  /// using exact probability masses of P instead of the density (Eq. 10)
  /// keeps the computation stable for n up to 10⁶.
  double IntegrateAgainstNnDensity(const std::function<double(double)>& g,
                                   size_t k) const;

  size_t n() const { return n_; }
  const DistanceHistogram& histogram() const { return histogram_; }
  const std::vector<double>& grid() const { return grid_; }

 private:
  DistanceHistogram histogram_;
  size_t n_;
  std::vector<double> grid_;  ///< Uniform r-grid over [0, d⁺].
};

}  // namespace mcm

#endif  // MCM_COST_NN_DISTANCE_H_
