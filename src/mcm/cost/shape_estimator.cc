#include "mcm/cost/shape_estimator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mcm {

std::vector<LevelStatRecord> EstimateTreeShape(
    const DistanceHistogram& histogram, size_t n,
    const ShapeEstimatorOptions& options) {
  if (n == 0) {
    throw std::invalid_argument("EstimateTreeShape: n must be > 0");
  }
  if (options.leaf_entry_bytes == 0 || options.routing_entry_bytes == 0) {
    throw std::invalid_argument("EstimateTreeShape: entry sizes required");
  }
  if (options.node_size_bytes <= options.node_header_bytes) {
    throw std::invalid_argument("EstimateTreeShape: node size too small");
  }
  const double usable = options.fill_factor *
                        static_cast<double>(options.node_size_bytes -
                                            options.node_header_bytes);
  const double leaf_fanout = std::max(
      1.0, usable / static_cast<double>(options.leaf_entry_bytes));
  const double internal_fanout = std::max(
      2.0, usable / static_cast<double>(options.routing_entry_bytes));

  // Node counts from the leaves upward until a single (root) node remains.
  std::vector<size_t> counts;  // counts[0] = leaves.
  size_t nodes = static_cast<size_t>(
      std::ceil(static_cast<double>(n) / leaf_fanout));
  nodes = std::max<size_t>(nodes, 1);
  counts.push_back(nodes);
  while (nodes > 1) {
    nodes = static_cast<size_t>(
        std::ceil(static_cast<double>(nodes) / internal_fanout));
    nodes = std::max<size_t>(nodes, 1);
    counts.push_back(nodes);
  }

  // Emit root-first records with the radius heuristic r̄_l = F⁻¹(1/M_l).
  const size_t height = counts.size();
  std::vector<LevelStatRecord> levels(height);
  for (size_t l = 0; l < height; ++l) {
    LevelStatRecord& rec = levels[l];
    rec.level = static_cast<uint32_t>(l + 1);
    const size_t count = counts[height - 1 - l];
    rec.num_nodes = count;
    if (l == 0) {
      rec.avg_covering_radius = histogram.d_plus();  // Footnote 1.
    } else {
      rec.avg_covering_radius =
          histogram.Quantile(std::min(1.0, 1.0 / static_cast<double>(count)));
    }
    rec.avg_entries =
        l + 1 < height
            ? static_cast<double>(counts[height - 2 - l]) /
                  static_cast<double>(count)
            : static_cast<double>(n) / static_cast<double>(count);
  }
  return levels;
}

}  // namespace mcm
