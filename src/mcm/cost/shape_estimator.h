// Tree-shape estimator — the paper's first "future work" item: a cost model
// that needs NO tree statistics, only the distance distribution. It
// predicts, from F̂ⁿ and the node capacity alone, the per-level statistics
// (M_l, r̄_l) that L-MCM consumes:
//   * M_L = ⌈n / c_leaf⌉ with c_leaf the expected leaf fanout at the
//     assumed fill factor, and M_{l-1} = ⌈M_l / c_int⌉ upward to the root;
//   * r̄_l from the correlation between covering radii and F: a level-l node
//     covers ≈ n/M_l objects, so its radius is estimated as the distance
//     within which a random viewpoint sees that fraction of the data,
//     r̄_l ≈ F⁻¹(1 / M_l)  (root: d⁺, footnote 1).
// bench/ext_ablations validates this against actual bulk-loaded trees.

#ifndef MCM_COST_SHAPE_ESTIMATOR_H_
#define MCM_COST_SHAPE_ESTIMATOR_H_

#include <cstddef>
#include <vector>

#include "mcm/cost/tree_stats.h"
#include "mcm/distribution/histogram.h"

namespace mcm {

/// Inputs describing the physical node layout.
struct ShapeEstimatorOptions {
  size_t node_size_bytes = 4096;
  size_t node_header_bytes = 5;    ///< MTreeNode::HeaderSize().
  size_t leaf_entry_bytes = 0;     ///< Serialized leaf entry size.
  size_t routing_entry_bytes = 0;  ///< Serialized routing entry size.
  double fill_factor = 0.75;       ///< Expected average node utilization.
};

/// Predicts the per-level statistics of a bulk-loaded M-tree over `n`
/// objects with distance distribution `histogram`, without building it.
/// The result feeds directly into LevelBasedCostModel.
std::vector<LevelStatRecord> EstimateTreeShape(
    const DistanceHistogram& histogram, size_t n,
    const ShapeEstimatorOptions& options);

}  // namespace mcm

#endif  // MCM_COST_SHAPE_ESTIMATOR_H_
