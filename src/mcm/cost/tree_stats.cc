#include "mcm/cost/tree_stats.h"

#include <algorithm>
#include <map>

namespace mcm {

std::vector<LevelStatRecord> AggregateLevels(
    const std::vector<NodeStatRecord>& nodes) {
  std::map<uint32_t, LevelStatRecord> by_level;
  for (const auto& node : nodes) {
    LevelStatRecord& rec = by_level[node.level];
    rec.level = node.level;
    rec.num_nodes += 1;
    rec.avg_covering_radius += node.covering_radius;
    rec.avg_entries += static_cast<double>(node.num_entries);
  }
  std::vector<LevelStatRecord> levels;
  levels.reserve(by_level.size());
  for (auto& [level, rec] : by_level) {
    rec.avg_covering_radius /= static_cast<double>(rec.num_nodes);
    rec.avg_entries /= static_cast<double>(rec.num_nodes);
    levels.push_back(rec);
  }
  std::sort(levels.begin(), levels.end(),
            [](const LevelStatRecord& a, const LevelStatRecord& b) {
              return a.level < b.level;
            });
  return levels;
}

}  // namespace mcm
