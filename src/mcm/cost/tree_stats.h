// Index statistics consumed by the cost models.
//
// N-MCM needs one record per node (covering radius r(N_i) and entry count
// e(N_i)); L-MCM only the per-level aggregates (M_l, r̄_l). Levels follow
// the paper's numbering: root = level 1, leaves = level L. The root has no
// covering radius of its own, so footnote 1 applies: r(root) = d⁺.

#ifndef MCM_COST_TREE_STATS_H_
#define MCM_COST_TREE_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mcm {

/// Statistics of a single index node.
struct NodeStatRecord {
  uint32_t level = 1;           ///< 1 = root, L = leaves.
  double covering_radius = 0.0; ///< r(N); d⁺ for the root (footnote 1).
  uint32_t num_entries = 0;     ///< e(N).
  bool is_leaf = false;
};

/// Per-level aggregates used by L-MCM.
struct LevelStatRecord {
  uint32_t level = 1;
  size_t num_nodes = 0;           ///< M_l.
  double avg_covering_radius = 0; ///< r̄_l.
  double avg_entries = 0;
};

/// Full statistics snapshot of an M-tree.
struct MTreeStatsView {
  size_t num_objects = 0;  ///< n.
  uint32_t height = 0;     ///< L (number of levels).
  std::vector<NodeStatRecord> nodes;    ///< One record per node (N-MCM).
  std::vector<LevelStatRecord> levels;  ///< One record per level (L-MCM).

  size_t num_nodes() const { return nodes.size(); }
};

/// Computes the per-level aggregates from per-node records.
std::vector<LevelStatRecord> AggregateLevels(
    const std::vector<NodeStatRecord>& nodes);

}  // namespace mcm

#endif  // MCM_COST_TREE_STATS_H_
