#include "mcm/cost/tuner.h"

#include <limits>
#include <stdexcept>

namespace mcm {

double IoCostMs(const DiskCostParameters& params, size_t node_size_bytes) {
  return params.position_ms +
         params.transfer_ms_per_kb *
             (static_cast<double>(node_size_bytes) / 1024.0);
}

double TotalCostMs(const DiskCostParameters& params, double dists,
                   double nodes, size_t node_size_bytes) {
  return params.cpu_ms_per_distance * dists +
         IoCostMs(params, node_size_bytes) * nodes;
}

TuningResult ChooseNodeSize(const DiskCostParameters& params,
                            const std::vector<NodeSizeSample>& samples) {
  if (samples.empty()) {
    throw std::invalid_argument("ChooseNodeSize: no samples");
  }
  TuningResult result;
  result.best_total_ms = std::numeric_limits<double>::infinity();
  result.total_ms.reserve(samples.size());
  for (const auto& sample : samples) {
    const double total = TotalCostMs(params, sample.dists, sample.nodes,
                                     sample.node_size_bytes);
    result.total_ms.push_back(total);
    if (total < result.best_total_ms) {
      result.best_total_ms = total;
      result.best_node_size_bytes = sample.node_size_bytes;
    }
  }
  return result;
}

}  // namespace mcm
