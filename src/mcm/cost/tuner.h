// Node-size tuning (Section 4.1): combine predicted CPU and I/O costs under
// a parametric disk model, total(NS) = c_CPU·dists(Q;NS) + c_IO(NS)·nodes(Q;NS)
// with c_IO(NS) = t_pos + NS·t_trans, and pick the node size minimizing it.
// The paper's instance (c_CPU = 5 ms, c_IO = 10 + NS·1 ms) yields an optimal
// node size of 8 KB on the 10⁶-object 5-d clustered dataset.

#ifndef MCM_COST_TUNER_H_
#define MCM_COST_TUNER_H_

#include <cstddef>
#include <vector>

namespace mcm {

/// Cost coefficients of Section 4.1. Defaults are the paper's.
struct DiskCostParameters {
  double cpu_ms_per_distance = 5.0;  ///< c_CPU.
  double position_ms = 10.0;         ///< t_pos.
  double transfer_ms_per_kb = 1.0;   ///< t_trans (per KB of node size).
};

/// c_IO(NS) = t_pos + NS·t_trans, NS in bytes.
double IoCostMs(const DiskCostParameters& params, size_t node_size_bytes);

/// Total expected query time in milliseconds.
double TotalCostMs(const DiskCostParameters& params, double dists,
                   double nodes, size_t node_size_bytes);

/// Predicted (or measured) per-query costs at one candidate node size.
struct NodeSizeSample {
  size_t node_size_bytes = 0;
  double dists = 0.0;  ///< Expected distance computations per query.
  double nodes = 0.0;  ///< Expected node reads per query.
};

/// Outcome of a tuning sweep.
struct TuningResult {
  size_t best_node_size_bytes = 0;
  double best_total_ms = 0.0;
  std::vector<double> total_ms;  ///< Aligned with the input samples.
};

/// Evaluates TotalCostMs for every sample and selects the minimum.
TuningResult ChooseNodeSize(const DiskCostParameters& params,
                            const std::vector<NodeSizeSample>& samples);

}  // namespace mcm

#endif  // MCM_COST_TUNER_H_
