#include "mcm/cost/vp_model.h"

#include <algorithm>
#include <stdexcept>

#include "mcm/common/numeric.h"

namespace mcm {

DistanceHistogram TruncateAndNormalize(const DistanceHistogram& hist,
                                       double bound) {
  if (bound >= hist.d_plus()) {
    return hist;
  }
  if (bound <= 0.0) {
    throw std::invalid_argument("TruncateAndNormalize: bound must be > 0");
  }
  const double width = hist.bin_width();
  std::vector<double> masses = hist.masses();
  const size_t cut_bin = std::min(static_cast<size_t>(bound / width),
                                  masses.size() - 1);
  // Keep the in-bound fraction of the boundary bin, zero the rest.
  const double frac =
      (bound - static_cast<double>(cut_bin) * width) / width;
  masses[cut_bin] *= Clamp(frac, 0.0, 1.0);
  for (size_t b = cut_bin + 1; b < masses.size(); ++b) {
    masses[b] = 0.0;
  }
  double total = 0.0;
  for (double m : masses) total += m;
  if (total <= 0.0) {
    // Degenerate: no mass below the bound; model the subtree as holding
    // everything at distance ~0 (single point mass in the first bin).
    masses.assign(masses.size(), 0.0);
    masses[0] = 1.0;
  }
  return DistanceHistogram::FromMasses(masses, hist.d_plus());
}

VpTreeCostModel::VpTreeCostModel(const DistanceHistogram& histogram, size_t n,
                                 VpCostModelOptions options)
    : histogram_(histogram), n_(n), options_(options) {
  if (options_.arity < 2) {
    throw std::invalid_argument("VpTreeCostModel: arity must be >= 2");
  }
  if (options_.leaf_capacity < 1) {
    throw std::invalid_argument("VpTreeCostModel: leaf capacity must be >= 1");
  }
  if (n == 0) {
    throw std::invalid_argument("VpTreeCostModel: n must be > 0");
  }
}

double VpTreeCostModel::RangeDistances(double query_radius) const {
  return Recurse(static_cast<double>(n_), histogram_, query_radius).dists;
}

double VpTreeCostModel::RangeNodes(double query_radius) const {
  return Recurse(static_cast<double>(n_), histogram_, query_radius).nodes;
}

VpTreeCostModel::Expectation VpTreeCostModel::Recurse(
    double size, const DistanceHistogram& hist, double query_radius) const {
  Expectation total;
  if (size <= static_cast<double>(options_.leaf_capacity)) {
    total.nodes = 1.0;
    total.dists = size;  // Every bucket object is compared with Q.
    return total;
  }
  // The node is accessed: its vantage point costs one distance computation.
  total.nodes = 1.0;
  total.dists = 1.0;
  const size_t m = options_.arity;
  const double child_size = (size - 1.0) / static_cast<double>(m);
  for (size_t i = 1; i <= m; ++i) {
    // Cutoffs estimated as quantiles of the (sub)distribution: μ_i = F⁻¹(i/m).
    const double mu_lo =
        hist.Quantile(static_cast<double>(i - 1) / static_cast<double>(m));
    const double mu_hi = i == m
                             ? hist.d_plus()
                             : hist.Quantile(static_cast<double>(i) /
                                             static_cast<double>(m));
    // Eq. 20: Pr{child i accessed} = F(μ_i + r_Q) − F(μ_{i−1} − r_Q).
    const double p = Clamp(hist.Cdf(mu_hi + query_radius) -
                               hist.Cdf(mu_lo - query_radius),
                           0.0, 1.0);
    if (p <= 0.0) {
      continue;
    }
    // Eq. 22: within child i pairwise distances are bounded by 2μ_i.
    const DistanceHistogram child_hist =
        TruncateAndNormalize(hist, 2.0 * mu_hi);
    const Expectation child = Recurse(child_size, child_hist, query_radius);
    total.nodes += p * child.nodes;
    total.dists += p * child.dists;
  }
  return total;
}

}  // namespace mcm
