// vp-tree cost model (Section 5, Eqs. 19-23). Predicts the expected number
// of distance computations (and accessed nodes) of a range query over an
// m-way vp-tree using only the distance distribution F — no tree statistics:
// cutoff values are estimated as quantiles of F (μ_i = F⁻¹(i/m)), and the
// distance distribution of each subtree is renormalized to its triangle-
// inequality bound 2μ_i (Eq. 22). The paper derives this model but defers
// its experimental validation; bench/ext_vptree_model runs that validation.

#ifndef MCM_COST_VP_MODEL_H_
#define MCM_COST_VP_MODEL_H_

#include <cstddef>

#include "mcm/distribution/histogram.h"

namespace mcm {

/// Shape parameters of the modeled vp-tree; must match the VpTreeOptions
/// used to build the measured tree.
struct VpCostModelOptions {
  size_t arity = 2;          ///< m.
  size_t leaf_capacity = 1;  ///< Objects per leaf.
};

/// Expected range-query costs for an m-way vp-tree.
class VpTreeCostModel {
 public:
  VpTreeCostModel(const DistanceHistogram& histogram, size_t n,
                  VpCostModelOptions options = {});

  /// Expected distance computations of range(Q, r_Q): one per accessed
  /// internal node (its vantage point) plus the bucket size per accessed
  /// leaf.
  double RangeDistances(double query_radius) const;

  /// Expected number of accessed nodes (informational; the vp-tree is
  /// main-memory so the paper ignores I/O).
  double RangeNodes(double query_radius) const;

  size_t n() const { return n_; }

 private:
  struct Expectation {
    double nodes = 0.0;
    double dists = 0.0;
  };

  /// Expected costs of the subtree holding `size` objects whose (relative)
  /// distance distribution is `hist`, *given that the subtree is accessed*.
  Expectation Recurse(double size, const DistanceHistogram& hist,
                      double query_radius) const;

  DistanceHistogram histogram_;
  size_t n_;
  VpCostModelOptions options_;
};

/// Eq. 22: restricts `hist` to [0, bound] and renormalizes, yielding the
/// distance distribution of a subtree whose pairwise distances cannot
/// exceed `bound`. Exposed for tests.
DistanceHistogram TruncateAndNormalize(const DistanceHistogram& hist,
                                       double bound);

}  // namespace mcm

#endif  // MCM_COST_VP_MODEL_H_
