#include "mcm/cost/witness_model.h"

#include <algorithm>
#include <cmath>

namespace mcm {

WitnessCostModel::WitnessCostModel(const DistanceHistogram& histogram,
                                   int capacity)
    : histogram_(histogram), capacity_(std::max(capacity, 0)) {}

double WitnessCostModel::PairSurvival(double r) const {
  if (r < 0.0) return 0.0;
  if (r >= histogram_.d_plus()) return 1.0;
  // P(|X - Y| <= r) = Σ_i m_i · (F(c_i + r) - F(c_i - r)) with c_i the bin
  // centers — the histogram's self-convolution at the bin resolution.
  const auto& masses = histogram_.masses();
  const double width = histogram_.bin_width();
  double p = 0.0;
  for (size_t i = 0; i < masses.size(); ++i) {
    if (masses[i] == 0.0) continue;
    const double center = (static_cast<double>(i) + 0.5) * width;
    p += masses[i] * (histogram_.Cdf(center + r) - histogram_.Cdf(center - r));
  }
  return std::clamp(p, 0.0, 1.0);
}

double WitnessCostModel::EvalFraction(double r, int witnesses) const {
  if (witnesses <= 0) return 1.0;
  return std::pow(PairSurvival(r), witnesses);
}

int WitnessCostModel::WitnessesAtLevel(uint32_t level) const {
  const int above = level > 0 ? static_cast<int>(level) - 1 : 0;
  return std::min(capacity_, above);
}

std::vector<double> WitnessCostModel::CorrectLevelDistances(
    const std::vector<double>& level_distances, double bound) const {
  return CorrectLevelDistances(level_distances,
                               std::vector<double>{bound});
}

std::vector<double> WitnessCostModel::CorrectLevelDistances(
    const std::vector<double>& level_distances,
    const std::vector<double>& level_bounds) const {
  std::vector<double> corrected(level_distances.size(), 0.0);
  for (size_t l = 0; l < level_distances.size(); ++l) {
    const auto level = static_cast<uint32_t>(l + 1);
    const double bound = level_bounds.empty()
                             ? 0.0
                             : level_bounds[std::min(l,
                                                     level_bounds.size() - 1)];
    corrected[l] = level_distances[l] *
                   EvalFraction(bound, WitnessesAtLevel(level));
  }
  return corrected;
}

}  // namespace mcm
