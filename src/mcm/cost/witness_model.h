// Witness-hit-rate correction for the cost models (engine/witness.h).
//
// N-MCM / L-MCM predict one distance computation per entry of every
// accessed node (Eq. 7) — the footnote-2 convention that ignores
// distance-saving optimizations. With the witness cascade enabled, a
// fraction of those evaluations is avoided: an entry o is skipped when
// some witness w on the path proves |d(Q,w) - d(w,o)| > bound. The
// correction estimates that fraction from the measured distance
// distribution F̂ⁿ alone:
//
//   PairSurvival(r) = P(|X - Y| <= r),  X, Y iid ~ F̂ⁿ,
//
// the probability one random witness FAILS to prune at bound r (the
// triangle-inequality cut requires the two distances to differ by more
// than r). With w independent witnesses the entry is evaluated with
// probability EvalFraction(r, w) = PairSurvival(r)^w, and a node at level
// l has accrued w(l) = min(capacity, l - 1) witnesses (one per ancestor
// evaluation on the path). Independence and F_Q ≈ F̂ⁿ are exactly the
// paper's Assumption 1 applied to the witness pair — biased toward
// over-predicting savings on correlated paths, which the EXPLAIN residual
// tables make visible.

#ifndef MCM_COST_WITNESS_MODEL_H_
#define MCM_COST_WITNESS_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mcm/distribution/histogram.h"

namespace mcm {

/// Correction model for the witness cascade's avoided evaluations.
class WitnessCostModel {
 public:
  /// `histogram` (copied) is the sampled distance distribution F̂ⁿ;
  /// `capacity` is the engine's resolved witness capacity (MCM_WITNESSES).
  WitnessCostModel(const DistanceHistogram& histogram, int capacity);

  /// P(|X - Y| <= r) for X, Y iid ~ F̂ⁿ: the probability one witness fails
  /// to prune an entry at pruning bound r. Clamps to 1 for r >= d⁺.
  double PairSurvival(double r) const;

  /// Fraction of entry evaluations that survive w independent witnesses:
  /// PairSurvival(r)^w. EvalFraction(r, 0) = 1 (cascade off).
  double EvalFraction(double r, int witnesses) const;

  /// Witnesses accrued by a node at level l (root = 1): one per ancestor
  /// on the path, capped by the capacity.
  int WitnessesAtLevel(uint32_t level) const;

  /// Applies the correction to a per-level distance prediction (index
  /// l-1 = level l): element l-1 scaled by EvalFraction(r, w(l)).
  std::vector<double> CorrectLevelDistances(
      const std::vector<double>& level_distances, double bound) const;

  /// Same, with a per-level pruning bound (index l-1 = level l): entries
  /// of internal nodes are pruned at r + r(entry), so their effective
  /// bound includes the child's average covering radius; leaf entries are
  /// pruned at r itself. Missing elements fall back to the last bound.
  std::vector<double> CorrectLevelDistances(
      const std::vector<double>& level_distances,
      const std::vector<double>& level_bounds) const;

  int capacity() const { return capacity_; }

 private:
  DistanceHistogram histogram_;
  int capacity_ = 0;
};

}  // namespace mcm

#endif  // MCM_COST_WITNESS_MODEL_H_
