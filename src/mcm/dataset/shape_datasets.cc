#include "mcm/dataset/shape_datasets.h"

#include <cmath>
#include <stdexcept>

#include "mcm/common/numeric.h"
#include "mcm/common/random.h"

namespace mcm {
namespace {

constexpr uint64_t kFamilyStream = 47;
constexpr uint64_t kDatasetStream = 53;
constexpr uint64_t kQueryStream = 59;

struct Family {
  double cx, cy;      // Center.
  double rx, ry;      // Semi-axes.
  double rotation;    // Radians.
};

std::vector<Family> MakeFamilies(uint64_t seed, const ShapeSpec& spec) {
  RandomEngine rng = MakeEngine(seed, kFamilyStream);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::vector<Family> families(spec.num_families);
  for (auto& f : families) {
    f.cx = 0.2 + 0.6 * u(rng);
    f.cy = 0.2 + 0.6 * u(rng);
    f.rx = 0.03 + 0.12 * u(rng);
    f.ry = 0.03 + 0.12 * u(rng);
    f.rotation = 2.0 * M_PI * u(rng);
  }
  return families;
}

std::vector<PointSet> SampleShapes(size_t n, uint64_t seed,
                                   const ShapeSpec& spec, uint64_t stream) {
  if (spec.points_per_shape < 3) {
    throw std::invalid_argument("GenerateShapes: need >= 3 contour points");
  }
  if (spec.num_families == 0) {
    throw std::invalid_argument("GenerateShapes: need >= 1 family");
  }
  const auto families = MakeFamilies(seed, spec);
  RandomEngine rng = MakeEngine(seed, stream);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::normal_distribution<double> jitter(0.0, spec.noise);

  std::vector<PointSet> shapes(n);
  std::uniform_int_distribution<size_t> pick(0, families.size() - 1);
  for (auto& shape : shapes) {
    const Family& f = families[pick(rng)];
    const double phase = 2.0 * M_PI * u(rng) / spec.points_per_shape;
    shape.resize(spec.points_per_shape);
    for (size_t i = 0; i < spec.points_per_shape; ++i) {
      const double t = phase + 2.0 * M_PI * static_cast<double>(i) /
                                   static_cast<double>(spec.points_per_shape);
      const double ex = f.rx * std::cos(t) + jitter(rng);
      const double ey = f.ry * std::sin(t) + jitter(rng);
      const double c = std::cos(f.rotation), s = std::sin(f.rotation);
      shape[i] = {static_cast<float>(Clamp(f.cx + c * ex - s * ey, 0.0, 1.0)),
                  static_cast<float>(Clamp(f.cy + s * ex + c * ey, 0.0, 1.0))};
    }
  }
  return shapes;
}

}  // namespace

std::vector<PointSet> GenerateShapes(size_t n, uint64_t seed,
                                     const ShapeSpec& spec) {
  return SampleShapes(n, seed, spec, kDatasetStream);
}

std::vector<PointSet> GenerateShapeQueries(size_t num_queries, uint64_t seed,
                                           const ShapeSpec& spec) {
  return SampleShapes(num_queries, seed, spec, kQueryStream);
}

}  // namespace mcm
