// Synthetic 2-d shape dataset for the Hausdorff-distance experiments
// (the shape-matching application of the paper's reference [15]). Each
// shape is a noisy closed contour: points sampled along an ellipse-like
// curve with per-shape center, scale, eccentricity, rotation, and radial
// noise. Shapes from the same family (shared template) are Hausdorff-close;
// different families are far apart — a realistic clustered metric space
// that is not a vector space.

#ifndef MCM_DATASET_SHAPE_DATASETS_H_
#define MCM_DATASET_SHAPE_DATASETS_H_

#include <cstdint>
#include <vector>

#include "mcm/metric/set_metrics.h"

namespace mcm {

/// Shape generator parameters.
struct ShapeSpec {
  size_t points_per_shape = 24;  ///< Contour samples per shape.
  size_t num_families = 20;      ///< Shared templates (clusters).
  double noise = 0.01;           ///< Radial jitter around the template.
};

/// Generates `n` shapes in [0,1]^2.
std::vector<PointSet> GenerateShapes(size_t n, uint64_t seed,
                                     const ShapeSpec& spec = {});

/// Query shapes from the same family mixture (biased query model).
std::vector<PointSet> GenerateShapeQueries(size_t num_queries, uint64_t seed,
                                           const ShapeSpec& spec = {});

}  // namespace mcm

#endif  // MCM_DATASET_SHAPE_DATASETS_H_
