#include "mcm/dataset/text_datasets.h"

#include <stdexcept>
#include <unordered_set>

#include "mcm/common/random.h"

namespace mcm {
namespace {

// Italian syllable inventory used by the generator. Onsets and nuclei are
// weighted by rough frequency; a small probability of a sonorant coda
// (n/r/l/s) yields closed syllables as in "con-", "per-", "men-".
const char* const kOnsets[] = {
    "",   "b",  "c",  "d",  "f",  "g",   "l",   "m",  "n",  "p",
    "r",  "s",  "t",  "v",  "z",  "ch",  "gh",  "gl", "gn", "sc",
    "st", "sp", "tr", "pr", "cr", "br",  "fr",  "dr", "qu", "vi"};
const double kOnsetWeights[] = {
    0.06, 0.04, 0.08, 0.05, 0.04, 0.04, 0.06, 0.06, 0.06, 0.07,
    0.07, 0.08, 0.08, 0.04, 0.02, 0.02, 0.01, 0.01, 0.01, 0.02,
    0.02, 0.02, 0.02, 0.02, 0.01, 0.01, 0.01, 0.01, 0.01, 0.01};

const char* const kNuclei[] = {"a", "e", "i", "o", "u", "ia", "io", "ie"};
const double kNucleusWeights[] = {0.22, 0.22, 0.18, 0.20, 0.06,
                                  0.04, 0.05, 0.03};

const char* const kCodas[] = {"n", "r", "l", "s"};

// Distribution of word length in syllables: Italian content words cluster
// around 3-4 syllables; monosyllables are function words and rarely appear
// in keyword vocabularies. The moderate spread keeps the vocabulary's
// homogeneity-of-viewpoints high (HV ≈ 0.95, Section 2.1).
const double kSyllableCountWeights[] = {0.0, 0.02, 0.22, 0.40, 0.26, 0.10};

template <size_t N>
size_t PickWeighted(RandomEngine& rng, const double (&weights)[N]) {
  std::discrete_distribution<size_t> dist(std::begin(weights),
                                          std::end(weights));
  return dist(rng);
}

std::string MakeWord(RandomEngine& rng, size_t max_len) {
  const size_t syllables = PickWeighted(rng, kSyllableCountWeights) + 1;
  std::string word;
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (size_t s = 0; s < syllables; ++s) {
    word += kOnsets[PickWeighted(rng, kOnsetWeights)];
    word += kNuclei[PickWeighted(rng, kNucleusWeights)];
    // Closed syllables only word-internally; Italian words end in vowels
    // almost always.
    if (s + 1 < syllables && u(rng) < 0.15) {
      word += kCodas[UniformIndex(rng, 4)];
    }
  }
  if (word.size() > max_len) {
    word.resize(max_len);
  }
  return word;
}

}  // namespace

const std::vector<TextDatasetSpec>& TextDatasets() {
  static const std::vector<TextDatasetSpec> kSpecs = {
      {"D", "Decamerone", 17936},
      {"DC", "Divina Commedia", 12701},
      {"GL", "Gerusalemme Liberata", 11973},
      {"OF", "Orlando Furioso", 18719},
      {"PS", "Promessi Sposi", 19846},
  };
  return kSpecs;
}

std::vector<std::string> GenerateKeywords(size_t vocab_size, uint64_t seed,
                                          size_t max_len) {
  if (max_len < 4) {
    throw std::invalid_argument("GenerateKeywords: max_len too small");
  }
  RandomEngine rng = MakeEngine(seed, /*stream=*/41);
  std::unordered_set<std::string> seen;
  std::vector<std::string> words;
  words.reserve(vocab_size);
  // The syllable space is vastly larger than any requested vocabulary, so
  // rejection sampling terminates quickly; the cap is a safety net.
  size_t attempts = 0;
  const size_t max_attempts = vocab_size * 200 + 100000;
  while (words.size() < vocab_size && attempts < max_attempts) {
    ++attempts;
    std::string w = MakeWord(rng, max_len);
    if (seen.insert(w).second) {
      words.push_back(std::move(w));
    }
  }
  if (words.size() < vocab_size) {
    throw std::runtime_error(
        "GenerateKeywords: could not produce enough distinct words");
  }
  return words;
}

std::vector<std::string> GenerateKeywordQueries(size_t num_queries,
                                                uint64_t seed,
                                                size_t max_len) {
  RandomEngine rng = MakeEngine(DeriveSeed(seed, 0x71fu), /*stream=*/43);
  std::vector<std::string> queries;
  queries.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    queries.push_back(MakeWord(rng, max_len));
  }
  return queries;
}

}  // namespace mcm
