// Synthetic text-keyword datasets standing in for Table 1's five Italian
// literature masterpieces (Decamerone, Divina Commedia, Gerusalemme
// Liberata, Orlando Furioso, Promessi Sposi).
//
// SUBSTITUTION (documented in DESIGN.md): the original corpora are not
// available offline, so we generate Italian-like keyword vocabularies with
// a stochastic syllable model (CV(C) syllables from the Italian inventory,
// realistic word-length mix, final-vowel bias). What matters for the cost
// model is only the *distance distribution* of the vocabulary under the
// edit metric; syllabic words reproduce its qualitative shape (unimodal,
// max observed distance around 20-25, homogeneity HV > 0.98).

#ifndef MCM_DATASET_TEXT_DATASETS_H_
#define MCM_DATASET_TEXT_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mcm {

/// Descriptor of one synthetic keyword dataset.
struct TextDatasetSpec {
  std::string code;       ///< Short code used in the paper's figures.
  std::string title;      ///< The masterpiece the dataset stands in for.
  size_t vocabulary_size; ///< Number of distinct keywords (Table 1).
};

/// The five datasets of Table 1, with the paper's exact vocabulary sizes.
const std::vector<TextDatasetSpec>& TextDatasets();

/// Generates `vocab_size` *distinct* Italian-like keywords. Words are
/// lowercase ASCII, length clamped to `max_len` (the paper observed a
/// maximum edit distance of 25, so keywords are at most 25 characters).
std::vector<std::string> GenerateKeywords(size_t vocab_size, uint64_t seed,
                                          size_t max_len = 25);

/// Generates an independent query workload of Italian-like keywords (biased
/// query model: same word distribution, independent stream, duplicates with
/// the dataset possible but not guaranteed).
std::vector<std::string> GenerateKeywordQueries(size_t num_queries,
                                                uint64_t seed,
                                                size_t max_len = 25);

}  // namespace mcm

#endif  // MCM_DATASET_TEXT_DATASETS_H_
