#include "mcm/dataset/vector_datasets.h"

#include <stdexcept>

#include "mcm/common/numeric.h"
#include "mcm/common/random.h"

namespace mcm {
namespace {

// Streams: the cluster centers define the data distribution S and depend on
// the seed only; dataset points and query points are independent draws from
// S (the biased query model of Section 2), so they use distinct streams.
constexpr uint64_t kCenterStream = 29;
constexpr uint64_t kDatasetStream = 31;
constexpr uint64_t kQueryStream = 37;

std::vector<FloatVector> MakeClusterCenters(size_t dim, uint64_t seed,
                                            const ClusteredSpec& spec) {
  RandomEngine rng = MakeEngine(seed, kCenterStream);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::vector<FloatVector> centers(spec.num_clusters);
  for (auto& c : centers) {
    c.resize(dim);
    for (auto& x : c) x = static_cast<float>(u(rng));
  }
  return centers;
}

std::vector<FloatVector> SampleUniform(size_t n, size_t dim, uint64_t seed,
                                       uint64_t stream) {
  RandomEngine rng = MakeEngine(seed, stream);
  std::uniform_real_distribution<float> u(0.0f, 1.0f);
  std::vector<FloatVector> points(n);
  for (auto& p : points) {
    p.resize(dim);
    for (auto& x : p) x = u(rng);
  }
  return points;
}

std::vector<FloatVector> SampleClustered(size_t n, size_t dim, uint64_t seed,
                                         const ClusteredSpec& spec,
                                         uint64_t stream) {
  const std::vector<FloatVector> centers = MakeClusterCenters(dim, seed, spec);
  RandomEngine rng = MakeEngine(seed, stream);
  std::normal_distribution<double> gauss(0.0, spec.sigma);
  std::uniform_int_distribution<size_t> pick(0, spec.num_clusters - 1);
  std::vector<FloatVector> points(n);
  for (auto& p : points) {
    const FloatVector& c = centers[pick(rng)];
    p.resize(dim);
    for (size_t k = 0; k < dim; ++k) {
      p[k] = static_cast<float>(
          Clamp(static_cast<double>(c[k]) + gauss(rng), 0.0, 1.0));
    }
  }
  return points;
}

void CheckDim(size_t dim) {
  if (dim == 0) {
    throw std::invalid_argument("vector dataset: dim must be > 0");
  }
}

}  // namespace

std::vector<FloatVector> GenerateUniform(size_t n, size_t dim, uint64_t seed) {
  CheckDim(dim);
  return SampleUniform(n, dim, seed, kDatasetStream);
}

std::vector<FloatVector> GenerateClustered(size_t n, size_t dim, uint64_t seed,
                                           const ClusteredSpec& spec) {
  CheckDim(dim);
  if (spec.num_clusters == 0) {
    throw std::invalid_argument("GenerateClustered: need >= 1 cluster");
  }
  return SampleClustered(n, dim, seed, spec, kDatasetStream);
}

std::vector<FloatVector> GenerateVectorDataset(VectorDatasetKind kind,
                                               size_t n, size_t dim,
                                               uint64_t seed) {
  switch (kind) {
    case VectorDatasetKind::kUniform:
      return GenerateUniform(n, dim, seed);
    case VectorDatasetKind::kClustered:
      return GenerateClustered(n, dim, seed);
  }
  throw std::invalid_argument("GenerateVectorDataset: bad kind");
}

namespace {

std::vector<FloatVector> SampleNonHomogeneous(size_t n, size_t dim,
                                              uint64_t seed,
                                              double core_fraction,
                                              uint64_t stream) {
  CheckDim(dim);
  if (core_fraction < 0.0 || core_fraction > 1.0) {
    throw std::invalid_argument(
        "GenerateNonHomogeneous: core_fraction outside [0,1]");
  }
  RandomEngine rng = MakeEngine(seed, stream);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::normal_distribution<double> gauss(0.0, 0.02);
  std::vector<FloatVector> points(n);
  for (auto& p : points) {
    p.resize(dim);
    if (u(rng) < core_fraction) {
      // Tight core near the (0.1, ..., 0.1) corner.
      for (auto& x : p) {
        x = static_cast<float>(Clamp(0.1 + gauss(rng), 0.0, 1.0));
      }
    } else {
      for (auto& x : p) x = static_cast<float>(u(rng));
    }
  }
  return points;
}

}  // namespace

std::vector<FloatVector> GenerateNonHomogeneous(size_t n, size_t dim,
                                                uint64_t seed,
                                                double core_fraction) {
  return SampleNonHomogeneous(n, dim, seed, core_fraction, kDatasetStream);
}

std::vector<FloatVector> GenerateNonHomogeneousQueries(size_t num_queries,
                                                       size_t dim,
                                                       uint64_t seed,
                                                       double core_fraction) {
  return SampleNonHomogeneous(num_queries, dim, seed, core_fraction,
                              kQueryStream);
}

std::vector<FloatVector> GenerateVectorQueries(VectorDatasetKind kind,
                                               size_t num_queries, size_t dim,
                                               uint64_t seed) {
  CheckDim(dim);
  switch (kind) {
    case VectorDatasetKind::kUniform:
      return SampleUniform(num_queries, dim, seed, kQueryStream);
    case VectorDatasetKind::kClustered:
      // Same seed => same cluster centers as the dataset (same S), but an
      // independent point stream: the biased query model.
      return SampleClustered(num_queries, dim, seed, ClusteredSpec{},
                             kQueryStream);
  }
  throw std::invalid_argument("GenerateVectorQueries: bad kind");
}

}  // namespace mcm
