// Synthetic vector datasets of Table 1:
//  - `uniform`:   points uniformly distributed over the unit hypercube.
//  - `clustered`: points normally distributed (sigma = 0.1) around 10
//                 cluster centers drawn uniformly in the hypercube,
//                 clipped to [0,1]^D so the L-infinity diameter stays 1.
// Plus the biased-query-model workload generator: query objects follow the
// same data distribution but are drawn from an independent stream, so they
// do not (in general) belong to the indexed set.

#ifndef MCM_DATASET_VECTOR_DATASETS_H_
#define MCM_DATASET_VECTOR_DATASETS_H_

#include <cstdint>
#include <vector>

#include "mcm/metric/vector_metrics.h"

namespace mcm {

/// Parameters of the clustered generator. Defaults match the paper.
struct ClusteredSpec {
  size_t num_clusters = 10;
  double sigma = 0.1;
};

/// Generates `n` points uniform over [0,1]^dim.
std::vector<FloatVector> GenerateUniform(size_t n, size_t dim, uint64_t seed);

/// Generates `n` points from `spec.num_clusters` Gaussian clusters
/// (stddev `spec.sigma` per coordinate) with centers uniform in [0,1]^dim;
/// coordinates are clipped to [0,1]. Cluster sizes are balanced by drawing
/// the cluster of each point uniformly.
std::vector<FloatVector> GenerateClustered(size_t n, size_t dim, uint64_t seed,
                                           const ClusteredSpec& spec = {});

/// Kinds of synthetic vector dataset.
enum class VectorDatasetKind { kUniform, kClustered };

/// Dispatches on `kind`; convenient for benches that sweep both datasets.
std::vector<FloatVector> GenerateVectorDataset(VectorDatasetKind kind,
                                               size_t n, size_t dim,
                                               uint64_t seed);

/// Query workload under the biased query model: `num_queries` points from
/// the same distribution as the dataset, drawn from an independent seed
/// stream (so queries are not members of the indexed set).
std::vector<FloatVector> GenerateVectorQueries(VectorDatasetKind kind,
                                               size_t num_queries, size_t dim,
                                               uint64_t seed);

/// Deliberately NON-homogeneous dataset (low HV — Section 6's problem
/// case): `core_fraction` of the points sit in one very tight Gaussian
/// cluster near a corner of the hypercube, the rest are uniform. Points in
/// the core and points in the halo have markedly different relative
/// distance distributions, so a single global F misestimates per-query
/// costs; used to evaluate the multi-viewpoint model (future work #2).
std::vector<FloatVector> GenerateNonHomogeneous(size_t n, size_t dim,
                                                uint64_t seed,
                                                double core_fraction = 0.5);

/// Query workload over the non-homogeneous distribution (same mixture,
/// independent stream).
std::vector<FloatVector> GenerateNonHomogeneousQueries(size_t num_queries,
                                                       size_t dim,
                                                       uint64_t seed,
                                                       double core_fraction
                                                       = 0.5);

}  // namespace mcm

#endif  // MCM_DATASET_VECTOR_DATASETS_H_
