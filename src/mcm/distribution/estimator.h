// Builds the sampled distance distribution F̂ⁿ (Section 2.1) from a
// database instance: either all O(n²) pairwise distances (small datasets)
// or a random sample of pairs (large ones).

#ifndef MCM_DISTRIBUTION_ESTIMATOR_H_
#define MCM_DISTRIBUTION_ESTIMATOR_H_

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "mcm/common/random.h"
#include "mcm/distribution/histogram.h"

namespace mcm {

/// Options for distance-distribution estimation.
struct EstimatorOptions {
  size_t num_bins = 100;     ///< Histogram bins (paper: 100 vector, 25 text).
  double d_plus = 1.0;       ///< Upper bound on distances in the BRM space.
  size_t max_pairs = 500000; ///< Pair-sampling budget for large datasets.
  uint64_t seed = 42;        ///< Seed for pair sampling.
};

/// Computes F̂ⁿ over `objects` under `metric`.
///
/// When n(n-1)/2 <= max_pairs every pair contributes (the paper's n x n
/// matrix, upper triangle); otherwise `max_pairs` random distinct-index
/// pairs are sampled.
template <typename Object, typename Metric>
DistanceHistogram EstimateDistanceDistribution(
    const std::vector<Object>& objects, const Metric& metric,
    const EstimatorOptions& options) {
  const size_t n = objects.size();
  if (n < 2) {
    throw std::invalid_argument(
        "EstimateDistanceDistribution: need >= 2 objects");
  }
  std::vector<double> distances;
  const uint64_t all_pairs =
      static_cast<uint64_t>(n) * static_cast<uint64_t>(n - 1) / 2;
  if (all_pairs <= options.max_pairs) {
    distances.reserve(all_pairs);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        distances.push_back(metric(objects[i], objects[j]));
      }
    }
  } else {
    RandomEngine rng = MakeEngine(options.seed, /*stream=*/7);
    distances.reserve(options.max_pairs);
    for (size_t s = 0; s < options.max_pairs; ++s) {
      const size_t i = UniformIndex(rng, n);
      size_t j = UniformIndex(rng, n - 1);
      if (j >= i) ++j;
      distances.push_back(metric(objects[i], objects[j]));
    }
  }
  return DistanceHistogram(distances, options.num_bins, options.d_plus);
}

}  // namespace mcm

#endif  // MCM_DISTRIBUTION_ESTIMATOR_H_
