#include "mcm/distribution/fractal.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "mcm/common/numeric.h"

namespace mcm {

FractalFit EstimateCorrelationDimension(const DistanceHistogram& histogram,
                                        double cdf_lo, double cdf_hi) {
  if (!(cdf_lo > 0.0) || !(cdf_hi > cdf_lo) || cdf_hi > 1.0) {
    throw std::invalid_argument(
        "EstimateCorrelationDimension: need 0 < cdf_lo < cdf_hi <= 1");
  }
  // Collect (log r, log F(r)) at bin upper edges inside the CDF window.
  std::vector<double> xs, ys;
  const double width = histogram.bin_width();
  for (size_t b = 0; b < histogram.num_bins(); ++b) {
    const double r = width * static_cast<double>(b + 1);
    const double f = histogram.cum()[b];
    if (f < cdf_lo) continue;
    if (f > cdf_hi) break;
    xs.push_back(std::log(r));
    ys.push_back(std::log(f));
  }
  if (xs.size() < 2) {
    throw std::runtime_error(
        "EstimateCorrelationDimension: too few histogram points in the "
        "power-law window (widen [cdf_lo, cdf_hi] or add bins)");
  }
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double m = static_cast<double>(xs.size());
  const double denom = m * sxx - sx * sx;
  if (denom <= 0.0) {
    throw std::runtime_error(
        "EstimateCorrelationDimension: degenerate radius range");
  }
  FractalFit fit;
  fit.dimension = (m * sxy - sx * sy) / denom;
  fit.log_intercept = (sy - fit.dimension * sx) / m;
  fit.r_lo = std::exp(xs.front());
  fit.r_hi = std::exp(xs.back());
  fit.points_used = xs.size();
  return fit;
}

FractalSmoothedCdf::FractalSmoothedCdf(const DistanceHistogram& histogram,
                                       const FractalFit& fit)
    : histogram_(histogram), fit_(fit) {
  if (fit.dimension <= 0.0) {
    throw std::invalid_argument("FractalSmoothedCdf: nonpositive dimension");
  }
  crossover_cdf_ = histogram_.Cdf(fit_.r_lo);
}

double FractalSmoothedCdf::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  if (x >= fit_.r_lo) return histogram_.Cdf(x);
  // Power law, scaled to join the histogram continuously at r_lo.
  const double raw = std::exp(fit_.log_intercept) *
                     std::pow(x, fit_.dimension);
  const double raw_at_lo = std::exp(fit_.log_intercept) *
                           std::pow(fit_.r_lo, fit_.dimension);
  if (raw_at_lo <= 0.0) return 0.0;
  return Clamp(raw / raw_at_lo * crossover_cdf_, 0.0, 1.0);
}

double FractalSmoothedCdf::Quantile(double p) const {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("FractalSmoothedCdf::Quantile: bad p");
  }
  if (p >= crossover_cdf_) {
    return histogram_.Quantile(p);
  }
  // Invert the joined power law: p = (x / r_lo)^D2 * crossover.
  if (p <= 0.0) return 0.0;
  return fit_.r_lo * std::pow(p / crossover_cdf_, 1.0 / fit_.dimension);
}

}  // namespace mcm
