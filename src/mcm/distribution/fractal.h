// Correlation (fractal) dimension of a metric dataset — the paper's
// future-work item 5: "we plan to exploit concepts of fractal theory,
// which [...] is in principle applicable to generic metric spaces."
//
// The correlation dimension D2 is the slope of log F(r) versus log r in
// the power-law regime of the distance distribution: F(r) ~ c * r^D2 for
// small r. Unlike the box-counting dimension used by the R-tree models the
// paper reviews, D2 needs only pairwise distances, so it is well-defined in
// any metric space.
//
// We use D2 to sharpen the cost models at small radii: a B-bin histogram
// cannot resolve quantiles below its first bins (the very artifact the
// paper blames for the r(1) estimator's errors at high D — Fig. 2(c)); the
// power law extrapolates F below the histogram resolution.

#ifndef MCM_DISTRIBUTION_FRACTAL_H_
#define MCM_DISTRIBUTION_FRACTAL_H_

#include "mcm/distribution/histogram.h"

namespace mcm {

/// Result of a correlation-dimension fit.
struct FractalFit {
  double dimension = 0.0;    ///< D2: slope of log F vs log r.
  double log_intercept = 0;  ///< c in log F = D2*log r + c.
  double r_lo = 0.0;         ///< Fitted radius range.
  double r_hi = 0.0;
  size_t points_used = 0;    ///< Histogram points in the fit.
};

/// Least-squares fit of log F(r) = D2*log(r) + c over the histogram bins
/// whose cumulative probability lies in [cdf_lo, cdf_hi] (the power-law
/// regime; defaults cover the small-radius tail while avoiding the first,
/// noisiest bin edge). Throws when fewer than two usable points exist.
FractalFit EstimateCorrelationDimension(const DistanceHistogram& histogram,
                                        double cdf_lo = 0.0005,
                                        double cdf_hi = 0.25);

/// A distance distribution that follows `histogram` except below `r_lo` of
/// the fit, where the fitted power law F(r) = exp(c) * r^D2 replaces the
/// piecewise-linear interpolation. Quantiles below F(r_lo) invert the
/// power law analytically, resolving radii far below one bin width.
class FractalSmoothedCdf {
 public:
  FractalSmoothedCdf(const DistanceHistogram& histogram,
                     const FractalFit& fit);

  /// F(x) with power-law small-radius behavior.
  double Cdf(double x) const;

  /// F^{-1}(p); uses the power law for p below the crossover.
  double Quantile(double p) const;

  const FractalFit& fit() const { return fit_; }

 private:
  DistanceHistogram histogram_;
  FractalFit fit_;
  double crossover_cdf_ = 0.0;  ///< Histogram CDF at fit_.r_lo.
};

}  // namespace mcm

#endif  // MCM_DISTRIBUTION_FRACTAL_H_
