#include "mcm/distribution/histogram.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mcm/common/numeric.h"

namespace mcm {

DistanceHistogram::DistanceHistogram(const std::vector<double>& distances,
                                     size_t num_bins, double d_plus)
    : d_plus_(d_plus), num_samples_(distances.size()) {
  if (num_bins == 0) {
    throw std::invalid_argument("DistanceHistogram: need >= 1 bin");
  }
  if (d_plus <= 0.0) {
    throw std::invalid_argument("DistanceHistogram: d_plus must be > 0");
  }
  if (distances.empty()) {
    throw std::invalid_argument("DistanceHistogram: no samples");
  }
  std::vector<uint64_t> counts(num_bins, 0);
  const double width = d_plus / static_cast<double>(num_bins);
  for (double d : distances) {
    if (d < 0.0 || std::isnan(d)) {
      throw std::invalid_argument("DistanceHistogram: negative/NaN distance");
    }
    size_t bin = static_cast<size_t>(d / width);
    if (bin >= num_bins) bin = num_bins - 1;  // d == d_plus or above: clamp.
    ++counts[bin];
  }
  masses_.resize(num_bins);
  for (size_t i = 0; i < num_bins; ++i) {
    masses_[i] = static_cast<double>(counts[i]) /
                 static_cast<double>(distances.size());
  }
  BuildCumulative();
}

DistanceHistogram DistanceHistogram::FromMasses(
    const std::vector<double>& masses, double d_plus) {
  if (masses.empty() || d_plus <= 0.0) {
    throw std::invalid_argument("DistanceHistogram::FromMasses: bad args");
  }
  double total = 0.0;
  for (double m : masses) {
    if (m < 0.0) {
      throw std::invalid_argument(
          "DistanceHistogram::FromMasses: negative mass");
    }
    total += m;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("DistanceHistogram::FromMasses: zero mass");
  }
  DistanceHistogram h;
  h.d_plus_ = d_plus;
  h.num_samples_ = 0;
  h.masses_ = masses;
  for (double& m : h.masses_) m /= total;
  h.BuildCumulative();
  return h;
}

void DistanceHistogram::BuildCumulative() {
  cum_.resize(masses_.size());
  double acc = 0.0;
  for (size_t i = 0; i < masses_.size(); ++i) {
    acc += masses_[i];
    cum_[i] = acc;
  }
  // Guard against floating-point drift.
  cum_.back() = 1.0;
}

double DistanceHistogram::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  if (x >= d_plus_) return 1.0;
  const double width = bin_width();
  const size_t bin = std::min(static_cast<size_t>(x / width),
                              masses_.size() - 1);
  const double below = bin == 0 ? 0.0 : cum_[bin - 1];
  const double frac = (x - static_cast<double>(bin) * width) / width;
  return Clamp(below + masses_[bin] * frac, 0.0, 1.0);
}

double DistanceHistogram::Pdf(double x) const {
  if (x < 0.0 || x > d_plus_) return 0.0;
  const double width = bin_width();
  const size_t bin = std::min(static_cast<size_t>(x / width),
                              masses_.size() - 1);
  return masses_[bin] / width;
}

double DistanceHistogram::Quantile(double p) const {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("DistanceHistogram::Quantile: p outside [0,1]");
  }
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return d_plus_;
  // First bin whose cumulative reaches p.
  const auto it = std::lower_bound(cum_.begin(), cum_.end(), p);
  const size_t bin = static_cast<size_t>(it - cum_.begin());
  const double below = bin == 0 ? 0.0 : cum_[bin - 1];
  const double width = bin_width();
  const double mass = masses_[bin];
  const double frac = mass > 0.0 ? (p - below) / mass : 1.0;
  return (static_cast<double>(bin) + Clamp(frac, 0.0, 1.0)) * width;
}

}  // namespace mcm
