// The distance distribution F (Eq. 1) estimated by an equi-width histogram,
// exactly as in the paper's experiments (100 bins for vector datasets, 25
// bins for the text datasets). The histogram exposes a piecewise-linear CDF,
// a piecewise-constant density, and quantiles — everything the cost models
// consume.

#ifndef MCM_DISTRIBUTION_HISTOGRAM_H_
#define MCM_DISTRIBUTION_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mcm {

/// Equi-width histogram estimate of the overall distance distribution F.
///
/// Bins partition [0, d_plus] into `num_bins` equal intervals; the CDF is
/// linear within each bin, with F(0) = 0 and F(d_plus) = 1 (given at least
/// one sample). Values outside [0, d_plus] clamp to {0, 1}.
class DistanceHistogram {
 public:
  /// Builds the histogram from raw distance samples. Samples above d_plus
  /// are clamped into the last bin (they indicate a mis-specified d_plus and
  /// are tolerated to keep experiment pipelines robust).
  DistanceHistogram(const std::vector<double>& distances, size_t num_bins,
                    double d_plus);

  /// Reconstructs a histogram from per-bin probability masses (must sum to
  /// ~1). Used by tests and by the vp-tree model's normalized distributions.
  static DistanceHistogram FromMasses(const std::vector<double>& masses,
                                      double d_plus);

  /// F(x): probability that a random pairwise distance is <= x.
  double Cdf(double x) const;

  /// f(x): density, piecewise constant on bins; 0 outside [0, d_plus].
  double Pdf(double x) const;

  /// F^{-1}(p): smallest x with F(x) >= p, by linear interpolation.
  /// Requires p in [0, 1].
  double Quantile(double p) const;

  double d_plus() const { return d_plus_; }
  size_t num_bins() const { return masses_.size(); }
  double bin_width() const { return d_plus_ / static_cast<double>(masses_.size()); }
  uint64_t num_samples() const { return num_samples_; }

  /// Per-bin probability masses (sums to 1).
  const std::vector<double>& masses() const { return masses_; }

  /// Cumulative values at bin upper edges; cum()[i] = F((i+1)*bin_width).
  const std::vector<double>& cum() const { return cum_; }

 private:
  DistanceHistogram() = default;

  void BuildCumulative();

  std::vector<double> masses_;
  std::vector<double> cum_;
  double d_plus_ = 0.0;
  uint64_t num_samples_ = 0;
};

}  // namespace mcm

#endif  // MCM_DISTRIBUTION_HISTOGRAM_H_
