#include "mcm/distribution/homogeneity.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mcm {

RddGrid BuildRddFromDistances(const std::vector<double>& distances,
                              size_t grid_points, double d_plus) {
  if (grid_points < 2) {
    throw std::invalid_argument("BuildRddFromDistances: need >= 2 grid points");
  }
  if (d_plus <= 0.0) {
    throw std::invalid_argument("BuildRddFromDistances: d_plus must be > 0");
  }
  if (distances.empty()) {
    throw std::invalid_argument("BuildRddFromDistances: no distances");
  }
  std::vector<double> sorted = distances;
  std::sort(sorted.begin(), sorted.end());
  RddGrid grid(grid_points, 0.0);
  const double step = d_plus / static_cast<double>(grid_points - 1);
  for (size_t g = 0; g < grid_points; ++g) {
    const double x = step * static_cast<double>(g);
    const auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
    grid[g] = static_cast<double>(it - sorted.begin()) /
              static_cast<double>(sorted.size());
  }
  return grid;
}

double Discrepancy(const RddGrid& a, const RddGrid& b, double d_plus) {
  if (a.size() != b.size() || a.size() < 2) {
    throw std::invalid_argument("Discrepancy: grid mismatch");
  }
  const double step = d_plus / static_cast<double>(a.size() - 1);
  double sum = 0.5 * (std::fabs(a.front() - b.front()) +
                      std::fabs(a.back() - b.back()));
  for (size_t g = 1; g + 1 < a.size(); ++g) {
    sum += std::fabs(a[g] - b[g]);
  }
  // (1/d⁺)·∫ |Fa − Fb| dx with the trapezoid rule.
  return sum * step / d_plus;
}

HvResult SummarizeRdds(const std::vector<RddGrid>& rdds, double d_plus) {
  if (rdds.size() < 2) {
    throw std::invalid_argument("SummarizeRdds: need >= 2 RDDs");
  }
  HvResult result;
  result.num_viewpoints = rdds.size();
  for (size_t i = 0; i < rdds.size(); ++i) {
    for (size_t j = i + 1; j < rdds.size(); ++j) {
      const double d = Discrepancy(rdds[i], rdds[j], d_plus);
      result.discrepancies.push_back(d);
      result.max_discrepancy = std::max(result.max_discrepancy, d);
    }
  }
  double sum = 0.0;
  for (double d : result.discrepancies) sum += d;
  result.mean_discrepancy =
      sum / static_cast<double>(result.discrepancies.size());
  result.hv = 1.0 - result.mean_discrepancy;
  return result;
}

double EmpiricalGDelta(const HvResult& result, double y) {
  if (result.discrepancies.empty()) {
    throw std::invalid_argument("EmpiricalGDelta: empty result");
  }
  size_t count = 0;
  for (double d : result.discrepancies) {
    if (d <= y) ++count;
  }
  return static_cast<double>(count) /
         static_cast<double>(result.discrepancies.size());
}

double HvBinaryHypercubeWithMidpoint(unsigned dimension) {
  const double p = std::pow(2.0, static_cast<double>(dimension));  // 2^D
  return 1.0 - (p * p - p) / std::pow(p + 1.0, 3.0);
}

}  // namespace mcm
