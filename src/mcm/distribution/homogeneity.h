// Homogeneity of viewpoints (Section 2): relative distance distributions
// (RDDs, Eq. 2), their discrepancy (Eq. 3), and the HV index (Eq. 4),
// estimated by sampling viewpoints and target objects from a database
// instance. Also provides the closed-form HV of Example 1 for validation.

#ifndef MCM_DISTRIBUTION_HOMOGENEITY_H_
#define MCM_DISTRIBUTION_HOMOGENEITY_H_

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "mcm/common/random.h"

namespace mcm {

/// A relative distance distribution F_{O_i} sampled on a uniform grid of
/// `size()` points spanning [0, d_plus] inclusive.
using RddGrid = std::vector<double>;

/// Builds the empirical RDD of a viewpoint from its distances to a target
/// sample: grid[g] = fraction of distances <= g * d_plus / (grid_points-1).
RddGrid BuildRddFromDistances(const std::vector<double>& distances,
                              size_t grid_points, double d_plus);

/// Discrepancy of two RDDs (Eq. 3): (1/d⁺)·∫|F_i − F_j| dx, evaluated by the
/// trapezoid rule on their common grid. Result lies in [0, 1].
double Discrepancy(const RddGrid& a, const RddGrid& b, double d_plus);

/// Result of an HV estimation.
struct HvResult {
  double hv = 0.0;                 ///< HV = 1 − E[Δ]  (Eq. 4).
  double mean_discrepancy = 0.0;   ///< E[Δ] over sampled viewpoint pairs.
  double max_discrepancy = 0.0;    ///< Largest sampled pairwise discrepancy.
  size_t num_viewpoints = 0;
  size_t num_targets = 0;
  /// Sampled discrepancies; their empirical CDF is G_Δ (Section 2).
  std::vector<double> discrepancies;
};

/// Options for HV estimation.
struct HvOptions {
  size_t num_viewpoints = 100;  ///< Objects whose RDDs are compared.
  size_t num_targets = 1000;    ///< Objects each RDD is evaluated against.
  size_t grid_points = 101;     ///< RDD evaluation grid resolution.
  double d_plus = 1.0;
  uint64_t seed = 42;
};

/// Computes mean/max discrepancy and HV from a set of per-viewpoint RDDs.
HvResult SummarizeRdds(const std::vector<RddGrid>& rdds, double d_plus);

/// Empirical G_Δ(y): the fraction of sampled discrepancies <= y.
double EmpiricalGDelta(const HvResult& result, double y);

/// Estimates HV(M) for a database instance: sample viewpoints and targets,
/// build each viewpoint's RDD against the targets, average all pairwise
/// discrepancies (Definition 2, estimated by Monte Carlo).
template <typename Object, typename Metric>
HvResult EstimateHomogeneity(const std::vector<Object>& objects,
                             const Metric& metric, const HvOptions& options) {
  if (objects.size() < 2) {
    throw std::invalid_argument("EstimateHomogeneity: need >= 2 objects");
  }
  RandomEngine rng = MakeEngine(options.seed, /*stream=*/11);
  const size_t v = std::min(options.num_viewpoints, objects.size());
  const size_t t = std::min(options.num_targets, objects.size());

  std::vector<size_t> viewpoint_idx(v);
  for (auto& i : viewpoint_idx) i = UniformIndex(rng, objects.size());
  std::vector<size_t> target_idx(t);
  for (auto& i : target_idx) i = UniformIndex(rng, objects.size());

  std::vector<RddGrid> rdds;
  rdds.reserve(v);
  std::vector<double> distances(t);
  for (size_t a = 0; a < v; ++a) {
    const Object& view = objects[viewpoint_idx[a]];
    for (size_t b = 0; b < t; ++b) {
      distances[b] = metric(view, objects[target_idx[b]]);
    }
    rdds.push_back(
        BuildRddFromDistances(distances, options.grid_points, options.d_plus));
  }
  HvResult result = SummarizeRdds(rdds, options.d_plus);
  result.num_targets = t;
  return result;
}

/// Closed-form HV of Example 1: the binary hypercube {0,1}^D extended with
/// the midpoint, under L∞ and the uniform distribution:
///   HV = 1 − (2^{2D} − 2^D) / (2^D + 1)^3.
double HvBinaryHypercubeWithMidpoint(unsigned dimension);

}  // namespace mcm

#endif  // MCM_DISTRIBUTION_HOMOGENEITY_H_
