// Multi-viewpoint distance statistics — the paper's future-work item 2:
// "For non-homogeneous spaces (HV << 1) our model is not guaranteed to
//  perform well. This suggests an approach which keeps several viewpoints,
//  and properly combines them to predict query costs [...] based on query
//  position (relative to the viewpoints)."
//
// A ViewpointSet stores a handful of pivot objects together with each
// pivot's relative distance distribution (RDD, Eq. 2) over the dataset.
// At query time the RDDs of the viewpoints closest to the query are blended
// with inverse-distance weights into a query-adapted estimate of F_Q, which
// any of the cost models can consume in place of the global F̂ⁿ.

#ifndef MCM_DISTRIBUTION_VIEWPOINTS_H_
#define MCM_DISTRIBUTION_VIEWPOINTS_H_

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "mcm/common/random.h"
#include "mcm/distribution/histogram.h"

namespace mcm {

/// How a viewpoint's RDD is adapted to the query position.
///
/// Neither mode dominates (see bench/ext_multi_viewpoint): the triangle
/// bracket is markedly better when the query may sit in a region no
/// viewpoint represents (strongly non-homogeneous spaces), while the plain
/// RDD is better when the nearest viewpoint shares the query's
/// neighborhood structure (e.g. one viewpoint per cluster).
enum class BlendMode {
  kPlain,             ///< Use each viewpoint's RDD unshifted.
  kTriangleMidpoint,  ///< Midpoint of the triangle-inequality bracket
                      ///< F_p(x−d) ≤ F_Q(x) ≤ F_p(x+d).
};

/// How viewpoints are chosen from the dataset.
enum class ViewpointSelection {
  kRandom,  ///< Uniform sample of the dataset.
  kMaxMin,  ///< Greedy k-center (farthest-point) sample: viewpoints spread
            ///< out to cover distinct regions of the space.
};

/// Options for ViewpointSet construction.
struct ViewpointOptions {
  size_t num_viewpoints = 8;
  size_t num_bins = 100;  ///< Bins of each per-viewpoint RDD histogram.
  double d_plus = 1.0;
  ViewpointSelection selection = ViewpointSelection::kMaxMin;
  size_t sample_targets = 2000;  ///< Dataset sample each RDD is built from.
  uint64_t seed = 42;
};

/// A set of pivot objects with their RDD histograms.
template <typename Object, typename Metric>
class ViewpointSet {
 public:
  /// Builds the set over a database instance.
  static ViewpointSet Build(const std::vector<Object>& objects,
                            const Metric& metric,
                            const ViewpointOptions& options) {
    if (objects.size() < 2) {
      throw std::invalid_argument("ViewpointSet: need >= 2 objects");
    }
    if (options.num_viewpoints == 0) {
      throw std::invalid_argument("ViewpointSet: need >= 1 viewpoint");
    }
    ViewpointSet set;
    set.metric_ = metric;
    set.d_plus_ = options.d_plus;
    RandomEngine rng = MakeEngine(options.seed, /*stream=*/19);

    const size_t k = std::min(options.num_viewpoints, objects.size());
    std::vector<size_t> chosen;
    if (options.selection == ViewpointSelection::kRandom) {
      for (size_t i = 0; i < k; ++i) {
        chosen.push_back(UniformIndex(rng, objects.size()));
      }
    } else {
      // Greedy farthest-point: start random, then repeatedly take the
      // object maximizing the distance to its nearest chosen viewpoint.
      chosen.push_back(UniformIndex(rng, objects.size()));
      std::vector<double> nearest(objects.size(),
                                  std::numeric_limits<double>::infinity());
      // Work on a sample for large datasets.
      const size_t probe = std::min<size_t>(objects.size(), 4000);
      std::vector<size_t> pool(probe);
      for (auto& p : pool) p = UniformIndex(rng, objects.size());
      while (chosen.size() < k) {
        const Object& last = objects[chosen.back()];
        size_t best = pool.front();
        double best_d = -1.0;
        for (size_t idx : pool) {
          double& nd = nearest[idx];
          nd = std::min(nd, metric(last, objects[idx]));
          if (nd > best_d) {
            best_d = nd;
            best = idx;
          }
        }
        chosen.push_back(best);
      }
    }

    // Build each viewpoint's RDD over a target sample.
    const size_t t = std::min(options.sample_targets, objects.size());
    std::vector<size_t> targets(t);
    for (auto& idx : targets) idx = UniformIndex(rng, objects.size());
    std::vector<double> distances(t);
    for (size_t c : chosen) {
      set.viewpoints_.push_back(objects[c]);
      for (size_t j = 0; j < t; ++j) {
        distances[j] = metric(objects[c], objects[targets[j]]);
      }
      set.rdds_.emplace_back(distances, options.num_bins, options.d_plus);
    }
    return set;
  }

  /// Query-adapted distance distribution. For each of the `blend` nearest
  /// viewpoints p with d = d(Q, p), the triangle inequality brackets the
  /// query's RDD:  F_p(x − d) ≤ F_Q(x) ≤ F_p(x + d); we take the midpoint
  /// of the bracket and average the viewpoints with inverse-distance
  /// weights. When Q coincides with a viewpoint this reduces to that
  /// viewpoint's own RDD. Costs `num_viewpoints` distance computations.
  DistanceHistogram QueryDistribution(
      const Object& query, size_t blend = 3,
      BlendMode mode = BlendMode::kTriangleMidpoint) const {
    blend = std::max<size_t>(1, std::min(blend, viewpoints_.size()));
    std::vector<std::pair<double, size_t>> by_distance;
    by_distance.reserve(viewpoints_.size());
    for (size_t i = 0; i < viewpoints_.size(); ++i) {
      by_distance.emplace_back(metric_(query, viewpoints_[i]), i);
    }
    std::partial_sort(by_distance.begin(), by_distance.begin() + blend,
                      by_distance.end());
    const double epsilon = 0.05 * d_plus_;
    const size_t bins = rdds_.front().num_bins();
    const double width = d_plus_ / static_cast<double>(bins);

    // Blend the CDF at every bin edge, then difference into masses.
    std::vector<double> cdf(bins + 1, 0.0);
    double total_weight = 0.0;
    for (size_t b = 0; b < blend; ++b) {
      const auto& [distance, idx] = by_distance[b];
      const double weight = 1.0 / (distance + epsilon);
      const DistanceHistogram& rdd = rdds_[idx];
      for (size_t e = 0; e <= bins; ++e) {
        const double x = width * static_cast<double>(e);
        const double value =
            mode == BlendMode::kTriangleMidpoint
                ? 0.5 * (rdd.Cdf(x - distance) + rdd.Cdf(x + distance))
                : rdd.Cdf(x);
        cdf[e] += weight * value;
      }
      total_weight += weight;
    }
    std::vector<double> masses(bins, 0.0);
    double prev = 0.0;
    for (size_t e = 1; e <= bins; ++e) {
      const double value = cdf[e] / total_weight;
      masses[e - 1] = std::max(value - prev, 0.0);
      prev = std::max(value, prev);
    }
    // Any residual mass (blend CDF below 1 at d⁺) goes to the last bin.
    double total_mass = 0.0;
    for (double m : masses) total_mass += m;
    if (total_mass < 1.0) {
      masses.back() += 1.0 - total_mass;
    }
    return DistanceHistogram::FromMasses(masses, d_plus_);
  }

  const std::vector<Object>& viewpoints() const { return viewpoints_; }
  const std::vector<DistanceHistogram>& rdds() const { return rdds_; }
  double d_plus() const { return d_plus_; }

 private:
  ViewpointSet() = default;

  Metric metric_;
  double d_plus_ = 1.0;
  std::vector<Object> viewpoints_;
  std::vector<DistanceHistogram> rdds_;
};

}  // namespace mcm

#endif  // MCM_DISTRIBUTION_VIEWPOINTS_H_
