#include "mcm/engine/executor.h"

#include <algorithm>

#include "mcm/common/env.h"

namespace mcm {
namespace engine {

namespace {

// Set while the current thread is executing a pool task; a nested
// ParallelFor from such a thread must run inline (every worker is already
// inside the outer job, so blocking on done_cv_ from one of them would
// never make progress).
thread_local bool g_inside_pool_task = false;

}  // namespace

size_t ResolveThreadCount(size_t requested) {
  if (requested > 0) {
    return requested;
  }
  const int64_t env = GetEnvInt("MCM_THREADS", 0);
  if (env > 0) {
    return static_cast<size_t>(env);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

size_t ResolveBuildThreadCount(size_t requested) {
  if (requested > 0) {
    return requested;
  }
  const int64_t env = GetEnvInt("MCM_BUILD_THREADS", 0);
  if (env > 0) {
    return static_cast<size_t>(env);
  }
  return 1;
}

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& task) {
  if (count == 0) {
    return;
  }
  if (g_inside_pool_task) {
    // Re-entrant submit: run inline on the calling worker. An exception
    // from a nested iteration propagates into the enclosing task, where
    // the outer job's error capture reports it.
    for (size_t i = 0; i < count; ++i) {
      task(i);
    }
    return;
  }
  std::exception_ptr error;
  {
    MutexLock lock(&mu_);
    task_ = &task;
    task_count_ = count;
    next_.store(0, std::memory_order_relaxed);
    first_error_ = nullptr;
    ++generation_;
    work_cv_.NotifyAll();
    while (next_.load(std::memory_order_acquire) < task_count_ ||
           active_workers_ > 0) {
      done_cv_.Wait(mu_);
    }
    task_ = nullptr;
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error != nullptr) {
    std::rethrow_exception(error);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(size_t)>* task = nullptr;
    size_t count = 0;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ &&
             (task_ == nullptr || generation_ == seen_generation)) {
        work_cv_.Wait(mu_);
      }
      if (shutdown_) {
        return;
      }
      seen_generation = generation_;
      task = task_;
      count = task_count_;
      ++active_workers_;
    }
    g_inside_pool_task = true;
    for (;;) {
      const size_t i = next_.fetch_add(1, std::memory_order_acq_rel);
      if (i >= count) {
        break;
      }
      try {
        (*task)(i);
      } catch (...) {
        MutexLock lock(&mu_);
        if (first_error_ == nullptr) {
          first_error_ = std::current_exception();
        }
      }
    }
    g_inside_pool_task = false;
    {
      MutexLock lock(&mu_);
      if (--active_workers_ == 0) {
        done_cv_.NotifyAll();
      }
    }
  }
}

}  // namespace engine
}  // namespace mcm
