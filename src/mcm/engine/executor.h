// Concurrent batch query executor. A BatchExecutor owns a fixed thread
// pool and fans a vector of queries out over an immutable MetricIndex;
// every query writes its answer and its QueryStats into its own slot, so
// results are position-stable and the merged totals — accumulated in query
// order after the pool drains — are bit-identical to a sequential loop
// running the same queries (integer counters, per-query isolation, and the
// thread-safe storage read path guarantee it; buffer hit/miss splits on a
// shared pool remain schedule-dependent, though their sum does not).
//
// Thread count resolution: ExecutorOptions::num_threads, else the
// MCM_THREADS environment variable, else the hardware concurrency.
// Optional per-query trace buffers (ExecutorOptions::trace_capacity > 0)
// are allocated one per query up front and merged deterministically by
// query position — worker threads never share a trace.

#ifndef MCM_ENGINE_EXECUTOR_H_
#define MCM_ENGINE_EXECUTOR_H_

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "mcm/common/mutex.h"
#include "mcm/common/query_stats.h"
#include "mcm/common/stopwatch.h"
#include "mcm/common/thread_annotations.h"
#include "mcm/engine/metric_index.h"
#include "mcm/engine/search_core.h"
#include "mcm/obs/telemetry.h"
#include "mcm/obs/trace.h"

namespace mcm {
namespace engine {

/// Resolves the worker count: `requested` when > 0, else the MCM_THREADS
/// environment variable, else std::thread::hardware_concurrency() (>= 1).
size_t ResolveThreadCount(size_t requested);

/// Resolves the *build* worker count (bulk loading): `requested` when > 0,
/// else the MCM_BUILD_THREADS environment variable, else 1 — construction
/// stays sequential unless explicitly parallelized, and the parallel build
/// is bit-identical to the sequential one at any thread count.
size_t ResolveBuildThreadCount(size_t requested);

/// Fixed pool of worker threads executing index-parallel jobs. Workers are
/// spawned once at construction; ParallelFor posts one job at a time and
/// blocks until every iteration completed. Iterations are claimed
/// dynamically (an atomic cursor), so the schedule is nondeterministic but
/// the set of executed indices is exactly [0, count).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Runs task(i) for every i in [0, count); returns when all are done.
  /// `task` must be callable from multiple threads concurrently. The first
  /// exception thrown by any iteration is rethrown here (remaining
  /// iterations still run to completion). Re-entrant submits — ParallelFor
  /// called from inside a task — run the nested iterations inline on the
  /// calling worker (every pool thread is already busy; waiting on them
  /// from one of them would deadlock).
  void ParallelFor(size_t count, const std::function<void(size_t)>& task)
      MCM_EXCLUDES(mu_);

 private:
  void WorkerLoop() MCM_EXCLUDES(mu_);

  Mutex mu_;
  CondVar work_cv_;
  CondVar done_cv_;
  /// Current job, or null between jobs.
  const std::function<void(size_t)>* task_ MCM_GUARDED_BY(mu_) = nullptr;
  size_t task_count_ MCM_GUARDED_BY(mu_) = 0;
  std::atomic<size_t> next_{0};
  /// Workers inside the current job.
  size_t active_workers_ MCM_GUARDED_BY(mu_) = 0;
  /// Job sequence number.
  uint64_t generation_ MCM_GUARDED_BY(mu_) = 0;
  bool shutdown_ MCM_GUARDED_BY(mu_) = false;
  std::exception_ptr first_error_ MCM_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;
};

/// Batch executor configuration.
struct ExecutorOptions {
  /// Worker threads; 0 = MCM_THREADS env var, else hardware concurrency.
  size_t num_threads = 0;
  /// When > 0, attach a QueryTrace of this ring capacity to every query.
  size_t trace_capacity = 0;
  /// When > 0 (and MCM_OBS is on), attach a PhaseSpanLog of this capacity
  /// to every query and submit completed logs to TelemetrySink::Global()
  /// for the Chrome-trace export. Span logs are also attached — with the
  /// default capacity — whenever MCM_TRACE_OUT is configured.
  size_t span_capacity = 0;
};

/// Everything a batch run produces. `results[i]` and `per_query[i]` belong
/// to `queries[i]`; `totals` is the per-query stats summed in query order.
template <typename Object>
struct BatchResult {
  std::vector<std::vector<SearchResult<Object>>> results;
  std::vector<QueryStats> per_query;
  QueryStats totals;
  std::vector<QueryTrace> traces;  ///< One per query when tracing is on.
  std::vector<PhaseSpanLog> span_logs;  ///< One per query when spans are on.
  /// Per-query wall time in microseconds, measured on the worker that ran
  /// the query. Individual queries overlap, so these sum to more than
  /// wall_seconds under concurrency — they are the tail-latency signal
  /// (p50/p95/p99), not a throughput measure.
  std::vector<double> latencies_us;
  double wall_seconds = 0.0;       ///< Wall time of the parallel section.

  /// Queries per second over the parallel section.
  double Qps() const {
    return wall_seconds > 0.0
               ? static_cast<double>(results.size()) / wall_seconds
               : 0.0;
  }
};

/// Runs query batches over an immutable index through a fixed thread pool.
/// The index must outlive the executor and must not be mutated while a
/// batch is in flight.
template <typename Index>
  requires MetricIndex<Index>
class BatchExecutor {
 public:
  using Object = typename Index::Object;

  explicit BatchExecutor(const Index& index, ExecutorOptions options = {})
      : index_(index),
        options_(options),
        pool_(ResolveThreadCount(options.num_threads)) {}

  /// range(Q_i, radius) for every query, answered in parallel.
  BatchResult<Object> RangeSearchBatch(const std::vector<Object>& queries,
                                       double radius) const {
    return Run(queries, [this, radius](const Object& q, QueryStats* st) {
      return index_.RangeSearch(q, radius, st);
    });
  }

  /// NN(Q_i, k) for every query, answered in parallel.
  BatchResult<Object> KnnSearchBatch(const std::vector<Object>& queries,
                                     size_t k) const {
    return Run(queries, [this, k](const Object& q, QueryStats* st) {
      return index_.KnnSearch(q, k, st);
    });
  }

  size_t num_threads() const { return pool_.size(); }
  const Index& index() const { return index_; }

 private:
  template <typename QueryFn>
  BatchResult<Object> Run(const std::vector<Object>& queries,
                          const QueryFn& fn) const {
    BatchResult<Object> batch;
    batch.results.resize(queries.size());
    batch.per_query.resize(queries.size());
    if (options_.trace_capacity > 0) {
      batch.traces.reserve(queries.size());
      for (size_t i = 0; i < queries.size(); ++i) {
        batch.traces.emplace_back(options_.trace_capacity);
      }
    }
    size_t span_capacity = options_.span_capacity;
    if (span_capacity == 0 && !TraceOutPath().empty()) {
      span_capacity = PhaseSpanLog::kDefaultCapacity;
    }
    const bool spans_on = ObsEnabled() && span_capacity > 0;
    if (spans_on) {
      batch.span_logs.reserve(queries.size());
      for (size_t i = 0; i < queries.size(); ++i) {
        batch.span_logs.emplace_back(span_capacity);
      }
    }
    batch.latencies_us.resize(queries.size(), 0.0);
    Stopwatch watch;
    pool_.ParallelFor(queries.size(), [&](size_t i) {
      QueryStats* st = &batch.per_query[i];
      if (!batch.traces.empty()) {
        st->trace = &batch.traces[i];
      }
      if (!batch.span_logs.empty()) {
        st->spans = &batch.span_logs[i];
      }
      Stopwatch query_watch;
      batch.results[i] = fn(queries[i], st);
      batch.latencies_us[i] = query_watch.ElapsedSeconds() * 1e6;
      st->trace = nullptr;  // The trace lives in batch.traces, not here.
      st->spans = nullptr;  // Likewise batch.span_logs.
    });
    batch.wall_seconds = watch.ElapsedSeconds();
    // Deterministic merge: fold per-query counters in query order.
    for (const QueryStats& st : batch.per_query) {
      batch.totals += st;
    }
    if (spans_on) {
      // Feed per-phase histograms and the Chrome-trace sink, in query
      // order so exports are deterministic given a serial schedule.
      for (size_t i = 0; i < queries.size(); ++i) {
        ObservePhaseTimes(batch.per_query[i], /*query_id=*/i);
        TelemetrySink::Global().Submit(batch.span_logs[i], /*query_id=*/i);
      }
    }
    return batch;
  }

  const Index& index_;
  ExecutorOptions options_;
  mutable ThreadPool pool_;
};

}  // namespace engine
}  // namespace mcm

#endif  // MCM_ENGINE_EXECUTOR_H_
