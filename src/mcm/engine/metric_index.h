// The MetricIndex concept: the uniform query interface every access path
// implements. The paper's cost models exist so an optimizer can choose
// among interchangeable access paths; this concept is what makes them
// interchangeable in code — cost/access_path.h builds executable plans over
// any MetricIndex pair, and engine/executor.h batches queries over any
// MetricIndex without knowing which structure answers them.
//
// Core interface (all four indexes — MTree, VpTree, Gnat, LinearScan):
//   using Object = ...;                                  // indexed type
//   std::vector<SearchResult<Object>> RangeSearch(q, r, QueryStats* = 0);
//   std::vector<SearchResult<Object>> KnnSearch(q, k, QueryStats* = 0);
//   size_t size();                                       // object count
//
// Optional capabilities, modeled as separate concepts because not every
// structure supports them:
//   DynamicMetricIndex  — Insert(object, oid) (M-tree only; the static
//                         trees are build-once).
//   StatsViewIndex      — CollectStats() returning a structure-statistics
//                         view (vp-tree, GNAT; the M-tree variant takes the
//                         conventional root radius d+ as a parameter, the
//                         cost-model hook described in tree_stats.h).
//
// Query methods must be const and safe to call concurrently from many
// threads on an immutable index — the batch executor relies on it. Mutating
// operations (Insert, Delete, Build) are single-writer.

#ifndef MCM_ENGINE_METRIC_INDEX_H_
#define MCM_ENGINE_METRIC_INDEX_H_

#include <concepts>
#include <cstddef>
#include <vector>

#include "mcm/common/query_stats.h"
#include "mcm/engine/search_core.h"

namespace mcm {

template <typename Index>
concept MetricIndex =
    requires(const Index& index, const typename Index::Object& query,
             double radius, size_t k, QueryStats* stats) {
      typename Index::Object;
      {
        index.RangeSearch(query, radius, stats)
      } -> std::same_as<std::vector<SearchResult<typename Index::Object>>>;
      {
        index.KnnSearch(query, k, stats)
      } -> std::same_as<std::vector<SearchResult<typename Index::Object>>>;
      { index.size() } -> std::convertible_to<size_t>;
    };

/// An index that additionally supports incremental insertion.
template <typename Index>
concept DynamicMetricIndex =
    MetricIndex<Index> &&
    requires(Index& index, const typename Index::Object& object,
             uint64_t oid) {
      { index.Insert(object, oid) };
    };

/// An index that exports a structure-statistics view without parameters.
template <typename Index>
concept StatsViewIndex = MetricIndex<Index> && requires(const Index& index) {
  { index.CollectStats() };
};

}  // namespace mcm

#endif  // MCM_ENGINE_METRIC_INDEX_H_
