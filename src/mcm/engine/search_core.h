// Shared traversal core of the metric query engine. Every index (M-tree,
// vp-tree, GNAT, linear scan) answers range and k-NN queries through the
// same three pieces defined here:
//
//  - SearchResult: the common answer record (object, external id, distance).
//  - Result collectors: RangeCollector keeps everything within a fixed
//    radius; KnnCollector maintains the max-heap of the k best candidates
//    and exposes the shrinking k-NN bound r_k. Both present the same
//    Bound()/Offer() protocol, so one traversal template serves both query
//    kinds.
//  - BestFirstSearch: the generic best-first driver. It owns the frontier
//    priority queue ordered by dmin (a lower bound on the distance from the
//    query to anything in the subtree), applies the optimal termination rule
//    (stop when the closest unexplored region lies beyond the collector's
//    bound — Hjaltason & Samet's algorithm, which the M-tree k-NN of the
//    paper instantiates), and delegates everything structure-specific to an
//    Expand callback: reading the node, offering data objects to the
//    collector, and pushing children with their per-structure lower bounds
//    (covering radius, vp shells, or the GNAT range table).
//
// With a fixed bound (RangeCollector) the driver degenerates to plain
// pruned traversal and visits exactly the nodes the recursive formulation
// visits, so cost counters are unchanged; with the shrinking k-NN bound it
// is the optimal best-first search.

#ifndef MCM_ENGINE_SEARCH_CORE_H_
#define MCM_ENGINE_SEARCH_CORE_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "mcm/common/query_stats.h"
#include "mcm/engine/witness.h"
#include "mcm/obs/phase.h"
#include "mcm/obs/trace.h"

namespace mcm {

/// One query answer: the object, its external id, and its distance to the
/// query object.
template <typename Object>
struct SearchResult {
  uint64_t oid = 0;
  Object object;
  double distance = 0.0;
};

namespace engine {

/// Orders results by distance, breaking ties by oid so every execution
/// (recursive, best-first, batched) reports an identical answer list.
template <typename Object>
inline bool ResultOrder(const SearchResult<Object>& a,
                        const SearchResult<Object>& b) {
  return a.distance != b.distance ? a.distance < b.distance : a.oid < b.oid;
}

/// Collector for range(Q, r): a fixed bound and an append-only result list.
template <typename Object>
class RangeCollector {
 public:
  explicit RangeCollector(double radius) : radius_(radius) {}

  /// The pruning bound never shrinks for a range query.
  double Bound() const { return radius_; }

  void Offer(uint64_t oid, const Object& object, double distance) {
    if (distance <= radius_) {
      results_.push_back({oid, object, distance});
    }
  }

  /// Returns the collected results sorted by increasing distance.
  std::vector<SearchResult<Object>> Take() {
    std::sort(results_.begin(), results_.end(), ResultOrder<Object>);
    return std::move(results_);
  }

 private:
  double radius_;
  std::vector<SearchResult<Object>> results_;
};

/// Collector for NN(Q, k): the max-heap of the k best candidates seen so
/// far; Bound() is the paper's dynamic search radius r_k.
template <typename Object>
class KnnCollector {
 public:
  explicit KnnCollector(size_t k) : k_(k) {}

  /// r_k: the k-th best distance so far (+inf until k candidates exist;
  /// -inf for the degenerate k = 0, which prunes everything).
  double Bound() const {
    if (heap_.size() < k_) return std::numeric_limits<double>::infinity();
    if (k_ == 0) return -std::numeric_limits<double>::infinity();
    return heap_.top().distance;
  }

  void Offer(uint64_t oid, const Object& object, double distance) {
    if (k_ == 0) return;
    if (distance <= Bound() || heap_.size() < k_) {
      heap_.push({oid, object, distance});
      if (heap_.size() > k_) heap_.pop();
    }
  }

  /// Returns the k best candidates sorted by increasing distance.
  std::vector<SearchResult<Object>> Take() {
    std::vector<SearchResult<Object>> results;
    results.reserve(heap_.size());
    while (!heap_.empty()) {
      results.push_back(heap_.top());
      heap_.pop();
    }
    std::sort(results.begin(), results.end(), ResultOrder<Object>);
    return results;
  }

 private:
  /// Heap "less": the top is the worst kept candidate — largest distance,
  /// and among distance ties the largest oid. Ties at the k-th distance
  /// are thereby resolved toward smaller oids no matter in which order the
  /// traversal encountered them, so every index (and every thread
  /// schedule) keeps the same k answers.
  struct MaxByDistance {
    bool operator()(const SearchResult<Object>& a,
                    const SearchResult<Object>& b) const {
      return ResultOrder(a, b);
    }
  };

  size_t k_;
  std::priority_queue<SearchResult<Object>, std::vector<SearchResult<Object>>,
                      MaxByDistance>
      heap_;
};

/// One unexplored region on the driver's frontier. `Handle` is the index's
/// node reference (M-tree: node id + query-parent distance; the in-memory
/// trees: a node pointer); `trace_id` identifies the node in trace events
/// (0 where the structure has no stable node ids). `witness` carries the
/// query distances computed on the path down to this region — the driver
/// owns the witness set, the Expand callback extends it with each new
/// metric evaluation and consults it via GuardedDistanceWithin.
template <typename Handle>
struct FrontierEntry {
  double dmin = 0.0;
  uint32_t level = 1;
  uint64_t trace_id = 0;
  Handle handle{};
  WitnessChain witness{};
};

/// The driver's frontier: a min-heap on dmin plus the prune bookkeeping the
/// Expand callbacks share.
template <typename Handle, typename Collector>
class Frontier {
 public:
  Frontier(Collector& collector, QueryStats* st)
      : collector_(collector), st_(st) {}

  void Push(double dmin, uint32_t level, uint64_t trace_id, Handle handle,
            WitnessChain witness = {}) {
    heap_.push({dmin, level, trace_id, std::move(handle), std::move(witness)});
  }

  /// Pushes the region when its lower bound can still beat the collector's
  /// current bound; otherwise counts one pruned subtree under `reason`.
  void PushOrPrune(double dmin, uint32_t level, uint64_t trace_id,
                   Handle handle, PruneReason reason,
                   WitnessChain witness = {}) {
    if (dmin <= collector_.Bound()) {
      Push(dmin, level, trace_id, std::move(handle), std::move(witness));
    } else {
      ++st_->nodes_pruned;
      if (st_->trace != nullptr) {
        st_->trace->RecordPrune(trace_id, level, reason);
      }
    }
  }

  bool Empty() const { return heap_.empty(); }
  size_t Size() const { return heap_.size(); }

  FrontierEntry<Handle> PopMin() {
    FrontierEntry<Handle> top = heap_.top();
    heap_.pop();
    return top;
  }

 private:
  struct MinByDmin {
    bool operator()(const FrontierEntry<Handle>& a,
                    const FrontierEntry<Handle>& b) const {
      return a.dmin > b.dmin;
    }
  };

  Collector& collector_;
  QueryStats* st_;
  std::priority_queue<FrontierEntry<Handle>, std::vector<FrontierEntry<Handle>>,
                      MinByDmin>
      heap_;
};

/// Generic best-first traversal. Seeds the frontier with `root`, pops
/// regions in increasing-dmin order, and stops (pruning the whole remaining
/// frontier) as soon as the closest region lies beyond the collector's
/// bound. `expand` receives the popped entry and the frontier; it reads the
/// node, offers its data objects to the collector, and pushes children via
/// Push/PushOrPrune with their structure-specific lower bounds.
template <typename Handle, typename Collector, typename Expand>
void BestFirstSearch(Handle root, uint64_t root_trace_id, Collector& collector,
                     QueryStats* st, Expand&& expand) {
  // The traverse phase covers the whole driver loop; Expand callbacks carve
  // the nested distance-eval / page-read / decode phases out of it.
  ScopedSpan traverse_span(st, QueryPhase::kTraverse);
  Frontier<Handle, Collector> frontier(collector, st);
  frontier.Push(0.0, /*level=*/1, root_trace_id, std::move(root));
  while (!frontier.Empty()) {
    const FrontierEntry<Handle> item = frontier.PopMin();
    if (item.dmin > collector.Bound()) {
      // No remaining region can improve the answer: the popped item and
      // everything still queued are cut off by the dynamic bound.
      st->nodes_pruned += 1 + frontier.Size();
      if (st->trace != nullptr) {
        st->trace->RecordPrune(item.trace_id, item.level,
                               PruneReason::kKnnBound);
        while (!frontier.Empty()) {
          const FrontierEntry<Handle> rest = frontier.PopMin();
          st->trace->RecordPrune(rest.trace_id, rest.level,
                                 PruneReason::kKnnBound);
        }
      }
      break;
    }
    expand(item, frontier);
  }
}

}  // namespace engine
}  // namespace mcm

#endif  // MCM_ENGINE_SEARCH_CORE_H_
