// The engine's witness set: every metric evaluation a traversal performs
// on its way down is a *witness* — a pair (reference, d(witness, Q)) that,
// combined with a stored witness-to-object distance, yields triangle-
// inequality bounds on d(Q, object) for free:
//
//   |d(Q, w) - d(w, o)| <= d(Q, o) <= d(Q, w) + d(w, o).
//
// The Cascading Metric Tree applies exactly this cascade of bounds to cut
// metric evaluations; the Symmetric M-tree shows the stored side (the
// d(w, o) values) can live in the node entry layout. Here the witness set
// is owned by the traversal driver (search_core.h threads a WitnessChain
// through every FrontierEntry) and the indexes supply the stored side:
// M-tree entries persist distances to ancestor routing objects, the
// vp-tree propagates ancestor-vantage distances at build time, and the
// GNAT's range tables are one witness source among several.
//
// Replacement policy: a traversal path accrues witnesses root-to-leaf and
// bounds from near ancestors are the tightest (their stored distances
// describe the smallest regions), so the chain keeps every link but
// consults only the `capacity` most recent (deepest) ones. Capacity comes
// from MCM_WITNESSES (default 8); capacity 0 disables every witness
// consultation and reproduces the pre-witness traversal bit-identically.
//
// The sole sanctioned prune-site entry point is GuardedDistanceWithin: it
// consults the witness bounds first, charges either one avoided or one
// computed evaluation to QueryStats, and only then runs the (bounded)
// metric. The lint rule `no-direct-prune-distance` keeps index prune sites
// on this path.

#ifndef MCM_ENGINE_WITNESS_H_
#define MCM_ENGINE_WITNESS_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <utility>

#include "mcm/common/env.h"
#include "mcm/common/query_stats.h"
#include "mcm/metric/bounded.h"

namespace mcm {
namespace engine {

/// Number of witnesses consulted per bound when the capacity is left at
/// its -1 ("resolve from environment") default and MCM_WITNESSES is unset.
inline constexpr int kDefaultWitnessCapacity = 8;

/// Resolves a witness-capacity knob: a non-negative configured value wins;
/// -1 defers to MCM_WITNESSES (default kDefaultWitnessCapacity). Clamped
/// to a sane non-negative range.
inline int ResolveWitnessCapacity(int configured) {
  int64_t v = configured >= 0
                  ? configured
                  : GetEnvInt("MCM_WITNESSES", kDefaultWitnessCapacity);
  if (v < 0) v = 0;
  if (v > 1024) v = 1024;
  return static_cast<int>(v);
}

/// The stored side of one witness bound: the interval [lo, hi] known to
/// contain d(witness, o) for the object (or every object of the region)
/// being bounded. A point distance is the degenerate interval [d, d];
/// Unknown() contributes nothing.
struct WitnessInterval {
  double lo = std::numeric_limits<double>::quiet_NaN();
  double hi = std::numeric_limits<double>::quiet_NaN();

  static WitnessInterval Unknown() { return {}; }
  static WitnessInterval Point(double d) { return {d, d}; }

  bool known() const { return !std::isnan(lo) && !std::isnan(hi); }
};

/// An immutable chain of witnesses, newest (deepest ancestor) first.
/// Extending shares structure with the parent chain, so frontier entries
/// of sibling subtrees branch off one path cheaply and safely across the
/// batch executor's threads (links are immutable once created).
class WitnessChain {
 public:
  WitnessChain() = default;

  /// The chain with one more witness (reference `ref`, measured query
  /// distance `query_distance`) in front. `ref` is index-defined: the
  /// M-tree uses the ancestor depth, the GNAT an ancestor slot index.
  WitnessChain Extend(uint64_t ref, double query_distance) const {
    auto link = std::make_shared<Link>();
    link->ref = ref;
    link->query_distance = query_distance;
    link->next = head_;
    WitnessChain out;
    out.head_ = std::move(link);
    return out;
  }

  bool Empty() const { return head_ == nullptr; }

  /// Calls fn(ref, query_distance) for the `limit` newest witnesses.
  template <typename Fn>
  void Visit(int limit, Fn&& fn) const {
    const Link* link = head_.get();
    for (int i = 0; i < limit && link != nullptr; ++i, link = link->next.get()) {
      fn(link->ref, link->query_distance);
    }
  }

 private:
  struct Link {
    uint64_t ref = 0;
    double query_distance = 0.0;
    std::shared_ptr<const Link> next;
  };

  std::shared_ptr<const Link> head_;
};

/// Best lower bound on d(Q, o) obtainable from the `capacity` newest
/// witnesses. `stored(ref)` must return the WitnessInterval containing
/// d(witness ref, o); Unknown() intervals are skipped. Never negative;
/// 0 when no witness contributes.
template <typename StoredFn>
inline double WitnessLowerBound(const WitnessChain& chain, int capacity,
                                StoredFn&& stored) {
  double lb = 0.0;
  chain.Visit(capacity, [&](uint64_t ref, double dq) {
    const WitnessInterval iv = stored(ref);
    if (!iv.known()) return;
    if (dq - iv.hi > lb) lb = dq - iv.hi;
    if (iv.lo - dq > lb) lb = iv.lo - dq;
  });
  return lb;
}

namespace internal {

/// Metrics (CountedMetric) that keep their own avoided-evaluation ledger.
template <typename M>
concept WitnessAwareMetric = requires(const M& m) {
  m.RecordAvoided();
};

}  // namespace internal

/// The engine's guarded prune-site evaluation. Consults the witness bounds
/// first: when they prove d(a, b) > bound, charges one avoided evaluation
/// (QueryStats::distance_calcs_avoided_by_witness plus the metric's own
/// ledger when it keeps one) and returns +infinity without touching the
/// metric. Otherwise charges one computed evaluation and runs the bounded
/// protocol. With capacity 0 (or an empty chain) this is exactly the
/// pre-witness `++distance_computations; BoundedDistance(...)` sequence.
template <typename StoredFn, typename Metric, typename ObjectT>
inline double GuardedDistanceWithin(const WitnessChain& chain, int capacity,
                                    StoredFn&& stored, const Metric& metric,
                                    const ObjectT& a, const ObjectT& b,
                                    double bound, QueryStats* st) {
  if (capacity > 0 && !chain.Empty() &&
      WitnessLowerBound(chain, capacity, stored) > bound) {
    ++st->distance_calcs_avoided_by_witness;
    if constexpr (internal::WitnessAwareMetric<Metric>) {
      metric.RecordAvoided();
    }
    return std::numeric_limits<double>::infinity();
  }
  ++st->distance_computations;
  return BoundedDistance(metric, a, b, bound);
}

/// Guarded evaluation for sites that need the *exact* distance when the
/// witness bounds cannot rule the object out past `prune_bound` (GNAT
/// split points: the computed distance feeds the range-table pruning loop
/// and the children's dmin bounds, so the bounded early exit is off the
/// table). Avoidance accounting matches GuardedDistanceWithin; the
/// computed branch charges one evaluation and runs the metric unbounded.
template <typename StoredFn, typename Metric, typename ObjectT>
inline double GuardedExactDistance(const WitnessChain& chain, int capacity,
                                   StoredFn&& stored, const Metric& metric,
                                   const ObjectT& a, const ObjectT& b,
                                   double prune_bound, QueryStats* st) {
  if (capacity > 0 && !chain.Empty() &&
      WitnessLowerBound(chain, capacity, stored) > prune_bound) {
    ++st->distance_calcs_avoided_by_witness;
    if constexpr (internal::WitnessAwareMetric<Metric>) {
      metric.RecordAvoided();
    }
    return std::numeric_limits<double>::infinity();
  }
  ++st->distance_computations;
  return metric(a, b);
}

/// Guarded evaluation for sites with no stored witness distances (linear
/// scan, structures before their cascade is installed): one computed
/// evaluation through the bounded protocol. Identical accounting to the
/// historical inline sequence, but routed through the engine so prune
/// sites stay lintable.
template <typename Metric, typename ObjectT>
inline double CountedDistanceWithin(const Metric& metric, const ObjectT& a,
                                    const ObjectT& b, double bound,
                                    QueryStats* st) {
  ++st->distance_computations;
  return BoundedDistance(metric, a, b, bound);
}

}  // namespace engine
}  // namespace mcm

#endif  // MCM_ENGINE_WITNESS_H_
