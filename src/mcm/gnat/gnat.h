// GNAT — the Geometric Near-neighbor Access Tree (Brin, VLDB'95; the
// paper's reference [6] and one of the static metric trees the M-tree is
// contrasted with). Each node holds k split points chosen by a greedy
// farthest-point heuristic; the remaining objects go to their nearest
// split point, and the node stores a range table
//   range[i][j] = [min, max] of d(p_i, x) over subtree j,
// which lets range search eliminate whole subtrees with distances the
// query has already paid for (Brin's iterative pruning loop).

#ifndef MCM_GNAT_GNAT_H_
#define MCM_GNAT_GNAT_H_

#include <algorithm>
#include <limits>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "mcm/common/query_stats.h"
#include "mcm/common/random.h"
#include "mcm/engine/search_core.h"
#include "mcm/engine/witness.h"
#include "mcm/obs/trace.h"

namespace mcm {

namespace check {
struct IndexInspector;
}  // namespace check

/// GNAT construction options.
struct GnatOptions {
  size_t arity = 16;          ///< Split points per internal node.
  size_t leaf_capacity = 32;  ///< Objects per leaf bucket.
  size_t candidate_factor = 3;  ///< Sampled candidates = factor * arity.
  uint64_t seed = 42;

  /// Witness-set capacity for search (engine/witness.h): how many
  /// ancestor-split distances each evaluation may reuse on top of the
  /// node's own range table. The stored side (per-subtree ancestor ranges,
  /// per-object ancestor rows) is propagated from the distances the build
  /// already computes during assignment — no extra metric evaluations — so
  /// 0 reproduces the witness-free search bit-identically; -1 (default)
  /// resolves from MCM_WITNESSES (default 8).
  int witness_capacity = -1;
};

/// Structure statistics of a built GNAT.
struct GnatStatsView {
  size_t num_objects = 0;
  size_t num_internal = 0;
  size_t num_leaves = 0;
  size_t height = 0;
};

template <typename Traits>
class Gnat {
 public:
  using Object = typename Traits::Object;
  using Metric = typename Traits::Metric;
  using Result = SearchResult<Object>;

  Gnat(const std::vector<Object>& objects, Metric metric, GnatOptions options)
      : metric_(std::move(metric)),
        options_(options),
        witness_capacity_(
            engine::ResolveWitnessCapacity(options.witness_capacity)) {
    if (options_.arity < 2) {
      throw std::invalid_argument("Gnat: arity must be >= 2");
    }
    if (options_.leaf_capacity < 1) {
      throw std::invalid_argument("Gnat: leaf capacity must be >= 1");
    }
    RandomEngine rng = MakeEngine(options_.seed, /*stream=*/23);
    std::vector<std::pair<Object, uint64_t>> items;
    items.reserve(objects.size());
    for (size_t i = 0; i < objects.size(); ++i) {
      items.emplace_back(objects[i], static_cast<uint64_t>(i));
    }
    num_objects_ = items.size();
    if (!items.empty()) {
      std::vector<std::vector<double>> rows(items.size());
      root_ = Build(std::move(items), std::move(rows), rng);
    }
  }

  /// range(Q, r): all objects within `radius`, sorted by distance.
  std::vector<Result> RangeSearch(const Object& query, double radius,
                                  QueryStats* stats = nullptr) const {
    QueryStats local;
    QueryStats* st = stats ? stats : &local;
    ResetCounters(st);
    if (root_ == nullptr || radius < 0.0) {
      return {};
    }
    engine::RangeCollector<Object> collector(radius);
    Traverse(query, collector, st);
    return collector.Take();
  }

  /// NN(Q, k): best-first k-NN through the shared engine driver. Brin's
  /// VLDB'95 paper only gives the range algorithm; the k-NN generalization
  /// falls out of the engine's generic traversal — the same iterative
  /// range-table pruning runs against the shrinking bound r_k, and each
  /// surviving subtree enters the frontier with the range-table lower
  /// bound max_i max(lo_ij - d_i, d_i - hi_ij, 0).
  std::vector<Result> KnnSearch(const Object& query, size_t k,
                                QueryStats* stats = nullptr) const {
    QueryStats local;
    QueryStats* st = stats ? stats : &local;
    ResetCounters(st);
    if (root_ == nullptr || k == 0) {
      return {};
    }
    engine::KnnCollector<Object> collector(k);
    Traverse(query, collector, st);
    return collector.Take();
  }

  size_t size() const { return num_objects_; }

  /// Resolved witness-set capacity (options.witness_capacity, with -1
  /// resolved from MCM_WITNESSES at construction).
  int witness_capacity() const { return witness_capacity_; }

  GnatStatsView CollectStats() const {
    GnatStatsView view;
    view.num_objects = num_objects_;
    Walk(root_.get(), 1, &view);
    return view;
  }

 private:
  // Structural invariant checkers (src/mcm/check/) read the private node
  // graph without widening the public API.
  friend struct check::IndexInspector;

  struct Range {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();

    void Extend(double d) {
      lo = std::min(lo, d);
      hi = std::max(hi, d);
    }
  };

  struct Node {
    bool is_leaf = true;
    std::vector<std::pair<Object, uint64_t>> bucket;  // Leaf payload.
    // Witness cascade (leaf): per bucket object, its distances to the
    // ancestor split points. Slot i of a row is the i-th ancestor split in
    // root-to-parent, split-order traversal — every internal ancestor
    // contributes its m splits as consecutive slots.
    std::vector<std::vector<double>> bucket_ancestor_distances;
    // Internal payload.
    std::vector<Object> splits;
    std::vector<uint64_t> split_oids;
    std::vector<std::unique_ptr<Node>> children;  // Aligned with splits.
    /// ranges[i * splits.size() + j]: d(p_i, ·) over subtree j (the split
    /// point p_j itself included).
    std::vector<Range> ranges;
    // Witness cascade (internal): per split point, its distances to the
    // ancestor slots (same layout as a leaf row).
    std::vector<std::vector<double>> split_ancestor_distances;
    // Witness cascade (all nodes): [lo, hi] of d(ancestor slot s, x) over
    // every object of this subtree. Its length is this node's slot base:
    // the ref of this node's own split i is ancestor_ranges.size() + i.
    std::vector<Range> ancestor_ranges;
  };

  /// `rows[i]` carries items[i]'s distances to every ancestor slot
  /// (parallel to `items`); Build aggregates them into ancestor_ranges,
  /// keeps them per object in leaves and per split point in internal
  /// nodes, and extends each descending row with the m split distances the
  /// assignment loop computes anyway — reused instead of discarded.
  std::unique_ptr<Node> Build(std::vector<std::pair<Object, uint64_t>> items,
                              std::vector<std::vector<double>> rows,
                              RandomEngine& rng) {
    auto node = std::make_unique<Node>();
    if (!rows.empty() && !rows.front().empty()) {
      node->ancestor_ranges.assign(rows.front().size(), Range());
      for (const auto& row : rows) {
        for (size_t a = 0; a < row.size(); ++a) {
          node->ancestor_ranges[a].Extend(row[a]);
        }
      }
    }
    if (items.size() <= std::max(options_.leaf_capacity, options_.arity)) {
      node->is_leaf = true;
      node->bucket = std::move(items);
      node->bucket_ancestor_distances = std::move(rows);
      return node;
    }
    node->is_leaf = false;
    const size_t k = options_.arity;

    // Greedy farthest-point split selection over a sampled candidate pool.
    const size_t pool_size =
        std::min(items.size(), options_.candidate_factor * k);
    std::vector<size_t> pool(items.size());
    std::iota(pool.begin(), pool.end(), 0);
    for (size_t i = 0; i < pool_size; ++i) {
      std::swap(pool[i], pool[i + UniformIndex(rng, pool.size() - i)]);
    }
    pool.resize(pool_size);

    std::vector<size_t> chosen;
    chosen.push_back(pool[UniformIndex(rng, pool.size())]);
    std::vector<double> nearest(pool.size(),
                                std::numeric_limits<double>::infinity());
    while (chosen.size() < k) {
      size_t best_pos = 0;
      double best_d = -1.0;
      for (size_t c = 0; c < pool.size(); ++c) {
        nearest[c] = std::min(
            nearest[c],
            metric_(items[chosen.back()].first, items[pool[c]].first));
        if (nearest[c] > best_d) {
          best_d = nearest[c];
          best_pos = c;
        }
      }
      if (best_d <= 0.0) break;  // All duplicates: fewer splits suffice.
      chosen.push_back(pool[best_pos]);
    }

    const size_t m = chosen.size();
    std::vector<bool> is_split(items.size(), false);
    for (size_t c : chosen) is_split[c] = true;
    for (size_t c : chosen) {
      node->splits.push_back(items[c].first);
      node->split_oids.push_back(items[c].second);
      // Split points stop descending here; their ancestor rows become the
      // stored side of the witness bounds guarding their own evaluation.
      node->split_ancestor_distances.push_back(std::move(rows[c]));
    }

    // Assign every non-split object to its nearest split point, extending
    // the range table as we go.
    std::vector<std::vector<std::pair<Object, uint64_t>>> parts(m);
    std::vector<std::vector<std::vector<double>>> part_rows(m);
    node->ranges.assign(m * m, Range());
    std::vector<double> dists(m);
    for (size_t idx = 0; idx < items.size(); ++idx) {
      if (is_split[idx]) continue;
      size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < m; ++i) {
        dists[i] = metric_(node->splits[i], items[idx].first);
        if (dists[i] < best_d) {
          best_d = dists[i];
          best = i;
        }
      }
      for (size_t i = 0; i < m; ++i) {
        node->ranges[i * m + best].Extend(dists[i]);
      }
      std::vector<double> row = std::move(rows[idx]);
      row.insert(row.end(), dists.begin(), dists.end());
      part_rows[best].push_back(std::move(row));
      parts[best].push_back(std::move(items[idx]));
    }
    // Each subtree's range also covers its own split point.
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < m; ++j) {
        node->ranges[i * m + j].Extend(metric_(node->splits[i],
                                               node->splits[j]));
      }
    }

    node->children.resize(m);
    for (size_t j = 0; j < m; ++j) {
      node->children[j] = parts[j].empty()
                              ? nullptr
                              : Build(std::move(parts[j]),
                                      std::move(part_rows[j]), rng);
    }
    return node;
  }

  /// Shared range/k-NN traversal: one Expand callback over the engine's
  /// best-first driver. Brin's iterative pruning loop runs unchanged — the
  /// collector's bound (fixed r_Q or shrinking r_k) replaces the literal
  /// radius — and every surviving subtree joins the frontier with the
  /// tightest lower bound its computed split distances certify.
  template <typename Collector>
  void Traverse(const Object& query, Collector& collector,
                QueryStats* st) const {
    const int wcap = witness_capacity_;
    engine::BestFirstSearch<const Node*>(
        root_.get(), /*root_trace_id=*/0, collector, st,
        [&](const engine::FrontierEntry<const Node*>& item, auto& frontier) {
          const Node& node = *item.handle;
          ++st->nodes_accessed;
          if (node.is_leaf) {
            uint32_t scanned = 0;
            uint32_t wavoided = 0;
            for (size_t j = 0; j < node.bucket.size(); ++j) {
              const auto& [obj, oid] = node.bucket[j];
              const std::vector<double>& row =
                  node.bucket_ancestor_distances[j];
              auto stored = [&](uint64_t ref) {
                return ref < row.size()
                           ? engine::WitnessInterval::Point(row[ref])
                           : engine::WitnessInterval::Unknown();
              };
              // Bucket objects feed only the collector, so both the
              // witness-avoided +inf and the bounded early exit are safe.
              const uint64_t avoided_before =
                  st->distance_calcs_avoided_by_witness;
              const double d = engine::GuardedDistanceWithin(
                  item.witness, wcap, stored, metric_, query, obj,
                  collector.Bound(), st);
              if (st->distance_calcs_avoided_by_witness != avoided_before) {
                ++wavoided;
                continue;
              }
              ++scanned;
              collector.Offer(oid, obj, d);
            }
            if (st->trace != nullptr) {
              st->trace->RecordVisit(0, item.level, scanned, 0, scanned,
                                     wavoided);
            }
            return;
          }
          const size_t m = node.splits.size();
          // This node's split i is ancestor slot `slot_base + i` of every
          // descendant; each computed split distance joins the chain.
          const uint64_t slot_base = node.ancestor_ranges.size();
          engine::WitnessChain chain = item.witness;
          // Brin's pruning loop: compute split-point distances one at a
          // time; each computed distance may eliminate other subtrees (and
          // their split points) before we ever pay for them.
          std::vector<bool> alive(m, true);
          std::vector<bool> computed(m, false);
          std::vector<bool> skipped(m, false);  // Witness-avoided splits.
          std::vector<double> split_distance(m, 0.0);
          uint32_t scanned = 0;
          uint32_t wavoided = 0;
          for (size_t step = 0; step < m; ++step) {
            size_t i = m;
            for (size_t c = 0; c < m; ++c) {
              if (alive[c] && !computed[c] && !skipped[c]) {
                i = c;
                break;
              }
            }
            if (i == m) break;
            const std::vector<double>& row = node.split_ancestor_distances[i];
            auto stored = [&](uint64_t ref) {
              return ref < row.size()
                         ? engine::WitnessInterval::Point(row[ref])
                         : engine::WitnessInterval::Unknown();
            };
            // A computed split distance must stay exact — it drives the
            // range-table pruning and the children's dmin bounds — so the
            // guard can only avoid the evaluation, never truncate it.
            const uint64_t avoided_before =
                st->distance_calcs_avoided_by_witness;
            const double d = engine::GuardedExactDistance(
                item.witness, wcap, stored, metric_, query, node.splits[i],
                collector.Bound(), st);
            if (st->distance_calcs_avoided_by_witness != avoided_before) {
              // Ancestor witnesses prove p_i itself is out of range;
              // subtree i stays alive (only its split point is ruled out).
              skipped[i] = true;
              ++wavoided;
              continue;
            }
            computed[i] = true;
            ++scanned;
            split_distance[i] = d;
            if (wcap > 0) chain = chain.Extend(slot_base + i, d);
            collector.Offer(node.split_oids[i], node.splits[i], d);
            const double bound = collector.Bound();
            for (size_t j = 0; j < m; ++j) {
              if (!alive[j] || j == i) continue;
              const Range& range = node.ranges[i * m + j];
              if (range.lo > range.hi) continue;  // Empty: no constraint.
              if (d + bound < range.lo || d - bound > range.hi) {
                alive[j] = false;  // The query ball misses subtree j.
                if (node.children[j] != nullptr) {
                  ++st->nodes_pruned;
                  if (st->trace != nullptr) {
                    st->trace->RecordPrune(0, item.level + 1,
                                           PruneReason::kRangeTable);
                  }
                }
              }
            }
          }
          if (st->trace != nullptr) {
            st->trace->RecordVisit(
                0, item.level, scanned,
                static_cast<uint32_t>(m) - scanned - wavoided, scanned,
                wavoided);
          }
          for (size_t j = 0; j < m; ++j) {
            if (!alive[j] || node.children[j] == nullptr) continue;
            // Tightest certified lower bound on d(Q, x) for x in subtree j:
            // every computed split distance constrains it through the range
            // table (|d(Q,p_i) - d(p_i,x)| <= d(Q,x)).
            double dmin = 0.0;
            for (size_t i = 0; i < m; ++i) {
              if (!computed[i]) continue;
              const Range& range = node.ranges[i * m + j];
              if (range.lo > range.hi) continue;
              dmin = std::max(
                  {dmin, range.lo - split_distance[i],
                   split_distance[i] - range.hi});
            }
            PruneReason reason = PruneReason::kRangeTable;
            if (wcap > 0) {
              // Ancestor witnesses constrain subtree j through its stored
              // ancestor ranges — the cross-level reuse the node's own
              // range table cannot provide. A witness-dominated cut is
              // attributed to the cascade.
              const Node* child = node.children[j].get();
              const double witness_lb = engine::WitnessLowerBound(
                  chain, wcap, [&](uint64_t ref) {
                    if (ref < child->ancestor_ranges.size()) {
                      const Range& r = child->ancestor_ranges[ref];
                      if (r.lo <= r.hi) {
                        return engine::WitnessInterval{r.lo, r.hi};
                      }
                    }
                    return engine::WitnessInterval::Unknown();
                  });
              if (witness_lb > dmin) {
                dmin = witness_lb;
                reason = PruneReason::kWitness;
              }
            }
            frontier.PushOrPrune(dmin, item.level + 1, /*trace_id=*/0,
                                 node.children[j].get(), reason,
                                 wcap > 0 ? chain : engine::WitnessChain{});
          }
        });
  }

  void Walk(const Node* node, size_t depth, GnatStatsView* view) const {
    if (node == nullptr) return;
    view->height = std::max(view->height, depth);
    if (node->is_leaf) {
      ++view->num_leaves;
      return;
    }
    ++view->num_internal;
    for (const auto& child : node->children) {
      Walk(child.get(), depth + 1, view);
    }
  }

  Metric metric_;
  GnatOptions options_;
  int witness_capacity_ = 0;
  std::unique_ptr<Node> root_;
  size_t num_objects_ = 0;
};

}  // namespace mcm

#endif  // MCM_GNAT_GNAT_H_
