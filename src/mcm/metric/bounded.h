// The bounded-evaluation protocol: a metric that can prove "distance
// exceeds `bound`" without finishing the computation exposes
//
//   double DistanceWithin(const T& a, const T& b, double bound) const;
//
// returning the exact distance when it is <= bound and +infinity as soon
// as partial evidence (a monotone partial sum, a running max, a banded DP
// row) strictly proves d(a, b) > bound. Two hard requirements keep the
// protocol invisible to the paper's cost model:
//
//  1. A call that does not abort returns the bit-identical value the full
//     metric would have produced (same arithmetic, same order).
//  2. One DistanceWithin call counts as exactly one distance computation,
//     aborted or not — CountedMetric enforces this, so N-MCM/L-MCM
//     validation and every paper figure see unchanged counts.
//
// `BoundedDistance` below is what traversal code calls: it uses
// DistanceWithin when the metric provides it and silently falls back to
// the plain call otherwise, so indexes stay generic over metric types.

#ifndef MCM_METRIC_BOUNDED_H_
#define MCM_METRIC_BOUNDED_H_

#include <utility>

namespace mcm {

/// Satisfied by metrics over `T` that implement the early-exit protocol.
template <typename M, typename T>
concept BoundedMetric = requires(const M& m, const T& a, const T& b,
                                 double bound) {
  { m.DistanceWithin(a, b, bound) } -> std::convertible_to<double>;
};

/// Evaluates `metric` with an early-exit bound when the metric supports
/// it; otherwise computes the full distance. Either way the caller may
/// rely on: result <= bound implies result is the exact distance.
template <typename M, typename T>
inline double BoundedDistance(const M& metric, const T& a, const T& b,
                              double bound) {
  if constexpr (BoundedMetric<M, T>) {
    return metric.DistanceWithin(a, b, bound);
  } else {
    return metric(a, b);
  }
}

}  // namespace mcm

#endif  // MCM_METRIC_BOUNDED_H_
