// Little byte-stream reader/writer used to serialize index nodes into
// fixed-size storage pages. Host-endian; the page files produced by this
// library are not meant to be portable across architectures.

#ifndef MCM_METRIC_BYTES_H_
#define MCM_METRIC_BYTES_H_

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace mcm {

/// Appends primitive values to a growable byte buffer.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<uint8_t>* out) : out_(out) {}

  template <typename T>
  void Put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t offset = out_->size();
    out_->resize(offset + sizeof(T));
    std::memcpy(out_->data() + offset, &value, sizeof(T));
  }

  void PutBytes(const void* data, size_t size) {
    const size_t offset = out_->size();
    out_->resize(offset + size);
    std::memcpy(out_->data() + offset, data, size);
  }

  void PutString(const std::string& s) {
    Put<uint32_t>(static_cast<uint32_t>(s.size()));
    PutBytes(s.data(), s.size());
  }

  size_t size() const { return out_->size(); }

 private:
  std::vector<uint8_t>* out_;
};

/// Reads primitive values from a byte buffer; throws on overrun.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size)
      : data_(data), size_(size), pos_(0) {}

  template <typename T>
  T Get() {
    static_assert(std::is_trivially_copyable_v<T>);
    Require(sizeof(T));
    T value;
    std::memcpy(&value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::string GetString() {
    const uint32_t len = Get<uint32_t>();
    Require(len);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return s;
  }

  void GetBytes(void* out, size_t size) {
    Require(size);
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
  }

  size_t position() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  void Require(size_t bytes) const {
    if (pos_ + bytes > size_) {
      throw std::out_of_range("ByteReader: read past end of buffer");
    }
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_;
};

}  // namespace mcm

#endif  // MCM_METRIC_BYTES_H_
