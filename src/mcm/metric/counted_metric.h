// A metric decorator that counts invocations. The paper's CPU cost is the
// number of distance computations; wrapping the metric of an index or of a
// linear scan with CountedMetric gives the exact measured `dists` value.
//
// The decorator forwards the bounded-evaluation protocol (bounded.h): an
// early-exited DistanceWithin still counts as exactly one distance
// computation — the paper's model charges per comparison of two objects,
// not per coordinate touched, so bounded evaluation leaves every reported
// count bit-identical.
//
// When MCM_OBS is on the decorator additionally accumulates the wall-clock
// nanoseconds spent inside the wrapped metric (DistanceCounter::nanos),
// giving a direct measurement of the model's CPU-cost unit. With obs off
// the timing branch is a single cached test and nanos() stays zero.

#ifndef MCM_METRIC_COUNTED_METRIC_H_
#define MCM_METRIC_COUNTED_METRIC_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "mcm/common/clock.h"
#include "mcm/metric/bounded.h"
#include "mcm/obs/metrics.h"

namespace mcm {

/// Shared mutable counter of distance computations. Relaxed-atomic so
/// copies of one CountedMetric can be evaluated from concurrent query
/// threads (the batch executor); the total stays exact under any schedule.
class DistanceCounter {
 public:
  void Increment() { count_.fetch_add(1, std::memory_order_relaxed); }
  void IncrementAvoided() {
    avoided_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddNanos(uint64_t ns) {
    nanos_.fetch_add(ns, std::memory_order_relaxed);
  }
  void Reset() {
    count_.store(0, std::memory_order_relaxed);
    avoided_.store(0, std::memory_order_relaxed);
    nanos_.store(0, std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Evaluations skipped by the engine's witness bounds (would each have
  /// been one count() increment).
  uint64_t avoided() const {
    return avoided_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds spent inside the wrapped metric (MCM_OBS on only).
  uint64_t nanos() const { return nanos_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> avoided_{0};
  std::atomic<uint64_t> nanos_{0};
};

/// Wraps a metric functor and increments a shared DistanceCounter on every
/// evaluation. Copies of a CountedMetric share the same counter.
template <typename Metric>
class CountedMetric {
 public:
  template <typename ObjectT>
  using DistanceResult = double;

  explicit CountedMetric(Metric metric = Metric())
      : metric_(std::move(metric)),
        counter_(std::make_shared<DistanceCounter>()) {}

  template <typename ObjectT>
  double operator()(const ObjectT& a, const ObjectT& b) const {
    counter_->Increment();
    if (ObsEnabled()) {
      const uint64_t start_ns = MonotonicNanos();
      const double d = metric_(a, b);
      counter_->AddNanos(MonotonicNanos() - start_ns);
      return d;
    }
    return metric_(a, b);
  }

  /// Bounded evaluation via the inner metric (full distance when the inner
  /// metric lacks the protocol). Counts one computation either way.
  template <typename ObjectT>
  double DistanceWithin(const ObjectT& a, const ObjectT& b,
                        double bound) const {
    counter_->Increment();
    if (ObsEnabled()) {
      const uint64_t start_ns = MonotonicNanos();
      const double d = BoundedDistance(metric_, a, b, bound);
      counter_->AddNanos(MonotonicNanos() - start_ns);
      return d;
    }
    return BoundedDistance(metric_, a, b, bound);
  }

  /// Notes one metric evaluation skipped by a witness bound. Called by the
  /// engine's guarded entry points so the decorator's ledger distinguishes
  /// "computed" from "proven unnecessary" evaluations.
  void RecordAvoided() const { counter_->IncrementAvoided(); }

  /// Number of distance evaluations since construction or the last Reset.
  uint64_t count() const { return counter_->count(); }

  /// Evaluations skipped by witness bounds since the last Reset.
  uint64_t avoided_count() const { return counter_->avoided(); }

  /// Nanoseconds spent inside the wrapped metric (MCM_OBS on only).
  uint64_t nanos() const { return counter_->nanos(); }

  /// Resets the shared counter to zero.
  void Reset() const { counter_->Reset(); }

  const Metric& inner() const { return metric_; }

 private:
  Metric metric_;
  std::shared_ptr<DistanceCounter> counter_;
};

}  // namespace mcm

#endif  // MCM_METRIC_COUNTED_METRIC_H_
