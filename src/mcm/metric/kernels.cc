#include "mcm/metric/kernels.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "mcm/common/env.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define MCM_KERNELS_HAVE_AVX2 1
#include <immintrin.h>
#else
#define MCM_KERNELS_HAVE_AVX2 0
#endif

// Accumulation contract shared by every backend (see kernels.h): the main
// loop walks blocks of 8 elements, lane j of acc[8] sums elements with
// index ≡ j (mod 8), the tail (< 8 leftover elements) accumulates into a
// separate scalar, and the eight lanes always combine as
//   t_k = acc[k] + acc[k+4]   (k = 0..3)
//   sum = ((t_0 + t_2) + (t_1 + t_3)) + tail
// which is exactly the dataflow of the AVX2 path (two 4x-double vectors
// added lane-wise, then one fixed horizontal reduction). Keeping the DAG
// identical makes portable and AVX2 results bit-equal, so runtime dispatch
// can never change a query answer. No FMA contraction is possible on
// either side: generic x86-64 has no FMA instruction and the AVX2 path
// uses explicit mul/add intrinsics under target("avx2") only.

namespace mcm {
namespace kernels {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

inline double CombineLanes(const double acc[8], double tail) {
  const double t0 = acc[0] + acc[4];
  const double t1 = acc[1] + acc[5];
  const double t2 = acc[2] + acc[6];
  const double t3 = acc[3] + acc[7];
  return ((t0 + t2) + (t1 + t3)) + tail;
}

// Plain two-operand max: std::fmax carries NaN-select semantics compilers
// will not inline at -O2 (it becomes a libm call per element, ~7x slower
// than the whole scalar loop). Inputs here are absolute differences, never
// NaN, and the ternary matches _mm256_max_pd's non-NaN behavior exactly,
// so the two backends stay bit-identical.
inline double Max(double a, double b) { return a > b ? a : b; }

inline double CombineLanesMax(const double acc[8], double tail) {
  const double t0 = Max(acc[0], acc[4]);
  const double t1 = Max(acc[1], acc[5]);
  const double t2 = Max(acc[2], acc[6]);
  const double t3 = Max(acc[3], acc[7]);
  return Max(Max(Max(t0, t2), Max(t1, t3)), tail);
}

/// Bounded L2 comparisons run against this precomputed limit on the
/// *squared* partial sum; a negative bound can never be met by a
/// non-negative distance, so any partial sum aborts immediately.
inline double SquaredLimit(double bound) {
  return bound >= 0.0 ? bound * bound : -1.0;
}

}  // namespace

// ---------------------------------------------------------------------------
// Portable backend.
// ---------------------------------------------------------------------------

namespace portable {

double L1(const float* a, const float* b, size_t n) {
  double acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (size_t j = 0; j < 8; ++j) {
      const double d =
          static_cast<double>(a[i + j]) - static_cast<double>(b[i + j]);
      acc[j] += std::fabs(d);
    }
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    tail += std::fabs(d);
  }
  return CombineLanes(acc, tail);
}

double L2Squared(const float* a, const float* b, size_t n) {
  double acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (size_t j = 0; j < 8; ++j) {
      const double d =
          static_cast<double>(a[i + j]) - static_cast<double>(b[i + j]);
      acc[j] += d * d;
    }
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    tail += d * d;
  }
  return CombineLanes(acc, tail);
}

double LInf(const float* a, const float* b, size_t n) {
  double acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (size_t j = 0; j < 8; ++j) {
      const double d =
          static_cast<double>(a[i + j]) - static_cast<double>(b[i + j]);
      acc[j] = Max(acc[j], std::fabs(d));
    }
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    tail = Max(tail, std::fabs(d));
  }
  return CombineLanesMax(acc, tail);
}

double L1Within(const float* a, const float* b, size_t n, double bound) {
  double acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (size_t j = 0; j < 8; ++j) {
      const double d =
          static_cast<double>(a[i + j]) - static_cast<double>(b[i + j]);
      acc[j] += std::fabs(d);
    }
    // The partial sum only grows: once it exceeds the bound the final
    // distance must too. Combining into a temp leaves the lanes intact,
    // so a run that never aborts returns the unbounded kernel's bits.
    if (CombineLanes(acc, 0.0) > bound) return kInfinity;
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    tail += std::fabs(d);
  }
  return CombineLanes(acc, tail);
}

double L2SquaredWithin(const float* a, const float* b, size_t n,
                       double limit, double bound) {
  double acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (size_t j = 0; j < 8; ++j) {
      const double d =
          static_cast<double>(a[i + j]) - static_cast<double>(b[i + j]);
      acc[j] += d * d;
    }
    // `limit` (= bound^2) can round below the true square, so a partial
    // sum just past it does not yet prove d > bound: confirm with the
    // monotone sqrt before aborting. The sqrt only runs in the narrow
    // boundary zone the cheap squared test cannot decide.
    const double partial = CombineLanes(acc, 0.0);
    if (partial > limit && std::sqrt(partial) > bound) return kInfinity;
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    tail += d * d;
  }
  return CombineLanes(acc, tail);
}

double LInfWithin(const float* a, const float* b, size_t n, double bound) {
  double acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (size_t j = 0; j < 8; ++j) {
      const double d =
          static_cast<double>(a[i + j]) - static_cast<double>(b[i + j]);
      acc[j] = Max(acc[j], std::fabs(d));
    }
    if (CombineLanesMax(acc, 0.0) > bound) return kInfinity;
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    tail = Max(tail, std::fabs(d));
  }
  return CombineLanesMax(acc, tail);
}

}  // namespace portable

// ---------------------------------------------------------------------------
// AVX2 backend. Each function mirrors its portable twin block for block;
// see the accumulation-contract comment at the top of this file.
// ---------------------------------------------------------------------------

#if MCM_KERNELS_HAVE_AVX2

namespace avx2 {

namespace {

/// |x| for packed doubles: clear the sign bit.
__attribute__((target("avx2"))) inline __m256d Abs(__m256d x) {
  const __m256d mask = _mm256_castsi256_pd(_mm256_srli_epi64(
      _mm256_set1_epi64x(-1), 1));  // 0x7fff... in every lane.
  return _mm256_and_pd(x, mask);
}

/// Loads floats [i, i+8) of a and b and returns the lane-wise double
/// differences: lo = elements i..i+3, hi = elements i+4..i+7.
__attribute__((target("avx2"))) inline void Diff8(const float* a,
                                                  const float* b, size_t i,
                                                  __m256d* lo, __m256d* hi) {
  const __m256 va = _mm256_loadu_ps(a + i);
  const __m256 vb = _mm256_loadu_ps(b + i);
  const __m256d a_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(va));
  const __m256d a_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(va, 1));
  const __m256d b_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(vb));
  const __m256d b_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(vb, 1));
  *lo = _mm256_sub_pd(a_lo, b_lo);
  *hi = _mm256_sub_pd(a_hi, b_hi);
}

/// The fixed lane reduction: ((t0 + t2) + (t1 + t3)) for t = lo + hi.
__attribute__((target("avx2"))) inline double ReduceSum(__m256d lo,
                                                        __m256d hi) {
  double t[4];
  _mm256_storeu_pd(t, _mm256_add_pd(lo, hi));
  return (t[0] + t[2]) + (t[1] + t[3]);
}

__attribute__((target("avx2"))) inline double ReduceMax(__m256d lo,
                                                        __m256d hi) {
  double t[4];
  _mm256_storeu_pd(t, _mm256_max_pd(lo, hi));
  return Max(Max(t[0], t[2]), Max(t[1], t[3]));
}

}  // namespace

__attribute__((target("avx2"))) double L1(const float* a, const float* b,
                                          size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d lo, hi;
    Diff8(a, b, i, &lo, &hi);
    acc_lo = _mm256_add_pd(acc_lo, Abs(lo));
    acc_hi = _mm256_add_pd(acc_hi, Abs(hi));
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    tail += std::fabs(d);
  }
  return ReduceSum(acc_lo, acc_hi) + tail;
}

__attribute__((target("avx2"))) double L2Squared(const float* a,
                                                 const float* b, size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d lo, hi;
    Diff8(a, b, i, &lo, &hi);
    acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(lo, lo));
    acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(hi, hi));
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    tail += d * d;
  }
  return ReduceSum(acc_lo, acc_hi) + tail;
}

__attribute__((target("avx2"))) double LInf(const float* a, const float* b,
                                            size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d lo, hi;
    Diff8(a, b, i, &lo, &hi);
    acc_lo = _mm256_max_pd(acc_lo, Abs(lo));
    acc_hi = _mm256_max_pd(acc_hi, Abs(hi));
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    tail = Max(tail, std::fabs(d));
  }
  return Max(ReduceMax(acc_lo, acc_hi), tail);
}

__attribute__((target("avx2"))) double L1Within(const float* a,
                                                const float* b, size_t n,
                                                double bound) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d lo, hi;
    Diff8(a, b, i, &lo, &hi);
    acc_lo = _mm256_add_pd(acc_lo, Abs(lo));
    acc_hi = _mm256_add_pd(acc_hi, Abs(hi));
    if (ReduceSum(acc_lo, acc_hi) > bound) return kInfinity;
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    tail += std::fabs(d);
  }
  return ReduceSum(acc_lo, acc_hi) + tail;
}

__attribute__((target("avx2"))) double L2SquaredWithin(const float* a,
                                                       const float* b,
                                                       size_t n,
                                                       double limit,
                                                       double bound) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d lo, hi;
    Diff8(a, b, i, &lo, &hi);
    acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(lo, lo));
    acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(hi, hi));
    // Same sqrt confirmation as the portable kernel (see there): the
    // squared limit alone cannot decide the boundary zone.
    const double partial = ReduceSum(acc_lo, acc_hi);
    if (partial > limit && std::sqrt(partial) > bound) return kInfinity;
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    tail += d * d;
  }
  return ReduceSum(acc_lo, acc_hi) + tail;
}

__attribute__((target("avx2"))) double LInfWithin(const float* a,
                                                  const float* b, size_t n,
                                                  double bound) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d lo, hi;
    Diff8(a, b, i, &lo, &hi);
    acc_lo = _mm256_max_pd(acc_lo, Abs(lo));
    acc_hi = _mm256_max_pd(acc_hi, Abs(hi));
    if (ReduceMax(acc_lo, acc_hi) > bound) return kInfinity;
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    tail = Max(tail, std::fabs(d));
  }
  return Max(ReduceMax(acc_lo, acc_hi), tail);
}

}  // namespace avx2

#endif  // MCM_KERNELS_HAVE_AVX2

// ---------------------------------------------------------------------------
// Runtime dispatch.
// ---------------------------------------------------------------------------

namespace {

Backend ResolveBackend() {
#if MCM_KERNELS_HAVE_AVX2
  if (GetEnvString("MCM_KERNELS", "auto") == "portable") {
    return Backend::kPortable;
  }
  // "auto", "avx2", unset, or anything else: take SIMD when the CPU has it.
  if (__builtin_cpu_supports("avx2")) {
    return Backend::kAvx2;
  }
#endif
  return Backend::kPortable;
}

// Resolved once at load time. A function-local static would re-check its
// initialization guard on every distance call, which is measurable at small
// dimensionality; ResolveBackend only touches getenv and the CPUID probe, so
// dynamic initialization order is not a concern.
const Backend g_backend = ResolveBackend();

}  // namespace

Backend ActiveBackend() { return g_backend; }

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kAvx2:
      return "avx2";
    case Backend::kPortable:
      break;
  }
  return "portable";
}

double L1(const float* a, const float* b, size_t n) {
#if MCM_KERNELS_HAVE_AVX2
  if (ActiveBackend() == Backend::kAvx2) return avx2::L1(a, b, n);
#endif
  return portable::L1(a, b, n);
}

double L2Squared(const float* a, const float* b, size_t n) {
#if MCM_KERNELS_HAVE_AVX2
  if (ActiveBackend() == Backend::kAvx2) return avx2::L2Squared(a, b, n);
#endif
  return portable::L2Squared(a, b, n);
}

double L2(const float* a, const float* b, size_t n) {
  return std::sqrt(L2Squared(a, b, n));
}

double LInf(const float* a, const float* b, size_t n) {
#if MCM_KERNELS_HAVE_AVX2
  if (ActiveBackend() == Backend::kAvx2) return avx2::LInf(a, b, n);
#endif
  return portable::LInf(a, b, n);
}

double L1Within(const float* a, const float* b, size_t n, double bound) {
#if MCM_KERNELS_HAVE_AVX2
  if (ActiveBackend() == Backend::kAvx2) {
    return avx2::L1Within(a, b, n, bound);
  }
#endif
  return portable::L1Within(a, b, n, bound);
}

double L2Within(const float* a, const float* b, size_t n, double bound) {
  const double limit = SquaredLimit(bound);
#if MCM_KERNELS_HAVE_AVX2
  if (ActiveBackend() == Backend::kAvx2) {
    const double sq = avx2::L2SquaredWithin(a, b, n, limit, bound);
    return std::isinf(sq) ? sq : std::sqrt(sq);
  }
#endif
  const double sq = portable::L2SquaredWithin(a, b, n, limit, bound);
  return std::isinf(sq) ? sq : std::sqrt(sq);
}

double LInfWithin(const float* a, const float* b, size_t n, double bound) {
#if MCM_KERNELS_HAVE_AVX2
  if (ActiveBackend() == Backend::kAvx2) {
    return avx2::LInfWithin(a, b, n, bound);
  }
#endif
  return portable::LInfWithin(a, b, n, bound);
}

// ---------------------------------------------------------------------------
// Integer- and general-p pow sums (portable only: the per-element pow
// dominates, so SIMD buys little here).
// ---------------------------------------------------------------------------

namespace {

/// |d|^p by binary exponentiation; p >= 1.
inline double PowInt(double d, int p) {
  double base = std::fabs(d);
  double result = 1.0;
  while (p > 0) {
    if ((p & 1) != 0) result *= base;
    base *= base;
    p >>= 1;
  }
  return result;
}

}  // namespace

double LpPowSum(const float* a, const float* b, size_t n, int p) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    sum += PowInt(d, p);
  }
  return sum;
}

double LpPowSumGeneral(const float* a, const float* b, size_t n, double p) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d =
        std::fabs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
    sum += std::pow(d, p);
  }
  return sum;
}

double LpPowSumWithin(const float* a, const float* b, size_t n, int p,
                      double bound) {
  // Abort against bound^p (the pow sum is monotone in the prefix). The
  // check runs every 8 elements to stay off the per-element critical path.
  double limit = kInfinity;
  if (bound >= 0.0 && !std::isinf(bound)) {
    limit = PowInt(bound, p);
  } else if (bound < 0.0) {
    limit = -1.0;
  }
  double sum = 0.0;
  size_t i = 0;
  while (i < n) {
    const size_t stop = std::min(n, i + 8);
    for (; i < stop; ++i) {
      const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
      sum += PowInt(d, p);
    }
    // As with L2: bound^p rounds, so confirm via the monotone root before
    // declaring the distance beyond the bound.
    if (sum > limit && std::pow(sum, 1.0 / p) > bound) return kInfinity;
  }
  return sum;
}

}  // namespace kernels
}  // namespace mcm
