// Distance kernels over contiguous float spans — the single place in the
// library where vector arithmetic is written out element by element (the
// `no-adhoc-vector-math` lint rule keeps it that way). The Lp metric
// functors in vector_metrics.h delegate here.
//
// Two implementations back every kernel:
//
//  - a portable one, written with eight independent accumulators so the
//    reduction is not one serial dependency chain, and
//  - an AVX2 one (x86-64 only), selected at runtime behind a CPUID probe.
//
// Both follow the same accumulation contract — lane j sums the elements
// with index ≡ j (mod 8), the leftover tail is summed separately, and the
// lanes combine in one fixed order — so the dispatched kernels are
// bit-identical to the portable reference regardless of which backend
// runs. The bounded (`*Within`) variants share the identical block
// structure and therefore return the bit-identical distance whenever they
// do not abort.
//
// The MCM_KERNELS environment variable (read once) forces a backend:
// "portable" disables the SIMD path, "avx2" demands it (falling back to
// portable with no error if the CPU lacks it), "auto"/unset probes.

#ifndef MCM_METRIC_KERNELS_H_
#define MCM_METRIC_KERNELS_H_

#include <cstddef>

namespace mcm {
namespace kernels {

/// Implementation families a kernel call can dispatch to.
enum class Backend {
  kPortable,  ///< Unrolled scalar code; every platform.
  kAvx2,      ///< 256-bit SIMD; x86-64 with AVX2 only.
};

/// The backend the dispatched kernels below actually use (resolved once
/// from the CPU probe and the MCM_KERNELS override).
Backend ActiveBackend();

/// Human-readable backend name ("portable", "avx2").
const char* BackendName(Backend backend);

// ---------------------------------------------------------------------------
// Dispatched kernels. `a` and `b` point at `n` floats each; accumulation
// happens in double. All return finite non-negative values for finite
// inputs.
// ---------------------------------------------------------------------------

/// Sum of |a_i - b_i| (Manhattan distance).
double L1(const float* a, const float* b, size_t n);

/// Sum of (a_i - b_i)^2 — the squared Euclidean distance.
double L2Squared(const float* a, const float* b, size_t n);

/// Euclidean distance: sqrt(L2Squared).
double L2(const float* a, const float* b, size_t n);

/// Max of |a_i - b_i| (Chebyshev distance).
double LInf(const float* a, const float* b, size_t n);

/// Sum of |a_i - b_i|^p for an integer exponent p >= 1, computed by
/// repeated multiplication (no per-element std::pow).
double LpPowSum(const float* a, const float* b, size_t n, int p);

/// Sum of |a_i - b_i|^p for an arbitrary real exponent p >= 1.
double LpPowSumGeneral(const float* a, const float* b, size_t n, double p);

// ---------------------------------------------------------------------------
// Bounded evaluation. Each returns the exact distance when it is <= bound
// and +infinity as soon as the partial sum (L1/L2) or the running max
// (LInf) proves the distance exceeds `bound`. A call that never aborts
// returns the bit-identical value of the unbounded kernel. One call counts
// as one distance computation regardless of where it stopped.
// ---------------------------------------------------------------------------

/// L1 with partial-sum abort.
double L1Within(const float* a, const float* b, size_t n, double bound);

/// L2 with partial-sum abort (partial sums compared against bound^2).
double L2Within(const float* a, const float* b, size_t n, double bound);

/// LInf with per-coordinate abort.
double LInfWithin(const float* a, const float* b, size_t n, double bound);

/// Integer-p Lp pow-sum with partial-sum abort against bound^p. Returns
/// the exact pow-sum when the distance is <= bound, +infinity otherwise.
double LpPowSumWithin(const float* a, const float* b, size_t n, int p,
                      double bound);

// ---------------------------------------------------------------------------
// Portable reference implementations. The dispatched entry points above
// resolve to these when AVX2 is absent or disabled; tests assert the SIMD
// backend agrees with them bit for bit.
// ---------------------------------------------------------------------------

namespace portable {

double L1(const float* a, const float* b, size_t n);
double L2Squared(const float* a, const float* b, size_t n);
double LInf(const float* a, const float* b, size_t n);
double L1Within(const float* a, const float* b, size_t n, double bound);
double L2SquaredWithin(const float* a, const float* b, size_t n,
                       double limit, double bound);
double LInfWithin(const float* a, const float* b, size_t n, double bound);

}  // namespace portable

}  // namespace kernels
}  // namespace mcm

#endif  // MCM_METRIC_KERNELS_H_
