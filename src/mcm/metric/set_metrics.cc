#include "mcm/metric/set_metrics.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace mcm {

double DirectedHausdorff(const PointSet& a, const PointSet& b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("DirectedHausdorff: empty point set");
  }
  const L2Distance base;
  double worst = 0.0;
  for (const auto& p : a) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& q : b) {
      best = std::min(best, base(p, q));
      if (best == 0.0) break;
    }
    worst = std::max(worst, best);
  }
  return worst;
}

double HausdorffDistance(const PointSet& a, const PointSet& b) {
  return std::max(DirectedHausdorff(a, b), DirectedHausdorff(b, a));
}

double JaccardDistance(const std::vector<uint64_t>& a,
                       const std::vector<uint64_t>& b) {
  if (!std::is_sorted(a.begin(), a.end()) ||
      !std::is_sorted(b.begin(), b.end())) {
    throw std::invalid_argument("JaccardDistance: inputs must be sorted");
  }
  if (a.empty() && b.empty()) {
    return 0.0;
  }
  size_t i = 0, j = 0, both = 0, either = 0;
  while (i < a.size() && j < b.size()) {
    ++either;
    if (a[i] == b[j]) {
      ++both;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  either += (a.size() - i) + (b.size() - j);
  return 1.0 - static_cast<double>(both) / static_cast<double>(either);
}

}  // namespace mcm
