// Metrics on finite point sets: the Hausdorff distance — the shape-matching
// metric of the paper's multimedia motivation (Huttenlocher et al. [15]) —
// and the Jaccard distance on id sets (duplicate detection / set
// similarity). Both are true metrics, so the M-tree and the cost models
// apply unchanged.

#ifndef MCM_METRIC_SET_METRICS_H_
#define MCM_METRIC_SET_METRICS_H_

#include <cstdint>
#include <vector>

#include "mcm/metric/bytes.h"
#include "mcm/metric/vector_metrics.h"

namespace mcm {

/// A finite set of points (e.g. samples along a shape contour).
using PointSet = std::vector<FloatVector>;

/// Directed Hausdorff distance h(a, b) = max_{p in a} min_{q in b} d(p, q)
/// under the Euclidean base metric. Requires both sets non-empty.
double DirectedHausdorff(const PointSet& a, const PointSet& b);

/// Symmetric Hausdorff distance H(a, b) = max(h(a,b), h(b,a)); a metric on
/// non-empty compact sets.
double HausdorffDistance(const PointSet& a, const PointSet& b);

/// Functor wrapper for index use.
struct HausdorffMetric {
  double operator()(const PointSet& a, const PointSet& b) const {
    return HausdorffDistance(a, b);
  }
};

/// Jaccard distance 1 - |a ∩ b| / |a ∪ b| on *sorted* id sets; the distance
/// of two empty sets is 0. A metric on finite sets.
double JaccardDistance(const std::vector<uint64_t>& a,
                       const std::vector<uint64_t>& b);

/// Functor wrapper for index use.
struct JaccardMetric {
  double operator()(const std::vector<uint64_t>& a,
                    const std::vector<uint64_t>& b) const {
    return JaccardDistance(a, b);
  }
};

/// Traits for indexing point sets under the Hausdorff distance.
struct PointSetTraits {
  using Object = PointSet;
  using Metric = HausdorffMetric;

  static size_t SerializedSize(const Object& o) {
    size_t size = sizeof(uint32_t);
    for (const auto& p : o) {
      size += sizeof(uint32_t) + sizeof(float) * p.size();
    }
    return size;
  }

  static void Serialize(const Object& o, ByteWriter& w) {
    w.Put<uint32_t>(static_cast<uint32_t>(o.size()));
    for (const auto& p : o) {
      w.Put<uint32_t>(static_cast<uint32_t>(p.size()));
      w.PutBytes(p.data(), sizeof(float) * p.size());
    }
  }

  static Object Deserialize(ByteReader& r) {
    const uint32_t count = r.Get<uint32_t>();
    Object o(count);
    for (auto& p : o) {
      const uint32_t dim = r.Get<uint32_t>();
      p.resize(dim);
      r.GetBytes(p.data(), sizeof(float) * dim);
    }
    return o;
  }
};

}  // namespace mcm

#endif  // MCM_METRIC_SET_METRICS_H_
