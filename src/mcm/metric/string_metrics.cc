#include "mcm/metric/string_metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace mcm {

size_t EditDistance(const std::string& a, const std::string& b) {
  // Keep the shorter string as the DP row to minimize memory.
  const std::string& s = a.size() <= b.size() ? a : b;
  const std::string& t = a.size() <= b.size() ? b : a;
  const size_t m = s.size();
  const size_t n = t.size();
  if (m == 0) return n;

  std::vector<size_t> row(m + 1);
  for (size_t j = 0; j <= m; ++j) row[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    size_t diag = row[0];  // row[i-1][0]
    row[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      const size_t up = row[j];
      const size_t cost = (t[i - 1] == s[j - 1]) ? 0 : 1;
      row[j] = std::min({up + 1, row[j - 1] + 1, diag + cost});
      diag = up;
    }
  }
  return row[m];
}

size_t BoundedEditDistance(const std::string& a, const std::string& b,
                           size_t bound) {
  const size_t la = a.size();
  const size_t lb = b.size();
  const size_t len_diff = la > lb ? la - lb : lb - la;
  if (len_diff > bound) return bound + 1;

  // Banded DP: only cells with |i - j| <= bound can be <= bound.
  const std::string& s = la <= lb ? a : b;
  const std::string& t = la <= lb ? b : a;
  const size_t m = s.size();
  const size_t n = t.size();
  // Empty shorter string: the distance is exactly n insertions, and the
  // length-gap check above already proved n <= bound. The banded loop
  // below cannot represent an empty DP row (lo > hi), so answer directly.
  if (m == 0) return n;
  const size_t kInf = std::numeric_limits<size_t>::max() / 2;

  std::vector<size_t> row(m + 1, kInf);
  for (size_t j = 0; j <= std::min(m, bound); ++j) row[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    const size_t lo = i > bound ? i - bound : 1;
    const size_t hi = std::min(m, i + bound);
    if (lo > hi) return bound + 1;
    size_t diag = (lo >= 1) ? row[lo - 1] : kInf;  // row[i-1][lo-1]
    size_t prev_left = kInf;                       // row[i][lo-1]
    if (lo == 1) {
      prev_left = (i <= bound) ? i : kInf;  // first column value
    }
    size_t row_min = kInf;
    for (size_t j = lo; j <= hi; ++j) {
      const size_t up = row[j];
      const size_t cost = (t[i - 1] == s[j - 1]) ? 0 : 1;
      size_t v = diag + cost;
      if (up != kInf) v = std::min(v, up + 1);
      if (prev_left != kInf) v = std::min(v, prev_left + 1);
      diag = up;
      row[j] = v;
      prev_left = v;
      row_min = std::min(row_min, v);
    }
    if (lo == 1) {
      // row[0] is the first DP column: i deletions from the longer string.
      row[0] = (i <= bound) ? i : kInf;
    } else {
      row[lo - 1] = kInf;  // Outside the band for the next row.
    }
    if (row_min > bound) return bound + 1;
  }
  return row[m] > bound ? bound + 1 : row[m];
}

double EditDistanceMetric::DistanceWithin(const std::string& a,
                                          const std::string& b,
                                          double bound) const {
  if (bound < 0.0) {
    // Edit distances are non-negative integers, so any result exceeds a
    // negative bound; still run the cheapest proof (length difference
    // already exceeds k = 0 unless the strings have equal length).
    return std::numeric_limits<double>::infinity();
  }
  const size_t longest = std::max(a.size(), b.size());
  // A band of k = min(floor(bound), longest) suffices: the distance never
  // exceeds the longer length, and integer distances make floor exact
  // (d <= bound iff d <= floor(bound)).
  const size_t k = std::isinf(bound)
                       ? longest
                       : std::min(static_cast<size_t>(bound), longest);
  const size_t d = BoundedEditDistance(a, b, k);
  if (d > k && static_cast<double>(d) > bound) {
    return std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(d);
}

WeightedEditDistance::WeightedEditDistance(double insert_cost,
                                           double delete_cost,
                                           double substitute_cost)
    : insert_cost_(insert_cost),
      delete_cost_(delete_cost),
      substitute_cost_(substitute_cost) {
  if (insert_cost <= 0 || delete_cost <= 0 || substitute_cost <= 0) {
    throw std::invalid_argument("WeightedEditDistance: costs must be > 0");
  }
}

double WeightedEditDistance::operator()(const std::string& a,
                                        const std::string& b) const {
  const size_t m = a.size();
  const size_t n = b.size();
  std::vector<double> row(m + 1);
  // row[j] = cost of deleting the first j characters of `a`.
  for (size_t j = 0; j <= m; ++j) row[j] = static_cast<double>(j) * delete_cost_;
  for (size_t i = 1; i <= n; ++i) {
    double diag = row[0];
    row[0] = static_cast<double>(i) * insert_cost_;
    for (size_t j = 1; j <= m; ++j) {
      const double up = row[j];
      const double sub = (b[i - 1] == a[j - 1]) ? 0.0 : substitute_cost_;
      row[j] = std::min({up + insert_cost_, row[j - 1] + delete_cost_,
                         diag + sub});
      diag = up;
    }
  }
  return row[m];
}

double HammingDistance(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("HammingDistance: length mismatch");
  }
  size_t count = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    count += (a[i] != b[i]) ? 1 : 0;
  }
  return static_cast<double>(count);
}

}  // namespace mcm
