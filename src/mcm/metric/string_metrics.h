// String metrics: Levenshtein (edit) distance — the metric of the paper's
// text-keyword datasets — plus weighted-edit and Hamming variants.

#ifndef MCM_METRIC_STRING_METRICS_H_
#define MCM_METRIC_STRING_METRICS_H_

#include <cstddef>
#include <string>

namespace mcm {

/// Plain Levenshtein distance: minimal number of single-character
/// insertions, deletions and substitutions transforming `a` into `b`.
/// O(|a|*|b|) time, O(min(|a|,|b|)) space.
size_t EditDistance(const std::string& a, const std::string& b);

/// Levenshtein distance with early termination: returns any value
/// > `bound` (specifically bound + 1) as soon as the true distance is known
/// to exceed `bound`. Uses a banded DP of width 2*bound+1.
size_t BoundedEditDistance(const std::string& a, const std::string& b,
                           size_t bound);

/// Functor wrapper over EditDistance for use as an index metric.
struct EditDistanceMetric {
  double operator()(const std::string& a, const std::string& b) const {
    return static_cast<double>(EditDistance(a, b));
  }

  /// Bounded-evaluation protocol (bounded.h): exact distance when it is
  /// <= bound, +infinity otherwise, via the banded DP.
  double DistanceWithin(const std::string& a, const std::string& b,
                        double bound) const;
};

/// Weighted edit distance with distinct insert/delete/substitute costs.
/// Remains a metric when insert_cost == delete_cost and
/// substitute_cost <= insert_cost + delete_cost.
class WeightedEditDistance {
 public:
  WeightedEditDistance(double insert_cost, double delete_cost,
                       double substitute_cost);

  double operator()(const std::string& a, const std::string& b) const;

 private:
  double insert_cost_;
  double delete_cost_;
  double substitute_cost_;
};

/// Hamming distance on equal-length strings; throws on length mismatch.
double HammingDistance(const std::string& a, const std::string& b);

/// Functor wrapper over HammingDistance.
struct HammingDistanceMetric {
  double operator()(const std::string& a, const std::string& b) const {
    return HammingDistance(a, b);
  }
};

}  // namespace mcm

#endif  // MCM_METRIC_STRING_METRICS_H_
