// Metric-space trait bundles: each Traits type names the object type, the
// metric functor, and how objects serialize into storage pages. The M-tree
// and vp-tree templates are parameterized by one of these bundles (or any
// user-supplied type with the same shape).

#ifndef MCM_METRIC_TRAITS_H_
#define MCM_METRIC_TRAITS_H_

#include <string>
#include <vector>

#include "mcm/metric/bytes.h"
#include "mcm/metric/string_metrics.h"
#include "mcm/metric/vector_metrics.h"

namespace mcm {

/// Traits for float-vector objects under metric `MetricT` (any functor with
/// `double operator()(const FloatVector&, const FloatVector&) const`).
template <typename MetricT>
struct VectorTraits {
  using Object = FloatVector;
  using Metric = MetricT;

  /// Bytes needed to serialize `o` (length prefix + payload).
  static size_t SerializedSize(const Object& o) {
    return sizeof(uint32_t) + sizeof(float) * o.size();
  }

  static void Serialize(const Object& o, ByteWriter& w) {
    w.Put<uint32_t>(static_cast<uint32_t>(o.size()));
    w.PutBytes(o.data(), sizeof(float) * o.size());
  }

  static Object Deserialize(ByteReader& r) {
    const uint32_t dim = r.Get<uint32_t>();
    Object o(dim);
    r.GetBytes(o.data(), sizeof(float) * dim);
    return o;
  }
};

/// Traits for string objects under metric `MetricT` (defaults to the edit
/// distance, the paper's text-dataset metric).
template <typename MetricT = EditDistanceMetric>
struct StringTraits {
  using Object = std::string;
  using Metric = MetricT;

  static size_t SerializedSize(const Object& o) {
    return sizeof(uint32_t) + o.size();
  }

  static void Serialize(const Object& o, ByteWriter& w) { w.PutString(o); }

  static Object Deserialize(ByteReader& r) { return r.GetString(); }
};

}  // namespace mcm

#endif  // MCM_METRIC_TRAITS_H_
