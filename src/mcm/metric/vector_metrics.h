// Minkowski (Lp) metrics on float vectors.
//
// These are the metrics used by the paper's synthetic experiments: the
// `uniform` and `clustered` datasets of Table 1 are compared under the
// L-infinity metric; L1, L2 and general Lp are provided for completeness
// (the M-tree is metric-agnostic).
//
// The arithmetic lives in mcm/metric/kernels.h (runtime-dispatched SIMD
// with a bit-identical portable fallback); the functors here add the
// dimensionality check and the bounded-evaluation protocol of
// mcm/metric/bounded.h: DistanceWithin(a, b, bound) returns the exact
// distance when it is <= bound and +infinity once a partial sum (L1/L2/Lp)
// or a running max (LInf) proves the distance exceeds the bound.

#ifndef MCM_METRIC_VECTOR_METRICS_H_
#define MCM_METRIC_VECTOR_METRICS_H_

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "mcm/metric/kernels.h"

namespace mcm {

/// Object type for all vector metrics.
using FloatVector = std::vector<float>;

namespace internal {

inline void CheckSameDim(const FloatVector& a, const FloatVector& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("vector metric: dimensionality mismatch");
  }
}

}  // namespace internal

/// Manhattan (L1) distance: sum of coordinate differences.
struct L1Distance {
  double operator()(const FloatVector& a, const FloatVector& b) const {
    internal::CheckSameDim(a, b);
    return kernels::L1(a.data(), b.data(), a.size());
  }

  double DistanceWithin(const FloatVector& a, const FloatVector& b,
                        double bound) const {
    internal::CheckSameDim(a, b);
    return kernels::L1Within(a.data(), b.data(), a.size(), bound);
  }
};

/// Euclidean (L2) distance.
struct L2Distance {
  double operator()(const FloatVector& a, const FloatVector& b) const {
    internal::CheckSameDim(a, b);
    return kernels::L2(a.data(), b.data(), a.size());
  }

  double DistanceWithin(const FloatVector& a, const FloatVector& b,
                        double bound) const {
    internal::CheckSameDim(a, b);
    return kernels::L2Within(a.data(), b.data(), a.size(), bound);
  }
};

/// Chebyshev (L-infinity) distance: max coordinate difference. This is the
/// metric of the paper's `uniform` and `clustered` datasets.
struct LInfDistance {
  double operator()(const FloatVector& a, const FloatVector& b) const {
    internal::CheckSameDim(a, b);
    return kernels::LInf(a.data(), b.data(), a.size());
  }

  double DistanceWithin(const FloatVector& a, const FloatVector& b,
                        double bound) const {
    internal::CheckSameDim(a, b);
    return kernels::LInfWithin(a.data(), b.data(), a.size(), bound);
  }
};

/// General Minkowski Lp distance with runtime exponent p >= 1. Integer
/// exponents take a repeated-multiplication fast path (p = 1 and p = 2
/// collapse to the L1/L2 kernels); fractional p falls back to std::pow.
class LpDistance {
 public:
  explicit LpDistance(double p) : p_(p) {
    if (p < 1.0) {
      throw std::invalid_argument("LpDistance: p must be >= 1");
    }
    const double rounded = std::nearbyint(p);
    if (!std::isinf(p) && rounded == p && p <= 64.0) {
      int_p_ = static_cast<int>(rounded);
    }
  }

  double operator()(const FloatVector& a, const FloatVector& b) const {
    internal::CheckSameDim(a, b);
    if (int_p_ == 1) return kernels::L1(a.data(), b.data(), a.size());
    if (int_p_ == 2) return kernels::L2(a.data(), b.data(), a.size());
    if (int_p_ > 0) {
      const double sum = kernels::LpPowSum(a.data(), b.data(), a.size(), int_p_);
      return std::pow(sum, 1.0 / p_);
    }
    const double sum =
        kernels::LpPowSumGeneral(a.data(), b.data(), a.size(), p_);
    return std::pow(sum, 1.0 / p_);
  }

  double DistanceWithin(const FloatVector& a, const FloatVector& b,
                        double bound) const {
    internal::CheckSameDim(a, b);
    if (int_p_ == 1) {
      return kernels::L1Within(a.data(), b.data(), a.size(), bound);
    }
    if (int_p_ == 2) {
      return kernels::L2Within(a.data(), b.data(), a.size(), bound);
    }
    if (int_p_ > 0) {
      const double sum =
          kernels::LpPowSumWithin(a.data(), b.data(), a.size(), int_p_, bound);
      return std::isinf(sum) ? sum : std::pow(sum, 1.0 / p_);
    }
    // Fractional p: no early-exit kernel; fall back to the full distance,
    // which trivially satisfies the protocol.
    return (*this)(a, b);
  }

  double p() const { return p_; }

 private:
  double p_;
  int int_p_ = 0;  ///< p when it is a small integer, else 0.
};

/// Maximum possible Lp distance between points of the unit hypercube
/// [0,1]^dim: dim^(1/p), i.e. sqrt(dim) for L2, dim for L1, 1 for L-inf.
inline double UnitCubeDiameter(size_t dim, double p) {
  if (std::isinf(p)) return 1.0;
  return std::pow(static_cast<double>(dim), 1.0 / p);
}

}  // namespace mcm

#endif  // MCM_METRIC_VECTOR_METRICS_H_
