// Minkowski (Lp) metrics on float vectors.
//
// These are the metrics used by the paper's synthetic experiments: the
// `uniform` and `clustered` datasets of Table 1 are compared under the
// L-infinity metric; L1, L2 and general Lp are provided for completeness
// (the M-tree is metric-agnostic).

#ifndef MCM_METRIC_VECTOR_METRICS_H_
#define MCM_METRIC_VECTOR_METRICS_H_

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace mcm {

/// Object type for all vector metrics.
using FloatVector = std::vector<float>;

namespace internal {

inline void CheckSameDim(const FloatVector& a, const FloatVector& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("vector metric: dimensionality mismatch");
  }
}

}  // namespace internal

/// Manhattan (L1) distance: sum of coordinate differences.
struct L1Distance {
  double operator()(const FloatVector& a, const FloatVector& b) const {
    internal::CheckSameDim(a, b);
    double sum = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
      sum += std::fabs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
    }
    return sum;
  }
};

/// Euclidean (L2) distance.
struct L2Distance {
  double operator()(const FloatVector& a, const FloatVector& b) const {
    internal::CheckSameDim(a, b);
    double sum = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
      const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
      sum += d * d;
    }
    return std::sqrt(sum);
  }
};

/// Chebyshev (L-infinity) distance: max coordinate difference. This is the
/// metric of the paper's `uniform` and `clustered` datasets.
struct LInfDistance {
  double operator()(const FloatVector& a, const FloatVector& b) const {
    internal::CheckSameDim(a, b);
    double best = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
      const double d =
          std::fabs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
      if (d > best) best = d;
    }
    return best;
  }
};

/// General Minkowski Lp distance with runtime exponent p >= 1.
class LpDistance {
 public:
  explicit LpDistance(double p) : p_(p) {
    if (p < 1.0) {
      throw std::invalid_argument("LpDistance: p must be >= 1");
    }
  }

  double operator()(const FloatVector& a, const FloatVector& b) const {
    internal::CheckSameDim(a, b);
    double sum = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
      const double d =
          std::fabs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
      sum += std::pow(d, p_);
    }
    return std::pow(sum, 1.0 / p_);
  }

  double p() const { return p_; }

 private:
  double p_;
};

/// Maximum possible Lp distance between points of the unit hypercube
/// [0,1]^dim: dim^(1/p), i.e. sqrt(dim) for L2, dim for L1, 1 for L-inf.
inline double UnitCubeDiameter(size_t dim, double p) {
  if (std::isinf(p)) return 1.0;
  return std::pow(static_cast<double>(dim), 1.0 / p);
}

}  // namespace mcm

#endif  // MCM_METRIC_VECTOR_METRICS_H_
