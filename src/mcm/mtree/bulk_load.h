// BulkLoading for the M-tree (Ciaccia & Patella, ADC'98 — reference [9] of
// the paper; the trees of every experiment in Section 4 are built this way).
//
// The loader works bottom-up, one level at a time, which guarantees a
// balanced tree by construction:
//   1. recursively cluster the current level's items around sampled seeds
//      until every cluster fits one node (byte capacity);
//   2. repair under-filled clusters by reassigning their members to the
//      nearest cluster with room (minimum-utilization handling of [9]);
//   3. emit one node per cluster, with the cluster medoid as routing object
//      and r(N) = max(d(medoid, member) + member radius);
//   4. the routing objects become the items of the next level; repeat until
//      a single node remains — the root.
//
// Nodes are first *staged* in memory and only committed to the store once
// the whole tree is known. Committing in level order from the root places
// every node's children on one contiguous ascending page run (on a fresh
// store), which the query-time readahead (PagedNodeStore::Prefetch) turns
// into single sequential reads; MTreeOptions::bulk_sequential_layout
// switches back to raw emission order for layout A/B experiments.
//
// Determinism: every random choice flows through the option-seeded engine
// and the only parallel section (seed-assignment distances, fanned over
// MTreeOptions::build_threads) writes precomputed per-item slots without
// touching that engine — so the staged tree, the commit order, and hence
// the page bytes are bit-identical at any thread count.
//
// Build cost is observable: all clustering/repair distances flow through a
// CountedMetric, and Load reports the totals via BulkLoadStats.

#ifndef MCM_MTREE_BULK_LOAD_H_
#define MCM_MTREE_BULK_LOAD_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "mcm/common/random.h"
#include "mcm/engine/executor.h"
#include "mcm/metric/counted_metric.h"
#include "mcm/mtree/mtree.h"

namespace mcm {

template <typename Traits>
class StreamBulkLoader;

/// Distance-computation ledger of one bulk load — the build-side analogue
/// of the paper's query CPU cost.
struct BulkLoadStats {
  uint64_t distance_computations = 0;
  /// Wall-clock nanoseconds inside the metric (MCM_OBS on only, else 0).
  uint64_t metric_nanos = 0;
};

template <typename Traits>
class BulkLoader {
 public:
  using Object = typename Traits::Object;
  using Metric = typename Traits::Metric;
  using Node = MTreeNode<Traits>;
  using Tree = MTree<Traits>;

  /// Builds a tree over `objects`; `oids` may be empty (then oid = index).
  /// When `stats` is non-null it receives the build's distance ledger.
  static Tree Load(const std::vector<Object>& objects,
                   const std::vector<uint64_t>& oids, Metric metric,
                   MTreeOptions options,
                   std::unique_ptr<NodeStore<Traits>> store,
                   BulkLoadStats* stats = nullptr) {
    if (!oids.empty() && oids.size() != objects.size()) {
      throw std::invalid_argument("BulkLoader: oids size mismatch");
    }
    Tree tree(std::move(metric), options, std::move(store));
    if (objects.empty()) {
      return tree;
    }
    BulkLoader loader(tree, objects, oids);
    loader.Run();
    if (stats != nullptr) {
      stats->distance_computations = loader.metric_.count();
      stats->metric_nanos = loader.metric_.nanos();
    }
    return tree;
  }

 private:
  friend class StreamBulkLoader<Traits>;

  /// One item of the level being packed: a leaf object (level L) or the
  /// routing object of an already-built subtree (upper levels).
  struct Item {
    const Object* object = nullptr;
    uint64_t oid = 0;
    NodeId child = kInvalidNodeId;  ///< kInvalidNodeId at the leaf level.
    double radius = 0.0;            ///< Subtree covering radius.
    size_t entry_bytes = 0;
  };

  /// A cluster of items destined for one node.
  struct Group {
    size_t medoid = 0;              ///< Item index of the routing object.
    std::vector<size_t> members;    ///< Item indices (medoid included).
    std::vector<double> distances;  ///< d(medoid, member), aligned.
  };

  /// A fully clustered tree whose nodes have not touched the store yet.
  /// Routing children are staging positions tagged with kStagingBias —
  /// real NodeIds (which a streaming caller seeds level-0 items with) stay
  /// below the bias and pass through the commit remap untouched.
  struct StagedTree {
    std::vector<Node> nodes;  ///< Emission (bottom-up) order.
    NodeId root = 0;          ///< Staging position of the root.
    uint32_t height = 0;      ///< Levels emitted.
    /// Routing info of the whole staged tree (the root's up-item): what a
    /// parent entry pointing at this subtree needs. `root_object` points
    /// into the item storage the caller built from.
    const Object* root_object = nullptr;
    double root_radius = 0.0;
  };

  static constexpr NodeId kStagingBias = static_cast<NodeId>(1) << 31;
  static constexpr size_t kNoSeed = static_cast<size_t>(-1);

  /// `pool` (optional, not owned) serves the parallel assignment phase; a
  /// null pool with build_threads/MCM_BUILD_THREADS > 1 makes Run spawn
  /// its own. `rng_stream` isolates the random stream so a streaming
  /// caller can give every spill partition an independent, deterministic
  /// generator.
  BulkLoader(Tree& tree, const std::vector<Object>& objects,
             const std::vector<uint64_t>& oids,
             engine::ThreadPool* pool = nullptr, uint64_t rng_stream = 5)
      : tree_(tree),
        objects_(objects),
        oids_(oids),
        metric_(tree.metric_),
        rng_(MakeEngine(tree.options().seed, rng_stream)),
        pool_(pool) {
    capacity_ = tree.options().node_size_bytes - Node::HeaderSize();
    if (pool_ == nullptr) {
      const size_t threads =
          engine::ResolveBuildThreadCount(tree.options().build_threads);
      if (threads > 1) {
        owned_pool_ = std::make_unique<engine::ThreadPool>(threads);
        pool_ = owned_pool_.get();
      }
    }
  }

  void Run() {
    StagedTree staged = BuildStaged(MakeLeafItems(), /*leaf_level=*/true);
    CommitToTree(staged);
  }

  std::vector<Item> MakeLeafItems() const {
    std::vector<Item> items;
    items.reserve(objects_.size());
    for (size_t i = 0; i < objects_.size(); ++i) {
      Item item;
      item.object = &objects_[i];
      item.oid = oids_.empty() ? static_cast<uint64_t>(i) : oids_[i];
      item.entry_bytes = Node::LeafEntrySize(objects_[i]);
      if (item.entry_bytes > capacity_) {
        throw std::invalid_argument("BulkLoader: object exceeds node size");
      }
      items.push_back(item);
    }
    return items;
  }

  /// Runs the level loop over `items` without touching the store. With
  /// leaf_level = false the items are routing entries of already-committed
  /// subtrees (their `child` fields are real NodeIds) and only the upper
  /// structure is staged — the streaming loader's "glue" phase.
  StagedTree BuildStaged(std::vector<Item> items, bool leaf_level) {
    StagedTree staged;
    uint32_t levels = 0;
    while (true) {
      std::vector<Group> groups = Cluster(items);
      ++levels;
      if (groups.size() == 1) {
        const Item top = EmitNode(&staged.nodes, items, groups.front(),
                                  leaf_level);
        staged.root_object = top.object;
        staged.root_radius = top.radius;
        break;
      }
      std::vector<Item> next;
      next.reserve(groups.size());
      for (const Group& group : groups) {
        next.push_back(EmitNode(&staged.nodes, items, group, leaf_level));
      }
      items = std::move(next);
      leaf_level = false;
    }
    staged.root = static_cast<NodeId>(staged.nodes.size() - 1);
    staged.height = levels;
    return staged;
  }

  /// Page placement: level order from the root when the sequential layout
  /// is on (each node's children land on one contiguous ascending run of
  /// a fresh store), raw emission order otherwise.
  std::vector<NodeId> CommitOrder(const StagedTree& staged) const {
    std::vector<NodeId> order;
    order.reserve(staged.nodes.size());
    if (!tree_.options_.bulk_sequential_layout) {
      for (size_t p = 0; p < staged.nodes.size(); ++p) {
        order.push_back(static_cast<NodeId>(p));
      }
      return order;
    }
    order.push_back(staged.root);
    for (size_t head = 0; head < order.size(); ++head) {
      const Node& node = staged.nodes[order[head]];
      if (node.is_leaf) {
        continue;
      }
      for (const auto& e : node.routing_entries) {
        if (e.child >= kStagingBias) {
          order.push_back(e.child - kStagingBias);
        }
      }
    }
    return order;
  }

  /// Allocates pages in commit order, rewrites staged child references to
  /// the allocated ids, writes every node, and returns the root's real id.
  NodeId CommitStaged(StagedTree& staged) {
    const std::vector<NodeId> order = CommitOrder(staged);
    std::vector<NodeId> new_id(staged.nodes.size());
    for (const NodeId pos : order) {
      new_id[pos] = tree_.store_->Allocate();
    }
    for (const NodeId pos : order) {
      Node& node = staged.nodes[pos];
      if (!node.is_leaf) {
        for (auto& e : node.routing_entries) {
          if (e.child >= kStagingBias) {
            e.child = new_id[e.child - kStagingBias];
          }
        }
      }
      tree_.store_->Write(new_id[pos], node);
    }
    return new_id[staged.root];
  }

  void CommitToTree(StagedTree& staged) {
    tree_.root_ = CommitStaged(staged);
    tree_.height_ = staged.height;
    tree_.num_objects_ = objects_.size();
  }

  /// Stages one node for `group` and returns the item representing it at
  /// the next level up.
  Item EmitNode(std::vector<Node>* staged, const std::vector<Item>& items,
                const Group& group, bool leaf_level) {
    Node node;
    node.is_leaf = leaf_level;
    double radius = 0.0;
    for (size_t g = 0; g < group.members.size(); ++g) {
      const Item& member = items[group.members[g]];
      const double d = group.distances[g];
      radius = std::max(radius, d + member.radius);
      if (leaf_level) {
        LeafEntry<Object> e;
        e.object = *member.object;
        e.oid = member.oid;
        e.parent_distance = d;
        node.leaf_entries.push_back(std::move(e));
      } else {
        RoutingEntry<Object> e;
        e.object = *member.object;
        e.covering_radius = member.radius;
        e.parent_distance = d;
        e.child = member.child;
        node.routing_entries.push_back(std::move(e));
      }
    }
    const NodeId pos = static_cast<NodeId>(staged->size());
    staged->push_back(std::move(node));

    Item up;
    up.object = items[group.medoid].object;
    up.child = kStagingBias + pos;
    up.radius = radius;
    up.entry_bytes = Node::RoutingEntrySize(*up.object);
    return up;
  }

  /// Clusters all items into groups that each fit one node.
  std::vector<Group> Cluster(const std::vector<Item>& items) {
    std::vector<size_t> all(items.size());
    std::iota(all.begin(), all.end(), 0);
    std::vector<Group> groups;
    Partition(items, all, 0, &groups);
    RepairUtilization(items, &groups);
    return groups;
  }

  size_t GroupBytes(const std::vector<Item>& items,
                    const std::vector<size_t>& members) const {
    size_t bytes = 0;
    for (size_t i : members) bytes += items[i].entry_bytes;
    return bytes;
  }

  void Partition(const std::vector<Item>& items, std::vector<size_t> idxs,
                 int depth, std::vector<Group>* out) {
    const size_t bytes = GroupBytes(items, idxs);
    if (bytes <= capacity_ || idxs.size() == 1) {
      out->push_back(Finalize(items, std::move(idxs)));
      return;
    }
    // Target a 75% fill so nodes keep insertion slack.
    const double target = 0.75 * static_cast<double>(capacity_);
    size_t num_seeds = static_cast<size_t>(
        std::ceil(static_cast<double>(bytes) / target));
    num_seeds = std::clamp<size_t>(num_seeds, 2, std::min<size_t>(
        idxs.size(), kMaxFanout));

    std::vector<size_t> seeds = SampleDistinct(idxs, num_seeds);
    // Nearest-seed assignment: the build's distance hot loop. Each item's
    // slot is independent, so it fans out over the pool when one is
    // available and the level is big enough to amortize the dispatch; the
    // results (and everything downstream) are schedule-independent.
    std::vector<uint32_t> best_seed(idxs.size());
    std::vector<double> best_dist(idxs.size());
    const auto assign = [&](size_t k) {
      const Object& object = *items[idxs[k]].object;
      uint32_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (size_t s = 0; s < seeds.size(); ++s) {
        const double d = metric_(*items[seeds[s]].object, object);
        if (d < best_d) {
          best_d = d;
          best = static_cast<uint32_t>(s);
        }
      }
      best_seed[k] = best;
      best_dist[k] = best_d;
    };
    if (pool_ != nullptr && idxs.size() >= kParallelAssignThreshold) {
      pool_->ParallelFor(idxs.size(), assign);
    } else {
      for (size_t k = 0; k < idxs.size(); ++k) {
        assign(k);
      }
    }
    std::vector<std::vector<size_t>> clusters(seeds.size());
    // Assignment distances d(seed, member), aligned with each cluster;
    // Finalize reuses them for the seed's medoid candidacy instead of
    // recomputing the whole row.
    std::vector<std::vector<double>> cluster_dists(seeds.size());
    for (size_t k = 0; k < idxs.size(); ++k) {
      clusters[best_seed[k]].push_back(idxs[k]);
      cluster_dists[best_seed[k]].push_back(best_dist[k]);
    }

    // Guard against degenerate sampling (e.g. all-duplicate objects): if a
    // single cluster swallowed everything, fall back to even chunking.
    size_t nonempty = 0;
    for (const auto& c : clusters) nonempty += c.empty() ? 0 : 1;
    if (nonempty <= 1 || depth > kMaxDepth) {
      ChunkEvenly(items, idxs, out);
      return;
    }
    for (size_t c = 0; c < clusters.size(); ++c) {
      if (clusters[c].empty()) continue;
      if (GroupBytes(items, clusters[c]) <= capacity_) {
        out->push_back(Finalize(items, std::move(clusters[c]), seeds[c],
                                std::move(cluster_dists[c])));
      } else {
        Partition(items, std::move(clusters[c]), depth + 1, out);
      }
    }
  }

  /// Last-resort splitter: cut `idxs` into byte-bounded chunks in order.
  void ChunkEvenly(const std::vector<Item>& items, std::vector<size_t>& idxs,
                   std::vector<Group>* out) {
    std::vector<size_t> chunk;
    size_t bytes = 0;
    for (size_t idx : idxs) {
      if (!chunk.empty() && bytes + items[idx].entry_bytes > capacity_) {
        out->push_back(Finalize(items, std::move(chunk)));
        chunk.clear();
        bytes = 0;
      }
      chunk.push_back(idx);
      bytes += items[idx].entry_bytes;
    }
    if (!chunk.empty()) {
      out->push_back(Finalize(items, std::move(chunk)));
    }
  }

  /// Picks the medoid (min-max distance routing object) and computes member
  /// distances. For large groups, medoid candidates are sampled. When the
  /// group is a Partition cluster, `seed` / `seed_distances` carry the
  /// assignment-time d(seed, member) row: the seed is evaluated as a
  /// candidate for free instead of recomputing those distances.
  Group Finalize(const std::vector<Item>& items, std::vector<size_t> members,
                 size_t seed = kNoSeed,
                 std::vector<double> seed_distances = {}) {
    Group group;
    group.members = std::move(members);
    std::vector<size_t> candidates;
    if (group.members.size() <= kMedoidExhaustive) {
      candidates = group.members;
    } else {
      candidates = SampleDistinct(group.members, kMedoidSamples);
      // The seed's candidacy costs nothing — make sure sampling kept it
      // (membership required: the routing object must be an entry).
      if (seed != kNoSeed &&
          std::find(candidates.begin(), candidates.end(), seed) ==
              candidates.end() &&
          std::find(group.members.begin(), group.members.end(), seed) !=
              group.members.end()) {
        candidates.push_back(seed);
      }
    }
    double best_quality = std::numeric_limits<double>::infinity();
    std::vector<double> best_distances;
    size_t best_candidate = group.members.front();
    std::vector<double> distances(group.members.size());
    for (size_t cand : candidates) {
      const bool reuse =
          cand == seed && seed_distances.size() == group.members.size();
      double quality = 0.0;
      for (size_t m = 0; m < group.members.size(); ++m) {
        const double d =
            reuse ? seed_distances[m]
                  : metric_(*items[cand].object,
                            *items[group.members[m]].object);
        distances[m] = d;
        quality = std::max(quality, d + items[group.members[m]].radius);
      }
      if (quality < best_quality) {
        best_quality = quality;
        best_candidate = cand;
        best_distances = distances;
      }
    }
    group.medoid = best_candidate;
    group.distances = std::move(best_distances);
    return group;
  }

  /// Moves the members of under-filled groups into the nearest group with
  /// room, then drops the emptied groups.
  void RepairUtilization(const std::vector<Item>& items,
                         std::vector<Group>* groups) {
    if (groups->size() < 2) return;
    const size_t min_bytes = static_cast<size_t>(
        tree_.options().min_utilization * static_cast<double>(capacity_));
    std::vector<size_t> bytes(groups->size());
    for (size_t g = 0; g < groups->size(); ++g) {
      bytes[g] = GroupBytes(items, (*groups)[g].members);
    }
    std::vector<bool> dropped(groups->size(), false);
    for (size_t g = 0; g < groups->size(); ++g) {
      if (bytes[g] >= min_bytes) continue;
      // Try to place every member elsewhere; only commit if all fit.
      struct Move {
        size_t member_pos;
        size_t target_group;
        double distance;
      };
      std::vector<Move> moves;
      std::vector<size_t> projected = bytes;
      bool ok = true;
      const Group& group = (*groups)[g];
      // With many groups, scanning all of them per member is quadratic in
      // the tree width; sample a bounded candidate set instead (quality
      // degrades gracefully: a slightly farther target only loosens that
      // target's covering radius).
      std::vector<size_t> candidates;
      if (groups->size() > kRepairExhaustive) {
        candidates.reserve(kRepairCandidates);
        for (size_t s = 0; s < kRepairCandidates; ++s) {
          candidates.push_back(UniformIndex(rng_, groups->size()));
        }
      } else {
        candidates.resize(groups->size());
        std::iota(candidates.begin(), candidates.end(), 0);
      }
      for (size_t m = 0; m < group.members.size(); ++m) {
        const Item& item = items[group.members[m]];
        size_t best_target = groups->size();
        double best_d = std::numeric_limits<double>::infinity();
        for (size_t h : candidates) {
          if (h == g || dropped[h]) continue;
          if (projected[h] + item.entry_bytes > capacity_) continue;
          const double d =
              metric_(*items[(*groups)[h].medoid].object, *item.object);
          if (d < best_d) {
            best_d = d;
            best_target = h;
          }
        }
        if (best_target == groups->size()) {
          ok = false;
          break;
        }
        projected[best_target] += item.entry_bytes;
        moves.push_back({m, best_target, best_d});
      }
      if (!ok) continue;
      for (const Move& move : moves) {
        Group& target = (*groups)[move.target_group];
        target.members.push_back(group.members[move.member_pos]);
        target.distances.push_back(move.distance);
      }
      bytes = projected;
      bytes[g] = 0;
      dropped[g] = true;
    }
    std::vector<Group> kept;
    kept.reserve(groups->size());
    for (size_t g = 0; g < groups->size(); ++g) {
      if (!dropped[g]) kept.push_back(std::move((*groups)[g]));
    }
    *groups = std::move(kept);
  }

  std::vector<size_t> SampleDistinct(const std::vector<size_t>& from,
                                     size_t count) {
    count = std::min(count, from.size());
    std::vector<size_t> pool = from;
    for (size_t i = 0; i < count; ++i) {
      const size_t j = i + UniformIndex(rng_, pool.size() - i);
      std::swap(pool[i], pool[j]);
    }
    pool.resize(count);
    return pool;
  }

  static constexpr size_t kMaxFanout = 64;
  static constexpr size_t kRepairExhaustive = 1024;
  static constexpr size_t kRepairCandidates = 128;
  static constexpr int kMaxDepth = 64;
  static constexpr size_t kMedoidExhaustive = 48;
  static constexpr size_t kMedoidSamples = 16;
  /// Levels smaller than this are assigned inline: the distance work per
  /// item (<= kMaxFanout seed evaluations) has to outweigh a pool dispatch.
  static constexpr size_t kParallelAssignThreshold = 4096;

  Tree& tree_;
  const std::vector<Object>& objects_;
  const std::vector<uint64_t>& oids_;
  CountedMetric<Metric> metric_;  ///< Counts every build distance.
  RandomEngine rng_;
  engine::ThreadPool* pool_ = nullptr;  ///< Null = sequential build.
  std::unique_ptr<engine::ThreadPool> owned_pool_;
  size_t capacity_ = 0;
};

template <typename Traits>
MTree<Traits> MTree<Traits>::BulkLoad(
    const std::vector<Object>& objects, Metric metric, MTreeOptions options,
    std::unique_ptr<NodeStore<Traits>> store) {
  return BulkLoader<Traits>::Load(objects, {}, std::move(metric), options,
                                  std::move(store));
}

}  // namespace mcm

#endif  // MCM_MTREE_BULK_LOAD_H_
