// BulkLoading for the M-tree (Ciaccia & Patella, ADC'98 — reference [9] of
// the paper; the trees of every experiment in Section 4 are built this way).
//
// The loader works bottom-up, one level at a time, which guarantees a
// balanced tree by construction:
//   1. recursively cluster the current level's items around sampled seeds
//      until every cluster fits one node (byte capacity);
//   2. repair under-filled clusters by reassigning their members to the
//      nearest cluster with room (minimum-utilization handling of [9]);
//   3. emit one node per cluster, with the cluster medoid as routing object
//      and r(N) = max(d(medoid, member) + member radius);
//   4. the routing objects become the items of the next level; repeat until
//      a single node remains — the root.

#ifndef MCM_MTREE_BULK_LOAD_H_
#define MCM_MTREE_BULK_LOAD_H_

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "mcm/common/random.h"
#include "mcm/mtree/mtree.h"

namespace mcm {

template <typename Traits>
class BulkLoader {
 public:
  using Object = typename Traits::Object;
  using Metric = typename Traits::Metric;
  using Node = MTreeNode<Traits>;
  using Tree = MTree<Traits>;

  /// Builds a tree over `objects`; `oids` may be empty (then oid = index).
  static Tree Load(const std::vector<Object>& objects,
                   const std::vector<uint64_t>& oids, Metric metric,
                   MTreeOptions options,
                   std::unique_ptr<NodeStore<Traits>> store) {
    if (!oids.empty() && oids.size() != objects.size()) {
      throw std::invalid_argument("BulkLoader: oids size mismatch");
    }
    Tree tree(std::move(metric), options, std::move(store));
    if (objects.empty()) {
      return tree;
    }
    BulkLoader loader(tree, objects, oids);
    loader.Run();
    return tree;
  }

 private:
  /// One item of the level being packed: a leaf object (level L) or the
  /// routing object of an already-built subtree (upper levels).
  struct Item {
    const Object* object = nullptr;
    uint64_t oid = 0;
    NodeId child = kInvalidNodeId;  ///< kInvalidNodeId at the leaf level.
    double radius = 0.0;            ///< Subtree covering radius.
    size_t entry_bytes = 0;
  };

  /// A cluster of items destined for one node.
  struct Group {
    size_t medoid = 0;              ///< Item index of the routing object.
    std::vector<size_t> members;    ///< Item indices (medoid included).
    std::vector<double> distances;  ///< d(medoid, member), aligned.
  };

  BulkLoader(Tree& tree, const std::vector<Object>& objects,
             const std::vector<uint64_t>& oids)
      : tree_(tree),
        objects_(objects),
        oids_(oids),
        rng_(MakeEngine(tree.options().seed, /*stream=*/5)) {}

  void Run() {
    const MTreeOptions& options = tree_.options();
    capacity_ = options.node_size_bytes - Node::HeaderSize();

    std::vector<Item> items;
    items.reserve(objects_.size());
    for (size_t i = 0; i < objects_.size(); ++i) {
      Item item;
      item.object = &objects_[i];
      item.oid = oids_.empty() ? static_cast<uint64_t>(i) : oids_[i];
      item.entry_bytes = Node::LeafEntrySize(objects_[i]);
      if (item.entry_bytes > capacity_) {
        throw std::invalid_argument("BulkLoader: object exceeds node size");
      }
      items.push_back(item);
    }

    bool leaf_level = true;
    uint32_t levels = 0;
    while (true) {
      std::vector<Group> groups = Cluster(items);
      ++levels;
      if (groups.size() == 1) {
        tree_.root_ = EmitNode(items, groups.front(), leaf_level).child;
        break;
      }
      std::vector<Item> next;
      next.reserve(groups.size());
      for (const Group& group : groups) {
        next.push_back(EmitNode(items, group, leaf_level));
      }
      items = std::move(next);
      leaf_level = false;
    }
    tree_.height_ = levels;
    tree_.num_objects_ = objects_.size();
  }

  /// Writes one node for `group` and returns the item representing it at
  /// the next level up.
  Item EmitNode(const std::vector<Item>& items, const Group& group,
                bool leaf_level) {
    Node node;
    node.is_leaf = leaf_level;
    double radius = 0.0;
    for (size_t g = 0; g < group.members.size(); ++g) {
      const Item& member = items[group.members[g]];
      const double d = group.distances[g];
      radius = std::max(radius, d + member.radius);
      if (leaf_level) {
        LeafEntry<Object> e;
        e.object = *member.object;
        e.oid = member.oid;
        e.parent_distance = d;
        node.leaf_entries.push_back(std::move(e));
      } else {
        RoutingEntry<Object> e;
        e.object = *member.object;
        e.covering_radius = member.radius;
        e.parent_distance = d;
        e.child = member.child;
        node.routing_entries.push_back(std::move(e));
      }
    }
    const NodeId id = tree_.store_->Allocate();
    tree_.store_->Write(id, node);

    Item up;
    up.object = items[group.medoid].object;
    up.child = id;
    up.radius = radius;
    up.entry_bytes = Node::RoutingEntrySize(*up.object);
    return up;
  }

  /// Clusters all items into groups that each fit one node.
  std::vector<Group> Cluster(const std::vector<Item>& items) {
    std::vector<size_t> all(items.size());
    std::iota(all.begin(), all.end(), 0);
    std::vector<Group> groups;
    Partition(items, all, 0, &groups);
    RepairUtilization(items, &groups);
    return groups;
  }

  size_t GroupBytes(const std::vector<Item>& items,
                    const std::vector<size_t>& members) const {
    size_t bytes = 0;
    for (size_t i : members) bytes += items[i].entry_bytes;
    return bytes;
  }

  void Partition(const std::vector<Item>& items, std::vector<size_t> idxs,
                 int depth, std::vector<Group>* out) {
    const size_t bytes = GroupBytes(items, idxs);
    if (bytes <= capacity_ || idxs.size() == 1) {
      out->push_back(Finalize(items, std::move(idxs)));
      return;
    }
    // Target a 75% fill so nodes keep insertion slack.
    const double target = 0.75 * static_cast<double>(capacity_);
    size_t num_seeds = static_cast<size_t>(
        std::ceil(static_cast<double>(bytes) / target));
    num_seeds = std::clamp<size_t>(num_seeds, 2, std::min<size_t>(
        idxs.size(), kMaxFanout));

    std::vector<size_t> seeds = SampleDistinct(idxs, num_seeds);
    std::vector<std::vector<size_t>> clusters(seeds.size());
    for (size_t idx : idxs) {
      size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (size_t s = 0; s < seeds.size(); ++s) {
        const double d = tree_.metric_(*items[seeds[s]].object,
                                       *items[idx].object);
        if (d < best_d) {
          best_d = d;
          best = s;
        }
      }
      clusters[best].push_back(idx);
    }

    // Guard against degenerate sampling (e.g. all-duplicate objects): if a
    // single cluster swallowed everything, fall back to even chunking.
    size_t nonempty = 0;
    for (const auto& c : clusters) nonempty += c.empty() ? 0 : 1;
    if (nonempty <= 1 || depth > kMaxDepth) {
      ChunkEvenly(items, idxs, out);
      return;
    }
    for (auto& cluster : clusters) {
      if (cluster.empty()) continue;
      if (GroupBytes(items, cluster) <= capacity_) {
        out->push_back(Finalize(items, std::move(cluster)));
      } else {
        Partition(items, std::move(cluster), depth + 1, out);
      }
    }
  }

  /// Last-resort splitter: cut `idxs` into byte-bounded chunks in order.
  void ChunkEvenly(const std::vector<Item>& items, std::vector<size_t>& idxs,
                   std::vector<Group>* out) {
    std::vector<size_t> chunk;
    size_t bytes = 0;
    for (size_t idx : idxs) {
      if (!chunk.empty() && bytes + items[idx].entry_bytes > capacity_) {
        out->push_back(Finalize(items, std::move(chunk)));
        chunk.clear();
        bytes = 0;
      }
      chunk.push_back(idx);
      bytes += items[idx].entry_bytes;
    }
    if (!chunk.empty()) {
      out->push_back(Finalize(items, std::move(chunk)));
    }
  }

  /// Picks the medoid (min-max distance routing object) and computes member
  /// distances. For large groups, medoid candidates are sampled.
  Group Finalize(const std::vector<Item>& items, std::vector<size_t> members) {
    Group group;
    group.members = std::move(members);
    std::vector<size_t> candidates;
    if (group.members.size() <= kMedoidExhaustive) {
      candidates = group.members;
    } else {
      candidates = SampleDistinct(group.members, kMedoidSamples);
    }
    double best_quality = std::numeric_limits<double>::infinity();
    std::vector<double> best_distances;
    size_t best_candidate = group.members.front();
    std::vector<double> distances(group.members.size());
    for (size_t cand : candidates) {
      double quality = 0.0;
      for (size_t m = 0; m < group.members.size(); ++m) {
        const double d = tree_.metric_(*items[cand].object,
                                       *items[group.members[m]].object);
        distances[m] = d;
        quality = std::max(quality, d + items[group.members[m]].radius);
      }
      if (quality < best_quality) {
        best_quality = quality;
        best_candidate = cand;
        best_distances = distances;
      }
    }
    group.medoid = best_candidate;
    group.distances = std::move(best_distances);
    return group;
  }

  /// Moves the members of under-filled groups into the nearest group with
  /// room, then drops the emptied groups.
  void RepairUtilization(const std::vector<Item>& items,
                         std::vector<Group>* groups) {
    if (groups->size() < 2) return;
    const size_t min_bytes = static_cast<size_t>(
        tree_.options().min_utilization * static_cast<double>(capacity_));
    std::vector<size_t> bytes(groups->size());
    for (size_t g = 0; g < groups->size(); ++g) {
      bytes[g] = GroupBytes(items, (*groups)[g].members);
    }
    std::vector<bool> dropped(groups->size(), false);
    for (size_t g = 0; g < groups->size(); ++g) {
      if (bytes[g] >= min_bytes) continue;
      // Try to place every member elsewhere; only commit if all fit.
      struct Move {
        size_t member_pos;
        size_t target_group;
        double distance;
      };
      std::vector<Move> moves;
      std::vector<size_t> projected = bytes;
      bool ok = true;
      const Group& group = (*groups)[g];
      // With many groups, scanning all of them per member is quadratic in
      // the tree width; sample a bounded candidate set instead (quality
      // degrades gracefully: a slightly farther target only loosens that
      // target's covering radius).
      std::vector<size_t> candidates;
      if (groups->size() > kRepairExhaustive) {
        candidates.reserve(kRepairCandidates);
        for (size_t s = 0; s < kRepairCandidates; ++s) {
          candidates.push_back(UniformIndex(rng_, groups->size()));
        }
      } else {
        candidates.resize(groups->size());
        std::iota(candidates.begin(), candidates.end(), 0);
      }
      for (size_t m = 0; m < group.members.size(); ++m) {
        const Item& item = items[group.members[m]];
        size_t best_target = groups->size();
        double best_d = std::numeric_limits<double>::infinity();
        for (size_t h : candidates) {
          if (h == g || dropped[h]) continue;
          if (projected[h] + item.entry_bytes > capacity_) continue;
          const double d =
              tree_.metric_(*items[(*groups)[h].medoid].object, *item.object);
          if (d < best_d) {
            best_d = d;
            best_target = h;
          }
        }
        if (best_target == groups->size()) {
          ok = false;
          break;
        }
        projected[best_target] += item.entry_bytes;
        moves.push_back({m, best_target, best_d});
      }
      if (!ok) continue;
      for (const Move& move : moves) {
        Group& target = (*groups)[move.target_group];
        target.members.push_back(group.members[move.member_pos]);
        target.distances.push_back(move.distance);
      }
      bytes = projected;
      bytes[g] = 0;
      dropped[g] = true;
    }
    std::vector<Group> kept;
    kept.reserve(groups->size());
    for (size_t g = 0; g < groups->size(); ++g) {
      if (!dropped[g]) kept.push_back(std::move((*groups)[g]));
    }
    *groups = std::move(kept);
  }

  std::vector<size_t> SampleDistinct(const std::vector<size_t>& from,
                                     size_t count) {
    count = std::min(count, from.size());
    std::vector<size_t> pool = from;
    for (size_t i = 0; i < count; ++i) {
      const size_t j = i + UniformIndex(rng_, pool.size() - i);
      std::swap(pool[i], pool[j]);
    }
    pool.resize(count);
    return pool;
  }

  static constexpr size_t kMaxFanout = 64;
  static constexpr size_t kRepairExhaustive = 1024;
  static constexpr size_t kRepairCandidates = 128;
  static constexpr int kMaxDepth = 64;
  static constexpr size_t kMedoidExhaustive = 48;
  static constexpr size_t kMedoidSamples = 16;

  Tree& tree_;
  const std::vector<Object>& objects_;
  const std::vector<uint64_t>& oids_;
  RandomEngine rng_;
  size_t capacity_ = 0;
};

template <typename Traits>
MTree<Traits> MTree<Traits>::BulkLoad(
    const std::vector<Object>& objects, Metric metric, MTreeOptions options,
    std::unique_ptr<NodeStore<Traits>> store) {
  return BulkLoader<Traits>::Load(objects, {}, std::move(metric), options,
                                  std::move(store));
}

}  // namespace mcm

#endif  // MCM_MTREE_BULK_LOAD_H_
