// Out-of-core bulk loading: builds an M-tree from an object *stream* under
// a bounded memory budget (MCM_INGEST_BUDGET), instead of requiring the
// whole dataset in one in-memory vector like BulkLoader.
//
// Three streaming phases, all deterministic (every random choice flows
// through the option-seeded engine in stream order, independent of the
// thread count):
//   A. One pass over the source counts objects/bytes and reservoir-samples
//      candidate partition seeds (algorithm R). Small datasets short-cut to
//      the in-memory BulkLoader here.
//   B. A second pass assigns each object to its nearest seed (batched,
//      fanned over the build pool) and appends it to that partition's spill
//      file on disk — only one bounded batch is ever memory-resident.
//   C. Partitions are read back and bulk-loaded into subtrees, a bounded
//      wave of them concurrently; each subtree commits its pages as one
//      contiguous run in partition order, shorter subtrees are padded to a
//      common height with single-entry routing chains, and a final
//      BulkLoader pass over the partition routers glues the roots together.
//
// The resulting tree is balanced (equalized subtree heights under a
// bulk-loaded top) and page-layout sequential per subtree, so the
// query-time readahead applies exactly as for the in-memory loader.

#ifndef MCM_MTREE_BULK_STREAM_H_
#define MCM_MTREE_BULK_STREAM_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "mcm/common/env.h"
#include "mcm/common/random.h"
#include "mcm/metric/counted_metric.h"
#include "mcm/mtree/bulk_load.h"

namespace mcm {

/// A restartable stream of (object, oid) records — the ingest interface of
/// the streaming bulk loader. Reset() must rewind to the first record and
/// replay the identical sequence (the loader makes two passes).
template <typename Traits>
class ObjectSource {
 public:
  using Object = typename Traits::Object;

  virtual ~ObjectSource() = default;

  /// Produces the next record; returns false at end of stream.
  virtual bool Next(Object* object, uint64_t* oid) = 0;

  /// Rewinds to the first record.
  virtual void Reset() = 0;
};

/// Adapter: streams an in-memory vector (oid = index when `oids` empty).
/// Useful for tests and for feeding the streaming loader from generators.
template <typename Traits>
class VectorObjectSource final : public ObjectSource<Traits> {
 public:
  using Object = typename Traits::Object;

  /// `oids` is copied: the default-argument temporary must not dangle.
  VectorObjectSource(const std::vector<Object>& objects,
                     std::vector<uint64_t> oids = {})
      : objects_(objects), oids_(std::move(oids)) {
    if (!oids_.empty() && oids_.size() != objects.size()) {
      throw std::invalid_argument("VectorObjectSource: oids size mismatch");
    }
  }

  bool Next(Object* object, uint64_t* oid) override {
    if (pos_ >= objects_.size()) {
      return false;
    }
    *object = objects_[pos_];
    *oid = oids_.empty() ? static_cast<uint64_t>(pos_) : oids_[pos_];
    ++pos_;
    return true;
  }

  void Reset() override { pos_ = 0; }

 private:
  const std::vector<Object>& objects_;
  const std::vector<uint64_t> oids_;
  size_t pos_ = 0;
};

/// Builds an M-tree from an ObjectSource with memory bounded by the ingest
/// budget, spilling seed-partitioned object runs to `spill_dir` when the
/// dataset exceeds it.
template <typename Traits>
class StreamBulkLoader {
 public:
  using Object = typename Traits::Object;
  using Metric = typename Traits::Metric;
  using Node = MTreeNode<Traits>;
  using Tree = MTree<Traits>;

  /// Builds a tree from `source`. `spill_dir` must be a writable existing
  /// directory; spill files are created and removed inside it. The budget
  /// is `ingest_budget_bytes` when > 0, else MCM_INGEST_BUDGET, else
  /// 256 MiB. When `stats` is non-null it receives the total build
  /// distance ledger (assignment + subtree + glue distances).
  static Tree Load(ObjectSource<Traits>& source, Metric metric,
                   MTreeOptions options,
                   std::unique_ptr<NodeStore<Traits>> store,
                   const std::string& spill_dir,
                   int64_t ingest_budget_bytes = -1,
                   BulkLoadStats* stats = nullptr) {
    Tree tree(std::move(metric), options, std::move(store));
    StreamBulkLoader loader(tree, source, spill_dir,
                            ResolveIngestBudget(ingest_budget_bytes));
    loader.Run();
    if (stats != nullptr) {
      *stats = loader.stats_;
    }
    return tree;
  }

 private:
  using Loader = BulkLoader<Traits>;
  using Item = typename Loader::Item;
  using StagedTree = typename Loader::StagedTree;

  /// Reservoir size: the cap on partition count and on pass-1 memory.
  static constexpr size_t kMaxPartitions = 512;
  static constexpr uint64_t kDefaultBudget = 256ull << 20;  // 256 MiB.
  /// Random streams: the in-memory loader owns 5, the glue pass 6, the
  /// reservoir/seed pass 7, and partition p builds with 16 + p — fixed
  /// per partition so wave scheduling cannot shift any sequence.
  static constexpr uint64_t kStreamReservoir = 7;
  static constexpr uint64_t kStreamGlue = 6;
  static constexpr uint64_t kStreamPartitionBase = 16;

  /// One committed partition subtree, ready to glue.
  struct Built {
    NodeId root = kInvalidNodeId;
    Object router;
    double radius = 0.0;
    uint32_t height = 0;
  };

  struct Spill {
    std::string path;
    std::FILE* file = nullptr;
    uint64_t count = 0;
  };

  static uint64_t ResolveIngestBudget(int64_t requested) {
    if (requested > 0) {
      return static_cast<uint64_t>(requested);
    }
    const int64_t env = GetEnvInt("MCM_INGEST_BUDGET", 0);
    if (env > 0) {
      return static_cast<uint64_t>(env);
    }
    return kDefaultBudget;
  }

  StreamBulkLoader(Tree& tree, ObjectSource<Traits>& source,
                   std::string spill_dir, uint64_t budget)
      : tree_(tree),
        source_(source),
        spill_dir_(std::move(spill_dir)),
        budget_(budget),
        metric_(tree.metric_),
        rng_(MakeEngine(tree.options().seed, kStreamReservoir)) {
    capacity_ = tree.options().node_size_bytes - Node::HeaderSize();
    threads_ = engine::ResolveBuildThreadCount(tree.options().build_threads);
    if (threads_ > 1) {
      pool_ = std::make_unique<engine::ThreadPool>(threads_);
    }
  }

  ~StreamBulkLoader() {
    for (Spill& spill : spills_) {
      CloseAndRemove(spill);
    }
  }

  void Run() {
    // Pass A: count, size, and reservoir-sample seed candidates.
    std::vector<Object> sample;
    sample.reserve(kMaxPartitions);
    uint64_t n = 0;
    uint64_t total_bytes = 0;
    {
      Object object;
      uint64_t oid = 0;
      while (source_.Next(&object, &oid)) {
        const size_t entry = Node::LeafEntrySize(object);
        if (entry > capacity_) {
          throw std::invalid_argument(
              "StreamBulkLoader: object exceeds node size");
        }
        total_bytes += entry;
        if (n < kMaxPartitions) {
          sample.push_back(object);
        } else {
          const size_t j = UniformIndex(rng_, static_cast<size_t>(n) + 1);
          if (j < kMaxPartitions) {
            sample[j] = object;
          }
        }
        ++n;
      }
    }
    if (n == 0) {
      return;  // Empty tree.
    }

    // Partition count targets budget/8 bytes per partition so a bounded
    // wave of in-flight subtree builds stays inside the budget. The count
    // depends only on the data and the budget — never on the thread count —
    // which keeps the page bytes thread-count-invariant.
    const uint64_t target = std::max<uint64_t>(budget_ / 8, 1);
    size_t parts = static_cast<size_t>((total_bytes + target - 1) / target);
    parts = std::min<size_t>({parts, kMaxPartitions,
                              static_cast<size_t>(n), sample.size()});
    if (total_bytes <= budget_ / 2 || parts <= 1) {
      InMemoryBuild(n);
      return;
    }

    // Seeds: `parts` distinct draws from the reservoir.
    for (size_t i = 0; i < parts; ++i) {
      const size_t j = i + UniformIndex(rng_, sample.size() - i);
      std::swap(sample[i], sample[j]);
    }
    sample.resize(parts);
    seeds_ = std::move(sample);

    SpillPass(parts);
    const std::vector<Built> built = BuildPartitions(parts);
    Glue(built);
    tree_.num_objects_ = n;
    stats_.distance_computations += metric_.count();
    stats_.metric_nanos += metric_.nanos();
  }

  /// Short-cut for datasets that fit comfortably: one in-memory bulk load.
  void InMemoryBuild(uint64_t n) {
    std::vector<Object> objects;
    std::vector<uint64_t> oids;
    objects.reserve(static_cast<size_t>(n));
    oids.reserve(static_cast<size_t>(n));
    source_.Reset();
    Object object;
    uint64_t oid = 0;
    while (source_.Next(&object, &oid)) {
      objects.push_back(std::move(object));
      oids.push_back(oid);
    }
    Loader loader(tree_, objects, oids, pool_.get());
    loader.Run();
    stats_.distance_computations += loader.metric_.count();
    stats_.metric_nanos += loader.metric_.nanos();
  }

  /// Pass B: stream again in bounded batches, assign each object to its
  /// nearest seed, append to that partition's spill file.
  void SpillPass(size_t parts) {
    spills_.resize(parts);
    for (size_t p = 0; p < parts; ++p) {
      spills_[p].path = spill_dir_ + "/mcm_spill_" + std::to_string(p) +
                        ".bin";
      spills_[p].file = std::fopen(spills_[p].path.c_str(), "wb+");
      if (spills_[p].file == nullptr) {
        throw std::runtime_error("StreamBulkLoader: cannot create spill " +
                                 spills_[p].path);
      }
    }
    const uint64_t batch_budget = std::max<uint64_t>(budget_ / 4, 1 << 20);
    std::vector<Object> batch;
    std::vector<uint64_t> batch_oids;
    uint64_t batch_bytes = 0;
    source_.Reset();
    Object object;
    uint64_t oid = 0;
    for (;;) {
      const bool more = source_.Next(&object, &oid);
      if (more) {
        batch_bytes += Node::LeafEntrySize(object);
        batch.push_back(std::move(object));
        batch_oids.push_back(oid);
      }
      if (!batch.empty() && (!more || batch_bytes >= batch_budget)) {
        AssignAndSpill(batch, batch_oids);
        batch.clear();
        batch_oids.clear();
        batch_bytes = 0;
      }
      if (!more) {
        break;
      }
    }
  }

  void AssignAndSpill(const std::vector<Object>& batch,
                      const std::vector<uint64_t>& batch_oids) {
    std::vector<uint32_t> best(batch.size());
    const auto assign = [&](size_t i) {
      uint32_t best_p = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (size_t p = 0; p < seeds_.size(); ++p) {
        const double d = metric_(seeds_[p], batch[i]);
        if (d < best_d) {
          best_d = d;
          best_p = static_cast<uint32_t>(p);
        }
      }
      best[i] = best_p;
    };
    if (pool_ != nullptr && batch.size() >= kParallelAssignBatch) {
      pool_->ParallelFor(batch.size(), assign);
    } else {
      for (size_t i = 0; i < batch.size(); ++i) {
        assign(i);
      }
    }
    // Sequential, order-preserving appends: the spill record order is the
    // stream order restricted to the partition, independent of scheduling.
    std::vector<uint8_t> buf;
    for (size_t i = 0; i < batch.size(); ++i) {
      buf.clear();
      ByteWriter writer(&buf);
      Traits::Serialize(batch[i], writer);
      Spill& spill = spills_[best[i]];
      const uint64_t oid = batch_oids[i];
      const uint32_t size = static_cast<uint32_t>(buf.size());
      if (std::fwrite(&oid, sizeof(oid), 1, spill.file) != 1 ||
          std::fwrite(&size, sizeof(size), 1, spill.file) != 1 ||
          std::fwrite(buf.data(), 1, buf.size(), spill.file) != buf.size()) {
        throw std::runtime_error("StreamBulkLoader: spill write failed");
      }
      ++spill.count;
    }
  }

  void ReadSpill(Spill& spill, std::vector<Object>* objects,
                 std::vector<uint64_t>* oids) const {
    objects->reserve(static_cast<size_t>(spill.count));
    oids->reserve(static_cast<size_t>(spill.count));
    if (std::fseek(spill.file, 0, SEEK_SET) != 0) {
      throw std::runtime_error("StreamBulkLoader: spill rewind failed");
    }
    std::vector<uint8_t> buf;
    for (uint64_t r = 0; r < spill.count; ++r) {
      uint64_t oid = 0;
      uint32_t size = 0;
      if (std::fread(&oid, sizeof(oid), 1, spill.file) != 1 ||
          std::fread(&size, sizeof(size), 1, spill.file) != 1) {
        throw std::runtime_error("StreamBulkLoader: spill read failed");
      }
      buf.resize(size);
      if (std::fread(buf.data(), 1, size, spill.file) != size) {
        throw std::runtime_error("StreamBulkLoader: spill read failed");
      }
      ByteReader reader(buf.data(), buf.size());
      objects->push_back(Traits::Deserialize(reader));
      oids->push_back(oid);
    }
  }

  /// Phase C: bulk-load each non-empty partition into a committed subtree.
  /// A wave of them is *staged* concurrently (bounded, so in-flight
  /// partition objects respect the budget), then committed sequentially in
  /// partition order — page allocation order, and therefore page bytes,
  /// never depend on the schedule.
  std::vector<Built> BuildPartitions(size_t parts) {
    std::vector<Built> built;
    std::vector<size_t> live;
    for (size_t p = 0; p < parts; ++p) {
      if (spills_[p].count > 0) {
        live.push_back(p);
      }
    }
    const size_t wave = std::max<size_t>(
        1, std::min<size_t>({threads_, live.size(), kMaxWave}));
    for (size_t w0 = 0; w0 < live.size(); w0 += wave) {
      const size_t cnt = std::min(wave, live.size() - w0);
      std::vector<std::vector<Object>> objects(cnt);
      std::vector<std::vector<uint64_t>> oids(cnt);
      std::vector<std::unique_ptr<Loader>> loaders(cnt);
      std::vector<StagedTree> staged(cnt);
      const auto build_one = [&](size_t k) {
        const size_t p = live[w0 + k];
        ReadSpill(spills_[p], &objects[k], &oids[k]);
        loaders[k] = std::unique_ptr<Loader>(
            new Loader(tree_, objects[k], oids[k], pool_.get(),
                       kStreamPartitionBase + p));
        staged[k] = loaders[k]->BuildStaged(loaders[k]->MakeLeafItems(),
                                            /*leaf_level=*/true);
      };
      if (pool_ != nullptr && cnt > 1) {
        pool_->ParallelFor(cnt, build_one);
      } else {
        for (size_t k = 0; k < cnt; ++k) {
          build_one(k);
        }
      }
      for (size_t k = 0; k < cnt; ++k) {
        Built b;
        b.root = loaders[k]->CommitStaged(staged[k]);
        b.router = *staged[k].root_object;  // Copy before objects[k] dies.
        b.radius = staged[k].root_radius;
        b.height = staged[k].height;
        built.push_back(std::move(b));
        stats_.distance_computations += loaders[k]->metric_.count();
        stats_.metric_nanos += loaders[k]->metric_.nanos();
        CloseAndRemove(spills_[live[w0 + k]]);
      }
    }
    return built;
  }

  /// Phase D: equalize subtree heights with single-entry routing chains
  /// (parent distance d(router, router) = 0 is exact, radius unchanged, so
  /// every structural invariant holds), then bulk-load the top structure
  /// over the partition routers.
  void Glue(std::vector<Built> built) {
    uint32_t max_h = 0;
    for (const Built& b : built) {
      max_h = std::max(max_h, b.height);
    }
    for (Built& b : built) {
      while (b.height < max_h) {
        Node chain;
        chain.is_leaf = false;
        RoutingEntry<Object> e;
        e.object = b.router;
        e.covering_radius = b.radius;
        e.parent_distance = 0.0;
        e.child = b.root;
        chain.routing_entries.push_back(std::move(e));
        const NodeId id = tree_.store_->Allocate();
        tree_.store_->Write(id, chain);
        b.root = id;
        ++b.height;
      }
    }
    if (built.size() == 1) {
      tree_.root_ = built.front().root;
      tree_.height_ = built.front().height;
      return;
    }
    std::vector<Item> items;
    items.reserve(built.size());
    for (const Built& b : built) {
      Item item;
      item.object = &b.router;
      item.child = b.root;  // Real NodeId: below the staging bias.
      item.radius = b.radius;
      item.entry_bytes = Node::RoutingEntrySize(b.router);
      if (item.entry_bytes > capacity_) {
        throw std::invalid_argument(
            "StreamBulkLoader: router exceeds node size");
      }
      items.push_back(item);
    }
    Loader glue(tree_, empty_objects_, empty_oids_, pool_.get(),
                kStreamGlue);
    StagedTree top = glue.BuildStaged(std::move(items),
                                      /*leaf_level=*/false);
    tree_.root_ = glue.CommitStaged(top);
    tree_.height_ = top.height + max_h;
    stats_.distance_computations += glue.metric_.count();
    stats_.metric_nanos += glue.metric_.nanos();
  }

  void CloseAndRemove(Spill& spill) {
    if (spill.file != nullptr) {
      std::fclose(spill.file);
      spill.file = nullptr;
      std::remove(spill.path.c_str());
    }
  }

  /// Batch size below which pool dispatch costs more than it saves.
  static constexpr size_t kParallelAssignBatch = 4096;
  /// In-flight partitions per build wave; with partitions targeted at
  /// budget/8 bytes, a full wave of 4 stays near budget/2 of object data.
  static constexpr size_t kMaxWave = 4;

  Tree& tree_;
  ObjectSource<Traits>& source_;
  std::string spill_dir_;
  uint64_t budget_;
  CountedMetric<Metric> metric_;  ///< Counts seed-assignment distances.
  RandomEngine rng_;
  size_t capacity_ = 0;
  size_t threads_ = 1;
  std::unique_ptr<engine::ThreadPool> pool_;
  std::vector<Object> seeds_;
  std::vector<Spill> spills_;
  std::vector<Object> empty_objects_;  ///< Backing refs for the glue pass.
  std::vector<uint64_t> empty_oids_;
  BulkLoadStats stats_;
};

}  // namespace mcm

#endif  // MCM_MTREE_BULK_STREAM_H_
