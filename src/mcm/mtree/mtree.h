// The M-tree (Ciaccia, Patella, Zezula; VLDB'97): a paged, dynamic,
// balanced metric access method. This is the index the paper's cost model
// predicts. Supports dynamic insertion with the VLDB'97 split policies,
// range and optimal k-NN search, and statistics export for the cost models.
//
// Search runs in one of two pruning modes (options.h): kBasic computes the
// distance from the query to every entry of every accessed node — exactly
// the CPU cost the paper models (footnote 2) — while kOptimized applies the
// stored-parent-distance pruning of the original M-tree.

#ifndef MCM_MTREE_MTREE_H_
#define MCM_MTREE_MTREE_H_

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <queue>
#include <stdexcept>
#include <vector>

#include "mcm/common/query_stats.h"
#include "mcm/common/random.h"
#include "mcm/cost/tree_stats.h"
#include "mcm/engine/search_core.h"
#include "mcm/engine/witness.h"
#include "mcm/mtree/node.h"
#include "mcm/mtree/node_store.h"
#include "mcm/mtree/options.h"
#include "mcm/mtree/split.h"
#include "mcm/obs/phase.h"
#include "mcm/obs/trace.h"

namespace mcm {

template <typename Traits>
class BulkLoader;

template <typename Traits>
class StreamBulkLoader;

template <typename Traits>
class MTree {
 public:
  using Object = typename Traits::Object;
  using Metric = typename Traits::Metric;
  using Node = MTreeNode<Traits>;
  using Result = SearchResult<Object>;

  /// Creates an empty tree. When `store` is null a MemoryNodeStore is used.
  MTree(Metric metric, MTreeOptions options,
        std::unique_ptr<NodeStore<Traits>> store = nullptr)
      : metric_(std::move(metric)),
        options_(options),
        store_(store ? std::move(store)
                     : std::make_unique<MemoryNodeStore<Traits>>()),
        witness_capacity_(
            engine::ResolveWitnessCapacity(options.witness_capacity)),
        rng_(MakeEngine(options.seed, /*stream=*/3)) {
    if (options_.node_size_bytes <= Node::HeaderSize()) {
      throw std::invalid_argument("MTree: node size too small");
    }
  }

  /// Bulk-loads a tree from `objects` (oid = position index). Implemented in
  /// bulk_load.h; declared here for discoverability.
  static MTree BulkLoad(const std::vector<Object>& objects, Metric metric,
                        MTreeOptions options,
                        std::unique_ptr<NodeStore<Traits>> store = nullptr);

  /// Inserts one object with external id `oid`.
  void Insert(const Object& object, uint64_t oid) {
    if (Node::LeafEntrySize(object) + Node::HeaderSize() >
        options_.node_size_bytes) {
      throw std::invalid_argument("MTree::Insert: object exceeds node size");
    }
    if (root_ == kInvalidNodeId) {
      root_ = store_->Allocate();
      Node node;
      node.is_leaf = true;
      node.leaf_entries.push_back({object, oid, 0.0, {}});
      store_->Write(root_, node);
      height_ = 1;
      num_objects_ = 1;
      NotifyModified();
      return;
    }
    auto split = InsertRecursive(root_, nullptr, object, oid);
    if (split.has_value()) {
      // A root split deepens the tree: every stored ancestor distance is
      // indexed by absolute depth, so the cascade is invalidated wholesale
      // (re-install it with InstallWitnessCascade). Non-root splits keep
      // the cascade: moved entries retain their above-parent ancestors and
      // freshly promoted entries carry empty (safe) arrays.
      cascade_installed_ = false;
      Node new_root;
      new_root.is_leaf = false;
      split->first.parent_distance = 0.0;
      split->second.parent_distance = 0.0;
      new_root.routing_entries.push_back(std::move(split->first));
      new_root.routing_entries.push_back(std::move(split->second));
      const NodeId new_root_id = store_->Allocate();
      store_->Write(new_root_id, new_root);
      root_ = new_root_id;
      ++height_;
    }
    ++num_objects_;
    NotifyModified();
  }

  /// range(Q, r_Q): all objects within distance `radius` of `query`,
  /// sorted by increasing distance. Fills `stats` (if given) with the
  /// paper's I/O and CPU cost counters.
  std::vector<Result> RangeSearch(const Object& query, double radius,
                                  QueryStats* stats = nullptr) const {
    QueryStats local;
    QueryStats* st = stats ? stats : &local;
    ResetCounters(st);
    if (root_ == kInvalidNodeId || radius < 0.0) {
      return {};
    }
    engine::RangeCollector<Object> collector(radius);
    Traverse(query, collector, st, PruneReason::kCoveringRadius);
    ScopedSpan collect_span(st, QueryPhase::kCollect);
    return collector.Take();
  }

  /// NN(Q, k): the k nearest neighbors of `query`, sorted by increasing
  /// distance (fewer if the tree holds fewer than k objects). Implements
  /// the optimal best-first algorithm: only nodes whose region intersects
  /// the final NN(Q, k) ball are accessed.
  std::vector<Result> KnnSearch(const Object& query, size_t k,
                                QueryStats* stats = nullptr) const {
    QueryStats local;
    QueryStats* st = stats ? stats : &local;
    ResetCounters(st);
    if (root_ == kInvalidNodeId || k == 0) {
      return {};
    }
    engine::KnnCollector<Object> collector(k);
    Traverse(query, collector, st, PruneReason::kKnnBound);
    ScopedSpan collect_span(st, QueryPhase::kCollect);
    return collector.Take();
  }

  /// A single similarity predicate of a complex query: "within `radius`
  /// of `query`".
  struct Predicate {
    Object query;
    double radius = 0.0;
  };

  /// How the predicates of a complex query combine.
  enum class Combine {
    kAnd,  ///< Conjunction: every predicate must hold.
    kOr,   ///< Disjunction: at least one predicate must hold.
  };

  /// Complex similarity query (future work #3; EDBT'98 [11]): objects
  /// satisfying the conjunction/disjunction of several range predicates,
  /// evaluated in a single tree traversal. A node is visited iff its ball
  /// can intersect every (kAnd) / any (kOr) predicate ball; each accessed
  /// entry computes one distance per predicate (counted in `stats`).
  /// Results are sorted by the combined distance: max over predicates for
  /// kAnd, min for kOr.
  std::vector<Result> ComplexRangeSearch(
      const std::vector<Predicate>& predicates, Combine combine,
      QueryStats* stats = nullptr) const {
    QueryStats local;
    QueryStats* st = stats ? stats : &local;
    ResetCounters(st);
    std::vector<Result> results;
    if (root_ == kInvalidNodeId || predicates.empty()) {
      return results;
    }
    ComplexRecurse(root_, predicates, combine, /*level=*/1, st, &results);
    ScopedSpan collect_span(st, QueryPhase::kCollect);
    std::sort(results.begin(), results.end(),
              [](const Result& a, const Result& b) {
                return a.distance < b.distance;
              });
    return results;
  }

  /// Deletes the object equal to `object` (distance 0) carrying id `oid`.
  /// Returns false when no such entry exists.
  ///
  /// The original M-tree paper defines no deletion; this implements the
  /// standard conservative scheme: the entry is removed from its leaf,
  /// emptied nodes are unlinked bottom-up, a single-child root collapses,
  /// and covering radii are left untouched (they remain valid — possibly
  /// loose — upper bounds, so all search invariants still hold).
  bool Delete(const Object& object, uint64_t oid) {
    if (root_ == kInvalidNodeId) {
      return false;
    }
    if (!DeleteRecurse(root_, object, oid)) {
      return false;
    }
    --num_objects_;
    const uint32_t height_before = height_;
    CollapseRoot();
    if (height_ != height_before) {
      // Collapsing the root shifts every depth, invalidating the
      // depth-indexed ancestor distances. Removals alone keep the
      // surviving entries' stored distances exact.
      cascade_installed_ = false;
    }
    NotifyModified();
    return true;
  }

  /// Installs `hook`, invoked after every successful Insert/Delete with the
  /// tree in its post-mutation state. The invariant checker
  /// (mcm/check/check_mtree.h) uses this to re-validate the structure after
  /// each mutation when MCM_CHECK_INVARIANTS=1. Pass nullptr to clear.
  void set_post_modify_hook(std::function<void(const MTree&)> hook) {
    post_modify_hook_ = std::move(hook);
  }

  /// Reattaches a tree whose nodes already live in `store` — the
  /// persistence layer (mtree/persist.h) uses this to reopen a saved index.
  /// The caller must pass the same metric and options the tree was built
  /// with; `root`, `num_objects` and `height` come from the saved metadata.
  static MTree Attach(Metric metric, MTreeOptions options,
                      std::unique_ptr<NodeStore<Traits>> store, NodeId root,
                      size_t num_objects, uint32_t height,
                      bool cascade_installed = false) {
    MTree tree(std::move(metric), options, std::move(store));
    tree.root_ = root;
    tree.num_objects_ = num_objects;
    tree.height_ = height;
    tree.cascade_installed_ = cascade_installed;
    return tree;
  }

  /// Number of indexed objects.
  size_t size() const { return num_objects_; }

  /// Tree height L (0 for an empty tree; root = level 1, leaves = level L).
  uint32_t height() const { return height_; }

  NodeId root() const { return root_; }
  const MTreeOptions& options() const { return options_; }
  const Metric& metric() const { return metric_; }
  NodeStore<Traits>& store() const { return *store_; }

  /// Resolved witness-set capacity (options.witness_capacity, with -1
  /// resolved from MCM_WITNESSES at construction).
  int witness_capacity() const { return witness_capacity_; }

  /// True once InstallWitnessCascade has stored per-entry ancestor
  /// distances and no structural change has invalidated them since.
  bool cascade_installed() const { return cascade_installed_; }

  /// Installs the witness cascade: walks the tree top-down and stores, in
  /// every entry, its exact metric distances to the routing objects
  /// strictly above its parent (indexed by 0-based depth). These are the
  /// stored side of the engine's witness bounds; search consults them only
  /// while cascade_installed() holds (root splits and root collapses clear
  /// the flag — re-run this pass to restore it).
  ///
  /// Build-time metric evaluations are intentionally uncounted, like those
  /// of Insert/BulkLoad. A node whose serialized form would overflow the
  /// page with the arrays attached keeps them empty (a safe fallback: its
  /// entries simply contribute no witness bounds).
  void InstallWitnessCascade() {
    if (root_ != kInvalidNodeId) {
      std::vector<const Object*> path;
      InstallCascadeRecurse(root_, &path);
    }
    cascade_installed_ = true;
  }

  /// Snapshots the statistics the cost models need. `root_radius` is the
  /// conventional covering radius of the root — d⁺ per footnote 1.
  MTreeStatsView CollectStats(double root_radius) const {
    MTreeStatsView view;
    view.num_objects = num_objects_;
    view.height = height_;
    if (root_ == kInvalidNodeId) {
      return view;
    }
    struct Item {
      NodeId id;
      uint32_t level;
      double radius;
    };
    std::vector<Item> frontier{{root_, 1, root_radius}};
    while (!frontier.empty()) {
      const Item item = frontier.back();
      frontier.pop_back();
      const Node node = store_->Read(item.id);
      NodeStatRecord rec;
      rec.level = item.level;
      rec.covering_radius = item.radius;
      rec.num_entries = static_cast<uint32_t>(node.NumEntries());
      rec.is_leaf = node.is_leaf;
      view.nodes.push_back(rec);
      if (!node.is_leaf) {
        for (const auto& e : node.routing_entries) {
          frontier.push_back({e.child, item.level + 1, e.covering_radius});
        }
      }
    }
    view.levels = AggregateLevels(view.nodes);
    return view;
  }

 private:
  friend class BulkLoader<Traits>;
  friend class StreamBulkLoader<Traits>;

  struct SplitInfo {
    RoutingEntry<Object> first;
    RoutingEntry<Object> second;
  };

  double Dist(const Object& a, const Object& b, QueryStats* st) const {
    ++st->distance_computations;
    return metric_(a, b);
  }

  /// Fills the ancestor-distance arrays of the subtree at `id`. `path`
  /// holds the routing objects on the way down (depths 0..l-1 for a node
  /// at depth l); entries store distances to all of them but the last (the
  /// parent, already covered by parent_distance).
  void InstallCascadeRecurse(NodeId id, std::vector<const Object*>* path) {
    Node node = store_->Read(id);
    const size_t above_parent = path->empty() ? 0 : path->size() - 1;
    auto fill = [&](const Object& object, std::vector<double>* distances) {
      distances->clear();
      distances->reserve(above_parent);
      for (size_t i = 0; i < above_parent; ++i) {
        distances->push_back(metric_(*(*path)[i], object));
      }
    };
    if (node.is_leaf) {
      for (auto& e : node.leaf_entries) fill(e.object, &e.ancestor_distances);
    } else {
      for (auto& e : node.routing_entries) {
        fill(e.object, &e.ancestor_distances);
      }
    }
    if (node.SerializedSize() > options_.node_size_bytes) {
      // The arrays do not fit this page: keep the node in the historical
      // layout. Its entries contribute no witness bounds.
      if (node.is_leaf) {
        for (auto& e : node.leaf_entries) e.ancestor_distances.clear();
      } else {
        for (auto& e : node.routing_entries) e.ancestor_distances.clear();
      }
    }
    store_->Write(id, node);
    if (!node.is_leaf) {
      for (const auto& e : node.routing_entries) {
        path->push_back(&e.object);
        InstallCascadeRecurse(e.child, path);
        path->pop_back();
      }
    }
  }

  void NotifyModified() const {
    if (post_modify_hook_) {
      post_modify_hook_(*this);
    }
  }

  void ComplexRecurse(NodeId id, const std::vector<Predicate>& predicates,
                      Combine combine, uint32_t level, QueryStats* st,
                      std::vector<Result>* out) const {
    // Full (unbounded) distances throughout: the reported combined distance
    // is max/min over predicates, so every predicate's exact value matters.
    const auto node = store_->ReadShared(id, st);
    ++st->nodes_accessed;
    const bool conjunctive = combine == Combine::kAnd;
    if (node->is_leaf) {
      for (const auto& e : node->leaf_entries) {
        bool all = true, any = false;
        double combined = conjunctive ? 0.0
                                      : std::numeric_limits<double>::max();
        for (const auto& p : predicates) {
          const double d = Dist(p.query, e.object, st);
          const bool hit = d <= p.radius;
          all = all && hit;
          any = any || hit;
          combined = conjunctive ? std::max(combined, d)
                                 : std::min(combined, d);
        }
        if (conjunctive ? all : any) {
          out->push_back({e.oid, e.object, combined});
        }
      }
      if (st->trace != nullptr) {
        const auto scanned =
            static_cast<uint32_t>(node->leaf_entries.size());
        st->trace->RecordVisit(
            id, level, scanned, 0,
            scanned * static_cast<uint32_t>(predicates.size()));
      }
      return;
    }
    uint32_t scanned = 0;
    for (const auto& e : node->routing_entries) {
      bool all = true, any = false;
      for (const auto& p : predicates) {
        const double d = Dist(p.query, e.object, st);
        const bool overlap = d <= e.covering_radius + p.radius;
        all = all && overlap;
        any = any || overlap;
      }
      ++scanned;
      if (conjunctive ? all : any) {
        ComplexRecurse(e.child, predicates, combine, level + 1, st, out);
      } else {
        ++st->nodes_pruned;
        if (st->trace != nullptr) {
          st->trace->RecordPrune(e.child, level + 1,
                                 PruneReason::kCoveringRadius);
        }
      }
    }
    if (st->trace != nullptr) {
      st->trace->RecordVisit(
          id, level, scanned, 0,
          scanned * static_cast<uint32_t>(predicates.size()));
    }
  }

  /// Removes (object, oid) from the subtree at `id`; prunes emptied
  /// children on the way back up. Returns true when the entry was found.
  bool DeleteRecurse(NodeId id, const Object& object, uint64_t oid) {
    Node node = store_->Read(id);
    if (node.is_leaf) {
      for (auto it = node.leaf_entries.begin(); it != node.leaf_entries.end();
           ++it) {
        if (it->oid == oid && metric_(it->object, object) == 0.0) {
          node.leaf_entries.erase(it);
          store_->Write(id, node);
          return true;
        }
      }
      return false;
    }
    for (auto it = node.routing_entries.begin();
         it != node.routing_entries.end(); ++it) {
      // The entry can only live in subtrees whose ball covers the object.
      if (metric_(it->object, object) > it->covering_radius) {
        continue;
      }
      if (!DeleteRecurse(it->child, object, oid)) {
        continue;
      }
      const Node child = store_->Read(it->child);
      if (child.NumEntries() == 0) {
        store_->Free(it->child);
        node.routing_entries.erase(it);
        store_->Write(id, node);
      }
      return true;
    }
    return false;
  }

  /// Shrinks the root after deletions: a single-child internal root is
  /// replaced by its child; an emptied root leaves the tree empty.
  void CollapseRoot() {
    while (root_ != kInvalidNodeId) {
      const Node root_node = store_->Read(root_);
      if (root_node.is_leaf) {
        if (root_node.leaf_entries.empty()) {
          store_->Free(root_);
          root_ = kInvalidNodeId;
          height_ = 0;
        }
        return;
      }
      if (root_node.routing_entries.size() != 1) {
        return;
      }
      const NodeId old_root = root_;
      root_ = root_node.routing_entries.front().child;
      store_->Free(old_root);
      --height_;
      // The new root's entries keep stale parent distances; they are never
      // consulted at the root (search passes "no parent" there).
    }
  }

  /// The M-tree's node reference on the shared best-first frontier: the
  /// node id plus d(Q, parent routing object) — NaN at the root — which
  /// feeds the stored-parent-distance filter in optimized pruning mode.
  struct TraversalHandle {
    NodeId node = kInvalidNodeId;
    double parent_query_distance = std::numeric_limits<double>::quiet_NaN();
  };

  /// Shared range/k-NN traversal over the engine driver. The collector
  /// supplies the pruning bound (fixed radius or shrinking r_k);
  /// `cut_reason` labels subtrees eliminated by the ball test
  /// d_min(Q, N) > bound (kCoveringRadius for range, kKnnBound for k-NN,
  /// matching the paper's two pruning lemmas).
  template <typename Collector>
  void Traverse(const Object& query, Collector& collector, QueryStats* st,
                PruneReason cut_reason) const {
    const bool optimized = options_.pruning == PruningMode::kOptimized;
    // Witness bounds engage only while the stored ancestor distances are
    // valid; capacity 0 makes every guarded call collapse to the plain
    // bounded evaluation, bit-identical to the pre-witness search.
    const int wcap = cascade_installed_ ? witness_capacity_ : 0;
    engine::BestFirstSearch<TraversalHandle>(
        TraversalHandle{root_, std::numeric_limits<double>::quiet_NaN()},
        /*root_trace_id=*/root_, collector, st,
        [&](const engine::FrontierEntry<TraversalHandle>& item,
            auto& frontier) {
          const auto node = store_->ReadShared(item.handle.node, st);
          ++st->nodes_accessed;
          const double pqd = item.handle.parent_query_distance;
          const bool can_prune = optimized && !std::isnan(pqd);
          uint32_t scanned = 0;
          uint32_t wavoided = 0;
          if (node->is_leaf) {
            {
              // One distance-eval span per node, not per entry: the clock
              // is read twice per accessed node, keeping obs-on overhead
              // proportional to I/O cost rather than CPU cost.
              ScopedSpan dist_span(st, QueryPhase::kDistanceEval);
              for (const auto& e : node->leaf_entries) {
                if (can_prune && std::fabs(pqd - e.parent_distance) >
                                     collector.Bound()) {
                  continue;
                }
                // Witness link `ref` is the 0-based depth of the witness
                // routing object: the parent (depth level-2) is served
                // from the stored parent distance, everything above it
                // from the entry's ancestor-distance array.
                auto stored = [&](uint64_t ref) {
                  if (item.level >= 2 && ref == item.level - 2) {
                    return engine::WitnessInterval::Point(e.parent_distance);
                  }
                  if (ref < e.ancestor_distances.size()) {
                    return engine::WitnessInterval::Point(
                        e.ancestor_distances[ref]);
                  }
                  return engine::WitnessInterval::Unknown();
                };
                // Early exit past the collector bound: an aborted (or
                // witness-avoided) evaluation returns +inf, which Offer
                // rejects exactly as it would the true distance.
                const uint64_t avoided_before =
                    st->distance_calcs_avoided_by_witness;
                const double d = engine::GuardedDistanceWithin(
                    item.witness, wcap, stored, metric_, query, e.object,
                    collector.Bound(), st);
                if (st->distance_calcs_avoided_by_witness !=
                    avoided_before) {
                  ++wavoided;
                  continue;
                }
                ++scanned;
                collector.Offer(e.oid, e.object, d);
              }
            }
            if (st->trace != nullptr) {
              st->trace->RecordVisit(
                  item.handle.node, item.level, scanned,
                  static_cast<uint32_t>(node->leaf_entries.size()) - scanned -
                      wavoided,
                  scanned, wavoided);
            }
            return;
          }
          // Children that survive the ball test, in entry order — the
          // readahead hint below. With bulk-loaded sequential layout these
          // are contiguous page runs.
          std::vector<NodeId> survivors;
          {
            ScopedSpan dist_span(st, QueryPhase::kDistanceEval);
            for (const auto& e : node->routing_entries) {
              if (can_prune && std::fabs(pqd - e.parent_distance) -
                                       e.covering_radius >
                                   collector.Bound()) {
                ++st->nodes_pruned;
                if (st->trace != nullptr) {
                  st->trace->RecordPrune(e.child, item.level + 1,
                                         PruneReason::kParentFilter);
                }
                continue;
              }
              auto stored = [&](uint64_t ref) {
                if (item.level >= 2 && ref == item.level - 2) {
                  return engine::WitnessInterval::Point(e.parent_distance);
                }
                if (ref < e.ancestor_distances.size()) {
                  return engine::WitnessInterval::Point(
                      e.ancestor_distances[ref]);
                }
                return engine::WitnessInterval::Unknown();
              };
              // A routing distance only matters when the child survives,
              // i.e. when dmin = d - r <= Bound(); beyond Bound() + r the
              // child is pruned either way, so the early exit changes
              // nothing — an aborted d gives dmin = +inf, pruned like its
              // exact value. A witness-avoided evaluation proves the same
              // inequality from stored distances alone, cutting the child
              // without touching the metric.
              const uint64_t avoided_before =
                  st->distance_calcs_avoided_by_witness;
              const double d = engine::GuardedDistanceWithin(
                  item.witness, wcap, stored, metric_, query, e.object,
                  collector.Bound() + e.covering_radius, st);
              if (st->distance_calcs_avoided_by_witness != avoided_before) {
                ++wavoided;
                ++st->nodes_pruned;
                if (st->trace != nullptr) {
                  st->trace->RecordPrune(e.child, item.level + 1,
                                         PruneReason::kWitness);
                }
                continue;
              }
              ++scanned;
              const double dmin = std::max(d - e.covering_radius, 0.0);
              if (dmin <= collector.Bound()) {
                survivors.push_back(e.child);
              }
              frontier.PushOrPrune(
                  dmin, item.level + 1, e.child, TraversalHandle{e.child, d},
                  cut_reason,
                  wcap > 0 ? item.witness.Extend(item.level - 1, d)
                           : engine::WitnessChain{});
            }
          }
          // Readahead: the surviving children will all be expanded (range
          // search) or considered in best-first order (k-NN); hint the
          // store so contiguous runs become one sequential read. Purely
          // physical — answers and logical counters never depend on it.
          store_->Prefetch(survivors.data(), survivors.size(), st);
          if (st->trace != nullptr) {
            st->trace->RecordVisit(
                item.handle.node, item.level, scanned,
                static_cast<uint32_t>(node->routing_entries.size()) -
                    scanned - wavoided,
                scanned, wavoided);
          }
        });
  }

  /// Inserts below `node_id` (whose routing object is `parent_object`, null
  /// at the root). Returns the two replacement entries when the node split.
  std::optional<SplitInfo> InsertRecursive(NodeId node_id,
                                           const Object* parent_object,
                                           const Object& object,
                                           uint64_t oid) {
    Node node = store_->Read(node_id);
    if (node.is_leaf) {
      LeafEntry<Object> entry;
      entry.object = object;
      entry.oid = oid;
      entry.parent_distance =
          parent_object ? metric_(*parent_object, object) : 0.0;
      node.leaf_entries.push_back(std::move(entry));
      if (node.SerializedSize() > options_.node_size_bytes &&
          node.NumEntries() >= 2) {
        return SplitNode(node_id, std::move(node));
      }
      store_->Write(node_id, node);
      return std::nullopt;
    }

    // Choose the subtree: prefer entries that need no radius enlargement
    // (min distance); otherwise min enlargement.
    size_t best = 0;
    double best_distance = std::numeric_limits<double>::infinity();
    bool best_contained = false;
    double best_enlargement = std::numeric_limits<double>::infinity();
    std::vector<double> distances(node.routing_entries.size());
    for (size_t i = 0; i < node.routing_entries.size(); ++i) {
      const auto& e = node.routing_entries[i];
      const double d = metric_(e.object, object);
      distances[i] = d;
      const bool contained = d <= e.covering_radius;
      if (contained) {
        if (!best_contained || d < best_distance) {
          best = i;
          best_distance = d;
          best_contained = true;
        }
      } else if (!best_contained) {
        const double enlargement = d - e.covering_radius;
        if (enlargement < best_enlargement) {
          best = i;
          best_enlargement = enlargement;
          best_distance = d;
        }
      }
    }
    auto& chosen = node.routing_entries[best];
    if (distances[best] > chosen.covering_radius) {
      chosen.covering_radius = distances[best];
    }
    auto child_split =
        InsertRecursive(chosen.child, &chosen.object, object, oid);
    if (!child_split.has_value()) {
      store_->Write(node_id, node);
      return std::nullopt;
    }

    // The child split: replace its entry with the two new ones.
    child_split->first.parent_distance =
        parent_object ? metric_(*parent_object, child_split->first.object)
                      : 0.0;
    child_split->second.parent_distance =
        parent_object ? metric_(*parent_object, child_split->second.object)
                      : 0.0;
    node.routing_entries.erase(node.routing_entries.begin() +
                               static_cast<ptrdiff_t>(best));
    node.routing_entries.push_back(std::move(child_split->first));
    node.routing_entries.push_back(std::move(child_split->second));
    if (node.SerializedSize() > options_.node_size_bytes &&
        node.NumEntries() >= 2) {
      return SplitNode(node_id, std::move(node));
    }
    store_->Write(node_id, node);
    return std::nullopt;
  }

  /// Splits `node` (which overflowed); the first half stays at `node_id`,
  /// the second goes to a fresh node. Returns the two parent entries.
  SplitInfo SplitNode(NodeId node_id, Node node) {
    std::vector<const Object*> objects;
    std::vector<double> radii;
    const size_t count = node.NumEntries();
    objects.reserve(count);
    radii.reserve(count);
    if (node.is_leaf) {
      for (const auto& e : node.leaf_entries) {
        objects.push_back(&e.object);
        radii.push_back(0.0);
      }
    } else {
      for (const auto& e : node.routing_entries) {
        objects.push_back(&e.object);
        radii.push_back(e.covering_radius);
      }
    }
    NodeSplitter<Object, Metric> splitter(objects, radii, metric_);
    const SplitOutcome outcome =
        splitter.Split(options_.promote_policy, options_.partition_policy,
                       options_.promote_samples, rng_);

    Node first, second;
    first.is_leaf = second.is_leaf = node.is_leaf;
    auto fill = [&](Node* dst, const std::vector<size_t>& group,
                    const std::vector<double>& dist_to_center) {
      for (size_t g = 0; g < group.size(); ++g) {
        const size_t i = group[g];
        if (node.is_leaf) {
          LeafEntry<Object> e = node.leaf_entries[i];
          e.parent_distance = dist_to_center[g];
          dst->leaf_entries.push_back(std::move(e));
        } else {
          RoutingEntry<Object> e = node.routing_entries[i];
          e.parent_distance = dist_to_center[g];
          dst->routing_entries.push_back(std::move(e));
        }
      }
    };
    fill(&first, outcome.first_group, outcome.first_distances);
    fill(&second, outcome.second_group, outcome.second_distances);

    const NodeId second_id = store_->Allocate();
    store_->Write(node_id, first);
    store_->Write(second_id, second);

    SplitInfo info;
    info.first.object = *objects[outcome.promoted_first];
    info.first.covering_radius = outcome.first_radius;
    info.first.child = node_id;
    info.second.object = *objects[outcome.promoted_second];
    info.second.covering_radius = outcome.second_radius;
    info.second.child = second_id;
    return info;
  }

  Metric metric_;
  MTreeOptions options_;
  mutable std::unique_ptr<NodeStore<Traits>> store_;
  NodeId root_ = kInvalidNodeId;
  size_t num_objects_ = 0;
  uint32_t height_ = 0;
  int witness_capacity_ = 0;
  bool cascade_installed_ = false;
  std::function<void(const MTree&)> post_modify_hook_;
  RandomEngine rng_;
};

}  // namespace mcm

#endif  // MCM_MTREE_MTREE_H_
