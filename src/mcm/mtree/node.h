// M-tree node and entry layouts (Section 1.1 of the paper):
//   leaf entry:     [O_i, oid(O_i)]           plus the stored d(O_i, O_parent)
//   routing entry:  [O_r, r(N_r), ptr(N_r)]   plus the stored d(O_r, O_parent)
// Nodes serialize into fixed-size pages; SerializedSize() is the overflow
// test used by insertion, splitting and bulk loading.
//
// Witness-cascade extension (Symmetric-M-tree-style): each entry may
// additionally store its exact distances to the routing objects *above*
// its parent (ancestor_distances[i] = d(entry object, routing object at
// 0-based tree depth i)). The engine's witness bounds consult these to
// skip metric evaluations. Serialization is versioned by the header tag
// byte — 0/1 is the historical layout without the arrays, 2/3 carries a
// per-entry count + doubles — so index files written before the extension
// still load, and nodes whose entries all have empty arrays keep writing
// the historical bytes (bit-identical on-disk format).

#ifndef MCM_MTREE_NODE_H_
#define MCM_MTREE_NODE_H_

#include <cstdint>
#include <vector>

#include "mcm/metric/bytes.h"

namespace mcm {

/// Identifier of an M-tree node within its NodeStore.
using NodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNodeId = static_cast<NodeId>(-1);

/// Entry of a leaf node: an indexed object with its external identifier and
/// its distance to the parent routing object (used by the optimized search
/// to avoid distance computations).
template <typename Object>
struct LeafEntry {
  Object object;
  uint64_t oid = 0;
  double parent_distance = 0.0;

  /// Witness cascade: d(object, ancestor routing object at depth i) for
  /// the ancestors strictly above the parent (index i = 0-based depth,
  /// root node = depth 0). Empty when the cascade is not installed; may be
  /// shorter than the full ancestor path (missing tail = unknown).
  std::vector<double> ancestor_distances;
};

/// Entry of an internal node: a routing object with its covering radius and
/// a pointer to the child it covers.
template <typename Object>
struct RoutingEntry {
  Object object;
  double covering_radius = 0.0;
  double parent_distance = 0.0;
  NodeId child = kInvalidNodeId;

  /// Witness cascade: distances to the ancestors strictly above the
  /// parent, indexed by 0-based depth (see LeafEntry::ancestor_distances).
  std::vector<double> ancestor_distances;
};

/// An M-tree node: either a leaf (LeafEntry list) or internal
/// (RoutingEntry list).
template <typename Traits>
struct MTreeNode {
  using Object = typename Traits::Object;

  bool is_leaf = true;
  std::vector<LeafEntry<Object>> leaf_entries;
  std::vector<RoutingEntry<Object>> routing_entries;

  size_t NumEntries() const {
    return is_leaf ? leaf_entries.size() : routing_entries.size();
  }

  /// Serialized byte footprint of one leaf entry.
  static size_t LeafEntrySize(const Object& object) {
    return Traits::SerializedSize(object) + sizeof(uint64_t) + sizeof(double);
  }

  /// Serialized byte footprint of one routing entry.
  static size_t RoutingEntrySize(const Object& object) {
    return Traits::SerializedSize(object) + 2 * sizeof(double) +
           sizeof(NodeId);
  }

  /// Fixed node header: format tag (leaf flag + layout version) + entry
  /// count.
  static size_t HeaderSize() { return sizeof(uint8_t) + sizeof(uint32_t); }

  /// True when any entry carries witness-cascade ancestor distances —
  /// i.e. when this node serializes in the versioned (tag 2/3) layout.
  bool HasAncestorDistances() const {
    if (is_leaf) {
      for (const auto& e : leaf_entries) {
        if (!e.ancestor_distances.empty()) return true;
      }
    } else {
      for (const auto& e : routing_entries) {
        if (!e.ancestor_distances.empty()) return true;
      }
    }
    return false;
  }

  /// Total bytes this node occupies when serialized into a page.
  size_t SerializedSize() const {
    size_t size = HeaderSize();
    const bool versioned = HasAncestorDistances();
    if (is_leaf) {
      for (const auto& e : leaf_entries) {
        size += LeafEntrySize(e.object);
        if (versioned) {
          size += sizeof(uint32_t) +
                  e.ancestor_distances.size() * sizeof(double);
        }
      }
    } else {
      for (const auto& e : routing_entries) {
        size += RoutingEntrySize(e.object);
        if (versioned) {
          size += sizeof(uint32_t) +
                  e.ancestor_distances.size() * sizeof(double);
        }
      }
    }
    return size;
  }

  /// Serializes into `out` (appended). Tag byte: 0 = internal, 1 = leaf
  /// (historical layout, no ancestor arrays); 2 = internal, 3 = leaf with
  /// a per-entry ancestor-distance block appended to each entry.
  void Serialize(std::vector<uint8_t>* out) const {
    ByteWriter w(out);
    const bool versioned = HasAncestorDistances();
    w.Put<uint8_t>(static_cast<uint8_t>((is_leaf ? 1 : 0) |
                                        (versioned ? 2 : 0)));
    auto put_ancestors = [&](const std::vector<double>& distances) {
      if (!versioned) return;
      w.Put<uint32_t>(static_cast<uint32_t>(distances.size()));
      for (double d : distances) w.Put<double>(d);
    };
    if (is_leaf) {
      w.Put<uint32_t>(static_cast<uint32_t>(leaf_entries.size()));
      for (const auto& e : leaf_entries) {
        Traits::Serialize(e.object, w);
        w.Put<uint64_t>(e.oid);
        w.Put<double>(e.parent_distance);
        put_ancestors(e.ancestor_distances);
      }
    } else {
      w.Put<uint32_t>(static_cast<uint32_t>(routing_entries.size()));
      for (const auto& e : routing_entries) {
        Traits::Serialize(e.object, w);
        w.Put<double>(e.covering_radius);
        w.Put<double>(e.parent_distance);
        w.Put<NodeId>(e.child);
        put_ancestors(e.ancestor_distances);
      }
    }
  }

  /// Parses a node from `data` (as produced by Serialize, either layout).
  static MTreeNode Deserialize(const uint8_t* data, size_t size) {
    ByteReader r(data, size);
    MTreeNode node;
    const uint8_t tag = r.Get<uint8_t>();
    node.is_leaf = (tag & 1) != 0;
    const bool versioned = (tag & 2) != 0;
    const uint32_t count = r.Get<uint32_t>();
    auto get_ancestors = [&](std::vector<double>* distances) {
      if (!versioned) return;
      const uint32_t n = r.Get<uint32_t>();
      distances->reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        distances->push_back(r.Get<double>());
      }
    };
    if (node.is_leaf) {
      node.leaf_entries.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        LeafEntry<Object> e;
        e.object = Traits::Deserialize(r);
        e.oid = r.Get<uint64_t>();
        e.parent_distance = r.Get<double>();
        get_ancestors(&e.ancestor_distances);
        node.leaf_entries.push_back(std::move(e));
      }
    } else {
      node.routing_entries.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        RoutingEntry<Object> e;
        e.object = Traits::Deserialize(r);
        e.covering_radius = r.Get<double>();
        e.parent_distance = r.Get<double>();
        e.child = r.Get<NodeId>();
        get_ancestors(&e.ancestor_distances);
        node.routing_entries.push_back(std::move(e));
      }
    }
    return node;
  }
};

}  // namespace mcm

#endif  // MCM_MTREE_NODE_H_
