// Node storage backends for the M-tree.
//
// MemoryNodeStore keeps nodes as C++ objects; PagedNodeStore serializes each
// node into one fixed-size page of a PageFile behind an LRU BufferPool, so
// the index is genuinely disk-representable. Both count *logical* node
// accesses identically — that count is the paper's I/O cost — and tests
// assert the two backends produce byte-identical query answers and access
// counts.

#ifndef MCM_MTREE_NODE_STORE_H_
#define MCM_MTREE_NODE_STORE_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "mcm/common/env.h"
#include "mcm/common/query_stats.h"
#include "mcm/mtree/node.h"
#include "mcm/obs/metrics.h"
#include "mcm/obs/phase.h"
#include "mcm/obs/trace.h"
#include "mcm/storage/buffer_pool.h"
#include "mcm/storage/decoded_cache.h"
#include "mcm/storage/io_stats.h"
#include "mcm/storage/page_file.h"

namespace mcm {

/// Abstract store of M-tree nodes addressed by NodeId.
template <typename Traits>
class NodeStore {
 public:
  using Node = MTreeNode<Traits>;

  virtual ~NodeStore() = default;

  /// Creates an empty node and returns its id.
  virtual NodeId Allocate() = 0;

  /// Releases a node (after a merge or root collapse).
  virtual void Free(NodeId id) = 0;

  /// Reads node `id`. Counts one logical access.
  virtual Node Read(NodeId id) = 0;

  /// Reads node `id` on behalf of a query, attributing storage-layer
  /// effects (buffer-pool hit/miss, trace events) to `st`. The base
  /// implementation just forwards to Read(): memory-resident stores have
  /// no buffering to report.
  virtual Node ReadTracked(NodeId id, QueryStats* st) {
    (void)st;
    return Read(id);
  }

  /// Reads node `id` as a shared immutable object — the query-path variant
  /// of ReadTracked: stores that keep (or cache) decoded nodes hand out a
  /// shared reference instead of copying the node. Counts one logical
  /// access, exactly like ReadTracked.
  virtual std::shared_ptr<const Node> ReadShared(NodeId id, QueryStats* st) {
    return std::make_shared<const Node>(this->ReadTracked(id, st));
  }

  /// Readahead hint: the traversal is about to visit the `count` nodes in
  /// `ids` (the children of a routing node that survived pruning). Stores
  /// may pull contiguous page runs into their buffer ahead of demand; the
  /// hint must never change query answers or logical access counts — only
  /// the physical read pattern and the buffer hit/miss split. The base
  /// implementation (memory-resident stores) ignores it.
  virtual void Prefetch(const NodeId* ids, size_t count, QueryStats* st) {
    (void)ids;
    (void)count;
    (void)st;
  }

  /// Overwrites node `id`. Does not count as a query access (writes happen
  /// during construction/maintenance, not similarity search).
  virtual void Write(NodeId id, const Node& node) = 0;

  /// Number of live (allocated and not freed) nodes.
  virtual size_t NumNodes() const = 0;

  /// Logical accesses since the last ResetAccessCount(). The counter is a
  /// relaxed atomic so concurrent readers (the batch executor) can share
  /// one store; the total is exact regardless of schedule.
  uint64_t access_count() const {
    return access_count_.load(std::memory_order_relaxed);
  }
  void ResetAccessCount() {
    access_count_.store(0, std::memory_order_relaxed);
  }

 protected:
  void CountAccess() { access_count_.fetch_add(1, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> access_count_{0};
};

/// Heap-resident node store. Nodes live behind shared_ptrs so the query
/// path (ReadShared) hands out references instead of copying; Write
/// replaces the pointer (copy-on-write), so concurrent readers holding the
/// old object keep a consistent snapshot.
template <typename Traits>
class MemoryNodeStore final : public NodeStore<Traits> {
 public:
  using Node = MTreeNode<Traits>;

  NodeId Allocate() override {
    if (!free_.empty()) {
      const NodeId id = free_.back();
      free_.pop_back();
      nodes_[id] = std::make_shared<const Node>();
      live_[id] = true;
      return id;
    }
    nodes_.push_back(std::make_shared<const Node>());
    live_.push_back(true);
    return static_cast<NodeId>(nodes_.size() - 1);
  }

  void Free(NodeId id) override {
    Check(id);
    live_[id] = false;
    nodes_[id] = nullptr;
    free_.push_back(id);
  }

  Node Read(NodeId id) override {
    Check(id);
    this->CountAccess();
    return *nodes_[id];
  }

  std::shared_ptr<const Node> ReadShared(NodeId id,
                                         QueryStats* st) override {
    (void)st;
    Check(id);
    this->CountAccess();
    return nodes_[id];
  }

  void Write(NodeId id, const Node& node) override {
    Check(id);
    nodes_[id] = std::make_shared<const Node>(node);
  }

  size_t NumNodes() const override { return nodes_.size() - free_.size(); }

 private:
  void Check(NodeId id) const {
    if (id >= nodes_.size() || !live_[id]) {
      throw std::out_of_range("MemoryNodeStore: bad node id");
    }
  }

  std::vector<std::shared_ptr<const Node>> nodes_;
  std::vector<bool> live_;
  std::vector<NodeId> free_;
};

/// Page-backed node store: one node per page, LRU-buffered, with an
/// optional decoded-node cache above the pool (storage/decoded_cache.h).
/// The cache defaults to the MCM_NODE_CACHE environment knob (entries; 0 =
/// off, the default, so buffer-pool hit/miss/eviction behavior is exactly
/// the uncached store's unless a caller opts in).
template <typename Traits>
class PagedNodeStore final : public NodeStore<Traits> {
 public:
  using Node = MTreeNode<Traits>;

  /// Creates a store over `file` (owned) with `pool_frames` buffer frames,
  /// `cache_entries` decoded-node slots (-1 = read MCM_NODE_CACHE), and a
  /// readahead window of `readahead` pages per prefetch run (-1 = read
  /// MCM_READAHEAD; 0, the default, disables readahead).
  PagedNodeStore(std::unique_ptr<PageFile> file, size_t pool_frames,
                 int64_t cache_entries = -1, int64_t readahead = -1)
      : file_(std::move(file)),
        pool_(file_.get(), pool_frames),
        cache_(ResolveCacheEntries(cache_entries)),
        readahead_(ResolveReadahead(readahead)) {}

  NodeId Allocate() override {
    PageGuard guard = pool_.NewPage();
    guard.MarkDirty();
    ++num_nodes_;
    // A freshly allocated page is all zeroes, which deserializes as an empty
    // leaf only if we write a valid header; do that now.
    Node empty;
    StoreInto(guard, empty);
    return static_cast<NodeId>(guard.id());
  }

  void Free(NodeId id) override {
    if (cache_.enabled()) cache_.Invalidate(id);
    file_->Free(static_cast<PageId>(id));
    --num_nodes_;
  }

  Node Read(NodeId id) override {
    this->CountAccess();
    PageGuard guard = pool_.Fetch(static_cast<PageId>(id));
    return Node::Deserialize(guard.data(), file_->page_size());
  }

  Node ReadTracked(NodeId id, QueryStats* st) override {
    this->CountAccess();
    return DecodeTracked(id, st);
  }

  std::shared_ptr<const Node> ReadShared(NodeId id,
                                         QueryStats* st) override {
    this->CountAccess();
    if (cache_.enabled()) {
      if (auto cached = cache_.Lookup(id)) {
        // The decoded object was in memory: attribute a buffered (non-I/O)
        // fetch, same as a pool hit, so per-query accounting still sees one
        // fetch per node visit.
        ++st->buffer_hits;
        if (st->trace != nullptr) st->trace->RecordBufferFetch(id, true);
        if (ObsEnabled()) {
          MetricsRegistry::Global().GetCounter("node_cache.hits").Increment();
        }
        return cached;
      }
      if (ObsEnabled()) {
        MetricsRegistry::Global().GetCounter("node_cache.misses").Increment();
      }
      // Capture the version before touching the page bytes: if a writer
      // invalidates while we decode, Insert drops our (possibly stale)
      // object instead of publishing it.
      const uint64_t version = cache_.Version(id);
      auto decoded = std::make_shared<const Node>(DecodeTracked(id, st));
      cache_.Insert(id, version, decoded);
      return decoded;
    }
    return std::make_shared<const Node>(DecodeTracked(id, st));
  }

  /// Pulls contiguous runs of the hinted nodes into the buffer pool with
  /// batched sequential reads. Only ascending runs of length >= 2 are worth
  /// a batched read (a single page costs the same either way and would just
  /// bypass demand-fetch accounting), and each run is capped at the
  /// readahead window. No-op unless readahead is enabled.
  void Prefetch(const NodeId* ids, size_t count, QueryStats* st) override {
    if (readahead_ == 0 || count < 2) {
      return;
    }
    ScopedSpan span(st, QueryPhase::kPrefetch);
    size_t i = 0;
    while (i < count) {
      size_t j = i + 1;
      while (j < count && ids[j] == ids[j - 1] + 1 &&
             j - i < readahead_) {
        ++j;
      }
      if (j - i >= 2) {
        pool_.Prefetch(static_cast<PageId>(ids[i]), j - i);
      }
      i = j;
    }
  }

  void Write(NodeId id, const Node& node) override {
    if (cache_.enabled()) cache_.Invalidate(id);
    PageGuard guard = pool_.Fetch(static_cast<PageId>(id));
    StoreInto(guard, node);
  }

  size_t NumNodes() const override { return num_nodes_; }

  /// Restores the live-node count after reopening a saved page file
  /// (see mtree/persist.h).
  void RestoreNodeCount(size_t count) { num_nodes_ = count; }

  /// Writes all dirty pages back to the page file.
  void Flush() { pool_.FlushAll(); }

  BufferPool& pool() { return pool_; }
  PageFile& file() { return *file_; }

  /// The decoded-node cache (disabled unless MCM_NODE_CACHE or the ctor
  /// argument asked for capacity).
  DecodedNodeCache<Node>& node_cache() { return cache_; }

 private:
  static size_t ResolveCacheEntries(int64_t cache_entries) {
    if (cache_entries < 0) {
      cache_entries = GetEnvInt("MCM_NODE_CACHE", 0);
    }
    return cache_entries > 0 ? static_cast<size_t>(cache_entries) : 0;
  }

  static size_t ResolveReadahead(int64_t readahead) {
    if (readahead < 0) {
      readahead = GetEnvInt("MCM_READAHEAD", 0);
    }
    return readahead > 0 ? static_cast<size_t>(readahead) : 0;
  }

  /// Pool fetch + per-query attribution + decode, without the logical
  /// access count (the caller already counted).
  Node DecodeTracked(NodeId id, QueryStats* st) {
    bool hit = false;
    PageGuard guard = [&] {
      ScopedSpan page_span(st, QueryPhase::kPageRead);
      return pool_.Fetch(static_cast<PageId>(id), &hit);
    }();
    if (hit) {
      ++st->buffer_hits;
    } else {
      ++st->buffer_misses;
    }
    if (st->trace != nullptr) {
      st->trace->RecordBufferFetch(id, hit);
    }
    ScopedSpan decode_span(st, QueryPhase::kDecode);
    return Node::Deserialize(guard.data(), file_->page_size());
  }
  // Write path only (construction and maintenance are single-writer; the
  // concurrent batch executor goes through ReadTracked/Read exclusively),
  // so the shared scratch buffer needs no lock.
  void StoreInto(PageGuard& guard, const Node& node) {
    scratch_.clear();
    node.Serialize(&scratch_);
    if (scratch_.size() > file_->page_size()) {
      throw std::runtime_error("PagedNodeStore: node exceeds page size");
    }
    scratch_.resize(file_->page_size(), 0);
    std::memcpy(guard.data(), scratch_.data(), scratch_.size());
    guard.MarkDirty();
  }

  std::unique_ptr<PageFile> file_;
  BufferPool pool_;
  DecodedNodeCache<Node> cache_;
  size_t readahead_;  ///< Max pages per prefetch run; 0 = readahead off.
  std::vector<uint8_t> scratch_;
  size_t num_nodes_ = 0;
};

}  // namespace mcm

#endif  // MCM_MTREE_NODE_STORE_H_
