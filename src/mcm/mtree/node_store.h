// Node storage backends for the M-tree.
//
// MemoryNodeStore keeps nodes as C++ objects; PagedNodeStore serializes each
// node into one fixed-size page of a PageFile behind an LRU BufferPool, so
// the index is genuinely disk-representable. Both count *logical* node
// accesses identically — that count is the paper's I/O cost — and tests
// assert the two backends produce byte-identical query answers and access
// counts.

#ifndef MCM_MTREE_NODE_STORE_H_
#define MCM_MTREE_NODE_STORE_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "mcm/common/query_stats.h"
#include "mcm/mtree/node.h"
#include "mcm/obs/trace.h"
#include "mcm/storage/buffer_pool.h"
#include "mcm/storage/io_stats.h"
#include "mcm/storage/page_file.h"

namespace mcm {

/// Abstract store of M-tree nodes addressed by NodeId.
template <typename Traits>
class NodeStore {
 public:
  using Node = MTreeNode<Traits>;

  virtual ~NodeStore() = default;

  /// Creates an empty node and returns its id.
  virtual NodeId Allocate() = 0;

  /// Releases a node (after a merge or root collapse).
  virtual void Free(NodeId id) = 0;

  /// Reads node `id`. Counts one logical access.
  virtual Node Read(NodeId id) = 0;

  /// Reads node `id` on behalf of a query, attributing storage-layer
  /// effects (buffer-pool hit/miss, trace events) to `st`. The base
  /// implementation just forwards to Read(): memory-resident stores have
  /// no buffering to report.
  virtual Node ReadTracked(NodeId id, QueryStats* st) {
    (void)st;
    return Read(id);
  }

  /// Overwrites node `id`. Does not count as a query access (writes happen
  /// during construction/maintenance, not similarity search).
  virtual void Write(NodeId id, const Node& node) = 0;

  /// Number of live (allocated and not freed) nodes.
  virtual size_t NumNodes() const = 0;

  /// Logical accesses since the last ResetAccessCount(). The counter is a
  /// relaxed atomic so concurrent readers (the batch executor) can share
  /// one store; the total is exact regardless of schedule.
  uint64_t access_count() const {
    return access_count_.load(std::memory_order_relaxed);
  }
  void ResetAccessCount() {
    access_count_.store(0, std::memory_order_relaxed);
  }

 protected:
  void CountAccess() { access_count_.fetch_add(1, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> access_count_{0};
};

/// Heap-resident node store.
template <typename Traits>
class MemoryNodeStore final : public NodeStore<Traits> {
 public:
  using Node = MTreeNode<Traits>;

  NodeId Allocate() override {
    if (!free_.empty()) {
      const NodeId id = free_.back();
      free_.pop_back();
      nodes_[id] = Node();
      live_[id] = true;
      return id;
    }
    nodes_.emplace_back();
    live_.push_back(true);
    return static_cast<NodeId>(nodes_.size() - 1);
  }

  void Free(NodeId id) override {
    Check(id);
    live_[id] = false;
    free_.push_back(id);
  }

  Node Read(NodeId id) override {
    Check(id);
    this->CountAccess();
    return nodes_[id];
  }

  void Write(NodeId id, const Node& node) override {
    Check(id);
    nodes_[id] = node;
  }

  size_t NumNodes() const override { return nodes_.size() - free_.size(); }

 private:
  void Check(NodeId id) const {
    if (id >= nodes_.size() || !live_[id]) {
      throw std::out_of_range("MemoryNodeStore: bad node id");
    }
  }

  std::vector<Node> nodes_;
  std::vector<bool> live_;
  std::vector<NodeId> free_;
};

/// Page-backed node store: one node per page, LRU-buffered.
template <typename Traits>
class PagedNodeStore final : public NodeStore<Traits> {
 public:
  using Node = MTreeNode<Traits>;

  /// Creates a store over `file` (owned) with `pool_frames` buffer frames.
  PagedNodeStore(std::unique_ptr<PageFile> file, size_t pool_frames)
      : file_(std::move(file)), pool_(file_.get(), pool_frames) {}

  NodeId Allocate() override {
    PageGuard guard = pool_.NewPage();
    guard.MarkDirty();
    ++num_nodes_;
    // A freshly allocated page is all zeroes, which deserializes as an empty
    // leaf only if we write a valid header; do that now.
    Node empty;
    StoreInto(guard, empty);
    return static_cast<NodeId>(guard.id());
  }

  void Free(NodeId id) override {
    file_->Free(static_cast<PageId>(id));
    --num_nodes_;
  }

  Node Read(NodeId id) override {
    this->CountAccess();
    PageGuard guard = pool_.Fetch(static_cast<PageId>(id));
    return Node::Deserialize(guard.data(), file_->page_size());
  }

  Node ReadTracked(NodeId id, QueryStats* st) override {
    this->CountAccess();
    bool hit = false;
    PageGuard guard = pool_.Fetch(static_cast<PageId>(id), &hit);
    if (hit) {
      ++st->buffer_hits;
    } else {
      ++st->buffer_misses;
    }
    if (st->trace != nullptr) {
      st->trace->RecordBufferFetch(id, hit);
    }
    return Node::Deserialize(guard.data(), file_->page_size());
  }

  void Write(NodeId id, const Node& node) override {
    PageGuard guard = pool_.Fetch(static_cast<PageId>(id));
    StoreInto(guard, node);
  }

  size_t NumNodes() const override { return num_nodes_; }

  /// Restores the live-node count after reopening a saved page file
  /// (see mtree/persist.h).
  void RestoreNodeCount(size_t count) { num_nodes_ = count; }

  /// Writes all dirty pages back to the page file.
  void Flush() { pool_.FlushAll(); }

  BufferPool& pool() { return pool_; }
  PageFile& file() { return *file_; }

 private:
  // Write path only (construction and maintenance are single-writer; the
  // concurrent batch executor goes through ReadTracked/Read exclusively),
  // so the shared scratch buffer needs no lock.
  void StoreInto(PageGuard& guard, const Node& node) {
    scratch_.clear();
    node.Serialize(&scratch_);
    if (scratch_.size() > file_->page_size()) {
      throw std::runtime_error("PagedNodeStore: node exceeds page size");
    }
    scratch_.resize(file_->page_size(), 0);
    std::memcpy(guard.data(), scratch_.data(), scratch_.size());
    guard.MarkDirty();
  }

  std::unique_ptr<PageFile> file_;
  BufferPool pool_;
  std::vector<uint8_t> scratch_;
  size_t num_nodes_ = 0;
};

}  // namespace mcm

#endif  // MCM_MTREE_NODE_STORE_H_
