// Configuration knobs of the M-tree. Defaults match the paper's
// experimental setup: 4 KB nodes, 30% minimum utilization, and — because
// footnote 2 excludes the distance-saving search optimizations from the
// cost model — a switchable pruning mode so measured CPU costs can be
// compared against the model (Basic) or against the real optimized search.

#ifndef MCM_MTREE_OPTIONS_H_
#define MCM_MTREE_OPTIONS_H_

#include <cstddef>
#include <cstdint>

namespace mcm {

/// How routing objects are promoted when a node splits (VLDB'97 policies).
enum class PromotePolicy {
  kRandom,      ///< Two random entries.
  kSampling,    ///< Best of a fixed number of sampled pairs (min-max radius).
  kMMRad,       ///< Exhaustive pair search minimizing the larger radius.
  kMaxLbDist,   ///< Keep the old routing object; promote the farthest entry.
};

/// How entries are distributed between the two nodes after promotion.
enum class PartitionPolicy {
  kBalanced,    ///< Alternately assign the nearest unassigned entry.
  kHyperplane,  ///< Generalized hyperplane: each entry to its closer center.
};

/// Distance-computation saving during search (M-tree paper, Section 4).
/// The cost model of the paper deliberately ignores these optimizations
/// (footnote 2), so experiments run in kBasic mode; kOptimized is the real
/// search used by applications.
enum class PruningMode {
  kBasic,      ///< Compute the distance to every entry of an accessed node.
  kOptimized,  ///< Skip entries pruned by the stored parent distances.
};

/// M-tree construction and search options.
struct MTreeOptions {
  /// Node (disk page) size in bytes. Paper default: 4 KB.
  size_t node_size_bytes = 4096;

  /// Minimum fraction of a node's byte capacity that must stay occupied
  /// after a split / during bulk loading (root excluded). Paper: 0.3.
  double min_utilization = 0.3;

  PromotePolicy promote_policy = PromotePolicy::kSampling;
  PartitionPolicy partition_policy = PartitionPolicy::kBalanced;

  /// Pairs sampled by PromotePolicy::kSampling.
  size_t promote_samples = 64;

  PruningMode pruning = PruningMode::kBasic;

  /// Buffer-pool frames when a paged node store is used.
  size_t buffer_pool_frames = 1024;

  /// Seed for randomized promotion and bulk-load seed sampling.
  uint64_t seed = 42;

  /// Worker threads for bulk loading: 0 (default) resolves from
  /// MCM_BUILD_THREADS, else 1 (sequential). The parallel build produces
  /// page-byte-identical trees at any thread count, so this knob trades
  /// build wall time only.
  size_t build_threads = 0;

  /// Bulk loading emits each subtree as a contiguous run of pages in
  /// level-grouped DFS order so sibling frontiers become sequential reads
  /// (the layout readahead exploits). Off = pages in emission order, which
  /// reproduces the scattered layout of insertion-built trees for A/B
  /// experiments.
  bool bulk_sequential_layout = true;

  /// Witness-set capacity for search: how many of the query distances
  /// computed on the path down are consulted (via triangle-inequality
  /// bounds against the stored ancestor distances) before each metric
  /// evaluation. 0 disables the witness cascade and reproduces the
  /// pre-witness search bit-identically; -1 (default) resolves from
  /// MCM_WITNESSES (default 8) at construction time. Witness bounds only
  /// engage after InstallWitnessCascade() has stored the per-entry
  /// ancestor distances.
  int witness_capacity = -1;
};

}  // namespace mcm

#endif  // MCM_MTREE_OPTIONS_H_
