// M-tree persistence: save any tree (whatever its node store) into a page
// file + metadata file pair, and reopen it later as a page-backed tree.
//
//   SaveMTree(tree, "/data/index.mtree");
//   auto tree = OpenMTree<Traits>("/data/index.mtree", metric, options);
//
// The saved layout is compact: nodes are rewritten in depth-first order
// into a fresh page file (one node per page of options.node_size_bytes),
// and a small binary sidecar `<path>.meta` records the root page, object
// count, height and node size. The object serialization comes from the
// tree's Traits, so any Traits-compatible object type persists.

#ifndef MCM_MTREE_PERSIST_H_
#define MCM_MTREE_PERSIST_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>

#include "mcm/mtree/mtree.h"
#include "mcm/mtree/node_store.h"
#include "mcm/storage/buffer_pool.h"
#include "mcm/storage/page_file.h"

namespace mcm {
namespace persist_internal {

inline constexpr uint32_t kMagic = 0x4d434d54;  // "MCMT".

// Version 2 appends `flags` to the metadata (bit 0: the witness cascade's
// per-entry ancestor distances are installed and valid) and allows node
// pages in the versioned tag-2/3 entry layout (mtree/node.h). Version-1
// files — no flags, tag-0/1 pages only — still load: ReadMeta fills
// flags = 0 and Deserialize branches on the page tag.
inline constexpr uint32_t kVersion = 2;
inline constexpr uint32_t kMinVersion = 1;

inline constexpr uint64_t kFlagCascadeInstalled = 1;

struct Meta {
  uint64_t node_size = 0;
  uint32_t root = kInvalidNodeId;
  uint32_t height = 0;
  uint64_t num_objects = 0;
  uint64_t num_nodes = 0;
  uint64_t flags = 0;  // Written since version 2.
};

/// Bytes of Meta persisted by version-1 files (everything before `flags`).
inline constexpr size_t kMetaV1Size = sizeof(Meta) - sizeof(uint64_t);

inline std::string MetaPath(const std::string& path) { return path + ".meta"; }

inline void WriteMeta(const std::string& path, const Meta& meta) {
  std::FILE* f = std::fopen(MetaPath(path).c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("SaveMTree: cannot write " + MetaPath(path));
  }
  const uint32_t head[2] = {kMagic, kVersion};
  bool ok = std::fwrite(head, sizeof(head), 1, f) == 1 &&
            std::fwrite(&meta, sizeof(meta), 1, f) == 1;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    throw std::runtime_error("SaveMTree: short write to " + MetaPath(path));
  }
}

inline Meta ReadMeta(const std::string& path) {
  std::FILE* f = std::fopen(MetaPath(path).c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("OpenMTree: cannot read " + MetaPath(path));
  }
  uint32_t head[2] = {0, 0};
  Meta meta;
  bool ok = std::fread(head, sizeof(head), 1, f) == 1;
  if (ok && head[1] == kMinVersion) {
    ok = std::fread(&meta, kMetaV1Size, 1, f) == 1;  // flags stays 0.
  } else if (ok) {
    ok = std::fread(&meta, sizeof(meta), 1, f) == 1;
  }
  std::fclose(f);
  if (!ok || head[0] != kMagic) {
    throw std::runtime_error("OpenMTree: bad metadata in " + MetaPath(path));
  }
  if (head[1] < kMinVersion || head[1] > kVersion) {
    throw std::runtime_error("OpenMTree: unsupported version");
  }
  return meta;
}

}  // namespace persist_internal

/// Saves `tree` to `path` (+ `<path>.meta`), rewriting nodes compactly.
/// Works for any node store; an empty tree saves an empty page file.
/// Pages go through a small BufferPool — PageFile::WritePage is reserved
/// for the pool itself (the `no-pagefile-bypass` lint rule).
template <typename Traits>
void SaveMTree(const MTree<Traits>& tree, const std::string& path) {
  using Node = MTreeNode<Traits>;
  StdioPageFile out(path, tree.options().node_size_bytes,
                    StdioPageFile::Mode::kCreate);
  BufferPool pool(&out, /*capacity=*/8);
  std::vector<uint8_t> buffer;

  // Depth-first copy; children are written before their parent so the
  // parent's rewritten child pointers are final.
  auto copy = [&](auto&& self, NodeId id) -> PageId {
    Node node = tree.store().Read(id);
    if (!node.is_leaf) {
      for (auto& e : node.routing_entries) {
        e.child = static_cast<NodeId>(self(self, e.child));
      }
    }
    buffer.clear();
    node.Serialize(&buffer);
    if (buffer.size() > out.page_size()) {
      throw std::runtime_error("SaveMTree: node exceeds page size");
    }
    PageGuard guard = pool.NewPage();  // Pinned and zeroed.
    std::memcpy(guard.data(), buffer.data(), buffer.size());
    guard.MarkDirty();
    return guard.id();
  };

  persist_internal::Meta meta;
  meta.node_size = tree.options().node_size_bytes;
  meta.height = tree.height();
  meta.num_objects = tree.size();
  if (tree.cascade_installed()) {
    meta.flags |= persist_internal::kFlagCascadeInstalled;
  }
  if (tree.root() != kInvalidNodeId) {
    meta.root = static_cast<uint32_t>(copy(copy, tree.root()));
  }
  pool.FlushAll();
  meta.num_nodes = out.num_pages();
  persist_internal::WriteMeta(path, meta);
}

/// Reopens a tree saved by SaveMTree. `metric` and `options` must match
/// construction time (the node size is checked against the metadata).
template <typename Traits>
MTree<Traits> OpenMTree(const std::string& path,
                        typename Traits::Metric metric,
                        MTreeOptions options) {
  const persist_internal::Meta meta = persist_internal::ReadMeta(path);
  if (meta.node_size != options.node_size_bytes) {
    throw std::runtime_error(
        "OpenMTree: node size mismatch between metadata and options");
  }
  auto store = std::make_unique<PagedNodeStore<Traits>>(
      std::make_unique<StdioPageFile>(path, options.node_size_bytes,
                                      StdioPageFile::Mode::kOpenExisting),
      options.buffer_pool_frames);
  store->RestoreNodeCount(meta.num_nodes);
  const bool cascade =
      (meta.flags & persist_internal::kFlagCascadeInstalled) != 0;
  return MTree<Traits>::Attach(std::move(metric), options, std::move(store),
                               static_cast<NodeId>(meta.root),
                               meta.num_objects, meta.height, cascade);
}

}  // namespace mcm

#endif  // MCM_MTREE_PERSIST_H_
