// Node-split machinery: promotion of two routing objects and distribution
// of the entries between the two resulting nodes, per the policies of the
// M-tree paper (VLDB'97, Section 3.2).
//
// The splitter works on an abstract view of the overflowing node: the entry
// objects plus each entry's own covering radius (0 for leaf entries), so the
// same code serves leaf and internal splits.

#ifndef MCM_MTREE_SPLIT_H_
#define MCM_MTREE_SPLIT_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "mcm/common/random.h"
#include "mcm/mtree/options.h"

namespace mcm {

/// Outcome of a split: two promoted entries, the index groups assigned to
/// each (promoted entries included in their own group), each group's
/// covering radius, and each member's distance to its promoted object
/// (which becomes the stored parent distance).
struct SplitOutcome {
  size_t promoted_first = 0;
  size_t promoted_second = 0;
  std::vector<size_t> first_group;
  std::vector<size_t> second_group;
  std::vector<double> first_distances;   ///< Aligned with first_group.
  std::vector<double> second_distances;  ///< Aligned with second_group.
  double first_radius = 0.0;
  double second_radius = 0.0;
};

/// Splits a set of entries described by `objects` (borrowed pointers) and
/// `radii` (covering radius of each entry's subtree; zeros for leaves).
template <typename Object, typename Metric>
class NodeSplitter {
 public:
  NodeSplitter(const std::vector<const Object*>& objects,
               const std::vector<double>& radii, const Metric& metric)
      : objects_(objects), radii_(radii), metric_(metric) {
    if (objects.size() < 2) {
      throw std::invalid_argument("NodeSplitter: need >= 2 entries");
    }
    if (objects.size() != radii.size()) {
      throw std::invalid_argument("NodeSplitter: objects/radii mismatch");
    }
    const size_t n = objects.size();
    matrix_.assign(n * n, -1.0);
  }

  /// Runs promotion + partition under the given policies.
  SplitOutcome Split(PromotePolicy promote, PartitionPolicy partition,
                     size_t promote_samples, RandomEngine& rng) {
    const auto [p1, p2] = Promote(promote, partition, promote_samples, rng);
    return Partition(p1, p2, partition);
  }

 private:
  size_t Count() const { return objects_.size(); }

  double Dist(size_t i, size_t j) {
    if (i == j) return 0.0;
    double& cell = matrix_[i * Count() + j];
    if (cell < 0.0) {
      cell = metric_(*objects_[i], *objects_[j]);
      matrix_[j * Count() + i] = cell;
    }
    return cell;
  }

  std::pair<size_t, size_t> Promote(PromotePolicy promote,
                                    PartitionPolicy partition,
                                    size_t promote_samples,
                                    RandomEngine& rng) {
    const size_t n = Count();
    switch (promote) {
      case PromotePolicy::kRandom: {
        const size_t a = UniformIndex(rng, n);
        size_t b = UniformIndex(rng, n - 1);
        if (b >= a) ++b;
        return {a, b};
      }
      case PromotePolicy::kMaxLbDist: {
        // Approximation of M_LB_DIST without stored parent distances: anchor
        // on a random entry and promote the entry farthest from it.
        const size_t a = UniformIndex(rng, n);
        size_t best = a == 0 ? 1 : 0;
        double best_d = -1.0;
        for (size_t i = 0; i < n; ++i) {
          if (i == a) continue;
          const double d = Dist(a, i);
          if (d > best_d) {
            best_d = d;
            best = i;
          }
        }
        return {a, best};
      }
      case PromotePolicy::kSampling: {
        return BestOfPairs(SamplePairs(promote_samples, rng), partition);
      }
      case PromotePolicy::kMMRad: {
        std::vector<std::pair<size_t, size_t>> pairs;
        pairs.reserve(n * (n - 1) / 2);
        for (size_t i = 0; i < n; ++i) {
          for (size_t j = i + 1; j < n; ++j) pairs.emplace_back(i, j);
        }
        return BestOfPairs(pairs, partition);
      }
    }
    throw std::invalid_argument("NodeSplitter: bad promote policy");
  }

  std::vector<std::pair<size_t, size_t>> SamplePairs(size_t samples,
                                                     RandomEngine& rng) {
    const size_t n = Count();
    std::vector<std::pair<size_t, size_t>> pairs;
    pairs.reserve(samples);
    for (size_t s = 0; s < samples; ++s) {
      const size_t a = UniformIndex(rng, n);
      size_t b = UniformIndex(rng, n - 1);
      if (b >= a) ++b;
      pairs.emplace_back(std::min(a, b), std::max(a, b));
    }
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
    return pairs;
  }

  /// mM_RAD criterion: among candidate pairs, the one minimizing the larger
  /// of the two covering radii after partitioning.
  std::pair<size_t, size_t> BestOfPairs(
      const std::vector<std::pair<size_t, size_t>>& pairs,
      PartitionPolicy partition) {
    if (pairs.empty()) {
      throw std::logic_error("NodeSplitter: no candidate pairs");
    }
    std::pair<size_t, size_t> best = pairs.front();
    double best_quality = std::numeric_limits<double>::infinity();
    for (const auto& [a, b] : pairs) {
      const SplitOutcome out = Partition(a, b, partition);
      const double quality = std::max(out.first_radius, out.second_radius);
      if (quality < best_quality) {
        best_quality = quality;
        best = {a, b};
      }
    }
    return best;
  }

  SplitOutcome Partition(size_t p1, size_t p2, PartitionPolicy partition) {
    const size_t n = Count();
    std::vector<double> d1(n), d2(n);
    for (size_t i = 0; i < n; ++i) {
      d1[i] = Dist(p1, i);
      d2[i] = Dist(p2, i);
    }
    SplitOutcome out;
    out.promoted_first = p1;
    out.promoted_second = p2;

    std::vector<int> owner(n, -1);
    owner[p1] = 0;
    owner[p2] = 1;
    if (partition == PartitionPolicy::kHyperplane) {
      for (size_t i = 0; i < n; ++i) {
        if (owner[i] < 0) owner[i] = d1[i] <= d2[i] ? 0 : 1;
      }
    } else {
      // Balanced distribution: alternately give each promoted object its
      // nearest unassigned entry.
      std::vector<size_t> by_d1(n), by_d2(n);
      std::iota(by_d1.begin(), by_d1.end(), 0);
      by_d2 = by_d1;
      std::sort(by_d1.begin(), by_d1.end(),
                [&](size_t a, size_t b) { return d1[a] < d1[b]; });
      std::sort(by_d2.begin(), by_d2.end(),
                [&](size_t a, size_t b) { return d2[a] < d2[b]; });
      size_t i1 = 0, i2 = 0, assigned = 2;
      int turn = 0;
      while (assigned < n) {
        if (turn == 0) {
          while (i1 < n && owner[by_d1[i1]] >= 0) ++i1;
          if (i1 < n) {
            owner[by_d1[i1]] = 0;
            ++assigned;
          }
        } else {
          while (i2 < n && owner[by_d2[i2]] >= 0) ++i2;
          if (i2 < n) {
            owner[by_d2[i2]] = 1;
            ++assigned;
          }
        }
        turn = 1 - turn;
      }
    }

    for (size_t i = 0; i < n; ++i) {
      if (owner[i] == 0) {
        out.first_group.push_back(i);
        out.first_distances.push_back(d1[i]);
        out.first_radius = std::max(out.first_radius, d1[i] + radii_[i]);
      } else {
        out.second_group.push_back(i);
        out.second_distances.push_back(d2[i]);
        out.second_radius = std::max(out.second_radius, d2[i] + radii_[i]);
      }
    }
    return out;
  }

  const std::vector<const Object*>& objects_;
  const std::vector<double>& radii_;
  const Metric& metric_;
  std::vector<double> matrix_;  ///< Lazy pairwise distance cache; -1 = unset.
};

}  // namespace mcm

#endif  // MCM_MTREE_SPLIT_H_
