// Structural invariant checker for M-trees, used by the test suite.
// Verifies, for the whole tree:
//   * every object in the subtree of a routing entry lies within its
//     covering radius (the defining M-tree property);
//   * stored parent distances equal d(parent routing object, entry object);
//   * every node's serialized size fits the configured node size;
//   * all leaves are at the same depth (the tree is balanced);
//   * the number of leaf entries equals tree.size().

#ifndef MCM_MTREE_VALIDATE_H_
#define MCM_MTREE_VALIDATE_H_

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "mcm/mtree/mtree.h"

namespace mcm {

/// Validates all invariants; returns human-readable violations (empty when
/// the tree is consistent). `epsilon` absorbs floating-point slack.
template <typename Traits>
std::vector<std::string> ValidateMTree(const MTree<Traits>& tree,
                                       double epsilon = 1e-9) {
  using Object = typename Traits::Object;
  using Node = MTreeNode<Traits>;

  std::vector<std::string> errors;
  if (tree.root() == kInvalidNodeId) {
    if (tree.size() != 0) {
      errors.push_back("empty tree with nonzero size()");
    }
    return errors;
  }

  auto& store = tree.store();
  const auto& metric = tree.metric();
  size_t leaf_objects = 0;
  int leaf_depth = -1;

  // Returns the max distance from `center` to any object in `node`'s
  // subtree, checking invariants along the way.
  auto check = [&](auto&& self, NodeId id, const Object* parent,
                   int depth) -> void {
    const Node node = store.Read(id);
    if (node.SerializedSize() > tree.options().node_size_bytes) {
      std::ostringstream os;
      os << "node " << id << " serialized size " << node.SerializedSize()
         << " exceeds node size " << tree.options().node_size_bytes;
      errors.push_back(os.str());
    }
    if (node.NumEntries() == 0) {
      std::ostringstream os;
      os << "node " << id << " is empty";
      errors.push_back(os.str());
    }
    if (node.is_leaf) {
      if (leaf_depth < 0) {
        leaf_depth = depth;
      } else if (leaf_depth != depth) {
        std::ostringstream os;
        os << "leaf " << id << " at depth " << depth
           << " but earlier leaves at depth " << leaf_depth;
        errors.push_back(os.str());
      }
      leaf_objects += node.leaf_entries.size();
      for (const auto& e : node.leaf_entries) {
        if (parent != nullptr) {
          const double d = metric(*parent, e.object);
          if (std::fabs(d - e.parent_distance) > epsilon) {
            std::ostringstream os;
            os << "leaf " << id << " oid " << e.oid
               << ": stored parent distance " << e.parent_distance
               << " != actual " << d;
            errors.push_back(os.str());
          }
        }
      }
    } else {
      for (const auto& e : node.routing_entries) {
        if (parent != nullptr) {
          const double d = metric(*parent, e.object);
          if (std::fabs(d - e.parent_distance) > epsilon) {
            std::ostringstream os;
            os << "node " << id << ": stored parent distance "
               << e.parent_distance << " != actual " << d;
            errors.push_back(os.str());
          }
        }
        if (e.covering_radius < 0.0) {
          std::ostringstream os;
          os << "node " << id << ": negative covering radius";
          errors.push_back(os.str());
        }
        self(self, e.child, &e.object, depth + 1);
      }
    }
  };
  check(check, tree.root(), nullptr, 0);

  if (leaf_objects != tree.size()) {
    std::ostringstream os;
    os << "tree.size() = " << tree.size() << " but leaves hold "
       << leaf_objects << " objects";
    errors.push_back(os.str());
  }

  // Covering-radius containment: check every object against the routing
  // entries on its root-to-leaf path.
  auto contain = [&](auto&& self, NodeId id,
                     std::vector<std::pair<const Object*, double>> balls)
      -> void {
    const Node node = store.Read(id);
    if (node.is_leaf) {
      for (const auto& e : node.leaf_entries) {
        for (const auto& [center, radius] : balls) {
          const double d = metric(*center, e.object);
          if (d > radius + epsilon) {
            std::ostringstream os;
            os << "object oid " << e.oid << " at distance " << d
               << " outside covering radius " << radius;
            errors.push_back(os.str());
          }
        }
      }
    } else {
      for (const auto& e : node.routing_entries) {
        auto next = balls;
        next.emplace_back(&e.object, e.covering_radius);
        self(self, e.child, next);
        // `next` holds pointers into the local `node` copy, which stays
        // alive for the duration of this recursive call.
      }
    }
  };
  contain(contain, tree.root(), {});

  return errors;
}

}  // namespace mcm

#endif  // MCM_MTREE_VALIDATE_H_
