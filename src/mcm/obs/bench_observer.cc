#include "mcm/obs/bench_observer.h"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <sstream>

#include "mcm/common/env.h"
#include "mcm/common/table_printer.h"
#include "mcm/obs/export.h"
#include "mcm/obs/metrics.h"
#include "mcm/obs/telemetry.h"

namespace mcm {

namespace {

std::string GetEnvString(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return raw == nullptr || *raw == '\0' ? fallback : std::string(raw);
}

double SortedQuantile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const double pos = p * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(pos));
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

std::string PredictionsJson(const std::vector<CostPrediction>& predictions) {
  JsonObjectBuilder all;
  for (const auto& p : predictions) {
    JsonObjectBuilder one;
    if (p.nodes >= 0.0) one.Add("nodes", p.nodes);
    if (p.dists >= 0.0) one.Add("dists", p.dists);
    if (!p.level_nodes.empty()) one.AddNumberArray("level_nodes",
                                                   p.level_nodes);
    all.AddRaw(p.model, one.Build());
  }
  return all.Build();
}

std::string PhaseUsJson(const std::array<double, kNumQueryPhases>& us) {
  JsonObjectBuilder o;
  for (size_t i = 0; i < kNumQueryPhases; ++i) {
    o.Add(ToString(static_cast<QueryPhase>(i)), us[i]);
  }
  return o.Build();
}

std::string ResidualStatsJson(const ResidualStats& stats) {
  JsonObjectBuilder o;
  o.Add("count", stats.count);
  o.Add("mean_rel_err", stats.mean_rel_err);
  o.Add("p50_rel_err", stats.p50_rel_err);
  o.Add("p95_rel_err", stats.p95_rel_err);
  o.Add("mean_signed", stats.mean_signed);
  o.Add("mean_predicted", stats.mean_predicted);
  o.Add("mean_actual", stats.mean_actual);
  return o.Build();
}

}  // namespace

BenchObserver::BenchObserver(const std::string& bench_name)
    : bench_name_(bench_name) {
  enabled_ = ObsEnabled();
  if (!enabled_) {
    return;
  }
  trace_capacity_ = static_cast<size_t>(GetEnvInt(
      "MCM_OBS_TRACE_CAP",
      static_cast<int64_t>(QueryTrace::kDefaultCapacity)));
  dump_events_ = GetEnvInt("MCM_OBS_EVENTS", 0) != 0;
  const std::string dir = GetEnvString("MCM_OBS_DIR", ".");
  artifact_path_ = dir + "/BENCH_" + bench_name_ + ".json";
  csv_path_ = dir + "/BENCH_" + bench_name_ + ".csv";
  jsonl_ = std::make_unique<JsonlWriter>(artifact_path_);
  const std::vector<std::string> csv_header = {
      "case",        "stream",      "count",          "mean_rel_err",
      "p50_rel_err", "p95_rel_err", "mean_predicted", "mean_actual"};
  csv_ = std::make_unique<CsvWriter>(csv_path_, csv_header);
  if (!jsonl_->ok()) {
    std::cerr << "BenchObserver: cannot open " << artifact_path_
              << "; observability disabled for this run\n";
    enabled_ = false;
    return;
  }
  JsonObjectBuilder meta;
  meta.Add("record", "meta");
  meta.Add("bench", bench_name_);
  meta.Add("schema_version", 1);
  meta.Add("trace_capacity", trace_capacity_);
  jsonl_->WriteLine(meta.Build());
}

BenchObserver::~BenchObserver() { Finish(); }

void BenchObserver::BeginCase(
    const std::string& label,
    const std::vector<std::pair<std::string, double>>& params,
    std::vector<CostPrediction> predictions) {
  if (!enabled_) {
    return;
  }
  if (case_open_) {
    EndCase();
  }
  case_open_ = true;
  case_label_ = label;
  case_params_ = params;
  predictions_ = std::move(predictions);
  residuals_.Clear();
  case_queries_ = 0;
  sum_nodes_ = sum_dists_ = sum_results_ = sum_pruned_ = 0.0;
  sum_witness_avoided_ = 0.0;
  sum_buffer_hits_ = sum_buffer_misses_ = 0;
  sum_phase_us_.fill(0.0);
  latencies_us_.clear();
}

void BenchObserver::RecordQuery(const QueryObservation& obs) {
  if (!enabled_ || !case_open_) {
    return;
  }
  MetricsRegistry::Global()
      .GetCounter("mcm.obs.queries")
      .Increment();
  MetricsRegistry::Global()
      .GetHistogram("mcm.query.latency_us", DefaultLatencyBoundsUs())
      .Observe(obs.latency_us);

  ++case_queries_;
  sum_nodes_ += static_cast<double>(obs.stats.nodes_accessed);
  sum_dists_ += static_cast<double>(obs.stats.distance_computations);
  sum_results_ += static_cast<double>(obs.results);
  sum_pruned_ += static_cast<double>(obs.stats.nodes_pruned);
  sum_witness_avoided_ +=
      static_cast<double>(obs.stats.distance_calcs_avoided_by_witness);
  sum_buffer_hits_ += obs.stats.buffer_hits;
  sum_buffer_misses_ += obs.stats.buffer_misses;
  std::array<double, kNumQueryPhases> phase_us{};
  for (size_t i = 0; i < kNumQueryPhases; ++i) {
    phase_us[i] = static_cast<double>(obs.stats.phase_ns[i]) / 1e3;
    sum_phase_us_[i] += phase_us[i];
  }
  latencies_us_.push_back(obs.latency_us);

  for (const auto& p : predictions_) {
    if (p.nodes >= 0.0) {
      residuals_.Stream(p.model + "/nodes")
          .Add(p.nodes, static_cast<double>(obs.stats.nodes_accessed));
    }
    if (p.dists >= 0.0) {
      residuals_.Stream(p.model + "/dists")
          .Add(p.dists,
               static_cast<double>(obs.stats.distance_computations));
    }
    if (!p.level_nodes.empty()) {
      residuals_.AddLevelSamples(p.model, p.level_nodes, obs.level_nodes);
    }
  }

  JsonObjectBuilder rec;
  rec.Add("record", "query");
  rec.Add("bench", bench_name_);
  rec.Add("case", case_label_);
  rec.Add("seq", case_queries_ - 1);
  rec.Add("kind", obs.kind);
  if (obs.k > 0) {
    rec.Add("k", obs.k);
  } else {
    rec.Add("radius", obs.radius);
  }
  for (const auto& [key, value] : case_params_) {
    rec.Add(key, value);
  }
  rec.Add("nodes", obs.stats.nodes_accessed);
  rec.Add("dists", obs.stats.distance_computations);
  rec.Add("pruned", obs.stats.nodes_pruned);
  rec.Add("witness_avoided", obs.stats.distance_calcs_avoided_by_witness);
  rec.Add("buffer_hits", obs.stats.buffer_hits);
  rec.Add("buffer_misses", obs.stats.buffer_misses);
  rec.Add("results", obs.results);
  rec.Add("latency_us", obs.latency_us);
  // All six phases, zero when the query path recorded no time (phase
  // timers only run under MCM_OBS, which is on whenever records are
  // written, but memory stores never touch page-read/decode).
  rec.AddRaw("phase_us", PhaseUsJson(phase_us));
  // Always present (empty for flat structures) so every artifact matches
  // the query-record schema regardless of which bench produced it.
  rec.AddNumberArray("level_nodes", obs.level_nodes);
  JsonObjectBuilder prunes;
  for (size_t i = 0; i < kNumPruneReasons; ++i) {
    if (obs.prunes_by_reason[i] > 0) {
      prunes.Add(ToString(static_cast<PruneReason>(i)),
                 obs.prunes_by_reason[i]);
    }
  }
  rec.AddRaw("prunes", prunes.Build());  // "{}" when nothing was pruned.
  rec.AddRaw("pred", PredictionsJson(predictions_));  // "{}" when no models.
  if (obs.trace_dropped > 0) {
    rec.Add("trace_dropped", obs.trace_dropped);
    MetricsRegistry::Global()
        .GetCounter("mcm.obs.trace_dropped_events")
        .Increment(obs.trace_dropped);
  }
  if (dump_events_ && !obs.events.empty()) {
    std::string events = "[";
    for (size_t i = 0; i < obs.events.size(); ++i) {
      const TraceEvent& e = obs.events[i];
      if (i > 0) events += ",";
      JsonObjectBuilder ev;
      switch (e.kind) {
        case TraceEventKind::kNodeVisit:
          ev.Add("ev", "visit");
          ev.Add("node", e.node);
          ev.Add("level", static_cast<uint64_t>(e.level));
          ev.Add("scanned", static_cast<uint64_t>(e.entries_scanned));
          ev.Add("entry_pruned", static_cast<uint64_t>(e.entries_pruned));
          ev.Add("dists", static_cast<uint64_t>(e.distances));
          if (e.witness_avoided > 0) {
            ev.Add("witness_avoided",
                   static_cast<uint64_t>(e.witness_avoided));
          }
          break;
        case TraceEventKind::kPrune:
          ev.Add("ev", "prune");
          ev.Add("node", e.node);
          ev.Add("level", static_cast<uint64_t>(e.level));
          ev.Add("reason", ToString(e.reason));
          break;
        case TraceEventKind::kBufferFetch:
          ev.Add("ev", "fetch");
          ev.Add("node", e.node);
          ev.Add("hit", e.buffer_hit);
          break;
      }
      events += ev.Build();
    }
    events += "]";
    rec.AddRaw("events", events);
  }
  jsonl_->WriteLine(rec.Build());
}

void BenchObserver::WriteSummaryRecord() {
  JsonObjectBuilder rec;
  rec.Add("record", "summary");
  rec.Add("bench", bench_name_);
  rec.Add("case", case_label_);
  for (const auto& [key, value] : case_params_) {
    rec.Add(key, value);
  }
  rec.Add("queries", case_queries_);
  const double n = case_queries_ == 0
                       ? 1.0
                       : static_cast<double>(case_queries_);
  rec.Add("avg_nodes", sum_nodes_ / n);
  rec.Add("avg_dists", sum_dists_ / n);
  rec.Add("avg_results", sum_results_ / n);
  rec.Add("avg_pruned", sum_pruned_ / n);
  rec.Add("avg_witness_avoided", sum_witness_avoided_ / n);
  const uint64_t fetches = sum_buffer_hits_ + sum_buffer_misses_;
  rec.Add("buffer_hit_rate",
          fetches == 0 ? 0.0
                       : static_cast<double>(sum_buffer_hits_) /
                             static_cast<double>(fetches));
  {
    JsonObjectBuilder lat;
    double mean = 0.0;
    for (const double v : latencies_us_) mean += v;
    mean /= latencies_us_.empty()
                ? 1.0
                : static_cast<double>(latencies_us_.size());
    lat.Add("mean", mean);
    lat.Add("p50", SortedQuantile(latencies_us_, 0.50));
    lat.Add("p95", SortedQuantile(latencies_us_, 0.95));
    lat.Add("p99", SortedQuantile(latencies_us_, 0.99));
    rec.AddRaw("latency_us", lat.Build());
  }
  {
    // Per-phase wall time averaged over the case's queries.
    std::array<double, kNumQueryPhases> avg_phase_us{};
    for (size_t i = 0; i < kNumQueryPhases; ++i) {
      avg_phase_us[i] = sum_phase_us_[i] / n;
    }
    rec.AddRaw("phase_us", PhaseUsJson(avg_phase_us));
  }
  {
    // Always present ("{}" without predictions) to match the schema.
    JsonObjectBuilder res;
    for (const std::string& name : residuals_.Names()) {
      res.AddRaw(name, ResidualStatsJson(residuals_.StatsFor(name)));
    }
    rec.AddRaw("residuals", res.Build());
  }
  jsonl_->WriteLine(rec.Build());
}

void BenchObserver::EndCase() {
  if (!enabled_ || !case_open_) {
    return;
  }
  WriteSummaryRecord();

  const std::vector<std::string> names = residuals_.Names();
  for (const std::string& name : names) {
    const ResidualStats s = residuals_.StatsFor(name);
    csv_->WriteRow({case_label_, name, std::to_string(s.count),
                    TablePrinter::Num(s.mean_rel_err, 4),
                    TablePrinter::Num(s.p50_rel_err, 4),
                    TablePrinter::Num(s.p95_rel_err, 4),
                    TablePrinter::Num(s.mean_predicted, 2),
                    TablePrinter::Num(s.mean_actual, 2)});
  }
  if (!names.empty()) {
    TablePrinter table({"residual stream", "n", "mean err%", "p50%", "p95%",
                        "bias%", "pred", "actual"});
    for (const std::string& name : names) {
      const ResidualStats s = residuals_.StatsFor(name);
      table.AddRow({name, std::to_string(s.count),
                    TablePrinter::Num(100.0 * s.mean_rel_err, 1),
                    TablePrinter::Num(100.0 * s.p50_rel_err, 1),
                    TablePrinter::Num(100.0 * s.p95_rel_err, 1),
                    TablePrinter::Num(100.0 * s.mean_signed, 1),
                    TablePrinter::Num(s.mean_predicted, 1),
                    TablePrinter::Num(s.mean_actual, 1)});
    }
    std::cout << "[obs] residuals, case " << case_label_ << ":\n";
    table.Print(std::cout);
    std::cout << "\n";
  }
  jsonl_->Flush();
  case_open_ = false;
}

void BenchObserver::Finish() {
  if (!enabled_ || finished_) {
    return;
  }
  if (case_open_) {
    EndCase();
  }
  // Append the process-wide metrics so the artifact is self-contained.
  std::ostringstream metrics;
  MetricsRegistry::Global().WriteJsonl(metrics);
  std::istringstream lines(metrics.str());
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) {
      continue;
    }
    // Re-tag each registry line as a "metric" record of this bench.
    JsonObjectBuilder rec;
    rec.Add("record", "metric");
    rec.Add("bench", bench_name_);
    rec.AddRaw("data", line);
    jsonl_->WriteLine(rec.Build());
  }
  jsonl_->Flush();
  std::cout << "[obs] wrote " << jsonl_->lines_written() << " records to "
            << artifact_path_ << "\n";
  // Honor MCM_TRACE_OUT / MCM_METRICS_OUT from any bench that ran with
  // an observer: flush the Chrome trace and the Prometheus snapshot.
  const int flushed = FlushTelemetry();
  if (flushed > 0) {
    if (!TraceOutPath().empty()) {
      std::cout << "[obs] chrome trace: " << TraceOutPath() << "\n";
    }
    if (!MetricsOutPath().empty()) {
      std::cout << "[obs] prometheus snapshot: " << MetricsOutPath() << "\n";
    }
  }
  finished_ = true;
}

}  // namespace mcm
