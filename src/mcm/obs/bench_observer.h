// BenchObserver: the bench-side entry point of the observability layer.
// When MCM_OBS=1 it opens BENCH_<name>.json (JSON Lines) and BENCH_<name>.csv
// in MCM_OBS_DIR (default "."), records one JSON record per executed query
// (actual counters, per-level node visits, prune breakdown, buffer hits,
// latency, and each cost model's prediction), accumulates predicted-vs-
// actual residuals, and emits one summary record per case plus a
// human-readable residual table. When MCM_OBS is unset every method is an
// immediate no-op, so benches can call it unconditionally.
//
// Env knobs: MCM_OBS (off by default), MCM_OBS_DIR (artifact directory),
// MCM_OBS_TRACE_CAP (trace ring capacity, default 4096), MCM_OBS_EVENTS=1
// (also dump raw trace events per query — verbose).

#ifndef MCM_OBS_BENCH_OBSERVER_H_
#define MCM_OBS_BENCH_OBSERVER_H_

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "mcm/common/query_stats.h"
#include "mcm/obs/residual.h"
#include "mcm/obs/trace.h"

namespace mcm {

class JsonlWriter;
class CsvWriter;

/// One cost model's prediction for the current case's query workload.
struct CostPrediction {
  std::string model;       ///< e.g. "N-MCM", "L-MCM", "vp-model".
  double nodes = -1.0;     ///< Predicted node reads; < 0 = not predicted.
  double dists = -1.0;     ///< Predicted distance computations; < 0 = none.
  std::vector<double> level_nodes;  ///< Per-level node reads (index 0 =
                                    ///< level 1); empty = not predicted.
};

/// Everything observed while executing one query.
struct QueryObservation {
  const char* kind = "range";  ///< "range" | "knn" | "complex".
  double radius = 0.0;         ///< Range/complex queries.
  size_t k = 0;                ///< k-NN queries.
  QueryStats stats;
  size_t results = 0;
  double latency_us = 0.0;
  std::vector<double> level_nodes;  ///< Actual node visits per level.
  std::array<uint64_t, kNumPruneReasons> prunes_by_reason{};
  std::vector<TraceEvent> events;   ///< Only when event dumping is on.
  uint64_t trace_dropped = 0;
};

class BenchObserver {
 public:
  /// `bench_name` names the artifact files; nothing is opened (and no
  /// state is kept) unless observability is enabled.
  explicit BenchObserver(const std::string& bench_name);
  ~BenchObserver();

  BenchObserver(const BenchObserver&) = delete;
  BenchObserver& operator=(const BenchObserver&) = delete;

  bool enabled() const { return enabled_; }

  /// Ring capacity for traces attached to observed queries.
  size_t trace_capacity() const { return trace_capacity_; }

  /// Whether raw trace events should be collected into observations.
  bool dump_events() const { return dump_events_; }

  /// Starts a workload case (e.g. "D=10"). `params` are echoed into every
  /// record of the case; `predictions` seed the residual streams.
  void BeginCase(const std::string& label,
                 const std::vector<std::pair<std::string, double>>& params = {},
                 std::vector<CostPrediction> predictions = {});

  /// Records one executed query of the open case.
  void RecordQuery(const QueryObservation& obs);

  /// Closes the open case: writes its summary record and CSV rows, and
  /// prints the residual table to stdout.
  void EndCase();

  /// Flushes everything (also ends an open case). Called by the destructor.
  void Finish();

  const std::string& artifact_path() const { return artifact_path_; }
  const std::string& csv_path() const { return csv_path_; }

 private:
  void WriteSummaryRecord();

  bool enabled_ = false;
  bool dump_events_ = false;
  size_t trace_capacity_ = QueryTrace::kDefaultCapacity;
  std::string bench_name_;
  std::string artifact_path_;
  std::string csv_path_;
  std::unique_ptr<JsonlWriter> jsonl_;
  std::unique_ptr<CsvWriter> csv_;

  // Open-case state.
  bool case_open_ = false;
  std::string case_label_;
  std::vector<std::pair<std::string, double>> case_params_;
  std::vector<CostPrediction> predictions_;
  ResidualTracker residuals_;
  size_t case_queries_ = 0;
  double sum_nodes_ = 0.0;
  double sum_dists_ = 0.0;
  double sum_results_ = 0.0;
  double sum_pruned_ = 0.0;
  double sum_witness_avoided_ = 0.0;
  uint64_t sum_buffer_hits_ = 0;
  uint64_t sum_buffer_misses_ = 0;
  std::array<double, kNumQueryPhases> sum_phase_us_{};
  std::vector<double> latencies_us_;
  bool finished_ = false;
};

}  // namespace mcm

#endif  // MCM_OBS_BENCH_OBSERVER_H_
