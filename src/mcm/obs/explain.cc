#include "mcm/obs/explain.h"

#include <sstream>
#include <utility>

#include "mcm/common/table_printer.h"
#include "mcm/obs/export.h"

namespace mcm {

namespace {

double Residual(double actual, double predicted) {
  if (predicted == 0.0) {
    return actual == 0.0 ? 0.0 : 100.0;
  }
  return (actual - predicted) / predicted * 100.0;
}

const ExplainModelPrediction* FindModel(const ExplainReport& report,
                                        const std::string& name) {
  for (const auto& p : report.predictions) {
    if (p.model == name) return &p;
  }
  return nullptr;
}

double LevelValue(const std::vector<double>& values, size_t idx) {
  return idx < values.size() ? values[idx] : 0.0;
}

}  // namespace

std::string RenderExplainText(const ExplainReport& report) {
  std::ostringstream out;
  out << "EXPLAIN " << report.kind;
  if (report.kind == "range") {
    out << "(radius=" << TablePrinter::Num(report.radius, 4) << ")";
  } else {
    out << "(k=" << report.k << ")";
  }
  out << " over mtree[n=" << report.num_objects
      << ", height=" << report.height << ", nodes=" << report.num_nodes
      << ", node_size=" << report.node_size_bytes
      << "B, d+=" << TablePrinter::Num(report.d_plus, 4) << "]\n";
  out << "access path: " << report.access_path
      << " (index " << TablePrinter::Num(report.index_ms, 1)
      << " ms vs sequential "
      << TablePrinter::Num(report.sequential_ms, 1) << " ms)\n\n";

  const ExplainModelPrediction* nmcm = FindModel(report, "nmcm");
  const ExplainModelPrediction* lmcm = FindModel(report, "lmcm");
  const ExplainModelPrediction* witness = FindModel(report, "nmcm.witness");

  out << "predicted vs actual totals:\n";
  {
    TablePrinter totals({"", "nodes", "distances"});
    if (nmcm != nullptr) {
      totals.AddRow({"N-MCM", TablePrinter::Num(nmcm->nodes),
                     TablePrinter::Num(nmcm->distances)});
    }
    if (lmcm != nullptr) {
      totals.AddRow({"L-MCM", TablePrinter::Num(lmcm->nodes),
                     TablePrinter::Num(lmcm->distances)});
    }
    if (witness != nullptr) {
      totals.AddRow({"N-MCM+w", TablePrinter::Num(witness->nodes),
                     TablePrinter::Num(witness->distances)});
    }
    totals.AddRow({"actual",
                   std::to_string(report.stats.nodes_accessed),
                   std::to_string(report.stats.distance_computations)});
    totals.Print(out);
  }

  out << "\nper-level (root = level 1):\n";
  {
    std::vector<std::string> header = {"level", "nodes N-MCM", "nodes L-MCM",
                                       "nodes actual", "resid%",
                                       "dists N-MCM", "dists L-MCM"};
    if (witness != nullptr) header.push_back("dists N-MCM+w");
    header.push_back("dists actual");
    if (witness != nullptr) header.push_back("avoided");
    TablePrinter levels(std::move(header));
    const size_t height = report.level_actuals.size();
    for (size_t l = 0; l < height; ++l) {
      const auto& actual = report.level_actuals[l];
      const double n_nodes =
          nmcm != nullptr ? LevelValue(nmcm->level_nodes, l) : 0.0;
      const double l_nodes =
          lmcm != nullptr ? LevelValue(lmcm->level_nodes, l) : 0.0;
      const double n_dists =
          nmcm != nullptr ? LevelValue(nmcm->level_distances, l) : 0.0;
      const double l_dists =
          lmcm != nullptr ? LevelValue(lmcm->level_distances, l) : 0.0;
      std::vector<std::string> row = {
          std::to_string(l + 1), TablePrinter::Num(n_nodes),
          TablePrinter::Num(l_nodes),
          std::to_string(actual.node_visits),
          TablePrinter::Num(Residual(
              static_cast<double>(actual.node_visits), n_nodes), 1),
          TablePrinter::Num(n_dists), TablePrinter::Num(l_dists)};
      if (witness != nullptr) {
        row.push_back(TablePrinter::Num(LevelValue(witness->level_distances,
                                                   l)));
      }
      row.push_back(std::to_string(actual.distances));
      if (witness != nullptr) {
        row.push_back(std::to_string(actual.witness_avoided));
      }
      levels.AddRow(std::move(row));
    }
    levels.Print(out);
  }

  out << "\nprune reasons:\n";
  for (size_t i = 0; i < kNumPruneReasons; ++i) {
    if (report.prunes_by_reason[i] == 0) continue;
    out << "  " << ToString(static_cast<PruneReason>(i)) << ": "
        << report.prunes_by_reason[i] << "\n";
  }

  out << "\nphase times:\n";
  {
    TablePrinter phases({"phase", "us", "% of wall"});
    for (size_t i = 0; i < kNumQueryPhases; ++i) {
      const uint64_t ns = report.stats.phase_ns[i];
      if (ns == 0) continue;
      const double us = static_cast<double>(ns) / 1e3;
      const double pct = report.latency_us > 0.0
                             ? us / report.latency_us * 100.0
                             : 0.0;
      // Planning happens before the query runs, so a fraction of the
      // query's wall time would be meaningless for it.
      const bool is_plan = static_cast<QueryPhase>(i) == QueryPhase::kPlan;
      phases.AddRow({ToString(static_cast<QueryPhase>(i)),
                     TablePrinter::Num(us, 1),
                     is_plan ? "-" : TablePrinter::Num(pct, 1)});
    }
    phases.Print(out);
  }

  out << "\nresults: " << report.num_results
      << "  latency: " << TablePrinter::Num(report.latency_us, 1)
      << " us  buffer hits/misses: " << report.stats.buffer_hits << "/"
      << report.stats.buffer_misses;
  if (report.stats.distance_calcs_avoided_by_witness > 0) {
    out << "  witness-avoided distances: "
        << report.stats.distance_calcs_avoided_by_witness;
  }
  if (report.trace_dropped > 0) {
    out << "  (trace dropped " << report.trace_dropped << " events)";
  }
  out << "\n";
  return out.str();
}

std::string RenderExplainJson(const ExplainReport& report) {
  JsonObjectBuilder root;
  root.Add("kind", report.kind);
  if (report.kind == "range") {
    root.Add("radius", report.radius);
  } else {
    root.Add("k", static_cast<uint64_t>(report.k));
  }

  {
    JsonObjectBuilder index;
    index.Add("num_objects", static_cast<uint64_t>(report.num_objects));
    index.Add("height", report.height);
    index.Add("num_nodes", static_cast<uint64_t>(report.num_nodes));
    index.Add("node_size_bytes",
              static_cast<uint64_t>(report.node_size_bytes));
    index.Add("d_plus", report.d_plus);
    root.AddRaw("index", index.Build());
  }

  {
    JsonObjectBuilder plan;
    plan.Add("access_path", report.access_path);
    plan.Add("index_ms", report.index_ms);
    plan.Add("sequential_ms", report.sequential_ms);
    root.AddRaw("plan", plan.Build());
  }

  {
    std::string arr = "[";
    for (size_t i = 0; i < report.predictions.size(); ++i) {
      const auto& p = report.predictions[i];
      if (i > 0) arr += ",";
      JsonObjectBuilder model;
      model.Add("model", p.model);
      model.Add("nodes", p.nodes);
      model.Add("distances", p.distances);
      model.AddNumberArray("level_nodes", p.level_nodes);
      model.AddNumberArray("level_distances", p.level_distances);
      arr += model.Build();
    }
    arr += "]";
    root.AddRaw("predictions", arr);
  }

  {
    JsonObjectBuilder actual;
    actual.Add("nodes", report.stats.nodes_accessed);
    actual.Add("distances", report.stats.distance_computations);
    actual.Add("pruned", report.stats.nodes_pruned);
    actual.Add("witness_avoided",
               report.stats.distance_calcs_avoided_by_witness);
    actual.Add("buffer_hits", report.stats.buffer_hits);
    actual.Add("buffer_misses", report.stats.buffer_misses);
    actual.Add("results", static_cast<uint64_t>(report.num_results));
    actual.Add("latency_us", report.latency_us);
    std::string levels = "[";
    for (size_t l = 0; l < report.level_actuals.size(); ++l) {
      const auto& a = report.level_actuals[l];
      if (l > 0) levels += ",";
      JsonObjectBuilder level;
      level.Add("level", static_cast<uint64_t>(l + 1));
      level.Add("nodes", a.node_visits);
      level.Add("distances", a.distances);
      level.Add("entries_scanned", a.entries_scanned);
      level.Add("entries_pruned", a.entries_pruned);
      level.Add("subtree_prunes", a.subtree_prunes);
      level.Add("witness_avoided", a.witness_avoided);
      levels += level.Build();
    }
    levels += "]";
    actual.AddRaw("levels", levels);
    JsonObjectBuilder prunes;
    for (size_t i = 0; i < kNumPruneReasons; ++i) {
      if (report.prunes_by_reason[i] == 0) continue;
      prunes.Add(ToString(static_cast<PruneReason>(i)),
                 report.prunes_by_reason[i]);
    }
    actual.AddRaw("prunes", prunes.Build());
    actual.Add("trace_dropped", report.trace_dropped);
    root.AddRaw("actual", actual.Build());
  }

  {
    JsonObjectBuilder phases;
    for (size_t i = 0; i < kNumQueryPhases; ++i) {
      phases.Add(ToString(static_cast<QueryPhase>(i)),
                 static_cast<double>(report.stats.phase_ns[i]) / 1e3);
    }
    root.AddRaw("phase_us", phases.Build());
  }

  return root.Build();
}

}  // namespace mcm
