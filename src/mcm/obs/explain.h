// EXPLAIN report: everything the cost model predicted about one query next
// to everything the instrumented execution measured — chosen access path
// and why, per-level N-MCM / L-MCM node and distance predictions with
// actuals and residuals, the prune-reason breakdown, and the phase-time
// table. The report itself is plain data; cost/explain.h fills it from an
// index + cost-model pair, and the renderers here produce the human (text)
// and machine (JSON, see scripts/explain_schema checks) forms.

#ifndef MCM_OBS_EXPLAIN_H_
#define MCM_OBS_EXPLAIN_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mcm/common/query_stats.h"
#include "mcm/obs/trace.h"

namespace mcm {

/// One cost model's prediction for the explained query.
struct ExplainModelPrediction {
  std::string model;        ///< "nmcm" or "lmcm".
  double nodes = 0.0;       ///< Expected node reads.
  double distances = 0.0;   ///< Expected distance computations.
  std::vector<double> level_nodes;      ///< Index l-1 = level l (root = 1).
  std::vector<double> level_distances;  ///< Same layout.
};

/// Measured per-level tallies (from the query's trace).
struct ExplainLevelActual {
  uint64_t node_visits = 0;
  uint64_t distances = 0;
  uint64_t entries_scanned = 0;
  uint64_t entries_pruned = 0;
  uint64_t subtree_prunes = 0;
  uint64_t witness_avoided = 0;  ///< Evaluations cut by the witness cascade.
};

/// The full predicted-vs-actual story of one query execution.
struct ExplainReport {
  // Query.
  std::string kind;     ///< "range" or "knn".
  double radius = 0.0;  ///< Range queries.
  size_t k = 0;         ///< k-NN queries.

  // Index shape.
  size_t num_objects = 0;
  uint32_t height = 0;
  size_t num_nodes = 0;
  size_t node_size_bytes = 0;
  double d_plus = 0.0;  ///< BRM distance bound used as the root radius.

  // Plan: the optimizer's access-path decision and its cost estimates.
  std::string access_path;     ///< "index-scan" or "sequential-scan".
  double index_ms = 0.0;       ///< Predicted index-execution time.
  double sequential_ms = 0.0;  ///< Predicted sequential-scan time.

  // Model predictions (one entry per model; nmcm then lmcm).
  std::vector<ExplainModelPrediction> predictions;

  // Actuals.
  QueryStats stats;          ///< Counters + per-phase nanoseconds.
  size_t num_results = 0;
  double latency_us = 0.0;   ///< Wall time of the query call.
  std::vector<ExplainLevelActual> level_actuals;  ///< Index l-1 = level l.
  std::array<uint64_t, kNumPruneReasons> prunes_by_reason{};
  uint64_t trace_dropped = 0;
};

/// Human-readable rendering: summary lines plus aligned per-level and
/// phase-time tables.
std::string RenderExplainText(const ExplainReport& report);

/// One JSON object (parseable by obs/export.h's ParseJson) with the same
/// content; scripts/check_explain_json.py validates this shape.
std::string RenderExplainJson(const ExplainReport& report);

}  // namespace mcm

#endif  // MCM_OBS_EXPLAIN_H_
