#include "mcm/obs/export.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace mcm {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) {
    return "null";
  }
  char buf[32];
  // %.17g round-trips any double; trim to the shortest representation that
  // still parses back exactly.
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) {
      break;
    }
  }
  return buf;
}

void JsonObjectBuilder::Add(const std::string& key, const std::string& value) {
  fields_.emplace_back(key, "\"" + JsonEscape(value) + "\"");
}

void JsonObjectBuilder::Add(const std::string& key, const char* value) {
  Add(key, std::string(value));
}

void JsonObjectBuilder::Add(const std::string& key, double value) {
  fields_.emplace_back(key, JsonNumber(value));
}

void JsonObjectBuilder::Add(const std::string& key,
                            unsigned long long value) {
  fields_.emplace_back(key, std::to_string(value));
}

void JsonObjectBuilder::Add(const std::string& key, unsigned long value) {
  fields_.emplace_back(key, std::to_string(value));
}

void JsonObjectBuilder::Add(const std::string& key, unsigned value) {
  fields_.emplace_back(key, std::to_string(value));
}

void JsonObjectBuilder::Add(const std::string& key, long value) {
  fields_.emplace_back(key, std::to_string(value));
}

void JsonObjectBuilder::Add(const std::string& key, int value) {
  fields_.emplace_back(key, std::to_string(value));
}

void JsonObjectBuilder::Add(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
}

void JsonObjectBuilder::AddRaw(const std::string& key,
                               const std::string& raw_json) {
  fields_.emplace_back(key, raw_json);
}

void JsonObjectBuilder::AddNumberArray(const std::string& key,
                                       const std::vector<double>& values) {
  std::string raw = "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) raw += ",";
    raw += JsonNumber(values[i]);
  }
  raw += "]";
  fields_.emplace_back(key, raw);
}

std::string JsonObjectBuilder::Build() const {
  std::string out = "{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(fields_[i].first) + "\":" + fields_[i].second;
  }
  out += "}";
  return out;
}

JsonlWriter::JsonlWriter(const std::string& path)
    : path_(path), file_(std::fopen(path.c_str(), "w")) {}

JsonlWriter::~JsonlWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

void JsonlWriter::WriteLine(const std::string& json) {
  if (file_ == nullptr) {
    return;
  }
  std::fwrite(json.data(), 1, json.size(), file_);
  std::fputc('\n', file_);
  ++lines_;
}

void JsonlWriter::Flush() {
  if (file_ != nullptr) {
    std::fflush(file_);
  }
}

namespace {

std::string CsvQuote(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) {
    return cell;
  }
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path),
      file_(std::fopen(path.c_str(), "w")),
      width_(header.size()) {
  WriteCells(header);
}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  std::vector<std::string> padded = cells;
  padded.resize(width_);
  WriteCells(padded);
}

void CsvWriter::WriteCells(const std::vector<std::string>& cells) {
  if (file_ == nullptr) {
    return;
  }
  std::string line;
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) line += ",";
    line += CsvQuote(cells[i]);
  }
  line += "\n";
  std::fwrite(line.data(), 1, line.size(), file_);
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  const auto it = object_value.find(key);
  return it == object_value.end() ? nullptr : &it->second;
}

namespace {

/// Recursive-descent JSON parser over [pos, text.size()).
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  std::optional<JsonValue> Parse() {
    SkipWhitespace();
    JsonValue v;
    if (!ParseValue(&v)) {
      return std::nullopt;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return std::nullopt;  // Trailing garbage.
    }
    return v;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* lit) {
    const size_t len = std::strlen(lit);
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = true;
        return ConsumeLiteral("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = false;
        return ConsumeLiteral("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return ConsumeLiteral("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    if (!Consume('{')) return false;
    SkipWhitespace();
    if (Consume('}')) return true;
    while (true) {
      SkipWhitespace();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWhitespace();
      if (!Consume(':')) return false;
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object_value.emplace(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    if (!Consume('[')) return false;
    SkipWhitespace();
    if (Consume(']')) return true;
    while (true) {
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array_value.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          const std::string hex = text_.substr(pos_, 4);
          char* end = nullptr;
          const long code = std::strtol(hex.c_str(), &end, 16);
          if (end != hex.c_str() + 4) return false;
          pos_ += 4;
          // Artifact strings are ASCII; anything else degrades to '?'.
          *out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          return false;
      }
    }
    return false;  // Unterminated string.
  }

  bool ParseNumber(JsonValue* out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) {
      return false;
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number_value = v;
    pos_ += static_cast<size_t>(end - start);
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> ParseJson(const std::string& text) {
  return JsonParser(text).Parse();
}

}  // namespace mcm
