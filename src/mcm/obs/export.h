// Machine-readable sinks for the observability layer: a small JSON object
// builder, JSON Lines / CSV file writers, and a minimal JSON parser used to
// validate emitted artifacts (tests and the bench self-check round-trip
// every record through it).

#ifndef MCM_OBS_EXPORT_H_
#define MCM_OBS_EXPORT_H_

#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace mcm {

/// Escapes `s` for use inside a JSON string literal (quotes not included).
std::string JsonEscape(const std::string& s);

/// Formats a double as JSON: shortest round-trippable decimal; NaN and
/// infinities (which JSON cannot represent) become null.
std::string JsonNumber(double v);

/// Builds one flat JSON object, preserving insertion order.
class JsonObjectBuilder {
 public:
  void Add(const std::string& key, const std::string& value);
  void Add(const std::string& key, const char* value);
  void Add(const std::string& key, double value);
  void Add(const std::string& key, unsigned long long value);
  void Add(const std::string& key, unsigned long value);
  void Add(const std::string& key, unsigned value);
  void Add(const std::string& key, long value);
  void Add(const std::string& key, int value);
  void Add(const std::string& key, bool value);
  /// Inserts `raw_json` verbatim (nested objects/arrays).
  void AddRaw(const std::string& key, const std::string& raw_json);
  void AddNumberArray(const std::string& key,
                      const std::vector<double>& values);

  bool empty() const { return fields_.empty(); }
  std::string Build() const;  ///< "{...}".

 private:
  std::vector<std::pair<std::string, std::string>> fields_;  // key -> raw.
};

/// Appends JSON records to a file, one per line (JSON Lines).
class JsonlWriter {
 public:
  /// Opens `path` for writing (truncates). ok() reports failure.
  explicit JsonlWriter(const std::string& path);
  ~JsonlWriter();

  JsonlWriter(const JsonlWriter&) = delete;
  JsonlWriter& operator=(const JsonlWriter&) = delete;

  void WriteLine(const std::string& json);
  void Flush();
  bool ok() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }
  size_t lines_written() const { return lines_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  size_t lines_ = 0;
};

/// Writes CSV rows with a fixed header; cells containing separators or
/// quotes are quoted per RFC 4180.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, const std::vector<std::string>& header);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Pads or truncates `cells` to the header width.
  void WriteRow(const std::vector<std::string>& cells);
  bool ok() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

 private:
  void WriteCells(const std::vector<std::string>& cells);

  std::string path_;
  std::FILE* file_ = nullptr;
  size_t width_ = 0;
};

/// Parsed JSON value (null, bool, number, string, array, object). Only what
/// the artifact schema needs — numbers are doubles, objects are maps.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array_value;
  std::map<std::string, JsonValue> object_value;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
};

/// Parses one JSON document (the whole string must be consumed apart from
/// trailing whitespace). Returns nullopt on malformed input.
std::optional<JsonValue> ParseJson(const std::string& text);

}  // namespace mcm

#endif  // MCM_OBS_EXPORT_H_
