#include "mcm/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <stdexcept>

#include "mcm/common/env.h"
#include "mcm/obs/export.h"

namespace mcm {

namespace {

int g_obs_override = -1;  // -1 = use environment, 0/1 = forced.

}  // namespace

bool ObsEnabled() {
  if (g_obs_override >= 0) {
    return g_obs_override != 0;
  }
  static const bool enabled = GetEnvInt("MCM_OBS", 0) != 0;
  return enabled;
}

void SetObsEnabledForTesting(bool enabled) {
  g_obs_override = enabled ? 1 : 0;
}

void SetObsEnabled(bool enabled) { g_obs_override = enabled ? 1 : 0; }

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::invalid_argument(
          "Histogram: bounds must be strictly increasing");
    }
  }
}

void Histogram::Observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const size_t idx = static_cast<size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::ObserveWithExemplar(double v, uint64_t query_id) {
  Observe(v);
  // Last-write-wins; the three stores are not atomic as a group, but an
  // exemplar is diagnostic breadcrumb data, not an exact tally.
  exemplar_value_.store(v, std::memory_order_relaxed);
  exemplar_query_.store(query_id, std::memory_order_relaxed);
  has_exemplar_.store(true, std::memory_order_release);
}

bool Histogram::LastExemplar(double* value, uint64_t* query_id) const {
  if (!has_exemplar_.load(std::memory_order_acquire)) {
    return false;
  }
  *value = exemplar_value_.load(std::memory_order_relaxed);
  *query_id = exemplar_query_.load(std::memory_order_relaxed);
  return true;
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::Sum() const { return sum_.load(std::memory_order_relaxed); }

double Histogram::Mean() const {
  const uint64_t n = Count();
  return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
}

double Histogram::Quantile(double p) const {
  const std::vector<uint64_t> counts = BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) {
    return 0.0;
  }
  p = std::min(std::max(p, 0.0), 1.0);
  const double target = p * static_cast<double>(total);
  double cum = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const double next = cum + static_cast<double>(counts[i]);
    if (next >= target) {
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      if (i == bounds_.size()) {
        return lo;  // Overflow bucket: no upper bound to interpolate to.
      }
      const double hi = bounds_[i];
      const double frac =
          counts[i] == 0
              ? 0.0
              : (target - cum) / static_cast<double>(counts[i]);
      return lo + frac * (hi - lo);
    }
    cum = next;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

std::vector<double> DefaultLatencyBoundsUs() {
  std::vector<double> bounds;
  for (double b = 1.0; b <= 1e7; b *= std::sqrt(10.0)) {
    bounds.push_back(b);
  }
  return bounds;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  MutexLock lock(&mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(bounds);
  }
  return *slot;
}

void MetricsRegistry::WriteJsonl(std::ostream& out) const {
  MutexLock lock(&mu_);
  for (const auto& [name, counter] : counters_) {
    JsonObjectBuilder o;
    o.Add("metric", name);
    o.Add("type", "counter");
    o.Add("value", counter->Value());
    out << o.Build() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    JsonObjectBuilder o;
    o.Add("metric", name);
    o.Add("type", "gauge");
    o.Add("value", gauge->Value());
    out << o.Build() << "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    JsonObjectBuilder o;
    o.Add("metric", name);
    o.Add("type", "histogram");
    o.Add("count", hist->Count());
    o.Add("mean", hist->Mean());
    o.Add("p50", hist->Quantile(0.50));
    o.Add("p95", hist->Quantile(0.95));
    const auto counts = hist->BucketCounts();
    std::vector<double> as_doubles(counts.begin(), counts.end());
    o.AddNumberArray("buckets", as_doubles);
    o.AddNumberArray("bounds", hist->bounds());
    out << o.Build() << "\n";
  }
}

void MetricsRegistry::WriteText(std::ostream& out) const {
  MutexLock lock(&mu_);
  for (const auto& [name, counter] : counters_) {
    out << name << " = " << counter->Value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out << name << " = " << gauge->Value() << "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    out << name << ": count=" << hist->Count() << " mean=" << std::fixed
        << std::setprecision(2) << hist->Mean()
        << " p50=" << hist->Quantile(0.50) << " p95=" << hist->Quantile(0.95)
        << "\n";
  }
}

namespace {

// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*; our registry
// names use dots ("mcm.phase.plan.us"), so map everything else to '_'.
std::string PromName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string PromDouble(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return JsonNumber(v);
}

}  // namespace

void MetricsRegistry::WritePrometheus(std::ostream& out) const {
  MutexLock lock(&mu_);
  for (const auto& [name, counter] : counters_) {
    const std::string p = PromName(name);
    out << "# TYPE " << p << " counter\n";
    out << p << " " << counter->Value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string p = PromName(name);
    out << "# TYPE " << p << " gauge\n";
    out << p << " " << PromDouble(gauge->Value()) << "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    const std::string p = PromName(name);
    out << "# TYPE " << p << " histogram\n";
    double ex_value = 0.0;
    uint64_t ex_query = 0;
    if (hist->LastExemplar(&ex_value, &ex_query)) {
      out << "# " << p << " exemplar {query_id=\"" << ex_query
          << "\"} " << PromDouble(ex_value) << "\n";
    }
    const auto counts = hist->BucketCounts();
    const auto& bounds = hist->bounds();
    uint64_t cumulative = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
      cumulative += counts[i];
      const std::string le =
          i < bounds.size() ? PromDouble(bounds[i]) : "+Inf";
      out << p << "_bucket{le=\"" << le << "\"} " << cumulative << "\n";
    }
    out << p << "_sum " << PromDouble(hist->Sum()) << "\n";
    out << p << "_count " << hist->Count() << "\n";
  }
}

void MetricsRegistry::Clear() {
  MutexLock lock(&mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace mcm
