// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms. All instruments are thread-safe (atomic updates after a
// mutex-guarded registration) and the whole layer is opt-in: helpers gate on
// ObsEnabled(), which reads the MCM_OBS environment flag once, so an
// uninstrumented run pays a single cached branch per call site at most.

#ifndef MCM_OBS_METRICS_H_
#define MCM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "mcm/common/mutex.h"
#include "mcm/common/thread_annotations.h"

namespace mcm {

/// True when observability is switched on (MCM_OBS=1 in the environment).
/// The environment is read once on first call and cached.
bool ObsEnabled();

/// Overrides the cached MCM_OBS value (tests only; not thread-safe with
/// concurrent ObsEnabled() callers).
void SetObsEnabledForTesting(bool enabled);

/// Programmatic equivalent of exporting MCM_OBS=1 before startup: forces
/// observability on (or off) for the rest of the process. Used by tools
/// (mcm_explain) that need phase timers regardless of the environment.
/// Same caveat as SetObsEnabledForTesting: call before spawning threads.
void SetObsEnabled(bool enabled);

/// Monotonically increasing counter.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written scalar value (e.g. pool occupancy, tree height).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram of double-valued observations. Bucket i counts
/// observations v with v <= bounds[i]; one extra overflow bucket counts the
/// rest. Bounds are strictly increasing and fixed at registration.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  /// Observe() plus a last-write-wins exemplar: the query id of the most
  /// recent observation, surfaced in the Prometheus export (OpenMetrics
  /// `# {query_id="..."}` style comment) so a spike can be traced back to
  /// a concrete query.
  void ObserveWithExemplar(double v, uint64_t query_id);

  /// True when at least one exemplar was recorded; fills the outputs.
  bool LastExemplar(double* value, uint64_t* query_id) const;

  /// Per-bucket counts: bounds().size() + 1 entries (last = overflow).
  std::vector<uint64_t> BucketCounts() const;
  const std::vector<double>& bounds() const { return bounds_; }
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const;
  double Mean() const;

  /// Approximate p-quantile (p in [0,1]) by linear interpolation within the
  /// owning bucket; the overflow bucket reports its lower bound.
  double Quantile(double p) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1.
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<bool> has_exemplar_{false};
  std::atomic<double> exemplar_value_{0.0};
  std::atomic<uint64_t> exemplar_query_{0};
};

/// Default latency bucket bounds (microseconds): 1us .. ~10s, log-spaced.
std::vector<double> DefaultLatencyBoundsUs();

/// Registry of named instruments. Instrument pointers are stable for the
/// registry's lifetime; lookups are mutex-guarded, updates are lock-free.
class MetricsRegistry {
 public:
  /// The process-wide registry used by the query-path helpers.
  static MetricsRegistry& Global();

  /// Returns the counter registered under `name`, creating it on first use.
  Counter& GetCounter(const std::string& name) MCM_EXCLUDES(mu_);
  Gauge& GetGauge(const std::string& name) MCM_EXCLUDES(mu_);

  /// Returns the histogram under `name`; `bounds` is consulted only on
  /// first use (subsequent callers share the original buckets).
  Histogram& GetHistogram(const std::string& name,
                          const std::vector<double>& bounds)
      MCM_EXCLUDES(mu_);

  /// One JSON object per line: {"metric":name,"type":...,...}.
  void WriteJsonl(std::ostream& out) const MCM_EXCLUDES(mu_);

  /// Human-readable dump (sorted by name).
  void WriteText(std::ostream& out) const MCM_EXCLUDES(mu_);

  /// Prometheus text-exposition snapshot: counters, gauges, and histograms
  /// (`_bucket{le=...}` cumulative, `_sum`, `_count`), with the last
  /// exemplar query id attached to each histogram as an OpenMetrics-style
  /// comment. Metric names have non-[a-zA-Z0-9_:] characters mapped to '_'.
  void WritePrometheus(std::ostream& out) const MCM_EXCLUDES(mu_);

  /// Drops every registered instrument (tests only; callers holding
  /// instrument references must not use them afterwards).
  void Clear() MCM_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      MCM_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ MCM_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      MCM_GUARDED_BY(mu_);
};

}  // namespace mcm

#endif  // MCM_OBS_METRICS_H_
