#include "mcm/obs/phase.h"

#include <atomic>

namespace mcm {

const char* ToString(QueryPhase phase) {
  switch (phase) {
    case QueryPhase::kPlan:
      return "plan";
    case QueryPhase::kTraverse:
      return "traverse";
    case QueryPhase::kDistanceEval:
      return "distance_eval";
    case QueryPhase::kPageRead:
      return "page_read";
    case QueryPhase::kDecode:
      return "decode";
    case QueryPhase::kCollect:
      return "collect";
    case QueryPhase::kPrefetch:
      return "prefetch";
  }
  return "unknown";
}

uint32_t CurrentThreadLane() {
  static std::atomic<uint32_t> next_lane{0};
  thread_local const uint32_t lane =
      next_lane.fetch_add(1, std::memory_order_relaxed);
  return lane;
}

std::string PhaseHistogramName(QueryPhase phase) {
  return std::string("mcm.phase.") + ToString(phase) + ".us";
}

void ObservePhaseTimes(const QueryStats& st, uint64_t query_id) {
  if (!ObsEnabled()) return;
  auto& registry = MetricsRegistry::Global();
  for (size_t i = 0; i < kNumQueryPhases; ++i) {
    if (st.phase_ns[i] == 0) continue;
    const QueryPhase phase = static_cast<QueryPhase>(i);
    auto& hist = registry.GetHistogram(PhaseHistogramName(phase),
                                       DefaultLatencyBoundsUs());
    hist.ObserveWithExemplar(static_cast<double>(st.phase_ns[i]) / 1e3,
                             query_id);
  }
  if (st.distance_calcs_avoided_by_witness > 0) {
    registry.GetCounter("mcm.witness.avoided_distance_calcs")
        .Increment(st.distance_calcs_avoided_by_witness);
  }
}

}  // namespace mcm
