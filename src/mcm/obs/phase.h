// Phase timers: ScopedSpan stamps a QueryPhase interval into
// QueryStats::phase_ns (and, when a PhaseSpanLog is attached, appends a
// begin/end span for the Chrome-trace exporter). Everything is gated on
// ObsEnabled(): with MCM_OBS off a span costs one cached branch and never
// touches the clock, so query answers and counters stay bit-identical.

#ifndef MCM_OBS_PHASE_H_
#define MCM_OBS_PHASE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mcm/common/clock.h"
#include "mcm/common/query_stats.h"
#include "mcm/obs/metrics.h"

namespace mcm {

/// One completed phase interval. Timestamps are MonotonicNanos() values;
/// `lane` is a small dense id for the recording thread (Chrome-trace tid).
struct PhaseSpan {
  QueryPhase phase = QueryPhase::kPlan;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  uint32_t lane = 0;
};

/// A small dense id for the calling thread, stable for the thread's
/// lifetime. Used as the Chrome-trace thread lane.
uint32_t CurrentThreadLane();

/// Capped append-only log of completed spans for one query. Not
/// thread-safe: each query owns its log (the batch executor hands every
/// worker its own slot).
class PhaseSpanLog {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  explicit PhaseSpanLog(size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  void Append(QueryPhase phase, uint64_t start_ns, uint64_t end_ns) {
    if (spans_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    spans_.push_back(PhaseSpan{phase, start_ns, end_ns, CurrentThreadLane()});
  }

  void Clear() {
    spans_.clear();
    dropped_ = 0;
  }

  const std::vector<PhaseSpan>& spans() const { return spans_; }
  uint64_t dropped() const { return dropped_; }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  std::vector<PhaseSpan> spans_;
  uint64_t dropped_ = 0;
};

/// RAII phase timer. Arms only when `st` is non-null and ObsEnabled();
/// otherwise construction and destruction are a cached branch each.
/// On destruction adds the elapsed nanoseconds to st->phase_ns[phase] and,
/// if st->spans is attached, appends the interval there.
class ScopedSpan {
 public:
  ScopedSpan(QueryStats* st, QueryPhase phase) : st_(nullptr), phase_(phase) {
    if (st != nullptr && ObsEnabled()) {
      st_ = st;
      start_ns_ = MonotonicNanos();
    }
  }

  ~ScopedSpan() {
    if (st_ == nullptr) return;
    const uint64_t end_ns = MonotonicNanos();
    st_->phase_ns[static_cast<size_t>(phase_)] += end_ns - start_ns_;
    if (st_->spans != nullptr) st_->spans->Append(phase_, start_ns_, end_ns);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// True when this span is actually recording (obs on and stats attached).
  bool armed() const { return st_ != nullptr; }

 private:
  QueryStats* st_;
  QueryPhase phase_;
  uint64_t start_ns_ = 0;
};

/// Manual start/stop variant of ScopedSpan for non-lexical phases.
class PhaseTimer {
 public:
  explicit PhaseTimer(QueryStats* st) : st_(st) {}

  void Start(QueryPhase phase) {
    if (st_ == nullptr || !ObsEnabled()) return;
    phase_ = phase;
    start_ns_ = MonotonicNanos();
    running_ = true;
  }

  void Stop() {
    if (!running_) return;
    running_ = false;
    const uint64_t end_ns = MonotonicNanos();
    st_->phase_ns[static_cast<size_t>(phase_)] += end_ns - start_ns_;
    if (st_->spans != nullptr) st_->spans->Append(phase_, start_ns_, end_ns);
  }

 private:
  QueryStats* st_;
  QueryPhase phase_ = QueryPhase::kPlan;
  uint64_t start_ns_ = 0;
  bool running_ = false;
};

/// Metrics-registry name of the latency histogram for `phase`
/// ("mcm.phase.<name>.us").
std::string PhaseHistogramName(QueryPhase phase);

/// Feeds st.phase_ns into the global registry's per-phase latency
/// histograms (microseconds), tagging each observation with `query_id` as
/// the Prometheus exemplar. No-op when obs is off or all totals are zero.
void ObservePhaseTimes(const QueryStats& st, uint64_t query_id);

}  // namespace mcm

#endif  // MCM_OBS_PHASE_H_
