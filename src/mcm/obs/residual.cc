#include "mcm/obs/residual.h"

#include <algorithm>
#include <cmath>

#include "mcm/common/numeric.h"

namespace mcm {

void ResidualStream::Add(double predicted, double actual) {
  rel_errors_.push_back(RelativeError(predicted, actual));
  sum_signed_ += actual != 0.0 ? (predicted - actual) / actual
                               : predicted - actual;
  sum_predicted_ += predicted;
  sum_actual_ += actual;
}

void ResidualStream::Clear() {
  rel_errors_.clear();
  sum_signed_ = 0.0;
  sum_predicted_ = 0.0;
  sum_actual_ = 0.0;
}

namespace {

/// p-quantile of `sorted` by linear interpolation between order statistics.
double SortedQuantile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(pos));
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

ResidualStats ResidualStream::Stats() const {
  ResidualStats stats;
  stats.count = rel_errors_.size();
  if (stats.count == 0) {
    return stats;
  }
  const double n = static_cast<double>(stats.count);
  double sum = 0.0;
  for (const double e : rel_errors_) sum += e;
  stats.mean_rel_err = sum / n;
  std::vector<double> sorted = rel_errors_;
  std::sort(sorted.begin(), sorted.end());
  stats.p50_rel_err = SortedQuantile(sorted, 0.50);
  stats.p95_rel_err = SortedQuantile(sorted, 0.95);
  stats.mean_signed = sum_signed_ / n;
  stats.mean_predicted = sum_predicted_ / n;
  stats.mean_actual = sum_actual_ / n;
  return stats;
}

ResidualStream& ResidualTracker::Stream(const std::string& name) {
  return streams_[name];
}

void ResidualTracker::AddLevelSamples(const std::string& model,
                                      const std::vector<double>& predicted,
                                      const std::vector<double>& actual) {
  const size_t levels = std::max(predicted.size(), actual.size());
  for (size_t i = 0; i < levels; ++i) {
    const double pred = i < predicted.size() ? predicted[i] : 0.0;
    const double act = i < actual.size() ? actual[i] : 0.0;
    Stream(model + "/level" + std::to_string(i + 1) + "/nodes")
        .Add(pred, act);
  }
}

std::vector<std::string> ResidualTracker::Names() const {
  std::vector<std::string> names;
  names.reserve(streams_.size());
  for (const auto& [name, stream] : streams_) {
    names.push_back(name);
  }
  return names;
}

ResidualStats ResidualTracker::StatsFor(const std::string& name) const {
  const auto it = streams_.find(name);
  return it == streams_.end() ? ResidualStats{} : it->second.Stats();
}

void ResidualTracker::Clear() { streams_.clear(); }

}  // namespace mcm
