// Residual tracking: pairs each executed query with a cost-model prediction
// and accumulates error statistics (mean / P50 / P95 relative error, mean
// signed bias) per named stream — one stream per model and cost dimension
// (e.g. "N-MCM/nodes") plus one per tree level for level-resolved models.

#ifndef MCM_OBS_RESIDUAL_H_
#define MCM_OBS_RESIDUAL_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace mcm {

/// Summary of one residual stream.
struct ResidualStats {
  size_t count = 0;
  double mean_rel_err = 0.0;  ///< Mean |pred - actual| / actual.
  double p50_rel_err = 0.0;
  double p95_rel_err = 0.0;
  double mean_signed = 0.0;   ///< Mean (pred - actual) / actual: + = model
                              ///< overestimates, - = underestimates.
  double mean_predicted = 0.0;
  double mean_actual = 0.0;
};

/// One stream of (predicted, actual) pairs.
class ResidualStream {
 public:
  void Add(double predicted, double actual);
  void Clear();

  size_t count() const { return rel_errors_.size(); }
  ResidualStats Stats() const;

 private:
  std::vector<double> rel_errors_;
  double sum_signed_ = 0.0;
  double sum_predicted_ = 0.0;
  double sum_actual_ = 0.0;
};

/// Named residual streams. Keys are free-form; the bench observer uses
/// "<model>/nodes", "<model>/dists", and "<model>/level<l>/nodes".
class ResidualTracker {
 public:
  /// Returns the stream under `name`, creating it on first use.
  ResidualStream& Stream(const std::string& name);

  /// Adds per-level samples: predicted[i] vs actual[i] feed stream
  /// "<model>/level<i+1>/nodes". Shorter of the two vectors wins; a level
  /// missing on one side is treated as 0 on that side.
  void AddLevelSamples(const std::string& model,
                       const std::vector<double>& predicted,
                       const std::vector<double>& actual);

  /// All stream names in sorted order.
  std::vector<std::string> Names() const;

  /// Stats of the stream under `name` (zeroes when absent).
  ResidualStats StatsFor(const std::string& name) const;

  bool empty() const { return streams_.empty(); }
  void Clear();

 private:
  std::map<std::string, ResidualStream> streams_;
};

}  // namespace mcm

#endif  // MCM_OBS_RESIDUAL_H_
