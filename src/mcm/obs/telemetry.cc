#include "mcm/obs/telemetry.h"

#include <fstream>

#include "mcm/common/env.h"
#include "mcm/obs/export.h"
#include "mcm/obs/metrics.h"

namespace mcm {

namespace {

// -1-style override globals, same idiom as g_obs_override in metrics.cc:
// namespace-scope (not function-static) so the mutable-static lint rule
// stays satisfied, set only from single-threaded test/tool setup code.
bool g_trace_out_overridden = false;
std::string g_trace_out_override;
bool g_metrics_out_overridden = false;
std::string g_metrics_out_override;

}  // namespace

const std::string& TraceOutPath() {
  if (g_trace_out_overridden) {
    return g_trace_out_override;
  }
  static const std::string* const path =
      new std::string(GetEnvString("MCM_TRACE_OUT", ""));
  return *path;
}

const std::string& MetricsOutPath() {
  if (g_metrics_out_overridden) {
    return g_metrics_out_override;
  }
  static const std::string* const path =
      new std::string(GetEnvString("MCM_METRICS_OUT", ""));
  return *path;
}

void SetTraceOutForTesting(const std::string& path) {
  g_trace_out_overridden = true;
  g_trace_out_override = path;
}

void SetMetricsOutForTesting(const std::string& path) {
  g_metrics_out_overridden = true;
  g_metrics_out_override = path;
}

TelemetrySink& TelemetrySink::Global() {
  static TelemetrySink* const sink = new TelemetrySink();
  return *sink;
}

void TelemetrySink::Submit(const PhaseSpanLog& log, uint64_t query_id) {
  if (log.spans().empty()) {
    return;
  }
  MutexLock lock(&mu_);
  queries_.push_back(QuerySpans{query_id, log.spans()});
}

std::vector<QuerySpans> TelemetrySink::Snapshot() const {
  MutexLock lock(&mu_);
  return queries_;
}

void TelemetrySink::Clear() {
  MutexLock lock(&mu_);
  queries_.clear();
}

size_t TelemetrySink::size() const {
  MutexLock lock(&mu_);
  return queries_.size();
}

void WriteChromeTrace(std::ostream& out,
                      const std::vector<QuerySpans>& queries) {
  // Rebase timestamps so the trace starts near t=0 (Chrome renders
  // microseconds since trace start).
  uint64_t base_ns = 0;
  bool have_base = false;
  for (const auto& q : queries) {
    for (const auto& s : q.spans) {
      if (!have_base || s.start_ns < base_ns) {
        base_ns = s.start_ns;
        have_base = true;
      }
    }
  }
  out << "[";
  bool first = true;
  for (const auto& q : queries) {
    for (const auto& s : q.spans) {
      if (!first) {
        out << ",\n ";
      }
      first = false;
      JsonObjectBuilder event;
      event.Add("name", ToString(s.phase));
      event.Add("cat", "query");
      event.Add("ph", "X");
      event.Add("ts", static_cast<double>(s.start_ns - base_ns) / 1e3);
      event.Add("dur", static_cast<double>(s.end_ns - s.start_ns) / 1e3);
      event.Add("pid", static_cast<uint64_t>(1));
      event.Add("tid", static_cast<uint64_t>(s.lane));
      event.AddRaw("args", "{\"query\":" + std::to_string(q.query_id) + "}");
      out << event.Build();
    }
  }
  out << "]\n";
}

int FlushTelemetry() {
  int written = 0;
  const std::string& trace_path = TraceOutPath();
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (out) {
      WriteChromeTrace(out, TelemetrySink::Global().Snapshot());
      TelemetrySink::Global().Clear();
      ++written;
    }
  }
  const std::string& metrics_path = MetricsOutPath();
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (out) {
      MetricsRegistry::Global().WritePrometheus(out);
      ++written;
    }
  }
  return written;
}

}  // namespace mcm
