// Export side of the phase-timer layer: a process-wide sink collecting
// per-query span logs, a Chrome-trace (Perfetto JSON array) writer, and a
// Prometheus snapshot writer for the metrics registry. Both exports hang
// off environment knobs — MCM_TRACE_OUT=<path> and MCM_METRICS_OUT=<path>
// — so any bench or example flushes them by calling FlushTelemetry() (the
// BenchObserver does this in Finish()).

#ifndef MCM_OBS_TELEMETRY_H_
#define MCM_OBS_TELEMETRY_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "mcm/common/mutex.h"
#include "mcm/common/thread_annotations.h"
#include "mcm/obs/phase.h"

namespace mcm {

/// Path of MCM_TRACE_OUT (empty = Chrome-trace export disabled). Read once
/// and cached; override with SetTraceOutForTesting.
const std::string& TraceOutPath();

/// Path of MCM_METRICS_OUT (empty = Prometheus export disabled).
const std::string& MetricsOutPath();

/// Overrides the cached export paths (tests/tools only; not thread-safe
/// with concurrent readers). Empty string disables the export.
void SetTraceOutForTesting(const std::string& path);
void SetMetricsOutForTesting(const std::string& path);

/// One query's spans as submitted to the sink.
struct QuerySpans {
  uint64_t query_id = 0;
  std::vector<PhaseSpan> spans;
};

/// Process-wide collector of completed span logs. The batch executor (and
/// the explain driver) submit each query's PhaseSpanLog here after the
/// query finishes; FlushTelemetry() serializes the accumulated spans as a
/// Chrome trace. Mutex-guarded: submissions come from worker threads.
class TelemetrySink {
 public:
  static TelemetrySink& Global();

  /// Copies `log`'s spans under `query_id`. No-op when the log is empty.
  void Submit(const PhaseSpanLog& log, uint64_t query_id)
      MCM_EXCLUDES(mu_);

  /// Snapshot of everything submitted since the last Clear().
  std::vector<QuerySpans> Snapshot() const MCM_EXCLUDES(mu_);

  void Clear() MCM_EXCLUDES(mu_);

  size_t size() const MCM_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::vector<QuerySpans> queries_ MCM_GUARDED_BY(mu_);
};

/// Serializes `queries` as a Chrome-trace JSON array of complete events
/// (ph:"X", ts/dur in microseconds, tid = recording thread's lane, with
/// the query id in args). Loadable in chrome://tracing and Perfetto.
void WriteChromeTrace(std::ostream& out,
                      const std::vector<QuerySpans>& queries);

/// Writes the pending exports, if configured: the global sink's spans as a
/// Chrome trace to TraceOutPath() and the global registry as a Prometheus
/// snapshot to MetricsOutPath(). Returns the number of files written.
/// Clears the sink after a successful trace write.
int FlushTelemetry();

}  // namespace mcm

#endif  // MCM_OBS_TELEMETRY_H_
