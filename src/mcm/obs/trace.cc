#include "mcm/obs/trace.h"

#include <algorithm>

namespace mcm {

const char* ToString(PruneReason reason) {
  switch (reason) {
    case PruneReason::kNone:
      return "none";
    case PruneReason::kParentFilter:
      return "parent_filter";
    case PruneReason::kCoveringRadius:
      return "covering_radius";
    case PruneReason::kKnnBound:
      return "knn_bound";
    case PruneReason::kRangeTable:
      return "range_table";
    case PruneReason::kShellBound:
      return "shell_bound";
    case PruneReason::kWitness:
      return "witness";
  }
  return "unknown";
}

QueryTrace::QueryTrace(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)) {}

void QueryTrace::Push(const TraceEvent& event) {
  if (events_.size() < capacity_) {
    events_.push_back(event);
    return;
  }
  events_[next_] = event;
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

TraceLevelTally& QueryTrace::LevelAt(uint32_t level) {
  const size_t idx = level == 0 ? 0 : level - 1;
  if (levels_.size() <= idx) {
    levels_.resize(idx + 1);
  }
  return levels_[idx];
}

void QueryTrace::RecordVisit(uint64_t node, uint32_t level,
                             uint32_t entries_scanned, uint32_t entries_pruned,
                             uint32_t distances, uint32_t witness_avoided) {
  TraceEvent e;
  e.kind = TraceEventKind::kNodeVisit;
  e.node = node;
  e.level = level;
  e.entries_scanned = entries_scanned;
  e.entries_pruned = entries_pruned;
  e.distances = distances;
  e.witness_avoided = witness_avoided;
  Push(e);
  ++total_visits_;
  TraceLevelTally& tally = LevelAt(level);
  ++tally.node_visits;
  tally.entries_scanned += entries_scanned;
  tally.entries_pruned += entries_pruned;
  tally.distances += distances;
  tally.witness_avoided += witness_avoided;
}

void QueryTrace::RecordPrune(uint64_t node, uint32_t level,
                             PruneReason reason) {
  TraceEvent e;
  e.kind = TraceEventKind::kPrune;
  e.node = node;
  e.level = level;
  e.reason = reason;
  Push(e);
  ++total_prunes_;
  ++prunes_by_reason_[static_cast<size_t>(reason)];
  ++LevelAt(level).subtree_prunes;
}

void QueryTrace::RecordBufferFetch(uint64_t node, bool hit) {
  TraceEvent e;
  e.kind = TraceEventKind::kBufferFetch;
  e.node = node;
  e.buffer_hit = hit;
  Push(e);
  if (hit) {
    ++buffer_hits_;
  } else {
    ++buffer_misses_;
  }
}

void QueryTrace::Clear() {
  events_.clear();
  next_ = 0;
  dropped_ = 0;
  total_visits_ = 0;
  total_prunes_ = 0;
  buffer_hits_ = 0;
  buffer_misses_ = 0;
  prunes_by_reason_.fill(0);
  levels_.clear();
}

std::vector<TraceEvent> QueryTrace::Events() const {
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  // When the ring wrapped, the oldest retained event sits at next_.
  for (size_t i = 0; i < events_.size(); ++i) {
    out.push_back(events_[(next_ + i) % events_.size()]);
  }
  return out;
}

std::vector<double> QueryTrace::LevelNodeVisits() const {
  std::vector<double> out(levels_.size());
  for (size_t i = 0; i < levels_.size(); ++i) {
    out[i] = static_cast<double>(levels_[i].node_visits);
  }
  return out;
}

}  // namespace mcm
