// Per-query trace: a capped ring buffer of events (node visits, subtree
// prunes, buffer-pool fetches) plus exact aggregate tallies that survive
// ring overflow. A QueryTrace is attached to a query by pointing
// QueryStats::trace at it; search paths emit events only when that pointer
// is non-null, so untraced queries pay one branch per event site.

#ifndef MCM_OBS_TRACE_H_
#define MCM_OBS_TRACE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mcm {

/// Why a subtree (or leaf entry) was skipped without computing its distance.
enum class PruneReason : uint8_t {
  kNone = 0,
  kParentFilter,    ///< M-tree stored-parent-distance lemma (optimized mode).
  kCoveringRadius,  ///< M-tree ball test d(Q,O_r) > r(N) + r_Q.
  kKnnBound,        ///< k-NN dynamic radius r_k cut the region off.
  kRangeTable,      ///< GNAT range-table elimination.
  kShellBound,      ///< vp-tree shell [lo, hi] misses the query ball.
  kWitness,         ///< Triangle-inequality bound from a reused witness
                    ///< distance (engine witness cascade).
};

/// Number of PruneReason values (for per-reason tally arrays).
inline constexpr size_t kNumPruneReasons = 7;

const char* ToString(PruneReason reason);

/// What a TraceEvent describes.
enum class TraceEventKind : uint8_t {
  kNodeVisit,    ///< A node was read and its entries examined.
  kPrune,        ///< A subtree was eliminated without visiting it.
  kBufferFetch,  ///< The storage layer served a page (hit or miss).
};

/// One trace event. Field meaning depends on `kind`:
///  kNodeVisit   — node, level, entries_scanned, entries_pruned, distances,
///                 witness_avoided.
///  kPrune       — node (the pruned child, when known), level, reason.
///  kBufferFetch — node (page id), buffer_hit.
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kNodeVisit;
  PruneReason reason = PruneReason::kNone;
  uint32_t level = 0;            ///< 1 = root; 0 = unknown.
  uint64_t node = 0;
  uint32_t entries_scanned = 0;  ///< Entries whose distance was computed.
  uint32_t entries_pruned = 0;   ///< Entries skipped by the parent filter.
  uint32_t distances = 0;        ///< Distance computations at this node.
  uint32_t witness_avoided = 0;  ///< Metric calls skipped by witness bounds.
  bool buffer_hit = false;
};

/// Exact per-level aggregates (kept even when the event ring overflows).
struct TraceLevelTally {
  uint64_t node_visits = 0;
  uint64_t entries_scanned = 0;
  uint64_t entries_pruned = 0;
  uint64_t distances = 0;
  uint64_t subtree_prunes = 0;
  uint64_t witness_avoided = 0;
};

class QueryTrace {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  /// `capacity` caps the retained events; older events are overwritten
  /// (ring buffer) and counted in dropped(). Aggregates stay exact.
  explicit QueryTrace(size_t capacity = kDefaultCapacity);

  void RecordVisit(uint64_t node, uint32_t level, uint32_t entries_scanned,
                   uint32_t entries_pruned, uint32_t distances,
                   uint32_t witness_avoided = 0);
  void RecordPrune(uint64_t node, uint32_t level, PruneReason reason);
  void RecordBufferFetch(uint64_t node, bool hit);

  /// Resets the trace for reuse on the next query.
  void Clear();

  /// Retained events in chronological order (oldest first). When the ring
  /// overflowed, the oldest dropped() events are missing from the front.
  std::vector<TraceEvent> Events() const;

  size_t size() const { return events_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t dropped() const { return dropped_; }

  uint64_t total_visits() const { return total_visits_; }
  uint64_t total_prunes() const { return total_prunes_; }
  uint64_t buffer_hits() const { return buffer_hits_; }
  uint64_t buffer_misses() const { return buffer_misses_; }

  /// Subtree prunes broken down by reason.
  const std::array<uint64_t, kNumPruneReasons>& prunes_by_reason() const {
    return prunes_by_reason_;
  }

  /// Index l-1 = tallies of level l (root = 1). Levels never seen are zero.
  const std::vector<TraceLevelTally>& levels() const { return levels_; }

  /// Node visits per level as doubles (index 0 = level 1) — the "actual"
  /// side of per-level residuals against the cost models.
  std::vector<double> LevelNodeVisits() const;

 private:
  void Push(const TraceEvent& event);
  TraceLevelTally& LevelAt(uint32_t level);

  size_t capacity_;
  std::vector<TraceEvent> events_;  // Ring once size() == capacity_.
  size_t next_ = 0;                 // Overwrite cursor when full.
  uint64_t dropped_ = 0;

  uint64_t total_visits_ = 0;
  uint64_t total_prunes_ = 0;
  uint64_t buffer_hits_ = 0;
  uint64_t buffer_misses_ = 0;
  std::array<uint64_t, kNumPruneReasons> prunes_by_reason_{};
  std::vector<TraceLevelTally> levels_;
};

}  // namespace mcm

#endif  // MCM_OBS_TRACE_H_
