// Predicted-cost admission control for the shard router. Two independent
// throttles, both fed by the cost model rather than by reactive signals:
//
//  - A node-read budget: each query declares its aggregate predicted node
//    reads (summed over the shards it will dispatch to) before executing;
//    queries whose demand would push the in-flight total past the budget
//    wait on a condition variable instead of thrashing the buffer pool.
//    Demand is clamped to the budget so an oversized query degrades to
//    "runs alone" rather than deadlocking.
//
//  - A per-shard concurrency cap: at most `per_shard_cap` queries touch
//    one shard's tree (and thus its pages) at a time.
//
// The mutex is never held across a shard search — tickets acquire, update
// a counter, and release — so no lock-order edge to the storage layer
// exists. Waits use explicit while-loop predicates (the CondVar contract
// in common/mutex.h, checkable by -Wthread-safety).

#ifndef MCM_SHARD_ADMISSION_H_
#define MCM_SHARD_ADMISSION_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "mcm/common/mutex.h"
#include "mcm/common/thread_annotations.h"

namespace mcm {
namespace shard {

/// Cost-model-driven throttle shared by every query a router executes.
/// Thread-safe; a disabled throttle (budget <= 0, cap == 0) is free.
class AdmissionController {
 public:
  AdmissionController(double node_budget, size_t per_shard_cap,
                      size_t num_shards)
      : budget_(node_budget),
        per_shard_cap_(per_shard_cap),
        shard_inflight_(num_shards, 0) {}

  bool budget_enabled() const { return budget_ > 0.0; }
  bool shard_cap_enabled() const { return per_shard_cap_ > 0; }

  /// Blocks until `predicted_nodes` (clamped to the budget) fits into the
  /// in-flight total, then claims it. No-op when the budget is off.
  void AdmitQuery(double predicted_nodes) MCM_EXCLUDES(mu_) {
    if (!budget_enabled()) return;
    const double demand = Demand(predicted_nodes);
    MutexLock lock(&mu_);
    bool waited = false;
    while (inflight_nodes_ > 0.0 && inflight_nodes_ + demand > budget_) {
      waited = true;
      cv_.Wait(mu_);
    }
    if (waited) ++queued_queries_;
    inflight_nodes_ += demand;
  }

  /// Returns a previously admitted query's claim.
  void ReleaseQuery(double predicted_nodes) MCM_EXCLUDES(mu_) {
    if (!budget_enabled()) return;
    MutexLock lock(&mu_);
    inflight_nodes_ -= Demand(predicted_nodes);
    if (inflight_nodes_ < 0.0) inflight_nodes_ = 0.0;
    cv_.NotifyAll();
  }

  /// Blocks until shard `s` has a free slot, then claims it. No-op when
  /// the per-shard cap is off.
  void EnterShard(size_t s) MCM_EXCLUDES(mu_) {
    if (!shard_cap_enabled()) return;
    MutexLock lock(&mu_);
    while (shard_inflight_[s] >= per_shard_cap_) {
      cv_.Wait(mu_);
    }
    ++shard_inflight_[s];
  }

  void LeaveShard(size_t s) MCM_EXCLUDES(mu_) {
    if (!shard_cap_enabled()) return;
    MutexLock lock(&mu_);
    --shard_inflight_[s];
    cv_.NotifyAll();
  }

  /// Queries that had to wait for budget at least once.
  uint64_t queued_queries() const MCM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return queued_queries_;
  }

 private:
  double Demand(double predicted_nodes) const {
    return std::min(std::max(predicted_nodes, 1.0), budget_);
  }

  const double budget_;
  const size_t per_shard_cap_;
  mutable Mutex mu_;
  CondVar cv_;
  double inflight_nodes_ MCM_GUARDED_BY(mu_) = 0.0;
  uint64_t queued_queries_ MCM_GUARDED_BY(mu_) = 0;
  std::vector<size_t> shard_inflight_ MCM_GUARDED_BY(mu_);
};

/// RAII claim on the router-wide node budget for one query.
class QueryTicket {
 public:
  QueryTicket(AdmissionController* controller, double predicted_nodes)
      : controller_(controller), predicted_nodes_(predicted_nodes) {
    controller_->AdmitQuery(predicted_nodes_);
  }
  ~QueryTicket() { controller_->ReleaseQuery(predicted_nodes_); }

  QueryTicket(const QueryTicket&) = delete;
  QueryTicket& operator=(const QueryTicket&) = delete;

 private:
  AdmissionController* controller_;
  double predicted_nodes_;
};

/// RAII claim on one shard's concurrency slot.
class ShardTicket {
 public:
  ShardTicket(AdmissionController* controller, size_t s)
      : controller_(controller), shard_(s) {
    controller_->EnterShard(shard_);
  }
  ~ShardTicket() { controller_->LeaveShard(shard_); }

  ShardTicket(const ShardTicket&) = delete;
  ShardTicket& operator=(const ShardTicket&) = delete;

 private:
  AdmissionController* controller_;
  size_t shard_;
};

}  // namespace shard
}  // namespace mcm

#endif  // MCM_SHARD_ADMISSION_H_
