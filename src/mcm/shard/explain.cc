#include "mcm/shard/explain.h"

#include <sstream>
#include <string>
#include <vector>

#include "mcm/common/table_printer.h"
#include "mcm/obs/export.h"

namespace mcm {
namespace shard {

std::string RenderShardExplainText(const ShardExplainReport& report) {
  std::ostringstream out;
  out << "Shard scatter (" << report.kind;
  if (report.kind == "range") {
    out << ", radius " << TablePrinter::Num(report.radius, 4);
  } else {
    out << ", k=" << report.k;
  }
  out << "): " << report.dispatched << "/" << report.num_shards
      << " shards dispatched, " << report.skipped << " skipped, "
      << report.results << " results\n";
  TablePrinter table({"shard", "objects", "decision", "lower_bound",
                      "pred nodes", "act nodes", "pred dists", "act dists",
                      "results", "radius sent"});
  for (const ShardExplainRow& row : report.rows) {
    table.AddRow({std::to_string(row.shard), std::to_string(row.objects),
                  row.reason, TablePrinter::Num(row.lower_bound, 4),
                  TablePrinter::Num(row.predicted_nodes, 1),
                  std::to_string(row.actual_nodes),
                  TablePrinter::Num(row.predicted_dists, 1),
                  std::to_string(row.actual_dists),
                  std::to_string(row.results),
                  row.dispatched ? TablePrinter::Num(row.radius_sent, 4)
                                 : "-"});
  }
  table.AddRow({"total", "", "", "",
                TablePrinter::Num(report.predicted_nodes, 1),
                std::to_string(report.actual_nodes), "",
                std::to_string(report.actual_dists),
                std::to_string(report.results), ""});
  table.Print(out);
  return out.str();
}

std::string RenderShardExplainJson(const ShardExplainReport& report) {
  std::string rows = "[";
  for (size_t i = 0; i < report.rows.size(); ++i) {
    const ShardExplainRow& row = report.rows[i];
    JsonObjectBuilder obj;
    obj.Add("shard", static_cast<unsigned long long>(row.shard));
    obj.Add("objects", static_cast<unsigned long long>(row.objects));
    obj.Add("dispatched", row.dispatched);
    obj.Add("reason", row.reason);
    obj.Add("lower_bound", row.lower_bound);
    obj.Add("predicted_nodes", row.predicted_nodes);
    obj.Add("predicted_dists", row.predicted_dists);
    obj.Add("actual_nodes",
            static_cast<unsigned long long>(row.actual_nodes));
    obj.Add("actual_dists",
            static_cast<unsigned long long>(row.actual_dists));
    obj.Add("results", static_cast<unsigned long long>(row.results));
    obj.Add("radius_sent", row.radius_sent);
    if (i > 0) rows += ",";
    rows += obj.Build();
  }
  rows += "]";

  JsonObjectBuilder obj;
  obj.Add("kind", report.kind);
  if (report.kind == "range") {
    obj.Add("radius", report.radius);
  } else {
    obj.Add("k", static_cast<unsigned long long>(report.k));
  }
  obj.Add("num_shards", static_cast<unsigned long long>(report.num_shards));
  obj.Add("dispatched", static_cast<unsigned long long>(report.dispatched));
  obj.Add("skipped", static_cast<unsigned long long>(report.skipped));
  obj.Add("predicted_nodes", report.predicted_nodes);
  obj.Add("actual_nodes",
          static_cast<unsigned long long>(report.actual_nodes));
  obj.Add("actual_dists",
          static_cast<unsigned long long>(report.actual_dists));
  obj.Add("results", static_cast<unsigned long long>(report.results));
  obj.AddRaw("rows", rows);
  return obj.Build();
}

}  // namespace shard
}  // namespace mcm
