// Per-shard predicted-vs-actual EXPLAIN report: one row per shard with
// the routing decision (dispatched / skipped, the proven lower bound),
// the N-MCM predictions the router ordered by, and the measured node /
// distance counters the shard search actually spent. Rendered as a text
// table for the CLI and as a JSON object mcm_explain embeds under the
// "shards" key.

#ifndef MCM_SHARD_EXPLAIN_H_
#define MCM_SHARD_EXPLAIN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mcm {
namespace shard {

/// One shard's routing decision and measured execution.
struct ShardExplainRow {
  size_t shard = 0;
  size_t objects = 0;           ///< Objects stored in the shard.
  bool dispatched = false;
  std::string reason;           ///< "dispatched", "skip:annulus", ...
  double lower_bound = 0.0;     ///< Proven min distance query -> shard.
  double predicted_nodes = 0.0;
  double predicted_dists = 0.0;
  uint64_t actual_nodes = 0;
  uint64_t actual_dists = 0;
  size_t results = 0;
  /// Radius the shard was actually searched with: the query radius for
  /// range, the running k-NN bound for later shards of a k-NN scatter
  /// (negative = full k-NN search, no bound yet).
  double radius_sent = -1.0;
};

/// The whole scatter: per-shard rows in dispatch order (skipped shards
/// trail in shard order), plus totals.
struct ShardExplainReport {
  std::string kind;          ///< "range" or "knn".
  double radius = 0.0;       ///< Range only.
  size_t k = 0;              ///< k-NN only.
  size_t num_shards = 0;
  size_t dispatched = 0;
  size_t skipped = 0;
  double predicted_nodes = 0.0;  ///< Sum over dispatched shards.
  uint64_t actual_nodes = 0;
  uint64_t actual_dists = 0;
  size_t results = 0;
  std::vector<ShardExplainRow> rows;
};

/// Formats the report as an aligned text table with a totals line.
std::string RenderShardExplainText(const ShardExplainReport& report);

/// Formats the report as one JSON object (nested "rows" array).
std::string RenderShardExplainJson(const ShardExplainReport& report);

}  // namespace shard
}  // namespace mcm

#endif  // MCM_SHARD_EXPLAIN_H_
