// Shard assignment: splits one logical object set into N member lists,
// either by hashing object ids (uniform, metric-blind) or by clustered
// pivot assignment (reservoir-sampled seeds, nearest-seed placement — the
// same seed-sampling idiom StreamBulkLoader uses for its partition pass).
// Clustered shards are metrically compact, which is what lets the router's
// per-shard distance distributions prove range queries empty (partition.h
// only produces memberships; the proof machinery lives in sharded_index.h
// and router.h).
//
// Everything here is deterministic: seeds come from common/random.h
// streams, ties in the nearest-seed test resolve toward the lower shard
// id, and member lists preserve the source ordering.

#ifndef MCM_SHARD_PARTITION_H_
#define MCM_SHARD_PARTITION_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "mcm/common/env.h"
#include "mcm/common/random.h"

namespace mcm {
namespace shard {

/// Seed stream for shard-seed reservoir sampling (estimator uses 7, the
/// M-tree promotion rng 3, bulk partitions 16+p; 11 is unclaimed).
inline constexpr uint64_t kShardSeedStream = 11;

/// How objects are assigned to shards.
enum class Assignment : uint8_t {
  kHash = 0,       ///< SplitMix64 of the object id, modulo N.
  kClustered = 1,  ///< Nearest of N reservoir-sampled seed objects.
};

inline const char* ToString(Assignment assignment) {
  return assignment == Assignment::kHash ? "hash" : "clustered";
}

/// Parses "hash" / "clustered"; anything else throws.
inline Assignment ParseAssignment(const std::string& name) {
  if (name == "hash") return Assignment::kHash;
  if (name == "clustered") return Assignment::kClustered;
  throw std::invalid_argument("ParseAssignment: unknown policy '" + name +
                              "' (expected hash or clustered)");
}

/// Resolves the MCM_SHARD_ASSIGN environment knob (default: clustered).
inline Assignment AssignmentFromEnv() {
  return ParseAssignment(GetEnvString("MCM_SHARD_ASSIGN", "clustered"));
}

/// A membership plan over positions into the source object vector. Member
/// lists are ascending (source order), so a one-shard plan reproduces the
/// unsharded input exactly.
struct Plan {
  Assignment assignment = Assignment::kClustered;
  size_t num_shards = 0;
  /// members[s] = positions of shard s's objects, ascending.
  std::vector<std::vector<size_t>> members;
  /// pivot_positions[s] = the shard's pivot (clustered: its seed; hash:
  /// its first member). Meaningful only when members[s] is non-empty.
  std::vector<size_t> pivot_positions;
};

/// Hash placement of one object id (SplitMix64 finalizer, modulo N).
inline size_t HashShard(uint64_t oid, size_t num_shards) {
  return static_cast<size_t>(DeriveSeed(oid, 0) % num_shards);
}

/// Builds the membership plan. Clustered assignment reservoir-samples
/// min(N, n) seed positions (stream kShardSeedStream of `seed`), sorts
/// them ascending so shard ids are stable, and places every object with
/// its nearest seed (ties toward the lower shard id). The n·N assignment
/// distances are build-time cost and are not charged to any query.
template <typename Object, typename Metric>
Plan PlanShards(const std::vector<Object>& objects, const Metric& metric,
                size_t num_shards, Assignment assignment, uint64_t seed) {
  if (num_shards == 0) {
    throw std::invalid_argument("PlanShards: num_shards must be >= 1");
  }
  Plan plan;
  plan.assignment = assignment;
  plan.num_shards = num_shards;
  plan.members.resize(num_shards);
  plan.pivot_positions.assign(num_shards, 0);
  const size_t n = objects.size();
  if (n == 0) return plan;

  if (assignment == Assignment::kHash || num_shards == 1) {
    for (size_t i = 0; i < n; ++i) {
      const size_t s =
          num_shards == 1 ? 0 : HashShard(static_cast<uint64_t>(i),
                                          num_shards);
      if (plan.members[s].empty()) plan.pivot_positions[s] = i;
      plan.members[s].push_back(i);
    }
    return plan;
  }

  // Reservoir sample (algorithm R) of seed positions, then sort so the
  // shard numbering does not depend on the replacement schedule.
  const size_t num_seeds = num_shards < n ? num_shards : n;
  std::vector<size_t> seeds;
  seeds.reserve(num_seeds);
  RandomEngine rng = MakeEngine(seed, kShardSeedStream);
  for (size_t i = 0; i < n; ++i) {
    if (seeds.size() < num_seeds) {
      seeds.push_back(i);
    } else {
      const size_t j = UniformIndex(rng, i + 1);
      if (j < num_seeds) seeds[j] = i;
    }
  }
  std::sort(seeds.begin(), seeds.end());
  for (size_t s = 0; s < num_seeds; ++s) {
    plan.pivot_positions[s] = seeds[s];
  }

  for (size_t i = 0; i < n; ++i) {
    size_t best = 0;
    double best_distance = metric(objects[i], objects[seeds[0]]);
    for (size_t s = 1; s < num_seeds; ++s) {
      const double d = metric(objects[i], objects[seeds[s]]);
      if (d < best_distance) {  // Ties keep the lower shard id.
        best_distance = d;
        best = s;
      }
    }
    plan.members[best].push_back(i);
  }
  return plan;
}

}  // namespace shard
}  // namespace mcm

#endif  // MCM_SHARD_PARTITION_H_
