// Cost-model-aware scatter-gather router over a ShardedMTree. For every
// query the router prices each shard with that shard's own N-MCM model
// (Section 4's node-based cost equations applied to the shard's F̂_s and
// node statistics), then:
//
//  - skips shards proven empty: with dp = d(Q, pivot_s) and the exact
//    annulus [rmin, rmax] of the shard, every member O satisfies
//    d(Q, O) >= max(dp - rmax, rmin - dp, 0); a range query whose radius
//    falls strictly below that bound is never dispatched (and for k-NN
//    the same bound is checked against the running k-th distance);
//  - orders the surviving shards cheapest-first by predicted node reads,
//    so a k-NN scatter establishes a tight k-th distance early and sends
//    only range(Q, r_k) — the witness-style bound propagation — to every
//    later shard;
//  - merges through the engine collectors (distance-then-oid order), so
//    the answer list is bit-identical to the unsharded index at any
//    shard count; with one shard the query passes straight through and
//    even the counters match the unsharded tree.
//
// ShardRouter satisfies the MetricIndex concept (const, concurrently
// callable), so engine::BatchExecutor<ShardRouter<...>> parallelizes
// query batches over it unchanged; the AdmissionController then throttles
// aggregate predicted node reads and per-shard concurrency under load.
// Per-query work is attributed through the obs registry counters
// mcm.shard.dispatched / mcm.shard.skipped / mcm.shard.nodes.

#ifndef MCM_SHARD_ROUTER_H_
#define MCM_SHARD_ROUTER_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "mcm/common/env.h"
#include "mcm/common/query_stats.h"
#include "mcm/engine/search_core.h"
#include "mcm/obs/metrics.h"
#include "mcm/shard/admission.h"
#include "mcm/shard/explain.h"
#include "mcm/shard/sharded_index.h"

namespace mcm {
namespace shard {

/// Resolves the MCM_SHARD_INFLIGHT environment knob: the router-wide
/// budget of predicted node reads allowed in flight (0 = no admission
/// control, the default).
inline double InflightBudgetFromEnv() {
  return GetEnvDouble("MCM_SHARD_INFLIGHT", 0.0);
}

/// Router configuration.
struct RouterOptions {
  /// Cost-model routing: skip provably empty shards and dispatch the rest
  /// cheapest-first. Off = naive scatter (every non-empty shard, in shard
  /// order, no pivot distances) — the bench baseline.
  bool cost_routing = true;
  /// Predicted-node admission budget; < 0 resolves MCM_SHARD_INFLIGHT,
  /// 0 disables admission control.
  double inflight_budget = -1.0;
  /// Max concurrent queries per shard (0 = unlimited).
  size_t per_shard_inflight = 0;
};

/// One shard's routing decision for one query.
struct ShardDecision {
  size_t shard = 0;
  bool dispatched = true;
  const char* reason = "dispatched";
  /// Proven lower bound on d(Q, member) over the shard (annulus bound).
  double lower_bound = 0.0;
  double predicted_nodes = 0.0;
  double predicted_dists = 0.0;
};

/// The routing plan for one query: per-shard decisions (by shard id) and
/// the dispatch order (cheapest predicted cost first).
struct RoutePlan {
  std::vector<ShardDecision> decisions;
  std::vector<size_t> order;  ///< Dispatched shard ids, execution order.
  double predicted_nodes = 0.0;  ///< Sum over dispatched shards.
  size_t skipped = 0;
};

/// Scatter-gather search over a ShardedMTree. Immutable and concurrently
/// callable; satisfies engine::MetricIndex.
template <typename Traits>
class ShardRouter {
 public:
  using Object = typename Traits::Object;
  using Result = SearchResult<Object>;

  explicit ShardRouter(const ShardedMTree<Traits>& index,
                       RouterOptions options = {})
      : index_(index),
        options_(options),
        admission_(options.inflight_budget < 0.0 ? InflightBudgetFromEnv()
                                                 : options.inflight_budget,
                   options.per_shard_inflight, index.num_shards()),
        dispatched_counter_(
            MetricsRegistry::Global().GetCounter("mcm.shard.dispatched")),
        skipped_counter_(
            MetricsRegistry::Global().GetCounter("mcm.shard.skipped")),
        nodes_counter_(
            MetricsRegistry::Global().GetCounter("mcm.shard.nodes")) {}

  /// range(Q, r): bit-identical to the unsharded index's answer list.
  std::vector<Result> RangeSearch(const Object& query, double radius,
                                  QueryStats* stats = nullptr) const {
    return RunRange(query, radius, stats, nullptr);
  }

  /// NN(Q, k): bit-identical to the unsharded index's answer list.
  std::vector<Result> KnnSearch(const Object& query, size_t k,
                                QueryStats* stats = nullptr) const {
    return RunKnn(query, k, stats, nullptr);
  }

  size_t size() const { return index_.size(); }
  size_t num_shards() const { return index_.num_shards(); }
  const ShardedMTree<Traits>& index() const { return index_; }
  const RouterOptions& options() const { return options_; }

  /// Queries the admission controller made wait at least once.
  uint64_t queued_queries() const { return admission_.queued_queries(); }

  /// The routing plan for range(Q, r). Pivot distances are genuine metric
  /// evaluations and are charged to `stats` (the same convention the
  /// trees use for their routing distances).
  RoutePlan PlanRange(const Object& query, double radius,
                      QueryStats* stats = nullptr) const {
    RoutePlan plan = MakeDecisions(query, stats);
    for (ShardDecision& d : plan.decisions) {
      if (!d.dispatched) continue;  // Empty shard.
      const ShardSidecar<Traits>& sidecar = index_.sidecar(d.shard);
      if (sidecar.model.has_value()) {
        d.predicted_nodes = sidecar.model->RangeNodes(radius);
        d.predicted_dists = sidecar.model->RangeDistances(radius);
      }
      if (options_.cost_routing && d.lower_bound > radius) {
        d.dispatched = false;
        d.reason = "skip:annulus";
      }
    }
    FinishPlan(&plan);
    return plan;
  }

  /// The routing plan for NN(Q, k). No shard can be skipped up front
  /// (the k-th distance is unknown), but the cheapest-first order decides
  /// how fast the bound tightens; the execution-time annulus check
  /// against the running bound does the skipping.
  RoutePlan PlanKnn(const Object& query, size_t k,
                    QueryStats* stats = nullptr) const {
    RoutePlan plan = MakeDecisions(query, stats);
    for (ShardDecision& d : plan.decisions) {
      if (!d.dispatched) continue;
      const ShardSidecar<Traits>& sidecar = index_.sidecar(d.shard);
      const size_t shard_k = std::min(k, index_.tree(d.shard).size());
      if (sidecar.model.has_value() && shard_k > 0) {
        d.predicted_nodes = sidecar.model->NnNodes(shard_k);
        d.predicted_dists = sidecar.model->NnDistances(shard_k);
      }
    }
    FinishPlan(&plan);
    return plan;
  }

  /// Runs range(Q, r) and returns the per-shard predicted-vs-actual
  /// report (EXPLAIN surface).
  ShardExplainReport ExplainRange(const Object& query, double radius) const {
    ShardExplainReport report;
    report.kind = "range";
    report.radius = radius;
    QueryStats stats;
    const auto results = RunRange(query, radius, &stats, &report);
    report.results = results.size();
    return report;
  }

  /// Runs NN(Q, k) and returns the per-shard report.
  ShardExplainReport ExplainKnn(const Object& query, size_t k) const {
    ShardExplainReport report;
    report.kind = "knn";
    report.k = k;
    QueryStats stats;
    const auto results = RunKnn(query, k, &stats, &report);
    report.results = results.size();
    return report;
  }

 private:
  /// Shared first phase of both plans: per-shard pivot distance (charged
  /// to `stats`) and the annulus lower bound. Empty shards come back
  /// undispatched; with cost routing off no pivot distance is spent and
  /// every non-empty shard is dispatched with bound 0.
  RoutePlan MakeDecisions(const Object& query, QueryStats* stats) const {
    RoutePlan plan;
    plan.decisions.resize(index_.num_shards());
    for (size_t s = 0; s < index_.num_shards(); ++s) {
      ShardDecision& d = plan.decisions[s];
      d.shard = s;
      if (index_.tree(s).size() == 0) {
        d.dispatched = false;
        d.reason = "skip:empty";
        d.lower_bound = std::numeric_limits<double>::infinity();
        continue;
      }
      if (!options_.cost_routing) continue;  // Naive scatter: bound 0.
      const ShardSidecar<Traits>& sidecar = index_.sidecar(s);
      const double dp = index_.metric()(query, sidecar.pivot);
      if (stats != nullptr) ++stats->distance_computations;
      d.lower_bound = std::max(
          {dp - sidecar.rmax, sidecar.rmin - dp, 0.0});
    }
    return plan;
  }

  /// Orders dispatched shards cheapest-first (predicted nodes, then the
  /// annulus bound, then shard id — fully deterministic) and fills the
  /// plan totals. Naive scatter keeps plain shard order.
  void FinishPlan(RoutePlan* plan) const {
    for (const ShardDecision& d : plan->decisions) {
      if (d.dispatched) {
        plan->order.push_back(d.shard);
        plan->predicted_nodes += d.predicted_nodes;
      } else {
        ++plan->skipped;
      }
    }
    if (options_.cost_routing) {
      std::sort(plan->order.begin(), plan->order.end(),
                [plan](size_t a, size_t b) {
                  const ShardDecision& da = plan->decisions[a];
                  const ShardDecision& db = plan->decisions[b];
                  if (da.predicted_nodes != db.predicted_nodes) {
                    return da.predicted_nodes < db.predicted_nodes;
                  }
                  if (da.lower_bound != db.lower_bound) {
                    return da.lower_bound < db.lower_bound;
                  }
                  return a < b;
                });
    }
  }

  /// Runs one shard search, folds its counters into `stats` (preserving
  /// any attached trace / span log for the shard's events), and reports
  /// the shard's own counters through `row`.
  template <typename SearchFn>
  std::vector<Result> SearchShard(size_t s, QueryStats* stats,
                                  const SearchFn& search,
                                  ShardExplainRow* row) const {
    ShardTicket ticket(&admission_, s);
    QueryStats local;
    if (stats != nullptr) {
      local.trace = stats->trace;
      local.spans = stats->spans;
    }
    auto results = search(index_.tree(s), &local);
    local.trace = nullptr;
    local.spans = nullptr;
    if (stats != nullptr) *stats += local;
    if (row != nullptr) {
      row->actual_nodes = local.nodes_accessed;
      row->actual_dists = local.distance_computations;
      row->results = results.size();
    }
    if (ObsEnabled()) nodes_counter_.Increment(local.nodes_accessed);
    return results;
  }

  void FillReportRow(const ShardDecision& d, ShardExplainReport* report,
                     ShardExplainRow** row_out) const {
    if (report == nullptr) {
      *row_out = nullptr;
      return;
    }
    report->rows.emplace_back();
    ShardExplainRow& row = report->rows.back();
    row.shard = d.shard;
    row.objects = index_.tree(d.shard).size();
    row.dispatched = d.dispatched;
    row.reason = d.reason;
    row.lower_bound = d.lower_bound;
    row.predicted_nodes = d.predicted_nodes;
    row.predicted_dists = d.predicted_dists;
    *row_out = &row;
  }

  void FinishReport(const RoutePlan& plan, const QueryStats& stats,
                    ShardExplainReport* report) const {
    if (report == nullptr) return;
    // Skipped shards trail the dispatched rows in shard order.
    for (const ShardDecision& d : plan.decisions) {
      if (d.dispatched) continue;
      ShardExplainRow* row = nullptr;
      FillReportRow(d, report, &row);
    }
    report->num_shards = index_.num_shards();
    report->predicted_nodes = plan.predicted_nodes;
    report->actual_nodes = stats.nodes_accessed;
    report->actual_dists = stats.distance_computations;
    for (const ShardExplainRow& row : report->rows) {
      if (row.dispatched) {
        ++report->dispatched;
      } else {
        ++report->skipped;
      }
    }
  }

  std::vector<Result> RunRange(const Object& query, double radius,
                               QueryStats* stats,
                               ShardExplainReport* report) const {
    if (stats != nullptr) ResetCounters(stats);
    if (index_.num_shards() == 1 && report == nullptr) {
      // Degenerate fast path: the unsharded tree, counters and all.
      if (ObsEnabled()) dispatched_counter_.Increment();
      return index_.tree(0).RangeSearch(query, radius, stats);
    }
    QueryStats local_stats;
    QueryStats* st = stats != nullptr ? stats : &local_stats;
    const RoutePlan plan = PlanRange(query, radius, st);
    QueryTicket ticket(&admission_, plan.predicted_nodes);
    std::vector<Result> merged;
    for (const size_t s : plan.order) {
      ShardExplainRow* row = nullptr;
      FillReportRow(plan.decisions[s], report, &row);
      if (row != nullptr) row->radius_sent = radius;
      auto part = SearchShard(
          s, st,
          [&](const MTree<Traits>& tree, QueryStats* shard_stats) {
            return tree.RangeSearch(query, radius, shard_stats);
          },
          row);
      merged.insert(merged.end(), std::make_move_iterator(part.begin()),
                    std::make_move_iterator(part.end()));
    }
    std::sort(merged.begin(), merged.end(), engine::ResultOrder<Object>);
    if (ObsEnabled()) {
      dispatched_counter_.Increment(plan.order.size());
      skipped_counter_.Increment(plan.skipped);
    }
    FinishReport(plan, *st, report);
    return merged;
  }

  std::vector<Result> RunKnn(const Object& query, size_t k,
                             QueryStats* stats,
                             ShardExplainReport* report) const {
    if (stats != nullptr) ResetCounters(stats);
    if (index_.num_shards() == 1 && report == nullptr) {
      if (ObsEnabled()) dispatched_counter_.Increment();
      return index_.tree(0).KnnSearch(query, k, stats);
    }
    QueryStats local_stats;
    QueryStats* st = stats != nullptr ? stats : &local_stats;
    RoutePlan plan = PlanKnn(query, k, st);
    QueryTicket ticket(&admission_, plan.predicted_nodes);
    engine::KnnCollector<Object> collector(k);
    size_t executed = 0;
    for (const size_t s : plan.order) {
      const double bound = collector.Bound();
      ShardDecision& d = plan.decisions[s];
      if (bound != std::numeric_limits<double>::infinity() &&
          d.lower_bound > bound) {
        // The running k-th distance now proves this shard useless; the
        // plan's decision is amended so reports and counters agree.
        d.dispatched = false;
        d.reason = "skip:bound";
        continue;
      }
      ShardExplainRow* row = nullptr;
      FillReportRow(d, report, &row);
      const bool bounded =
          bound != std::numeric_limits<double>::infinity();
      if (row != nullptr) row->radius_sent = bounded ? bound : -1.0;
      auto part = SearchShard(
          s, st,
          [&](const MTree<Traits>& tree, QueryStats* shard_stats) {
            // First shard(s): full k-NN. Once k candidates exist, later
            // shards only need range(Q, r_k) — every answer that could
            // still enter the top-k (ties included) lies within r_k.
            return bounded ? tree.RangeSearch(query, bound, shard_stats)
                           : tree.KnnSearch(query, k, shard_stats);
          },
          row);
      ++executed;
      for (const Result& r : part) {
        collector.Offer(r.oid, r.object, r.distance);
      }
    }
    if (ObsEnabled()) {
      dispatched_counter_.Increment(executed);
      skipped_counter_.Increment(index_.num_shards() - executed);
    }
    // Recompute plan totals after execution-time skips so the report's
    // skipped/dispatched split reflects what actually ran.
    plan.skipped = index_.num_shards() - executed;
    FinishReport(plan, *st, report);
    return collector.Take();
  }

  const ShardedMTree<Traits>& index_;
  RouterOptions options_;
  mutable AdmissionController admission_;
  Counter& dispatched_counter_;
  Counter& skipped_counter_;
  Counter& nodes_counter_;
};

}  // namespace shard
}  // namespace mcm

#endif  // MCM_SHARD_ROUTER_H_
