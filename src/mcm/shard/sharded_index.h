// A sharded M-tree: N self-contained per-shard trees plus, for each
// shard, the cost-model sidecar the router steers by — the shard's own
// sampled distance distribution F̂_s (Section 2.1 applied per shard), its
// N-MCM model over the shard's node statistics, and an exact pivot
// annulus [rmin, rmax] = support of d(pivot, member) over every member.
// The annulus is what makes shard skipping *provable*: for any query Q
// and shard member O the triangle inequality gives
//   d(Q, O) >= max(d(Q, pivot) - rmax, rmin - d(Q, pivot), 0),
// so a range query whose radius falls below that bound cannot match
// anything in the shard (router.h turns this into skip decisions).
//
// Build is deterministic (partition.h plans memberships, each shard is
// bulk-loaded with its members in source order carrying their original
// object ids), so a one-shard build is the unsharded index bit for bit.
// SaveShardedMTree / OpenShardedMTree persist each shard through
// mtree/persist.h plus one `<path>.shards` manifest holding the sidecars.

#ifndef MCM_SHARD_SHARDED_INDEX_H_
#define MCM_SHARD_SHARDED_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "mcm/cost/nmcm.h"
#include "mcm/cost/tree_stats.h"
#include "mcm/distribution/estimator.h"
#include "mcm/distribution/histogram.h"
#include "mcm/metric/bytes.h"
#include "mcm/mtree/bulk_load.h"
#include "mcm/mtree/mtree.h"
#include "mcm/mtree/options.h"
#include "mcm/mtree/persist.h"
#include "mcm/shard/partition.h"

namespace mcm {
namespace shard {

/// Build configuration for a sharded index.
struct ShardedOptions {
  size_t num_shards = 1;
  Assignment assignment = AssignmentFromEnv();
  /// Per-shard tree options (node size, policies, witness capacity, ...).
  MTreeOptions tree;
  /// Per-shard distance-distribution estimate (F̂_s).
  size_t histogram_bins = 100;
  size_t max_histogram_pairs = 200000;
  /// Upper bound d⁺ of the metric space; <= 0 derives it from a strided
  /// pair sample (max seen, times 1.05 headroom).
  double d_plus = -1.0;
  uint64_t seed = 42;
};

/// Per-shard routing state: the skip proof (pivot + exact annulus) and
/// the cost models (histogram + node stats). Shards with fewer than two
/// members carry no histogram and no model; the router falls back to the
/// shard's node count as its predicted cost.
template <typename Traits>
struct ShardSidecar {
  typename Traits::Object pivot{};
  double rmin = 0.0;  ///< min over members of d(pivot, member).
  double rmax = 0.0;  ///< max over members of d(pivot, member).
  std::optional<DistanceHistogram> histogram;
  MTreeStatsView stats;
  std::optional<NodeBasedCostModel> model;
};

/// Derives d⁺ from a strided pair sample (the mcm_explain idiom): the
/// maximum sampled distance with 5% headroom, so histogram mass never
/// lands in the overflow bin for in-sample data.
template <typename Object, typename Metric>
double DeriveDPlusSample(const std::vector<Object>& objects,
                         const Metric& metric) {
  if (objects.size() < 2) return 1.0;
  const size_t stride = objects.size() > 64 ? objects.size() / 64 : 1;
  double max_distance = 0.0;
  for (size_t i = 0; i < objects.size(); i += stride) {
    for (size_t j = i + stride; j < objects.size(); j += stride) {
      max_distance = std::max(max_distance, metric(objects[i], objects[j]));
    }
  }
  return max_distance > 0.0 ? max_distance * 1.05 : 1.0;
}

/// N self-contained M-trees over one logical object set, with per-shard
/// cost-model sidecars. Immutable once built; searched through
/// shard::ShardRouter.
template <typename Traits>
class ShardedMTree {
 public:
  using Object = typename Traits::Object;
  using Metric = typename Traits::Metric;
  using Tree = MTree<Traits>;

  /// Builds `options.num_shards` shards over `objects`; object ids are
  /// source positions, exactly as MTree::BulkLoad assigns them, so shard
  /// answers merge into the unsharded answer without translation.
  static ShardedMTree Create(const std::vector<Object>& objects,
                            Metric metric, ShardedOptions options) {
    if (options.num_shards == 0) {
      throw std::invalid_argument("ShardedMTree: num_shards must be >= 1");
    }
    ShardedMTree index(std::move(metric), options);
    if (index.options_.d_plus <= 0.0) {
      index.options_.d_plus = DeriveDPlusSample(objects, index.metric_);
    }
    const Plan plan =
        PlanShards(objects, index.metric_, options.num_shards,
                   options.assignment, options.seed);
    index.trees_.reserve(options.num_shards);
    index.sidecars_.resize(options.num_shards);
    index.oids_.resize(options.num_shards);
    for (size_t s = 0; s < options.num_shards; ++s) {
      std::vector<Object> members;
      members.reserve(plan.members[s].size());
      std::vector<uint64_t>& oids = index.oids_[s];
      oids.reserve(plan.members[s].size());
      for (const size_t position : plan.members[s]) {
        members.push_back(objects[position]);
        oids.push_back(static_cast<uint64_t>(position));
      }
      index.trees_.push_back(BulkLoader<Traits>::Load(
          members, oids, index.metric_, options.tree, nullptr));
      ShardSidecar<Traits>& sidecar = index.sidecars_[s];
      if (!members.empty()) {
        sidecar.pivot = objects[plan.pivot_positions[s]];
        sidecar.rmin = std::numeric_limits<double>::infinity();
        sidecar.rmax = 0.0;
        for (const Object& member : members) {
          const double d = index.metric_(sidecar.pivot, member);
          sidecar.rmin = std::min(sidecar.rmin, d);
          sidecar.rmax = std::max(sidecar.rmax, d);
        }
      }
      if (members.size() >= 2) {
        EstimatorOptions estimate;
        estimate.num_bins = options.histogram_bins;
        estimate.d_plus = index.options_.d_plus;
        estimate.max_pairs = options.max_histogram_pairs;
        estimate.seed = DeriveSeed(options.seed, 32 + s);
        sidecar.histogram.emplace(EstimateDistanceDistribution(
            members, index.metric_, estimate));
      }
    }
    index.FinishSidecars();
    return index;
  }

  size_t num_shards() const { return trees_.size(); }
  const Tree& tree(size_t s) const { return trees_[s]; }
  const ShardSidecar<Traits>& sidecar(size_t s) const {
    return sidecars_[s];
  }
  /// Original object ids per shard (build only; empty after reopening a
  /// persisted index — the ids live inside the shard trees either way).
  const std::vector<uint64_t>& shard_oids(size_t s) const {
    return oids_[s];
  }

  /// Total objects across shards.
  size_t size() const {
    size_t total = 0;
    for (const Tree& tree : trees_) total += tree.size();
    return total;
  }

  double d_plus() const { return options_.d_plus; }
  Assignment assignment() const { return options_.assignment; }
  const Metric& metric() const { return metric_; }
  const ShardedOptions& options() const { return options_; }

  ShardedMTree(const ShardedMTree&) = delete;
  ShardedMTree& operator=(const ShardedMTree&) = delete;
  ShardedMTree(ShardedMTree&&) = default;
  ShardedMTree& operator=(ShardedMTree&&) = default;

 private:
  template <typename T>
  friend ShardedMTree<T> OpenShardedMTree(const std::string&,
                                          typename T::Metric,
                                          ShardedOptions);

  ShardedMTree(Metric metric, ShardedOptions options)
      : metric_(std::move(metric)), options_(std::move(options)) {}

  /// Recomputes node statistics and instantiates the per-shard N-MCM
  /// models. Called once the sidecar vector has its final size (the model
  /// copies the histogram, so no address stability is required — this is
  /// purely a build/open finalization step).
  void FinishSidecars() {
    for (size_t s = 0; s < trees_.size(); ++s) {
      ShardSidecar<Traits>& sidecar = sidecars_[s];
      sidecar.stats = trees_[s].CollectStats(options_.d_plus);
      if (sidecar.histogram.has_value() && sidecar.stats.num_nodes() > 0) {
        sidecar.model.emplace(*sidecar.histogram, sidecar.stats);
      }
    }
  }

  Metric metric_;
  ShardedOptions options_;
  std::vector<Tree> trees_;
  std::vector<ShardSidecar<Traits>> sidecars_;
  std::vector<std::vector<uint64_t>> oids_;
};

namespace shard_internal {

inline constexpr uint32_t kManifestMagic = 0x4d435348;  // "MCSH".
inline constexpr uint32_t kManifestVersion = 1;

inline std::string ManifestPath(const std::string& path) {
  return path + ".shards";
}

inline std::string ShardPath(const std::string& path, size_t s) {
  return path + ".shard" + std::to_string(s);
}

}  // namespace shard_internal

/// Saves every shard tree (mtree/persist.h format, one `<path>.shardK`
/// per shard) plus the `<path>.shards` manifest carrying the sidecars.
template <typename Traits>
void SaveShardedMTree(const ShardedMTree<Traits>& index,
                      const std::string& path) {
  std::vector<uint8_t> buffer;
  ByteWriter writer(&buffer);
  writer.Put<uint32_t>(shard_internal::kManifestMagic);
  writer.Put<uint32_t>(shard_internal::kManifestVersion);
  writer.Put<uint32_t>(static_cast<uint32_t>(index.num_shards()));
  writer.Put<uint8_t>(static_cast<uint8_t>(index.assignment()));
  writer.Put<double>(index.d_plus());
  for (size_t s = 0; s < index.num_shards(); ++s) {
    SaveMTree(index.tree(s), shard_internal::ShardPath(path, s));
    const ShardSidecar<Traits>& sidecar = index.sidecar(s);
    const uint8_t has_pivot = index.tree(s).size() > 0 ? 1 : 0;
    writer.Put<uint8_t>(has_pivot);
    if (has_pivot != 0) {
      Traits::Serialize(sidecar.pivot, writer);
      writer.Put<double>(sidecar.rmin);
      writer.Put<double>(sidecar.rmax);
    }
    const uint8_t has_histogram = sidecar.histogram.has_value() ? 1 : 0;
    writer.Put<uint8_t>(has_histogram);
    if (has_histogram != 0) {
      const std::vector<double>& masses = sidecar.histogram->masses();
      writer.Put<uint32_t>(static_cast<uint32_t>(masses.size()));
      for (const double mass : masses) writer.Put<double>(mass);
    }
  }
  const std::string manifest = shard_internal::ManifestPath(path);
  std::FILE* file = std::fopen(manifest.c_str(), "wb");
  if (file == nullptr) {
    throw std::runtime_error("SaveShardedMTree: cannot write " + manifest);
  }
  const size_t written =
      buffer.empty() ? 0 : std::fwrite(buffer.data(), 1, buffer.size(), file);
  const int close_error = std::fclose(file);
  if (written != buffer.size() || close_error != 0) {
    throw std::runtime_error("SaveShardedMTree: short write to " + manifest);
  }
}

/// Reopens a sharded index saved by SaveShardedMTree. `metric` and
/// `options.tree` must match build time (same contract as OpenMTree);
/// num_shards / assignment / d_plus are taken from the manifest. Node
/// statistics are recollected from the reopened trees, histograms come
/// from the manifest, so router decisions match the pre-save index.
template <typename Traits>
ShardedMTree<Traits> OpenShardedMTree(const std::string& path,
                                      typename Traits::Metric metric,
                                      ShardedOptions options) {
  const std::string manifest = shard_internal::ManifestPath(path);
  std::FILE* file = std::fopen(manifest.c_str(), "rb");
  if (file == nullptr) {
    throw std::runtime_error("OpenShardedMTree: cannot read " + manifest);
  }
  std::vector<uint8_t> buffer;
  uint8_t chunk[4096];
  size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    buffer.insert(buffer.end(), chunk, chunk + got);
  }
  std::fclose(file);
  ByteReader reader(buffer.data(), buffer.size());
  if (reader.Get<uint32_t>() != shard_internal::kManifestMagic) {
    throw std::runtime_error("OpenShardedMTree: bad manifest magic in " +
                             manifest);
  }
  if (reader.Get<uint32_t>() != shard_internal::kManifestVersion) {
    throw std::runtime_error("OpenShardedMTree: unsupported version");
  }
  const uint32_t num_shards = reader.Get<uint32_t>();
  options.num_shards = num_shards;
  options.assignment = static_cast<Assignment>(reader.Get<uint8_t>());
  options.d_plus = reader.Get<double>();

  ShardedMTree<Traits> index(std::move(metric), options);
  index.trees_.reserve(num_shards);
  index.sidecars_.resize(num_shards);
  index.oids_.resize(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    index.trees_.push_back(OpenMTree<Traits>(
        shard_internal::ShardPath(path, s), index.metric_, options.tree));
    ShardSidecar<Traits>& sidecar = index.sidecars_[s];
    if (reader.Get<uint8_t>() != 0) {
      sidecar.pivot = Traits::Deserialize(reader);
      sidecar.rmin = reader.Get<double>();
      sidecar.rmax = reader.Get<double>();
    }
    if (reader.Get<uint8_t>() != 0) {
      const uint32_t num_bins = reader.Get<uint32_t>();
      std::vector<double> masses(num_bins);
      for (uint32_t b = 0; b < num_bins; ++b) {
        masses[b] = reader.Get<double>();
      }
      sidecar.histogram.emplace(
          DistanceHistogram::FromMasses(masses, options.d_plus));
    }
  }
  index.FinishSidecars();
  return index;
}

}  // namespace shard
}  // namespace mcm

#endif  // MCM_SHARD_SHARDED_INDEX_H_
