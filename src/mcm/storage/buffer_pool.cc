#include "mcm/storage/buffer_pool.h"

#include <algorithm>
#include <stdexcept>

namespace mcm {

PageGuard::PageGuard(BufferPool* pool, PageId id, uint8_t* data)
    : pool_(pool), id_(id), data_(data) {}

PageGuard::PageGuard(PageGuard&& other) noexcept
    : pool_(other.pool_), id_(other.id_), data_(other.data_) {
  other.pool_ = nullptr;
  other.data_ = nullptr;
  other.id_ = kInvalidPageId;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    id_ = other.id_;
    data_ = other.data_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
    other.id_ = kInvalidPageId;
  }
  return *this;
}

PageGuard::~PageGuard() { Release(); }

void PageGuard::MarkDirty() {
  if (pool_ != nullptr) {
    pool_->MarkDirty(id_);
  }
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(id_);
    pool_ = nullptr;
    data_ = nullptr;
    id_ = kInvalidPageId;
  }
}

BufferPool::BufferPool(PageFile* file, size_t capacity, size_t num_shards)
    : file_(file), capacity_(capacity) {
  if (file == nullptr) {
    throw std::invalid_argument("BufferPool: null page file");
  }
  if (capacity == 0) {
    throw std::invalid_argument("BufferPool: capacity must be > 0");
  }
  if (num_shards == 0) {
    num_shards = std::clamp<size_t>(capacity / 64, 1, 8);
  }
  num_shards = std::min(num_shards, capacity);  // Every shard gets a frame.
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    // Distribute capacity as evenly as possible; earlier shards take the
    // remainder.
    shard->capacity = capacity / num_shards + (s < capacity % num_shards);
    shards_.push_back(std::move(shard));
  }
}

BufferPool::~BufferPool() {
  // Best effort write-back; errors in destructors cannot be reported.
  try {
    FlushAll();
  } catch (...) {
  }
}

PageGuard BufferPool::Fetch(PageId id) { return Fetch(id, nullptr); }

PageGuard BufferPool::Fetch(PageId id, bool* hit) {
  Shard& shard = ShardFor(id);
  MutexLock lock(&shard.mu);
  ++shard.stats.fetches;
  Frame& frame = LoadFrame(shard, id, /*read_from_file=*/true, hit);
  return PageGuard(this, id, frame.data.data());
}

PageGuard BufferPool::NewPage() {
  const PageId id = file_->Allocate();
  Shard& shard = ShardFor(id);
  MutexLock lock(&shard.mu);
  ++shard.stats.fetches;
  Frame& frame =
      LoadFrame(shard, id, /*read_from_file=*/false, /*hit=*/nullptr);
  frame.dirty = true;
  return PageGuard(this, id, frame.data.data());
}

BufferPool::Frame& BufferPool::LoadFrame(Shard& shard, PageId id,
                                         bool read_from_file, bool* hit) {
  auto it = shard.frames.find(id);
  if (it != shard.frames.end()) {
    ++shard.stats.hits;
    if (hit != nullptr) *hit = true;
    Frame& frame = it->second;
    if (frame.in_lru) {
      shard.lru.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    ++frame.pin_count;
    return frame;
  }
  ++shard.stats.misses;
  if (hit != nullptr) *hit = false;
  EvictOneIfFull(shard);
  Frame& frame = shard.frames[id];
  frame.data.assign(file_->page_size(), 0);
  if (read_from_file) {
    file_->ReadPage(id, frame.data.data());
  }
  frame.pin_count = 1;
  return frame;
}

void BufferPool::EvictOneIfFull(Shard& shard) {
  if (shard.frames.size() < shard.capacity) {
    return;
  }
  if (shard.lru.empty()) {
    throw std::runtime_error("BufferPool: all frames pinned, cannot evict");
  }
  const PageId victim = shard.lru.back();
  shard.lru.pop_back();
  auto it = shard.frames.find(victim);
  FlushFrame(shard, victim, it->second);
  shard.frames.erase(it);
  ++shard.stats.evictions;
}

void BufferPool::Unpin(PageId id) {
  Shard& shard = ShardFor(id);
  MutexLock lock(&shard.mu);
  auto it = shard.frames.find(id);
  if (it == shard.frames.end() || it->second.pin_count == 0) {
    throw std::logic_error("BufferPool: unpin of unpinned page");
  }
  Frame& frame = it->second;
  if (--frame.pin_count == 0) {
    shard.lru.push_front(id);
    frame.lru_pos = shard.lru.begin();
    frame.in_lru = true;
  }
}

void BufferPool::MarkDirty(PageId id) {
  Shard& shard = ShardFor(id);
  MutexLock lock(&shard.mu);
  auto it = shard.frames.find(id);
  if (it == shard.frames.end()) {
    throw std::logic_error("BufferPool: MarkDirty of absent page");
  }
  it->second.dirty = true;
}

void BufferPool::FlushFrame(Shard& shard, PageId id, Frame& frame) {
  if (frame.dirty) {
    file_->WritePage(id, frame.data.data());
    frame.dirty = false;
    ++shard.stats.flushes;
  }
}

void BufferPool::FlushAll() {
  for (auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    for (auto& [id, frame] : shard->frames) {
      FlushFrame(*shard, id, frame);
    }
  }
}

void BufferPool::EvictAll() {
  for (auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    for (auto it = shard->frames.begin(); it != shard->frames.end();) {
      if (it->second.pin_count == 0) {
        FlushFrame(*shard, it->first, it->second);
        if (it->second.in_lru) {
          shard->lru.erase(it->second.lru_pos);
        }
        it = shard->frames.erase(it);
      } else {
        ++it;
      }
    }
  }
}

size_t BufferPool::num_buffered() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    total += shard->frames.size();
  }
  return total;
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats total;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    total.fetches += shard->stats.fetches;
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.evictions += shard->stats.evictions;
    total.flushes += shard->stats.flushes;
  }
  return total;
}

void BufferPool::ResetStats() {
  for (auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    shard->stats = BufferPoolStats();
  }
}

}  // namespace mcm
