#include "mcm/storage/buffer_pool.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "mcm/obs/metrics.h"

namespace mcm {

PageGuard::PageGuard(BufferPool* pool, PageId id, uint8_t* data)
    : pool_(pool), id_(id), data_(data) {}

PageGuard::PageGuard(PageGuard&& other) noexcept
    : pool_(other.pool_), id_(other.id_), data_(other.data_) {
  other.pool_ = nullptr;
  other.data_ = nullptr;
  other.id_ = kInvalidPageId;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    id_ = other.id_;
    data_ = other.data_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
    other.id_ = kInvalidPageId;
  }
  return *this;
}

PageGuard::~PageGuard() { Release(); }

void PageGuard::MarkDirty() {
  if (pool_ != nullptr) {
    pool_->MarkDirty(id_);
  }
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(id_);
    pool_ = nullptr;
    data_ = nullptr;
    id_ = kInvalidPageId;
  }
}

BufferPool::BufferPool(PageFile* file, size_t capacity, size_t num_shards)
    : file_(file), capacity_(capacity) {
  if (file == nullptr) {
    throw std::invalid_argument("BufferPool: null page file");
  }
  if (capacity == 0) {
    throw std::invalid_argument("BufferPool: capacity must be > 0");
  }
  if (num_shards == 0) {
    num_shards = std::clamp<size_t>(capacity / 64, 1, 8);
  }
  num_shards = std::min(num_shards, capacity);  // Every shard gets a frame.
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    // Distribute capacity as evenly as possible; earlier shards take the
    // remainder.
    shard->capacity = capacity / num_shards + (s < capacity % num_shards);
    shards_.push_back(std::move(shard));
  }
}

BufferPool::~BufferPool() {
  // Best effort write-back; errors in destructors cannot be reported.
  try {
    FlushAll();
  } catch (...) {
  }
}

PageGuard BufferPool::Fetch(PageId id) { return Fetch(id, nullptr); }

PageGuard BufferPool::Fetch(PageId id, bool* hit) {
  Shard& shard = ShardFor(id);
  PageGuard guard;
  {
    MutexLock lock(&shard.mu);
    ++shard.stats.fetches;
    Frame& frame = LoadFrame(shard, id, /*read_from_file=*/true, hit);
    guard = PageGuard(this, id, frame.data.data());
  }
  PublishPrefetchObs();  // Outside the shard lock (lock-order discipline).
  return guard;
}

size_t BufferPool::Prefetch(PageId first, size_t count) {
  if (count == 0) {
    return 0;
  }
  // Pass 1: note which pages of the run are absent. Presence can race with
  // concurrent fetches, so the install below re-checks under the lock.
  std::vector<PageId> absent;
  absent.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const PageId id = first + static_cast<PageId>(i);
    Shard& shard = ShardFor(id);
    MutexLock lock(&shard.mu);
    if (shard.frames.find(id) == shard.frames.end()) {
      absent.push_back(id);
    }
  }
  // Pass 2: one batched ReadRun per contiguous absent span (no shard lock
  // held across the physical read), then install each page.
  size_t issued = 0;
  const size_t page_size = file_->page_size();
  std::vector<uint8_t> buf;
  for (size_t i = 0; i < absent.size();) {
    size_t j = i + 1;
    while (j < absent.size() && absent[j] == absent[j - 1] + 1) {
      ++j;
    }
    const size_t run = j - i;
    buf.resize(run * page_size);
    file_->ReadRun(absent[i], run, buf.data());
    for (size_t k = 0; k < run; ++k) {
      const PageId id = absent[i + k];
      Shard& shard = ShardFor(id);
      MutexLock lock(&shard.mu);
      if (shard.frames.find(id) != shard.frames.end()) {
        continue;  // A concurrent Fetch raced the page in; keep its frame.
      }
      if (shard.frames.size() >= shard.capacity && shard.lru.empty()) {
        continue;  // Every frame pinned: readahead never throws, it skips.
      }
      EvictOneIfFull(shard);
      Frame& frame = shard.frames[id];
      frame.data.assign(buf.data() + k * page_size,
                        buf.data() + (k + 1) * page_size);
      frame.pin_count = 0;
      frame.prefetched = true;
      shard.lru.push_front(id);
      frame.lru_pos = shard.lru.begin();
      frame.in_lru = true;
      ++shard.stats.prefetch_issued;
      ++issued;
    }
    i = j;
  }
  if (issued > 0 && ObsEnabled()) {
    MetricsRegistry::Global().GetCounter("prefetch.issued").Increment(issued);
  }
  PublishPrefetchObs();
  return issued;
}

PageGuard BufferPool::NewPage() {
  const PageId id = file_->Allocate();
  Shard& shard = ShardFor(id);
  MutexLock lock(&shard.mu);
  ++shard.stats.fetches;
  Frame& frame =
      LoadFrame(shard, id, /*read_from_file=*/false, /*hit=*/nullptr);
  frame.dirty = true;
  return PageGuard(this, id, frame.data.data());
}

BufferPool::Frame& BufferPool::LoadFrame(Shard& shard, PageId id,
                                         bool read_from_file, bool* hit) {
  auto it = shard.frames.find(id);
  if (it != shard.frames.end()) {
    ++shard.stats.hits;
    if (hit != nullptr) *hit = true;
    Frame& frame = it->second;
    if (frame.prefetched) {
      frame.prefetched = false;
      ++shard.stats.prefetch_used;
      if (ObsEnabled()) {
        pending_obs_used_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (frame.in_lru) {
      shard.lru.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    ++frame.pin_count;
    return frame;
  }
  ++shard.stats.misses;
  if (hit != nullptr) *hit = false;
  EvictOneIfFull(shard);
  Frame& frame = shard.frames[id];
  frame.data.assign(file_->page_size(), 0);
  if (read_from_file) {
    file_->ReadPage(id, frame.data.data());
  }
  frame.pin_count = 1;
  return frame;
}

void BufferPool::EvictOneIfFull(Shard& shard) {
  if (shard.frames.size() < shard.capacity) {
    return;
  }
  if (shard.lru.empty()) {
    throw std::runtime_error("BufferPool: all frames pinned, cannot evict");
  }
  const PageId victim = shard.lru.back();
  shard.lru.pop_back();
  auto it = shard.frames.find(victim);
  RetireFrame(shard, it->second);
  FlushFrame(shard, victim, it->second);
  shard.frames.erase(it);
  ++shard.stats.evictions;
}

void BufferPool::RetireFrame(Shard& shard, Frame& frame) {
  if (frame.prefetched) {
    frame.prefetched = false;
    ++shard.stats.prefetch_wasted;
    if (ObsEnabled()) {
      pending_obs_wasted_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void BufferPool::PublishPrefetchObs() {
  const uint64_t used =
      pending_obs_used_.exchange(0, std::memory_order_relaxed);
  const uint64_t wasted =
      pending_obs_wasted_.exchange(0, std::memory_order_relaxed);
  if (!ObsEnabled()) {
    return;  // Backlog only accumulates under MCM_OBS; drop any remainder.
  }
  auto& registry = MetricsRegistry::Global();
  if (used > 0) {
    registry.GetCounter("prefetch.used").Increment(used);
  }
  if (wasted > 0) {
    registry.GetCounter("prefetch.wasted").Increment(wasted);
  }
}

void BufferPool::Unpin(PageId id) {
  Shard& shard = ShardFor(id);
  MutexLock lock(&shard.mu);
  auto it = shard.frames.find(id);
  if (it == shard.frames.end() || it->second.pin_count == 0) {
    throw std::logic_error("BufferPool: unpin of unpinned page");
  }
  Frame& frame = it->second;
  if (--frame.pin_count == 0) {
    shard.lru.push_front(id);
    frame.lru_pos = shard.lru.begin();
    frame.in_lru = true;
  }
}

void BufferPool::MarkDirty(PageId id) {
  Shard& shard = ShardFor(id);
  MutexLock lock(&shard.mu);
  auto it = shard.frames.find(id);
  if (it == shard.frames.end()) {
    throw std::logic_error("BufferPool: MarkDirty of absent page");
  }
  it->second.dirty = true;
}

void BufferPool::FlushFrame(Shard& shard, PageId id, Frame& frame) {
  if (frame.dirty) {
    file_->WritePage(id, frame.data.data());
    frame.dirty = false;
    ++shard.stats.flushes;
  }
}

void BufferPool::FlushAll() {
  for (auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    for (auto& [id, frame] : shard->frames) {
      FlushFrame(*shard, id, frame);
    }
  }
}

void BufferPool::EvictAll() {
  for (auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    for (auto it = shard->frames.begin(); it != shard->frames.end();) {
      if (it->second.pin_count == 0) {
        RetireFrame(*shard, it->second);
        FlushFrame(*shard, it->first, it->second);
        if (it->second.in_lru) {
          shard->lru.erase(it->second.lru_pos);
        }
        it = shard->frames.erase(it);
      } else {
        ++it;
      }
    }
  }
}

size_t BufferPool::num_buffered() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    total += shard->frames.size();
  }
  return total;
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats total;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    total.fetches += shard->stats.fetches;
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.evictions += shard->stats.evictions;
    total.flushes += shard->stats.flushes;
    total.prefetch_issued += shard->stats.prefetch_issued;
    total.prefetch_used += shard->stats.prefetch_used;
    total.prefetch_wasted += shard->stats.prefetch_wasted;
  }
  return total;
}

void BufferPool::ResetStats() {
  for (auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    shard->stats = BufferPoolStats();
  }
}

}  // namespace mcm
