#include "mcm/storage/buffer_pool.h"

#include <stdexcept>

namespace mcm {

PageGuard::PageGuard(BufferPool* pool, PageId id, uint8_t* data)
    : pool_(pool), id_(id), data_(data) {}

PageGuard::PageGuard(PageGuard&& other) noexcept
    : pool_(other.pool_), id_(other.id_), data_(other.data_) {
  other.pool_ = nullptr;
  other.data_ = nullptr;
  other.id_ = kInvalidPageId;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    id_ = other.id_;
    data_ = other.data_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
    other.id_ = kInvalidPageId;
  }
  return *this;
}

PageGuard::~PageGuard() { Release(); }

void PageGuard::MarkDirty() {
  if (pool_ != nullptr) {
    pool_->MarkDirty(id_);
  }
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(id_);
    pool_ = nullptr;
    data_ = nullptr;
    id_ = kInvalidPageId;
  }
}

BufferPool::BufferPool(PageFile* file, size_t capacity)
    : file_(file), capacity_(capacity) {
  if (file == nullptr) {
    throw std::invalid_argument("BufferPool: null page file");
  }
  if (capacity == 0) {
    throw std::invalid_argument("BufferPool: capacity must be > 0");
  }
}

BufferPool::~BufferPool() {
  // Best effort write-back; errors in destructors cannot be reported.
  try {
    FlushAll();
  } catch (...) {
  }
}

PageGuard BufferPool::Fetch(PageId id) {
  ++stats_.fetches;
  Frame& frame = LoadFrame(id, /*read_from_file=*/true);
  return PageGuard(this, id, frame.data.data());
}

PageGuard BufferPool::NewPage() {
  const PageId id = file_->Allocate();
  ++stats_.fetches;
  Frame& frame = LoadFrame(id, /*read_from_file=*/false);
  frame.dirty = true;
  return PageGuard(this, id, frame.data.data());
}

BufferPool::Frame& BufferPool::LoadFrame(PageId id, bool read_from_file) {
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    ++stats_.hits;
    Frame& frame = it->second;
    if (frame.in_lru) {
      lru_.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    ++frame.pin_count;
    return frame;
  }
  ++stats_.misses;
  EvictOneIfFull();
  Frame& frame = frames_[id];
  frame.data.assign(file_->page_size(), 0);
  if (read_from_file) {
    file_->Read(id, frame.data.data());
  }
  frame.pin_count = 1;
  return frame;
}

void BufferPool::EvictOneIfFull() {
  if (frames_.size() < capacity_) {
    return;
  }
  if (lru_.empty()) {
    throw std::runtime_error("BufferPool: all frames pinned, cannot evict");
  }
  const PageId victim = lru_.back();
  lru_.pop_back();
  auto it = frames_.find(victim);
  FlushFrame(victim, it->second);
  frames_.erase(it);
  ++stats_.evictions;
}

void BufferPool::Unpin(PageId id) {
  auto it = frames_.find(id);
  if (it == frames_.end() || it->second.pin_count == 0) {
    throw std::logic_error("BufferPool: unpin of unpinned page");
  }
  Frame& frame = it->second;
  if (--frame.pin_count == 0) {
    lru_.push_front(id);
    frame.lru_pos = lru_.begin();
    frame.in_lru = true;
  }
}

void BufferPool::MarkDirty(PageId id) {
  auto it = frames_.find(id);
  if (it == frames_.end()) {
    throw std::logic_error("BufferPool: MarkDirty of absent page");
  }
  it->second.dirty = true;
}

void BufferPool::FlushFrame(PageId id, Frame& frame) {
  if (frame.dirty) {
    file_->Write(id, frame.data.data());
    frame.dirty = false;
    ++stats_.flushes;
  }
}

void BufferPool::FlushAll() {
  for (auto& [id, frame] : frames_) {
    FlushFrame(id, frame);
  }
}

void BufferPool::EvictAll() {
  for (auto it = frames_.begin(); it != frames_.end();) {
    if (it->second.pin_count == 0) {
      FlushFrame(it->first, it->second);
      if (it->second.in_lru) {
        lru_.erase(it->second.lru_pos);
      }
      it = frames_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace mcm
