// LRU buffer pool over a PageFile. Index node stores fetch their pages
// through the pool; logical fetches are what the paper counts as I/O cost,
// while pool misses correspond to physical reads.
//
// The pool is safe for concurrent readers (the batch executor's threads):
// frames are partitioned into shards keyed by page id, each shard holding
// its own mutex, LRU list, and counters. Small pools (the default for unit
// tests and tight cost experiments) get exactly one shard, which preserves
// the classic single-LRU eviction order; larger pools auto-shard (about one
// shard per 64 frames, at most 8) so readers on different shards never
// contend. stats() aggregates the per-shard counters into a snapshot
// returned by value.

#ifndef MCM_STORAGE_BUFFER_POOL_H_
#define MCM_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mcm/common/mutex.h"
#include "mcm/common/thread_annotations.h"
#include "mcm/storage/page_file.h"

namespace mcm {

/// Buffer pool counters.
struct BufferPoolStats {
  uint64_t fetches = 0;    ///< Logical page requests.
  uint64_t hits = 0;       ///< Requests served from the pool.
  uint64_t misses = 0;     ///< Requests that read from the PageFile.
  uint64_t evictions = 0;  ///< Frames evicted to make room.
  uint64_t flushes = 0;    ///< Dirty pages written back.
  uint64_t prefetch_issued = 0;  ///< Pages loaded ahead of demand.
  uint64_t prefetch_used = 0;    ///< Prefetched pages later fetched.
  uint64_t prefetch_wasted = 0;  ///< Prefetched pages evicted unfetched.
};

class BufferPool;

/// RAII pin on a buffered page. The frame cannot be evicted while at least
/// one PageGuard references it. Call MarkDirty() after mutating data().
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, PageId id, uint8_t* data);
  PageGuard(PageGuard&& other) noexcept;
  PageGuard& operator=(PageGuard&& other) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard();

  /// Mutable page bytes (page_size() of them). Valid while the guard lives.
  uint8_t* data() const { return data_; }
  PageId id() const { return id_; }
  bool valid() const { return pool_ != nullptr; }

  /// Flags the page so it is written back before eviction.
  void MarkDirty();

  /// Releases the pin early.
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPageId;
  uint8_t* data_ = nullptr;
};

/// Fixed-capacity LRU page cache with pin counts, dirty write-back, and
/// sharded locking for concurrent readers.
class BufferPool {
 public:
  /// Creates a pool of `capacity` frames over `file` (not owned).
  /// `num_shards` = 0 picks automatically: one shard per 64 frames,
  /// clamped to [1, 8] — so small pools behave as a single exact LRU.
  BufferPool(PageFile* file, size_t capacity, size_t num_shards = 0);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches page `id`, pinning it in the pool.
  PageGuard Fetch(PageId id);

  /// Fetches page `id` and reports through `*hit` whether this particular
  /// request was served from the pool — the race-free way for a caller to
  /// attribute hit/miss to its own fetch (diffing stats() snapshots is not,
  /// once other threads share the pool).
  PageGuard Fetch(PageId id, bool* hit);

  /// Allocates a fresh page and returns it pinned and zeroed.
  PageGuard NewPage();

  /// Readahead: loads whatever pages of [first, first + count) are absent
  /// from the pool, reading each contiguous absent span with one batched
  /// PageFile::ReadRun (one physical read operation per span). Loaded
  /// frames enter the pool unpinned and flagged: a later Fetch of such a
  /// frame counts prefetch_used, an eviction before any fetch counts
  /// prefetch_wasted. Shards whose frames are all pinned are skipped
  /// rather than grown. Returns the number of pages loaded
  /// (prefetch_issued). Never affects Fetch results or logical counts —
  /// only the hit/miss split and the physical read pattern.
  size_t Prefetch(PageId first, size_t count);

  /// Writes back all dirty pages (pinned ones included).
  void FlushAll();

  /// Drops all unpinned frames (after flushing them); used by tests to force
  /// cold reads.
  void EvictAll();

  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }
  size_t num_buffered() const;

  /// Aggregated counter snapshot (sums over shards), returned by value.
  BufferPoolStats stats() const;

  /// Zeroes the counters. Prefer diffing CaptureIoStats (storage/io_stats.h)
  /// snapshots instead: a reset clobbers every concurrent observer's view of
  /// the same pool.
  void ResetStats();
  PageFile* file() const { return file_; }

 private:
  friend class PageGuard;

  struct Frame {
    std::vector<uint8_t> data;
    uint32_t pin_count = 0;
    bool dirty = false;
    bool prefetched = false;  // Loaded by Prefetch, not yet fetched.
    std::list<PageId>::iterator lru_pos;  // Valid only when pin_count == 0.
    bool in_lru = false;
  };

  /// One lock domain: a slice of the frame capacity with its own LRU.
  struct Shard {
    mutable Mutex mu;
    size_t capacity = 0;  // Immutable once the pool is constructed.
    std::unordered_map<PageId, Frame> frames MCM_GUARDED_BY(mu);
    std::list<PageId> lru MCM_GUARDED_BY(mu);  // Front = most recent;
                                               // only unpinned pages.
    BufferPoolStats stats MCM_GUARDED_BY(mu);
  };

  Shard& ShardFor(PageId id) { return *shards_[id % shards_.size()]; }

  void Unpin(PageId id);
  void MarkDirty(PageId id);
  Frame& LoadFrame(Shard& shard, PageId id, bool read_from_file, bool* hit)
      MCM_REQUIRES(shard.mu);
  void EvictOneIfFull(Shard& shard) MCM_REQUIRES(shard.mu);
  void FlushFrame(Shard& shard, PageId id, Frame& frame)
      MCM_REQUIRES(shard.mu);
  void RetireFrame(Shard& shard, Frame& frame) MCM_REQUIRES(shard.mu);
  void PublishPrefetchObs();

  PageFile* file_;
  size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Obs-registry backlog for prefetch_used/wasted events noted under a
  /// shard lock; drained (and forwarded to the metrics registry) at the
  /// next unlocked opportunity so no registry lock nests inside a shard's.
  std::atomic<uint64_t> pending_obs_used_{0};
  std::atomic<uint64_t> pending_obs_wasted_{0};
};

}  // namespace mcm

#endif  // MCM_STORAGE_BUFFER_POOL_H_
