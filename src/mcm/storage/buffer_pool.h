// LRU buffer pool over a PageFile. Index node stores fetch their pages
// through the pool; logical fetches are what the paper counts as I/O cost,
// while pool misses correspond to physical reads.

#ifndef MCM_STORAGE_BUFFER_POOL_H_
#define MCM_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "mcm/storage/page_file.h"

namespace mcm {

/// Buffer pool counters.
struct BufferPoolStats {
  uint64_t fetches = 0;    ///< Logical page requests.
  uint64_t hits = 0;       ///< Requests served from the pool.
  uint64_t misses = 0;     ///< Requests that read from the PageFile.
  uint64_t evictions = 0;  ///< Frames evicted to make room.
  uint64_t flushes = 0;    ///< Dirty pages written back.
};

class BufferPool;

/// RAII pin on a buffered page. The frame cannot be evicted while at least
/// one PageGuard references it. Call MarkDirty() after mutating data().
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, PageId id, uint8_t* data);
  PageGuard(PageGuard&& other) noexcept;
  PageGuard& operator=(PageGuard&& other) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard();

  /// Mutable page bytes (page_size() of them). Valid while the guard lives.
  uint8_t* data() const { return data_; }
  PageId id() const { return id_; }
  bool valid() const { return pool_ != nullptr; }

  /// Flags the page so it is written back before eviction.
  void MarkDirty();

  /// Releases the pin early.
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPageId;
  uint8_t* data_ = nullptr;
};

/// Fixed-capacity LRU page cache with pin counts and dirty write-back.
class BufferPool {
 public:
  /// Creates a pool of `capacity` frames over `file` (not owned).
  BufferPool(PageFile* file, size_t capacity);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches page `id`, pinning it in the pool.
  PageGuard Fetch(PageId id);

  /// Allocates a fresh page and returns it pinned and zeroed.
  PageGuard NewPage();

  /// Writes back all dirty pages (pinned ones included).
  void FlushAll();

  /// Drops all unpinned frames (after flushing them); used by tests to force
  /// cold reads.
  void EvictAll();

  size_t capacity() const { return capacity_; }
  size_t num_buffered() const { return frames_.size(); }
  const BufferPoolStats& stats() const { return stats_; }

  /// Zeroes the counters. Prefer diffing CaptureIoStats (storage/io_stats.h)
  /// snapshots instead: a reset clobbers every concurrent observer's view of
  /// the same pool.
  void ResetStats() { stats_ = BufferPoolStats(); }
  PageFile* file() const { return file_; }

 private:
  friend class PageGuard;

  struct Frame {
    std::vector<uint8_t> data;
    uint32_t pin_count = 0;
    bool dirty = false;
    std::list<PageId>::iterator lru_pos;  // Valid only when pin_count == 0.
    bool in_lru = false;
  };

  void Unpin(PageId id);
  void MarkDirty(PageId id);
  Frame& LoadFrame(PageId id, bool read_from_file);
  void EvictOneIfFull();
  void FlushFrame(PageId id, Frame& frame);

  PageFile* file_;
  size_t capacity_;
  std::unordered_map<PageId, Frame> frames_;
  std::list<PageId> lru_;  // Front = most recently used; only unpinned pages.
  BufferPoolStats stats_;
};

}  // namespace mcm

#endif  // MCM_STORAGE_BUFFER_POOL_H_
