// A versioned cache of decoded (deserialized) node objects, layered above
// the BufferPool: the pool caches page *bytes*, this caches the C++ object
// those bytes decode to, so repeated traversals of a hot node stop paying
// Node::Deserialize on every visit.
//
// Correctness contract:
//
//  - Entries are shared_ptr<const NodeT>: readers on concurrent query
//    threads share one immutable decoded object.
//  - Writers call Invalidate(key) whenever the backing page changes
//    (write-back or free). Invalidation bumps the owning shard's version
//    counter; Insert(key, version, node) only publishes when the shard
//    version still equals the one captured *before* the page bytes were
//    read, so a decode raced by a write can never install a stale object.
//  - The cache is a pure performance layer: a Lookup miss simply decodes
//    from the page as before, and logical access counting stays in the
//    node store, so the paper's I/O cost is untouched.
//
// Sharded like the BufferPool (about one shard per 64 entries, at most 8)
// with a per-shard mutex + LRU, so concurrent readers on different shards
// never contend. Capacity 0 disables the cache (every Lookup misses,
// Insert is a no-op).

#ifndef MCM_STORAGE_DECODED_CACHE_H_
#define MCM_STORAGE_DECODED_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mcm/common/mutex.h"
#include "mcm/common/thread_annotations.h"

namespace mcm {

/// Decoded-cache counters (aggregated over shards).
struct DecodedCacheStats {
  uint64_t hits = 0;           ///< Lookups served from the cache.
  uint64_t misses = 0;         ///< Lookups that must decode from the page.
  uint64_t insertions = 0;     ///< Decoded objects published.
  uint64_t stale_inserts = 0;  ///< Inserts dropped by a version mismatch.
  uint64_t invalidations = 0;  ///< Entries/versions killed by writers.
  uint64_t evictions = 0;      ///< Entries evicted by the LRU.
};

/// LRU cache of immutable decoded nodes keyed by page/node id.
template <typename NodeT>
class DecodedNodeCache {
 public:
  /// `capacity` = max cached objects across all shards; 0 disables the
  /// cache. `num_shards` = 0 picks automatically like the BufferPool.
  explicit DecodedNodeCache(size_t capacity, size_t num_shards = 0)
      : capacity_(capacity) {
    if (num_shards == 0) {
      num_shards = capacity / 64;
      if (num_shards < 1) num_shards = 1;
      if (num_shards > 8) num_shards = 8;
    }
    if (capacity > 0 && num_shards > capacity) num_shards = capacity;
    shards_.reserve(num_shards);
    const size_t base = capacity / num_shards;
    const size_t extra = capacity % num_shards;
    for (size_t s = 0; s < num_shards; ++s) {
      shards_.push_back(std::make_unique<Shard>());
      shards_.back()->capacity = base + (s < extra ? 1 : 0);
    }
  }

  DecodedNodeCache(const DecodedNodeCache&) = delete;
  DecodedNodeCache& operator=(const DecodedNodeCache&) = delete;

  bool enabled() const { return capacity_ > 0; }
  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }

  /// Returns the cached decoded node for `key`, or null on a miss.
  std::shared_ptr<const NodeT> Lookup(uint64_t key) {
    Shard& shard = ShardFor(key);
    MutexLock lock(&shard.mu);
    auto it = shard.entries.find(key);
    if (it == shard.entries.end()) {
      ++shard.stats.misses;
      return nullptr;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
    ++shard.stats.hits;
    return it->second.node;
  }

  /// Version of the shard owning `key`. Capture this BEFORE reading the
  /// page bytes that will be decoded, and hand it back to Insert().
  uint64_t Version(uint64_t key) {
    Shard& shard = ShardFor(key);
    MutexLock lock(&shard.mu);
    return shard.version;
  }

  /// Publishes a decoded node, unless the shard version moved past
  /// `version` (a writer invalidated while we were decoding — the object
  /// may be stale, so it is dropped).
  void Insert(uint64_t key, uint64_t version,
              std::shared_ptr<const NodeT> node) {
    if (capacity_ == 0) return;
    Shard& shard = ShardFor(key);
    MutexLock lock(&shard.mu);
    if (shard.version != version) {
      ++shard.stats.stale_inserts;
      return;
    }
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      it->second.node = std::move(node);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
      return;
    }
    if (shard.entries.size() >= shard.capacity) {
      if (shard.capacity == 0) return;
      const uint64_t victim = shard.lru.back();
      shard.lru.pop_back();
      shard.entries.erase(victim);
      ++shard.stats.evictions;
    }
    shard.lru.push_front(key);
    shard.entries.emplace(key, Entry{std::move(node), shard.lru.begin()});
    ++shard.stats.insertions;
  }

  /// Drops `key` and bumps the shard version so in-flight decodes of the
  /// old bytes cannot be published. Call on every page write-back or free.
  void Invalidate(uint64_t key) {
    Shard& shard = ShardFor(key);
    MutexLock lock(&shard.mu);
    ++shard.version;
    ++shard.stats.invalidations;
    auto it = shard.entries.find(key);
    if (it == shard.entries.end()) return;
    shard.lru.erase(it->second.lru_pos);
    shard.entries.erase(it);
  }

  /// Drops every entry and bumps every shard version.
  void Clear() {
    for (auto& shard : shards_) {
      MutexLock lock(&shard->mu);
      ++shard->version;
      shard->entries.clear();
      shard->lru.clear();
    }
  }

  /// Number of cached objects right now (sums over shards).
  size_t size() const {
    size_t total = 0;
    for (const auto& shard : shards_) {
      MutexLock lock(&shard->mu);
      total += shard->entries.size();
    }
    return total;
  }

  /// Aggregated counter snapshot, returned by value.
  DecodedCacheStats stats() const {
    DecodedCacheStats total;
    for (const auto& shard : shards_) {
      MutexLock lock(&shard->mu);
      total.hits += shard->stats.hits;
      total.misses += shard->stats.misses;
      total.insertions += shard->stats.insertions;
      total.stale_inserts += shard->stats.stale_inserts;
      total.invalidations += shard->stats.invalidations;
      total.evictions += shard->stats.evictions;
    }
    return total;
  }

 private:
  struct Entry {
    std::shared_ptr<const NodeT> node;
    std::list<uint64_t>::iterator lru_pos;
  };

  /// One lock domain: a slice of the capacity with its own LRU + version.
  struct Shard {
    mutable Mutex mu;
    size_t capacity = 0;  // Immutable once the cache is constructed.
    uint64_t version MCM_GUARDED_BY(mu) = 0;
    std::unordered_map<uint64_t, Entry> entries MCM_GUARDED_BY(mu);
    std::list<uint64_t> lru MCM_GUARDED_BY(mu);  // Front = most recent.
    DecodedCacheStats stats MCM_GUARDED_BY(mu);
  };

  Shard& ShardFor(uint64_t key) { return *shards_[key % shards_.size()]; }

  size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace mcm

#endif  // MCM_STORAGE_DECODED_CACHE_H_
