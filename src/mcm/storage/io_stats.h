// Snapshot/diff helper for the storage-layer counters. BufferPool and
// PageFile counters only ever grow; callers that used to ResetStats()
// between measurements (clobbering every other observer of the same pool)
// should instead capture a snapshot before the measured section and
// subtract it afterwards:
//
//   const IoStatsSnapshot before = CaptureIoStats(pool);
//   ... run queries ...
//   const IoStatsSnapshot delta = CaptureIoStats(pool) - before;
//   // delta.pool.hits / delta.pool.misses / delta.file.reads ...

#ifndef MCM_STORAGE_IO_STATS_H_
#define MCM_STORAGE_IO_STATS_H_

#include "mcm/storage/buffer_pool.h"
#include "mcm/storage/page_file.h"

namespace mcm {

/// Combined buffer-pool and page-file counters at one point in time.
struct IoStatsSnapshot {
  BufferPoolStats pool;
  PageFileStats file;
};

inline BufferPoolStats operator-(const BufferPoolStats& a,
                                 const BufferPoolStats& b) {
  BufferPoolStats d;
  d.fetches = a.fetches - b.fetches;
  d.hits = a.hits - b.hits;
  d.misses = a.misses - b.misses;
  d.evictions = a.evictions - b.evictions;
  d.flushes = a.flushes - b.flushes;
  d.prefetch_issued = a.prefetch_issued - b.prefetch_issued;
  d.prefetch_used = a.prefetch_used - b.prefetch_used;
  d.prefetch_wasted = a.prefetch_wasted - b.prefetch_wasted;
  return d;
}

inline PageFileStats operator-(const PageFileStats& a,
                               const PageFileStats& b) {
  PageFileStats d;
  d.reads = a.reads - b.reads;
  d.writes = a.writes - b.writes;
  d.allocations = a.allocations - b.allocations;
  d.read_pages = a.read_pages - b.read_pages;
  d.read_ns = a.read_ns - b.read_ns;
  return d;
}

inline IoStatsSnapshot operator-(const IoStatsSnapshot& a,
                                 const IoStatsSnapshot& b) {
  return {a.pool - b.pool, a.file - b.file};
}

/// Captures the pool's counters together with its backing file's.
inline IoStatsSnapshot CaptureIoStats(const BufferPool& pool) {
  return {pool.stats(), pool.file()->stats()};
}

}  // namespace mcm

#endif  // MCM_STORAGE_IO_STATS_H_
