#include "mcm/storage/page_file.h"

#include <cstring>
#include <stdexcept>

#include "mcm/common/clock.h"
#include "mcm/obs/metrics.h"

namespace mcm {

PageFile::PageFile(size_t page_size) : page_size_(page_size) {
  if (page_size == 0) {
    throw std::invalid_argument("PageFile: page size must be > 0");
  }
}

PageId PageFile::Allocate() {
  MutexLock lock(&mu_);
  ++stats_.allocations;
  if (!free_list_.empty()) {
    const PageId id = free_list_.back();
    free_list_.pop_back();
    return id;
  }
  const PageId id = static_cast<PageId>(num_pages_);
  ++num_pages_;
  DoExtend(num_pages_);
  return id;
}

void PageFile::Free(PageId id) {
  MutexLock lock(&mu_);
  CheckId(id);
  free_list_.push_back(id);
}

void PageFile::ReadPage(PageId id, uint8_t* out) {
  MutexLock lock(&mu_);
  CheckId(id);
  ++stats_.reads;
  ++stats_.read_pages;
  if (ObsEnabled()) {
    const uint64_t start_ns = MonotonicNanos();
    DoRead(id, out);
    stats_.read_ns += MonotonicNanos() - start_ns;
    return;
  }
  DoRead(id, out);
}

void PageFile::ReadRun(PageId first, size_t count, uint8_t* out) {
  if (count == 0) {
    return;
  }
  MutexLock lock(&mu_);
  CheckId(first);
  CheckId(first + static_cast<PageId>(count) - 1);
  ++stats_.reads;
  stats_.read_pages += count;
  if (ObsEnabled()) {
    const uint64_t start_ns = MonotonicNanos();
    DoReadRun(first, count, out);
    stats_.read_ns += MonotonicNanos() - start_ns;
    return;
  }
  DoReadRun(first, count, out);
}

void PageFile::DoReadRun(PageId first, size_t count, uint8_t* out) {
  for (size_t i = 0; i < count; ++i) {
    DoRead(first + static_cast<PageId>(i), out + i * page_size_);
  }
}

void PageFile::WritePage(PageId id, const uint8_t* data) {
  MutexLock lock(&mu_);
  CheckId(id);
  ++stats_.writes;
  DoWrite(id, data);
}

void PageFile::CheckId(PageId id) const {
  if (id >= num_pages_) {
    throw std::out_of_range("PageFile: page id out of range");
  }
}

InMemoryPageFile::InMemoryPageFile(size_t page_size) : PageFile(page_size) {}

void InMemoryPageFile::DoRead(PageId id, uint8_t* out) {
  std::memcpy(out, data_.data() + static_cast<size_t>(id) * page_size_,
              page_size_);
}

void InMemoryPageFile::DoWrite(PageId id, const uint8_t* data) {
  std::memcpy(data_.data() + static_cast<size_t>(id) * page_size_, data,
              page_size_);
}

void InMemoryPageFile::DoExtend(size_t new_num_pages) {
  data_.resize(new_num_pages * page_size_, 0);
}

void InMemoryPageFile::DoReadRun(PageId first, size_t count, uint8_t* out) {
  std::memcpy(out, data_.data() + static_cast<size_t>(first) * page_size_,
              count * page_size_);
}

StdioPageFile::StdioPageFile(const std::string& path, size_t page_size,
                             Mode mode)
    : PageFile(page_size) {
  file_ = std::fopen(path.c_str(),
                     mode == Mode::kCreate ? "wb+" : "rb+");
  if (file_ == nullptr) {
    throw std::runtime_error("StdioPageFile: cannot open " + path);
  }
  if (mode == Mode::kOpenExisting) {
    if (std::fseek(file_, 0, SEEK_END) != 0) {
      throw std::runtime_error("StdioPageFile: cannot size " + path);
    }
    const long bytes = std::ftell(file_);
    if (bytes < 0 || static_cast<size_t>(bytes) % page_size != 0) {
      throw std::runtime_error(
          "StdioPageFile: file size is not a multiple of the page size");
    }
    num_pages_ = static_cast<size_t>(bytes) / page_size;
  }
}

StdioPageFile::~StdioPageFile() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

void StdioPageFile::DoRead(PageId id, uint8_t* out) {
  if (std::fseek(file_, static_cast<long>(static_cast<size_t>(id) *
                                          page_size_),
                 SEEK_SET) != 0 ||
      std::fread(out, 1, page_size_, file_) != page_size_) {
    throw std::runtime_error("StdioPageFile: read failed");
  }
}

void StdioPageFile::DoWrite(PageId id, const uint8_t* data) {
  if (std::fseek(file_, static_cast<long>(static_cast<size_t>(id) *
                                          page_size_),
                 SEEK_SET) != 0 ||
      std::fwrite(data, 1, page_size_, file_) != page_size_) {
    throw std::runtime_error("StdioPageFile: write failed");
  }
}

void StdioPageFile::DoReadRun(PageId first, size_t count, uint8_t* out) {
  // One seek, one sequential transfer — this is the physical win the
  // bulk loader's contiguous child runs are laid out for.
  if (std::fseek(file_, static_cast<long>(static_cast<size_t>(first) *
                                          page_size_),
                 SEEK_SET) != 0 ||
      std::fread(out, 1, count * page_size_, file_) != count * page_size_) {
    throw std::runtime_error("StdioPageFile: run read failed");
  }
}

void StdioPageFile::DoExtend(size_t new_num_pages) {
  // Extend the file with a zero page at the end so reads of fresh pages
  // succeed.
  std::vector<uint8_t> zeros(page_size_, 0);
  if (std::fseek(file_, static_cast<long>((new_num_pages - 1) * page_size_),
                 SEEK_SET) != 0 ||
      std::fwrite(zeros.data(), 1, page_size_, file_) != page_size_) {
    throw std::runtime_error("StdioPageFile: extend failed");
  }
}

}  // namespace mcm
