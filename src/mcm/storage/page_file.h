// Disk-page substrate. An M-tree node occupies exactly one fixed-size page;
// the paper's I/O cost is the number of page (node) reads. PageFile is the
// raw store; BufferPool (buffer_pool.h) adds caching on top.

#ifndef MCM_STORAGE_PAGE_FILE_H_
#define MCM_STORAGE_PAGE_FILE_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "mcm/common/mutex.h"
#include "mcm/common/thread_annotations.h"

namespace mcm {

/// Identifier of a page within a PageFile.
using PageId = uint32_t;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPageId = static_cast<PageId>(-1);

/// Physical I/O counters of a PageFile.
struct PageFileStats {
  /// Physical read *operations*: one per ReadPage call and one per ReadRun
  /// call, however many pages the run covers — so a batched sequential read
  /// of a child run costs one operation where per-page reads cost k.
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t allocations = 0;
  /// Pages transferred by read operations (ReadPage adds 1, ReadRun adds
  /// the run length). reads == read_pages exactly when no run reads happen.
  uint64_t read_pages = 0;
  /// Wall-clock nanoseconds spent inside ReadPage/ReadRun. Accumulated only
  /// when MCM_OBS is on (zero otherwise), so the untimed read path is
  /// unchanged.
  uint64_t read_ns = 0;
};

/// Abstract store of fixed-size pages.
///
/// Implementations must support random reads and writes of whole pages.
/// Freed pages are recycled by subsequent allocations. All public
/// operations are serialized on an internal mutex, so a PageFile can back
/// a sharded BufferPool whose shards read through it concurrently (stdio
/// files share one seek position; the lock is required, not optional).
class PageFile {
 public:
  explicit PageFile(size_t page_size);
  virtual ~PageFile() = default;

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Allocates a new (zeroed) page and returns its id.
  PageId Allocate() MCM_EXCLUDES(mu_);

  /// Returns a previously allocated page to the free list.
  void Free(PageId id) MCM_EXCLUDES(mu_);

  /// Reads page `id` into `out` (must hold page_size() bytes).
  ///
  /// Only the BufferPool (and storage tests) may call this directly: every
  /// index page access must flow through a pool so logical I/O counts stay
  /// exact (enforced by the `no-pagefile-bypass` lint rule).
  void ReadPage(PageId id, uint8_t* out) MCM_EXCLUDES(mu_);

  /// Reads `count` consecutive pages starting at `first` into `out` (which
  /// must hold count * page_size() bytes) as ONE physical read operation:
  /// `stats().reads` grows by one while `stats().read_pages` grows by
  /// `count`. Backends that can seek once (stdio, memory) service the whole
  /// run sequentially. Same access policy as ReadPage().
  void ReadRun(PageId first, size_t count, uint8_t* out) MCM_EXCLUDES(mu_);

  /// Writes page_size() bytes from `data` to page `id`. Same access policy
  /// as ReadPage().
  void WritePage(PageId id, const uint8_t* data) MCM_EXCLUDES(mu_);

  size_t page_size() const { return page_size_; }

  /// Number of pages ever allocated (including freed ones).
  size_t num_pages() const MCM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return num_pages_;
  }

  /// Counter snapshot, returned by value (safe under concurrent readers).
  PageFileStats stats() const MCM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_;
  }

  /// Zeroes the counters. Prefer diffing CaptureIoStats (storage/io_stats.h)
  /// snapshots instead: a reset clobbers every concurrent observer's view.
  void ResetStats() MCM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    stats_ = PageFileStats();
  }

 protected:
  virtual void DoRead(PageId id, uint8_t* out) MCM_REQUIRES(mu_) = 0;
  virtual void DoWrite(PageId id, const uint8_t* data) MCM_REQUIRES(mu_) = 0;
  virtual void DoExtend(size_t new_num_pages) MCM_REQUIRES(mu_) = 0;
  /// Services a run read; the default loops DoRead per page, backends with
  /// cheap sequential access override it with a single transfer.
  virtual void DoReadRun(PageId first, size_t count, uint8_t* out)
      MCM_REQUIRES(mu_);

  void CheckId(PageId id) const MCM_REQUIRES(mu_);

  mutable Mutex mu_;  ///< Serializes every public operation.
  size_t page_size_;  ///< Immutable after construction.
  size_t num_pages_ MCM_GUARDED_BY(mu_) = 0;
  std::vector<PageId> free_list_ MCM_GUARDED_BY(mu_);
  PageFileStats stats_ MCM_GUARDED_BY(mu_);
};

/// Page store backed by heap memory. This is the default store for
/// experiments: node accesses are still counted logically through the
/// buffer pool, without paying real disk latency.
class InMemoryPageFile : public PageFile {
 public:
  explicit InMemoryPageFile(size_t page_size);

 protected:
  void DoRead(PageId id, uint8_t* out) MCM_REQUIRES(mu_) override;
  void DoWrite(PageId id, const uint8_t* data) MCM_REQUIRES(mu_) override;
  void DoExtend(size_t new_num_pages) MCM_REQUIRES(mu_) override;
  void DoReadRun(PageId first, size_t count, uint8_t* out)
      MCM_REQUIRES(mu_) override;

 private:
  std::vector<uint8_t> data_ MCM_GUARDED_BY(mu_);
};

/// Page store backed by a real file (stdio, buffered). Demonstrates that the
/// index is genuinely disk-resident; used by the persistence layer.
class StdioPageFile : public PageFile {
 public:
  enum class Mode {
    kCreate,        ///< Create or truncate the file.
    kOpenExisting,  ///< Open a previously written page file; the page count
                    ///< is recovered from the file size.
  };

  /// Opens `path` as a page file in the given mode.
  StdioPageFile(const std::string& path, size_t page_size,
                Mode mode = Mode::kCreate);
  ~StdioPageFile() override;

 protected:
  void DoRead(PageId id, uint8_t* out) MCM_REQUIRES(mu_) override;
  void DoWrite(PageId id, const uint8_t* data) MCM_REQUIRES(mu_) override;
  void DoExtend(size_t new_num_pages) MCM_REQUIRES(mu_) override;
  void DoReadRun(PageId first, size_t count, uint8_t* out)
      MCM_REQUIRES(mu_) override;

 private:
  std::FILE* file_ MCM_PT_GUARDED_BY(mu_);
};

}  // namespace mcm

#endif  // MCM_STORAGE_PAGE_FILE_H_
