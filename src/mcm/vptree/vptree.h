// The vp-tree (Chiueh, VLDB'94 — reference [8]; Section 5 of the paper):
// a main-memory metric tree that partitions the space into spherical shells
// around vantage points. Supports the binary tree and the m-way
// generalization with quantile cutoff values, exactly the structure the
// paper's Section-5 cost model describes.
//
// Each internal node holds one vantage point (a data object), the m-1
// cutoff values mu_1..mu_{m-1}, and m children; leaves hold a single
// object by default (so one distance computation per accessed node, the
// e(N)=1 convention of the paper's vp-tree cost formula).

#ifndef MCM_VPTREE_VPTREE_H_
#define MCM_VPTREE_VPTREE_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <queue>
#include <stdexcept>
#include <vector>

#include "mcm/common/query_stats.h"
#include "mcm/common/random.h"
#include "mcm/engine/search_core.h"
#include "mcm/engine/witness.h"
#include "mcm/obs/trace.h"

namespace mcm {

namespace check {
struct IndexInspector;
}  // namespace check

/// How vantage points are chosen during construction.
enum class VantageSelection {
  kRandom,      ///< Uniformly random object.
  kBestSpread,  ///< Sampled candidates; maximize the spread (2nd moment) of
                ///< distances to a sample (Yianilos' heuristic).
};

/// vp-tree construction options.
struct VpTreeOptions {
  size_t arity = 2;          ///< m (2 = the classic binary vp-tree).
  size_t leaf_capacity = 1;  ///< Objects per leaf.
  VantageSelection selection = VantageSelection::kRandom;
  size_t selection_candidates = 8;  ///< Candidates for kBestSpread.
  size_t selection_sample = 32;     ///< Sample size for kBestSpread.
  uint64_t seed = 42;

  /// Witness-set capacity for search (engine/witness.h): how many
  /// ancestor-vantage distances each prune check may reuse. The stored
  /// side (per-subtree ancestor ranges, per-bucket-object ancestor
  /// distances) is propagated during construction without extra metric
  /// evaluations, so 0 reproduces the witness-free search bit-identically;
  /// -1 (default) resolves from MCM_WITNESSES (default 8).
  int witness_capacity = -1;
};

/// Structure statistics of a built vp-tree.
struct VpTreeStatsView {
  size_t num_objects = 0;
  size_t num_internal = 0;
  size_t num_leaves = 0;
  size_t height = 0;  ///< Max node depth (root = 1).
};

template <typename Traits>
class VpTree {
 public:
  using Object = typename Traits::Object;
  using Metric = typename Traits::Metric;
  using Result = SearchResult<Object>;

  /// Builds a vp-tree over `objects` (oid = position index).
  VpTree(const std::vector<Object>& objects, Metric metric,
         VpTreeOptions options)
      : metric_(std::move(metric)),
        options_(options),
        witness_capacity_(
            engine::ResolveWitnessCapacity(options.witness_capacity)) {
    if (options_.arity < 2) {
      throw std::invalid_argument("VpTree: arity must be >= 2");
    }
    if (options_.leaf_capacity < 1) {
      throw std::invalid_argument("VpTree: leaf capacity must be >= 1");
    }
    RandomEngine rng = MakeEngine(options_.seed, /*stream=*/13);
    std::vector<uint64_t> ids(objects.size());
    std::iota(ids.begin(), ids.end(), 0);
    std::vector<std::pair<Object, uint64_t>> items;
    items.reserve(objects.size());
    for (size_t i = 0; i < objects.size(); ++i) {
      items.emplace_back(objects[i], static_cast<uint64_t>(i));
    }
    num_objects_ = items.size();
    if (!items.empty()) {
      std::vector<std::vector<double>> rows(items.size());
      root_ = Build(std::move(items), std::move(rows), rng);
    }
  }

  /// range(Q, r): all objects within `radius`, sorted by distance.
  /// `distance_computations` counts one evaluation per vantage point or
  /// bucket object examined; `nodes_accessed` counts visited nodes (the
  /// vp-tree is main-memory, so this is informational only).
  std::vector<Result> RangeSearch(const Object& query, double radius,
                                  QueryStats* stats = nullptr) const {
    QueryStats local;
    QueryStats* st = stats ? stats : &local;
    ResetCounters(st);
    if (root_ == nullptr || radius < 0.0) {
      return {};
    }
    engine::RangeCollector<Object> collector(radius);
    Traverse(query, collector, st);
    return collector.Take();
  }

  /// NN(Q, k): best-first k-nearest-neighbor search.
  std::vector<Result> KnnSearch(const Object& query, size_t k,
                                QueryStats* stats = nullptr) const {
    QueryStats local;
    QueryStats* st = stats ? stats : &local;
    ResetCounters(st);
    if (root_ == nullptr || k == 0) {
      return {};
    }
    engine::KnnCollector<Object> collector(k);
    Traverse(query, collector, st);
    return collector.Take();
  }

  size_t size() const { return num_objects_; }
  const VpTreeOptions& options() const { return options_; }

  /// Resolved witness-set capacity (options.witness_capacity, with -1
  /// resolved from MCM_WITNESSES at construction).
  int witness_capacity() const { return witness_capacity_; }

  /// Structure statistics (node counts, height).
  VpTreeStatsView CollectStats() const {
    VpTreeStatsView view;
    view.num_objects = num_objects_;
    Walk(root_.get(), 1, &view);
    return view;
  }

 private:
  // Structural invariant checkers (src/mcm/check/) read the private node
  // graph without widening the public API.
  friend struct check::IndexInspector;

  struct Node {
    bool is_leaf = true;
    // Leaf payload.
    std::vector<std::pair<Object, uint64_t>> bucket;
    // Witness cascade: per bucket object, its distances to the ancestor
    // vantage points (index i = i-th vantage on the root path). Propagated
    // from construction-time evaluations — no extra metric calls.
    std::vector<std::vector<double>> bucket_ancestor_distances;
    // Internal payload.
    Object vantage;
    uint64_t vantage_oid = 0;
    std::vector<double> cutoffs;  ///< mu_1..mu_{m-1}, non-decreasing.
    std::vector<std::unique_ptr<Node>> children;
    // Witness cascade: [lo, hi] of d(ancestor vantage i, x) over every
    // object of this node's subtree (including its own vantage/bucket).
    std::vector<std::pair<double, double>> ancestor_ranges;
  };

  /// `rows[i]` carries items[i]'s distances to every ancestor vantage on
  /// the path down (parallel to `items`); Build aggregates them into the
  /// node's ancestor_ranges, stores them per object in leaves, and extends
  /// them with this node's vantage distances — the same evaluations that
  /// position the shells, reused instead of discarded.
  std::unique_ptr<Node> Build(std::vector<std::pair<Object, uint64_t>> items,
                              std::vector<std::vector<double>> rows,
                              RandomEngine& rng) {
    auto node = std::make_unique<Node>();
    if (!rows.empty() && !rows.front().empty()) {
      const size_t depth = rows.front().size();
      node->ancestor_ranges.assign(
          depth, {std::numeric_limits<double>::infinity(),
                  -std::numeric_limits<double>::infinity()});
      for (const auto& row : rows) {
        for (size_t a = 0; a < depth; ++a) {
          node->ancestor_ranges[a].first =
              std::min(node->ancestor_ranges[a].first, row[a]);
          node->ancestor_ranges[a].second =
              std::max(node->ancestor_ranges[a].second, row[a]);
        }
      }
    }
    if (items.size() <= options_.leaf_capacity) {
      node->is_leaf = true;
      node->bucket = std::move(items);
      node->bucket_ancestor_distances = std::move(rows);
      return node;
    }
    node->is_leaf = false;
    const size_t vp = SelectVantage(items, rng);
    node->vantage = items[vp].first;
    node->vantage_oid = items[vp].second;
    items.erase(items.begin() + static_cast<ptrdiff_t>(vp));
    rows.erase(rows.begin() + static_cast<ptrdiff_t>(vp));

    std::vector<double> dist(items.size());
    std::vector<size_t> order(items.size());
    for (size_t i = 0; i < items.size(); ++i) {
      dist[i] = metric_(node->vantage, items[i].first);
      order[i] = i;
    }
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return dist[a] < dist[b]; });

    // Split into m groups of (almost) equal cardinality; cutoffs are the
    // boundary distances (estimates of the i/m quantiles of the vantage
    // point's RDD).
    const size_t m = std::min(options_.arity, items.size());
    node->children.resize(m);
    size_t begin = 0;
    for (size_t g = 0; g < m; ++g) {
      const size_t end = items.size() * (g + 1) / m;
      std::vector<std::pair<Object, uint64_t>> part;
      std::vector<std::vector<double>> part_rows;
      part.reserve(end - begin);
      part_rows.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) {
        part.push_back(std::move(items[order[i]]));
        std::vector<double> row = std::move(rows[order[i]]);
        row.push_back(dist[order[i]]);
        part_rows.push_back(std::move(row));
      }
      if (g + 1 < m) {
        // mu_g: midpoint between the last distance of this group and the
        // first of the next keeps the partition stable under ties.
        const double left = dist[order[end - 1]];
        const double right = dist[order[end]];
        node->cutoffs.push_back(0.5 * (left + right));
      }
      node->children[g] =
          part.empty() ? nullptr
                       : Build(std::move(part), std::move(part_rows), rng);
      begin = end;
    }
    return node;
  }

  size_t SelectVantage(const std::vector<std::pair<Object, uint64_t>>& items,
                       RandomEngine& rng) {
    if (options_.selection == VantageSelection::kRandom ||
        items.size() <= 2) {
      return UniformIndex(rng, items.size());
    }
    const size_t candidates =
        std::min(options_.selection_candidates, items.size());
    const size_t sample = std::min(options_.selection_sample, items.size());
    size_t best = 0;
    double best_spread = -1.0;
    for (size_t c = 0; c < candidates; ++c) {
      const size_t cand = UniformIndex(rng, items.size());
      double mean = 0.0, mean_sq = 0.0;
      for (size_t s = 0; s < sample; ++s) {
        const size_t idx = UniformIndex(rng, items.size());
        const double d = metric_(items[cand].first, items[idx].first);
        mean += d;
        mean_sq += d * d;
      }
      mean /= static_cast<double>(sample);
      mean_sq /= static_cast<double>(sample);
      const double spread = mean_sq - mean * mean;
      if (spread > best_spread) {
        best_spread = spread;
        best = cand;
      }
    }
    return best;
  }

  /// Shared range/k-NN traversal: one Expand callback over the engine's
  /// best-first driver. A child shell [lo, hi] enters the frontier with
  /// dmin = max(lo - d, d - hi, 0), the shell/ball intersection test of
  /// Eq. 19 (with the collector's bound standing in for r_Q or r_k).
  template <typename Collector>
  void Traverse(const Object& query, Collector& collector,
                QueryStats* st) const {
    const int wcap = witness_capacity_;
    engine::BestFirstSearch<const Node*>(
        root_.get(), /*root_trace_id=*/0, collector, st,
        [&](const engine::FrontierEntry<const Node*>& item, auto& frontier) {
          const Node& node = *item.handle;
          ++st->nodes_accessed;
          if (node.is_leaf) {
            uint32_t scanned = 0;
            uint32_t wavoided = 0;
            for (size_t j = 0; j < node.bucket.size(); ++j) {
              const auto& [obj, oid] = node.bucket[j];
              const std::vector<double>& row =
                  node.bucket_ancestor_distances[j];
              auto stored = [&](uint64_t ref) {
                return ref < row.size()
                           ? engine::WitnessInterval::Point(row[ref])
                           : engine::WitnessInterval::Unknown();
              };
              // Bucket objects feed only the collector, so the early exit
              // past the bound (and a witness-avoided +inf) is safe; the
              // vantage distance below stays exact because it positions
              // every child shell.
              const uint64_t avoided_before =
                  st->distance_calcs_avoided_by_witness;
              const double d = engine::GuardedDistanceWithin(
                  item.witness, wcap, stored, metric_, query, obj,
                  collector.Bound(), st);
              if (st->distance_calcs_avoided_by_witness != avoided_before) {
                ++wavoided;
                continue;
              }
              ++scanned;
              collector.Offer(oid, obj, d);
            }
            if (st->trace != nullptr) {
              st->trace->RecordVisit(0, item.level, scanned, 0, scanned,
                                     wavoided);
            }
            return;
          }
          ++st->distance_computations;
          const double d = metric_(query, node.vantage);
          if (st->trace != nullptr) {
            st->trace->RecordVisit(0, item.level, 1, 0, 1);
          }
          collector.Offer(node.vantage_oid, node.vantage, d);
          // This vantage becomes the deepest witness of every child; its
          // ancestor index is the node's own ancestor count.
          const uint64_t self_ref = node.ancestor_ranges.size();
          const engine::WitnessChain child_witness =
              wcap > 0 ? item.witness.Extend(self_ref, d)
                       : engine::WitnessChain{};
          for (size_t i = 0; i < node.children.size(); ++i) {
            if (node.children[i] == nullptr) continue;
            const double lo = i == 0 ? 0.0 : node.cutoffs[i - 1];
            const double hi = i == node.children.size() - 1
                                  ? std::numeric_limits<double>::infinity()
                                  : node.cutoffs[i];
            const double shell_dmin = std::max({lo - d, d - hi, 0.0});
            double dmin = shell_dmin;
            PruneReason reason = PruneReason::kShellBound;
            if (wcap > 0) {
              // Tighten dmin with the child subtree's stored ancestor
              // ranges (the child's own range against this vantage is
              // tighter than the quantile cutoffs). A witness-dominated
              // cut is attributed to the witness cascade.
              const Node* child = node.children[i].get();
              const double witness_lb = engine::WitnessLowerBound(
                  child_witness, wcap, [&](uint64_t ref) {
                    if (ref < child->ancestor_ranges.size()) {
                      return engine::WitnessInterval{
                          child->ancestor_ranges[ref].first,
                          child->ancestor_ranges[ref].second};
                    }
                    return engine::WitnessInterval::Unknown();
                  });
              if (witness_lb > dmin) {
                dmin = witness_lb;
                reason = PruneReason::kWitness;
              }
            }
            frontier.PushOrPrune(dmin, item.level + 1, /*trace_id=*/0,
                                 node.children[i].get(), reason,
                                 child_witness);
          }
        });
  }

  void Walk(const Node* node, size_t depth, VpTreeStatsView* view) const {
    if (node == nullptr) return;
    view->height = std::max(view->height, depth);
    if (node->is_leaf) {
      ++view->num_leaves;
      return;
    }
    ++view->num_internal;
    for (const auto& child : node->children) {
      Walk(child.get(), depth + 1, view);
    }
  }

  Metric metric_;
  VpTreeOptions options_;
  int witness_capacity_ = 0;
  std::unique_ptr<Node> root_;
  size_t num_objects_ = 0;
};

}  // namespace mcm

#endif  // MCM_VPTREE_VPTREE_H_
