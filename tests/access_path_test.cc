#include "mcm/cost/access_path.h"

#include <cmath>

#include <gtest/gtest.h>

#include "mcm/cost/nmcm.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/distribution/estimator.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"

namespace mcm {
namespace {

using VecTraits = VectorTraits<LInfDistance>;

TEST(SequentialScanMs, Formula) {
  DiskCostParameters params;  // 5 ms/dist, 10 ms pos, 1 ms/KB.
  SequentialScanProfile profile;
  profile.num_objects = 100;
  profile.data_bytes = 2048;
  EXPECT_DOUBLE_EQ(SequentialScanMs(params, profile), 500.0 + 10.0 + 2.0);
}

TEST(ChooseAccessPath, SelectiveQueryPrefersIndex) {
  DiskCostParameters params;
  SequentialScanProfile profile;
  profile.num_objects = 10000;
  profile.data_bytes = 10000 * 64;
  // Index touches a sliver of the data.
  const auto d = ChooseAccessPath(params, 200.0, 20.0, 4096, profile);
  EXPECT_EQ(d.choice, AccessPath::kIndexScan);
  EXPECT_LT(d.index_ms, d.sequential_ms);
}

TEST(ChooseAccessPath, NonSelectiveQueryPrefersSequentialScan) {
  DiskCostParameters params;
  SequentialScanProfile profile;
  profile.num_objects = 10000;
  profile.data_bytes = 10000 * 64;
  // Index would compute nearly every distance AND pay random I/O.
  const auto d = ChooseAccessPath(params, 10000.0, 500.0, 4096, profile);
  EXPECT_EQ(d.choice, AccessPath::kSequentialScan);
  EXPECT_GT(d.index_ms, d.sequential_ms);
}

TEST(ChooseAccessPath, TieGoesToIndex) {
  DiskCostParameters free;
  free.cpu_ms_per_distance = 0.0;
  free.position_ms = 0.0;
  free.transfer_ms_per_kb = 0.0;
  const auto d = ChooseAccessPath(free, 1.0, 1.0, 4096, {});
  EXPECT_EQ(d.choice, AccessPath::kIndexScan);
  EXPECT_DOUBLE_EQ(d.index_ms, d.sequential_ms);
}

TEST(ChooseAccessPath, CrossoverMovesWithRadius) {
  // End to end: with the paper's coefficients (CPU-dominant), the index
  // wins at small radii and the crossover appears as the radius grows.
  const size_t n = 5000, dim = 10;
  const auto data = GenerateClustered(n, dim, 331);
  MTreeOptions options;
  auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options);
  EstimatorOptions eo;
  eo.num_bins = 100;
  const auto hist = EstimateDistanceDistribution(data, LInfDistance{}, eo);
  const NodeBasedCostModel model(hist, tree.CollectStats(1.0));

  DiskCostParameters params;
  SequentialScanProfile profile;
  profile.num_objects = n;
  profile.data_bytes =
      n * MTreeNode<VecTraits>::LeafEntrySize(FloatVector(dim, 0.0f));

  const auto small = ChooseAccessPath(params, model.RangeDistances(0.02),
                                      model.RangeNodes(0.02),
                                      options.node_size_bytes, profile);
  EXPECT_EQ(small.choice, AccessPath::kIndexScan);
  // At full radius the index degenerates to scanning everything through
  // random reads: sequential must win.
  const auto full = ChooseAccessPath(params, model.RangeDistances(1.0),
                                     model.RangeNodes(1.0),
                                     options.node_size_bytes, profile);
  EXPECT_EQ(full.choice, AccessPath::kSequentialScan);
}

}  // namespace
}  // namespace mcm
