#include "mcm/cost/access_path.h"

#include <cmath>

#include <gtest/gtest.h>

#include "mcm/baseline/linear_scan.h"
#include "mcm/cost/nmcm.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/distribution/estimator.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"

namespace mcm {
namespace {

using VecTraits = VectorTraits<LInfDistance>;

TEST(SequentialScanMs, Formula) {
  DiskCostParameters params;  // 5 ms/dist, 10 ms pos, 1 ms/KB.
  SequentialScanProfile profile;
  profile.num_objects = 100;
  profile.data_bytes = 2048;
  EXPECT_DOUBLE_EQ(SequentialScanMs(params, profile), 500.0 + 10.0 + 2.0);
}

TEST(ChooseAccessPath, SelectiveQueryPrefersIndex) {
  DiskCostParameters params;
  SequentialScanProfile profile;
  profile.num_objects = 10000;
  profile.data_bytes = 10000 * 64;
  // Index touches a sliver of the data.
  const auto d = ChooseAccessPath(params, 200.0, 20.0, 4096, profile);
  EXPECT_EQ(d.choice, AccessPath::kIndexScan);
  EXPECT_LT(d.index_ms, d.sequential_ms);
}

TEST(ChooseAccessPath, NonSelectiveQueryPrefersSequentialScan) {
  DiskCostParameters params;
  SequentialScanProfile profile;
  profile.num_objects = 10000;
  profile.data_bytes = 10000 * 64;
  // Index would compute nearly every distance AND pay random I/O.
  const auto d = ChooseAccessPath(params, 10000.0, 500.0, 4096, profile);
  EXPECT_EQ(d.choice, AccessPath::kSequentialScan);
  EXPECT_GT(d.index_ms, d.sequential_ms);
}

TEST(ChooseAccessPath, TieGoesToIndex) {
  DiskCostParameters free;
  free.cpu_ms_per_distance = 0.0;
  free.position_ms = 0.0;
  free.transfer_ms_per_kb = 0.0;
  const auto d = ChooseAccessPath(free, 1.0, 1.0, 4096, {});
  EXPECT_EQ(d.choice, AccessPath::kIndexScan);
  EXPECT_DOUBLE_EQ(d.index_ms, d.sequential_ms);
}

TEST(ChooseAccessPath, CrossoverMovesWithRadius) {
  // End to end: with the paper's coefficients (CPU-dominant), the index
  // wins at small radii and the crossover appears as the radius grows.
  const size_t n = 5000, dim = 10;
  const auto data = GenerateClustered(n, dim, 331);
  MTreeOptions options;
  auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options);
  EstimatorOptions eo;
  eo.num_bins = 100;
  const auto hist = EstimateDistanceDistribution(data, LInfDistance{}, eo);
  const NodeBasedCostModel model(hist, tree.CollectStats(1.0));

  DiskCostParameters params;
  SequentialScanProfile profile;
  profile.num_objects = n;
  profile.data_bytes =
      n * MTreeNode<VecTraits>::LeafEntrySize(FloatVector(dim, 0.0f));

  const auto small = ChooseAccessPath(params, model.RangeDistances(0.02),
                                      model.RangeNodes(0.02),
                                      options.node_size_bytes, profile);
  EXPECT_EQ(small.choice, AccessPath::kIndexScan);
  // At full radius the index degenerates to scanning everything through
  // random reads: sequential must win.
  const auto full = ChooseAccessPath(params, model.RangeDistances(1.0),
                                     model.RangeNodes(1.0),
                                     options.node_size_bytes, profile);
  EXPECT_EQ(full.choice, AccessPath::kSequentialScan);
}

TEST(ExecutablePlan, DispatchesToChosenArm) {
  const auto data = GenerateClustered(2000, 6, 521);
  MTreeOptions options;
  options.seed = 42;
  const auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options);
  const LinearScan<VecTraits> scan(data, LInfDistance{});
  const FloatVector q = {0.4f, 0.3f, 0.6f, 0.2f, 0.8f, 0.5f};

  // The plan itself satisfies the common query interface.
  static_assert(MetricIndex<ExecutablePlan<MTree<VecTraits>,
                                           LinearScan<VecTraits>>>);

  // Force each arm through a decision and check the executed counters
  // carry that arm's signature (the scan always pays exactly n distances).
  AccessPathDecision index_decision;
  index_decision.choice = AccessPath::kIndexScan;
  const ExecutablePlan<MTree<VecTraits>, LinearScan<VecTraits>> index_plan(
      index_decision, &tree, &scan);
  QueryStats index_stats;
  const auto via_index = index_plan.RangeSearch(q, 0.1, &index_stats);
  EXPECT_LT(index_stats.distance_computations, data.size());
  EXPECT_GT(index_stats.nodes_accessed, 0u);

  AccessPathDecision seq_decision;
  seq_decision.choice = AccessPath::kSequentialScan;
  const ExecutablePlan<MTree<VecTraits>, LinearScan<VecTraits>> seq_plan(
      seq_decision, &tree, &scan);
  QueryStats seq_stats;
  const auto via_scan = seq_plan.RangeSearch(q, 0.1, &seq_stats);
  EXPECT_EQ(seq_stats.distance_computations, data.size());
  EXPECT_EQ(seq_stats.nodes_accessed, 0u);

  // Both arms agree on the answer (shared collectors, shared tie-break).
  ASSERT_EQ(via_index.size(), via_scan.size());
  for (size_t i = 0; i < via_index.size(); ++i) {
    EXPECT_EQ(via_index[i].oid, via_scan[i].oid);
    EXPECT_NEAR(via_index[i].distance, via_scan[i].distance, 1e-9);
  }
  EXPECT_EQ(index_plan.size(), data.size());

  // k-NN routes the same way.
  const auto knn_index = index_plan.KnnSearch(q, 5);
  const auto knn_scan = seq_plan.KnnSearch(q, 5);
  ASSERT_EQ(knn_index.size(), 5u);
  ASSERT_EQ(knn_scan.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(knn_index[i].oid, knn_scan[i].oid);
  }
}

TEST(PlanQuery, BindsCheaperArm) {
  const auto data = GenerateClustered(500, 4, 547);
  MTreeOptions options;
  options.seed = 42;
  const auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options);
  const LinearScan<VecTraits> scan(data, LInfDistance{});

  DiskCostParameters params;
  SequentialScanProfile profile;
  profile.num_objects = data.size();
  profile.data_bytes = data.size() * 64;

  // A sliver-sized index prediction must pick the index arm...
  const auto cheap = PlanQuery(params, 20.0, 2.0, options.node_size_bytes,
                               profile, tree, scan);
  EXPECT_EQ(cheap.decision().choice, AccessPath::kIndexScan);
  // ...and a prediction as costly as the whole file picks the scan.
  const auto costly =
      PlanQuery(params, static_cast<double>(data.size()),
                static_cast<double>(data.size()), options.node_size_bytes,
                profile, tree, scan);
  EXPECT_EQ(costly.decision().choice, AccessPath::kSequentialScan);

  // Either way the plan executes and answers correctly.
  const FloatVector q = {0.5f, 0.5f, 0.5f, 0.5f};
  const auto a = cheap.RangeSearch(q, 0.2);
  const auto b = costly.RangeSearch(q, 0.2);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].oid, b[i].oid);
  }
}

}  // namespace
}  // namespace mcm
