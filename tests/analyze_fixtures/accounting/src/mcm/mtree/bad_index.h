// Seeded guarded-accounting violations in an index directory.

namespace mcm {

class BadIndex {
 public:
  // PLANT 1: index code calling BoundedDistance directly bypasses the
  // sanctioned entry points (the avoided/computed split is lost).
  bool PruneDirect(const Obj& a, const Obj& b, double r, QueryStats* st) {
    return BoundedDistance(a, b, r) <= r && st != nullptr;
  }

  // PLANT 2: a sanctioned call that passes a null QueryStats charges the
  // evaluation to nobody.
  bool PruneUncharged(const Obj& a, const Obj& b, double r) {
    return GuardedDistanceWithin(metric(), a, b, r, nullptr);
  }

  // PLANT 3: two direct metric evaluations, only one ledger tick.
  double TwoForOne(const Obj& a, const Obj& b, QueryStats* st) {
    const double d1 = metric_(a, b);
    const double d2 = metric_(b, a);
    ++st->distance_computations;
    return d1 + d2;
  }

  // Clean: one evaluation, one tick (the Dist()-helper discipline).
  double Balanced(const Obj& a, const Obj& b, QueryStats* st) {
    ++st->distance_computations;
    return metric_(a, b);
  }

 private:
  Metric metric_;
};

// PLANT 4: a shadow definition of a sanctioned entry point outside
// src/mcm/engine/witness.h forks the accounting ledger.
inline bool GuardedDistanceWithin(const Metric& m, const Obj& a,
                                  const Obj& b, double r, QueryStats* st) {
  return m(a, b) <= r && st != nullptr;
}

}  // namespace mcm
