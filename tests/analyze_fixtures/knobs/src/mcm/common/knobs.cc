namespace mcm {

int ReadKnobs() {
  int total = 0;
  total += static_cast<int>(GetEnvInt("MCM_GOOD", 1));
  // PLANT: MCM_ROGUE is read here but declared nowhere.
  total += static_cast<int>(GetEnvInt("MCM_ROGUE", 0));
  // MCM_HIDDEN is declared in the manifest but absent from README.md.
  total += GetEnvString("MCM_HIDDEN", "").empty() ? 0 : 1;
  return total;
}

}  // namespace mcm
