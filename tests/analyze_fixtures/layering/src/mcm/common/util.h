// PLANT: common is the leaf layer; including storage inverts the DAG.
#include "mcm/storage/page.h"

namespace mcm {
inline int UtilValue() { return 1; }
}  // namespace mcm
