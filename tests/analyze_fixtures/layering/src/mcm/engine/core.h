// Legal include: engine is allowed to use common.
#include "mcm/common/util.h"

namespace mcm {
inline int CoreValue() { return 3; }
}  // namespace mcm
