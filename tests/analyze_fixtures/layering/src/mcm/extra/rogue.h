// PLANT: this directory has no row in ARCHITECTURE.manifest.
namespace mcm {
inline int RogueValue() { return 4; }
}  // namespace mcm
