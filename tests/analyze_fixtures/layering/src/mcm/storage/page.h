// PLANT: storage may only depend on common; engine sits above it.
#include "mcm/engine/core.h"

namespace mcm {
inline int PageValue() { return 2; }
}  // namespace mcm
