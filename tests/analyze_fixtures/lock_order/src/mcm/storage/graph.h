// Seeded lock-order violations: Alpha::Foo takes Alpha::mu_ then calls
// Beta::Bar, which takes Beta::mu_ then calls back into Alpha::Baz, which
// takes Alpha::mu_ again. That is simultaneously
//   PLANT 1: a recursive acquisition of Alpha::mu_ reachable from Foo
//            (Foo -> Bar -> Baz re-enters a non-recursive mutex), and
//   PLANT 2: an ordering cycle Alpha::mu_ -> Beta::mu_ -> Alpha::mu_
//            (two threads running Foo and Bar deadlock).

namespace mcm {

class Beta;

class Alpha {
 public:
  void Foo(Beta* b);
  void Baz();

 private:
  Mutex mu_;
};

class Beta {
 public:
  void Bar(Alpha* a);

 private:
  Mutex mu_;
};

inline void Alpha::Foo(Beta* b) {
  MutexLock lock(&mu_);
  b->Bar(nullptr);
}

inline void Beta::Bar(Alpha* a) {
  MutexLock lock(&mu_);
  if (a != nullptr) {
    a->Baz();
  }
}

inline void Alpha::Baz() {
  MutexLock lock(&mu_);
}

}  // namespace mcm
