// Property tests for the bounded-evaluation protocol (metric/bounded.h):
// DistanceWithin must agree with the full metric on the verdict
// (d <= bound?) for every bound and return the bit-exact distance whenever
// it does not abort — plus the counting contract (one computation per
// call, aborted or not) and the PR's headline invariant: threading bounded
// evaluation through every index leaves distance-computation counts,
// node-access counts, and query answers bit-identical, so the paper's
// cost-model validation is unperturbed.

#include "mcm/metric/bounded.h"

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mcm/baseline/linear_scan.h"
#include "mcm/common/query_stats.h"
#include "mcm/common/random.h"
#include "mcm/dataset/text_datasets.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/gnat/gnat.h"
#include "mcm/metric/counted_metric.h"
#include "mcm/metric/string_metrics.h"
#include "mcm/metric/traits.h"
#include "mcm/metric/vector_metrics.h"
#include "mcm/mtree/bulk_load.h"
#include "mcm/vptree/vptree.h"

namespace mcm {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Wraps a metric and exposes ONLY operator(): BoundedDistance falls back
/// to the full evaluation, which is bit-for-bit the pre-fast-lane
/// behavior. Queries through this wrapper are the "before" baseline the
/// invariance tests compare against.
template <typename M>
struct FullOnly {
  M inner;
  double operator()(const FloatVector& a, const FloatVector& b) const {
    return inner(a, b);
  }
};

static_assert(BoundedMetric<L2Distance, FloatVector>);
static_assert(BoundedMetric<EditDistanceMetric, std::string>);
static_assert(!BoundedMetric<FullOnly<L2Distance>, FloatVector>);

FloatVector RandomVector(size_t dim, RandomEngine& rng) {
  FloatVector v(dim);
  for (auto& x : v) x = static_cast<float>(UniformUnit(rng));
  return v;
}

template <typename M>
void CheckVerdictAndValue(const M& metric, const FloatVector& a,
                          const FloatVector& b, double bound) {
  const double full = metric(a, b);
  const double got = metric.DistanceWithin(a, b, bound);
  // Verdict agreement: got and full fall on the same side of the bound.
  EXPECT_EQ(got <= bound, full <= bound)
      << "bound=" << bound << " full=" << full << " got=" << got;
  // Value agreement: a non-aborted evaluation is bit-exact.
  if (got <= bound || got != kInf) {
    EXPECT_EQ(got, full) << "bound=" << bound;
  }
}

TEST(BoundedVectorMetrics, AgreesWithFullMetricOnRandomPairsAndBounds) {
  auto rng = MakeEngine(101, 0);
  const L1Distance l1;
  const L2Distance l2;
  const LInfDistance linf;
  const LpDistance lp3(3.0);
  const LpDistance lp_frac(2.5);
  for (const size_t dim : {1u, 7u, 16u, 20u, 50u}) {
    for (int rep = 0; rep < 40; ++rep) {
      const auto a = RandomVector(dim, rng);
      const auto b = RandomVector(dim, rng);
      // Bounds spanning always-abort to never-abort, plus exact edges.
      const double bounds[] = {-1.0,
                               0.0,
                               UniformUnit(rng),
                               UniformUnit(rng) * dim,
                               l1(a, b),
                               l2(a, b),
                               linf(a, b),
                               kInf};
      for (const double bound : bounds) {
        CheckVerdictAndValue(l1, a, b, bound);
        CheckVerdictAndValue(l2, a, b, bound);
        CheckVerdictAndValue(linf, a, b, bound);
        CheckVerdictAndValue(lp3, a, b, bound);
        CheckVerdictAndValue(lp_frac, a, b, bound);
      }
    }
  }
}

TEST(BoundedEditMetric, AgreesWithPlainLevenshtein) {
  auto rng = MakeEngine(103, 0);
  const auto words = GenerateKeywords(128, 7);
  const EditDistanceMetric metric;
  for (int rep = 0; rep < 300; ++rep) {
    const auto& a = words[UniformIndex(rng, words.size())];
    const auto& b = words[UniformIndex(rng, words.size())];
    const double full = metric(a, b);
    const double bounds[] = {-1.0, 0.0,  1.0,  1.5,
                             full, full - 0.5, full + 2.0, kInf};
    for (const double bound : bounds) {
      const double got = metric.DistanceWithin(a, b, bound);
      EXPECT_EQ(got <= bound, full <= bound)
          << a << " / " << b << " bound=" << bound;
      if (got != kInf) {
        EXPECT_EQ(got, full);
      }
    }
  }
}

TEST(BoundedEditMetric, BandedMatchesPlainForAllBoundsOnWordPairs) {
  const auto words = GenerateKeywords(32, 11);
  for (const auto& a : words) {
    for (const auto& b : words) {
      const size_t full = EditDistance(a, b);
      for (size_t k = 0; k <= a.size() + b.size() + 1; ++k) {
        const size_t banded = BoundedEditDistance(a, b, k);
        if (full <= k) {
          EXPECT_EQ(banded, full);
        } else {
          EXPECT_GT(banded, k);
        }
      }
    }
  }
}

TEST(CountedMetric, DistanceWithinCountsExactlyOnePerCall) {
  CountedMetric<L2Distance> counted;
  const FloatVector a = {0.0f, 0.0f, 0.0f, 0.0f};
  const FloatVector b = {1.0f, 1.0f, 1.0f, 1.0f};
  EXPECT_EQ(counted.count(), 0u);
  counted(a, b);  // Full evaluation: one computation.
  EXPECT_EQ(counted.count(), 1u);
  counted.DistanceWithin(a, b, kInf);  // Not aborted: one computation.
  EXPECT_EQ(counted.count(), 2u);
  counted.DistanceWithin(a, b, 0.5);  // Aborted: STILL one computation.
  EXPECT_EQ(counted.count(), 3u);
  counted.DistanceWithin(a, b, -1.0);  // Aborted immediately: still one.
  EXPECT_EQ(counted.count(), 4u);
}

TEST(CountedMetric, ForwardsBoundedProtocolOfInnerMetric) {
  CountedMetric<L2Distance> counted;
  const FloatVector a = {0.0f, 0.0f};
  const FloatVector b = {3.0f, 4.0f};
  EXPECT_EQ(counted.DistanceWithin(a, b, 10.0), 5.0);
  EXPECT_EQ(counted.DistanceWithin(a, b, 5.0), 5.0);
  // Inner metric without the protocol: falls back to the full distance.
  CountedMetric<FullOnly<L2Distance>> full_only;
  EXPECT_EQ(full_only.DistanceWithin(a, b, 0.1), 5.0);
  EXPECT_EQ(full_only.count(), 1u);
}

// ---------------------------------------------------------------------------
// The dedicated count-invariance test (acceptance criterion): identical
// workloads through a bounded-metric index and a full-metric index must
// report bit-identical distance counts, node counts, and answers.
// ---------------------------------------------------------------------------

template <typename ResultsA, typename ResultsB>
void ExpectSameResults(const ResultsA& a, const ResultsB& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].oid, b[i].oid);
    EXPECT_EQ(a[i].distance, b[i].distance);  // Bitwise, not approx.
  }
}

void ExpectSameStats(const QueryStats& a, const QueryStats& b) {
  EXPECT_EQ(a.distance_computations, b.distance_computations);
  EXPECT_EQ(a.nodes_accessed, b.nodes_accessed);
  EXPECT_EQ(a.nodes_pruned, b.nodes_pruned);
}

TEST(CountInvariance, MTreeRangeAndKnnCountsAreBitIdentical) {
  const auto data = GenerateClustered(1500, 10, 42);
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 24, 10, 42);
  MTreeOptions options;
  options.seed = 42;
  auto bounded_tree = MTree<VectorTraits<LInfDistance>>::BulkLoad(
      data, LInfDistance{}, options);
  auto full_tree =
      MTree<VectorTraits<FullOnly<LInfDistance>>>::BulkLoad(
          data, FullOnly<LInfDistance>{}, options);
  for (const auto& q : queries) {
    for (const double radius : {0.05, 0.15, 0.4}) {
      QueryStats sb, sf;
      ExpectSameResults(bounded_tree.RangeSearch(q, radius, &sb),
                        full_tree.RangeSearch(q, radius, &sf));
      ExpectSameStats(sb, sf);
    }
    for (const size_t k : {1u, 5u, 20u}) {
      QueryStats sb, sf;
      ExpectSameResults(bounded_tree.KnnSearch(q, k, &sb),
                        full_tree.KnnSearch(q, k, &sf));
      ExpectSameStats(sb, sf);
    }
  }
}

TEST(CountInvariance, MTreeOptimizedPruningCountsAreBitIdentical) {
  const auto data = GenerateClustered(1500, 10, 43);
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 16, 10, 43);
  MTreeOptions options;
  options.seed = 43;
  options.pruning = PruningMode::kOptimized;
  auto bounded_tree = MTree<VectorTraits<L2Distance>>::BulkLoad(
      data, L2Distance{}, options);
  auto full_tree = MTree<VectorTraits<FullOnly<L2Distance>>>::BulkLoad(
      data, FullOnly<L2Distance>{}, options);
  for (const auto& q : queries) {
    QueryStats sb, sf;
    ExpectSameResults(bounded_tree.RangeSearch(q, 0.3, &sb),
                      full_tree.RangeSearch(q, 0.3, &sf));
    ExpectSameStats(sb, sf);
    ExpectSameResults(bounded_tree.KnnSearch(q, 10, &sb),
                      full_tree.KnnSearch(q, 10, &sf));
    ExpectSameStats(sb, sf);
  }
}

TEST(CountInvariance, VpTreeGnatAndLinearScanCountsAreBitIdentical) {
  const auto data = GenerateUniform(1200, 8, 44);
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kUniform, 16, 8, 44);
  VpTreeOptions vp_options;
  vp_options.seed = 44;
  const VpTree<VectorTraits<LInfDistance>> vp_bounded(data, LInfDistance{},
                                                      vp_options);
  const VpTree<VectorTraits<FullOnly<LInfDistance>>> vp_full(
      data, FullOnly<LInfDistance>{}, vp_options);
  GnatOptions gnat_options;
  gnat_options.seed = 44;
  const Gnat<VectorTraits<LInfDistance>> gnat_bounded(data, LInfDistance{},
                                                      gnat_options);
  const Gnat<VectorTraits<FullOnly<LInfDistance>>> gnat_full(
      data, FullOnly<LInfDistance>{}, gnat_options);
  const LinearScan<VectorTraits<LInfDistance>> scan_bounded(data,
                                                            LInfDistance{});
  const LinearScan<VectorTraits<FullOnly<LInfDistance>>> scan_full(
      data, FullOnly<LInfDistance>{});
  for (const auto& q : queries) {
    QueryStats sb, sf;
    ExpectSameResults(vp_bounded.RangeSearch(q, 0.2, &sb),
                      vp_full.RangeSearch(q, 0.2, &sf));
    ExpectSameStats(sb, sf);
    ExpectSameResults(vp_bounded.KnnSearch(q, 7, &sb),
                      vp_full.KnnSearch(q, 7, &sf));
    ExpectSameStats(sb, sf);
    ExpectSameResults(gnat_bounded.RangeSearch(q, 0.2, &sb),
                      gnat_full.RangeSearch(q, 0.2, &sf));
    ExpectSameStats(sb, sf);
    ExpectSameResults(gnat_bounded.KnnSearch(q, 7, &sb),
                      gnat_full.KnnSearch(q, 7, &sf));
    ExpectSameStats(sb, sf);
    ExpectSameResults(scan_bounded.RangeSearch(q, 0.2, &sb),
                      scan_full.RangeSearch(q, 0.2, &sf));
    ExpectSameStats(sb, sf);
    ExpectSameResults(scan_bounded.KnnSearch(q, 7, &sb),
                      scan_full.KnnSearch(q, 7, &sf));
    ExpectSameStats(sb, sf);
  }
}

TEST(CountInvariance, StringMTreeCountsAreBitIdentical) {
  const auto words = GenerateKeywords(600, 45);
  MTreeOptions options;
  options.seed = 45;
  auto bounded_tree = MTree<StringTraits<EditDistanceMetric>>::BulkLoad(
      words, EditDistanceMetric{}, options);
  struct FullOnlyEdit {
    EditDistanceMetric inner;
    double operator()(const std::string& a, const std::string& b) const {
      return inner(a, b);
    }
  };
  auto full_tree = MTree<StringTraits<FullOnlyEdit>>::BulkLoad(
      words, FullOnlyEdit{}, options);
  auto rng = MakeEngine(45, 1);
  for (int rep = 0; rep < 12; ++rep) {
    const auto& q = words[UniformIndex(rng, words.size())];
    for (const double radius : {1.0, 2.0, 4.0}) {
      QueryStats sb, sf;
      ExpectSameResults(bounded_tree.RangeSearch(q, radius, &sb),
                        full_tree.RangeSearch(q, radius, &sf));
      ExpectSameStats(sb, sf);
    }
    QueryStats sb, sf;
    ExpectSameResults(bounded_tree.KnnSearch(q, 5, &sb),
                      full_tree.KnnSearch(q, 5, &sf));
    ExpectSameStats(sb, sf);
  }
}

}  // namespace
}  // namespace mcm
