#include "mcm/storage/buffer_pool.h"

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace mcm {
namespace {

TEST(BufferPool, FetchHitAvoidsPhysicalRead) {
  InMemoryPageFile file(32);
  BufferPool pool(&file, 4);
  const PageId id = file.Allocate();
  { PageGuard g = pool.Fetch(id); }
  { PageGuard g = pool.Fetch(id); }
  EXPECT_EQ(pool.stats().fetches, 2u);
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(file.stats().reads, 1u);
}

TEST(BufferPool, DirtyPageWrittenBackOnEviction) {
  InMemoryPageFile file(32);
  BufferPool pool(&file, 1);
  const PageId a = file.Allocate();
  const PageId b = file.Allocate();
  {
    PageGuard g = pool.Fetch(a);
    g.data()[0] = 42;
    g.MarkDirty();
  }
  { PageGuard g = pool.Fetch(b); }  // Evicts a, flushing it.
  EXPECT_EQ(pool.stats().evictions, 1u);
  EXPECT_EQ(pool.stats().flushes, 1u);
  std::vector<uint8_t> buf(32, 0);
  file.ReadPage(a, buf.data());
  EXPECT_EQ(buf[0], 42u);
}

TEST(BufferPool, CleanEvictionSkipsWriteBack) {
  InMemoryPageFile file(32);
  BufferPool pool(&file, 1);
  const PageId a = file.Allocate();
  const PageId b = file.Allocate();
  { PageGuard g = pool.Fetch(a); }
  const uint64_t writes_before = file.stats().writes;
  { PageGuard g = pool.Fetch(b); }
  EXPECT_EQ(file.stats().writes, writes_before);
}

TEST(BufferPool, LruEvictsLeastRecentlyUsed) {
  InMemoryPageFile file(32);
  BufferPool pool(&file, 2);
  const PageId a = file.Allocate();
  const PageId b = file.Allocate();
  const PageId c = file.Allocate();
  { PageGuard g = pool.Fetch(a); }
  { PageGuard g = pool.Fetch(b); }
  { PageGuard g = pool.Fetch(a); }  // a is now more recent than b.
  { PageGuard g = pool.Fetch(c); }  // Should evict b.
  pool.ResetStats();
  { PageGuard g = pool.Fetch(a); }
  EXPECT_EQ(pool.stats().hits, 1u);  // a still buffered.
  pool.ResetStats();
  { PageGuard g = pool.Fetch(b); }
  EXPECT_EQ(pool.stats().misses, 1u);  // b was evicted.
}

TEST(BufferPool, PinnedPagesCannotBeEvicted) {
  InMemoryPageFile file(32);
  BufferPool pool(&file, 1);
  const PageId a = file.Allocate();
  const PageId b = file.Allocate();
  PageGuard pinned = pool.Fetch(a);
  EXPECT_THROW(pool.Fetch(b), std::runtime_error);
  pinned.Release();
  EXPECT_NO_THROW(pool.Fetch(b));
}

TEST(BufferPool, NewPageIsPinnedZeroedAndDirty) {
  InMemoryPageFile file(16);
  BufferPool pool(&file, 2);
  PageGuard g = pool.NewPage();
  const PageId id = g.id();
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(g.data()[i], 0u);
  }
  g.data()[3] = 9;
  g.Release();
  pool.FlushAll();
  std::vector<uint8_t> buf(16, 0);
  file.ReadPage(id, buf.data());
  EXPECT_EQ(buf[3], 9u);
}

TEST(BufferPool, GuardMoveTransfersPin) {
  InMemoryPageFile file(16);
  BufferPool pool(&file, 2);
  const PageId a = file.Allocate();
  PageGuard g1 = pool.Fetch(a);
  PageGuard g2 = std::move(g1);
  EXPECT_FALSE(g1.valid());
  EXPECT_TRUE(g2.valid());
  g2.Release();
  // Pin fully released: page evictable again.
  const PageId b = file.Allocate();
  BufferPool tight(&file, 1);
  { PageGuard g = tight.Fetch(a); }
  EXPECT_NO_THROW(tight.Fetch(b));
}

TEST(BufferPool, EvictAllFlushesAndDrops) {
  InMemoryPageFile file(16);
  BufferPool pool(&file, 4);
  const PageId a = file.Allocate();
  {
    PageGuard g = pool.Fetch(a);
    g.data()[0] = 5;
    g.MarkDirty();
  }
  pool.EvictAll();
  EXPECT_EQ(pool.num_buffered(), 0u);
  std::vector<uint8_t> buf(16, 0);
  file.ReadPage(a, buf.data());
  EXPECT_EQ(buf[0], 5u);
  pool.ResetStats();
  { PageGuard g = pool.Fetch(a); }
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST(BufferPool, RejectsBadConstruction) {
  InMemoryPageFile file(16);
  EXPECT_THROW(BufferPool(nullptr, 4), std::invalid_argument);
  EXPECT_THROW(BufferPool(&file, 0), std::invalid_argument);
}

TEST(BufferPool, DoubleUnpinDetected) {
  InMemoryPageFile file(16);
  BufferPool pool(&file, 2);
  const PageId a = file.Allocate();
  PageGuard g = pool.Fetch(a);
  g.Release();
  EXPECT_FALSE(g.valid());
  g.Release();  // Second release on an invalid guard is a no-op.
}

TEST(BufferPool, ShardCountDefaults) {
  InMemoryPageFile file(16);
  // Small pools keep one shard (exact single-LRU semantics)...
  EXPECT_EQ(BufferPool(&file, 4).num_shards(), 1u);
  EXPECT_EQ(BufferPool(&file, 63).num_shards(), 1u);
  // ...larger pools auto-shard, capped at 8.
  EXPECT_EQ(BufferPool(&file, 128).num_shards(), 2u);
  EXPECT_EQ(BufferPool(&file, 4096).num_shards(), 8u);
  // Explicit shard counts are honored (but never exceed the capacity).
  EXPECT_EQ(BufferPool(&file, 16, 4).num_shards(), 4u);
  EXPECT_EQ(BufferPool(&file, 2, 8).num_shards(), 2u);
}

TEST(BufferPool, FetchReportsPerRequestHit) {
  InMemoryPageFile file(32);
  BufferPool pool(&file, 4);
  const PageId id = file.Allocate();
  bool hit = true;
  { PageGuard g = pool.Fetch(id, &hit); }
  EXPECT_FALSE(hit);
  { PageGuard g = pool.Fetch(id, &hit); }
  EXPECT_TRUE(hit);
}

TEST(BufferPool, ConcurrentReadStress) {
  constexpr size_t kPageSize = 64;
  constexpr size_t kNumPages = 200;
  constexpr size_t kNumThreads = 4;
  constexpr size_t kFetchesPerThread = 2000;

  InMemoryPageFile file(kPageSize);
  // Seed every page with a recognizable pattern derived from its id.
  std::vector<PageId> ids;
  for (size_t p = 0; p < kNumPages; ++p) {
    const PageId id = file.Allocate();
    std::vector<uint8_t> payload(kPageSize);
    for (size_t b = 0; b < kPageSize; ++b) {
      payload[b] = static_cast<uint8_t>((id * 131 + b) & 0xFF);
    }
    file.WritePage(id, payload.data());
    ids.push_back(id);
  }

  // Multi-shard pool far smaller than the page set, so the stress mixes
  // hits, misses, and evictions across shards.
  BufferPool pool(&file, /*capacity=*/64, /*num_shards=*/4);
  std::atomic<uint64_t> corrupt{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kNumThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t rng = 0x9E3779B97F4A7C15ull * (t + 1);
      for (size_t i = 0; i < kFetchesPerThread; ++i) {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        const PageId id = ids[rng % kNumPages];
        bool hit = false;
        PageGuard guard = pool.Fetch(id, &hit);
        for (size_t b = 0; b < kPageSize; ++b) {
          if (guard.data()[b] !=
              static_cast<uint8_t>((id * 131 + b) & 0xFF)) {
            ++corrupt;
            break;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(corrupt.load(), 0u);
  const BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.fetches, kNumThreads * kFetchesPerThread);
  // Every fetch is exactly one hit or one miss, even under contention.
  EXPECT_EQ(stats.hits + stats.misses, stats.fetches);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
  EXPECT_LE(pool.num_buffered(), pool.capacity());
  // Nothing was dirtied: evictions must not have written anything back.
  EXPECT_EQ(stats.flushes, 0u);
  EXPECT_EQ(file.stats().writes, kNumPages);
}

}  // namespace
}  // namespace mcm
