#include "mcm/storage/buffer_pool.h"

#include <stdexcept>

#include <gtest/gtest.h>

namespace mcm {
namespace {

TEST(BufferPool, FetchHitAvoidsPhysicalRead) {
  InMemoryPageFile file(32);
  BufferPool pool(&file, 4);
  const PageId id = file.Allocate();
  { PageGuard g = pool.Fetch(id); }
  { PageGuard g = pool.Fetch(id); }
  EXPECT_EQ(pool.stats().fetches, 2u);
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(file.stats().reads, 1u);
}

TEST(BufferPool, DirtyPageWrittenBackOnEviction) {
  InMemoryPageFile file(32);
  BufferPool pool(&file, 1);
  const PageId a = file.Allocate();
  const PageId b = file.Allocate();
  {
    PageGuard g = pool.Fetch(a);
    g.data()[0] = 42;
    g.MarkDirty();
  }
  { PageGuard g = pool.Fetch(b); }  // Evicts a, flushing it.
  EXPECT_EQ(pool.stats().evictions, 1u);
  EXPECT_EQ(pool.stats().flushes, 1u);
  std::vector<uint8_t> buf(32, 0);
  file.Read(a, buf.data());
  EXPECT_EQ(buf[0], 42u);
}

TEST(BufferPool, CleanEvictionSkipsWriteBack) {
  InMemoryPageFile file(32);
  BufferPool pool(&file, 1);
  const PageId a = file.Allocate();
  const PageId b = file.Allocate();
  { PageGuard g = pool.Fetch(a); }
  const uint64_t writes_before = file.stats().writes;
  { PageGuard g = pool.Fetch(b); }
  EXPECT_EQ(file.stats().writes, writes_before);
}

TEST(BufferPool, LruEvictsLeastRecentlyUsed) {
  InMemoryPageFile file(32);
  BufferPool pool(&file, 2);
  const PageId a = file.Allocate();
  const PageId b = file.Allocate();
  const PageId c = file.Allocate();
  { PageGuard g = pool.Fetch(a); }
  { PageGuard g = pool.Fetch(b); }
  { PageGuard g = pool.Fetch(a); }  // a is now more recent than b.
  { PageGuard g = pool.Fetch(c); }  // Should evict b.
  pool.ResetStats();
  { PageGuard g = pool.Fetch(a); }
  EXPECT_EQ(pool.stats().hits, 1u);  // a still buffered.
  pool.ResetStats();
  { PageGuard g = pool.Fetch(b); }
  EXPECT_EQ(pool.stats().misses, 1u);  // b was evicted.
}

TEST(BufferPool, PinnedPagesCannotBeEvicted) {
  InMemoryPageFile file(32);
  BufferPool pool(&file, 1);
  const PageId a = file.Allocate();
  const PageId b = file.Allocate();
  PageGuard pinned = pool.Fetch(a);
  EXPECT_THROW(pool.Fetch(b), std::runtime_error);
  pinned.Release();
  EXPECT_NO_THROW(pool.Fetch(b));
}

TEST(BufferPool, NewPageIsPinnedZeroedAndDirty) {
  InMemoryPageFile file(16);
  BufferPool pool(&file, 2);
  PageGuard g = pool.NewPage();
  const PageId id = g.id();
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(g.data()[i], 0u);
  }
  g.data()[3] = 9;
  g.Release();
  pool.FlushAll();
  std::vector<uint8_t> buf(16, 0);
  file.Read(id, buf.data());
  EXPECT_EQ(buf[3], 9u);
}

TEST(BufferPool, GuardMoveTransfersPin) {
  InMemoryPageFile file(16);
  BufferPool pool(&file, 2);
  const PageId a = file.Allocate();
  PageGuard g1 = pool.Fetch(a);
  PageGuard g2 = std::move(g1);
  EXPECT_FALSE(g1.valid());
  EXPECT_TRUE(g2.valid());
  g2.Release();
  // Pin fully released: page evictable again.
  const PageId b = file.Allocate();
  BufferPool tight(&file, 1);
  { PageGuard g = tight.Fetch(a); }
  EXPECT_NO_THROW(tight.Fetch(b));
}

TEST(BufferPool, EvictAllFlushesAndDrops) {
  InMemoryPageFile file(16);
  BufferPool pool(&file, 4);
  const PageId a = file.Allocate();
  {
    PageGuard g = pool.Fetch(a);
    g.data()[0] = 5;
    g.MarkDirty();
  }
  pool.EvictAll();
  EXPECT_EQ(pool.num_buffered(), 0u);
  std::vector<uint8_t> buf(16, 0);
  file.Read(a, buf.data());
  EXPECT_EQ(buf[0], 5u);
  pool.ResetStats();
  { PageGuard g = pool.Fetch(a); }
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST(BufferPool, RejectsBadConstruction) {
  InMemoryPageFile file(16);
  EXPECT_THROW(BufferPool(nullptr, 4), std::invalid_argument);
  EXPECT_THROW(BufferPool(&file, 0), std::invalid_argument);
}

TEST(BufferPool, DoubleUnpinDetected) {
  InMemoryPageFile file(16);
  BufferPool pool(&file, 2);
  const PageId a = file.Allocate();
  PageGuard g = pool.Fetch(a);
  g.Release();
  EXPECT_FALSE(g.valid());
  g.Release();  // Second release on an invalid guard is a no-op.
}

}  // namespace
}  // namespace mcm
