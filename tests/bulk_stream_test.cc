// Out-of-core / parallel bulk loading tests: thread-count bit-identity of
// the page bytes, spill-path correctness against the in-memory loader,
// structural invariants, and budget handling.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mcm/check/check_mtree.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"
#include "mcm/mtree/bulk_stream.h"

namespace mcm {
namespace {

using VecTraits = VectorTraits<LInfDistance>;

std::vector<unsigned char> FileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    ADD_FAILURE() << "cannot open " << path;
    return {};
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<unsigned char> bytes(static_cast<size_t>(size));
  if (!bytes.empty() &&
      std::fread(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
    ADD_FAILURE() << "cannot read " << path;
  }
  std::fclose(f);
  return bytes;
}

std::vector<uint64_t> SortedOids(
    const std::vector<SearchResult<FloatVector>>& results) {
  std::vector<uint64_t> oids;
  oids.reserve(results.size());
  for (const auto& r : results) oids.push_back(r.oid);
  std::sort(oids.begin(), oids.end());
  return oids;
}

// Builds with the plain in-memory BulkLoader into a real page file and
// returns the flushed file's bytes.
std::vector<unsigned char> BulkLoadPageBytes(
    const std::vector<FloatVector>& data, MTreeOptions options,
    const std::string& path) {
  auto store = std::make_unique<PagedNodeStore<VecTraits>>(
      std::make_unique<StdioPageFile>(path, options.node_size_bytes),
      options.buffer_pool_frames);
  auto* paged = store.get();
  auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options,
                                         std::move(store));
  paged->Flush();
  return FileBytes(path);
}

// Builds with the streaming loader (spilling under `budget`) into a real
// page file and returns the flushed file's bytes.
std::vector<unsigned char> StreamLoadPageBytes(
    const std::vector<FloatVector>& data, MTreeOptions options,
    int64_t budget, const std::string& path) {
  auto store = std::make_unique<PagedNodeStore<VecTraits>>(
      std::make_unique<StdioPageFile>(path, options.node_size_bytes),
      options.buffer_pool_frames);
  auto* paged = store.get();
  VectorObjectSource<VecTraits> source(data);
  auto tree = StreamBulkLoader<VecTraits>::Load(
      source, LInfDistance{}, options, std::move(store),
      ::testing::TempDir(), budget);
  paged->Flush();
  return FileBytes(path);
}

TEST(ParallelBulkLoad, PageBytesIdenticalAcrossThreadCounts) {
  const auto data = GenerateClustered(20000, 8, 91);
  MTreeOptions options;
  options.node_size_bytes = 1024;

  options.build_threads = 1;
  const std::string ref_path = ::testing::TempDir() + "/mcm_bulk_t1.bin";
  const auto reference = BulkLoadPageBytes(data, options, ref_path);
  ASSERT_FALSE(reference.empty());

  for (const size_t threads : {2u, 4u, 8u}) {
    options.build_threads = threads;
    const std::string path = ::testing::TempDir() + "/mcm_bulk_t" +
                             std::to_string(threads) + ".bin";
    const auto bytes = BulkLoadPageBytes(data, options, path);
    EXPECT_EQ(bytes, reference) << "thread count " << threads
                                << " changed the page bytes";
    std::remove(path.c_str());
  }
  std::remove(ref_path.c_str());
}

TEST(StreamBulkLoad, PageBytesIdenticalAcrossThreadCounts) {
  const auto data = GenerateClustered(20000, 8, 93);
  MTreeOptions options;
  options.node_size_bytes = 1024;
  // ~1 MB of leaf entries against a 128 KB budget: forces the spill path
  // (several dozen partitions).
  const int64_t budget = 128 << 10;

  options.build_threads = 1;
  const std::string ref_path = ::testing::TempDir() + "/mcm_stream_t1.bin";
  const auto reference = StreamLoadPageBytes(data, options, budget, ref_path);
  ASSERT_FALSE(reference.empty());

  for (const size_t threads : {2u, 4u, 8u}) {
    options.build_threads = threads;
    const std::string path = ::testing::TempDir() + "/mcm_stream_t" +
                             std::to_string(threads) + ".bin";
    const auto bytes = StreamLoadPageBytes(data, options, budget, path);
    EXPECT_EQ(bytes, reference) << "thread count " << threads
                                << " changed the page bytes";
    std::remove(path.c_str());
  }
  std::remove(ref_path.c_str());
}

TEST(StreamBulkLoad, SpillPathMatchesInMemoryAnswers) {
  const auto data = GenerateClustered(12000, 6, 97);
  MTreeOptions options;
  options.node_size_bytes = 1024;
  options.build_threads = 4;

  auto memory_tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{},
                                                options);
  VectorObjectSource<VecTraits> source(data);
  auto streamed = StreamBulkLoader<VecTraits>::Load(
      source, LInfDistance{}, options,
      std::make_unique<PagedNodeStore<VecTraits>>(
          std::make_unique<InMemoryPageFile>(options.node_size_bytes),
          options.buffer_pool_frames),
      ::testing::TempDir(), /*ingest_budget_bytes=*/64 << 10);

  EXPECT_EQ(streamed.size(), data.size());
  const auto check = check::CheckMTree(streamed);
  EXPECT_TRUE(check.ok()) << check.Summary();

  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 25, 6, 97);
  for (const auto& q : queries) {
    // Different tree shapes, identical answer sets.
    EXPECT_EQ(SortedOids(streamed.RangeSearch(q, 0.2)),
              SortedOids(memory_tree.RangeSearch(q, 0.2)));
  }
}

TEST(StreamBulkLoad, ReportsBuildDistances) {
  const auto data = GenerateClustered(6000, 6, 101);
  MTreeOptions options;
  options.node_size_bytes = 1024;
  BulkLoadStats stats;
  VectorObjectSource<VecTraits> source(data);
  auto tree = StreamBulkLoader<VecTraits>::Load(
      source, LInfDistance{}, options, nullptr, ::testing::TempDir(),
      /*ingest_budget_bytes=*/64 << 10, &stats);
  EXPECT_EQ(tree.size(), data.size());
  // Every object was at least assigned to a seed once.
  EXPECT_GE(stats.distance_computations, data.size());
}

TEST(StreamBulkLoad, LargeBudgetTakesInMemoryPathBitIdentically) {
  const auto data = GenerateClustered(4000, 6, 103);
  MTreeOptions options;
  options.node_size_bytes = 1024;

  const std::string bulk_path = ::testing::TempDir() + "/mcm_inmem_bulk.bin";
  const std::string stream_path =
      ::testing::TempDir() + "/mcm_inmem_stream.bin";
  const auto bulk_bytes = BulkLoadPageBytes(data, options, bulk_path);
  const auto stream_bytes = StreamLoadPageBytes(
      data, options, /*budget=*/1 << 30, stream_path);
  // A dataset far under budget must delegate to the in-memory loader and
  // reproduce its pages exactly.
  EXPECT_EQ(stream_bytes, bulk_bytes);
  std::remove(bulk_path.c_str());
  std::remove(stream_path.c_str());
}

TEST(StreamBulkLoad, EmptyAndTinySources) {
  MTreeOptions options;
  const std::vector<FloatVector> none;
  VectorObjectSource<VecTraits> empty_source(none);
  auto empty = StreamBulkLoader<VecTraits>::Load(
      empty_source, LInfDistance{}, options, nullptr, ::testing::TempDir());
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.height(), 0u);

  const std::vector<FloatVector> two = {{0.1f, 0.1f}, {0.9f, 0.9f}};
  VectorObjectSource<VecTraits> tiny_source(two);
  auto tiny = StreamBulkLoader<VecTraits>::Load(
      tiny_source, LInfDistance{}, options, nullptr, ::testing::TempDir());
  EXPECT_EQ(tiny.size(), 2u);
  EXPECT_EQ(tiny.RangeSearch({0.0f, 0.0f}, 1.0).size(), 2u);
}

TEST(StreamBulkLoad, ExplicitOidsSurviveSpill) {
  const auto data = GenerateClustered(3000, 4, 107);
  std::vector<uint64_t> oids(data.size());
  for (size_t i = 0; i < oids.size(); ++i) oids[i] = 1000 + i * 2;
  MTreeOptions options;
  options.node_size_bytes = 512;
  VectorObjectSource<VecTraits> source(data, oids);
  auto tree = StreamBulkLoader<VecTraits>::Load(
      source, LInfDistance{}, options, nullptr, ::testing::TempDir(),
      /*ingest_budget_bytes=*/32 << 10);
  const auto r = tree.RangeSearch(data[5], 0.0);
  ASSERT_FALSE(r.empty());
  bool found = false;
  for (const auto& hit : r) found = found || hit.oid == 1000 + 5 * 2;
  EXPECT_TRUE(found);
}

TEST(BulkLoad, ReportsBuildDistancesThroughCountedMetric) {
  const auto data = GenerateClustered(2000, 6, 109);
  BulkLoadStats stats;
  auto tree = BulkLoader<VecTraits>::Load(data, {}, LInfDistance{},
                                          MTreeOptions{}, nullptr, &stats);
  EXPECT_EQ(tree.size(), data.size());
  // Clustering must at least touch every object once; and the seed-reuse
  // satellite keeps the total at a sane multiple of n (each level's
  // assignment is O(n * fanout)).
  EXPECT_GE(stats.distance_computations, data.size());
  EXPECT_LT(stats.distance_computations, data.size() * 1000);
}

}  // namespace
}  // namespace mcm
