#include "mcm/metric/bytes.h"

#include <stdexcept>

#include <gtest/gtest.h>

namespace mcm {
namespace {

TEST(ByteStream, PrimitiveRoundTrip) {
  std::vector<uint8_t> buf;
  ByteWriter w(&buf);
  w.Put<uint32_t>(0xdeadbeef);
  w.Put<double>(3.25);
  w.Put<uint8_t>(7);
  ByteReader r(buf.data(), buf.size());
  EXPECT_EQ(r.Get<uint32_t>(), 0xdeadbeefu);
  EXPECT_DOUBLE_EQ(r.Get<double>(), 3.25);
  EXPECT_EQ(r.Get<uint8_t>(), 7u);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteStream, StringRoundTrip) {
  std::vector<uint8_t> buf;
  ByteWriter w(&buf);
  w.PutString("ciao mondo");
  w.PutString("");
  ByteReader r(buf.data(), buf.size());
  EXPECT_EQ(r.GetString(), "ciao mondo");
  EXPECT_EQ(r.GetString(), "");
}

TEST(ByteStream, RawBytesRoundTrip) {
  std::vector<uint8_t> buf;
  ByteWriter w(&buf);
  const float values[3] = {1.0f, 2.0f, 3.0f};
  w.PutBytes(values, sizeof(values));
  ByteReader r(buf.data(), buf.size());
  float out[3];
  r.GetBytes(out, sizeof(out));
  EXPECT_EQ(out[0], 1.0f);
  EXPECT_EQ(out[2], 3.0f);
}

TEST(ByteReader, OverrunThrows) {
  std::vector<uint8_t> buf = {1, 2};
  ByteReader r(buf.data(), buf.size());
  EXPECT_THROW(r.Get<uint64_t>(), std::out_of_range);
  EXPECT_EQ(r.Get<uint16_t>(), 0x0201u);
  EXPECT_THROW(r.Get<uint8_t>(), std::out_of_range);
}

TEST(ByteReader, StringOverrunThrows) {
  std::vector<uint8_t> buf;
  ByteWriter w(&buf);
  w.Put<uint32_t>(100);  // Claims 100 bytes follow; none do.
  ByteReader r(buf.data(), buf.size());
  EXPECT_THROW(r.GetString(), std::out_of_range);
}

TEST(ByteWriter, AppendsToExistingBuffer) {
  std::vector<uint8_t> buf = {0xff};
  ByteWriter w(&buf);
  w.Put<uint8_t>(1);
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf[0], 0xffu);
  EXPECT_EQ(buf[1], 1u);
}

}  // namespace
}  // namespace mcm
