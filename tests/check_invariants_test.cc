// Tests for the structural invariant checkers (src/mcm/check/): each index
// is built healthy, validated clean, then corrupted in memory (through the
// tree's node store or check::IndexInspector) and re-validated — the
// checker must name the precise broken invariant. Also covers the
// MCM_CHECK_INVARIANTS post-mutation hook.

#include <cstdlib>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "mcm/check/check_gnat.h"
#include "mcm/check/check_histogram.h"
#include "mcm/check/check_mtree.h"
#include "mcm/check/check_vptree.h"
#include "mcm/check/inspect.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/distribution/histogram.h"
#include "mcm/gnat/gnat.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/mtree.h"
#include "mcm/vptree/vptree.h"

namespace mcm {
namespace {

using Traits = VectorTraits<L2Distance>;

std::vector<FloatVector> TestVectors(size_t n = 200, uint64_t seed = 11) {
  return GenerateVectorDataset(VectorDatasetKind::kClustered, n, /*dim=*/4,
                               seed);
}

MTree<Traits> BuildMTree(size_t n = 200) {
  MTreeOptions options;
  options.node_size_bytes = 512;  // Small pages force an internal root.
  MTree<Traits> tree{L2Distance{}, options};
  const auto data = TestVectors(n);
  for (size_t i = 0; i < data.size(); ++i) {
    tree.Insert(data[i], i);
  }
  return tree;
}

TEST(CheckMTree, HealthyTreeIsClean) {
  const auto tree = BuildMTree();
  const auto result = check::CheckMTree(tree);
  EXPECT_TRUE(result.ok()) << result.Summary();
}

TEST(CheckMTree, EmptyTreeIsClean) {
  MTree<Traits> tree{L2Distance{}, MTreeOptions{}};
  EXPECT_TRUE(check::CheckMTree(tree).ok());
}

TEST(CheckMTree, DetectsShrunkCoveringRadius) {
  auto tree = BuildMTree();
  auto root = tree.store().Read(tree.root());
  ASSERT_FALSE(root.is_leaf);
  ASSERT_FALSE(root.routing_entries.empty());
  root.routing_entries[0].covering_radius *= 0.25;
  tree.store().Write(tree.root(), root);

  const auto result = check::CheckMTree(tree);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.Has("covering-radius")) << result.Summary();
}

TEST(CheckMTree, DetectsBrokenParentDistance) {
  auto tree = BuildMTree();
  const auto root = tree.store().Read(tree.root());
  ASSERT_FALSE(root.is_leaf);
  const NodeId child_id = root.routing_entries[0].child;
  auto child = tree.store().Read(child_id);
  if (child.is_leaf) {
    ASSERT_FALSE(child.leaf_entries.empty());
    child.leaf_entries[0].parent_distance += 1.0;
  } else {
    ASSERT_FALSE(child.routing_entries.empty());
    child.routing_entries[0].parent_distance += 1.0;
  }
  tree.store().Write(child_id, child);

  const auto result = check::CheckMTree(tree);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.Has("parent-distance")) << result.Summary();
}

TEST(CheckVpTree, HealthyTreeIsClean) {
  VpTreeOptions options;
  options.arity = 3;
  options.leaf_capacity = 4;
  VpTree<Traits> tree(TestVectors(), L2Distance{}, options);
  const auto result = check::CheckVpTree(tree);
  EXPECT_TRUE(result.ok()) << result.Summary();
}

TEST(CheckVpTree, DetectsDisorderedCutoffs) {
  VpTreeOptions options;
  options.arity = 3;
  options.leaf_capacity = 4;
  VpTree<Traits> tree(TestVectors(), L2Distance{}, options);
  auto* root = check::IndexInspector::MutableVpRoot(tree);
  ASSERT_NE(root, nullptr);
  ASSERT_FALSE(root->is_leaf);
  ASSERT_GE(root->cutoffs.size(), 2u);
  std::swap(root->cutoffs.front(), root->cutoffs.back());

  const auto result = check::CheckVpTree(tree);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.Has("shell-order")) << result.Summary();
}

TEST(CheckVpTree, DetectsShellBoundViolation) {
  VpTreeOptions options;
  options.arity = 2;
  options.leaf_capacity = 4;
  VpTree<Traits> tree(TestVectors(), L2Distance{}, options);
  auto* root = check::IndexInspector::MutableVpRoot(tree);
  ASSERT_NE(root, nullptr);
  ASSERT_FALSE(root->is_leaf);
  ASSERT_FALSE(root->cutoffs.empty());
  // Shrinking mu_1 leaves the inner child holding objects beyond its
  // (now tighter) shell.
  root->cutoffs[0] *= 0.1;

  const auto result = check::CheckVpTree(tree);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.Has("shell-bound")) << result.Summary();
}

TEST(CheckGnat, HealthyTreeIsClean) {
  GnatOptions options;
  options.arity = 4;
  options.leaf_capacity = 8;
  Gnat<Traits> tree(TestVectors(), L2Distance{}, options);
  const auto result = check::CheckGnat(tree);
  EXPECT_TRUE(result.ok()) << result.Summary();
}

TEST(CheckGnat, DetectsCorruptedRangeTable) {
  GnatOptions options;
  options.arity = 4;
  options.leaf_capacity = 8;
  Gnat<Traits> tree(TestVectors(), L2Distance{}, options);
  auto* root = check::IndexInspector::MutableGnatRoot(tree);
  ASSERT_NE(root, nullptr);
  ASSERT_FALSE(root->is_leaf);
  ASSERT_FALSE(root->ranges.empty());
  // Collapsing a range interval strands that subtree's members outside it.
  for (auto& range : root->ranges) {
    range.hi = range.lo;
  }

  const auto result = check::CheckGnat(tree);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.Has("range-bound")) << result.Summary();
}

TEST(CheckHistogram, HealthyHistogramIsClean) {
  const auto histogram =
      DistanceHistogram::FromMasses({0.25, 0.25, 0.25, 0.25}, /*d_plus=*/2.0);
  const auto result = check::CheckHistogram(histogram);
  EXPECT_TRUE(result.ok()) << result.Summary();
}

TEST(CheckHistogram, DetectsNonMonotoneCdf) {
  const auto result = check::CheckHistogramData(
      {0.25, 0.25, 0.25, 0.25}, {0.25, 0.5, 0.4, 1.0}, /*d_plus=*/2.0);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.Has("cdf-monotone")) << result.Summary();
  EXPECT_TRUE(result.Has("cdf-consistency")) << result.Summary();
}

TEST(CheckHistogram, DetectsNegativeMassAndBadNormalization) {
  const auto result = check::CheckHistogramData(
      {0.5, -0.1, 0.3}, {0.5, 0.4, 0.7}, /*d_plus=*/1.0);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.Has("negative-mass")) << result.Summary();
  EXPECT_TRUE(result.Has("mass-normalization")) << result.Summary();
  EXPECT_TRUE(result.Has("cdf-terminal")) << result.Summary();
}

TEST(CheckHistogram, DetectsUnterminatedCdf) {
  const auto result = check::CheckHistogramData(
      {0.5, 0.5}, {0.5, 0.9}, /*d_plus=*/1.0);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.Has("cdf-terminal")) << result.Summary();
}

class InvariantHookTest : public ::testing::Test {
 protected:
  void TearDown() override { unsetenv("MCM_CHECK_INVARIANTS"); }
};

TEST_F(InvariantHookTest, HookThrowsOnMutationOfCorruptedTree) {
  setenv("MCM_CHECK_INVARIANTS", "1", /*overwrite=*/1);
  auto tree = BuildMTree();
  check::InstallMTreeInvariantHook(tree);

  auto root = tree.store().Read(tree.root());
  ASSERT_FALSE(root.is_leaf);
  root.routing_entries[0].covering_radius *= 0.25;
  tree.store().Write(tree.root(), root);

  const auto extra = TestVectors(1, /*seed=*/99);
  EXPECT_THROW(tree.Insert(extra[0], 10'000), std::runtime_error);
}

TEST_F(InvariantHookTest, HookRejectsCorruptTreeAtInstallTime) {
  setenv("MCM_CHECK_INVARIANTS", "1", /*overwrite=*/1);
  auto tree = BuildMTree();
  auto root = tree.store().Read(tree.root());
  ASSERT_FALSE(root.is_leaf);
  root.routing_entries[0].covering_radius *= 0.25;
  tree.store().Write(tree.root(), root);

  EXPECT_THROW(check::InstallMTreeInvariantHook(tree), std::runtime_error);
}

TEST_F(InvariantHookTest, HookIsNoopWhenGateUnset) {
  unsetenv("MCM_CHECK_INVARIANTS");
  auto tree = BuildMTree();
  check::InstallMTreeInvariantHook(tree);

  auto root = tree.store().Read(tree.root());
  ASSERT_FALSE(root.is_leaf);
  root.routing_entries[0].covering_radius *= 0.25;
  tree.store().Write(tree.root(), root);

  const auto extra = TestVectors(1, /*seed=*/99);
  EXPECT_NO_THROW(tree.Insert(extra[0], 10'000));
}

TEST_F(InvariantHookTest, HookPassesCleanMutations) {
  setenv("MCM_CHECK_INVARIANTS", "1", /*overwrite=*/1);
  MTreeOptions options;
  options.node_size_bytes = 512;
  MTree<Traits> tree{L2Distance{}, options};
  check::InstallMTreeInvariantHook(tree);

  const auto data = TestVectors(60);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_NO_THROW(tree.Insert(data[i], i));
  }
  EXPECT_TRUE(tree.Delete(data[0], 0));
}

}  // namespace
}  // namespace mcm
