// Complex similarity queries (future work #3): conjunctive/disjunctive
// multi-predicate range search — exactness against a linear scan, cost
// counters, and the independence-based cost-model extension.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "mcm/cost/nmcm.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/distribution/estimator.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"

namespace mcm {
namespace {

using VecTraits = VectorTraits<LInfDistance>;
using Tree = MTree<VecTraits>;

struct Fixture {
  std::vector<FloatVector> data;
  Tree tree;

  static Fixture Make(size_t n, size_t dim, uint64_t seed) {
    MTreeOptions options;
    options.node_size_bytes = 1024;
    auto data = GenerateClustered(n, dim, seed);
    auto tree = Tree::BulkLoad(data, LInfDistance{}, options);
    return Fixture{std::move(data), std::move(tree)};
  }
};

TEST(ComplexRangeSearch, ConjunctionMatchesLinearScan) {
  auto f = Fixture::Make(800, 6, 373);
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 12, 6, 373);
  const LInfDistance metric;
  for (size_t q = 0; q + 1 < queries.size(); q += 2) {
    const std::vector<Tree::Predicate> preds = {{queries[q], 0.3},
                                                {queries[q + 1], 0.35}};
    const auto got = f.tree.ComplexRangeSearch(preds, Tree::Combine::kAnd);
    size_t expected = 0;
    for (const auto& o : f.data) {
      if (metric(o, preds[0].query) <= preds[0].radius &&
          metric(o, preds[1].query) <= preds[1].radius) {
        ++expected;
      }
    }
    EXPECT_EQ(got.size(), expected);
    // Sorted by combined (max) distance.
    for (size_t i = 1; i < got.size(); ++i) {
      EXPECT_GE(got[i].distance, got[i - 1].distance);
    }
    // Combined distance really is the max over predicates.
    for (const auto& r : got) {
      EXPECT_NEAR(r.distance,
                  std::max(metric(r.object, preds[0].query),
                           metric(r.object, preds[1].query)),
                  1e-9);
    }
  }
}

TEST(ComplexRangeSearch, DisjunctionMatchesLinearScan) {
  auto f = Fixture::Make(800, 6, 379);
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 12, 6, 379);
  const LInfDistance metric;
  for (size_t q = 0; q + 1 < queries.size(); q += 2) {
    const std::vector<Tree::Predicate> preds = {{queries[q], 0.1},
                                                {queries[q + 1], 0.15}};
    const auto got = f.tree.ComplexRangeSearch(preds, Tree::Combine::kOr);
    size_t expected = 0;
    for (const auto& o : f.data) {
      if (metric(o, preds[0].query) <= preds[0].radius ||
          metric(o, preds[1].query) <= preds[1].radius) {
        ++expected;
      }
    }
    EXPECT_EQ(got.size(), expected);
  }
}

TEST(ComplexRangeSearch, SinglePredicateEqualsPlainRange) {
  auto f = Fixture::Make(500, 5, 383);
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 5, 5, 383);
  for (const auto& q : queries) {
    QueryStats plain_stats, complex_stats;
    const auto plain = f.tree.RangeSearch(q, 0.2, &plain_stats);
    const auto complex = f.tree.ComplexRangeSearch(
        {{q, 0.2}}, Tree::Combine::kAnd, &complex_stats);
    ASSERT_EQ(plain.size(), complex.size());
    for (size_t i = 0; i < plain.size(); ++i) {
      EXPECT_EQ(plain[i].oid, complex[i].oid);
    }
    // Same I/O; same CPU (one predicate = one distance per entry).
    EXPECT_EQ(plain_stats.nodes_accessed, complex_stats.nodes_accessed);
    EXPECT_EQ(plain_stats.distance_computations,
              complex_stats.distance_computations);
  }
}

TEST(ComplexRangeSearch, ConjunctionAccessesFewerNodesThanEitherPredicate) {
  auto f = Fixture::Make(2000, 8, 389);
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 10, 8, 389);
  for (size_t q = 0; q + 1 < queries.size(); q += 2) {
    const std::vector<Tree::Predicate> preds = {{queries[q], 0.25},
                                                {queries[q + 1], 0.25}};
    QueryStats and_stats, or_stats, p0_stats, p1_stats;
    f.tree.ComplexRangeSearch(preds, Tree::Combine::kAnd, &and_stats);
    f.tree.ComplexRangeSearch(preds, Tree::Combine::kOr, &or_stats);
    f.tree.RangeSearch(preds[0].query, preds[0].radius, &p0_stats);
    f.tree.RangeSearch(preds[1].query, preds[1].radius, &p1_stats);
    EXPECT_LE(and_stats.nodes_accessed,
              std::min(p0_stats.nodes_accessed, p1_stats.nodes_accessed));
    EXPECT_GE(or_stats.nodes_accessed,
              std::max(p0_stats.nodes_accessed, p1_stats.nodes_accessed));
    // OR does one traversal, never worse than the two separate queries.
    EXPECT_LE(or_stats.nodes_accessed,
              p0_stats.nodes_accessed + p1_stats.nodes_accessed);
  }
}

TEST(ComplexRangeSearch, EmptyPredicatesAndEmptyTree) {
  auto f = Fixture::Make(100, 4, 397);
  EXPECT_TRUE(f.tree.ComplexRangeSearch({}, Tree::Combine::kAnd).empty());
  Tree empty(LInfDistance{}, MTreeOptions{});
  EXPECT_TRUE(empty
                  .ComplexRangeSearch({{FloatVector{0.5f, 0.5f, 0.5f, 0.5f},
                                        1.0}},
                                      Tree::Combine::kOr)
                  .empty());
}

TEST(ComplexCostModel, PredictsMeasuredCosts) {
  const size_t n = 6000, dim = 8;
  const auto data = GenerateClustered(n, dim, 401);
  MTreeOptions options;
  auto tree = Tree::BulkLoad(data, LInfDistance{}, options);
  EstimatorOptions eo;
  eo.num_bins = 100;
  const auto hist = EstimateDistanceDistribution(data, LInfDistance{}, eo);
  const NodeBasedCostModel model(hist, tree.CollectStats(1.0));

  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 100, dim, 401);
  const std::vector<double> radii = {0.25, 0.3};
  for (const bool conjunctive : {true, false}) {
    double nodes = 0.0, dists = 0.0, objs = 0.0;
    for (size_t q = 0; q + 1 < queries.size(); q += 2) {
      const std::vector<Tree::Predicate> preds = {{queries[q], radii[0]},
                                                  {queries[q + 1], radii[1]}};
      QueryStats stats;
      const auto result = tree.ComplexRangeSearch(
          preds, conjunctive ? Tree::Combine::kAnd : Tree::Combine::kOr,
          &stats);
      nodes += static_cast<double>(stats.nodes_accessed);
      dists += static_cast<double>(stats.distance_computations);
      objs += static_cast<double>(result.size());
    }
    const double pairs = static_cast<double>(queries.size() / 2);
    nodes /= pairs;
    dists /= pairs;
    objs /= pairs;
    // Independence-based estimate: 40% band for the cost counters. The
    // result-cardinality estimate is cruder — membership in two different
    // clusters is negatively correlated on clustered data — so it only
    // gets an order-of-magnitude band (documented model limitation; see
    // bench/ext_complex_queries).
    EXPECT_NEAR(model.ComplexRangeNodes(radii, conjunctive), nodes,
                0.40 * nodes + 2.0)
        << conjunctive;
    EXPECT_NEAR(model.ComplexRangeDistances(radii, conjunctive), dists,
                0.40 * dists + 10.0)
        << conjunctive;
    const double est_objs = model.ComplexRangeObjects(radii, conjunctive);
    EXPECT_GT(est_objs, objs / 3.0) << conjunctive;
    EXPECT_LT(est_objs, objs * 3.0 + 3.0) << conjunctive;
  }
}

TEST(ComplexCostModel, ReducesToPlainRangeForOnePredicate) {
  const auto data = GenerateClustered(2000, 6, 409);
  MTreeOptions options;
  auto tree = Tree::BulkLoad(data, LInfDistance{}, options);
  EstimatorOptions eo;
  eo.num_bins = 100;
  const auto hist = EstimateDistanceDistribution(data, LInfDistance{}, eo);
  const NodeBasedCostModel model(hist, tree.CollectStats(1.0));
  for (double r : {0.1, 0.3}) {
    EXPECT_NEAR(model.ComplexRangeNodes({r}, true), model.RangeNodes(r),
                1e-9);
    EXPECT_NEAR(model.ComplexRangeNodes({r}, false), model.RangeNodes(r),
                1e-9);
    EXPECT_NEAR(model.ComplexRangeDistances({r}, true),
                model.RangeDistances(r), 1e-9);
    EXPECT_NEAR(model.ComplexRangeObjects({r}, true), model.RangeObjects(r),
                1e-9);
  }
}

}  // namespace
}  // namespace mcm
