// The engine layer's contracts: the MetricIndex concept is satisfied by
// all four access paths; the thread pool runs every iteration exactly once
// and propagates failures; and the batch executor is deterministic — the
// batched answers and the merged counters are identical to a sequential
// loop running the same queries, for every index and both query kinds.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "mcm/baseline/linear_scan.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/engine/executor.h"
#include "mcm/engine/metric_index.h"
#include "mcm/gnat/gnat.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"
#include "mcm/vptree/vptree.h"

namespace mcm {
namespace {

using VecTraits = VectorTraits<LInfDistance>;

static_assert(MetricIndex<MTree<VecTraits>>);
static_assert(MetricIndex<VpTree<VecTraits>>);
static_assert(MetricIndex<Gnat<VecTraits>>);
static_assert(MetricIndex<LinearScan<VecTraits>>);
static_assert(DynamicMetricIndex<MTree<VecTraits>>);
static_assert(!DynamicMetricIndex<VpTree<VecTraits>>);
static_assert(StatsViewIndex<VpTree<VecTraits>>);
static_assert(StatsViewIndex<Gnat<VecTraits>>);

TEST(ResolveThreadCount, ExplicitRequestWins) {
  EXPECT_EQ(engine::ResolveThreadCount(3), 3u);
  EXPECT_EQ(engine::ResolveThreadCount(1), 1u);
}

TEST(ResolveThreadCount, EnvVariableFallback) {
  ASSERT_EQ(setenv("MCM_THREADS", "5", /*overwrite=*/1), 0);
  EXPECT_EQ(engine::ResolveThreadCount(0), 5u);
  EXPECT_EQ(engine::ResolveThreadCount(2), 2u);  // Explicit still wins.
  ASSERT_EQ(unsetenv("MCM_THREADS"), 0);
  EXPECT_GE(engine::ResolveThreadCount(0), 1u);  // Hardware fallback.
}

TEST(ThreadPool, RunsEveryIterationExactlyOnce) {
  engine::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  constexpr size_t kCount = 1000;
  std::vector<std::atomic<int>> touched(kCount);
  pool.ParallelFor(kCount, [&](size_t i) { ++touched[i]; });
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(touched[i].load(), 1) << "i=" << i;
  }
  // The pool is reusable: a second job must also cover everything.
  pool.ParallelFor(kCount, [&](size_t i) { ++touched[i]; });
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(touched[i].load(), 2) << "i=" << i;
  }
}

TEST(ThreadPool, EmptyJobReturnsImmediately) {
  engine::ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, PropagatesFirstException) {
  engine::ThreadPool pool(3);
  std::atomic<size_t> completed{0};
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](size_t i) {
                         if (i == 17) throw std::runtime_error("boom");
                         ++completed;
                       }),
      std::runtime_error);
  // The remaining iterations still ran to completion.
  EXPECT_EQ(completed.load(), 99u);
  // The pool survives: the next job is clean.
  pool.ParallelFor(10, [](size_t) {});
}

void ExpectStatsEqual(const QueryStats& a, const QueryStats& b,
                      const char* what) {
  EXPECT_EQ(a.nodes_accessed, b.nodes_accessed) << what;
  EXPECT_EQ(a.distance_computations, b.distance_computations) << what;
  EXPECT_EQ(a.nodes_pruned, b.nodes_pruned) << what;
  EXPECT_EQ(a.buffer_hits, b.buffer_hits) << what;
  EXPECT_EQ(a.buffer_misses, b.buffer_misses) << what;
}

template <typename Object>
void ExpectResultsEqual(const std::vector<SearchResult<Object>>& a,
                        const std::vector<SearchResult<Object>>& b,
                        const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].oid, b[i].oid) << what << " i=" << i;
    EXPECT_EQ(a[i].distance, b[i].distance) << what << " i=" << i;
  }
}

/// The determinism contract, checked for one index: batched range and k-NN
/// answers, per-query counters, and merged totals are all identical to the
/// sequential loop — at every thread count.
template <typename Index, typename Object>
void CheckBatchMatchesSequential(const Index& index,
                                 const std::vector<Object>& queries,
                                 double radius, size_t k) {
  for (const size_t threads : {1, 2, 4}) {
    engine::ExecutorOptions options;
    options.num_threads = threads;
    const engine::BatchExecutor<Index> executor(index, options);
    EXPECT_EQ(executor.num_threads(), threads);

    const auto range_batch = executor.RangeSearchBatch(queries, radius);
    const auto knn_batch = executor.KnnSearchBatch(queries, k);
    ASSERT_EQ(range_batch.results.size(), queries.size());
    ASSERT_EQ(knn_batch.results.size(), queries.size());

    QueryStats range_totals;
    QueryStats knn_totals;
    for (size_t i = 0; i < queries.size(); ++i) {
      QueryStats st;
      const auto expected_range = index.RangeSearch(queries[i], radius, &st);
      ExpectResultsEqual(range_batch.results[i], expected_range, "range");
      ExpectStatsEqual(range_batch.per_query[i], st, "range stats");
      range_totals += st;

      QueryStats kst;
      const auto expected_knn = index.KnnSearch(queries[i], k, &kst);
      ExpectResultsEqual(knn_batch.results[i], expected_knn, "knn");
      ExpectStatsEqual(knn_batch.per_query[i], kst, "knn stats");
      knn_totals += kst;
    }
    ExpectStatsEqual(range_batch.totals, range_totals, "range totals");
    ExpectStatsEqual(knn_batch.totals, knn_totals, "knn totals");
  }
}

class ExecutorDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = GenerateClustered(1500, 6, 733);
    queries_ =
        GenerateVectorQueries(VectorDatasetKind::kClustered, 40, 6, 733);
  }

  std::vector<FloatVector> data_;
  std::vector<FloatVector> queries_;
};

TEST_F(ExecutorDeterminismTest, MTreeMemoryStore) {
  MTreeOptions options;
  options.seed = 42;
  options.pruning = PruningMode::kOptimized;
  const auto tree = MTree<VecTraits>::BulkLoad(data_, LInfDistance{}, options);
  CheckBatchMatchesSequential(tree, queries_, 0.1, 5);
}

TEST_F(ExecutorDeterminismTest, VpTree) {
  VpTreeOptions options;
  options.seed = 42;
  const VpTree<VecTraits> tree(data_, LInfDistance{}, options);
  CheckBatchMatchesSequential(tree, queries_, 0.1, 5);
}

TEST_F(ExecutorDeterminismTest, Gnat) {
  GnatOptions options;
  options.seed = 42;
  const Gnat<VecTraits> tree(data_, LInfDistance{}, options);
  CheckBatchMatchesSequential(tree, queries_, 0.1, 5);
}

TEST_F(ExecutorDeterminismTest, LinearScan) {
  const LinearScan<VecTraits> scan(data_, LInfDistance{});
  CheckBatchMatchesSequential(scan, queries_, 0.1, 5);
}

TEST_F(ExecutorDeterminismTest, PagedMTreeConcurrentReads) {
  MTreeOptions options;
  options.seed = 42;
  options.pruning = PruningMode::kOptimized;
  auto store = std::make_unique<PagedNodeStore<VecTraits>>(
      std::make_unique<InMemoryPageFile>(options.node_size_bytes),
      /*pool_frames=*/256);
  const auto tree = MTree<VecTraits>::BulkLoad(data_, LInfDistance{}, options,
                                               std::move(store));

  engine::ExecutorOptions exec_options;
  exec_options.num_threads = 4;
  const engine::BatchExecutor<MTree<VecTraits>> executor(tree, exec_options);
  const auto batch = executor.RangeSearchBatch(queries_, 0.1);

  QueryStats totals;
  for (size_t i = 0; i < queries_.size(); ++i) {
    QueryStats st;
    const auto expected = tree.RangeSearch(queries_[i], 0.1, &st);
    ExpectResultsEqual(batch.results[i], expected, "paged range");
    // Logical costs are schedule-independent even on a shared pool...
    EXPECT_EQ(batch.per_query[i].nodes_accessed, st.nodes_accessed);
    EXPECT_EQ(batch.per_query[i].distance_computations,
              st.distance_computations);
    EXPECT_EQ(batch.per_query[i].nodes_pruned, st.nodes_pruned);
    // ...and every node access is attributed as exactly one hit or miss
    // (the hit/miss *split* is schedule-dependent, their sum is not).
    EXPECT_EQ(batch.per_query[i].buffer_hits + batch.per_query[i].buffer_misses,
              batch.per_query[i].nodes_accessed);
    totals += batch.per_query[i];
  }
  ExpectStatsEqual(batch.totals, totals, "paged totals");
}

TEST_F(ExecutorDeterminismTest, TracesMergeDeterministically) {
  VpTreeOptions options;
  options.seed = 42;
  const VpTree<VecTraits> tree(data_, LInfDistance{}, options);

  engine::ExecutorOptions exec_options;
  exec_options.num_threads = 4;
  exec_options.trace_capacity = 4096;
  const engine::BatchExecutor<VpTree<VecTraits>> executor(tree, exec_options);
  const auto batch = executor.RangeSearchBatch(queries_, 0.1);

  ASSERT_EQ(batch.traces.size(), queries_.size());
  for (size_t i = 0; i < queries_.size(); ++i) {
    // Each query's private trace tallies exactly its own counters.
    QueryTrace expected(4096);
    QueryStats st;
    st.trace = &expected;
    tree.RangeSearch(queries_[i], 0.1, &st);
    EXPECT_EQ(batch.traces[i].Events().size(), expected.Events().size())
        << "i=" << i;
    EXPECT_EQ(batch.traces[i].prunes_by_reason(),
              expected.prunes_by_reason())
        << "i=" << i;
  }
}

TEST(BatchExecutor, QpsReportsWallClock) {
  const auto data = GenerateUniform(400, 4, 811);
  const LinearScan<VecTraits> scan(data, LInfDistance{});
  engine::ExecutorOptions options;
  options.num_threads = 2;
  const engine::BatchExecutor<LinearScan<VecTraits>> executor(scan, options);
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kUniform, 30, 4, 811);
  const auto batch = executor.RangeSearchBatch(queries, 0.2);
  EXPECT_GT(batch.wall_seconds, 0.0);
  EXPECT_GT(batch.Qps(), 0.0);
}

TEST(BatchExecutor, EmptyBatch) {
  const std::vector<FloatVector> data = {{0.1f}, {0.9f}};
  const LinearScan<VecTraits> scan(data, LInfDistance{});
  const engine::BatchExecutor<LinearScan<VecTraits>> executor(scan, {});
  const auto batch = executor.RangeSearchBatch({}, 0.5);
  EXPECT_TRUE(batch.results.empty());
  EXPECT_EQ(batch.totals.distance_computations, 0u);
}

}  // namespace
}  // namespace mcm
