#include "mcm/common/env.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace mcm {
namespace {

TEST(GetEnvInt, UnsetReturnsDefault) {
  unsetenv("MCM_TEST_UNSET_VAR");
  EXPECT_EQ(GetEnvInt("MCM_TEST_UNSET_VAR", 42), 42);
}

TEST(GetEnvInt, ParsesValue) {
  setenv("MCM_TEST_INT", "12345", 1);
  EXPECT_EQ(GetEnvInt("MCM_TEST_INT", 0), 12345);
  setenv("MCM_TEST_INT", "-7", 1);
  EXPECT_EQ(GetEnvInt("MCM_TEST_INT", 0), -7);
  unsetenv("MCM_TEST_INT");
}

TEST(GetEnvInt, GarbageFallsBackToDefault) {
  setenv("MCM_TEST_INT", "12abc", 1);
  EXPECT_EQ(GetEnvInt("MCM_TEST_INT", 9), 9);
  setenv("MCM_TEST_INT", "", 1);
  EXPECT_EQ(GetEnvInt("MCM_TEST_INT", 9), 9);
  unsetenv("MCM_TEST_INT");
}

TEST(GetEnvDouble, ParsesAndDefaults) {
  unsetenv("MCM_TEST_DBL");
  EXPECT_DOUBLE_EQ(GetEnvDouble("MCM_TEST_DBL", 1.5), 1.5);
  setenv("MCM_TEST_DBL", "0.25", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("MCM_TEST_DBL", 1.5), 0.25);
  setenv("MCM_TEST_DBL", "x", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("MCM_TEST_DBL", 1.5), 1.5);
  unsetenv("MCM_TEST_DBL");
}

}  // namespace
}  // namespace mcm
