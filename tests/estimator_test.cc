#include "mcm/distribution/estimator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "mcm/dataset/vector_datasets.h"
#include "mcm/metric/counted_metric.h"
#include "mcm/metric/vector_metrics.h"

namespace mcm {
namespace {

TEST(EstimateDistanceDistribution, AllPairsWhenBudgetAllows) {
  const auto points = GenerateUniform(40, 2, 1);
  CountedMetric<LInfDistance> metric;
  EstimatorOptions options;
  options.max_pairs = 10000;  // 40*39/2 = 780 <= budget.
  const auto h = EstimateDistanceDistribution(points, metric, options);
  EXPECT_EQ(metric.count(), 780u);
  EXPECT_EQ(h.num_samples(), 780u);
}

TEST(EstimateDistanceDistribution, SamplesWhenPairsExceedBudget) {
  const auto points = GenerateUniform(200, 2, 1);
  CountedMetric<LInfDistance> metric;
  EstimatorOptions options;
  options.max_pairs = 500;  // 200*199/2 >> 500.
  const auto h = EstimateDistanceDistribution(points, metric, options);
  EXPECT_EQ(metric.count(), 500u);
  EXPECT_EQ(h.num_samples(), 500u);
}

TEST(EstimateDistanceDistribution, MatchesClosedFormUniform1D) {
  // For X, Y ~ U[0,1], |X - Y| has CDF F(x) = 2x - x^2.
  const auto points = GenerateUniform(2000, 1, 3);
  EstimatorOptions options;
  options.num_bins = 50;
  options.d_plus = 1.0;
  options.max_pairs = 400000;
  const auto h = EstimateDistanceDistribution(points, LInfDistance{}, options);
  for (double x = 0.1; x < 1.0; x += 0.1) {
    EXPECT_NEAR(h.Cdf(x), 2 * x - x * x, 0.02) << "x=" << x;
  }
}

TEST(EstimateDistanceDistribution, DeterministicSampling) {
  const auto points = GenerateUniform(300, 3, 5);
  EstimatorOptions options;
  options.max_pairs = 1000;
  options.seed = 77;
  const auto a = EstimateDistanceDistribution(points, LInfDistance{}, options);
  const auto b = EstimateDistanceDistribution(points, LInfDistance{}, options);
  EXPECT_EQ(a.masses(), b.masses());
}

TEST(EstimateDistanceDistribution, RequiresTwoObjects) {
  const std::vector<FloatVector> one = {{0.5f}};
  EXPECT_THROW(
      EstimateDistanceDistribution(one, LInfDistance{}, EstimatorOptions{}),
      std::invalid_argument);
}

TEST(EstimateDistanceDistribution, ClusteredHasBimodalShape) {
  // Clustered data: noticeable mass at small distances (same cluster) and a
  // gap before the inter-cluster mode.
  ClusteredSpec spec;
  spec.num_clusters = 4;
  spec.sigma = 0.02;
  const auto points = GenerateClustered(400, 8, 9, spec);
  EstimatorOptions options;
  options.num_bins = 100;
  const auto h = EstimateDistanceDistribution(points, LInfDistance{}, options);
  const double near = h.Cdf(0.1);
  EXPECT_GT(near, 0.1);   // ~1/4 of pairs share a cluster.
  EXPECT_LT(near, 0.5);
  EXPECT_GT(h.Cdf(0.95), 0.9);
}

}  // namespace
}  // namespace mcm
