// Shutdown and failure paths of the thread pool and batch executor: task
// exceptions mid-batch (first one wins, the batch still completes), pool
// reuse after a throwing batch, destruction ordering, and re-entrant
// ParallelFor (a task submitting nested work runs it inline instead of
// deadlocking). Runs under the TSan leg of the sanitizer matrix, where
// the condition-variable handoffs and the per-iteration claim protocol
// are exercised under a racing scheduler.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "mcm/baseline/linear_scan.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/engine/executor.h"
#include "mcm/metric/traits.h"

namespace mcm {
namespace {

using VecTraits = VectorTraits<L2Distance>;

// L2 that refuses poisoned queries (first coordinate = kPoison): the only
// way a batch query can die mid-flight is through its metric, so the
// failure-path tests inject one that throws on marked inputs.
constexpr float kPoison = 1.0e9f;

struct PoisonableL2 {
  double operator()(const FloatVector& a, const FloatVector& b) const {
    if ((!a.empty() && a[0] >= kPoison) || (!b.empty() && b[0] >= kPoison)) {
      throw std::runtime_error("poisoned query");
    }
    return L2Distance{}(a, b);
  }
};

using PoisonTraits = VectorTraits<PoisonableL2>;

TEST(ThreadPoolShutdown, DestructionWithNoWorkEverSubmitted) {
  // Workers park in the wait loop immediately; the destructor must wake
  // and join all of them without a job ever existing.
  engine::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
}

TEST(ThreadPoolShutdown, DestructionImmediatelyAfterBatch) {
  std::atomic<int> ran{0};
  {
    engine::ThreadPool pool(3);
    pool.ParallelFor(64, [&](size_t) { ran.fetch_add(1); });
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolShutdown, ManyPoolsConstructedAndDestroyed) {
  // Construction/destruction churn: every cycle must join cleanly even
  // when the pool outlives its last job by nothing at all.
  for (int cycle = 0; cycle < 8; ++cycle) {
    engine::ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.ParallelFor(5, [&](size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 5);
  }
}

TEST(ThreadPoolExceptions, TaskThrowsMidBatch) {
  engine::ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](size_t i) {
                         ran.fetch_add(1);
                         if (i == 13) {
                           throw std::runtime_error("boom at 13");
                         }
                       }),
      std::runtime_error);
  // Every iteration still ran: a throw poisons the result, not the batch.
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolExceptions, FirstErrorWinsWhenManyThrow) {
  engine::ThreadPool pool(4);
  try {
    pool.ParallelFor(32, [&](size_t i) {
      throw std::runtime_error("boom " + std::to_string(i));
    });
    FAIL() << "ParallelFor should have rethrown";
  } catch (const std::runtime_error& e) {
    // Exactly one of the per-iteration errors surfaces.
    EXPECT_EQ(std::string(e.what()).rfind("boom ", 0), 0u);
  }
}

TEST(ThreadPoolExceptions, PoolIsReusableAfterThrowingBatch) {
  engine::ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(
                   8, [](size_t) { throw std::logic_error("poisoned"); }),
               std::logic_error);
  // The error slot must have been cleared: the next batch succeeds and
  // reports nothing stale.
  std::atomic<int> ran{0};
  pool.ParallelFor(16, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolReentrant, NestedParallelForRunsInline) {
  engine::ThreadPool pool(2);
  std::atomic<int> inner_ran{0};
  // Outer tasks outnumber workers; each submits nested work from inside
  // the pool. Without the inline fallback this deadlocks (all workers
  // blocked waiting for workers).
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(10, [&](size_t) { inner_ran.fetch_add(1); });
  });
  EXPECT_EQ(inner_ran.load(), 80);
}

TEST(ThreadPoolReentrant, NestedThrowPropagatesThroughOuterBatch) {
  engine::ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(4,
                       [&](size_t) {
                         pool.ParallelFor(4, [](size_t j) {
                           if (j == 2) {
                             throw std::runtime_error("nested boom");
                           }
                         });
                       }),
      std::runtime_error);
  // And the pool still works afterwards.
  std::atomic<int> ran{0};
  pool.ParallelFor(6, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 6);
}

TEST(BatchExecutorShutdown, ThrowingQueryPropagatesAndExecutorSurvives) {
  const auto data = GenerateUniform(/*n=*/64, /*dim=*/4, /*seed=*/7);
  LinearScan<PoisonTraits> index(data, {});
  engine::BatchExecutor<LinearScan<PoisonTraits>> exec(index,
                                                       {.num_threads = 3});

  // One poisoned query mid-batch: its metric throws, the exception
  // surfaces from the batch call, and the rest of the batch still ran.
  std::vector<FloatVector> queries(data.begin(), data.begin() + 8);
  queries[5][0] = kPoison;
  EXPECT_THROW(exec.KnnSearchBatch(queries, 3), std::runtime_error);

  // The executor (and its pool) must remain usable after the failure.
  queries[5] = data[5];
  auto batch = exec.KnnSearchBatch(queries, 3);
  ASSERT_EQ(batch.results.size(), queries.size());
  for (const auto& result : batch.results) {
    EXPECT_EQ(result.size(), 3u);
  }
  EXPECT_EQ(batch.totals.distance_computations,
            batch.per_query.size() * data.size());
}

TEST(BatchExecutorShutdown, DestructionWhileResultsOutlive) {
  const auto data = GenerateUniform(/*n=*/32, /*dim=*/4, /*seed=*/11);
  engine::BatchResult<FloatVector> batch;
  {
    LinearScan<VecTraits> index(data, {});
    engine::BatchExecutor<LinearScan<VecTraits>> exec(index,
                                                      {.num_threads = 2});
    batch = exec.RangeSearchBatch({data[0], data[1]}, 0.25);
  }
  // The batch result owns its storage; the executor and index are gone.
  ASSERT_EQ(batch.results.size(), 2u);
  EXPECT_GE(batch.results[0].size(), 1u);  // Query 0 finds at least itself.
}

}  // namespace
}  // namespace mcm
