// EXPLAIN driver contracts: both cost models predict totals and per-level
// vectors, the instrumented execution's per-level actuals sum to the query
// counters, the access-path decision is reported, the text and JSON
// renderings carry the full story (and the JSON parses), and with obs off
// the explained query's answers and counters match an instrumented run.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mcm/cost/explain.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/distribution/estimator.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/mtree.h"
#include "mcm/obs/export.h"
#include "mcm/obs/metrics.h"

namespace mcm {
namespace {

using Traits = VectorTraits<L2Distance>;

class ObsGuard {
 public:
  explicit ObsGuard(bool enabled) : previous_(ObsEnabled()) {
    SetObsEnabledForTesting(enabled);
  }
  ~ObsGuard() { SetObsEnabledForTesting(previous_); }

 private:
  bool previous_;
};

struct Fixture {
  MTree<Traits> tree;
  DistanceHistogram histogram;
  std::vector<FloatVector> data;
  double d_plus;
};

Fixture MakeFixture() {
  MTreeOptions options;
  options.node_size_bytes = 512;
  MTree<Traits> tree{L2Distance{}, options};
  auto data = GenerateVectorDataset(VectorDatasetKind::kClustered,
                                    /*n=*/500, /*dim=*/4, /*seed=*/7);
  for (size_t i = 0; i < data.size(); ++i) tree.Insert(data[i], i);

  const double d_plus = 2.0;
  EstimatorOptions eo;
  eo.d_plus = d_plus;
  auto histogram = EstimateDistanceDistribution(data, L2Distance{}, eo);
  return Fixture{std::move(tree), std::move(histogram), std::move(data),
                 d_plus};
}

void ExpectConsistent(const ExplainReport& report) {
  ASSERT_EQ(report.predictions.size(), 2u);
  EXPECT_EQ(report.predictions[0].model, "nmcm");
  EXPECT_EQ(report.predictions[1].model, "lmcm");
  for (const auto& p : report.predictions) {
    EXPECT_GT(p.nodes, 0.0);
    EXPECT_GT(p.distances, 0.0);
    ASSERT_FALSE(p.level_nodes.empty());
    ASSERT_FALSE(p.level_distances.empty());
    double level_nodes = 0.0;
    for (double v : p.level_nodes) level_nodes += v;
    EXPECT_NEAR(level_nodes, p.nodes, 1e-6 + 1e-9 * p.nodes)
        << p.model << ": per-level node predictions must sum to the total";
  }

  uint64_t level_nodes = 0;
  uint64_t level_dists = 0;
  for (const auto& a : report.level_actuals) {
    level_nodes += a.node_visits;
    level_dists += a.distances;
  }
  EXPECT_EQ(level_nodes, report.stats.nodes_accessed);
  EXPECT_EQ(level_dists, report.stats.distance_computations);
  EXPECT_TRUE(report.access_path == "index-scan" ||
              report.access_path == "sequential-scan");
  EXPECT_GT(report.index_ms, 0.0);
  EXPECT_GT(report.sequential_ms, 0.0);
  EXPECT_GT(report.latency_us, 0.0);
}

TEST(ExplainRange, PredictsAndMeasuresConsistently) {
  ObsGuard obs(true);
  const auto fx = MakeFixture();
  const auto report =
      ExplainRange(fx.tree, fx.histogram, fx.d_plus, fx.data[0], 0.4);

  EXPECT_EQ(report.kind, "range");
  EXPECT_DOUBLE_EQ(report.radius, 0.4);
  EXPECT_EQ(report.num_objects, 500u);
  EXPECT_EQ(report.height, fx.tree.height());
  ExpectConsistent(report);

  // The explained execution answers exactly like a direct query.
  QueryStats st;
  EXPECT_EQ(report.num_results,
            fx.tree.RangeSearch(fx.data[0], 0.4, &st).size());
  EXPECT_EQ(report.stats.nodes_accessed, st.nodes_accessed);
  EXPECT_EQ(report.stats.distance_computations, st.distance_computations);

  // With obs on the phase clock ran: traverse and plan are both nonzero.
  EXPECT_GT(report.stats.PhaseNs(QueryPhase::kTraverse), 0u);
  EXPECT_GT(report.stats.PhaseNs(QueryPhase::kPlan), 0u);
}

TEST(ExplainKnn, PredictsAndMeasuresConsistently) {
  ObsGuard obs(true);
  const auto fx = MakeFixture();
  const auto report =
      ExplainKnn(fx.tree, fx.histogram, fx.d_plus, fx.data[1], /*k=*/10);

  EXPECT_EQ(report.kind, "knn");
  EXPECT_EQ(report.k, 10u);
  EXPECT_EQ(report.num_results, 10u);
  ExpectConsistent(report);
}

TEST(ExplainRange, ObsOffStillCountsAndMatches) {
  const auto fx = MakeFixture();
  ExplainReport off_report;
  {
    ObsGuard obs(false);
    off_report = ExplainRange(fx.tree, fx.histogram, fx.d_plus, fx.data[2],
                              0.4);
  }
  ObsGuard obs(true);
  const auto on_report =
      ExplainRange(fx.tree, fx.histogram, fx.d_plus, fx.data[2], 0.4);

  // Identical answers and counters; only the timers differ.
  EXPECT_EQ(off_report.num_results, on_report.num_results);
  EXPECT_EQ(off_report.stats.nodes_accessed, on_report.stats.nodes_accessed);
  EXPECT_EQ(off_report.stats.distance_computations,
            on_report.stats.distance_computations);
  EXPECT_EQ(off_report.stats.PhaseNs(QueryPhase::kTraverse), 0u);
  EXPECT_GT(on_report.stats.PhaseNs(QueryPhase::kTraverse), 0u);
}

TEST(ExplainRender, TextCarriesTheFullStory) {
  ObsGuard obs(true);
  const auto fx = MakeFixture();
  const auto report =
      ExplainRange(fx.tree, fx.histogram, fx.d_plus, fx.data[0], 0.4);
  const std::string text = RenderExplainText(report);
  for (const char* needle :
       {"EXPLAIN range", "access path:", "N-MCM", "L-MCM", "per-level",
        "phase times:", "traverse", "results:"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << "missing " << needle;
  }
}

TEST(ExplainRender, JsonParsesWithSchemaKeys) {
  ObsGuard obs(true);
  const auto fx = MakeFixture();
  const auto report =
      ExplainKnn(fx.tree, fx.histogram, fx.d_plus, fx.data[0], /*k=*/5);
  const auto parsed = ParseJson(RenderExplainJson(report));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_object());

  for (const char* key :
       {"kind", "k", "index", "plan", "predictions", "actual", "phase_us"}) {
    EXPECT_NE(parsed->Find(key), nullptr) << "missing " << key;
  }
  const auto* predictions = parsed->Find("predictions");
  ASSERT_TRUE(predictions != nullptr && predictions->is_array());
  ASSERT_EQ(predictions->array_value.size(), 2u);
  for (const auto& p : predictions->array_value) {
    EXPECT_NE(p.Find("model"), nullptr);
    EXPECT_NE(p.Find("nodes"), nullptr);
    EXPECT_NE(p.Find("level_nodes"), nullptr);
  }
  const auto* actual = parsed->Find("actual");
  ASSERT_NE(actual, nullptr);
  const auto* levels = actual->Find("levels");
  ASSERT_TRUE(levels != nullptr && levels->is_array());
  EXPECT_EQ(levels->array_value.size(), report.level_actuals.size());
  const auto* nodes = actual->Find("nodes");
  ASSERT_TRUE(nodes != nullptr && nodes->is_number());
  EXPECT_EQ(static_cast<uint64_t>(nodes->number_value),
            report.stats.nodes_accessed);
  const auto* phase_us = parsed->Find("phase_us");
  ASSERT_TRUE(phase_us != nullptr && phase_us->is_object());
  EXPECT_NE(phase_us->Find("traverse"), nullptr);
  EXPECT_NE(phase_us->Find("plan"), nullptr);
}

}  // namespace
}  // namespace mcm
