// Correlation-dimension tests (future work #5): the fit recovers the
// embedding dimension of uniform data, the smoothed CDF joins the
// histogram continuously, and power-law quantiles resolve probabilities
// far below one histogram bin.

#include <cmath>

#include <gtest/gtest.h>

#include "mcm/dataset/vector_datasets.h"
#include "mcm/distribution/estimator.h"
#include "mcm/distribution/fractal.h"
#include "mcm/metric/vector_metrics.h"

namespace mcm {
namespace {

DistanceHistogram PowerLawHistogram(double dimension, size_t bins = 200) {
  // F(r) = r^dimension on [0, 1].
  std::vector<double> masses(bins);
  for (size_t b = 0; b < bins; ++b) {
    const double hi = static_cast<double>(b + 1) / static_cast<double>(bins);
    const double lo = static_cast<double>(b) / static_cast<double>(bins);
    masses[b] = std::pow(hi, dimension) - std::pow(lo, dimension);
  }
  return DistanceHistogram::FromMasses(masses, 1.0);
}

TEST(EstimateCorrelationDimension, RecoversExactPowerLaw) {
  for (double d : {1.0, 2.0, 3.5}) {
    const auto h = PowerLawHistogram(d);
    const auto fit = EstimateCorrelationDimension(h);
    EXPECT_NEAR(fit.dimension, d, 0.05 * d) << "d=" << d;
    EXPECT_GT(fit.points_used, 2u);
    EXPECT_LT(fit.r_lo, fit.r_hi);
  }
}

TEST(EstimateCorrelationDimension, UniformDataMatchesEmbeddingDimension) {
  // For uniform [0,1]^D under L-inf, F(r) ~ (2r)^D at small r, so the
  // correlation dimension equals D.
  for (size_t dim : {2u, 4u}) {
    const auto data = GenerateUniform(4000, dim, 307);
    EstimatorOptions eo;
    eo.num_bins = 200;
    eo.max_pairs = 2000000;
    const auto h = EstimateDistanceDistribution(data, LInfDistance{}, eo);
    const auto fit = EstimateCorrelationDimension(h, 0.001, 0.2);
    EXPECT_NEAR(fit.dimension, static_cast<double>(dim),
                0.35 * static_cast<double>(dim))
        << "dim=" << dim;
  }
}

TEST(EstimateCorrelationDimension, ClusteredDataHasLowerDimension) {
  // Tight clusters make the small-radius growth much flatter than the
  // embedding dimension.
  const size_t dim = 10;
  const auto clustered = GenerateClustered(4000, dim, 311);
  EstimatorOptions eo;
  eo.num_bins = 200;
  eo.max_pairs = 2000000;
  const auto h = EstimateDistanceDistribution(clustered, LInfDistance{}, eo);
  const auto fit = EstimateCorrelationDimension(h, 0.001, 0.2);
  EXPECT_LT(fit.dimension, static_cast<double>(dim));
  EXPECT_GT(fit.dimension, 0.5);
}

TEST(EstimateCorrelationDimension, Validation) {
  const auto h = PowerLawHistogram(2.0);
  EXPECT_THROW(EstimateCorrelationDimension(h, 0.0, 0.5),
               std::invalid_argument);
  EXPECT_THROW(EstimateCorrelationDimension(h, 0.5, 0.2),
               std::invalid_argument);
  // Window so narrow no bin falls inside it.
  EXPECT_THROW(EstimateCorrelationDimension(h, 1e-9, 2e-9),
               std::runtime_error);
}

TEST(FractalSmoothedCdf, JoinsHistogramContinuously) {
  const auto h = PowerLawHistogram(3.0);
  const auto fit = EstimateCorrelationDimension(h);
  const FractalSmoothedCdf smoothed(h, fit);
  EXPECT_NEAR(smoothed.Cdf(fit.r_lo), h.Cdf(fit.r_lo), 1e-9);
  EXPECT_NEAR(smoothed.Cdf(fit.r_lo * 0.999), h.Cdf(fit.r_lo), 0.01);
  // Above the crossover the histogram rules.
  EXPECT_DOUBLE_EQ(smoothed.Cdf(0.9), h.Cdf(0.9));
  EXPECT_DOUBLE_EQ(smoothed.Cdf(0.0), 0.0);
}

TEST(FractalSmoothedCdf, ResolvesSubBinQuantiles) {
  // Exact power law F = r^3: the histogram's first bin edge is at 1/200,
  // i.e. F = 1.25e-7; the smoothed quantile should invert far below the
  // bin resolution, the raw histogram quantile cannot.
  const auto h = PowerLawHistogram(3.0);
  const auto fit = EstimateCorrelationDimension(h);
  const FractalSmoothedCdf smoothed(h, fit);
  for (double p : {1e-6, 1e-5, 1e-4}) {
    const double exact = std::pow(p, 1.0 / 3.0);
    EXPECT_NEAR(smoothed.Quantile(p), exact, 0.15 * exact) << p;
  }
  // Round trip.
  for (double p : {1e-6, 1e-3, 0.5}) {
    EXPECT_NEAR(smoothed.Cdf(smoothed.Quantile(p)), p, 0.1 * p + 1e-9);
  }
}

TEST(FractalSmoothedCdf, Validation) {
  const auto h = PowerLawHistogram(2.0);
  FractalFit bad;
  bad.dimension = 0.0;
  EXPECT_THROW(FractalSmoothedCdf(h, bad), std::invalid_argument);
  const auto fit = EstimateCorrelationDimension(h);
  const FractalSmoothedCdf smoothed(h, fit);
  EXPECT_THROW(smoothed.Quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(smoothed.Quantile(1.1), std::invalid_argument);
}

}  // namespace
}  // namespace mcm
