// GNAT correctness: exact agreement with the linear-scan oracle across
// arities, datasets and metrics; pruning must reduce distance computations.

#include <gtest/gtest.h>

#include "mcm/baseline/linear_scan.h"
#include "mcm/dataset/text_datasets.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/gnat/gnat.h"
#include "mcm/metric/traits.h"

namespace mcm {
namespace {

using VecTraits = VectorTraits<LInfDistance>;
using StrTraits = StringTraits<>;

class GnatArityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(GnatArityTest, RangeMatchesLinearScan) {
  GnatOptions options;
  options.arity = GetParam();
  const auto data = GenerateClustered(800, 6, 443);
  const Gnat<VecTraits> index(data, LInfDistance{}, options);
  const LinearScan<VecTraits> scan(data, LInfDistance{});
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 20, 6, 443);
  for (const auto& q : queries) {
    for (double radius : {0.0, 0.05, 0.2, 0.6}) {
      const auto expected = scan.RangeSearch(q, radius);
      const auto got = index.RangeSearch(q, radius);
      ASSERT_EQ(got.size(), expected.size()) << "radius=" << radius;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(got[i].distance, expected[i].distance, 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Arity, GnatArityTest, ::testing::Values(4, 16, 50),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param);
                         });

TEST(Gnat, KeywordsUnderEditDistance) {
  const auto words = GenerateKeywords(600, 449);
  GnatOptions options;
  options.arity = 8;
  const Gnat<StrTraits> index(words, EditDistanceMetric{}, options);
  const LinearScan<StrTraits> scan(words, EditDistanceMetric{});
  for (const auto& q : GenerateKeywordQueries(10, 449)) {
    for (double radius : {1.0, 3.0}) {
      EXPECT_EQ(index.RangeSearch(q, radius).size(),
                scan.RangeSearch(q, radius).size());
    }
  }
}

TEST_P(GnatArityTest, KnnMatchesLinearScanOnClustered) {
  GnatOptions options;
  options.arity = GetParam();
  const auto data = GenerateClustered(800, 6, 443);
  const Gnat<VecTraits> index(data, LInfDistance{}, options);
  const LinearScan<VecTraits> scan(data, LInfDistance{});
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 20, 6, 443);
  for (const auto& q : queries) {
    for (size_t k : {1u, 5u, 20u}) {
      const auto expected = scan.KnnSearch(q, k);
      const auto got = index.KnnSearch(q, k);
      ASSERT_EQ(got.size(), expected.size()) << "k=" << k;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(got[i].distance, expected[i].distance, 1e-9);
        EXPECT_EQ(got[i].oid, expected[i].oid) << "k=" << k << " i=" << i;
      }
    }
  }
}

TEST(Gnat, KnnMatchesLinearScanOnUniform) {
  const auto data = GenerateUniform(1200, 8, 977);
  GnatOptions options;
  options.arity = 12;
  const Gnat<VecTraits> index(data, LInfDistance{}, options);
  const LinearScan<VecTraits> scan(data, LInfDistance{});
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kUniform, 25, 8, 977);
  for (const auto& q : queries) {
    for (size_t k : {1u, 3u, 10u, 50u}) {
      const auto expected = scan.KnnSearch(q, k);
      const auto got = index.KnnSearch(q, k);
      ASSERT_EQ(got.size(), expected.size()) << "k=" << k;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(got[i].distance, expected[i].distance, 1e-9);
        EXPECT_EQ(got[i].oid, expected[i].oid) << "k=" << k << " i=" << i;
      }
    }
  }
}

TEST(Gnat, KnnDegenerateCases) {
  const auto data = GenerateUniform(100, 3, 991);
  const Gnat<VecTraits> index(data, LInfDistance{}, GnatOptions{});
  EXPECT_TRUE(index.KnnSearch({0.5f, 0.5f, 0.5f}, 0).empty());
  // k larger than n returns everything, sorted.
  const auto all = index.KnnSearch({0.5f, 0.5f, 0.5f}, 500);
  EXPECT_EQ(all.size(), 100u);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].distance, all[i].distance);
  }
  const Gnat<VecTraits> empty({}, LInfDistance{}, GnatOptions{});
  EXPECT_TRUE(empty.KnnSearch({0.5f, 0.5f, 0.5f}, 3).empty());
}

TEST(Gnat, KnnPrunesWithShrinkingBound) {
  const auto data = GenerateClustered(3000, 8, 457);
  const Gnat<VecTraits> index(data, LInfDistance{}, GnatOptions{});
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 20, 8, 457);
  uint64_t total = 0;
  for (const auto& q : queries) {
    QueryStats stats;
    index.KnnSearch(q, 5, &stats);
    total += stats.distance_computations;
  }
  // Best-first search with the range-table bound must beat brute force.
  EXPECT_LT(total / queries.size(), data.size() / 2);
}

TEST(Gnat, PruningSavesDistanceComputations) {
  const auto data = GenerateClustered(3000, 8, 457);
  GnatOptions options;
  const Gnat<VecTraits> index(data, LInfDistance{}, options);
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 20, 8, 457);
  uint64_t total = 0;
  for (const auto& q : queries) {
    QueryStats stats;
    index.RangeSearch(q, 0.05, &stats);
    total += stats.distance_computations;
  }
  // Selective queries must touch far fewer than n objects on average.
  EXPECT_LT(total / queries.size(), data.size() / 2);
}

TEST(Gnat, AllDuplicatesHandled) {
  const std::vector<FloatVector> data(300, FloatVector{0.5f, 0.5f});
  const Gnat<VecTraits> index(data, LInfDistance{}, GnatOptions{});
  EXPECT_EQ(index.RangeSearch({0.5f, 0.5f}, 0.0).size(), 300u);
  EXPECT_TRUE(index.RangeSearch({0.0f, 0.0f}, 0.1).empty());
}

TEST(Gnat, EmptyAndDegenerate) {
  const Gnat<VecTraits> empty({}, LInfDistance{}, GnatOptions{});
  EXPECT_TRUE(empty.RangeSearch({0.5f}, 1.0).empty());
  GnatOptions bad;
  bad.arity = 1;
  EXPECT_THROW(Gnat<VecTraits>({{0.1f}}, LInfDistance{}, bad),
               std::invalid_argument);
  bad.arity = 2;
  bad.leaf_capacity = 0;
  EXPECT_THROW(Gnat<VecTraits>({{0.1f}}, LInfDistance{}, bad),
               std::invalid_argument);
}

TEST(Gnat, StatsViewConsistent) {
  const auto data = GenerateUniform(2000, 4, 461);
  GnatOptions options;
  options.arity = 8;
  options.leaf_capacity = 16;
  const Gnat<VecTraits> index(data, LInfDistance{}, options);
  const auto stats = index.CollectStats();
  EXPECT_EQ(stats.num_objects, 2000u);
  EXPECT_GT(stats.num_internal, 0u);
  EXPECT_GT(stats.num_leaves, stats.num_internal);
  EXPECT_GE(stats.height, 2u);
}

TEST(LinearScanBaseline, KnnMatchesRange) {
  const auto data = GenerateUniform(500, 5, 467);
  const LinearScan<VecTraits> scan(data, LInfDistance{});
  const FloatVector q = {0.4f, 0.3f, 0.6f, 0.2f, 0.8f};
  QueryStats stats;
  const auto knn = scan.KnnSearch(q, 7, &stats);
  EXPECT_EQ(stats.distance_computations, 500u);
  ASSERT_EQ(knn.size(), 7u);
  const auto in_ball = scan.RangeSearch(q, knn.back().distance);
  EXPECT_GE(in_ball.size(), 7u);
  for (size_t i = 0; i < knn.size(); ++i) {
    EXPECT_EQ(knn[i].oid, in_ball[i].oid);
  }
}

}  // namespace
}  // namespace mcm
