#include "mcm/distribution/histogram.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace mcm {
namespace {

DistanceHistogram MakeSimple() {
  // Two bins over [0, 2]: masses 0.25 and 0.75.
  return DistanceHistogram({0.5, 1.5, 1.5, 1.5}, 2, 2.0);
}

TEST(DistanceHistogram, CdfAtBinEdges) {
  const auto h = MakeSimple();
  EXPECT_DOUBLE_EQ(h.Cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(h.Cdf(2.0), 1.0);
}

TEST(DistanceHistogram, CdfLinearWithinBins) {
  const auto h = MakeSimple();
  EXPECT_DOUBLE_EQ(h.Cdf(0.5), 0.125);
  EXPECT_DOUBLE_EQ(h.Cdf(1.5), 0.25 + 0.375);
}

TEST(DistanceHistogram, CdfClampsOutsideDomain) {
  const auto h = MakeSimple();
  EXPECT_DOUBLE_EQ(h.Cdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Cdf(5.0), 1.0);
}

TEST(DistanceHistogram, CdfMonotoneNonDecreasing) {
  const auto h = DistanceHistogram({0.1, 0.2, 0.21, 0.7, 0.9, 0.95}, 10, 1.0);
  double prev = -1.0;
  for (double x = -0.1; x <= 1.1; x += 0.01) {
    const double v = h.Cdf(x);
    EXPECT_GE(v, prev - 1e-12);
    prev = v;
  }
}

TEST(DistanceHistogram, PdfIntegratesToOne) {
  const auto h = DistanceHistogram({0.1, 0.4, 0.4, 0.9}, 8, 1.0);
  double integral = 0.0;
  const double dx = 1e-3;
  for (double x = dx / 2; x < 1.0; x += dx) {
    integral += h.Pdf(x) * dx;
  }
  EXPECT_NEAR(integral, 1.0, 1e-6);
  EXPECT_DOUBLE_EQ(h.Pdf(-0.1), 0.0);
  EXPECT_DOUBLE_EQ(h.Pdf(1.1), 0.0);
}

TEST(DistanceHistogram, QuantileInvertsCdf) {
  const auto h = DistanceHistogram({0.05, 0.3, 0.31, 0.6, 0.85}, 20, 1.0);
  for (double p = 0.05; p < 1.0; p += 0.05) {
    EXPECT_NEAR(h.Cdf(h.Quantile(p)), p, 1e-9) << "p=" << p;
  }
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1.0);
}

TEST(DistanceHistogram, QuantileRejectsOutsideUnit) {
  const auto h = MakeSimple();
  EXPECT_THROW(h.Quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(h.Quantile(1.1), std::invalid_argument);
}

TEST(DistanceHistogram, SamplesAboveDPlusClampIntoLastBin) {
  const auto h = DistanceHistogram({0.4, 3.0}, 2, 1.0);
  EXPECT_DOUBLE_EQ(h.Cdf(1.0), 1.0);
  EXPECT_DOUBLE_EQ(h.masses()[0], 0.5);  // The in-range sample.
  EXPECT_DOUBLE_EQ(h.masses()[1], 0.5);  // The clamped out-of-range sample.
}

TEST(DistanceHistogram, ExactDPlusSampleCountsInLastBin) {
  const auto h = DistanceHistogram({1.0, 1.0}, 4, 1.0);
  EXPECT_DOUBLE_EQ(h.masses()[3], 1.0);
}

TEST(DistanceHistogram, ConstructionErrors) {
  EXPECT_THROW(DistanceHistogram({}, 10, 1.0), std::invalid_argument);
  EXPECT_THROW(DistanceHistogram({0.5}, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(DistanceHistogram({0.5}, 10, 0.0), std::invalid_argument);
  EXPECT_THROW(DistanceHistogram({-0.5}, 10, 1.0), std::invalid_argument);
}

TEST(DistanceHistogram, FromMassesNormalizes) {
  const auto h = DistanceHistogram::FromMasses({1.0, 3.0}, 2.0);
  EXPECT_DOUBLE_EQ(h.Cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(h.Cdf(2.0), 1.0);
}

TEST(DistanceHistogram, FromMassesErrors) {
  EXPECT_THROW(DistanceHistogram::FromMasses({}, 1.0), std::invalid_argument);
  EXPECT_THROW(DistanceHistogram::FromMasses({0.0, 0.0}, 1.0),
               std::invalid_argument);
  EXPECT_THROW(DistanceHistogram::FromMasses({0.5, -0.5}, 1.0),
               std::invalid_argument);
}

TEST(DistanceHistogram, Accessors) {
  const auto h = MakeSimple();
  EXPECT_EQ(h.num_bins(), 2u);
  EXPECT_DOUBLE_EQ(h.bin_width(), 1.0);
  EXPECT_DOUBLE_EQ(h.d_plus(), 2.0);
  EXPECT_EQ(h.num_samples(), 4u);
  EXPECT_DOUBLE_EQ(h.cum().back(), 1.0);
}

}  // namespace
}  // namespace mcm
