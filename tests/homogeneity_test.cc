#include "mcm/distribution/homogeneity.h"

#include <cmath>

#include <gtest/gtest.h>

#include "mcm/dataset/text_datasets.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/metric/string_metrics.h"
#include "mcm/metric/vector_metrics.h"

namespace mcm {
namespace {

TEST(BuildRddFromDistances, EmpiricalCdfOnGrid) {
  const RddGrid g = BuildRddFromDistances({0.25, 0.75}, 5, 1.0);
  // Grid points: 0, 0.25, 0.5, 0.75, 1.
  ASSERT_EQ(g.size(), 5u);
  EXPECT_DOUBLE_EQ(g[0], 0.0);
  EXPECT_DOUBLE_EQ(g[1], 0.5);
  EXPECT_DOUBLE_EQ(g[2], 0.5);
  EXPECT_DOUBLE_EQ(g[3], 1.0);
  EXPECT_DOUBLE_EQ(g[4], 1.0);
}

TEST(BuildRddFromDistances, Errors) {
  EXPECT_THROW(BuildRddFromDistances({}, 5, 1.0), std::invalid_argument);
  EXPECT_THROW(BuildRddFromDistances({0.1}, 1, 1.0), std::invalid_argument);
  EXPECT_THROW(BuildRddFromDistances({0.1}, 5, 0.0), std::invalid_argument);
}

TEST(Discrepancy, IdenticalRddsHaveZeroDiscrepancy) {
  const RddGrid g = BuildRddFromDistances({0.2, 0.4, 0.9}, 11, 1.0);
  EXPECT_DOUBLE_EQ(Discrepancy(g, g, 1.0), 0.0);
}

TEST(Discrepancy, SymmetricAndTriangle) {
  const RddGrid a = BuildRddFromDistances({0.1, 0.2, 0.3}, 21, 1.0);
  const RddGrid b = BuildRddFromDistances({0.5, 0.6, 0.9}, 21, 1.0);
  const RddGrid c = BuildRddFromDistances({0.3, 0.5, 0.7}, 21, 1.0);
  EXPECT_DOUBLE_EQ(Discrepancy(a, b, 1.0), Discrepancy(b, a, 1.0));
  EXPECT_LE(Discrepancy(a, b, 1.0),
            Discrepancy(a, c, 1.0) + Discrepancy(c, b, 1.0) + 1e-12);
}

TEST(Discrepancy, BoundedByUnitInterval) {
  // Extreme case: one RDD concentrated at 0, the other at d+.
  const RddGrid lo = BuildRddFromDistances({0.0}, 101, 1.0);
  const RddGrid hi = BuildRddFromDistances({1.0}, 101, 1.0);
  const double d = Discrepancy(lo, hi, 1.0);
  EXPECT_GT(d, 0.9);
  EXPECT_LE(d, 1.0);
}

TEST(Discrepancy, GridMismatchThrows) {
  const RddGrid a(11, 0.0), b(21, 0.0);
  EXPECT_THROW(Discrepancy(a, b, 1.0), std::invalid_argument);
}

TEST(SummarizeRdds, MeanAndMaxOfKnownPair) {
  const RddGrid a = BuildRddFromDistances({0.0}, 101, 1.0);
  const RddGrid b = BuildRddFromDistances({1.0}, 101, 1.0);
  const HvResult r = SummarizeRdds({a, b}, 1.0);
  EXPECT_EQ(r.discrepancies.size(), 1u);
  EXPECT_DOUBLE_EQ(r.mean_discrepancy, r.max_discrepancy);
  EXPECT_NEAR(r.hv, 1.0 - r.mean_discrepancy, 1e-12);
}

TEST(EmpiricalGDelta, StepFunctionOfSamples) {
  HvResult r;
  r.discrepancies = {0.1, 0.2, 0.4};
  EXPECT_DOUBLE_EQ(EmpiricalGDelta(r, 0.05), 0.0);
  EXPECT_NEAR(EmpiricalGDelta(r, 0.25), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(EmpiricalGDelta(r, 1.0), 1.0);
}

TEST(HvBinaryHypercubeWithMidpoint, MatchesExample1) {
  // Paper: for D = 10, HV ≈ 1 − 0.97e-3 ≈ 0.999.
  const double hv10 = HvBinaryHypercubeWithMidpoint(10);
  EXPECT_NEAR(1.0 - hv10, 0.97e-3, 0.05e-3);
  // HV → 1 as D grows.
  EXPECT_GT(HvBinaryHypercubeWithMidpoint(20),
            HvBinaryHypercubeWithMidpoint(10));
  EXPECT_GT(HvBinaryHypercubeWithMidpoint(30), 0.999999);
}

TEST(EstimateHomogeneity, Example1SpaceMatchesClosedForm) {
  // Build the Example-1 BRM space explicitly for D = 6: all 2^6 hypercube
  // corners plus the midpoint, exact RDDs via exhaustive targets.
  const unsigned D = 6;
  std::vector<FloatVector> points;
  for (unsigned mask = 0; mask < (1u << D); ++mask) {
    FloatVector p(D);
    for (unsigned b = 0; b < D; ++b) p[b] = (mask >> b) & 1u ? 1.0f : 0.0f;
    points.push_back(p);
  }
  points.push_back(FloatVector(D, 0.5f));

  // Exhaustive viewpoints and targets give the exact E[Δ] under the uniform
  // weighting of Definition 2.
  const size_t n = points.size();
  std::vector<RddGrid> rdds;
  LInfDistance metric;
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> distances(n);
    for (size_t j = 0; j < n; ++j) distances[j] = metric(points[i], points[j]);
    rdds.push_back(BuildRddFromDistances(distances, 2001, 1.0));
  }
  // Mean over *all ordered pairs including self-pairs* equals Definition 2's
  // E[Δ] with independent O1, O2. SummarizeRdds averages unordered distinct
  // pairs; convert: E_all = E_distinct * (n-1)/n  (self pairs contribute 0).
  const HvResult r = SummarizeRdds(rdds, 1.0);
  const double e_all = r.mean_discrepancy * static_cast<double>(n - 1) /
                       static_cast<double>(n);
  const double hv_exact = HvBinaryHypercubeWithMidpoint(D);
  EXPECT_NEAR(1.0 - e_all, hv_exact, 2e-3);
}

TEST(EstimateHomogeneity, UniformVectorsAreHighlyHomogeneous) {
  const auto points = GenerateUniform(1500, 20, 5);
  HvOptions options;
  options.num_viewpoints = 60;
  options.num_targets = 600;
  const HvResult r = EstimateHomogeneity(points, LInfDistance{}, options);
  EXPECT_GT(r.hv, 0.95);
  EXPECT_EQ(r.num_viewpoints, 60u);
  EXPECT_EQ(r.num_targets, 600u);
}

TEST(EstimateHomogeneity, KeywordsUnderEditDistanceAreHomogeneous) {
  const auto words = GenerateKeywords(1200, 7);
  HvOptions options;
  options.num_viewpoints = 40;
  options.num_targets = 400;
  options.d_plus = 25.0;
  const HvResult r = EstimateHomogeneity(words, EditDistanceMetric{}, options);
  EXPECT_GT(r.hv, 0.9);
}

TEST(EstimateHomogeneity, RequiresTwoObjects) {
  const std::vector<FloatVector> one = {{0.0f}};
  EXPECT_THROW(EstimateHomogeneity(one, LInfDistance{}, HvOptions{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mcm
